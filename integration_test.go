package enki

import (
	"math"
	"testing"
)

// TestFullStackStory exercises the whole public surface in one
// scenario: a market-priced neighborhood with multi-appliance
// households, coalition formation, and an ECC learner, run over several
// days. Every layer must keep the budget identity and the mechanism's
// qualitative orderings.
func TestFullStackStory(t *testing.T) {
	// A generation stack prices the day instead of the stylized σl².
	market, err := NewMarket([]MarketOffer{
		{Generator: "hydro", Quantity: 12, Price: 0.04},
		{Generator: "wind", Quantity: 8, Price: 0.06},
		{Generator: "gas", Quantity: 40, Price: 0.35},
	})
	if err != nil {
		t.Fatal(err)
	}
	pricer, err := market.Pricer()
	if err != nil {
		t.Fatal(err)
	}
	neighborhood, err := NewNeighborhood(
		WithPricer(pricer),
		WithScheduler(&GreedyScheduler{Pricer: pricer, Rating: DefaultRating}),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Households: three truthful, one chronic misreporter.
	mkType := func(b, e, v int, rho float64) Type {
		return Type{True: MustPreference(b, e, v), ValuationFactor: rho}
	}
	households := []Household{
		{ID: 0, Type: mkType(18, 22, 2, 5), Reported: MustPreference(18, 22, 2)},
		{ID: 1, Type: mkType(8, 22, 2, 4), Reported: MustPreference(8, 22, 2)},
		{ID: 2, Type: mkType(17, 23, 2, 6), Reported: MustPreference(17, 23, 2)},
		{ID: 3, Type: mkType(18, 20, 2, 5), Reported: MustPreference(8, 12, 2)}, // liar
	}

	// An ECC learner shadows household 0, learning its consumption.
	learner, err := NewPatternLearner()
	if err != nil {
		t.Fatal(err)
	}

	coalitions, err := FormCoalitions(households, 2)
	if err != nil {
		t.Fatal(err)
	}

	var liarCoalitionTotal, liarSoloTotal float64
	for day := 1; day <= 5; day++ {
		out, err := neighborhood.RunDay(households, ConsumeTruthfully)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		// Budget identity under market prices.
		if math.Abs(out.Settlement.Revenue()-DefaultXi*out.Settlement.Cost) > 1e-9 {
			t.Fatalf("day %d: revenue %g != ξκ %g", day,
				out.Settlement.Revenue(), DefaultXi*out.Settlement.Cost)
		}
		// The realized day clears on the actual market.
		if _, _, err := market.ClearDay(out.Load); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if err := learner.Observe(out.Consumptions[0]); err != nil {
			t.Fatal(err)
		}
		liarSoloTotal += out.Settlement.Payments[3]

		// The same day settled coalition-aware: the liar may be rescued
		// by its coalition partner.
		assignments := make([]Interval, len(households))
		for i, a := range out.Assignments {
			assignments[i] = a.Interval
		}
		cons, err := PlanCoalitionConsumptions(households, coalitions, assignments)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := SettleCoalitions(pricer, DefaultMechanismConfig(),
			households, coalitions, assignments, cons, DefaultRating)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cs.Revenue()-DefaultXi*cs.Cost) > 1e-9 {
			t.Fatalf("day %d: coalition revenue %g != ξκ %g", day, cs.Revenue(), DefaultXi*cs.Cost)
		}
		liarCoalitionTotal += cs.Payments[3]
	}

	// The ECC learned household 0's stable evening pattern.
	pref, err := learner.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pref.Duration != 2 {
		t.Errorf("learned duration %d, want 2", pref.Duration)
	}
	if pref.Window.Begin < 17 || pref.Window.End > 23 {
		t.Errorf("learned window %v outside the household's evening routine", pref.Window)
	}

	// Coalitions never cost the liar more than going it alone.
	if liarCoalitionTotal > liarSoloTotal+1e-6 {
		t.Errorf("liar pays %g in coalitions vs %g solo", liarCoalitionTotal, liarSoloTotal)
	}
}
