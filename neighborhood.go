package enki

import (
	"fmt"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// Neighborhood is the high-level entry point: a center with a pricer,
// a scheduler, and the Enki payment mechanism, able to run complete
// days for a set of households. Construct with NewNeighborhood.
type Neighborhood struct {
	pricer    Pricer
	rating    float64
	scheduler Scheduler
	config    MechanismConfig
}

// Option customizes a Neighborhood.
type Option func(*Neighborhood)

// WithPricer replaces the default σ = 0.3 quadratic pricer.
func WithPricer(p Pricer) Option {
	return func(n *Neighborhood) { n.pricer = p }
}

// WithRating sets the power rating r in kW (default 2).
func WithRating(r float64) Option {
	return func(n *Neighborhood) { n.rating = r }
}

// WithScheduler replaces the default greedy scheduler (e.g. with an
// OptimalScheduler or a baseline).
func WithScheduler(s Scheduler) Option {
	return func(n *Neighborhood) { n.scheduler = s }
}

// WithMechanism sets the payment scaling factors (default k=1, ξ=1.2).
func WithMechanism(cfg MechanismConfig) Option {
	return func(n *Neighborhood) { n.config = cfg }
}

// WithTieBreakRNG makes the default greedy scheduler break flexibility
// ties randomly, as the paper prescribes. Without it ties break
// deterministically by report order.
func WithTieBreakRNG(rng *RNG) Option {
	return func(n *Neighborhood) {
		if g, ok := n.scheduler.(*sched.Greedy); ok {
			g.RNG = rng
		}
	}
}

// NewNeighborhood builds a neighborhood with the paper's defaults:
// quadratic pricing (σ = 0.3), rating 2 kW, greedy scheduling, k = 1,
// ξ = 1.2.
func NewNeighborhood(opts ...Option) (*Neighborhood, error) {
	pricer := Quadratic{Sigma: DefaultSigma}
	n := &Neighborhood{
		pricer: pricer,
		rating: DefaultRating,
		config: DefaultMechanismConfig(),
	}
	n.scheduler = &sched.Greedy{Pricer: pricer, Rating: DefaultRating}
	for _, opt := range opts {
		opt(n)
	}
	if n.pricer == nil {
		return nil, fmt.Errorf("enki: nil pricer")
	}
	if n.rating <= 0 {
		return nil, fmt.Errorf("enki: rating %g must be positive", n.rating)
	}
	if n.scheduler == nil {
		return nil, fmt.Errorf("enki: nil scheduler")
	}
	if err := n.config.Validate(); err != nil {
		return nil, err
	}
	// Keep the default greedy scheduler consistent with overrides.
	if g, ok := n.scheduler.(*sched.Greedy); ok {
		g.Pricer = n.pricer
		g.Rating = n.rating
	}
	return n, nil
}

// Rating returns the neighborhood's power rating in kW.
func (n *Neighborhood) Rating() float64 { return n.rating }

// Allocate runs only the scheduling step: reports in, assignments out.
func (n *Neighborhood) Allocate(reports []Report) ([]Assignment, error) {
	return n.scheduler.Allocate(reports)
}

// ConsumeFunc decides a household's realized consumption given its
// suggested allocation. Returning the allocation means full compliance.
type ConsumeFunc func(h Household, allocation Interval) Interval

// Comply is the ConsumeFunc of a fully cooperative neighborhood.
func Comply(_ Household, allocation Interval) Interval { return allocation }

// ConsumeTruthfully follows the allocation when it satisfies the
// household's true preference and otherwise defects to the closest
// placement inside the true window — rational behavior for a household
// that may have misreported.
func ConsumeTruthfully(h Household, allocation Interval) Interval {
	return core.ClosestConsumption(h.Type.True, allocation)
}

// DayOutcome is the result of Neighborhood.RunDay.
type DayOutcome struct {
	// Assignments are the center's suggestions, aligned with the
	// households passed to RunDay.
	Assignments []Assignment
	// Consumptions are the realized intervals.
	Consumptions []Interval
	// Settlement carries κ(ω), scores, payments, and utilities.
	Settlement Settlement
	// Load is the realized hourly load.
	Load Load
}

// PAR returns the day's peak-to-average ratio.
func (o *DayOutcome) PAR() float64 { return o.Load.PAR() }

// RunDay executes one complete day: allocate from the households'
// reports, realize consumption via consume (Comply when nil), and
// settle payments and utilities.
func (n *Neighborhood) RunDay(households []Household, consume ConsumeFunc) (*DayOutcome, error) {
	if len(households) == 0 {
		return nil, fmt.Errorf("enki: no households")
	}
	if consume == nil {
		consume = Comply
	}
	reports := make([]Report, len(households))
	for i, h := range households {
		reports[i] = Report{ID: h.ID, Pref: h.Reported}
	}
	assignments, err := n.scheduler.Allocate(reports)
	if err != nil {
		return nil, err
	}

	consumptions := make([]Interval, len(households))
	for i, h := range households {
		consumptions[i] = consume(h, assignments[i].Interval)
	}

	day := mechanism.Day{
		Households:   households,
		Assignments:  make([]Interval, len(households)),
		Consumptions: consumptions,
		Rating:       n.rating,
	}
	for i, a := range assignments {
		day.Assignments[i] = a.Interval
	}
	settlement, err := mechanism.Settle(n.pricer, n.config, day)
	if err != nil {
		return nil, err
	}

	return &DayOutcome{
		Assignments:  assignments,
		Consumptions: consumptions,
		Settlement:   settlement,
		Load:         core.LoadOf(consumptions, n.rating),
	}, nil
}

// Cost prices an hourly load with the neighborhood's pricer (Eq. 1).
func (n *Neighborhood) Cost(l Load) float64 { return pricing.Cost(n.pricer, l) }
