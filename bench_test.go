package enki

// The benchmark harness: one benchmark per paper table/figure plus the
// ablations DESIGN.md calls out. Run everything with
//
//	go test -bench=. -benchmem .
//
// Figures 4-6 share the Section VI sweep, so they appear both as
// end-to-end sweep benches (BenchmarkFigure*) and as per-scheduler
// micro-benches that expose the greedy-vs-optimal time gap the paper
// highlights (~600x at n ≥ 40).

import (
	"fmt"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/experiment"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
	"enki/internal/solver"
	"enki/internal/stats"
	"enki/internal/study"
	"enki/internal/vcg"
)

var benchPricer = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func benchReports(b *testing.B, seed uint64, n int) []core.Report {
	b.Helper()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
	if err != nil {
		b.Fatal(err)
	}
	return profile.WideReports(gen.DrawN(n))
}

func benchDay(b *testing.B, seed uint64, n int) mechanism.Day {
	b.Helper()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
	if err != nil {
		b.Fatal(err)
	}
	profiles := gen.DrawN(n)
	households := make([]core.Household, n)
	reports := make([]core.Report, n)
	for i, p := range profiles {
		households[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
		reports[i] = core.Report{ID: core.HouseholdID(i), Pref: p.Wide}
	}
	greedy := &sched.Greedy{Pricer: benchPricer, Rating: 2}
	assignments, err := greedy.Allocate(reports)
	if err != nil {
		b.Fatal(err)
	}
	day := mechanism.Day{
		Households:   households,
		Assignments:  make([]core.Interval, n),
		Consumptions: make([]core.Interval, n),
		Rating:       2,
	}
	for i, a := range assignments {
		day.Assignments[i] = a.Interval
		day.Consumptions[i] = a.Interval
	}
	return day
}

// --- Figures 4 & 5: PAR and neighborhood cost (one sweep round) ---

// BenchmarkFigure4PAR measures one full Figure 4/5 data point: draw a
// 30-household day, allocate with both schedulers, compute PAR and
// cost.
func BenchmarkFigure4PAR(b *testing.B) {
	cfg := experiment.DefaultConfig()
	cfg.Populations = []int{30}
	cfg.Rounds = 1
	cfg.OptimalOptions = solver.Options{TimeLimit: 100 * time.Millisecond, RelGap: 1e-4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiment.RunSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweep is the parallel-engine workload: a full sweep with enough
// rounds per population that the worker pool has real work to spread.
func benchSweep(b *testing.B, workers int) {
	cfg := experiment.DefaultConfig()
	cfg.Populations = []int{10, 20, 30}
	cfg.Rounds = 4
	cfg.Workers = workers
	cfg.OptimalOptions = solver.Options{TimeLimit: 50 * time.Millisecond, RelGap: 1e-4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the Workers:1 reference path.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same sweep on the default pool
// (GOMAXPROCS workers); compare against BenchmarkSweepSerial for the
// engine's speedup.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkFigure5Cost measures the neighborhood-cost computation for a
// settled 50-household day (the Figure 5 metric).
func BenchmarkFigure5Cost(b *testing.B) {
	day := benchDay(b, 5, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pricing.CostOfIntervals(benchPricer, day.Consumptions, day.Rating)
	}
}

// --- Figure 6: scheduling time, greedy vs optimal ---

func benchGreedy(b *testing.B, n int) {
	reports := benchReports(b, uint64(n), n)
	g := &sched.Greedy{Pricer: benchPricer, Rating: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Allocate(reports); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOptimal(b *testing.B, n int, opts solver.Options) {
	reports := benchReports(b, uint64(n), n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := &sched.Optimal{Pricer: benchPricer, Rating: 2, Options: opts}
		if _, err := o.Allocate(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyAllocate10 and friends are the Enki series of Figure 6.
func BenchmarkGreedyAllocate10(b *testing.B) { benchGreedy(b, 10) }

// BenchmarkGreedyAllocate30 is the Enki mid-population point.
func BenchmarkGreedyAllocate30(b *testing.B) { benchGreedy(b, 30) }

// BenchmarkGreedyAllocate50 is the Enki series' largest point.
func BenchmarkGreedyAllocate50(b *testing.B) { benchGreedy(b, 50) }

// BenchmarkOptimalAllocate10 solves a 10-household day exactly.
func BenchmarkOptimalAllocate10(b *testing.B) { benchOptimal(b, 10, solver.Options{}) }

// BenchmarkOptimalAllocate20 solves a 20-household day exactly — at
// this size the greedy-vs-optimal gap already exceeds the paper's 600x.
func BenchmarkOptimalAllocate20(b *testing.B) {
	benchOptimal(b, 20, solver.Options{RelGap: 1e-4})
}

// BenchmarkOptimalAllocate30 solves a 30-household day to the CPLEX
// default gap — tractable only because of the solver's bound cascade
// and candidate fixing.
func BenchmarkOptimalAllocate30(b *testing.B) {
	benchOptimal(b, 30, solver.Options{RelGap: 1e-4})
}

// BenchmarkOptimalAllocate50 solves the Figure 6 right edge to a 0.1%
// gap. The looser setting is deliberate: the quadratic cost lattice is
// coarse (σ·g² = 1.2 per step), and at n=50 a 1e-4 gap demands proving
// no solution exists one lattice step below the optimum — a
// multi-minute enumeration — while 1e-3 closes with a real search
// (~half a million nodes) that still lands on the true optimum. The
// budgeted variant below is what the experiment harness actually runs.
func BenchmarkOptimalAllocate50(b *testing.B) {
	benchOptimal(b, 50, solver.Options{RelGap: 1e-3, Workers: 0})
}

// BenchmarkOptimalAllocate50Budgeted is the Figure 6 right edge: the
// CPLEX-substitute runs under the experiment harness's default budget.
func BenchmarkOptimalAllocate50Budgeted(b *testing.B) {
	benchOptimal(b, 50, solver.Options{TimeLimit: 100 * time.Millisecond, RelGap: 1e-4})
}

// BenchmarkFigure6SchedulingTime measures a full Figure 6 data point at
// n = 20: both schedulers on the same day.
func BenchmarkFigure6SchedulingTime(b *testing.B) {
	reports := benchReports(b, 6, 20)
	g := &sched.Greedy{Pricer: benchPricer, Rating: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Allocate(reports); err != nil {
			b.Fatal(err)
		}
		o := &sched.Optimal{Pricer: benchPricer, Rating: 2, Options: solver.Options{RelGap: 1e-4}}
		if _, err := o.Allocate(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7: best response of one household ---

// BenchmarkFigure7BestResponse measures one utility evaluation of the
// Figure 7 exploration: a 50-household greedy allocation plus a full
// settlement for a single candidate report.
func BenchmarkFigure7BestResponse(b *testing.B) {
	cfg := experiment.DefaultConfig()
	fcfg := experiment.DefaultFig7Config()
	fcfg.Repeats = 1
	fcfg.Limits = core.Interval{Begin: 18, End: 20} // single candidate: the truth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFigure7(cfg, fcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables II-IV and Figures 8-9: the user study ---

// BenchmarkTableIIUserStudy runs the full two-treatment study (8
// sessions, 16 rounds, 20 subjects) and computes every Section VII
// metric.
func BenchmarkTableIIUserStudy(b *testing.B) {
	cfg := experiment.DefaultConfig()
	scfg := study.DefaultStudyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := experiment.RunUserStudy(cfg, scfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIIIMannWhitney measures the Table III test at the
// paper's sample size.
func BenchmarkTableIIIMannWhitney(b *testing.B) {
	rng := dist.New(9)
	s1 := make([]float64, 20)
	s2 := make([]float64, 20)
	for i := range s1 {
		s1[i] = float64(rng.Intn(16))
		s2[i] = 8
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.MannWhitneyU(s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorems 1, 5, 6: settlement and baselines ---

// BenchmarkSettlement measures a full Eq. 4-8 settlement for a
// 50-household day.
func BenchmarkSettlement(b *testing.B) {
	day := benchDay(b, 7, 50)
	cfg := mechanism.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.Settle(benchPricer, cfg, day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnkiVsProportional settles the same day under Enki and under
// the no-Enki proportional baseline (the Theorem 5/6 comparison).
func BenchmarkEnkiVsProportional(b *testing.B) {
	day := benchDay(b, 8, 50)
	cfg := mechanism.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.Settle(benchPricer, cfg, day); err != nil {
			b.Fatal(err)
		}
		if _, err := mechanism.SettleProportional(benchPricer, cfg.Xi, day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVCGPayments measures the Samadi-style VCG comparator: n+1
// optimal solves for an 8-household day — the intractability Enki's
// closed-form payments avoid (compare BenchmarkSettlement).
func BenchmarkVCGPayments(b *testing.B) {
	reports := benchReports(b, 11, 8)
	m := &vcg.Mechanism{Pricer: benchPricer, Rating: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationOrderingFlexibility is Enki's increasing-flexibility
// processing order.
func BenchmarkAblationOrderingFlexibility(b *testing.B) { benchGreedy(b, 30) }

// BenchmarkAblationOrderingWidestFirst reverses Enki's order.
func BenchmarkAblationOrderingWidestFirst(b *testing.B) {
	reports := benchReports(b, 30, 30)
	s := &sched.GreedyOrdered{Pricer: benchPricer, Rating: 2, Order: sched.OrderWidestFirst}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Allocate(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOrderingReport processes households in arrival order.
func BenchmarkAblationOrderingReport(b *testing.B) {
	reports := benchReports(b, 30, 30)
	s := &sched.GreedyOrdered{Pricer: benchPricer, Rating: 2, Order: sched.OrderReport}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Allocate(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPricingQuadratic settles under Eq. 1 pricing.
func BenchmarkAblationPricingQuadratic(b *testing.B) {
	day := benchDay(b, 13, 30)
	cfg := mechanism.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.Settle(benchPricer, cfg, day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPricingPiecewise settles under the two-step convex
// tariff the paper mentions as the Eq. 1 alternative.
func BenchmarkAblationPricingPiecewise(b *testing.B) {
	tariff, err := pricing.NewPiecewise([]pricing.Step{{Threshold: 0, Rate: 0.5}, {Threshold: 8, Rate: 3}})
	if err != nil {
		b.Fatal(err)
	}
	day := benchDay(b, 13, 30)
	cfg := mechanism.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.Settle(tariff, cfg, day); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLocalSearch measures the decentralized best-response
// alternative to Enki's one-shot greedy.
func BenchmarkAblationLocalSearch(b *testing.B) {
	reports := benchReports(b, 17, 30)
	s := &sched.LocalSearch{Base: sched.Earliest{}, Pricer: benchPricer, Rating: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Allocate(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benches ---

// BenchmarkFlexibilityScores measures Eq. 4 over 50 households.
func BenchmarkFlexibilityScores(b *testing.B) {
	reports := benchReports(b, 19, 50)
	prefs := make([]core.Preference, len(reports))
	for i, r := range reports {
		prefs[i] = r.Pref
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mechanism.FlexibilityScores(prefs)
	}
}

// BenchmarkFederatedSnapshot measures the operator plane's merge path:
// assembling the cluster-wide FederatedSnapshot from 128 shard-sized
// sources, each carrying the counter, gauge, and settle-latency series
// a real shard reports. This is what every /api/v1/federation scrape
// and every enkiops poll pays, so its allocs/op is gated alongside the
// allocator benches in make bench-check.
func BenchmarkFederatedSnapshot(b *testing.B) {
	fed := obs.NewFederation(obs.NewRegistry())
	for s := 0; s < 128; s++ {
		reg := obs.NewRegistry()
		reg.Counter(obs.MetricClusterShardsSettled).Add(uint64(30 + s))
		reg.Counter(obs.MetricClusterHouseholdsSettled).Add(uint64(8 * (30 + s)))
		reg.Counter(obs.MetricClusterSubstitutionsTotal).Add(uint64(s % 3))
		reg.Gauge(obs.MetricMechBudgetResidual).Set(0)
		reg.Gauge(obs.MetricMechDayPAR).Set(1.2)
		h := reg.Histogram(obs.MetricClusterShardSettleMS, obs.LatencyBucketsMS)
		for d := 0; d < 30; d++ {
			h.Observe(float64(1+(s+d)%7) * 0.3)
		}
		fed.Report(&obs.MetricsReport{
			Source:   fmt.Sprintf("shard/%04d", s),
			Snapshot: reg.Snapshot(),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := fed.Snapshot()
		if len(snap.Sources) != 128 {
			b.Fatalf("sources = %d", len(snap.Sources))
		}
	}
}

// BenchmarkRecorderSteadyState measures one flight-recorder event on
// the hot path every wire frame pays when -bundle-dir is set: an
// enabled ring, cached counter handles, no per-event allocation. The
// allocs/op figure is gated alongside the allocator benches in make
// bench-check — a regression here taxes every settled household.
func BenchmarkRecorderSteadyState(b *testing.B) {
	rec := obs.NewRecorder()
	rec.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(obs.Event{
			Kind:   obs.EventWireFrame,
			Shard:  i & 7,
			Codec:  "binary",
			Action: "sent",
			N:      64,
			Bytes:  1 << 10,
		})
	}
}

// BenchmarkProfileDraw measures the Section VI workload generator.
func BenchmarkProfileDraw(b *testing.B) {
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(21))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Draw()
	}
}
