// Command benchdiff compares two benchjson reports (tools/benchjson)
// and fails when any benchmark present in both regressed by more than
// the threshold in ns/op — or grew its allocs/op at all. It backs
// `make bench-check`: a fresh `make bench` run diffed against the
// committed BENCH_sched.json baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_sched.json -current fresh.json
//	benchdiff -baseline BENCH_sched.json -current fresh.json -threshold 10
//	benchdiff -baseline BENCH_sched.json -current fresh.json -alloc-slack 2
//
// Benchmarks that appear in only one report are listed but never fail
// the check; timing noise guidance: the default 25% ns/op threshold is
// meant to catch real regressions on shared CI machines, not jitter.
// The allocation gate fails any benchmark whose allocs/op exceeds
// baseline + alloc-slack (default 0) + 1% of baseline: steady-state
// zero-alloc contracts are checked exactly at the default, while heavy
// allocators (time-budgeted solves, pooled parallel searches) get
// proportional headroom for data-dependent drift. This gate is the
// backstop behind the zero-alloc contract of the sched hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Result mirrors tools/benchjson's per-benchmark entry (benchjson is a
// main package, so the struct is duplicated rather than imported).
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report mirrors tools/benchjson's JSON document.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath   = fs.String("baseline", "", "baseline benchjson report (e.g. the committed BENCH_sched.json)")
		currPath   = fs.String("current", "", "fresh benchjson report to compare")
		threshold  = fs.Float64("threshold", 25, "max allowed ns/op regression in percent")
		allocSlack = fs.Int64("alloc-slack", 0, "max allowed allocs/op growth in absolute allocations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *currPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold %g must be positive", *threshold)
	}
	if *allocSlack < 0 {
		return fmt.Errorf("alloc-slack %d must be non-negative", *allocSlack)
	}

	base, err := readReport(*basePath)
	if err != nil {
		return err
	}
	curr, err := readReport(*currPath)
	if err != nil {
		return err
	}

	regressions, allocRegressions, err := diff(out, base, curr, *threshold, *allocSlack)
	if err != nil {
		return err
	}
	switch {
	case regressions > 0 && allocRegressions > 0:
		return fmt.Errorf("%d benchmarks regressed more than %g%% in ns/op and %d grew allocs/op past slack %d",
			regressions, *threshold, allocRegressions, *allocSlack)
	case regressions > 0:
		return fmt.Errorf("%d benchmarks regressed more than %g%% in ns/op", regressions, *threshold)
	case allocRegressions > 0:
		return fmt.Errorf("%d benchmarks grew allocs/op past slack %d", allocRegressions, *allocSlack)
	}
	return nil
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s carries no benchmark results", path)
	}
	return &r, nil
}

// diff prints the comparison table and returns how many shared
// benchmarks regressed past the ns/op threshold and how many grew
// their allocs/op past the slack.
func diff(out io.Writer, base, curr *Report, threshold float64, allocSlack int64) (int, int, error) {
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	current := make(map[string]Result, len(curr.Results))
	for _, r := range curr.Results {
		current[r.Name] = r
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-28s %14s %14s %9s %12s\n", "benchmark", "base ns/op", "curr ns/op", "delta", "allocs")
	regressions, allocRegressions := 0, 0
	for _, name := range names {
		b := baseline[name]
		c, ok := current[name]
		if !ok {
			fmt.Fprintf(out, "%-28s %14.0f %14s %9s\n", name, b.NsPerOp, "-", "gone")
			continue
		}
		if b.NsPerOp <= 0 {
			return 0, 0, fmt.Errorf("baseline %s has non-positive ns/op %g", name, b.NsPerOp)
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressions++
		}
		allocs := fmt.Sprintf("%d->%d", b.AllocsPerOp, c.AllocsPerOp)
		// Slack plus 1% of baseline: zero-alloc contracts stay exact at
		// the default slack, while heavy allocators (time-budgeted
		// solves, pooled searches) get headroom proportional to their
		// baseline rather than a flat number.
		if c.AllocsPerOp > b.AllocsPerOp+allocSlack+b.AllocsPerOp/100 {
			verdict += "  ALLOC-REGRESSION"
			allocRegressions++
		}
		fmt.Fprintf(out, "%-28s %14.0f %14.0f %+8.1f%% %12s%s\n", name, b.NsPerOp, c.NsPerOp, delta, allocs, verdict)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(out, "%-28s %14s %14.0f %9s\n", name, "-", current[name].NsPerOp, "new")
		}
	}
	return regressions, allocRegressions, nil
}
