// Command benchdiff compares two benchjson reports (tools/benchjson)
// and fails when any benchmark present in both regressed by more than
// the threshold in ns/op — or grew its allocs/op at all. It backs
// `make bench-check`: a fresh `make bench` run diffed against the
// committed BENCH_sched.json baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_sched.json -current fresh.json
//	benchdiff -baseline BENCH_sched.json -current fresh.json -threshold 10
//	benchdiff -baseline BENCH_sched.json -current fresh.json -alloc-slack 2
//
// Benchmarks that appear in only one report are listed but never fail
// the check; timing noise guidance: the default 25% ns/op threshold is
// meant to catch real regressions on shared CI machines, not jitter.
// The allocation gate fails any benchmark whose allocs/op exceeds
// baseline + alloc-slack (default 0) + 1% of baseline: steady-state
// zero-alloc contracts are checked exactly at the default, while heavy
// allocators (time-budgeted solves, pooled parallel searches) get
// proportional headroom for data-dependent drift. This gate is the
// backstop behind the zero-alloc contract of the sched hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Result mirrors tools/benchjson's per-benchmark entry (benchjson is a
// main package, so the struct is duplicated rather than imported).
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report mirrors tools/benchjson's JSON document.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath   = fs.String("baseline", "", "baseline benchjson report (e.g. the committed BENCH_sched.json)")
		currPath   = fs.String("current", "", "fresh benchjson report to compare")
		threshold  = fs.Float64("threshold", 25, "max allowed ns/op regression in percent")
		allocSlack = fs.Int64("alloc-slack", 0, "max allowed allocs/op growth in absolute allocations")
		bytesGate  = fs.Float64("bytes-threshold", 0, "max allowed B/op growth in percent (0 disables the gate)")
		extraGate  = fs.Float64("extra-threshold", 0, "max allowed growth in percent for custom metrics such as frames/op (0 disables the gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *currPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold %g must be positive", *threshold)
	}
	if *allocSlack < 0 {
		return fmt.Errorf("alloc-slack %d must be non-negative", *allocSlack)
	}
	if *bytesGate < 0 || *extraGate < 0 {
		return fmt.Errorf("bytes-threshold and extra-threshold must be non-negative")
	}

	base, err := readReport(*basePath)
	if err != nil {
		return err
	}
	curr, err := readReport(*currPath)
	if err != nil {
		return err
	}

	g := gates{threshold: *threshold, allocSlack: *allocSlack, bytesGate: *bytesGate, extraGate: *extraGate}
	n, err := diff(out, base, curr, g)
	if err != nil {
		return err
	}
	var failures []string
	if n.ns > 0 {
		failures = append(failures, fmt.Sprintf("%d benchmarks regressed more than %g%% in ns/op", n.ns, *threshold))
	}
	if n.alloc > 0 {
		failures = append(failures, fmt.Sprintf("%d grew allocs/op past slack %d", n.alloc, *allocSlack))
	}
	if n.bytes > 0 {
		failures = append(failures, fmt.Sprintf("%d grew B/op more than %g%%", n.bytes, *bytesGate))
	}
	if n.extra > 0 {
		failures = append(failures, fmt.Sprintf("%d grew a custom metric more than %g%%", n.extra, *extraGate))
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// gates bundles the per-dimension regression thresholds; counts tallies
// how many shared benchmarks tripped each.
type gates struct {
	threshold  float64
	allocSlack int64
	bytesGate  float64
	extraGate  float64
}

type counts struct {
	ns, alloc, bytes, extra int
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s carries no benchmark results", path)
	}
	return &r, nil
}

// diff prints the comparison table and tallies, per gate dimension, how
// many shared benchmarks regressed past their threshold.
func diff(out io.Writer, base, curr *Report, g gates) (counts, error) {
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	current := make(map[string]Result, len(curr.Results))
	for _, r := range curr.Results {
		current[r.Name] = r
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-40s %14s %14s %9s %12s\n", "benchmark", "base ns/op", "curr ns/op", "delta", "allocs")
	var n counts
	for _, name := range names {
		b := baseline[name]
		c, ok := current[name]
		if !ok {
			fmt.Fprintf(out, "%-40s %14.0f %14s %9s\n", name, b.NsPerOp, "-", "gone")
			continue
		}
		if b.NsPerOp <= 0 {
			return counts{}, fmt.Errorf("baseline %s has non-positive ns/op %g", name, b.NsPerOp)
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := ""
		if delta > g.threshold {
			verdict = "  REGRESSION"
			n.ns++
		}
		allocs := fmt.Sprintf("%d->%d", b.AllocsPerOp, c.AllocsPerOp)
		// Slack plus 1% of baseline: zero-alloc contracts stay exact at
		// the default slack, while heavy allocators (time-budgeted
		// solves, pooled searches) get headroom proportional to their
		// baseline rather than a flat number.
		if c.AllocsPerOp > b.AllocsPerOp+g.allocSlack+b.AllocsPerOp/100 {
			verdict += "  ALLOC-REGRESSION"
			n.alloc++
		}
		if g.bytesGate > 0 && b.BytesPerOp > 0 &&
			float64(c.BytesPerOp) > float64(b.BytesPerOp)*(1+g.bytesGate/100) {
			verdict += fmt.Sprintf("  BYTES-REGRESSION(%d->%d B/op)", b.BytesPerOp, c.BytesPerOp)
			n.bytes++
		}
		if g.extraGate > 0 {
			units := make([]string, 0, len(b.Extra))
			for unit := range b.Extra {
				units = append(units, unit)
			}
			sort.Strings(units)
			for _, unit := range units {
				bv := b.Extra[unit]
				cv, ok := c.Extra[unit]
				if !ok || bv <= 0 {
					continue
				}
				if cv > bv*(1+g.extraGate/100) {
					verdict += fmt.Sprintf("  %s-REGRESSION(%g->%g)", strings.ToUpper(unit), bv, cv)
					n.extra++
				}
			}
		}
		fmt.Fprintf(out, "%-40s %14.0f %14.0f %+8.1f%% %12s%s\n", name, b.NsPerOp, c.NsPerOp, delta, allocs, verdict)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(out, "%-40s %14s %14.0f %9s\n", name, "-", current[name].NsPerOp, "new")
		}
	}
	return n, nil
}
