// Command benchdiff compares two benchjson reports (tools/benchjson)
// and fails when any benchmark present in both regressed by more than
// the threshold in ns/op. It backs `make bench-check`: a fresh `make
// bench` run diffed against the committed BENCH_sched.json baseline.
//
// Usage:
//
//	benchdiff -baseline BENCH_sched.json -current fresh.json
//	benchdiff -baseline BENCH_sched.json -current fresh.json -threshold 10
//
// Benchmarks that appear in only one report are listed but never fail
// the check; timing noise guidance: the default 25% threshold is meant
// to catch real regressions on shared CI machines, not jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// Result mirrors tools/benchjson's per-benchmark entry (benchjson is a
// main package, so the struct is duplicated rather than imported).
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report mirrors tools/benchjson's JSON document.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("baseline", "", "baseline benchjson report (e.g. the committed BENCH_sched.json)")
		currPath  = fs.String("current", "", "fresh benchjson report to compare")
		threshold = fs.Float64("threshold", 25, "max allowed ns/op regression in percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *currPath == "" {
		return fmt.Errorf("both -baseline and -current are required")
	}
	if *threshold <= 0 {
		return fmt.Errorf("threshold %g must be positive", *threshold)
	}

	base, err := readReport(*basePath)
	if err != nil {
		return err
	}
	curr, err := readReport(*currPath)
	if err != nil {
		return err
	}

	regressions, err := diff(out, base, curr, *threshold)
	if err != nil {
		return err
	}
	if regressions > 0 {
		return fmt.Errorf("%d benchmarks regressed more than %g%% in ns/op", regressions, *threshold)
	}
	return nil
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("%s carries no benchmark results", path)
	}
	return &r, nil
}

// diff prints the comparison table and returns how many shared
// benchmarks regressed past the threshold.
func diff(out io.Writer, base, curr *Report, threshold float64) (int, error) {
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	current := make(map[string]Result, len(curr.Results))
	for _, r := range curr.Results {
		current[r.Name] = r
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-28s %14s %14s %9s\n", "benchmark", "base ns/op", "curr ns/op", "delta")
	regressions := 0
	for _, name := range names {
		b := baseline[name]
		c, ok := current[name]
		if !ok {
			fmt.Fprintf(out, "%-28s %14.0f %14s %9s\n", name, b.NsPerOp, "-", "gone")
			continue
		}
		if b.NsPerOp <= 0 {
			return 0, fmt.Errorf("baseline %s has non-positive ns/op %g", name, b.NsPerOp)
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "%-28s %14.0f %14.0f %+8.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, delta, verdict)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(out, "%-28s %14s %14.0f %9s\n", name, "-", current[name].NsPerOp, "new")
		}
	}
	return regressions, nil
}
