package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(Report{Pkg: "enki", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNoRegressionPasses(t *testing.T) {
	base := writeReport(t, "base.json", []Result{
		{Name: "GreedyAllocate10", NsPerOp: 5000},
		{Name: "GreedyAllocate50", NsPerOp: 16000},
	})
	curr := writeReport(t, "curr.json", []Result{
		{Name: "GreedyAllocate10", NsPerOp: 6000},  // +20%, inside 25%
		{Name: "GreedyAllocate50", NsPerOp: 15000}, // improvement
	})
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", curr}, &out); err != nil {
		t.Fatalf("within-threshold diff failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "GreedyAllocate10") {
		t.Errorf("table missing benchmark row:\n%s", out.String())
	}
}

func TestRegressionFails(t *testing.T) {
	base := writeReport(t, "base.json", []Result{{Name: "Sweep", NsPerOp: 1000}})
	curr := writeReport(t, "curr.json", []Result{{Name: "Sweep", NsPerOp: 1300}})
	var out strings.Builder
	err := run([]string{"-baseline", base, "-current", curr}, &out)
	if err == nil {
		t.Fatalf("+30%% should fail the default 25%% threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("table does not flag the regression:\n%s", out.String())
	}
	// A looser threshold lets the same pair pass.
	if err := run([]string{"-baseline", base, "-current", curr, "-threshold", "50"}, &out); err != nil {
		t.Errorf("+30%% should pass a 50%% threshold: %v", err)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	base := writeReport(t, "base.json", []Result{{Name: "GreedyAllocate50", NsPerOp: 5000, AllocsPerOp: 1}})
	curr := writeReport(t, "curr.json", []Result{{Name: "GreedyAllocate50", NsPerOp: 5000, AllocsPerOp: 43}})
	var out strings.Builder
	err := run([]string{"-baseline", base, "-current", curr}, &out)
	if err == nil {
		t.Fatalf("alloc growth 1 -> 43 should fail the default zero slack:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ALLOC-REGRESSION") {
		t.Errorf("table does not flag the alloc regression:\n%s", out.String())
	}
	// Enough slack lets the same pair pass.
	if err := run([]string{"-baseline", base, "-current", curr, "-alloc-slack", "50"}, &out); err != nil {
		t.Errorf("alloc growth within slack should pass: %v", err)
	}
	// Negative slack is rejected.
	if err := run([]string{"-baseline", base, "-current", curr, "-alloc-slack", "-1"}, &out); err == nil {
		t.Error("negative alloc-slack should be rejected")
	}
}

func TestAllocProportionalHeadroom(t *testing.T) {
	// Heavy allocators get 1% of baseline on top of the slack; drift
	// inside it passes, drift beyond it still fails.
	base := writeReport(t, "base.json", []Result{{Name: "OptimalAllocate50Budgeted", NsPerOp: 5000, AllocsPerOp: 1200}})
	within := writeReport(t, "within.json", []Result{{Name: "OptimalAllocate50Budgeted", NsPerOp: 5000, AllocsPerOp: 1212}})
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", within, "-alloc-slack", "8"}, &out); err != nil {
		t.Errorf("+12 allocs on a 1200-alloc baseline should sit inside slack 8 + 1%%: %v", err)
	}
	beyond := writeReport(t, "beyond.json", []Result{{Name: "OptimalAllocate50Budgeted", NsPerOp: 5000, AllocsPerOp: 1221}})
	if err := run([]string{"-baseline", base, "-current", beyond, "-alloc-slack", "8"}, &out); err == nil {
		t.Error("+21 allocs should exceed slack 8 + 1% of 1200")
	}
}

func TestAllocImprovementPasses(t *testing.T) {
	base := writeReport(t, "base.json", []Result{{Name: "GreedyAllocate50", NsPerOp: 5000, AllocsPerOp: 43}})
	curr := writeReport(t, "curr.json", []Result{{Name: "GreedyAllocate50", NsPerOp: 4000, AllocsPerOp: 1}})
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", curr}, &out); err != nil {
		t.Fatalf("alloc improvement should pass: %v\n%s", err, out.String())
	}
}

func TestAddedAndRemovedBenchmarksDoNotFail(t *testing.T) {
	base := writeReport(t, "base.json", []Result{
		{Name: "Old", NsPerOp: 100},
		{Name: "Shared", NsPerOp: 100},
	})
	curr := writeReport(t, "curr.json", []Result{
		{Name: "Shared", NsPerOp: 100},
		{Name: "New", NsPerOp: 100},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", curr}, &out); err != nil {
		t.Fatalf("renamed benchmarks should not fail: %v", err)
	}
	if !strings.Contains(out.String(), "gone") || !strings.Contains(out.String(), "new") {
		t.Errorf("table missing gone/new markers:\n%s", out.String())
	}
}

func TestBadInputsRejected(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("missing flags should be rejected")
	}
	good := writeReport(t, "good.json", []Result{{Name: "X", NsPerOp: 1}})
	if err := run([]string{"-baseline", good, "-current", "/no/such/file.json"}, &out); err == nil {
		t.Error("missing current report should be rejected")
	}
	if err := run([]string{"-baseline", good, "-current", good, "-threshold", "0"}, &out); err == nil {
		t.Error("zero threshold should be rejected")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-baseline", empty, "-current", good}, &out); err == nil {
		t.Error("empty baseline should be rejected")
	}
}

// TestAgainstCommittedBaseline parses the repository's checked-in
// baseline to guard the schema coupling between benchjson and benchdiff.
func TestAgainstCommittedBaseline(t *testing.T) {
	base := filepath.Join("..", "..", "BENCH_sched.json")
	if _, err := os.Stat(base); err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", base}, &out); err != nil {
		t.Fatalf("baseline vs itself must pass: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("self-diff flagged a regression:\n%s", out.String())
	}
}

// TestBytesGate: -bytes-threshold turns B/op growth into a failure;
// off by default so legacy invocations are unchanged.
func TestBytesGate(t *testing.T) {
	base := writeReport(t, "base.json", []Result{{Name: "WireBatch", NsPerOp: 1000, BytesPerOp: 8000}})
	curr := writeReport(t, "curr.json", []Result{{Name: "WireBatch", NsPerOp: 1000, BytesPerOp: 12000}})
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", curr}, &out); err != nil {
		t.Fatalf("gate should be off by default: %v\n%s", err, out.String())
	}
	out.Reset()
	err := run([]string{"-baseline", base, "-current", curr, "-bytes-threshold", "25"}, &out)
	if err == nil || !strings.Contains(out.String(), "BYTES-REGRESSION") {
		t.Fatalf("+50%% B/op should fail a 25%% bytes gate: err=%v\n%s", err, out.String())
	}
}

// TestExtraMetricGate: -extra-threshold gates custom b.ReportMetric
// series such as frames/op.
func TestExtraMetricGate(t *testing.T) {
	base := writeReport(t, "base.json", []Result{
		{Name: "ClusterDay", NsPerOp: 1000, Extra: map[string]float64{"frames/op": 2.5}},
	})
	curr := writeReport(t, "curr.json", []Result{
		{Name: "ClusterDay", NsPerOp: 1000, Extra: map[string]float64{"frames/op": 4.0}},
	})
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", curr}, &out); err != nil {
		t.Fatalf("gate should be off by default: %v\n%s", err, out.String())
	}
	out.Reset()
	err := run([]string{"-baseline", base, "-current", curr, "-extra-threshold", "10"}, &out)
	if err == nil || !strings.Contains(out.String(), "FRAMES/OP-REGRESSION") {
		t.Fatalf("+60%% frames/op should fail a 10%% extra gate: err=%v\n%s", err, out.String())
	}
	// A metric missing from the current report never fails the gate.
	curr2 := writeReport(t, "curr2.json", []Result{{Name: "ClusterDay", NsPerOp: 1000}})
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", curr2, "-extra-threshold", "10"}, &out); err != nil {
		t.Fatalf("missing metric should not fail: %v\n%s", err, out.String())
	}
}
