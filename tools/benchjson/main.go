// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. It reads the benchmark log from stdin
// (or a file argument) and writes one JSON document with the host
// context lines (goos, goarch, pkg, cpu) and one entry per benchmark
// result: iterations, ns/op, and — when -benchmem was set — B/op and
// allocs/op.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -o BENCH_sched.json
//	benchjson bench.log
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkGreedyAllocate10-8 → GreedyAllocate10).
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 if absent.
	Procs int `json:"procs"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem; -1 if the
	// log carried no memory columns.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric pairs by unit (e.g.
	// "frames/op"), which the bench framework prints between ns/op and
	// the -benchmem columns.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches the fixed prefix of a result line, e.g.
//
//	BenchmarkGreedyAllocate10-8   1234   9876 ns/op   120 B/op   7 allocs/op
//
// The measurements after the iteration count are parsed as
// value-unit pairs so custom b.ReportMetric units survive.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(\S.*)$`)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	report, err := Parse(in)
	if err != nil {
		return err
	}
	if len(report.Results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// Parse reads a `go test -bench` log and returns the structured
// report, results sorted by name so reruns diff cleanly.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			report.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{
			Name:        strings.TrimPrefix(m[1], "Benchmark"),
			Procs:       1,
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		if m[2] != "" {
			p, err := strconv.Atoi(m[2])
			if err != nil {
				return nil, fmt.Errorf("parse procs in %q: %w", line, err)
			}
			res.Procs = p
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parse iterations in %q: %w", line, err)
		}
		res.Iterations = iters
		fields := strings.Fields(m[4])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd measurement fields in %q", line)
		}
		sawNs := false
		for i := 0; i < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %s value in %q: %w", fields[i+1], line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = value
				sawNs = true
			case "B/op":
				res.BytesPerOp = int64(value)
			case "allocs/op":
				res.AllocsPerOp = int64(value)
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = value
			}
		}
		if !sawNs {
			return nil, fmt.Errorf("no ns/op measurement in %q", line)
		}
		report.Results = append(report.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(report.Results, func(i, j int) bool {
		return report.Results[i].Name < report.Results[j].Name
	})
	return report, nil
}
