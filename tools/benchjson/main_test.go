package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: enki
cpu: AMD EPYC 7B13
BenchmarkGreedyAllocate10-8         	  252152	      4735 ns/op	    3376 B/op	      35 allocs/op
BenchmarkOptimalAllocate10-8        	     100	  11820345 ns/op	  983041 B/op	   12034 allocs/op
BenchmarkSweepSerial                	       2	 600123456 ns/op
PASS
ok  	enki	12.345s
`

func TestParse(t *testing.T) {
	report, err := Parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if report.GoOS != "linux" || report.GoArch != "amd64" || report.Pkg != "enki" {
		t.Errorf("context lines mis-parsed: %+v", report)
	}
	if len(report.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(report.Results), report.Results)
	}
	// Sorted by name.
	if report.Results[0].Name != "GreedyAllocate10" ||
		report.Results[1].Name != "OptimalAllocate10" ||
		report.Results[2].Name != "SweepSerial" {
		t.Errorf("results not sorted by name: %+v", report.Results)
	}
	g := report.Results[0]
	if g.Procs != 8 || g.Iterations != 252152 || g.NsPerOp != 4735 ||
		g.BytesPerOp != 3376 || g.AllocsPerOp != 35 {
		t.Errorf("greedy line mis-parsed: %+v", g)
	}
	// No -benchmem columns → -1 sentinels, procs default 1.
	s := report.Results[2]
	if s.Procs != 1 || s.BytesPerOp != -1 || s.AllocsPerOp != -1 {
		t.Errorf("sweep line mis-parsed: %+v", s)
	}
}

// TestParseReportMetric: custom b.ReportMetric units print between
// ns/op and the -benchmem columns; they must land in Extra without
// disturbing the standard fields.
func TestParseReportMetric(t *testing.T) {
	const log = `goos: linux
BenchmarkClusterDay/codec=binary/batch=64-8    50   21000000 ns/op   2.500 frames/op   9100 wireB/op   4096 B/op   12 allocs/op
PASS
`
	report, err := Parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 {
		t.Fatalf("got %d results: %+v", len(report.Results), report.Results)
	}
	r := report.Results[0]
	if r.Name != "ClusterDay/codec=binary/batch=64" || r.Procs != 8 {
		t.Errorf("name/procs mis-parsed: %+v", r)
	}
	if r.NsPerOp != 21000000 || r.BytesPerOp != 4096 || r.AllocsPerOp != 12 {
		t.Errorf("standard fields mis-parsed: %+v", r)
	}
	if r.Extra["frames/op"] != 2.5 || r.Extra["wireB/op"] != 9100 {
		t.Errorf("custom metrics mis-parsed: %+v", r.Extra)
	}
}

func TestParseEmpty(t *testing.T) {
	report, err := Parse(strings.NewReader("PASS\nok enki 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 0 {
		t.Errorf("expected no results, got %+v", report.Results)
	}
}
