package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNetGoldenIsCurrent is the same gate CI runs: the committed
// net/api.txt must match the live surface of the net package.
func TestNetGoldenIsCurrent(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-pkg", filepath.Join("..", "..", "net"), "-golden", filepath.Join("..", "..", "net", "api.txt")}, &out)
	if err != nil {
		t.Fatalf("net surface diverged from golden: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "matches") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

// write a toy package, freeze it, drift it, and check the diff report.
func TestDetectsDriftAndUpdate(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "toy")
	if err := os.Mkdir(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join(dir, "api.txt")
	src := `package toy

// Exported API.
const Version = 1

type Widget struct{ Name string }

// Grow makes the widget bigger.
func (w *Widget) Grow(by int) error { return nil }

func New(name string) *Widget { return nil }

func internal() {}

var hidden = 3
`
	if err := os.WriteFile(filepath.Join(pkg, "toy.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-pkg", pkg, "-golden", golden, "-update"}, &out); err != nil {
		t.Fatalf("update: %v", err)
	}
	raw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"const Version = 1",
		"type Widget struct{ Name string }",
		"func (w *Widget) Grow(by int) error",
		"func New(name string) *Widget",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("golden missing %q:\n%s", want, raw)
		}
	}
	if strings.Contains(string(raw), "internal") || strings.Contains(string(raw), "hidden") {
		t.Errorf("golden leaked unexported symbols:\n%s", raw)
	}

	out.Reset()
	if err := run([]string{"-pkg", pkg, "-golden", golden}, &out); err != nil {
		t.Fatalf("fresh golden should match: %v\n%s", err, out.String())
	}

	// Drift: rename New → Make.
	drifted := strings.Replace(src, "func New(", "func Make(", 1)
	if err := os.WriteFile(filepath.Join(pkg, "toy.go"), []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-pkg", pkg, "-golden", golden}, &out)
	if err == nil {
		t.Fatalf("drifted surface should fail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "- func New(name string) *Widget") ||
		!strings.Contains(out.String(), "+ func Make(name string) *Widget") {
		t.Errorf("diff report missing the renamed symbol:\n%s", out.String())
	}

	// Test files never count toward the surface.
	if err := os.WriteFile(filepath.Join(pkg, "toy.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	testSrc := "package toy\n\nfunc ExportedTestHelper() {}\n"
	if err := os.WriteFile(filepath.Join(pkg, "toy_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-pkg", pkg, "-golden", golden}, &out); err != nil {
		t.Fatalf("_test.go files must not affect the surface: %v\n%s", err, out.String())
	}

	// Missing golden names the -update remedy.
	out.Reset()
	err = run([]string{"-pkg", pkg, "-golden", filepath.Join(dir, "absent.txt")}, &out)
	if err == nil || !strings.Contains(err.Error(), "-update") {
		t.Errorf("missing golden error should mention -update, got: %v", err)
	}
}
