module enki

go 1.22
