package enki

import (
	"enki/internal/appliances"
	"enki/internal/coalition"
	"enki/internal/ecc"
	"enki/internal/market"
	"enki/internal/mechanism"
)

// This file re-exports the extension subsystems — the multi-appliance
// model (Section III), coalition formation (Section VIII future work),
// the day-ahead wholesale market (Section I), and the ECC pattern
// learner (Section I) — through the public facade.

// Multi-appliance extension (see internal/appliances).
type (
	// Appliance is one shiftable load of a multi-appliance household.
	Appliance = appliances.Appliance
	// ApplianceHousehold declares several appliances plus a constant
	// nonshiftable base load.
	ApplianceHousehold = appliances.Household
	// AppliancePlan is the center's per-appliance allocation.
	AppliancePlan = appliances.Plan
	// ApplianceConsumption is a household's realized per-appliance use.
	ApplianceConsumption = appliances.Consumption
	// ApplianceSettlement is the household-level financial outcome.
	ApplianceSettlement = appliances.Settlement
)

// AllocateAppliances schedules every appliance of every household with
// the rating-aware greedy allocator.
func AllocateAppliances(p Pricer, households []ApplianceHousehold, rng *RNG) ([]AppliancePlan, error) {
	return appliances.Allocate(p, households, rng)
}

// SettleAppliances settles a multi-appliance day (Eq. 4-8 aggregated
// per household plus the base-load constant).
func SettleAppliances(p Pricer, cfg MechanismConfig, households []ApplianceHousehold, plans []AppliancePlan, consumptions []ApplianceConsumption) (ApplianceSettlement, error) {
	return appliances.Settle(p, mechanism.Config(cfg), households, plans, consumptions)
}

// Coalition extension (see internal/coalition).
type (
	// Coalition is a small group of households accountable as one.
	Coalition = coalition.Coalition
	// CoalitionSettlement is the coalition-aware day outcome.
	CoalitionSettlement = coalition.Settlement
)

// FormCoalitions groups households by swap affinity into coalitions of
// at most maxSize members.
func FormCoalitions(households []Household, maxSize int) ([]Coalition, error) {
	return coalition.Form(households, maxSize)
}

// PlanCoalitionConsumptions decides consumptions with coalition-
// internal allocation exchanges.
func PlanCoalitionConsumptions(households []Household, coalitions []Coalition, assignments []Interval) ([]Interval, error) {
	return coalition.PlanConsumptions(households, coalitions, assignments)
}

// SettleCoalitions settles a coalition-aware day.
func SettleCoalitions(p Pricer, cfg MechanismConfig, households []Household, coalitions []Coalition, assignments, consumptions []Interval, rating float64) (CoalitionSettlement, error) {
	return coalition.Settle(p, mechanism.Config(cfg), households, coalitions, assignments, consumptions, rating)
}

// Wholesale market substrate (see internal/market).
type (
	// MarketOffer is a generator's hourly supply offer.
	MarketOffer = market.Offer
	// Market is a day-ahead merit-order auction.
	Market = market.Market
	// MarketClearing is one hour's dispatch.
	MarketClearing = market.Clearing
)

// NewMarket builds a day-ahead market from generator offers; its
// Pricer method yields a convex tariff usable by every scheduler.
func NewMarket(offers []MarketOffer) (*Market, error) { return market.New(offers) }

// ECC pattern learner (see internal/ecc).
type (
	// PatternLearner learns a household's consumption pattern online.
	PatternLearner = ecc.Learner
	// ECCReporter wraps a learner with a cold-start fallback.
	ECCReporter = ecc.Reporter
	// ECCForecast couples a predicted preference with its confidence.
	ECCForecast = ecc.Forecast
)

// NewPatternLearner builds an ECC learner with the default decay and
// coverage.
func NewPatternLearner(opts ...ecc.Option) (*PatternLearner, error) { return ecc.NewLearner(opts...) }
