package enki_test

import (
	"fmt"

	"enki"
)

// ExampleNeighborhood_RunDay runs one Enki day for three truthful
// households and prints the budget-balance identity of Theorem 1.
func ExampleNeighborhood_RunDay() {
	neighborhood, err := enki.NewNeighborhood()
	if err != nil {
		fmt.Println(err)
		return
	}
	households := []enki.Household{
		{ID: 0, Type: enki.Type{True: enki.MustPreference(18, 22, 2), ValuationFactor: 5},
			Reported: enki.MustPreference(18, 22, 2)},
		{ID: 1, Type: enki.Type{True: enki.MustPreference(17, 23, 2), ValuationFactor: 4},
			Reported: enki.MustPreference(17, 23, 2)},
		{ID: 2, Type: enki.Type{True: enki.MustPreference(19, 24, 3), ValuationFactor: 6},
			Reported: enki.MustPreference(19, 24, 3)},
	}
	out, err := neighborhood.RunDay(households, nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("revenue - ξ·κ(ω) = %.10f\n", out.Settlement.Revenue()-enki.DefaultXi*out.Settlement.Cost)
	fmt.Printf("peak %.0f kWh\n", out.Load.Peak())
	// Output:
	// revenue - ξ·κ(ω) = 0.0000000000
	// peak 4 kWh
}

// ExampleFlexibilityScores reproduces the paper's Example 2: the
// household with the narrower window is less flexible.
func ExampleFlexibilityScores() {
	f := enki.FlexibilityScores([]enki.Preference{
		enki.MustPreference(18, 19, 1), // A: narrow
		enki.MustPreference(18, 20, 1), // B
		enki.MustPreference(18, 20, 1), // C
	})
	fmt.Printf("f_A=%.3f f_B=%.3f f_C=%.3f\n", f[0], f[1], f[2])
	// Output:
	// f_A=0.333 f_B=0.800 f_C=0.800
}

// ExampleValuation shows Eq. 3: concave, maximal at τ = v.
func ExampleValuation() {
	for tau := 0; tau <= 2; tau++ {
		fmt.Printf("V(%d) = %.2f\n", tau, enki.Valuation(tau, 2, 5))
	}
	// Output:
	// V(0) = 0.00
	// V(1) = 3.75
	// V(2) = 5.00
}

// ExampleClosestConsumption shows the automated defection rule: an
// allocation outside the true window snaps to the nearest feasible
// placement inside it.
func ExampleClosestConsumption() {
	truth := enki.MustPreference(18, 22, 2)
	fmt.Println(enki.ClosestConsumption(truth, enki.Interval{Begin: 10, End: 12}))
	fmt.Println(enki.ClosestConsumption(truth, enki.Interval{Begin: 19, End: 21}))
	// Output:
	// (18, 20)
	// (19, 21)
}
