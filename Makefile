GO ?= go

.PHONY: all build test race bench vet fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine fans jobs out over goroutines; the race build
# exercises every parallel path (worker pool, sweep, ablations, study).
race:
	$(GO) test -race ./...

# Compare BenchmarkSweepSerial vs BenchmarkSweepParallel for the
# engine's speedup on this machine.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .
