GO ?= go

.PHONY: all build test race bench bench-all bench-check bench-net bench-net-check chaos differential metric-lint apicheck apicheck-update vet fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine fans jobs out over goroutines; the race build
# exercises every parallel path (worker pool, sweep, ablations, study).
race:
	$(GO) test -race ./...

# Scheduler and sweep benchmarks with a machine-readable report:
# the raw log goes to BENCH_sched.txt, tools/benchjson converts it to
# BENCH_sched.json (ns/op, B/op, allocs/op per benchmark).
bench:
	$(GO) test -run '^$$' -bench '^Benchmark(GreedyAllocate|OptimalAllocate|Sweep|FederatedSnapshot|RecorderSteadyState)' \
		-benchmem . | tee BENCH_sched.txt
	$(GO) run ./tools/benchjson -o BENCH_sched.json BENCH_sched.txt

# Compare BenchmarkSweepSerial vs BenchmarkSweepParallel for the
# engine's speedup on this machine, plus every other benchmark.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem .

# Run the sched/sweep benchmarks fresh and compare against the
# committed BENCH_sched.json baseline; tools/benchdiff fails on any
# >25% ns/op regression. Shared CI machines are noisy, so the CI step
# running this is advisory (continue-on-error), but a local run before
# touching the greedy allocator or the engine is the cheap way to catch
# a real slowdown.
# The alloc gate allows a few allocations of slack: the solver and
# sweep benchmarks allocate data-dependently (map growth, pool
# warm-up), drifting by single digits run to run, while the greedy
# steady-state contract (1 alloc/op, down from 43) still has no room
# to regress meaningfully.
bench-check:
	$(GO) test -run '^$$' -bench '^Benchmark(GreedyAllocate|OptimalAllocate|Sweep|FederatedSnapshot|RecorderSteadyState)' \
		-benchmem . > /tmp/bench-check.txt
	$(GO) run ./tools/benchjson -o /tmp/bench-check.json /tmp/bench-check.txt
	$(GO) run ./tools/benchdiff -baseline BENCH_sched.json -current /tmp/bench-check.json -alloc-slack 8

# Wire-path benchmarks: batch-frame encode/decode per codec plus full
# sharded cluster days on the codec × batch-size axes. The raw log goes
# to BENCH_net.txt and tools/benchjson converts it — including the
# custom frames/op and wireB/op ReportMetric series — into the
# committed BENCH_net.json baseline.
bench-net:
	$(GO) test ./internal/netproto -run '^$$' \
		-bench '^Benchmark(BatchEncode|BatchDecode|ClusterDay)' \
		-benchmem | tee BENCH_net.txt
	$(GO) run ./tools/benchjson -o BENCH_net.json BENCH_net.txt

# Diff fresh wire benchmarks against the committed BENCH_net.json.
# Beyond the usual ns/op and allocs gates, the bytes gate catches codec
# bloat (B/op) and the extra gate catches framing regressions: frames/op
# is deterministic for a fixed population, so even the tight 5% bound
# only trips when batching actually degrades.
bench-net-check:
	$(GO) test ./internal/netproto -run '^$$' \
		-bench '^Benchmark(BatchEncode|BatchDecode|ClusterDay)' \
		-benchmem > /tmp/bench-net.txt
	$(GO) run ./tools/benchjson -o /tmp/bench-net.json /tmp/bench-net.txt
	$(GO) run ./tools/benchdiff -baseline BENCH_net.json -current /tmp/bench-net.json \
		-alloc-slack 8 -bytes-threshold 25 -extra-threshold 5

# The fault-tolerance acceptance suite: chaos tests (deterministic
# fault injection, session resumption, degraded-day settlement, retry
# jitter, and the replica center-kill matrix — TestChaosReplica* kills
# the leader in every settlement phase including between ledger append
# and commit) plus a short fuzz pass over the wire codec, which is the
# surface every injected fault ultimately exercises.
chaos:
	$(GO) test ./internal/netproto -count=1 \
		-run 'Chaos|Fault|Retry|Backoff|Resume|SessionToken|ContextCancel'
	$(GO) test ./cmd/enkitrace -count=1 -run 'Degraded|SurvivingReplica'
	$(GO) test ./internal/netproto -run '^$$' -fuzz FuzzReadMessage -fuzztime 10s
	$(GO) test ./internal/netproto -run '^$$' -fuzz FuzzRoundTrip -fuzztime 10s
	$(GO) test ./internal/netproto -run '^$$' -fuzz FuzzDecodeBatch -fuzztime 10s
	$(GO) test ./internal/netproto -run '^$$' -fuzz FuzzCodecDifferential -fuzztime 10s

# The allocation-engine acceptance suite: the rewritten greedy and
# branch-and-bound engines against the retained seed implementations
# over the seeded instance corpus, the solver property tests (bound
# validity, incumbent monotonicity, worker bit-identity) under the race
# detector, and short fuzz passes over the fuzz-derived greedy corpus.
differential:
	$(GO) test ./internal/sched -count=1 -run 'Differential'
	$(GO) test ./internal/solver -count=1 -race \
		-run 'Differential|WorkersBitIdentical|NeverWorseThanIncumbent|LowerBoundBelowOptimum|SymCorrect'
	$(GO) test ./internal/sched -run '^$$' -fuzz 'FuzzGreedyAllocate$$' -fuzztime 10s
	$(GO) test ./internal/sched -run '^$$' -fuzz FuzzGreedyAllocateRNG -fuzztime 10s

# Metric names must come from the constants in internal/obs/names.go;
# a string-literal registration anywhere else bypasses the inventory
# DESIGN.md documents, so CI rejects it. Span names follow the same
# rule: Start/StartChild take the name first, StartTrace/StartRemote
# take it after the trace context, so both literal shapes are matched.
metric-lint:
	@if grep -rn --include='*.go' --exclude-dir=obs -E '\.(Counter|Gauge|Histogram)\("' . ; then \
		echo 'metric-lint: register metrics via the internal/obs name constants'; exit 1; \
	else \
		echo 'metric-lint: ok'; \
	fi
	@if grep -rn --include='*.go' --exclude-dir=obs -E '\.(Start|StartChild)\("|StartSpan\("|\.(StartTrace|StartRemote)\([^,)]*,[[:space:]]*"' . ; then \
		echo 'metric-lint: name spans via the internal/obs Span* constants'; exit 1; \
	else \
		echo 'metric-lint: span names ok'; \
	fi
	@missing=0; \
	for name in $$(grep -oE '"enki_[a-z_]+"' internal/obs/names.go | tr -d '"'); do \
		if ! grep -q "$$name" DESIGN.md; then \
			echo "metric-lint: $$name is in internal/obs/names.go but undocumented in DESIGN.md"; \
			missing=1; \
		fi; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi; \
	echo 'metric-lint: DESIGN.md inventory ok'

# The v1 API freeze: the exported surface of the net package must match
# the committed net/api.txt golden. Changing the surface is allowed but
# deliberate — regenerate the golden in the same commit so the diff
# shows exactly which symbols moved.
apicheck:
	$(GO) run ./tools/apicheck

apicheck-update:
	$(GO) run ./tools/apicheck -update

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .
