// Quickstart: a five-household neighborhood runs one Enki day.
//
// Each household declares a day-ahead preference (window + duration);
// the center allocates intervals that flatten the evening peak and
// bills each household its social cost. One household misreports and
// defects, and pays for it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"enki"
	"enki/internal/obs"
)

func main() {
	if err := run(); err != nil {
		obs.Logger().Error("quickstart example failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	neighborhood, err := enki.NewNeighborhood(enki.WithTieBreakRNG(enki.NewRNG(7)))
	if err != nil {
		return err
	}

	// Four truthful households and one that misreports: its true need
	// is 18-20 but it claims 10-14 hoping for a cheaper bill.
	households := []enki.Household{
		house(0, enki.MustPreference(18, 22, 2), 5),
		house(1, enki.MustPreference(17, 23, 2), 4),
		house(2, enki.MustPreference(19, 24, 3), 6),
		house(3, enki.MustPreference(16, 20, 1), 3),
		house(4, enki.MustPreference(18, 20, 2), 5),
	}
	households[4].Reported = enki.MustPreference(10, 14, 2) // the lie

	out, err := neighborhood.RunDay(households, enki.ConsumeTruthfully)
	if err != nil {
		return err
	}

	fmt.Println("== Enki day ==")
	fmt.Printf("neighborhood cost κ(ω) = $%.2f, peak %.1f kWh, PAR %.2f\n\n",
		out.Settlement.Cost, out.Load.Peak(), out.PAR())
	fmt.Printf("%-4s %-12s %-12s %-12s %-10s %-8s\n",
		"id", "reported", "allocated", "consumed", "payment", "utility")
	for i, h := range households {
		note := ""
		if out.Consumptions[i] != out.Assignments[i].Interval {
			note = "  <- defected"
		}
		fmt.Printf("%-4d %-12v %-12v %-12v $%-9.2f %-8.2f%s\n",
			h.ID, h.Reported, out.Assignments[i].Interval, out.Consumptions[i],
			out.Settlement.Payments[i], out.Settlement.Utilities[i], note)
	}

	fmt.Printf("\ncenter revenue $%.2f = ξ·κ(ω); center utility $%.2f (Theorem 1: (ξ−1)·κ ≥ 0)\n",
		out.Settlement.Revenue(), out.Settlement.CenterUtility())
	fmt.Println("\nThe misreporter was allocated inside its fake window, defected back")
	fmt.Println("to its true evening slot, and carries the largest social-cost share.")
	return nil
}

func house(id enki.HouseholdID, pref enki.Preference, rho float64) enki.Household {
	return enki.Household{
		ID:       id,
		Type:     enki.Type{True: pref, ValuationFactor: rho},
		Reported: pref,
	}
}
