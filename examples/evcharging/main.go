// EV charging: the paper's motivating application. A block of
// commuters plugs in between 6 and 8 PM and every car needs 2-4 hours
// of charge before the morning. Uncoordinated charging stacks the whole
// block onto the evening peak; Enki spreads it through the night and
// rewards the flexible commuters with smaller bills.
//
// The example compares three worlds over a simulated week:
//  1. no coordination (everyone charges on arrival),
//  2. Enki's greedy allocation with social-cost billing,
//  3. the exact optimal allocation (what a CPLEX-style solver finds).
//
// Run with:
//
//	go run ./examples/evcharging
package main

import (
	"fmt"
	"os"

	"enki"
	"enki/internal/obs"
	"enki/internal/sched"
)

const fleet = 24 // cars on the block

func main() {
	if err := run(); err != nil {
		obs.Logger().Error("evcharging example failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	rng := enki.NewRNG(2026)

	greedy, err := enki.NewNeighborhood(enki.WithTieBreakRNG(rng.Split()))
	if err != nil {
		return err
	}
	optimal, err := enki.NewNeighborhood(enki.WithScheduler(&enki.OptimalScheduler{
		Pricer: enki.Quadratic{Sigma: enki.DefaultSigma},
		Rating: enki.DefaultRating,
	}))
	if err != nil {
		return err
	}
	uncoordinated, err := enki.NewNeighborhood(enki.WithScheduler(sched.Earliest{}))
	if err != nil {
		return err
	}

	fmt.Println("== EV charging week: 24 cars, arrivals 18-20h, departures 6-8h ==")
	fmt.Printf("%-6s %-26s %-26s %-26s\n", "day",
		"uncoordinated (peak/PAR/$)", "Enki greedy (peak/PAR/$)", "optimal (peak/PAR/$)")

	var uncoordCost, enkiCost, optCost float64
	for day := 1; day <= 7; day++ {
		households := drawFleet(rng.Split())

		u, err := uncoordinated.RunDay(households, nil)
		if err != nil {
			return err
		}
		g, err := greedy.RunDay(households, nil)
		if err != nil {
			return err
		}
		o, err := optimal.RunDay(households, nil)
		if err != nil {
			return err
		}
		uncoordCost += u.Settlement.Cost
		enkiCost += g.Settlement.Cost
		optCost += o.Settlement.Cost

		fmt.Printf("%-6d %5.0f kWh %5.2f $%-8.0f %5.0f kWh %5.2f $%-8.0f %5.0f kWh %5.2f $%-8.0f\n",
			day,
			u.Load.Peak(), u.PAR(), u.Settlement.Cost,
			g.Load.Peak(), g.PAR(), g.Settlement.Cost,
			o.Load.Peak(), o.PAR(), o.Settlement.Cost)
	}

	fmt.Printf("\nweek totals: uncoordinated $%.0f, Enki $%.0f (%.0f%% saved), optimal $%.0f\n",
		uncoordCost, enkiCost, 100*(uncoordCost-enkiCost)/uncoordCost, optCost)
	fmt.Printf("Enki is within %.1f%% of optimal while scheduling in microseconds.\n",
		100*(enkiCost-optCost)/optCost)

	// Billing view for the last day: flexible cars pay less per kWh.
	households := drawFleet(rng.Split())
	out, err := greedy.RunDay(households, nil)
	if err != nil {
		return err
	}
	mostFlexible, leastFlexible := 0, 0
	for i := range households {
		if out.Settlement.Flexibility[i] > out.Settlement.Flexibility[mostFlexible] {
			mostFlexible = i
		}
		if out.Settlement.Flexibility[i] < out.Settlement.Flexibility[leastFlexible] {
			leastFlexible = i
		}
	}
	fmt.Printf("\nbilling: car %d (window %v, most flexible) pays $%.2f;\n",
		mostFlexible, households[mostFlexible].Reported, out.Settlement.Payments[mostFlexible])
	fmt.Printf("         car %d (window %v, least flexible) pays $%.2f.\n",
		leastFlexible, households[leastFlexible].Reported, out.Settlement.Payments[leastFlexible])
	return nil
}

// drawFleet builds the evening's charging requests: arrival 18-20,
// departure next morning modeled as the end of the day window, and a
// 2-4 hour charge need.
func drawFleet(rng *enki.RNG) []enki.Household {
	households := make([]enki.Household, fleet)
	for i := range households {
		arrive := 18 + rng.Intn(3)  // 18-20h
		need := 2 + rng.Intn(3)     // 2-4h of charge
		depart := 24 - rng.Intn(2)  // must finish by 23-24h (day horizon)
		if depart-arrive < need+1 { // keep at least one hour of slack
			depart = 24
		}
		pref, err := enki.NewPreference(arrive, depart, need)
		if err != nil {
			// The draw above always fits; a failure is a programming error.
			panic(err)
		}
		households[i] = enki.Household{
			ID:       enki.HouseholdID(i),
			Type:     enki.Type{True: pref, ValuationFactor: 1 + rng.Float64()*9},
			Reported: pref,
		}
	}
	return households
}
