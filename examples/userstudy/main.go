// Userstudy: replay the Section VII experiment with simulated subjects
// and print the paper's tables and figures side by side with the
// published values.
//
// Run with:
//
//	go run ./examples/userstudy
package main

import (
	"fmt"
	"os"

	"enki/internal/experiment"
	"enki/internal/obs"
	"enki/internal/study"
)

func main() {
	if err := run(); err != nil {
		obs.Logger().Error("userstudy example failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiment.DefaultConfig()
	cfg.Seed = 42
	res, err := experiment.RunUserStudy(cfg, study.DefaultStudyConfig())
	if err != nil {
		return err
	}

	fmt.Println(res.RenderTableII())
	fmt.Println("paper Table II:  0.2049     0.3625     0.2938     0.125")
	fmt.Println()
	fmt.Println(res.RenderTableIII())
	fmt.Println("paper Table III: < 0.0001   0.0532     0.0078     < 0.0001")
	fmt.Println()
	fmt.Println(res.RenderTableIV())
	fmt.Println("paper Table IV:  T1 0.23/0.34/0.31/0.15; T2 0.14/0.44/0.25/0.03")
	fmt.Println()
	fmt.Println(res.RenderFigure8())
	fmt.Println()
	fmt.Println(res.RenderFigure9())
	return nil
}
