// Smartmeter: the full ECC story of Section I. Each household's smart
// meter learns its daily consumption pattern online, predicts
// tomorrow's demand, and reports it to the neighborhood center over the
// Figure 1 TCP protocol — no manual preference entry.
//
// Early on the ECCs' predictions are poor (cold start), so households
// are sometimes forced to defect when the allocation misses their real
// routine. As the learners converge, defections and the defectors'
// bills disappear.
//
// Run with:
//
//	go run ./examples/smartmeter
package main

import (
	"fmt"
	"math"
	"os"

	"enki/internal/core"
	"enki/internal/ecc"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// learnedPolicy is an ECC-driven household agent: it reports what its
// learner predicts, consumes per its hidden tolerance window, and feeds
// every realized day back into the learner. The ECC never sees the
// tolerance directly — it discovers it from where the household
// actually ends up consuming (defections included).
type learnedPolicy struct {
	reporter  *ecc.Reporter
	tolerance core.Preference // the household's hidden true window
}

func newLearnedPolicy(mu float64, dur int) (*learnedPolicy, error) {
	learner, err := ecc.NewLearner(ecc.WithAlpha(0.3))
	if err != nil {
		return nil, err
	}
	begin := int(math.Round(mu)) - 2
	if begin < 0 {
		begin = 0
	}
	end := begin + dur + 4
	if end > core.HoursPerDay {
		end = core.HoursPerDay
		begin = end - dur - 4
	}
	return &learnedPolicy{
		reporter: &ecc.Reporter{
			Learner:  learner,
			Fallback: core.MustPreference(0, 24, dur), // know nothing yet
			MinDays:  2,
		},
		tolerance: core.Preference{
			Window:   core.Interval{Begin: begin, End: end},
			Duration: dur,
		},
	}, nil
}

func (p *learnedPolicy) Report(int) core.Preference {
	forecast, err := p.reporter.Report()
	if err != nil {
		return core.Preference{Window: core.Interval{Begin: 0, End: 24}, Duration: p.tolerance.Duration}
	}
	return forecast.Preference
}

func (p *learnedPolicy) Consume(_ int, allocation core.Interval) core.Interval {
	consumed := core.ClosestConsumption(p.tolerance, allocation)
	_ = p.reporter.Learner.Observe(consumed)
	return consumed
}

func (p *learnedPolicy) Feedback(int, netproto.PaymentDetail) {}

func main() {
	if err := run(); err != nil {
		obs.Logger().Error("smartmeter example failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	pricer := pricing.Quadratic{Sigma: pricing.DefaultSigma}
	center, err := netproto.NewCenter("127.0.0.1:0", netproto.CenterConfig{
		Scheduler: &sched.Greedy{Pricer: pricer, Rating: 2},
		Pricer:    pricer,
		Mechanism: mechanism.DefaultConfig(),
		Rating:    2,
	})
	if err != nil {
		return err
	}
	defer center.Close()

	routines := []struct {
		mu  float64
		dur int
	}{
		{18.5, 2}, // dinner-time EV charge
		{19.5, 3}, // evening laundry + dryer
		{17.0, 1}, // quick cooker
		{20.0, 2}, // late dishwasher
		{8.0, 2},  // morning heat pump boost
	}
	agents := make([]*netproto.Agent, len(routines))
	for i, r := range routines {
		policy, err := newLearnedPolicy(r.mu, r.dur)
		if err != nil {
			return err
		}
		a, err := netproto.Dial(center.Addr(), core.HouseholdID(i), policy)
		if err != nil {
			return err
		}
		agents[i] = a
		defer a.Close()
	}
	if err := center.WaitForAgents(len(agents), netproto.DefaultReplyTimeout); err != nil {
		return err
	}

	fmt.Println("== ECC smart meters learning household routines ==")
	fmt.Printf("%-5s %-12s %-10s %-12s\n", "day", "defections", "peak", "cost")
	const days = 21
	var earlyDefects, lateDefects int
	for day := 1; day <= days; day++ {
		record, err := center.RunDay(day)
		if err != nil {
			return err
		}
		defects := 0
		for i := range record.Reports {
			if record.Consumptions[i].Interval != record.Assignments[i].Interval {
				defects++
			}
		}
		if day <= 7 {
			earlyDefects += defects
		} else if day > days-7 {
			lateDefects += defects
		}
		if day <= 5 || day%7 == 0 {
			fmt.Printf("%-5d %-12d %-10.1f $%-12.2f\n", day, defects, record.Peak, record.Cost)
		}
	}
	fmt.Printf("\nfirst week: %d defections; last week: %d — the ECCs learned the routines\n",
		earlyDefects, lateDefects)
	fmt.Println("(reports start as all-day fallbacks, then narrow to each household's true pattern)")
	return nil
}
