// Neighborhood: the distributed deployment of Figure 1. A center
// process and several household ECC agents talk the day-ahead protocol
// over loopback TCP — the same binaries as cmd/enkid and cmd/enkiagent,
// driven in-process here so the example is self-contained.
//
// One household misreports its window and defects; the settlement shows
// Enki charging it more than its truthful neighbors.
//
// Run with:
//
//	go run ./examples/neighborhood
package main

import (
	"fmt"
	"os"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

func main() {
	if err := run(); err != nil {
		obs.Logger().Error("neighborhood example failed", "err", err)
		os.Exit(1)
	}
}

func run() error {
	pricer := pricing.Quadratic{Sigma: pricing.DefaultSigma}
	center, err := netproto.NewCenter("127.0.0.1:0", netproto.CenterConfig{
		Scheduler: &sched.Greedy{Pricer: pricer, Rating: 2},
		Pricer:    pricer,
		Mechanism: mechanism.DefaultConfig(),
		Rating:    2,
	})
	if err != nil {
		return err
	}
	defer center.Close()
	fmt.Printf("center listening on %s\n", center.Addr())

	// Three truthful agents plus one misreporter that claims an early
	// window but truly needs the evening.
	policies := []netproto.Policy{
		&netproto.Truthful{Type: core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}},
		&netproto.Truthful{Type: core.Type{True: core.MustPreference(17, 23, 2), ValuationFactor: 4}},
		&netproto.Truthful{Type: core.Type{True: core.MustPreference(19, 24, 3), ValuationFactor: 6}},
		&netproto.Misreporter{
			Type:     core.Type{True: core.MustPreference(18, 20, 2), ValuationFactor: 5},
			Reported: core.MustPreference(10, 14, 2),
		},
	}
	agents := make([]*netproto.Agent, len(policies))
	for i, p := range policies {
		a, err := netproto.Dial(center.Addr(), core.HouseholdID(i), p)
		if err != nil {
			return err
		}
		agents[i] = a
		defer a.Close()
	}
	if err := center.WaitForAgents(len(agents), netproto.DefaultReplyTimeout); err != nil {
		return err
	}

	for day := 1; day <= 3; day++ {
		record, err := center.RunDay(day)
		if err != nil {
			return err
		}
		fmt.Printf("\nday %d: neighborhood pays $%.2f, peak %.1f kWh\n", day, record.Cost, record.Peak)
		for i, r := range record.Reports {
			note := ""
			if record.Consumptions[i].Interval != record.Assignments[i].Interval {
				note = "  <- defected"
			}
			fmt.Printf("  household %d: reported %v -> allocated %v, consumed %v, pays $%.2f%s\n",
				r.ID, r.Pref, record.Assignments[i].Interval,
				record.Consumptions[i].Interval, record.Payments[i], note)
		}
	}
	fmt.Println("\nthe misreporter's defection raises its social-cost share every day;")
	fmt.Println("its truthful neighbors pay less for the same energy.")
	return nil
}
