package enki

import (
	"math"
	"testing"
)

func TestApplianceFacade(t *testing.T) {
	households := []ApplianceHousehold{
		{
			ID:       0,
			BaseLoad: 0.4,
			Appliances: []Appliance{
				{
					Name:     "ev",
					Type:     Type{True: MustPreference(18, 24, 3), ValuationFactor: 5},
					Reported: MustPreference(18, 24, 3),
					Rating:   3,
				},
			},
		},
		{
			ID: 1,
			Appliances: []Appliance{
				{
					Name:     "dryer",
					Type:     Type{True: MustPreference(17, 22, 2), ValuationFactor: 4},
					Reported: MustPreference(17, 22, 2),
					Rating:   2,
				},
			},
		},
	}
	pricer := Quadratic{Sigma: DefaultSigma}
	plans, err := AllocateAppliances(pricer, households, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cons := make([]ApplianceConsumption, len(plans))
	for i, p := range plans {
		cons[i] = ApplianceConsumption{ID: p.ID, Intervals: p.Intervals}
	}
	s, err := SettleAppliances(pricer, DefaultMechanismConfig(), households, plans, cons)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Revenue()-DefaultXi*s.Cost) > 1e-9 {
		t.Errorf("appliance revenue %g != ξκ %g", s.Revenue(), DefaultXi*s.Cost)
	}
}

func TestCoalitionFacade(t *testing.T) {
	households := truthfulHouseholds()
	coalitions, err := FormCoalitions(households, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNeighborhood()
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.RunDay(households, nil)
	if err != nil {
		t.Fatal(err)
	}
	assignments := make([]Interval, len(households))
	for i, a := range out.Assignments {
		assignments[i] = a.Interval
	}
	cons, err := PlanCoalitionConsumptions(households, coalitions, assignments)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SettleCoalitions(Quadratic{Sigma: DefaultSigma}, DefaultMechanismConfig(),
		households, coalitions, assignments, cons, DefaultRating)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Revenue()-DefaultXi*s.Cost) > 1e-9 {
		t.Errorf("coalition revenue %g != ξκ %g", s.Revenue(), DefaultXi*s.Cost)
	}
}

func TestMarketFacade(t *testing.T) {
	m, err := NewMarket([]MarketOffer{
		{Generator: "hydro", Quantity: 30, Price: 0.05},
		{Generator: "gas", Quantity: 50, Price: 0.30},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Pricer()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNeighborhood(WithPricer(p), WithScheduler(&GreedyScheduler{Pricer: p, Rating: DefaultRating}))
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.RunDay(truthfulHouseholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Settlement.Cost <= 0 {
		t.Errorf("market-priced day cost %g", out.Settlement.Cost)
	}
	if _, _, err := m.ClearDay(out.Load); err != nil {
		t.Errorf("realized day does not clear: %v", err)
	}
}

func TestECCFacade(t *testing.T) {
	l, err := NewPatternLearner()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Observe(Interval{Begin: 19, End: 21}); err != nil {
			t.Fatal(err)
		}
	}
	r := &ECCReporter{Learner: l, Fallback: MustPreference(0, 24, 2)}
	f, err := r.Report()
	if err != nil {
		t.Fatal(err)
	}
	if f.Preference.Window != (Interval{Begin: 19, End: 21}) {
		t.Errorf("learned window %v, want (19, 21)", f.Preference.Window)
	}
}
