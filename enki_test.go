package enki

import (
	"math"
	"testing"

	"enki/internal/solver"
)

func truthfulHouseholds() []Household {
	types := []Type{
		{True: MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: MustPreference(19, 24, 3), ValuationFactor: 6},
		{True: MustPreference(16, 20, 1), ValuationFactor: 3},
	}
	hs := make([]Household, len(types))
	for i, t := range types {
		hs[i] = Household{ID: HouseholdID(i), Type: t, Reported: t.True}
	}
	return hs
}

func TestNewNeighborhoodDefaults(t *testing.T) {
	n, err := NewNeighborhood()
	if err != nil {
		t.Fatal(err)
	}
	if n.Rating() != DefaultRating {
		t.Errorf("rating = %g, want %g", n.Rating(), DefaultRating)
	}
}

func TestNewNeighborhoodOptionValidation(t *testing.T) {
	if _, err := NewNeighborhood(WithRating(0)); err == nil {
		t.Error("zero rating should be rejected")
	}
	if _, err := NewNeighborhood(WithPricer(nil)); err == nil {
		t.Error("nil pricer should be rejected")
	}
	if _, err := NewNeighborhood(WithMechanism(MechanismConfig{K: 1, Xi: 0.5})); err == nil {
		t.Error("xi < 1 should be rejected")
	}
}

func TestRunDayCompliant(t *testing.T) {
	n, err := NewNeighborhood(WithTieBreakRNG(NewRNG(1)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := n.RunDay(truthfulHouseholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compliance: consumption equals assignment; no defection scores.
	for i := range out.Assignments {
		if out.Consumptions[i] != out.Assignments[i].Interval {
			t.Errorf("household %d consumed %v, assigned %v",
				i, out.Consumptions[i], out.Assignments[i].Interval)
		}
		if out.Settlement.Defection[i] != 0 {
			t.Errorf("household %d has defection %g", i, out.Settlement.Defection[i])
		}
	}
	// Theorem 1: the center's utility is exactly (ξ−1)·κ(ω).
	want := (DefaultXi - 1) * out.Settlement.Cost
	if math.Abs(out.Settlement.CenterUtility()-want) > 1e-9 {
		t.Errorf("center utility %g, want %g", out.Settlement.CenterUtility(), want)
	}
	if out.PAR() < 1 {
		t.Errorf("PAR %g below 1", out.PAR())
	}
}

func TestRunDayWithDefector(t *testing.T) {
	n, err := NewNeighborhood()
	if err != nil {
		t.Fatal(err)
	}
	households := truthfulHouseholds()
	// Household 0 misreports an early window but truly wants (18, 22).
	households[0].Reported = MustPreference(10, 14, 2)
	out, err := n.RunDay(households, ConsumeTruthfully)
	if err != nil {
		t.Fatal(err)
	}
	if out.Consumptions[0] == out.Assignments[0].Interval {
		t.Fatal("misreporter should have been forced to defect")
	}
	if out.Settlement.Defection[0] <= 0 {
		t.Errorf("defector's score %g, want > 0", out.Settlement.Defection[0])
	}
	if out.Settlement.Flexibility[0] != 0 {
		t.Errorf("defector keeps flexibility %g", out.Settlement.Flexibility[0])
	}
	// Everyone else complied.
	for i := 1; i < len(households); i++ {
		if out.Settlement.Defection[i] != 0 {
			t.Errorf("household %d has defection %g", i, out.Settlement.Defection[i])
		}
	}
}

func TestRunDayWithOptimalScheduler(t *testing.T) {
	opt := &OptimalScheduler{
		Pricer:  Quadratic{Sigma: DefaultSigma},
		Rating:  DefaultRating,
		Options: SolverOptions{},
	}
	n, err := NewNeighborhood(WithScheduler(opt))
	if err != nil {
		t.Fatal(err)
	}
	greedyN, err := NewNeighborhood()
	if err != nil {
		t.Fatal(err)
	}
	hs := truthfulHouseholds()
	optOut, err := n.RunDay(hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	greedyOut, err := greedyN.RunDay(hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if optOut.Settlement.Cost > greedyOut.Settlement.Cost+1e-9 {
		t.Errorf("optimal cost %g exceeds greedy %g",
			optOut.Settlement.Cost, greedyOut.Settlement.Cost)
	}
	if !opt.LastResult.Optimal {
		t.Error("small instance must be proven optimal")
	}
	_ = solver.Options{} // keep the re-export exercised
}

func TestRunDayEmpty(t *testing.T) {
	n, err := NewNeighborhood()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunDay(nil, nil); err == nil {
		t.Error("empty household set should be rejected")
	}
}

func TestProfileGeneratorFacade(t *testing.T) {
	gen, err := NewProfileGenerator(NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	p := gen.Draw()
	if err := p.Validate(); err != nil {
		t.Fatalf("generated profile invalid: %v", err)
	}
	if p.Rating != DefaultRating {
		t.Errorf("rating %g, want %g", p.Rating, DefaultRating)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if _, err := NewPreference(22, 18, 1); err == nil {
		t.Error("invalid preference should be rejected")
	}
	if got := Valuation(2, 2, 5); got != 5 {
		t.Errorf("Valuation(2,2,5) = %g, want 5", got)
	}
	truth := MustPreference(18, 20, 2)
	if got := ClosestConsumption(truth, Interval{Begin: 10, End: 12}); got != (Interval{Begin: 18, End: 20}) {
		t.Errorf("ClosestConsumption = %v", got)
	}
	f := FlexibilityScores([]Preference{MustPreference(18, 22, 2)})
	if len(f) != 1 || f[0] <= 0 {
		t.Errorf("FlexibilityScores = %v", f)
	}
}
