package net_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"time"

	"enki"
	enkinet "enki/net"
)

// exampleTypes is a small fixed neighborhood: three households with
// overlapping evening windows.
var exampleTypes = []enki.Type{
	{True: enki.MustPreference(18, 22, 2), ValuationFactor: 5},
	{True: enki.MustPreference(17, 23, 2), ValuationFactor: 4},
	{True: enki.MustPreference(19, 24, 3), ValuationFactor: 6},
}

// Example runs one fault-free settlement day over TCP using the
// options-based constructors, then checks the Theorem 1 budget
// identity on the resulting record.
func Example() {
	ctx := context.Background()
	var ledger bytes.Buffer
	center, err := enkinet.StartCenter("127.0.0.1:0",
		enkinet.WithPhaseDeadline(5*time.Second),
		enkinet.WithTraceSeed(7),
		enkinet.WithLedger(enkinet.NewJournal(&ledger)),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer center.Close()

	for i, typ := range exampleTypes {
		agent, err := enkinet.Connect(ctx, center.Addr(), enki.HouseholdID(i), &enkinet.Truthful{Type: typ})
		if err != nil {
			fmt.Println(err)
			return
		}
		defer agent.Close()
	}
	if err := center.WaitForAgentsContext(ctx, len(exampleTypes)); err != nil {
		fmt.Println(err)
		return
	}

	record, err := center.RunDayContext(ctx, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	var revenue float64
	for _, p := range record.Payments {
		revenue += p
	}
	residual := revenue - enki.DefaultXi*record.Cost
	fmt.Printf("households settled: %d\n", len(record.Payments))
	fmt.Printf("budget balanced: %v\n", math.Abs(residual) < 1e-9)
	fmt.Printf("degraded: %v\n", record.Substituted != nil || record.Absent != nil)
	// Output:
	// households settled: 3
	// budget balanced: true
	// degraded: false
}

// ExampleStartCluster settles many neighborhoods in one call: twelve
// households partitioned into four shards, every protocol message
// crossing its shard link as a binary batch frame. Each shard balances
// its own Theorem 1 budget and the merged record sums them.
func ExampleStartCluster() {
	ctx := context.Background()
	cluster, err := enkinet.StartCluster(ctx,
		enkinet.WithShards(4),
		enkinet.WithCodec(enkinet.CodecBinary),
		enkinet.WithTraceSeed(7),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	for i := 0; i < 12; i++ {
		typ := exampleTypes[i%len(exampleTypes)]
		if err := cluster.Join(enki.HouseholdID(i), &enkinet.Truthful{Type: typ}); err != nil {
			fmt.Println(err)
			return
		}
	}

	record, err := cluster.ClusterDay(ctx, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	balanced := true
	for _, shard := range record.Shards {
		if math.Abs(shard.Revenue-enki.DefaultXi*shard.Cost) > 1e-9 {
			balanced = false
		}
	}
	fmt.Printf("shards settled: %d\n", len(record.Shards))
	fmt.Printf("households settled: %d\n", record.Settled)
	fmt.Printf("every shard budget balanced: %v\n", balanced)
	fmt.Printf("merged budget balanced: %v\n", math.Abs(record.Revenue-enki.DefaultXi*record.Cost) < 1e-9)
	// Output:
	// shards settled: 4
	// households settled: 12
	// every shard budget balanced: true
	// merged budget balanced: true
}

// ExampleWithFaultPlan injects a deterministic link cut into one
// agent's message stream. The agent's retry policy reconnects it, the
// center replays the message it missed, and the day settles exactly as
// a fault-free day would.
func ExampleWithFaultPlan() {
	ctx := context.Background()
	var ledger bytes.Buffer
	center, err := enkinet.StartCenter("127.0.0.1:0",
		enkinet.WithPhaseDeadline(5*time.Second),
		enkinet.WithTraceSeed(7),
		enkinet.WithLedger(enkinet.NewJournal(&ledger)),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer center.Close()

	// Message index 2 is this agent's consumption reply: the fault
	// injector cuts the link instead of sending it.
	plan, err := enkinet.ParseFaultPlan("drop@2")
	if err != nil {
		fmt.Println(err)
		return
	}
	retry := enkinet.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        1,
	}
	for i, typ := range exampleTypes {
		var opts []enkinet.Option
		if i == 0 {
			opts = []enkinet.Option{enkinet.WithFaultPlan(plan), enkinet.WithRetryPolicy(retry)}
		}
		agent, err := enkinet.Connect(ctx, center.Addr(), enki.HouseholdID(i), &enkinet.Truthful{Type: typ}, opts...)
		if err != nil {
			fmt.Println(err)
			return
		}
		defer agent.Close()
	}
	if err := center.WaitForAgentsContext(ctx, len(exampleTypes)); err != nil {
		fmt.Println(err)
		return
	}

	record, err := center.RunDayContext(ctx, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	records, err := enkinet.ReadJournal(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("day completed despite fault: %v\n", len(records) == 1)
	fmt.Printf("households settled: %d\n", len(record.Payments))
	fmt.Printf("degraded: %v\n", record.Substituted != nil || record.Absent != nil)
	// Output:
	// day completed despite fault: true
	// households settled: 3
	// degraded: false
}

// ExampleStartReplicaSet replicates the settlement center across three
// replicas, kills the leader after the first day, and lets the lowest
// live replica take over: the agents reconnect through the set's
// dialer with their session tokens and the second day settles normally
// on the new leader.
func ExampleStartReplicaSet() {
	ctx := context.Background()
	var ledger bytes.Buffer
	rs, err := enkinet.StartReplicaSet(ctx,
		enkinet.WithReplicas(3),
		enkinet.WithPhaseDeadline(5*time.Second),
		enkinet.WithTraceSeed(7),
		enkinet.WithLedger(enkinet.NewJournal(&ledger)),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer rs.Close()

	for i, typ := range exampleTypes {
		agent, err := enkinet.Connect(ctx, rs.Addr(), enki.HouseholdID(i), &enkinet.Truthful{Type: typ},
			enkinet.WithDialer(rs.Dialer()),
			enkinet.WithRetryPolicy(enkinet.DefaultRetryPolicy()),
		)
		if err != nil {
			fmt.Println(err)
			return
		}
		defer agent.Close()
	}
	if err := rs.WaitForAgentsContext(ctx, len(exampleTypes)); err != nil {
		fmt.Println(err)
		return
	}

	if _, err := rs.RunDayContext(ctx, 1); err != nil {
		fmt.Println(err)
		return
	}
	if err := rs.Kill(rs.Leader()); err != nil {
		fmt.Println(err)
		return
	}
	record, err := rs.RunDayContext(ctx, 2)
	if err != nil {
		fmt.Println(err)
		return
	}

	var revenue float64
	for _, p := range record.Payments {
		revenue += p
	}
	residual := revenue - enki.DefaultXi*record.Cost
	records, err := enkinet.ReadJournal(bytes.NewReader(ledger.Bytes()))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("leader after failover: %d\n", rs.Leader())
	fmt.Printf("days in merged ledger: %d\n", len(records))
	fmt.Printf("budget balanced: %v\n", math.Abs(residual) < 1e-9)
	fmt.Printf("degraded: %v\n", record.Substituted != nil || record.Absent != nil)
	// Output:
	// leader after failover: 1
	// days in merged ledger: 2
	// budget balanced: true
	// degraded: false
}
