// Package net is the public facade over Enki's settlement protocol. It
// re-exports the center, the agent, the sharded cluster, and the
// fault-tolerance surface of internal/netproto so that library users
// can run a networked neighborhood — or thousands of them — without
// reaching into internal packages.
//
// A minimal TCP session:
//
//	center, _ := net.StartCenter("127.0.0.1:0", net.WithPhaseDeadline(5*time.Second))
//	agent, _ := net.Connect(ctx, center.Addr(), 0, &net.Truthful{Type: typ})
//	center.WaitForAgentsContext(ctx, 1)
//	record, _ := center.RunDayContext(ctx, 1)
//
// StartCenter is the single-shard special case: one neighborhood, real
// sockets. To settle many neighborhoods concurrently, StartCluster
// partitions the households into shards and drives every shard's
// protocol messages through the same batched wire framing a TCP
// connection negotiates, minus the sockets:
//
//	cluster, _ := net.StartCluster(ctx, net.WithShards(1000), net.WithCodec(net.CodecBinary))
//	for i, typ := range types {
//		cluster.Join(core.HouseholdID(i), &net.Truthful{Type: typ})
//	}
//	record, _ := cluster.ClusterDay(ctx, 1) // per-shard DayRecords, merged deterministically
//
// To survive the center itself crashing, StartReplicaSet replicates the
// settlement journal across 2f+1 replicas with a quorum commit rule and
// fails over mid-day — the next leader resumes the day from the
// replicated journal and the agents reconnect through the set's Dialer:
//
//	rs, _ := net.StartReplicaSet(ctx, net.WithReplicas(3), net.WithLedger(journal))
//	agent, _ := net.Connect(ctx, rs.Addr(), 0, &net.Truthful{Type: typ},
//		net.WithDialer(rs.Dialer()), net.WithRetryPolicy(net.DefaultRetryPolicy()))
//	rs.WaitForAgentsContext(ctx, 1)
//	record, _ := rs.RunDayContext(ctx, 1)
//
// For fault-tolerant agents add net.WithRetryPolicy; for deterministic
// chaos testing add net.WithFaultPlan (per-connection) or
// net.WithShardFaultPlan (per-shard). See example_test.go for complete
// runnable sessions.
//
// Every With* option declares which constructors it configures;
// passing one elsewhere (say WithShards to Connect) is a descriptive
// error rather than a silent no-op. Failure modes are classified by
// the exported sentinels (ErrNotLeader, ErrQuorumLost,
// ErrSessionExpired, ErrRetryExhausted) for errors.Is. Deprecated
// pre-v1 constructors live in legacy.go with a migration table.
package net

import (
	"context"
	"io"
	stdnet "net"

	"enki/internal/core"
	"enki/internal/netproto"
)

// Protocol endpoints and behaviours (see internal/netproto).
type (
	// Center is the neighborhood center: it registers agents and runs
	// the daily request/preference/allocation/consumption/payment cycle.
	Center = netproto.Center
	// CenterConfig is the center's explicit configuration struct;
	// options-based construction via StartCenter is preferred.
	CenterConfig = netproto.CenterConfig
	// Agent is a household endpoint driven by a Policy.
	Agent = netproto.Agent
	// Policy decides how a household reports and consumes.
	Policy = netproto.Policy
	// Truthful reports its true preference and consumes as assigned.
	Truthful = netproto.Truthful
	// Misreporter widens its reported window to appear flexible.
	Misreporter = netproto.Misreporter
	// Option configures StartCenter, StartCenterListener, Connect, and
	// NewAgent.
	Option = netproto.Option
	// DialFunc establishes one transport connection to the center.
	DialFunc = netproto.DialFunc
	// RetryPolicy bounds agent reconnection: attempts, exponential
	// backoff, and seeded jitter.
	RetryPolicy = netproto.RetryPolicy
	// FaultPlan schedules deterministic faults on outbound messages.
	FaultPlan = netproto.FaultPlan
	// FaultAction is one scheduled fault: drop, delay, dup, or garble.
	FaultAction = netproto.FaultAction
	// Journal persists per-day DayRecords as JSONL.
	Journal = netproto.Journal
	// DayRecord is a completed settlement day, including any degraded
	// households (Substituted, Absent).
	DayRecord = netproto.DayRecord
	// Replay summarizes a journal for crash recovery.
	Replay = netproto.Replay
	// PaymentDetail is the per-household payment message body.
	PaymentDetail = netproto.PaymentDetail
	// Cluster is the sharded multi-neighborhood settlement service.
	Cluster = netproto.Cluster
	// ClusterDayRecord is one settled day merged across every shard.
	ClusterDayRecord = netproto.ClusterDayRecord
	// ShardDay is one neighborhood's outcome within a cluster day.
	ShardDay = netproto.ShardDay
	// ReplicaSet is a settlement center replicated across 2f+1 nodes
	// with a quorum journal and mid-day leader failover.
	ReplicaSet = netproto.ReplicaSet
)

// Sentinel errors, for errors.Is. Constructors and agents wrap these
// consistently so callers can classify failures without string
// matching.
var (
	// ErrNotLeader marks an operation routed to a replica that no
	// longer leads.
	ErrNotLeader = netproto.ErrNotLeader
	// ErrQuorumLost marks a replicated operation that could not reach a
	// majority of replicas.
	ErrQuorumLost = netproto.ErrQuorumLost
	// ErrSessionExpired marks a reconnect whose session token the
	// center no longer recognizes.
	ErrSessionExpired = netproto.ErrSessionExpired
	// ErrRetryExhausted marks an agent that spent every reconnect
	// attempt of its retry policy.
	ErrRetryExhausted = netproto.ErrRetryExhausted
)

// Batch-frame codecs a connection or cluster link can negotiate.
const (
	// CodecJSON is the JSON codec inside batch frames (the default).
	CodecJSON = netproto.CodecJSON
	// CodecBinary is the compact binary codec.
	CodecBinary = netproto.CodecBinary
	// DefaultBatchSize is the messages-per-frame cap when batching is
	// enabled without an explicit WithBatchSize.
	DefaultBatchSize = netproto.DefaultBatchSize
)

// Fault actions a FaultPlan can schedule.
const (
	FaultNone   = netproto.FaultNone
	FaultDrop   = netproto.FaultDrop
	FaultDelay  = netproto.FaultDelay
	FaultDup    = netproto.FaultDup
	FaultGarble = netproto.FaultGarble
)

// Protocol defaults.
const (
	// DefaultPhaseDeadline bounds each protocol phase on the center.
	DefaultPhaseDeadline = netproto.DefaultPhaseDeadline
	// DefaultFaultHold is the delay a FaultDelay injects when the plan
	// sets no Hold.
	DefaultFaultHold = netproto.DefaultFaultHold
	// DefaultReplicas is StartReplicaSet's replica count without
	// WithReplicas: 2f+1 with f=1.
	DefaultReplicas = netproto.DefaultReplicas
	// DefaultQuorumTimeout bounds each replica append/commit round trip.
	DefaultQuorumTimeout = netproto.DefaultQuorumTimeout
)

// StartCenter listens on addr and serves the settlement protocol,
// configured by options (default: quadratic pricing, greedy scheduling,
// paper mechanism parameters).
func StartCenter(addr string, opts ...Option) (*Center, error) {
	return netproto.StartCenter(addr, opts...)
}

// StartCenterListener is StartCenter over a caller-supplied listener
// (for TLS or test transports).
func StartCenterListener(ln stdnet.Listener, opts ...Option) (*Center, error) {
	return netproto.StartCenterListener(ln, opts...)
}

// Connect dials the center, registers household id, and returns a
// running agent. The context governs the initial dial and handshake;
// later reconnects are governed by the retry policy.
func Connect(ctx context.Context, addr string, id core.HouseholdID, policy Policy, opts ...Option) (*Agent, error) {
	return netproto.Connect(ctx, addr, id, policy, opts...)
}

// NewAgent runs an agent over a caller-supplied connection. Without
// WithDialer such an agent cannot reconnect after a link failure.
func NewAgent(conn stdnet.Conn, id core.HouseholdID, policy Policy, opts ...Option) (*Agent, error) {
	return netproto.NewAgent(conn, id, policy, opts...)
}

// StartCluster starts a sharded settlement service: the households
// enrolled via Join are partitioned into WithShards neighborhoods and
// every ClusterDay settles all of them concurrently over a worker pool,
// bit-identically for any worker count or join order. Every protocol
// message crosses a shard link as a real batch frame in the WithCodec
// codec, so the wire metrics (frames, messages per frame, per-codec
// bytes) measure the same framing a TCP connection would carry.
func StartCluster(ctx context.Context, opts ...Option) (*Cluster, error) {
	return netproto.StartCluster(ctx, opts...)
}

// StartReplicaSet starts a quorum-replicated settlement center:
// WithReplicas(n) nodes (n odd, default 3), one of which leads the
// agent-facing protocol while replicating every durable decision —
// memberships, phase boundaries, settled days — to the others,
// committing each once a majority holds it. If the leader dies, the
// lowest live replica takes over mid-day and resumes from the last
// committed phase boundary; agents that dial through Dialer and carry a
// retry policy reconnect to the new leader with their session tokens
// and the day settles to the same ledger bytes as a fault-free run.
// Replica health is served at /api/v1/replicas on Operator's handler.
func StartReplicaSet(ctx context.Context, opts ...Option) (*ReplicaSet, error) {
	return netproto.StartReplicaSet(ctx, opts...)
}

// Configuration options, re-exported from internal/netproto.
var (
	WithScheduler      = netproto.WithScheduler
	WithPricer         = netproto.WithPricer
	WithMechanism      = netproto.WithMechanism
	WithRating         = netproto.WithRating
	WithPhaseDeadline  = netproto.WithPhaseDeadline
	WithTraceSeed      = netproto.WithTraceSeed
	WithLedger         = netproto.WithLedger
	WithFaultPlan      = netproto.WithFaultPlan
	WithRetryPolicy    = netproto.WithRetryPolicy
	WithDialer         = netproto.WithDialer
	WithCodec          = netproto.WithCodec
	WithShards         = netproto.WithShards
	WithBatchSize      = netproto.WithBatchSize
	WithWorkers        = netproto.WithWorkers
	WithShardRecords   = netproto.WithShardRecords
	WithShardFaultPlan = netproto.WithShardFaultPlan
	// WithMetricsReporting piggybacks per-agent (and per-shard) metrics
	// snapshots onto the existing wire phases so the center or cluster
	// federates them at /api/v1/federation.
	WithMetricsReporting = netproto.WithMetricsReporting
	// WithSLO installs burn-rate objectives on the center or cluster
	// (defaults to obs.DefaultObjectives when called with none).
	WithSLO = netproto.WithSLO
	// WithReplicas sets StartReplicaSet's replica count (odd, 2f+1).
	WithReplicas = netproto.WithReplicas
	// WithReplicaID picks the replica that leads first.
	WithReplicaID = netproto.WithReplicaID
	// WithQuorumTimeout bounds each append/commit round trip to one
	// follower.
	WithQuorumTimeout = netproto.WithQuorumTimeout
)

// DefaultRetryPolicy returns the stock reconnect policy: 5 attempts,
// 50ms base delay doubling to a 2s cap, ±20% seeded jitter.
func DefaultRetryPolicy() RetryPolicy { return netproto.DefaultRetryPolicy() }

// ParseRetryPolicy parses a policy spec such as
// "attempts=5,base=50ms,max=2s,mult=2,jitter=0.2,seed=1" (the
// enkiagent -retry flag format). An empty spec disables reconnection.
func ParseRetryPolicy(spec string) (RetryPolicy, error) {
	return netproto.ParseRetryPolicy(spec)
}

// ParseFaultPlan parses a fault-plan spec such as "drop@3,dup@7" or
// "seed=42,msgs=100,drop=0.05" (the -fault-plan flag format). An empty
// spec returns a nil, fault-free plan.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	return netproto.ParseFaultPlan(spec)
}

// GenerateFaultPlan draws a deterministic fault schedule over msgs
// message indices with the given per-action probabilities.
func GenerateFaultPlan(seed uint64, msgs int, drop, delay, dup, garble float64) *FaultPlan {
	return netproto.GenerateFaultPlan(seed, msgs, drop, delay, dup, garble)
}

// NewJournal returns a journal writing day records to w.
func NewJournal(w io.Writer) *Journal { return netproto.NewJournal(w) }

// ReadJournal decodes the day records persisted by a Journal,
// tolerating a truncated trailing line from a crash.
func ReadJournal(r io.Reader) ([]DayRecord, error) { return netproto.ReadJournal(r) }

// ReplayJournal summarizes persisted records for crash recovery.
func ReplayJournal(records []DayRecord) Replay { return netproto.ReplayJournal(records) }
