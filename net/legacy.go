// Pre-v1 compatibility surface. Everything in this file is deprecated
// and kept only so existing callers keep compiling; new code should use
// the consolidated v1 API in net.go.
//
// Migration table:
//
//	Deprecated                        v1 replacement
//	--------------------------------  ------------------------------------------
//	NewCenter(addr, cfg)              StartCenter(addr, opts...)
//	NewCenterWithListener(ln, cfg)    StartCenterListener(ln, opts...)
//	Dial(addr, id, policy)            Connect(ctx, addr, id, policy, opts...)
//	Center.WaitForAgents(n, timeout)  Center.WaitForAgentsContext(ctx, n)
//	Center.RunDay(day)                Center.RunDayContext(ctx, day)
//	CenterConfig.ReplyTimeout         WithPhaseDeadline(d)
//	DefaultReplyTimeout               DefaultPhaseDeadline
//
// The config-struct constructors take CenterConfig directly; every
// field has a corresponding With* option (WithScheduler, WithPricer,
// WithMechanism, WithRating, WithPhaseDeadline, WithTraceSeed,
// WithLedger, WithCodec, WithMetricsReporting, WithSLO).
package net

import (
	stdnet "net"

	"enki/internal/core"
	"enki/internal/netproto"
)

// DefaultReplyTimeout is the historical name of the per-phase wait.
//
// Deprecated: use DefaultPhaseDeadline.
const DefaultReplyTimeout = netproto.DefaultReplyTimeout

// NewCenter starts a center on addr from an explicit config struct.
//
// Deprecated: use StartCenter with functional options.
func NewCenter(addr string, cfg CenterConfig) (*Center, error) {
	return netproto.NewCenter(addr, cfg)
}

// NewCenterWithListener starts a center on a caller-provided listener
// from an explicit config struct.
//
// Deprecated: use StartCenterListener with functional options.
func NewCenterWithListener(ln stdnet.Listener, cfg CenterConfig) (*Center, error) {
	return netproto.NewCenterWithListener(ln, cfg)
}

// Dial connects an agent without a context or options.
//
// Deprecated: use Connect, which takes a context governing the dial and
// handshake and accepts options such as WithRetryPolicy.
func Dial(addr string, id core.HouseholdID, policy Policy) (*Agent, error) {
	return netproto.Dial(addr, id, policy)
}
