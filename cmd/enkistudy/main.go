// Command enkistudy regenerates the paper's user study (Section VII):
// Table II (average defection rates), Table III (Mann-Whitney tests),
// Table IV (defection by treatment), Figure 8 (true-interval selecting
// ratios), and Figure 9 (flexibility-ratio trajectories), with the 20
// human subjects replaced by the behavioral models of internal/study.
//
// Usage:
//
//	enkistudy -seed 42
//	enkistudy -seed 42 -metrics-out study-metrics.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"enki/internal/experiment"
	"enki/internal/obs"
	"enki/internal/study"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		obs.Logger().Error("enkistudy failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("enkistudy", flag.ContinueOnError)
	seed := fs.Uint64("seed", 42, "random seed")
	workers := fs.Int("workers", 0, "worker goroutines for the session engine (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
	metricsOut := fs.String("metrics-out", "", "dump the metrics-registry snapshot to this JSON file")
	logOpts := obs.LogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := logOpts.Apply(nil); err != nil {
		return err
	}

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	res, err := experiment.RunUserStudy(cfg, study.DefaultStudyConfig())
	if err != nil {
		return err
	}

	fmt.Fprintln(out, res.RenderTableII())
	fmt.Fprintln(out, res.RenderTableIII())
	fmt.Fprintln(out, res.RenderTableIV())
	fmt.Fprintln(out, res.RenderFigure8())
	fmt.Fprintln(out, res.RenderFigure9())

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.Default().Snapshot().WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}
