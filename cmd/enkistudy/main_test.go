package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should be rejected")
	}
	if err := run([]string{"-seed", "notanumber"}, &out); err == nil {
		t.Error("non-numeric seed should be rejected")
	}
}

// TestRunEndToEnd drives the CLI through a full simulated study and
// checks that every table and figure of Section VII is rendered.
func TestRunEndToEnd(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seed", "42"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Table II", "Table III", "Table IV", "Figure 8", "Figure 9",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunWorkersIdenticalOutput requires byte-identical study output at
// -workers 1 and -workers 4, the engine's determinism contract.
func TestRunWorkersIdenticalOutput(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		if err := run([]string{"-seed", "7", "-workers", workers}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render("1")
	pooled := render("4")
	if serial != pooled {
		t.Errorf("-workers 4 output differs from -workers 1:\nserial:\n%s\npooled:\n%s", serial, pooled)
	}
}

func TestRunMetricsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study-metrics.json")
	var out strings.Builder
	if err := run([]string{"-seed", "42", "-metrics-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "counters") {
		t.Errorf("metrics snapshot missing counters section:\n%s", data)
	}
}
