package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/profile"
)

// TestEnkidebugAcceptance is the issue's end-to-end triage contract: a
// fault-injected multi-shard day degrades one shard and breaches the
// degraded-day objective, the trigger writes exactly one rate-limited
// bundle, and enkidebug identifies the faulted shard while confirming
// the recomputed Theorem 1 budget residual is zero — exit status clean.
func TestEnkidebugAcceptance(t *testing.T) {
	rec := obs.DefaultRecorder()
	rec.Reset()
	rec.Enable()
	defer func() {
		rec.Disable()
		rec.Reset()
	}()

	// Shard 3's link drops the first consumption reply: its household
	// settles via the imputed-defector substitution path, so the shard
	// degrades without failing and the day counts as degraded.
	plan := &netproto.FaultPlan{Actions: map[int]netproto.FaultAction{30: netproto.FaultDrop}}
	var ledgerBuf bytes.Buffer
	journal := netproto.NewJournal(&ledgerBuf)
	cluster, err := netproto.StartCluster(context.Background(),
		netproto.WithShards(8),
		netproto.WithBatchSize(4),
		netproto.WithShardFaultPlan(3, plan),
		netproto.WithSLO(),
		netproto.WithLedger(journal),
	)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cluster.Close()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(42))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	for i := 0; i < 80; i++ {
		p := gen.Draw()
		if err := cluster.Join(core.HouseholdID(i), &netproto.Truthful{Type: p.TypeWide()}); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	dayRec, err := cluster.ClusterDay(context.Background(), 1)
	if err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}
	if dayRec.Absent+dayRec.Substituted == 0 {
		t.Fatalf("fault plan did not degrade the day: %+v", dayRec)
	}
	shard3 := dayRec.Shards[3]
	if shard3.Err != "" || shard3.Absent+shard3.Substituted == 0 {
		t.Fatalf("shard 3 should degrade, not fail: err=%q absent=%d substituted=%d",
			shard3.Err, shard3.Absent, shard3.Substituted)
	}

	dir := t.TempDir()
	op := cluster.Operator()
	trig, err := obs.NewTrigger(obs.TriggerConfig{
		Dir:         dir,
		MinInterval: time.Hour, // the rate limit under test
	}, obs.BundleSources{
		Operator: op,
		Recorder: rec,
		Tracer:   obs.DefaultTracer(),
		Config:   map[string]string{"shards": "8", "households": "80"},
	})
	if err != nil {
		t.Fatalf("NewTrigger: %v", err)
	}

	// First breach check fires a bundle: the degraded day blows the 5%
	// degraded-day budget on its first sample.
	path, err := trig.CheckSLO(op.SampleSLO(time.Now()))
	if err != nil {
		t.Fatalf("CheckSLO: %v", err)
	}
	if path == "" {
		t.Fatal("SLO breach did not fire a bundle")
	}
	// The degraded shard would also fire — the rate limit must suppress
	// it so one incident yields one bundle.
	if p2, err := trig.CheckShards(cluster.ShardStatuses()); err != nil || p2 != "" {
		t.Fatalf("second trigger not suppressed: path=%q err=%v", p2, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var bundles []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tar.gz") {
			bundles = append(bundles, filepath.Join(dir, e.Name()))
		}
	}
	if len(bundles) != 1 {
		t.Fatalf("bundle files = %d, want exactly 1 (rate-limited)", len(bundles))
	}
	st := trig.Status()
	if st.Writes != 1 || st.Suppressed < 1 {
		t.Fatalf("trigger status = %+v, want 1 write and ≥1 suppression", st)
	}
	if !strings.HasPrefix(st.LastReason, "slo:") {
		t.Fatalf("bundle reason %q, want an SLO breach", st.LastReason)
	}

	// The offline analyzer must implicate shard 3 from the bundle alone
	// and confirm the recomputed budget residual is zero (exit 0 — run
	// returns nil, in particular not errResidual).
	var out bytes.Buffer
	if err := run([]string{bundles[0]}, &out); err != nil {
		t.Fatalf("enkidebug: %v\n%s", err, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "shard 3 DEGRADED") {
		t.Errorf("report does not implicate shard 3:\n%s", report)
	}
	if !strings.Contains(report, "degraded-day-rate") {
		t.Errorf("report does not name the breached objective:\n%s", report)
	}
	if !strings.Contains(report, ": OK") || strings.Contains(report, "VIOLATED") {
		t.Errorf("report does not confirm a zero residual:\n%s", report)
	}

	// The JSON form carries the same verdicts for machine consumers.
	out.Reset()
	if err := run([]string{"-json", bundles[0]}, &out); err != nil {
		t.Fatalf("enkidebug -json: %v", err)
	}
	var rep triageReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decode JSON report: %v", err)
	}
	if rep.Residual.Violated {
		t.Errorf("JSON report flags a residual violation: %+v", rep.Residual)
	}
	if rep.Residual.Entries == 0 {
		t.Error("JSON report audited no ledger entries")
	}
	found := false
	for _, sh := range rep.Shards {
		if sh.Shard == 3 && sh.State == "degraded" {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON report does not implicate shard 3: %+v", rep.Shards)
	}
}

// TestEnkidebugBadInput: a missing or corrupt bundle is a usage error
// (exit 1 path), never a residual verdict.
func TestEnkidebugBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{filepath.Join(t.TempDir(), "nope.tar.gz")}, &out); err == nil {
		t.Fatal("missing bundle accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("no arguments accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.tar.gz")
	if err := os.WriteFile(bad, []byte("not a tarball"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Fatal("corrupt bundle accepted")
	}
}
