// Command enkidebug analyzes a debug bundle offline and prints a triage
// report: the implicated day/shard/trace, phase latency against the SLO
// threshold, the recomputed Theorem 1 budget residual from the bundled
// ledger, the retry/fault timeline, and a ranked probable-cause summary.
//
// Exit codes are CI-suitable: 0 the bundle analyzed clean (Theorem 1
// residual within tolerance), 1 usage or a corrupt/unreadable bundle,
// 2 an integrity violation (the recomputed budget residual is nonzero
// beyond float tolerance — the mechanism itself misbehaved).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"enki/internal/obs"
)

// errResidual marks a Theorem 1 integrity violation (exit 2).
var errResidual = errors.New("enkidebug: budget residual violation")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errResidual) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// shardFinding is one implicated shard's triage row.
type shardFinding struct {
	Shard       int    `json:"shard"`
	State       string `json:"state"` // "failed" or "degraded"
	Err         string `json:"err,omitempty"`
	TraceID     string `json:"traceId,omitempty"`
	Absent      int    `json:"absent,omitempty"`
	Substituted int    `json:"substituted,omitempty"`
	Faults      int    `json:"faults"` // injected-fault events on its link
	FaultMix    string `json:"faultMix,omitempty"`
}

// phaseFinding is one latency family's quantile row.
type phaseFinding struct {
	Name        string  `json:"name"`
	Count       uint64  `json:"count"`
	P50MS       float64 `json:"p50Ms"`
	P99MS       float64 `json:"p99Ms"`
	ThresholdMS float64 `json:"thresholdMs,omitempty"` // SLO bound when one applies
	Breached    bool    `json:"breached,omitempty"`
}

// residualFinding is the recomputed Theorem 1 audit over the bundled
// ledger tail.
type residualFinding struct {
	Entries   int     `json:"entries"`
	MaxAbs    float64 `json:"maxAbs"`
	Tolerance float64 `json:"tolerance"`
	WorstDay  int     `json:"worstDay"`
	Violated  bool    `json:"violated"`
}

// cause is one ranked probable-cause line.
type cause struct {
	Score int    `json:"score"`
	Text  string `json:"text"`
}

// triageReport is the whole analysis (the -json output shape).
type triageReport struct {
	Bundle     string            `json:"bundle"`
	Reason     string            `json:"reason"`
	CapturedAt string            `json:"capturedAt"`
	Build      string            `json:"build"`
	Day        int               `json:"day"`
	Traces     []string          `json:"traces,omitempty"`
	Shards     []shardFinding    `json:"shards,omitempty"`
	ShardTotal int               `json:"shardTotal"`
	Phases     []phaseFinding    `json:"phases,omitempty"`
	SLO        []string          `json:"sloUnhealthy,omitempty"`
	Residual   residualFinding   `json:"residual"`
	Events     int               `json:"events"`
	Timeline   []string          `json:"timeline,omitempty"`
	Causes     []cause           `json:"causes"`
	Profiles   map[string]int    `json:"profiles,omitempty"`
	Notes      []string          `json:"notes,omitempty"`
	Config     map[string]string `json:"-"`
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("enkidebug", flag.ContinueOnError)
	fs.SetOutput(out)
	jsonOut := fs.Bool("json", false, "emit the triage report as JSON")
	tailN := fs.Int("n", 12, "timeline events to print (0 for all)")
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: enkidebug [-json] [-n events] bundle.tar.gz")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return errors.New("enkidebug: exactly one bundle path required")
	}
	path := fs.Arg(0)
	b, err := obs.ReadBundle(path)
	if err != nil {
		return fmt.Errorf("enkidebug: %w", err)
	}

	rep := analyze(path, b)
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		render(out, rep, *tailN)
	}
	if rep.Residual.Violated {
		return fmt.Errorf("%w: max |Σp − ξ·κ| = %g over %d ledger entries (tolerance %g)",
			errResidual, rep.Residual.MaxAbs, rep.Residual.Entries, rep.Residual.Tolerance)
	}
	return nil
}

func analyze(path string, b *obs.Bundle) *triageReport {
	rep := &triageReport{
		Bundle:     path,
		Reason:     b.Manifest.Reason,
		CapturedAt: time.Unix(0, b.Manifest.CapturedUnixNS).UTC().Format(time.RFC3339),
		Build:      fmt.Sprintf("%s %s/%s", b.Manifest.GoVersion, b.Manifest.GOOS, b.Manifest.GOARCH),
		Day:        b.Manifest.ImplicatedDay,
		Traces:     b.Manifest.ImplicatedTraces,
		Events:     len(b.Events),
		Profiles:   b.Profiles,
		Notes:      b.Manifest.Notes,
		Config:     b.Manifest.Config,
	}
	if b.Day != nil {
		rep.Day = b.Day.Day
	}

	// Per-shard fault accounting from the event ring.
	faultsByShard := map[int]map[string]int{}
	var retries, resumes, darks int
	for _, e := range b.Events {
		switch e.Kind {
		case obs.EventFault:
			if faultsByShard[e.Shard] == nil {
				faultsByShard[e.Shard] = map[string]int{}
			}
			faultsByShard[e.Shard][e.Action]++
		case obs.EventRetry:
			retries++
		case obs.EventResume:
			resumes++
		case obs.EventDark:
			darks++
		}
	}

	rep.ShardTotal = len(b.Shards)
	for _, sh := range b.Shards {
		state := ""
		switch {
		case !sh.Healthy || sh.Err != "":
			state = "failed"
		case sh.Absent > 0 || sh.Substituted > 0:
			state = "degraded"
		default:
			continue
		}
		n, mix := faultSummary(faultsByShard[sh.Shard])
		rep.Shards = append(rep.Shards, shardFinding{
			Shard:       sh.Shard,
			State:       state,
			Err:         sh.Err,
			TraceID:     sh.TraceID,
			Absent:      sh.Absent,
			Substituted: sh.Substituted,
			Faults:      n,
			FaultMix:    mix,
		})
	}

	// Phase-latency breakdown vs the SLO threshold. The day-settle
	// family carries the latency objective's bound when the bundle's
	// SLO spec names it.
	thresholds := map[string]float64{}
	if b.SLO != nil {
		for _, o := range b.SLO.Spec {
			if o.Kind == obs.ObjectiveLatency && o.Series != "" {
				thresholds[o.Series] = o.ThresholdMS
			}
		}
		for _, st := range b.SLO.Objectives {
			if !st.Healthy {
				rep.SLO = append(rep.SLO, fmt.Sprintf("%s (bad %d / total %d)", st.Name, st.Bad, st.Total))
			}
		}
	}
	if b.Metrics != nil {
		keys := make([]string, 0, len(b.Metrics.Histograms))
		for k := range b.Metrics.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			base := baseOf(k)
			switch base {
			case "enki_netproto_phase_latency_ms", "enki_netproto_day_settle_latency_ms", "enki_cluster_shard_settle_latency_ms":
			default:
				continue
			}
			h := b.Metrics.Histograms[k]
			if h.Count == 0 {
				continue
			}
			f := phaseFinding{
				Name:  strings.TrimPrefix(k, "enki_"),
				Count: h.Count,
				P50MS: quantile(h, 0.50),
				P99MS: quantile(h, 0.99),
			}
			if t, ok := thresholds[base]; ok {
				f.ThresholdMS = t
				f.Breached = f.P99MS > t
			}
			rep.Phases = append(rep.Phases, f)
		}
	}

	rep.Residual = auditLedger(b.Ledger)
	rep.Timeline = timeline(b.Events)
	rep.Causes = rankCauses(rep, retries, resumes, darks)
	return rep
}

// ledgerEntry is the slice of mechanism.LedgerEntry enkidebug needs;
// decoding locally keeps the analyzer independent of internal/mechanism.
type ledgerEntry struct {
	Day        int     `json:"day"`
	TraceID    string  `json:"traceId"`
	Xi         float64 `json:"xi"`
	Cost       float64 `json:"cost"`
	Revenue    float64 `json:"revenue"`
	Households []struct {
		Payment float64 `json:"payment"`
	} `json:"households"`
}

// auditLedger recomputes the Theorem 1 identity Σp − ξ·κ for every
// bundled ledger entry from the per-household payments — not from the
// entry's own revenue field, so a corrupted aggregate cannot hide.
func auditLedger(lines []json.RawMessage) residualFinding {
	res := residualFinding{WorstDay: -1}
	for _, line := range lines {
		var e ledgerEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // the journal may interleave day records; audit ledger lines only
		}
		if e.Xi == 0 && len(e.Households) == 0 {
			continue // not a ledger entry
		}
		res.Entries++
		var sum float64
		for _, h := range e.Households {
			sum += h.Payment
		}
		residual := sum - e.Xi*e.Cost
		tol := 1e-6 * math.Max(1, math.Abs(sum))
		if tol > res.Tolerance {
			res.Tolerance = tol
		}
		if math.Abs(residual) > res.MaxAbs {
			res.MaxAbs = math.Abs(residual)
			res.WorstDay = e.Day
		}
		if math.Abs(residual) > tol {
			res.Violated = true
		}
	}
	return res
}

// timeline renders the event ring as human-readable lines, relative to
// the first event's capture time.
func timeline(events []obs.Event) []string {
	if len(events) == 0 {
		return nil
	}
	t0 := events[0].TimeNS
	out := make([]string, len(events))
	for i, e := range events {
		var sb strings.Builder
		fmt.Fprintf(&sb, "+%8.3fs %-12s", float64(e.TimeNS-t0)/1e9, e.Kind)
		if e.Day != 0 || e.Kind == obs.EventShardDay || e.Kind == obs.EventDay || e.Kind == obs.EventPhase {
			fmt.Fprintf(&sb, " day=%d", e.Day)
		}
		if e.Shard >= 0 {
			fmt.Fprintf(&sb, " shard=%d", e.Shard)
		}
		if e.Phase != "" {
			fmt.Fprintf(&sb, " phase=%s", e.Phase)
		}
		if e.Action != "" {
			fmt.Fprintf(&sb, " action=%s", e.Action)
		}
		if e.Codec != "" {
			fmt.Fprintf(&sb, " codec=%s", e.Codec)
		}
		if e.N != 0 {
			fmt.Fprintf(&sb, " n=%d", e.N)
		}
		if e.Bytes != 0 {
			fmt.Fprintf(&sb, " bytes=%d", e.Bytes)
		}
		if e.Val != 0 {
			fmt.Fprintf(&sb, " val=%.3f", e.Val)
		}
		if e.TraceID != "" {
			fmt.Fprintf(&sb, " trace=%s", e.TraceID)
		}
		if e.Err != "" {
			fmt.Fprintf(&sb, " err=%q", e.Err)
		}
		out[i] = sb.String()
	}
	return out
}

// rankCauses orders the evidence into a probable-cause list, strongest
// first: a mechanism-integrity violation outranks shard failures, which
// outrank fault-linked degradation, SLO burn, and link instability.
func rankCauses(rep *triageReport, retries, resumes, darks int) []cause {
	var causes []cause
	if rep.Residual.Violated {
		causes = append(causes, cause{100, fmt.Sprintf(
			"Theorem 1 violated: recomputed Σp − ξ·κ reaches %g on day %d — the mechanism settled off-budget",
			rep.Residual.MaxAbs, rep.Residual.WorstDay)})
	}
	for _, sh := range rep.Shards {
		switch sh.State {
		case "failed":
			txt := fmt.Sprintf("shard %d failed: %s", sh.Shard, sh.Err)
			if sh.Faults > 0 {
				txt += fmt.Sprintf(" — %d injected faults (%s) on its link", sh.Faults, sh.FaultMix)
			}
			causes = append(causes, cause{90, txt})
		case "degraded":
			txt := fmt.Sprintf("shard %d degraded (absent %d, substituted %d)", sh.Shard, sh.Absent, sh.Substituted)
			if sh.Faults > 0 {
				txt += fmt.Sprintf(" — %d injected faults (%s) on its link explain the loss", sh.Faults, sh.FaultMix)
			}
			causes = append(causes, cause{80, txt})
		}
	}
	for _, name := range rep.SLO {
		causes = append(causes, cause{60, "SLO objective burning: " + name})
	}
	for _, ph := range rep.Phases {
		if ph.Breached {
			causes = append(causes, cause{50, fmt.Sprintf(
				"%s p99 %.1fms exceeds the %gms SLO threshold", ph.Name, ph.P99MS, ph.ThresholdMS)})
		}
	}
	if retries+resumes > 0 {
		causes = append(causes, cause{40, fmt.Sprintf(
			"link instability: %d reconnect attempts, %d session resumes", retries, resumes)})
	}
	if darks > 0 {
		causes = append(causes, cause{30, fmt.Sprintf("%d connections went dark mid-day", darks)})
	}
	if len(causes) == 0 {
		causes = append(causes, cause{0, "no anomalies: shards healthy, SLOs met, Theorem 1 residual zero"})
	}
	sort.SliceStable(causes, func(i, j int) bool { return causes[i].Score > causes[j].Score })
	return causes
}

// faultSummary collapses a shard's injected-fault counts into a total
// and a stable "drop×3 dup×1"-style mix string.
func faultSummary(byAction map[string]int) (int, string) {
	if len(byAction) == 0 {
		return 0, ""
	}
	actions := make([]string, 0, len(byAction))
	total := 0
	for a, n := range byAction {
		actions = append(actions, a)
		total += n
	}
	sort.Strings(actions)
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = fmt.Sprintf("%s×%d", a, byAction[a])
	}
	return total, strings.Join(parts, " ")
}

// quantile returns the smallest bucket bound covering fraction q of the
// observations (the +Inf bucket reports the largest finite bound).
func quantile(h obs.HistogramSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	if len(h.Bounds) == 0 {
		return 0
	}
	return h.Bounds[len(h.Bounds)-1]
}

// baseOf strips the {label} suffix from a series key.
func baseOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

func render(out io.Writer, rep *triageReport, tailN int) {
	fmt.Fprintf(out, "bundle   %s\n", rep.Bundle)
	fmt.Fprintf(out, "reason   %s   captured %s   %s\n", rep.Reason, rep.CapturedAt, rep.Build)
	fmt.Fprintf(out, "day      %d\n", rep.Day)
	if len(rep.Traces) > 0 {
		fmt.Fprintf(out, "traces   %s\n", strings.Join(rep.Traces, " "))
	}

	fmt.Fprintf(out, "\nimplicated shards (%d of %d):\n", len(rep.Shards), rep.ShardTotal)
	if len(rep.Shards) == 0 {
		fmt.Fprintln(out, "  none — every shard settled healthy")
	}
	for _, sh := range rep.Shards {
		fmt.Fprintf(out, "  shard %d %s", sh.Shard, strings.ToUpper(sh.State))
		if sh.Err != "" {
			fmt.Fprintf(out, " err=%q", sh.Err)
		}
		if sh.Absent+sh.Substituted > 0 {
			fmt.Fprintf(out, " absent=%d substituted=%d", sh.Absent, sh.Substituted)
		}
		if sh.Faults > 0 {
			fmt.Fprintf(out, " faults=%d (%s)", sh.Faults, sh.FaultMix)
		}
		if sh.TraceID != "" {
			fmt.Fprintf(out, " trace=%s", sh.TraceID)
		}
		fmt.Fprintln(out)
	}

	if len(rep.Phases) > 0 {
		fmt.Fprintln(out, "\nphase latency:")
		for _, ph := range rep.Phases {
			fmt.Fprintf(out, "  %-52s n=%-6d p50 %8.2fms  p99 %8.2fms", ph.Name, ph.Count, ph.P50MS, ph.P99MS)
			if ph.ThresholdMS > 0 {
				verdict := "within SLO"
				if ph.Breached {
					verdict = "BREACHED"
				}
				fmt.Fprintf(out, "  [threshold %gms: %s]", ph.ThresholdMS, verdict)
			}
			fmt.Fprintln(out)
		}
	}
	if len(rep.SLO) > 0 {
		fmt.Fprintln(out, "\nunhealthy SLO objectives:")
		for _, s := range rep.SLO {
			fmt.Fprintf(out, "  %s\n", s)
		}
	}

	fmt.Fprintln(out, "\nledger audit (Theorem 1, Σp − ξ·κ recomputed from per-household payments):")
	if rep.Residual.Entries == 0 {
		fmt.Fprintln(out, "  no ledger entries in bundle")
	} else {
		verdict := "OK"
		if rep.Residual.Violated {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(out, "  %d entries, max |residual| = %g (tolerance %g): %s\n",
			rep.Residual.Entries, rep.Residual.MaxAbs, rep.Residual.Tolerance, verdict)
	}

	if n := len(rep.Timeline); n > 0 {
		show := rep.Timeline
		if tailN > 0 && n > tailN {
			show = show[n-tailN:]
		}
		fmt.Fprintf(out, "\ntimeline (last %d of %d events):\n", len(show), rep.Events)
		for _, line := range show {
			fmt.Fprintf(out, "  %s\n", line)
		}
	}

	fmt.Fprintln(out, "\nprobable causes:")
	for i, c := range rep.Causes {
		fmt.Fprintf(out, "  %d. [%3d] %s\n", i+1, c.Score, c.Text)
	}
	if len(rep.Profiles) > 0 {
		names := make([]string, 0, len(rep.Profiles))
		for k := range rep.Profiles {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintln(out, "\nprofiles:")
		for _, k := range names {
			fmt.Fprintf(out, "  %s (%d bytes)\n", k, rep.Profiles[k])
		}
	}
	for _, note := range rep.Notes {
		fmt.Fprintf(out, "note: %s\n", note)
	}
}
