// Command enkiagent runs a household ECC agent that connects to a
// neighborhood center (cmd/enkid) and plays the day-ahead protocol.
// The agent reports -report each day; if -truth differs, it behaves as
// a misreporter and consumes inside its true window instead of
// following incompatible allocations.
//
// Usage:
//
//	enkiagent -addr 127.0.0.1:7600 -id 1 -truth 18,22,2
//	enkiagent -addr 127.0.0.1:7600 -id 2 -truth 18,20,2 -report 14,20,2
//	enkiagent -addr 127.0.0.1:7600 -id 3 -trace-out agent-spans.jsonl
//	enkiagent -addr 127.0.0.1:7600 -id 4 -retry attempts=5,base=50ms \
//	          -fault-plan drop@2          # chaos: cut the link, resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"enki/internal/core"
	"enki/internal/netproto"
	"enki/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		obs.Logger().Error("enkiagent failed", "err", err)
		os.Exit(1)
	}
}

// run's error return is named so the bundle-on-failure defer can see
// which exit path was taken.
func run(args []string) (err error) {
	fs := flag.NewFlagSet("enkiagent", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7600", "center address")
		id        = fs.Int("id", 0, "household id")
		truth     = fs.String("truth", "18,22,2", "true preference begin,end,duration")
		report    = fs.String("report", "", "reported preference (defaults to the truth)")
		rho       = fs.Float64("rho", 5, "valuation factor ρ")
		days      = fs.Duration("for", time.Hour, "how long to keep serving")
		retrySpec = fs.String("retry", "", "reconnect policy, e.g. attempts=5,base=50ms,max=2s,mult=2,jitter=0.2,seed=1 (empty = no reconnection)")
		faultSpec = fs.String("fault-plan", "", "deterministic outbound fault plan, e.g. drop@2 or seed=42,msgs=100,drop=0.05")
		reporting = fs.Bool("reporting", false, "piggyback the agent's metrics snapshot on each day's consumption phase (pair with enkid -obs.reporting)")
		traceOut  = fs.String("trace-out", "", "write the agent-side span trace to this JSONL file")
		bundleDir = fs.String("bundle-dir", "", "enable the flight recorder and capture a debug bundle here when the agent fails")
	)
	logOpts := obs.LogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logOpts.Apply(nil)
	if err != nil {
		return err
	}

	if *bundleDir != "" {
		// An agent has no operator plane; its bundle carries the recorder
		// ring (retries, resumes, wire frames), span trace, default
		// registry, and runtime profiles — the client side of an incident.
		obs.DefaultRecorder().Enable()
		trig, terr := obs.NewTrigger(obs.TriggerConfig{
			Dir:    *bundleDir,
			Config: map[string]string{"addr": *addr, "id": fmt.Sprint(*id)},
		}, obs.BundleSources{
			Recorder: obs.DefaultRecorder(),
			Tracer:   obs.DefaultTracer(),
		})
		if terr != nil {
			return terr
		}
		defer func() {
			if err == nil {
				return
			}
			if path, ferr := trig.Fire("agent-failure"); ferr != nil {
				logger.Error("bundle capture failed", "err", ferr)
			} else if path != "" {
				logger.Info("debug bundle written", "path", path, "reason", "agent-failure")
			}
		}()
	}

	if *traceOut != "" {
		obs.DefaultTracer().Enable()
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				logger.Error("trace export failed", "err", err)
				return
			}
			defer f.Close()
			if err := obs.DefaultTracer().WriteJSONL(f); err != nil {
				logger.Error("trace export failed", "err", err)
			}
		}()
	}

	truePref, err := parsePref(*truth)
	if err != nil {
		return fmt.Errorf("parse -truth: %w", err)
	}
	typ := core.Type{True: truePref, ValuationFactor: *rho}
	if err := typ.Validate(); err != nil {
		return err
	}

	var policy netproto.Policy
	if *report == "" || *report == *truth {
		policy = &netproto.Truthful{Type: typ}
	} else {
		reported, err := parsePref(*report)
		if err != nil {
			return fmt.Errorf("parse -report: %w", err)
		}
		policy = &netproto.Misreporter{Type: typ, Reported: reported}
	}

	retry, err := netproto.ParseRetryPolicy(*retrySpec)
	if err != nil {
		return fmt.Errorf("parse -retry: %w", err)
	}
	plan, err := netproto.ParseFaultPlan(*faultSpec)
	if err != nil {
		return fmt.Errorf("parse -fault-plan: %w", err)
	}

	agent, err := netproto.Connect(context.Background(), *addr, core.HouseholdID(*id), policy,
		netproto.WithRetryPolicy(retry),
		netproto.WithFaultPlan(plan),
		netproto.WithMetricsReporting(*reporting),
	)
	if err != nil {
		return err
	}
	defer agent.Close()
	logger.Info("connected", "household", *id, "addr", *addr)

	deadline := time.NewTimer(*days)
	defer deadline.Stop()
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	seen := 0
	for {
		select {
		case <-deadline.C:
			return nil
		case <-ticker.C:
			if err := agent.Err(); err != nil {
				if errors.Is(err, io.EOF) {
					return nil // center finished and closed the session
				}
				return err
			}
			for _, d := range agent.History()[seen:] {
				seen++
				fmt.Printf("settlement: pay $%.2f (f=%.2f δ=%.2f Ψ=%.2f, neighborhood $%.2f peak %.1f)\n",
					d.Amount, d.Flexibility, d.Defection, d.SocialCost, d.TotalCost, d.PeakLoad)
			}
		}
	}
}

func parsePref(s string) (core.Preference, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return core.Preference{}, fmt.Errorf("want begin,end,duration, got %q", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return core.Preference{}, err
		}
		vals[i] = v
	}
	return core.NewPreference(vals[0], vals[1], vals[2])
}
