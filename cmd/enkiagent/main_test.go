package main

import "testing"

func TestParsePref(t *testing.T) {
	p, err := parsePref("18,22,2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Window.Begin != 18 || p.Window.End != 22 || p.Duration != 2 {
		t.Errorf("parsePref = %v", p)
	}
	if _, err := parsePref("18,22"); err == nil {
		t.Error("two fields should be rejected")
	}
	if _, err := parsePref("18,22,x"); err == nil {
		t.Error("non-numeric duration should be rejected")
	}
	if _, err := parsePref("22,18,2"); err == nil {
		t.Error("inverted window should be rejected")
	}
	if _, err := parsePref("18,22,5"); err == nil {
		t.Error("duration exceeding the window should be rejected")
	}
	if _, err := parsePref(" 18 , 22 , 2 "); err != nil {
		t.Errorf("whitespace should be tolerated: %v", err)
	}
}
