package main

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// runSettlementDay runs a seeded day cycle over loopback with tracing
// and the audit ledger on, and returns the trace and ledger file paths.
func runSettlementDay(t *testing.T, seed uint64, days int) (tracePath, ledgerPath string) {
	t.Helper()
	tr := obs.DefaultTracer()
	tr.Drain()
	tr.Enable()
	t.Cleanup(func() {
		tr.Disable()
		tr.Drain()
	})

	dir := t.TempDir()
	ledgerPath = filepath.Join(dir, "audit.jsonl")
	ledgerFile, err := os.Create(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ledgerFile.Close()

	pricer := pricing.Quadratic{Sigma: pricing.DefaultSigma}
	center, err := netproto.NewCenter("127.0.0.1:0", netproto.CenterConfig{
		Scheduler:    &sched.Greedy{Pricer: pricer, Rating: 2},
		Pricer:       pricer,
		Mechanism:    mechanism.DefaultConfig(),
		Rating:       2,
		ReplyTimeout: 5 * time.Second,
		TraceSeed:    seed,
		Ledger:       netproto.NewJournal(ledgerFile),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
	}
	agents := make([]*netproto.Agent, len(types))
	for i, typ := range types {
		a, err := netproto.Dial(center.Addr(), core.HouseholdID(i), &netproto.Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		defer a.Close()
	}
	if err := center.WaitForAgents(len(types), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= days; day++ {
		if _, err := center.RunDay(day); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
	}
	// Agent-side payment spans end asynchronously after RunDay returns.
	deadline := time.Now().Add(5 * time.Second)
	for _, a := range agents {
		for len(a.History()) < days && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if len(a.History()) < days {
			t.Fatalf("agent %d observed %d settlements, want %d", a.ID(), len(a.History()), days)
		}
	}

	tracePath = filepath.Join(dir, "spans.jsonl")
	traceFile, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer traceFile.Close()
	if err := tr.WriteJSONL(traceFile); err != nil {
		t.Fatal(err)
	}
	return tracePath, ledgerPath
}

// TestAnalyzeSettlementDay is the acceptance test for the tracing +
// ledger + analyzer slice: a seeded day over loopback yields one
// connected trace and a clean equation-level audit, and enkitrace
// renders the per-phase breakdown and the day's critical path.
func TestAnalyzeSettlementDay(t *testing.T) {
	tracePath, ledgerPath := runSettlementDay(t, 42, 1)

	var out strings.Builder
	if err := run([]string{"-trace", tracePath, "-ledger", ledgerPath}, &out); err != nil {
		t.Fatalf("enkitrace failed: %v\n%s", err, out.String())
	}
	got := out.String()

	wantTID := obs.DeriveTraceID(42, 1)
	for _, want := range []string{
		"Per-phase latency",
		obs.SpanNetPhase + " " + string(netproto.KindPreference),
		obs.SpanNetPhase + " " + string(netproto.KindConsumption),
		obs.SpanNetPhase + " " + string(netproto.KindPayment),
		obs.SpanNetSettle,
		obs.SpanNetAgentPhase,
		"Critical path of trace " + wantTID,
		obs.SpanNetDay + " day=1",
		"audit: 0 mismatches in 1 entries",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The critical path must descend at least one hop below the root.
	if !strings.Contains(got, "100.0%") {
		t.Errorf("critical path missing root share:\n%s", got)
	}
}

func TestTraceIDFilter(t *testing.T) {
	tracePath, _ := runSettlementDay(t, 7, 2)

	day2 := obs.DeriveTraceID(7, 2)
	var out strings.Builder
	if err := run([]string{"-trace", tracePath, "-trace-id", day2}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Critical path of trace "+day2) {
		t.Errorf("filtered output missing day-2 trace:\n%s", out.String())
	}
	if day1 := obs.DeriveTraceID(7, 1); strings.Contains(out.String(), day1) {
		t.Errorf("filtered output still mentions day-1 trace %s:\n%s", day1, out.String())
	}

	if err := run([]string{"-trace", tracePath, "-trace-id", "ffffffffffffffff"}, &out); err == nil {
		t.Error("unknown trace ID should be an error")
	}
}

// TestAuditFlagsTamperedLedger corrupts a recorded payment and requires
// a nonzero exit: the Eq. 7 recompute and the Theorem 1 budget identity
// must both catch it.
func TestAuditFlagsTamperedLedger(t *testing.T) {
	_, ledgerPath := runSettlementDay(t, 13, 1)

	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := mechanism.ReadLedger(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ledger has %d entries, want 1", len(entries))
	}
	entries[0].Households[0].Payment += 1.5 // skim a payment

	tampered := filepath.Join(t.TempDir(), "tampered.jsonl")
	f, err := os.Create(tampered)
	if err != nil {
		t.Fatal(err)
	}
	j := netproto.NewJournal(f)
	if err := j.AppendValue(entries[0]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	err = run([]string{"-ledger", tampered}, &out)
	if err == nil {
		t.Fatalf("tampered ledger should fail the audit:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("unexpected error: %v", err)
	}
	if !strings.Contains(out.String(), "MISMATCH") {
		t.Errorf("audit output does not flag the mismatch:\n%s", out.String())
	}
}

// TestAuditAcceptsDegradedDayLedger is the degraded-settlement
// acceptance test: a day in which one household reports a preference
// and then goes permanently dark still yields a ledger that enkitrace
// audits cleanly (exit 0), with the substitution reported.
func TestAuditAcceptsDegradedDayLedger(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "degraded.jsonl")
	ledgerFile, err := os.Create(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ledgerFile.Close()

	center, err := netproto.StartCenter("127.0.0.1:0",
		netproto.WithPhaseDeadline(300*time.Millisecond),
		netproto.WithTraceSeed(21),
		netproto.WithLedger(netproto.NewJournal(ledgerFile)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	}
	for i, typ := range types {
		a, err := netproto.Dial(center.Addr(), core.HouseholdID(i), &netproto.Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	// Household 2 reports a preference and then never answers again.
	conn, err := net.Dial("tcp", center.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	darkPref := core.MustPreference(19, 24, 3)
	if err := netproto.WriteMessage(conn, &netproto.Message{Kind: netproto.KindHello, ID: 2}); err != nil {
		t.Fatal(err)
	}
	if w, err := netproto.ReadMessage(conn); err != nil || w.Kind != netproto.KindWelcome {
		t.Fatalf("registration failed: %v %v", w, err)
	}
	go func() {
		for {
			m, err := netproto.ReadMessage(conn)
			if err != nil {
				return
			}
			if m.Kind == netproto.KindRequest {
				_ = netproto.WriteMessage(conn, &netproto.Message{Kind: netproto.KindPreference, ID: 2, Day: m.Day, Pref: &darkPref})
			}
		}
	}()
	if err := center.WaitForAgents(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := center.RunDay(1); err != nil {
		t.Fatalf("degraded day should complete: %v", err)
	}

	var out strings.Builder
	if err := run([]string{"-ledger", ledgerPath}, &out); err != nil {
		t.Fatalf("degraded ledger should audit cleanly, got %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"1 dark household(s) settled as defectors from journaled reports",
		"degraded: 1 of 1 days settled with substituted households",
		"audit: 0 mismatches in 1 entries",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsNoInputs(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no inputs should be an error")
	}
	if err := run([]string{"-trace", filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Error("missing trace file should be an error")
	}
}

// TestAuditSurvivingReplicaLedger is the failover acceptance for the
// audit tool: a 3-replica center loses its leader between the ledger
// append and the commit broadcast, the day finishes under the new
// leader, and the surviving replica's journal still audits cleanly
// (exit 0) with one entry per day.
func TestAuditSurvivingReplicaLedger(t *testing.T) {
	rs, err := netproto.StartReplicaSet(context.Background(),
		netproto.WithReplicas(3),
		netproto.WithTraceSeed(33),
		netproto.WithPhaseDeadline(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
	}
	retry := netproto.RetryPolicy{
		MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
		Multiplier: 2, Jitter: 0.2, Seed: 1,
	}
	for i, typ := range types {
		a, err := netproto.Connect(context.Background(), rs.Addr(), core.HouseholdID(i), &netproto.Truthful{Type: typ},
			netproto.WithDialer(rs.Dialer()), netproto.WithRetryPolicy(retry))
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := rs.WaitForAgentsContext(context.Background(), len(types)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.RunDayContext(context.Background(), 1); err != nil {
		t.Fatalf("day 1: %v", err)
	}
	if err := rs.Kill(rs.Leader()); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.RunDayContext(context.Background(), 2); err != nil {
		t.Fatalf("day 2 after failover: %v", err)
	}
	if rs.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", rs.Failovers())
	}

	survivor := rs.Leader()
	ledgerPath := filepath.Join(t.TempDir(), "survivor.jsonl")
	if err := os.WriteFile(ledgerPath, rs.ReplicaLedger(survivor), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-ledger", ledgerPath}, &out); err != nil {
		t.Fatalf("audit of surviving replica %d failed: %v\n%s", survivor, err, out.String())
	}
	if !strings.Contains(out.String(), "audit: 0 mismatches in 2 entries") {
		t.Errorf("unexpected audit summary:\n%s", out.String())
	}
}
