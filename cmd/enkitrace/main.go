// Command enkitrace analyzes the observability artifacts of a
// settlement run: the span trace (enkid/enkisim -trace-out, enkiagent
// -trace-out) and the mechanism audit ledger (enkid -ledger). It prints
// per-phase latency breakdowns, the critical path of each settlement
// day's trace, and an equation-level audit that recomputes the Eq. 6–7
// chain from the ledger's own inputs and flags every mismatch.
//
// Usage:
//
//	enkitrace -trace day-spans.jsonl
//	enkitrace -trace day-spans.jsonl -ledger audit.jsonl
//	enkitrace -trace day-spans.jsonl -trace-id 96c9d7e01059c991
//
// The exit status is nonzero when the ledger audit finds a mismatch, so
// the tool doubles as a CI check on recorded settlements.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"enki/internal/mechanism"
	"enki/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "enkitrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("enkitrace", flag.ContinueOnError)
	var (
		tracePath  = fs.String("trace", "", "span-trace JSONL file (from -trace-out)")
		ledgerPath = fs.String("ledger", "", "mechanism audit-ledger JSONL file (from enkid -ledger)")
		traceID    = fs.String("trace-id", "", "restrict the analysis to one trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" && *ledgerPath == "" {
		return fmt.Errorf("nothing to analyze: pass -trace and/or -ledger")
	}

	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		spans, err := obs.ReadSpans(f)
		f.Close()
		if err != nil {
			return err
		}
		if *traceID != "" {
			kept := spans[:0]
			for _, s := range spans {
				if s.TraceID == *traceID {
					kept = append(kept, s)
				}
			}
			spans = kept
			if len(spans) == 0 {
				return fmt.Errorf("trace %s not found in %s", *traceID, *tracePath)
			}
		}
		if len(spans) == 0 {
			return fmt.Errorf("no spans in %s", *tracePath)
		}
		printPhaseBreakdown(out, spans)
		printCriticalPaths(out, spans)
	}

	if *ledgerPath != "" {
		f, err := os.Open(*ledgerPath)
		if err != nil {
			return err
		}
		entries, err := mechanism.ReadLedger(f)
		f.Close()
		if err != nil {
			return err
		}
		if *traceID != "" {
			kept := entries[:0]
			for _, e := range entries {
				if e.TraceID == *traceID {
					kept = append(kept, e)
				}
			}
			entries = kept
		}
		if len(entries) == 0 {
			return fmt.Errorf("no ledger entries to audit in %s", *ledgerPath)
		}
		if mismatches := printAudit(out, entries); mismatches > 0 {
			return fmt.Errorf("ledger audit found %d mismatches", mismatches)
		}
	}
	return nil
}

// label returns the value of a key in a span's alternating label list.
func label(s obs.Span, key string) string {
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if s.Labels[i] == key {
			return s.Labels[i+1]
		}
	}
	return ""
}

// phaseKey groups a span for the latency breakdown: its name plus the
// phase label when present (netproto.phase has one per protocol round).
func phaseKey(s obs.Span) string {
	if p := label(s, obs.LabelPhase); p != "" {
		return s.Name + " " + p
	}
	if sch := label(s, obs.LabelScheduler); sch != "" {
		return s.Name + " " + sch
	}
	return s.Name
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// printPhaseBreakdown aggregates span durations by (name, phase).
func printPhaseBreakdown(out io.Writer, spans []obs.Span) {
	type agg struct {
		count int
		total time.Duration
		max   time.Duration
	}
	byKey := map[string]*agg{}
	for _, s := range spans {
		a := byKey[phaseKey(s)]
		if a == nil {
			a = &agg{}
			byKey[phaseKey(s)] = a
		}
		a.count++
		d := s.Duration()
		a.total += d
		if d > a.max {
			a.max = d
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return byKey[keys[i]].total > byKey[keys[j]].total })

	fmt.Fprintf(out, "Per-phase latency (%d spans)\n", len(spans))
	fmt.Fprintf(out, "%-38s %6s %12s %12s %12s\n", "span phase", "count", "total ms", "mean ms", "max ms")
	for _, k := range keys {
		a := byKey[k]
		fmt.Fprintf(out, "%-38s %6d %12.3f %12.3f %12.3f\n",
			k, a.count, ms(a.total), ms(a.total)/float64(a.count), ms(a.max))
	}
	fmt.Fprintln(out)
}

// printCriticalPaths walks each trace from its root along the
// longest-duration child at every hop — the chain that bounded the
// day's wall clock — and prints the hops with their share of the root.
func printCriticalPaths(out io.Writer, spans []obs.Span) {
	children := map[string][]obs.Span{} // parent span ID -> children
	var roots []obs.Span
	for _, s := range spans {
		if s.TraceID == "" {
			continue // flat spans have no tree to walk
		}
		if s.ParentID == "" {
			roots = append(roots, s)
		} else {
			children[s.TraceID+"/"+s.ParentID] = append(children[s.TraceID+"/"+s.ParentID], s)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartNS < roots[j].StartNS })

	for _, root := range roots {
		fmt.Fprintf(out, "Critical path of trace %s (%s, %.3f ms)\n",
			root.TraceID, describe(root), ms(root.Duration()))
		rootDur := root.Duration()
		depth := 0
		for cur := root; ; depth++ {
			share := 100.0
			if rootDur > 0 {
				share = 100 * float64(cur.Duration()) / float64(rootDur)
			}
			fmt.Fprintf(out, "  %s%-*s %10.3f ms %5.1f%%\n",
				strings.Repeat("  ", depth), 40-2*depth, describe(cur), ms(cur.Duration()), share)
			kids := children[cur.TraceID+"/"+cur.SpanID]
			if len(kids) == 0 {
				break
			}
			next := kids[0]
			for _, k := range kids[1:] {
				if k.Duration() > next.Duration() {
					next = k
				}
			}
			cur = next
		}
		fmt.Fprintln(out)
	}
}

// describe renders a span as name plus its labels.
func describe(s obs.Span) string {
	var b strings.Builder
	b.WriteString(s.Name)
	for i := 0; i+1 < len(s.Labels); i += 2 {
		fmt.Fprintf(&b, " %s=%s", s.Labels[i], s.Labels[i+1])
	}
	return b.String()
}

// printAudit recomputes every ledger entry's Eq. 4–7 chain and prints
// one line per day plus any mismatches; it returns the mismatch count.
func printAudit(out io.Writer, entries []mechanism.LedgerEntry) int {
	fmt.Fprintf(out, "Ledger audit (%d entries)\n", len(entries))
	mismatches, degradedDays := 0, 0
	for _, e := range entries {
		bad := e.Audit()
		status := "OK"
		if len(bad) > 0 {
			status = fmt.Sprintf("%d MISMATCHES", len(bad))
			mismatches += len(bad)
		}
		substituted := 0
		for _, h := range e.Households {
			if h.Substituted {
				substituted++
			}
		}
		degraded := ""
		if substituted > 0 {
			degradedDays++
			degraded = fmt.Sprintf(", %d dark household(s) settled as defectors from journaled reports", substituted)
		}
		fmt.Fprintf(out, "day %d trace %s: %s (%d households, cost $%.2f, revenue $%.2f, residual $%.2f%s)\n",
			e.Day, e.TraceID, status, len(e.Households), e.Cost, e.Revenue, e.BudgetResidual, degraded)
		for _, msg := range bad {
			fmt.Fprintf(out, "  ! %s\n", msg)
		}
	}
	if degradedDays > 0 {
		fmt.Fprintf(out, "degraded: %d of %d days settled with substituted households\n", degradedDays, len(entries))
	}
	fmt.Fprintf(out, "audit: %d mismatches in %d entries\n", mismatches, len(entries))
	return mismatches
}
