package main

import (
	"strings"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("10, 20,30")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("parseInts = %v", got)
	}
	if _, err := parseInts("10,x"); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestRunTinySweep(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-fig", "4",
		"-populations", "6,8",
		"-rounds", "2",
		"-opt-limit", "200ms",
		"-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 4") {
		t.Errorf("missing Figure 4 header:\n%s", out.String())
	}
}

func TestRunTinyFig7(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-fig", "7",
		"-households", "8",
		"-repeats", "2",
		"-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "true interval") {
		t.Errorf("missing truth marker:\n%s", out.String())
	}
}

// TestRunWorkersIdenticalOutput drives the CLI end to end at -workers 1
// and -workers 4 and requires byte-identical output. Figure 4 renders
// PAR only (no wall-clock columns), and -opt-limit 0 removes the
// solver's time budget, so the output is fully deterministic.
func TestRunWorkersIdenticalOutput(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		err := run([]string{
			"-fig", "4",
			"-populations", "6,9",
			"-rounds", "3",
			"-opt-limit", "0",
			"-seed", "5",
			"-workers", workers,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	serial := render("1")
	pooled := render("4")
	if serial != pooled {
		t.Errorf("-workers 4 output differs from -workers 1:\nserial:\n%s\npooled:\n%s", serial, pooled)
	}
	if !strings.Contains(serial, "Figure 4") {
		t.Errorf("missing Figure 4 header:\n%s", serial)
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-fig", "5",
		"-populations", "6",
		"-rounds", "2",
		"-opt-limit", "200ms",
		"-csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "users,enki_par") {
		t.Errorf("missing CSV header:\n%s", out.String())
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "9"}, &out); err == nil {
		t.Error("unknown figure should be rejected")
	}
}

func TestRunRejectsBadPopulations(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-populations", "abc"}, &out); err == nil {
		t.Error("bad populations should be rejected")
	}
}
