// Command enkisim regenerates the paper's simulation study (Section
// VI): the PAR, neighborhood-cost, and scheduling-time sweeps of
// Figures 4-6 and the incentive-compatibility exploration of Figure 7.
//
// Usage:
//
//	enkisim -fig all -seed 1 -rounds 10 -populations 10,20,30,40,50
//	enkisim -fig 6 -opt-limit 2s
//	enkisim -fig 4 -csv            # machine-readable output
//	enkisim -fig all -workers 8    # same output, parallel engine
//	enkisim -fig all -metrics-out metrics.json -trace-out spans.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"enki/internal/experiment"
	"enki/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		obs.Logger().Error("enkisim failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("enkisim", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "all", "which figure to regenerate: 4, 5, 6, 7, or all")
		seed        = fs.Uint64("seed", 1, "random seed")
		rounds      = fs.Int("rounds", 10, "simulated days per population (Figures 4-6)")
		populations = fs.String("populations", "10,20,30,40,50", "comma-separated neighborhood sizes")
		optLimit    = fs.Duration("opt-limit", 2*time.Second, "time budget per Optimal solve (0 = unlimited)")
		repeats     = fs.Int("repeats", 10, "repetitions per reported window (Figure 7)")
		households  = fs.Int("households", 50, "neighborhood size for Figure 7")
		csv         = fs.Bool("csv", false, "emit CSV instead of rendered tables")
		ablations   = fs.Bool("ablations", false, "also run the design-choice ablations")
		workers     = fs.Int("workers", 0, "worker goroutines for the experiment engine (0 = GOMAXPROCS, 1 = serial); results are identical for every value")
		metricsOut  = fs.String("metrics-out", "", "dump the metrics-registry snapshot to this JSON file next to the CSVs")
		traceOut    = fs.String("trace-out", "", "write the per-day span trace to this JSONL file")
		traceLimit  = fs.Int("trace-limit", 0, "max retained spans before the oldest are dropped (0 = default)")
	)
	logOpts := obs.LogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := logOpts.Apply(nil); err != nil {
		return err
	}
	if *traceLimit > 0 {
		obs.DefaultTracer().SetCapacity(*traceLimit)
	}
	if *traceOut != "" {
		obs.DefaultTracer().Enable()
	}

	cfg := experiment.DefaultConfig()
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Rounds = *rounds
	cfg.OptimalOptions.TimeLimit = *optLimit
	pops, err := parseInts(*populations)
	if err != nil {
		return fmt.Errorf("parse -populations: %w", err)
	}
	cfg.Populations = pops

	wantSweep := *fig == "all" || *fig == "4" || *fig == "5" || *fig == "6"
	wantFig7 := *fig == "all" || *fig == "7"
	if !wantSweep && !wantFig7 {
		return fmt.Errorf("unknown -fig %q (want 4, 5, 6, 7, or all)", *fig)
	}

	if wantSweep {
		sweep, err := experiment.RunSweep(cfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprint(out, sweep.CSV())
		} else {
			if *fig == "all" || *fig == "4" {
				fmt.Fprintln(out, sweep.RenderFigure4())
			}
			if *fig == "all" || *fig == "5" {
				fmt.Fprintln(out, sweep.RenderFigure5())
			}
			if *fig == "all" || *fig == "6" {
				fmt.Fprintln(out, sweep.RenderFigure6())
			}
		}
	}

	if wantFig7 {
		fcfg := experiment.DefaultFig7Config()
		fcfg.Repeats = *repeats
		fcfg.Households = *households
		res, err := experiment.RunFigure7(cfg, fcfg)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprint(out, res.CSV())
		} else {
			fmt.Fprintln(out, res.Render())
		}
	}

	if *ablations {
		ordering, err := experiment.RunOrderingAblation(cfg, 30, *rounds)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ordering.Render())
		tariffs, err := experiment.RunPricingAblation(cfg, 30, *rounds)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tariffs.Render())
		coalitions, err := experiment.RunCoalitionAblation(cfg, 30, *rounds, 0.25)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, coalitions.Render())
		discount, err := experiment.RunDiscountAblation(cfg, 30, *rounds)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, discount.Render())
	}

	if *metricsOut != "" {
		if err := writeMetricsSnapshot(*metricsOut); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.DefaultTracer().WriteJSONL(f); err != nil {
			return err
		}
	}
	return nil
}

// writeMetricsSnapshot dumps the default registry as JSON.
func writeMetricsSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.Default().Snapshot().WriteJSON(f)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
