package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"enki/internal/obs"
)

// TestFreshDaemonMetricsPage checks the acceptance criterion for the
// -http flag: a scrape of a freshly started daemon (ephemeral port,
// no agents, no days run) already lists the netproto, scheduler, and
// mechanism series, because preregisterMetrics creates them at zero.
func TestFreshDaemonMetricsPage(t *testing.T) {
	obs.Default().Reset()
	preregisterMetrics("enki-greedy")

	srv, err := obs.ServeDebug("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, series := range []string{
		obs.MetricNetDaysTotal,
		obs.MetricNetMessagesTotal + `{direction="sent"}`,
		obs.MetricNetTimeoutsTotal,
		obs.MetricSchedAllocateTotal + `{scheduler="enki-greedy"}`,
		obs.MetricSchedDefermentSlots,
		obs.MetricMechSettlementsTotal,
		obs.MetricMechDayPAR,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("fresh /metrics missing series %s", series)
		}
	}
}
