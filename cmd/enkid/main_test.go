package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"enki/internal/obs"
)

// TestHelpOutputDeterministicAndNamespaced is the flag-surface docs
// test: -help must render identically run to run (the flag package
// sorts lexically, grouping the obs.*, shard.*, wire.* namespaces), and
// every namespaced flag must have its pre-namespace flat alias.
func TestHelpOutputDeterministicAndNamespaced(t *testing.T) {
	render := func() string {
		fs, _ := newFlagSet()
		var buf bytes.Buffer
		fs.SetOutput(&buf)
		fs.Usage()
		return buf.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("-help output changed between runs:\n%s\nvs\n%s", first, got)
		}
	}

	namespaced := []string{
		"-shard.agents", "-shard.days", "-shard.wait", "-shard.sigma", "-shard.rating", "-shard.xi",
		"-wire.addr", "-wire.codec", "-wire.phase-deadline", "-wire.fault-plan",
		"-replica.n", "-replica.quorum-timeout",
		"-obs.journal", "-obs.ledger", "-obs.http", "-obs.trace-out", "-obs.trace-seed", "-obs.trace-limit",
		"-obs.bundle-dir", "-obs.bundle-cpu",
	}
	for _, name := range namespaced {
		if !strings.Contains(first, name+" ") && !strings.Contains(first, name+"\n") {
			t.Errorf("-help missing %s", name)
		}
	}
	aliases := []string{
		"alias for -shard.agents", "alias for -shard.days", "alias for -shard.wait",
		"alias for -shard.sigma", "alias for -shard.rating", "alias for -shard.xi",
		"alias for -wire.addr", "alias for -wire.phase-deadline", "alias for -wire.fault-plan",
		"alias for -obs.journal", "alias for -obs.ledger", "alias for -obs.http",
		"alias for -obs.trace-out", "alias for -obs.trace-seed", "alias for -obs.trace-limit",
		"alias for -obs.bundle-dir", "alias for -obs.bundle-cpu",
	}
	for _, a := range aliases {
		if !strings.Contains(first, a) {
			t.Errorf("-help missing %q", a)
		}
	}
}

// TestFlagAliasesShareValues: setting a flat alias must be exactly
// setting its canonical namespaced flag — one Value, two names.
func TestFlagAliasesShareValues(t *testing.T) {
	fs, f := newFlagSet()
	if err := fs.Parse([]string{"-agents", "7", "-wire.addr", "10.0.0.1:9", "-xi", "1.5"}); err != nil {
		t.Fatal(err)
	}
	if f.agents != 7 {
		t.Errorf("alias -agents did not set shard.agents: %d", f.agents)
	}
	if f.addr != "10.0.0.1:9" {
		t.Errorf("-wire.addr = %q", f.addr)
	}
	if f.xi != 1.5 {
		t.Errorf("alias -xi did not set shard.xi: %g", f.xi)
	}
}

// TestFreshDaemonMetricsPage checks the acceptance criterion for the
// -http flag: a scrape of a freshly started daemon (ephemeral port,
// no agents, no days run) already lists the netproto, scheduler, and
// mechanism series, because preregisterMetrics creates them at zero.
func TestFreshDaemonMetricsPage(t *testing.T) {
	obs.Default().Reset()
	preregisterMetrics("enki-greedy")

	srv, err := obs.ServeDebug("127.0.0.1:0", obs.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, series := range []string{
		obs.MetricNetDaysTotal,
		obs.MetricNetMessagesTotal + `{direction="sent"}`,
		obs.MetricNetTimeoutsTotal,
		obs.MetricSchedAllocateTotal + `{scheduler="enki-greedy"}`,
		obs.MetricSchedDefermentSlots,
		obs.MetricMechSettlementsTotal,
		obs.MetricMechDayPAR,
		obs.MetricObsRecorderEvents,
		obs.MetricObsBundleWrites,
		obs.MetricObsBundleLastUnix,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("fresh /metrics missing series %s", series)
		}
	}
}
