// Command enkid runs a neighborhood center daemon: it listens for
// household ECC agents (cmd/enkiagent), waits until the expected
// number have registered, then runs the Figure 1 day cycle the
// requested number of times and prints each day's settlement. (For the
// sharded in-process service settling many neighborhoods at once, see
// net.StartCluster and cmd/enkiload.)
//
// Flags are grouped into three namespaces — -shard.* for the
// neighborhood being settled, -wire.* for the transport, -obs.* for
// observability — with the historical flat names kept as aliases, so
// existing deployments keep working:
//
//	enkid -wire.addr 127.0.0.1:7600 -shard.agents 3 -shard.days 2
//	enkid -wire.codec binary            # prefer the compact codec when agents offer it
//	enkid -obs.http 127.0.0.1:8080      # /metrics, /healthz, pprof
//	enkid -obs.trace-out day-spans.jsonl
//	enkid -obs.ledger audit.jsonl       # per-day mechanism audit ledger
//	enkid -wire.phase-deadline 5s       # settle dark households instead of hanging
//	enkid -wire.fault-plan seed=42,msgs=100,drop=0.05
//	enkid -replica.n 3                  # replicate the center: quorum journal + failover
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		obs.Logger().Error("enkid failed", "err", err)
		os.Exit(1)
	}
}

// daemonFlags is the parsed enkid flag surface. Canonical flags are
// namespaced (-shard.*, -wire.*, -obs.*); every pre-namespace flat name
// is registered as an alias sharing the canonical flag.Value, so either
// spelling works and they can never disagree.
type daemonFlags struct {
	addr       string
	codec      string
	deadline   time.Duration
	faultSpec  string
	agents     int
	days       int
	wait       time.Duration
	sigma      float64
	rating     float64
	xi         float64
	journal    string
	ledger     string
	httpAddr   string
	reporting  bool
	traceOut   string
	traceSeed  uint64
	traceLimit int
	bundleDir  string
	bundleCPU  time.Duration
	replicas   int
	quorumWait time.Duration
	logOpts    *obs.LogOptions
}

// newFlagSet builds enkid's flag set. The -help output is deterministic:
// the flag package prints flags in lexical order, which groups the
// namespaces (obs.*, shard.*, wire.*) and lists the flat aliases
// predictably — the docs test pins this.
func newFlagSet() (*flag.FlagSet, *daemonFlags) {
	fs := flag.NewFlagSet("enkid", flag.ContinueOnError)
	f := &daemonFlags{}

	// -shard.*: the neighborhood being settled — who joins it and the
	// mechanism parameters it settles under.
	fs.IntVar(&f.agents, "shard.agents", 2, "number of household agents to wait for")
	fs.IntVar(&f.days, "shard.days", 1, "number of day cycles to run")
	fs.DurationVar(&f.wait, "shard.wait", time.Minute, "how long to wait for agents")
	fs.Float64Var(&f.sigma, "shard.sigma", pricing.DefaultSigma, "pricing scale σ")
	fs.Float64Var(&f.rating, "shard.rating", 2, "power rating r (kW)")
	fs.Float64Var(&f.xi, "shard.xi", mechanism.DefaultXi, "payment scale ξ (≥ 1)")

	// -wire.*: the transport — where the center listens and how frames
	// behave on the way out.
	fs.StringVar(&f.addr, "wire.addr", "127.0.0.1:7600", "listen address")
	fs.StringVar(&f.codec, "wire.codec", netproto.CodecJSON, "preferred batch-frame codec when an agent offers negotiation (json or binary)")
	fs.DurationVar(&f.deadline, "wire.phase-deadline", netproto.DefaultPhaseDeadline, "per-phase reply deadline; households dark past it are settled degraded")
	fs.StringVar(&f.faultSpec, "wire.fault-plan", "", "deterministic outbound fault plan, e.g. drop@3,dup@7 or seed=42,msgs=100,drop=0.05")

	// -replica.*: quorum replication of the settlement journal. n = 1
	// runs the plain single center on -wire.addr; n > 1 replicates it
	// across n nodes on ephemeral loopback listeners.
	fs.IntVar(&f.replicas, "replica.n", 1, "settlement-center replicas (odd, 2f+1; 1 = unreplicated)")
	fs.DurationVar(&f.quorumWait, "replica.quorum-timeout", netproto.DefaultQuorumTimeout, "per-follower deadline on append/commit round trips")

	// -obs.*: observability — metrics endpoint, journals, traces.
	fs.StringVar(&f.journal, "obs.journal", "", "append day settlements to this JSONL file")
	fs.StringVar(&f.ledger, "obs.ledger", "", "append per-day mechanism audit-ledger entries to this JSONL file")
	fs.StringVar(&f.httpAddr, "obs.http", "", "serve the operator plane on this address: /metrics, /healthz, /readyz, /api/v1/*, pprof (e.g. 127.0.0.1:8080; empty = off)")
	fs.BoolVar(&f.reporting, "obs.reporting", false, "merge agent metricsReport snapshots into the federated view at /api/v1/federation")
	fs.StringVar(&f.traceOut, "obs.trace-out", "", "write the day-cycle span trace to this JSONL file")
	fs.Uint64Var(&f.traceSeed, "obs.trace-seed", 0, "seed for the deterministic per-day trace IDs and session tokens")
	fs.IntVar(&f.traceLimit, "obs.trace-limit", 0, "max retained spans before the oldest are dropped (0 = default)")
	fs.StringVar(&f.bundleDir, "obs.bundle-dir", "", "enable the flight recorder and write debug bundles here on SLO breach, shard degradation, SIGUSR1, or POST /api/v1/debug/bundle (empty = off)")
	fs.DurationVar(&f.bundleCPU, "obs.bundle-cpu", 0, "CPU-profile length captured into each debug bundle (0 = skip; capture blocks the trigger for the duration)")
	f.logOpts = obs.LogFlags(fs)

	// Flat aliases from before the namespacing; each shares its
	// canonical flag's Value.
	for alias, canonical := range map[string]string{
		"agents":         "shard.agents",
		"days":           "shard.days",
		"wait":           "shard.wait",
		"sigma":          "shard.sigma",
		"rating":         "shard.rating",
		"xi":             "shard.xi",
		"addr":           "wire.addr",
		"phase-deadline": "wire.phase-deadline",
		"fault-plan":     "wire.fault-plan",
		"journal":        "obs.journal",
		"ledger":         "obs.ledger",
		"http":           "obs.http",
		"trace-out":      "obs.trace-out",
		"trace-seed":     "obs.trace-seed",
		"trace-limit":    "obs.trace-limit",
		"bundle-dir":     "obs.bundle-dir",
		"bundle-cpu":     "obs.bundle-cpu",
	} {
		fs.Var(fs.Lookup(canonical).Value, alias, "alias for -"+canonical)
	}
	return fs, f
}

func run(args []string) error {
	fs, f := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr, agents, days, wait := &f.addr, &f.agents, &f.days, &f.wait
	deadline, faultSpec := &f.deadline, &f.faultSpec
	sigma, rating, xi := &f.sigma, &f.rating, &f.xi
	journal, ledger, httpAddr := &f.journal, &f.ledger, &f.httpAddr
	traceOut, traceSeed, traceLimit := &f.traceOut, &f.traceSeed, &f.traceLimit
	logger, err := f.logOpts.Apply(nil)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pricer, err := pricing.NewQuadratic(*sigma)
	if err != nil {
		return err
	}
	plan, err := netproto.ParseFaultPlan(*faultSpec)
	if err != nil {
		return fmt.Errorf("parse -wire.fault-plan: %w", err)
	}
	if _, ok := netproto.LookupCodec(f.codec); !ok {
		return fmt.Errorf("unknown -wire.codec %q (have: %v)", f.codec, netproto.CodecNames())
	}
	var ledgerLog *netproto.Journal
	if *ledger != "" {
		f, err := os.OpenFile(*ledger, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		ledgerLog = netproto.NewJournal(f)
	}

	scheduler := &sched.Greedy{Pricer: pricer, Rating: *rating}
	centerOpts := []netproto.Option{
		netproto.WithScheduler(scheduler),
		netproto.WithPricer(pricer),
		netproto.WithMechanism(mechanism.Config{K: mechanism.DefaultK, Xi: *xi}),
		netproto.WithRating(*rating),
		netproto.WithPhaseDeadline(*deadline),
		netproto.WithTraceSeed(*traceSeed),
		netproto.WithLedger(ledgerLog),
		netproto.WithFaultPlan(plan),
		netproto.WithCodec(f.codec),
		netproto.WithMetricsReporting(f.reporting),
	}
	if *httpAddr != "" || f.bundleDir != "" {
		// The operator plane and the bundle trigger both imply the SLO
		// engine: /api/v1/slo and the breach watcher burn against the
		// default objectives.
		centerOpts = append(centerOpts, netproto.WithSLO())
	}
	var center settler
	if f.replicas > 1 {
		replicaOpts := append(centerOpts,
			netproto.WithReplicas(f.replicas),
			netproto.WithQuorumTimeout(f.quorumWait))
		rs, err := netproto.StartReplicaSet(ctx, replicaOpts...)
		if err != nil {
			return err
		}
		logger.Info("replica set up", "replicas", f.replicas, "leader", rs.Leader(),
			"note", "-wire.addr ignored: replicas bind ephemeral loopback listeners")
		center = rs
	} else {
		c, err := netproto.StartCenter(*addr, centerOpts...)
		if err != nil {
			return err
		}
		center = c
	}
	defer center.Close()

	preregisterMetrics(scheduler.Name())
	var operator *obs.Operator
	if *httpAddr != "" || f.bundleDir != "" {
		operator = center.Operator()
	}
	if *httpAddr != "" {
		srv, err := obs.ServeOperator(*httpAddr, operator)
		if err != nil {
			return err
		}
		defer srv.Close()
		logger.Info("operator plane up", "addr", srv.Addr(),
			"endpoints", "/metrics /healthz /readyz /api/v1/{day,shards,ledger/tail,slo,federation,metrics,debug/bundle} /debug/pprof/")
	}
	if f.bundleDir != "" {
		obs.DefaultRecorder().Enable()
		trig, err := obs.NewTrigger(obs.TriggerConfig{
			Dir:        f.bundleDir,
			CPUProfile: f.bundleCPU,
			Config: map[string]string{
				"addr":  *addr,
				"codec": f.codec,
				"xi":    fmt.Sprint(*xi),
				"days":  fmt.Sprint(*days),
			},
		}, obs.BundleSources{
			Operator: operator,
			Recorder: obs.DefaultRecorder(),
			Tracer:   obs.DefaultTracer(),
		})
		if err != nil {
			return err
		}
		operator.Debug = trig
		// SIGUSR1 is the operator's on-demand capture path alongside
		// POST /api/v1/debug/bundle.
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		defer signal.Stop(usr1)
		go func() {
			for range usr1 {
				if path, err := trig.Fire("sigusr1"); err != nil {
					logger.Error("bundle capture failed", "err", err)
				} else if path != "" {
					logger.Info("debug bundle written", "path", path, "reason", "sigusr1")
				}
			}
		}()
		go trig.Watch(ctx, 5*time.Second)
		logger.Info("flight recorder on", "bundle_dir", f.bundleDir)
	}
	if *traceLimit > 0 {
		obs.DefaultTracer().SetCapacity(*traceLimit)
	}
	if *traceOut != "" {
		obs.DefaultTracer().Enable()
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				logger.Error("trace export failed", "err", err)
				return
			}
			defer f.Close()
			if err := obs.DefaultTracer().WriteJSONL(f); err != nil {
				logger.Error("trace export failed", "err", err)
			}
		}()
	}

	logger.Info("listening", "addr", center.Addr(), "agents_expected", *agents)
	waitCtx, cancel := context.WithTimeout(ctx, *wait)
	err = center.WaitForAgentsContext(waitCtx, *agents)
	cancel()
	if err != nil {
		return fmt.Errorf("waiting for %d agents: %w", *agents, err)
	}
	logger.Info("agents registered", "count", center.AgentCount())
	if operator != nil {
		operator.SetReady(true) // enrollment complete: /readyz flips to 200
	}

	var journalLog *netproto.Journal
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		journalLog = netproto.NewJournal(f)
	}

	for day := 1; day <= *days; day++ {
		record, err := center.RunDayContext(ctx, day)
		if err != nil {
			return fmt.Errorf("day %d: %w", day, err)
		}
		if journalLog != nil {
			if err := journalLog.Append(record); err != nil {
				return err
			}
		}
		fmt.Printf("day %d: cost $%.2f, peak %.1f kWh\n", day, record.Cost, record.Peak)
		for i, r := range record.Reports {
			degraded := ""
			if record.Substituted != nil && record.Substituted[i] {
				degraded = " [dark: consumption imputed, settled as defector]"
			}
			fmt.Printf("  household %d: reported %v, allocated %v, consumed %v, pays $%.2f (f=%.2f δ=%.2f)%s\n",
				r.ID, r.Pref, record.Assignments[i].Interval, record.Consumptions[i].Interval,
				record.Payments[i], record.Flexibility[i], record.Defection[i], degraded)
		}
		for _, id := range record.Absent {
			fmt.Printf("  household %d: absent (no preference before the deadline), excluded from the day\n", id)
		}
	}
	return nil
}

// settler is the daemon's view of whatever settles its days: the plain
// single center or, with -replica.n > 1, the quorum-replicated set.
type settler interface {
	Addr() string
	AgentCount() int
	WaitForAgentsContext(ctx context.Context, n int) error
	RunDayContext(ctx context.Context, day int) (*netproto.DayRecord, error)
	Operator() *obs.Operator
	Close() error
}

// preregisterMetrics creates the daemon's core series up front so a
// scrape of a freshly started center already shows the netproto,
// scheduler, and mechanism series at zero instead of a page that
// fills in only after the first day cycle.
func preregisterMetrics(schedulerName string) {
	reg := obs.Default()
	reg.Counter(obs.MetricNetDaysTotal)
	for _, dir := range []string{obs.DirectionSent, obs.DirectionReceived} {
		reg.Counter(obs.MetricNetMessagesTotal, obs.LabelDirection, dir)
		reg.Counter(obs.MetricNetBytesTotal, obs.LabelDirection, dir)
		reg.Counter(obs.MetricNetFramesTotal, obs.LabelDirection, dir)
		for _, codec := range netproto.CodecNames() {
			reg.Counter(obs.MetricNetCodecBytesTotal, obs.LabelCodec, codec, obs.LabelDirection, dir)
		}
	}
	reg.Histogram(obs.MetricNetFrameMessages, obs.BatchBuckets)
	for _, phase := range []string{string(netproto.KindPreference), string(netproto.KindConsumption)} {
		reg.Histogram(obs.MetricNetPhaseLatencyMS, obs.LatencyBucketsMS, obs.LabelPhase, phase)
		reg.Counter(obs.MetricNetTimeoutsTotal, obs.LabelPhase, phase)
		reg.Histogram(obs.MetricNetPhaseDeadlineRemainingMS, obs.LatencyBucketsMS, obs.LabelPhase, phase)
	}
	reg.Counter(obs.MetricNetDegradedDaysTotal)
	reg.Counter(obs.MetricNetSubstitutionsTotal)
	reg.Histogram(obs.MetricNetDaySettleMS, obs.LatencyBucketsMS)
	reg.Counter(obs.MetricNetReplaysTotal)
	for _, side := range []string{obs.SideCenter, obs.SideAgent} {
		reg.Counter(obs.MetricNetResumesTotal, obs.LabelSide, side)
	}
	reg.Counter(obs.MetricNetRetriesTotal)
	for _, action := range []netproto.FaultAction{netproto.FaultDrop, netproto.FaultDelay, netproto.FaultDup, netproto.FaultGarble} {
		reg.Counter(obs.MetricNetFaultsTotal, obs.LabelAction, action.String())
	}
	reg.Counter(obs.MetricSchedAllocateTotal, obs.LabelScheduler, schedulerName)
	reg.Histogram(obs.MetricSchedAllocateLatencyMS, obs.LatencyBucketsMS, obs.LabelScheduler, schedulerName)
	reg.Counter(obs.MetricSchedDefermentSlots, obs.LabelScheduler, schedulerName)
	reg.Counter(obs.MetricSchedDeferredHouseholds, obs.LabelScheduler, schedulerName)
	reg.Counter(obs.MetricMechSettlementsTotal)
	reg.Histogram(obs.MetricMechFlexibilityScore, obs.ScoreBuckets)
	reg.Histogram(obs.MetricMechDefectionScore, obs.ScoreBuckets)
	reg.Histogram(obs.MetricMechSocialCostScore, obs.ScoreBuckets)
	reg.Histogram(obs.MetricMechPaymentDollars, obs.DollarBuckets)
	reg.Gauge(obs.MetricMechBudgetResidual)
	reg.Gauge(obs.MetricMechPaymentSpread)
	reg.Gauge(obs.MetricMechDayPAR)
	reg.Gauge(obs.MetricMechTheorem1Deviation)
	reg.Counter(obs.MetricMechBudgetViolations)
	reg.Counter(obs.MetricObsTraceDropped)
	reg.Counter(obs.MetricObsRecorderEvents)
	reg.Counter(obs.MetricObsRecorderDropped)
	reg.Counter(obs.MetricObsBundleWrites)
	reg.Counter(obs.MetricObsBundleSuppressed)
	reg.Counter(obs.MetricObsBundleErrors)
	reg.Gauge(obs.MetricObsBundleLastUnix)
}
