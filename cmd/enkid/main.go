// Command enkid runs a neighborhood center daemon: it listens for
// household ECC agents (cmd/enkiagent), waits until the expected
// number have registered, then runs the Figure 1 day cycle the
// requested number of times and prints each day's settlement.
//
// Usage:
//
//	enkid -addr 127.0.0.1:7600 -agents 3 -days 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/pricing"
	"enki/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "enkid:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("enkid", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:7600", "listen address")
		agents  = fs.Int("agents", 2, "number of household agents to wait for")
		days    = fs.Int("days", 1, "number of day cycles to run")
		wait    = fs.Duration("wait", time.Minute, "how long to wait for agents")
		sigma   = fs.Float64("sigma", pricing.DefaultSigma, "pricing scale σ")
		rating  = fs.Float64("rating", 2, "power rating r (kW)")
		xi      = fs.Float64("xi", mechanism.DefaultXi, "payment scale ξ (≥ 1)")
		journal = fs.String("journal", "", "append day settlements to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pricer, err := pricing.NewQuadratic(*sigma)
	if err != nil {
		return err
	}
	center, err := netproto.NewCenter(*addr, netproto.CenterConfig{
		Scheduler: &sched.Greedy{Pricer: pricer, Rating: *rating},
		Pricer:    pricer,
		Mechanism: mechanism.Config{K: mechanism.DefaultK, Xi: *xi},
		Rating:    *rating,
	})
	if err != nil {
		return err
	}
	defer center.Close()

	fmt.Printf("enkid: listening on %s, waiting for %d agents\n", center.Addr(), *agents)
	if err := center.WaitForAgents(*agents, *wait); err != nil {
		return err
	}
	fmt.Printf("enkid: %d agents registered\n", center.AgentCount())

	var log *netproto.Journal
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		log = netproto.NewJournal(f)
	}

	for day := 1; day <= *days; day++ {
		record, err := center.RunDay(day)
		if err != nil {
			return fmt.Errorf("day %d: %w", day, err)
		}
		if log != nil {
			if err := log.Append(record); err != nil {
				return err
			}
		}
		fmt.Printf("day %d: cost $%.2f, peak %.1f kWh\n", day, record.Cost, record.Peak)
		for i, r := range record.Reports {
			fmt.Printf("  household %d: reported %v, allocated %v, consumed %v, pays $%.2f (f=%.2f δ=%.2f)\n",
				r.ID, r.Pref, record.Assignments[i].Interval, record.Consumptions[i].Interval,
				record.Payments[i], record.Flexibility[i], record.Defection[i])
		}
	}
	return nil
}
