// Command enkid runs a neighborhood center daemon: it listens for
// household ECC agents (cmd/enkiagent), waits until the expected
// number have registered, then runs the Figure 1 day cycle the
// requested number of times and prints each day's settlement.
//
// Usage:
//
//	enkid -addr 127.0.0.1:7600 -agents 3 -days 2
//	enkid -http 127.0.0.1:8080          # /metrics, /healthz, pprof
//	enkid -trace-out day-spans.jsonl    # per-day span trace
//	enkid -ledger audit.jsonl           # per-day mechanism audit ledger
//	enkid -phase-deadline 5s            # settle dark households instead of hanging
//	enkid -fault-plan seed=42,msgs=100,drop=0.05   # chaos-test outbound delivery
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		obs.Logger().Error("enkid failed", "err", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("enkid", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:7600", "listen address")
		agents     = fs.Int("agents", 2, "number of household agents to wait for")
		days       = fs.Int("days", 1, "number of day cycles to run")
		wait       = fs.Duration("wait", time.Minute, "how long to wait for agents")
		deadline   = fs.Duration("phase-deadline", netproto.DefaultPhaseDeadline, "per-phase reply deadline; households dark past it are settled degraded")
		faultSpec  = fs.String("fault-plan", "", "deterministic outbound fault plan, e.g. drop@3,dup@7 or seed=42,msgs=100,drop=0.05")
		sigma      = fs.Float64("sigma", pricing.DefaultSigma, "pricing scale σ")
		rating     = fs.Float64("rating", 2, "power rating r (kW)")
		xi         = fs.Float64("xi", mechanism.DefaultXi, "payment scale ξ (≥ 1)")
		journal    = fs.String("journal", "", "append day settlements to this JSONL file")
		ledger     = fs.String("ledger", "", "append per-day mechanism audit-ledger entries to this JSONL file")
		httpAddr   = fs.String("http", "", "serve /metrics, /healthz, and pprof on this address (e.g. 127.0.0.1:8080; empty = off)")
		traceOut   = fs.String("trace-out", "", "write the day-cycle span trace to this JSONL file")
		traceSeed  = fs.Uint64("trace-seed", 0, "seed for the deterministic per-day trace IDs and session tokens")
		traceLimit = fs.Int("trace-limit", 0, "max retained spans before the oldest are dropped (0 = default)")
	)
	logOpts := obs.LogFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logOpts.Apply(nil)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pricer, err := pricing.NewQuadratic(*sigma)
	if err != nil {
		return err
	}
	plan, err := netproto.ParseFaultPlan(*faultSpec)
	if err != nil {
		return fmt.Errorf("parse -fault-plan: %w", err)
	}
	var ledgerLog *netproto.Journal
	if *ledger != "" {
		f, err := os.OpenFile(*ledger, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		ledgerLog = netproto.NewJournal(f)
	}

	scheduler := &sched.Greedy{Pricer: pricer, Rating: *rating}
	center, err := netproto.StartCenter(*addr,
		netproto.WithScheduler(scheduler),
		netproto.WithPricer(pricer),
		netproto.WithMechanism(mechanism.Config{K: mechanism.DefaultK, Xi: *xi}),
		netproto.WithRating(*rating),
		netproto.WithPhaseDeadline(*deadline),
		netproto.WithTraceSeed(*traceSeed),
		netproto.WithLedger(ledgerLog),
		netproto.WithFaultPlan(plan),
	)
	if err != nil {
		return err
	}
	defer center.Close()

	preregisterMetrics(scheduler.Name())
	if *httpAddr != "" {
		debug, err := obs.ServeDebug(*httpAddr, obs.Default())
		if err != nil {
			return err
		}
		defer debug.Close()
		logger.Info("debug listener up", "addr", debug.Addr(),
			"endpoints", "/metrics /healthz /debug/pprof/")
	}
	if *traceLimit > 0 {
		obs.DefaultTracer().SetCapacity(*traceLimit)
	}
	if *traceOut != "" {
		obs.DefaultTracer().Enable()
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				logger.Error("trace export failed", "err", err)
				return
			}
			defer f.Close()
			if err := obs.DefaultTracer().WriteJSONL(f); err != nil {
				logger.Error("trace export failed", "err", err)
			}
		}()
	}

	logger.Info("listening", "addr", center.Addr(), "agents_expected", *agents)
	waitCtx, cancel := context.WithTimeout(ctx, *wait)
	err = center.WaitForAgentsContext(waitCtx, *agents)
	cancel()
	if err != nil {
		return fmt.Errorf("waiting for %d agents: %w", *agents, err)
	}
	logger.Info("agents registered", "count", center.AgentCount())

	var journalLog *netproto.Journal
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		journalLog = netproto.NewJournal(f)
	}

	for day := 1; day <= *days; day++ {
		record, err := center.RunDayContext(ctx, day)
		if err != nil {
			return fmt.Errorf("day %d: %w", day, err)
		}
		if journalLog != nil {
			if err := journalLog.Append(record); err != nil {
				return err
			}
		}
		fmt.Printf("day %d: cost $%.2f, peak %.1f kWh\n", day, record.Cost, record.Peak)
		for i, r := range record.Reports {
			degraded := ""
			if record.Substituted != nil && record.Substituted[i] {
				degraded = " [dark: consumption imputed, settled as defector]"
			}
			fmt.Printf("  household %d: reported %v, allocated %v, consumed %v, pays $%.2f (f=%.2f δ=%.2f)%s\n",
				r.ID, r.Pref, record.Assignments[i].Interval, record.Consumptions[i].Interval,
				record.Payments[i], record.Flexibility[i], record.Defection[i], degraded)
		}
		for _, id := range record.Absent {
			fmt.Printf("  household %d: absent (no preference before the deadline), excluded from the day\n", id)
		}
	}
	return nil
}

// preregisterMetrics creates the daemon's core series up front so a
// scrape of a freshly started center already shows the netproto,
// scheduler, and mechanism series at zero instead of a page that
// fills in only after the first day cycle.
func preregisterMetrics(schedulerName string) {
	reg := obs.Default()
	reg.Counter(obs.MetricNetDaysTotal)
	for _, dir := range []string{obs.DirectionSent, obs.DirectionReceived} {
		reg.Counter(obs.MetricNetMessagesTotal, obs.LabelDirection, dir)
		reg.Counter(obs.MetricNetBytesTotal, obs.LabelDirection, dir)
	}
	for _, phase := range []string{string(netproto.KindPreference), string(netproto.KindConsumption)} {
		reg.Histogram(obs.MetricNetPhaseLatencyMS, obs.LatencyBucketsMS, obs.LabelPhase, phase)
		reg.Counter(obs.MetricNetTimeoutsTotal, obs.LabelPhase, phase)
		reg.Histogram(obs.MetricNetPhaseDeadlineRemainingMS, obs.LatencyBucketsMS, obs.LabelPhase, phase)
	}
	reg.Counter(obs.MetricNetDegradedDaysTotal)
	reg.Counter(obs.MetricNetSubstitutionsTotal)
	reg.Counter(obs.MetricNetReplaysTotal)
	for _, side := range []string{obs.SideCenter, obs.SideAgent} {
		reg.Counter(obs.MetricNetResumesTotal, obs.LabelSide, side)
	}
	reg.Counter(obs.MetricNetRetriesTotal)
	for _, action := range []netproto.FaultAction{netproto.FaultDrop, netproto.FaultDelay, netproto.FaultDup, netproto.FaultGarble} {
		reg.Counter(obs.MetricNetFaultsTotal, obs.LabelAction, action.String())
	}
	reg.Counter(obs.MetricSchedAllocateTotal, obs.LabelScheduler, schedulerName)
	reg.Histogram(obs.MetricSchedAllocateLatencyMS, obs.LatencyBucketsMS, obs.LabelScheduler, schedulerName)
	reg.Counter(obs.MetricSchedDefermentSlots, obs.LabelScheduler, schedulerName)
	reg.Counter(obs.MetricSchedDeferredHouseholds, obs.LabelScheduler, schedulerName)
	reg.Counter(obs.MetricMechSettlementsTotal)
	reg.Histogram(obs.MetricMechFlexibilityScore, obs.ScoreBuckets)
	reg.Histogram(obs.MetricMechDefectionScore, obs.ScoreBuckets)
	reg.Histogram(obs.MetricMechSocialCostScore, obs.ScoreBuckets)
	reg.Histogram(obs.MetricMechPaymentDollars, obs.DollarBuckets)
	reg.Gauge(obs.MetricMechBudgetResidual)
	reg.Gauge(obs.MetricMechPaymentSpread)
	reg.Gauge(obs.MetricMechDayPAR)
	reg.Counter(obs.MetricObsTraceDropped)
}
