package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuickReport(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"Table II", "Table III", "Table IV", "Figure 8", "Figure 9",
		"ECC learning curve",
		"Ablation: greedy processing order",
		"Ablation: pricing function",
		"Ablation: coalition swaps",
		"Ablation: Eq. 5 overlap discount",
		"subjects (",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var devNull strings.Builder
	if err := run([]string{"-quick", "-o", path}, &devNull); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Enki reproduction report") {
		t.Error("file report missing header")
	}
}
