package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enki/internal/obs"
)

// TestLoadSmallPopulation runs the harness end to end at toy scale with
// the determinism check on: budget identity, workers=1 equivalence, and
// the wire summary all exercised in one pass.
func TestLoadSmallPopulation(t *testing.T) {
	obs.Default().Reset()
	var out strings.Builder
	err := run([]string{
		"-households", "300", "-shards", "16", "-days", "2",
		"-workers", "4", "-check",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"enrolled 300 households in 16 shards",
		"day 1: settled",
		"day 2: settled",
		"determinism check passed",
		"wire:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestLoadJSONCodecAndSnapshot covers the JSON wire path and the -out
// metrics snapshot, which must include the per-codec byte series.
func TestLoadJSONCodecAndSnapshot(t *testing.T) {
	obs.Default().Reset()
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out strings.Builder
	err := run([]string{
		"-households", "64", "-shards", "8", "-codec", "json", "-batch", "16",
		"-out", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	found := false
	for k := range snap.Counters {
		if strings.HasPrefix(k, obs.MetricNetCodecBytesTotal) && strings.Contains(k, `codec="json"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot missing %s{codec=json} series; counters: %v",
			obs.MetricNetCodecBytesTotal, len(snap.Counters))
	}
}

// TestLoadOperatorPlane runs the harness with the operator API up and
// the post-run ops gate on, plus a federated-snapshot export: the day
// must settle, every SLO objective must be healthy, and the federation
// must hold one source per shard.
func TestLoadOperatorPlane(t *testing.T) {
	obs.Default().Reset()
	fedPath := filepath.Join(t.TempDir(), "federation.json")
	var out strings.Builder
	err := run([]string{
		"-households", "128", "-shards", "8", "-days", "2",
		"-ops", "127.0.0.1:0", "-ops-check", "-fed-out", fedPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"operator plane: http://127.0.0.1:",
		"ops-check: day 2 settled",
		"SLO objectives healthy",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	raw, err := os.ReadFile(fedPath)
	if err != nil {
		t.Fatal(err)
	}
	var fed obs.FederatedSnapshot
	if err := json.Unmarshal(raw, &fed); err != nil {
		t.Fatalf("federated snapshot not valid JSON: %v", err)
	}
	if len(fed.Sources) != 8 {
		t.Errorf("federated sources = %d, want one per shard", len(fed.Sources))
	}
	if got := fed.Merged.Counters[obs.MetricClusterHouseholdsSettled]; got != 256 {
		t.Errorf("merged households settled = %d, want 256 (128 × 2 days)", got)
	}
}

// TestLoadFlagValidation rejects nonsense before any work happens.
func TestLoadFlagValidation(t *testing.T) {
	for _, argv := range [][]string{
		{"-households", "0"},
		{"-shards", "0"},
		{"-shards", "10", "-households", "5"},
		{"-days", "0"},
		{"-codec", "carrier-pigeon"},
		{"-ops-check"},
		{"-fed-out", "fed.json"},
	} {
		var out strings.Builder
		if err := run(argv, &out); err == nil {
			t.Errorf("run(%v) accepted invalid flags", argv)
		}
	}
}

// TestLoadReplicatedWithLeaderKill drives the replicated wire mode:
// 40 households against 3 replicas, leader killed before day 2, and
// the budget identity checked on every day including the failover one.
func TestLoadReplicatedWithLeaderKill(t *testing.T) {
	obs.Default().Reset()
	var out strings.Builder
	err := run([]string{
		"-households", "40", "-days", "2", "-replicas", "3", "-kill-leader", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"enrolled 40 wire households against a 3-replica center (leader 0)",
		"day 1: settled 40 households",
		"day 2: killed leader 0 before settlement",
		"day 2: settled 40 households",
		"term 2",
		"replica set: 1 failovers, leader 1, term 2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestLoadReplicatedFlagValidation rejects cluster-only flags and
// nonsense kill schedules in replicated mode.
func TestLoadReplicatedFlagValidation(t *testing.T) {
	for _, argv := range [][]string{
		{"-replicas", "3", "-shards", "8"},
		{"-replicas", "3", "-check"},
		{"-replicas", "3", "-ops", "127.0.0.1:0"},
		{"-replicas", "3", "-fault-plan", "drop@3"},
		{"-replicas", "2", "-households", "10"},
		{"-replicas", "3", "-kill-leader", "5", "-days", "2"},
		{"-replicas", "3", "-households", "20000"},
		{"-kill-leader", "1"},
	} {
		var out strings.Builder
		if err := run(argv, &out); err == nil {
			t.Errorf("run(%v) accepted invalid flags", argv)
		}
	}
}
