// Command enkiload is the scale harness for the sharded settlement
// service: it enrolls a large population of truthful households
// (Section VI usage profiles), partitions them into neighborhoods with
// net.StartCluster, and drives full preference→payment days through the
// batched wire framing, reporting throughput, wire-level counters, and
// the Theorem 1 budget identity for every day.
//
//	enkiload -households 1000000 -shards 1024 -codec binary
//	enkiload -households 100000 -shards 128 -days 3 -check
//	enkiload -households 500 -replicas 3 -days 3 -kill-leader 2
//
// With -replicas N (odd, > 1) the harness settles through a
// quorum-replicated wire center instead of the shard fabric, one agent
// connection per household; -kill-leader D kills the current leader
// before day D so the run crosses a mid-sequence failover.
//
// With -check the harness re-settles every day on a single worker and
// fails unless the merged day report is byte-identical — the
// Workers:1 ≡ Workers:N determinism contract at population scale.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/profile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "enkiload:", err)
		os.Exit(1)
	}
}

type loadFlags struct {
	households int
	shards     int
	workers    int
	days       int
	codec      string
	batch      int
	seed       uint64
	sigma      float64
	rating     float64
	xi         float64
	records    bool
	check      bool
	out        string
	ops        string
	opsCheck   bool
	fedOut     string

	faultPlan    string
	faultShard   int
	bundleDir    string
	bundleOnFail bool

	replicas   int
	killLeader int
}

func newFlagSet() (*flag.FlagSet, *loadFlags) {
	f := &loadFlags{}
	fs := flag.NewFlagSet("enkiload", flag.ContinueOnError)
	fs.IntVar(&f.households, "households", 1_000_000, "population size")
	fs.IntVar(&f.shards, "shards", 1024, "neighborhood count")
	fs.IntVar(&f.workers, "workers", 0, "settlement worker pool (0 = all CPUs)")
	fs.IntVar(&f.days, "days", 1, "days to settle")
	fs.StringVar(&f.codec, "codec", netproto.CodecBinary, "wire codec for shard links")
	fs.IntVar(&f.batch, "batch", netproto.DefaultBatchSize, "messages per batch frame")
	fs.Uint64Var(&f.seed, "seed", 1, "profile and trace seed")
	fs.Float64Var(&f.sigma, "sigma", pricing.DefaultSigma, "quadratic tariff σ")
	fs.Float64Var(&f.rating, "rating", core.DefaultPowerRating, "household power rating in kW")
	fs.Float64Var(&f.xi, "xi", mechanism.DefaultXi, "payment scale ξ (≥ 1)")
	fs.BoolVar(&f.records, "records", false, "keep full per-shard DayRecords (costs memory at scale)")
	fs.BoolVar(&f.check, "check", false, "re-settle each day on one worker and require byte-identical output")
	fs.StringVar(&f.out, "out", "", "write an obs metrics snapshot (JSON) on exit")
	fs.StringVar(&f.ops, "ops", "", "serve the operator plane on this address (e.g. 127.0.0.1:0; enables metrics federation and the default SLOs)")
	fs.BoolVar(&f.opsCheck, "ops-check", false, "after the run, scrape /api/v1/day and /api/v1/slo and fail on non-2xx, an unsettled day, or an unhealthy objective")
	fs.StringVar(&f.fedOut, "fed-out", "", "write the federated metrics snapshot (JSON) on exit (requires -ops)")
	fs.StringVar(&f.faultPlan, "fault-plan", "", "inject a deterministic fault plan on one shard link (e.g. 'drop@30' or 'seed=7,msgs=200,drop=0.02')")
	fs.IntVar(&f.faultShard, "fault-shard", 0, "shard whose link -fault-plan sabotages")
	fs.StringVar(&f.bundleDir, "bundle-dir", "", "enable the flight recorder and write breach-triggered debug bundles here (enables the default SLOs)")
	fs.BoolVar(&f.bundleOnFail, "bundle-on-fail", false, "capture a debug bundle when the run fails (requires -bundle-dir)")
	fs.IntVar(&f.replicas, "replicas", 1, "settle through a replicated wire center with this many replicas (odd; 1 = sharded cluster mode)")
	fs.IntVar(&f.killLeader, "kill-leader", 0, "kill the leader replica before settling this day (requires -replicas > 1)")
	return fs, f
}

// clusterOnlyFlags are meaningless against a replicated wire center:
// replicas settle one neighborhood over TCP, not an in-process shard
// fabric, so the shard/fault/ops machinery has nothing to attach to.
var clusterOnlyFlags = map[string]bool{
	"shards": true, "workers": true, "codec": true, "batch": true,
	"records": true, "check": true, "fault-plan": true, "fault-shard": true,
	"ops": true, "ops-check": true, "fed-out": true,
	"bundle-dir": true, "bundle-on-fail": true,
}

func run(argv []string, out io.Writer) error {
	fs, f := newFlagSet()
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if f.households < 1 {
		return fmt.Errorf("-households %d must be positive", f.households)
	}
	if f.replicas == 1 && (f.shards < 1 || f.shards > f.households) {
		return fmt.Errorf("-shards %d must be in [1, households]", f.shards)
	}
	if f.days < 1 {
		return fmt.Errorf("-days %d must be positive", f.days)
	}
	if f.replicas > 1 {
		var bad []string
		fs.Visit(func(fl *flag.Flag) {
			if clusterOnlyFlags[fl.Name] {
				bad = append(bad, "-"+fl.Name)
			}
		})
		if len(bad) > 0 {
			return fmt.Errorf("%s: cluster-only, not valid with -replicas %d", strings.Join(bad, ", "), f.replicas)
		}
		if f.killLeader < 0 || f.killLeader > f.days {
			return fmt.Errorf("-kill-leader %d outside [0, %d]", f.killLeader, f.days)
		}
		if f.households > 10_000 {
			return fmt.Errorf("-households %d: replicated mode drives one wire agent per household; use ≤ 10000", f.households)
		}
	} else if f.killLeader != 0 {
		return fmt.Errorf("-kill-leader requires -replicas > 1")
	}
	if _, ok := netproto.LookupCodec(f.codec); !ok {
		return fmt.Errorf("unknown -codec %q (have: %v)", f.codec, netproto.CodecNames())
	}
	if (f.opsCheck || f.fedOut != "") && f.ops == "" {
		return fmt.Errorf("-ops-check and -fed-out require -ops")
	}
	if f.bundleOnFail && f.bundleDir == "" {
		return fmt.Errorf("-bundle-on-fail requires -bundle-dir")
	}
	if f.faultPlan != "" {
		if _, err := netproto.ParseFaultPlan(f.faultPlan); err != nil {
			return err
		}
		if f.faultShard < 0 || f.faultShard >= f.shards {
			return fmt.Errorf("-fault-shard %d outside [0, %d)", f.faultShard, f.shards)
		}
	}
	pricer, err := pricing.NewQuadratic(f.sigma)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if f.replicas > 1 {
		return runReplicated(ctx, f, pricer, out)
	}
	start := time.Now()
	cluster, err := startCluster(ctx, f, pricer, f.workers)
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Fprintf(out, "enrolled %d households in %d shards (codec=%s batch=%d) in %v\n",
		cluster.Members(), cluster.Shards(), f.codec, f.batch, time.Since(start).Round(time.Millisecond))

	var opsURL string
	var op *obs.Operator
	if f.ops != "" {
		op = cluster.Operator()
		srv, err := obs.ServeOperator(f.ops, op)
		if err != nil {
			return err
		}
		defer srv.Close()
		op.SetReady(true) // enrollment is complete by here
		opsURL = "http://" + srv.Addr()
		fmt.Fprintf(out, "operator plane: %s (api /api/v1/{day,shards,ledger/tail,slo,federation})\n", opsURL)
	}

	var trig *obs.Trigger
	if f.bundleDir != "" {
		if op == nil {
			op = cluster.Operator()
		}
		obs.DefaultRecorder().Enable()
		trig, err = obs.NewTrigger(obs.TriggerConfig{
			Dir: f.bundleDir,
			Config: map[string]string{
				"households": fmt.Sprint(f.households),
				"shards":     fmt.Sprint(f.shards),
				"codec":      f.codec,
				"batch":      fmt.Sprint(f.batch),
				"fault-plan": f.faultPlan,
			},
		}, obs.BundleSources{Operator: op, Recorder: obs.DefaultRecorder(), Tracer: obs.DefaultTracer()})
		if err != nil {
			return err
		}
		op.Debug = trig
		fmt.Fprintf(out, "flight recorder on; debug bundles → %s\n", f.bundleDir)
	}

	var check *netproto.Cluster
	if f.check {
		if check, err = startCluster(ctx, f, pricer, 1); err != nil {
			return err
		}
		defer check.Close()
	}

	days := func() error {
		for day := 1; day <= f.days; day++ {
			dayStart := time.Now()
			rec, err := cluster.ClusterDay(ctx, day)
			if err != nil {
				return fmt.Errorf("day %d: %w", day, err)
			}
			elapsed := time.Since(dayStart)
			rate := float64(rec.Settled) / elapsed.Seconds()
			residual := rec.Revenue - f.xi*rec.Cost
			fmt.Fprintf(out, "day %d: settled %d/%d (failed shards %d) cost %.2f revenue %.2f residual %+.3g peak %.1f kW in %v (%.0f households/s)\n",
				day, rec.Settled, rec.Households, rec.Failed, rec.Cost, rec.Revenue, residual,
				rec.Peak, elapsed.Round(time.Millisecond), rate)
			if trig != nil {
				// Breach-triggered capture: an unhealthy objective or a
				// degraded/failed shard drops a bundle (rate-limited, so a
				// persistent breach yields one bundle, not one per day).
				if path, err := trig.CheckSLO(op.SampleSLO(time.Now())); err != nil {
					return err
				} else if path != "" {
					fmt.Fprintf(out, "day %d: SLO breach captured → %s\n", day, path)
				}
				if path, err := trig.CheckShards(cluster.ShardStatuses()); err != nil {
					return err
				} else if path != "" {
					fmt.Fprintf(out, "day %d: shard breach captured → %s\n", day, path)
				}
			}
			if math.Abs(residual) > 1e-6*math.Max(1, math.Abs(rec.Revenue)) {
				return fmt.Errorf("day %d: budget identity violated: Σp = %.9f, ξ·κ = %.9f", day, rec.Revenue, f.xi*rec.Cost)
			}
			if check != nil {
				ref, err := check.ClusterDay(ctx, day)
				if err != nil {
					return fmt.Errorf("day %d (workers=1): %w", day, err)
				}
				got, _ := json.Marshal(rec)
				want, _ := json.Marshal(ref)
				if string(got) != string(want) {
					return fmt.Errorf("day %d: workers=%d output diverges from workers=1", day, f.workers)
				}
				fmt.Fprintf(out, "day %d: determinism check passed (%d bytes identical)\n", day, len(got))
			}
		}
		return nil
	}
	if err := days(); err != nil {
		if trig != nil && f.bundleOnFail {
			if path, ferr := trig.Fire("run-failure"); ferr == nil && path != "" {
				fmt.Fprintf(out, "failure bundle: %s\n", path)
			}
		}
		return err
	}

	snap := obs.Default().Snapshot()
	frames := counterSum(snap, obs.MetricNetFramesTotal)
	wire := counterSum(snap, obs.MetricNetCodecBytesTotal)
	msgs := counterSum(snap, obs.MetricNetMessagesTotal)
	fmt.Fprintf(out, "wire: %d messages in %d frames, %d codec bytes (%.1f msgs/frame, %.1f B/msg)\n",
		msgs, frames, wire, ratio(msgs, frames), ratio(wire, msgs))

	if trig != nil {
		st := trig.Status()
		fmt.Fprintf(out, "bundles: %d written, %d suppressed, %d errors", st.Writes, st.Suppressed, st.Errors)
		if st.LastPath != "" {
			fmt.Fprintf(out, " (last: %s, reason %s)", st.LastPath, st.LastReason)
		}
		fmt.Fprintln(out)
	}

	if f.opsCheck {
		if err := checkOps(opsURL, f.days, out); err != nil {
			return err
		}
	}
	if f.fedOut != "" {
		w, err := os.Create(f.fedOut)
		if err != nil {
			return err
		}
		defer w.Close()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cluster.Federation().Snapshot()); err != nil {
			return err
		}
	}
	if f.out != "" {
		w, err := os.Create(f.out)
		if err != nil {
			return err
		}
		defer w.Close()
		return snap.WriteJSON(w)
	}
	return nil
}

// runReplicated drives the same truthful population through a
// quorum-replicated wire center instead of the shard fabric: one agent
// connection per household, with an optional scripted leader kill so
// the failover path gets exercised at load, not just in unit tests.
func runReplicated(ctx context.Context, f *loadFlags, pricer pricing.Pricer, out io.Writer) error {
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(f.seed))
	if err != nil {
		return err
	}
	start := time.Now()
	rs, err := netproto.StartReplicaSet(ctx,
		netproto.WithReplicas(f.replicas),
		netproto.WithPricer(pricer),
		netproto.WithMechanism(mechanism.Config{K: mechanism.DefaultK, Xi: f.xi}),
		netproto.WithRating(f.rating),
		netproto.WithTraceSeed(f.seed),
	)
	if err != nil {
		return err
	}
	defer rs.Close()

	// Failover hands agents a new leader address mid-day, so every
	// agent needs the set-aware dialer and enough retry headroom to
	// outlast an election.
	retry := netproto.RetryPolicy{
		MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 250 * time.Millisecond,
		Multiplier: 2, Jitter: 0.2, Seed: f.seed,
	}
	agents := make([]*netproto.Agent, 0, f.households)
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	for i := 0; i < f.households; i++ {
		p := gen.Draw()
		a, err := netproto.Connect(ctx, rs.Addr(), core.HouseholdID(i), &netproto.Truthful{Type: p.TypeWide()},
			netproto.WithDialer(rs.Dialer()), netproto.WithRetryPolicy(retry))
		if err != nil {
			return fmt.Errorf("connect household %d: %w", i, err)
		}
		agents = append(agents, a)
	}
	if err := rs.WaitForAgentsContext(ctx, f.households); err != nil {
		return err
	}
	fmt.Fprintf(out, "enrolled %d wire households against a %d-replica center (leader %d) in %v\n",
		f.households, f.replicas, rs.Leader(), time.Since(start).Round(time.Millisecond))

	for day := 1; day <= f.days; day++ {
		if day == f.killLeader {
			victim := rs.Leader()
			if err := rs.Kill(victim); err != nil {
				return err
			}
			fmt.Fprintf(out, "day %d: killed leader %d before settlement\n", day, victim)
		}
		dayStart := time.Now()
		rec, err := rs.RunDayContext(ctx, day)
		if err != nil {
			return fmt.Errorf("day %d: %w", day, err)
		}
		elapsed := time.Since(dayStart)
		var revenue float64
		for _, p := range rec.Payments {
			revenue += p
		}
		residual := revenue - f.xi*rec.Cost
		fmt.Fprintf(out, "day %d: settled %d households cost %.2f revenue %.2f residual %+.3g peak %.1f kW in %v (leader %d term %d)\n",
			day, len(rec.Reports), rec.Cost, revenue, residual, rec.Peak,
			elapsed.Round(time.Millisecond), rs.Leader(), rs.Term())
		if math.Abs(residual) > 1e-6*math.Max(1, math.Abs(revenue)) {
			return fmt.Errorf("day %d: budget identity violated: Σp = %.9f, ξ·κ = %.9f", day, revenue, f.xi*rec.Cost)
		}
	}
	fmt.Fprintf(out, "replica set: %d failovers, leader %d, term %d\n", rs.Failovers(), rs.Leader(), rs.Term())

	if f.out != "" {
		w, err := os.Create(f.out)
		if err != nil {
			return err
		}
		defer w.Close()
		return obs.Default().Snapshot().WriteJSON(w)
	}
	return nil
}

// checkOps is the harness's operator-plane gate: the day API must agree
// that every requested day settled, and every SLO objective must be
// within its burn budget. CI runs this after the 100k smoke so a
// regression in the observability path — not just the settlement path —
// fails the build.
func checkOps(opsURL string, days int, out io.Writer) error {
	client := &http.Client{Timeout: 10 * time.Second}
	get := func(path string, v any) error {
		resp, err := client.Get(opsURL + path)
		if err != nil {
			return fmt.Errorf("ops-check: GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ops-check: GET %s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(v)
	}
	var day obs.DayStatus
	if err := get("/api/v1/day", &day); err != nil {
		return err
	}
	if day.Phase != "settled" || day.Day != days || day.DaysSettled != uint64(days) {
		return fmt.Errorf("ops-check: day status %+v, want day %d settled", day, days)
	}
	var slo obs.SLOReport
	if err := get("/api/v1/slo", &slo); err != nil {
		return err
	}
	if len(slo.Objectives) == 0 {
		return fmt.Errorf("ops-check: /api/v1/slo returned no objectives")
	}
	for _, o := range slo.Objectives {
		if !o.Healthy {
			return fmt.Errorf("ops-check: SLO %s violated: %d/%d bad over budget %g", o.Name, o.Bad, o.Total, o.Budget)
		}
	}
	fmt.Fprintf(out, "ops-check: day %d settled, %d SLO objectives healthy\n", day.Day, len(slo.Objectives))
	return nil
}

// startCluster builds a cluster and enrolls the truthful population.
// Profiles are drawn once per call from the same seed, so two clusters
// built from identical flags hold identical member sets.
func startCluster(ctx context.Context, f *loadFlags, pricer pricing.Pricer, workers int) (*netproto.Cluster, error) {
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(f.seed))
	if err != nil {
		return nil, err
	}
	opts := []netproto.Option{
		netproto.WithPricer(pricer),
		netproto.WithMechanism(mechanism.Config{K: mechanism.DefaultK, Xi: f.xi}),
		netproto.WithRating(f.rating),
		netproto.WithTraceSeed(f.seed),
		netproto.WithShards(f.shards),
		netproto.WithWorkers(workers),
		netproto.WithCodec(f.codec),
		netproto.WithBatchSize(f.batch),
		netproto.WithShardRecords(f.records),
	}
	if f.faultPlan != "" {
		plan, err := netproto.ParseFaultPlan(f.faultPlan)
		if err != nil {
			return nil, err
		}
		opts = append(opts, netproto.WithShardFaultPlan(f.faultShard, plan))
	}
	if f.ops != "" {
		// The operator plane wants the federated per-shard view and the
		// burn-rate objectives; both stay off otherwise so a plain run's
		// wire stream and registry are unchanged.
		opts = append(opts, netproto.WithMetricsReporting(true), netproto.WithSLO())
	} else if f.bundleDir != "" {
		// Bundle triggers need the SLO engine but not the reporting
		// stream (reporting adds frames, which would shift the message
		// indices a -fault-plan names).
		opts = append(opts, netproto.WithSLO())
	}
	if f.bundleDir != "" {
		// A discard-backed journal keeps the in-memory ledger tail that
		// bundles export, so enkidebug can recompute the Theorem 1
		// residual offline without the harness persisting anything.
		opts = append(opts, netproto.WithLedger(netproto.NewJournal(io.Discard)))
	}
	cluster, err := netproto.StartCluster(ctx, opts...)
	if err != nil {
		return nil, err
	}
	for i := 0; i < f.households; i++ {
		p := gen.Draw()
		if err := cluster.Join(core.HouseholdID(i), &netproto.Truthful{Type: p.TypeWide()}); err != nil {
			cluster.Close()
			return nil, err
		}
	}
	return cluster, nil
}

// counterSum adds every label combination of one counter family.
func counterSum(s obs.Snapshot, name string) uint64 {
	var total uint64
	for k, v := range s.Counters {
		if k == name || (len(k) > len(name) && k[:len(name)] == name && k[len(name)] == '{') {
			total += v
		}
	}
	return total
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
