package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/netproto"
	"enki/internal/obs"
	"enki/internal/profile"
)

// startOpsCluster settles fault-injected days on a live 8-shard cluster
// and serves its operator plane on a loopback port, returning the
// address enkiops should scrape. Shard 3's link drops the first
// consumption frame of day 1 (index 24 of its 8-household stream), so
// the shard settles degraded with one substituted household.
func startOpsCluster(t *testing.T, days int) string {
	t.Helper()
	var ledgerBuf bytes.Buffer
	cluster, err := netproto.StartCluster(context.Background(),
		netproto.WithShards(8),
		netproto.WithTraceSeed(5),
		netproto.WithLedger(netproto.NewJournal(&ledgerBuf)),
		netproto.WithMetricsReporting(true),
		netproto.WithSLO(),
		netproto.WithShardFaultPlan(3, &netproto.FaultPlan{
			Actions: map[int]netproto.FaultAction{24: netproto.FaultDrop},
		}),
	)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(42))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	for i := 0; i < 64; i++ {
		p := gen.Draw()
		if err := cluster.Join(core.HouseholdID(i), &netproto.Truthful{Type: p.TypeWide()}); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	op := cluster.Operator()
	trig, err := obs.NewTrigger(obs.TriggerConfig{Dir: t.TempDir()}, obs.BundleSources{Operator: op})
	if err != nil {
		t.Fatalf("NewTrigger: %v", err)
	}
	op.Debug = trig
	srv, err := obs.ServeOperator("127.0.0.1:0", op)
	if err != nil {
		t.Fatalf("ServeOperator: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	op.SetReady(true)
	for day := 1; day <= days; day++ {
		if _, err := cluster.ClusterDay(context.Background(), day); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
	}
	return srv.Addr()
}

// TestOpsOnceJSONAgainstLiveCluster is the acceptance path: one -once
// -json scrape of a live fault-injected 8-shard cluster returns the day
// status, the per-shard health table with the degraded shard visible,
// the audited ledger tail with zero Theorem 1 residual, and the SLO
// burn rates.
func TestOpsOnceJSONAgainstLiveCluster(t *testing.T) {
	addr := startOpsCluster(t, 1)
	var out strings.Builder
	if err := run([]string{"-addr", addr, "-once", "-json"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep opsReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, out.String())
	}
	if !rep.Ready {
		t.Error("ready = false for a serving cluster")
	}
	if rep.Day.Phase != "settled" || rep.Day.DaysSettled != 1 {
		t.Errorf("day status %+v, want settled day 1", rep.Day)
	}
	if rep.Day.Dark != 1 {
		t.Errorf("dark = %d, want 1 (substituted household)", rep.Day.Dark)
	}
	if len(rep.Shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(rep.Shards))
	}
	for s, sh := range rep.Shards {
		if !sh.Healthy {
			t.Errorf("shard %d unhealthy: %+v", s, sh)
		}
		wantSub := 0
		if s == 3 {
			wantSub = 1
		}
		if sh.Substituted != wantSub {
			t.Errorf("shard %d substituted = %d, want %d", s, sh.Substituted, wantSub)
		}
		if math.Abs(sh.Residual) > 1e-9 {
			t.Errorf("shard %d residual %g, want 0 (Theorem 1)", s, sh.Residual)
		}
	}
	// The cluster audits one ledger entry per shard per day; the tail
	// default returns the last 5, all from the one settled day, each
	// with a vanishing Theorem 1 residual.
	if len(rep.Ledger) != 5 {
		t.Fatalf("ledger tail has %d entries, want 5 (default -ledger)", len(rep.Ledger))
	}
	for _, l := range rep.Ledger {
		if l.Day != 1 {
			t.Errorf("ledger entry for day %d, want 1", l.Day)
		}
		if math.Abs(l.Residual) > 1e-9 {
			t.Errorf("ledger residual %g, want 0 (Theorem 1)", l.Residual)
		}
	}
	if rep.SLO == nil || len(rep.SLO.Objectives) != len(obs.DefaultObjectives()) {
		t.Fatalf("slo section %+v, want %d objectives", rep.SLO, len(obs.DefaultObjectives()))
	}
	for _, o := range rep.SLO.Objectives {
		if len(o.Burn) != len(rep.SLO.Windows) {
			t.Errorf("objective %s has %d burn windows, want %d", o.Name, len(o.Burn), len(rep.SLO.Windows))
		}
	}
	if rep.PAR <= 0 {
		t.Errorf("PAR = %g, want > 0 from the mechanism gauges", rep.PAR)
	}
	if rep.Bundle == nil {
		t.Fatal("bundle section absent though the target serves /api/v1/debug/bundle")
	}
	if rep.Bundle.Writes != 0 || rep.Bundle.Suppressed != 0 {
		t.Errorf("fresh trigger status %+v, want zero writes and suppressions", rep.Bundle)
	}
}

// TestOpsOnceTableRendersDegradedShard: the human table marks the
// degraded shard and prints the SLO and ledger sections.
func TestOpsOnceTableRendersDegradedShard(t *testing.T) {
	addr := startOpsCluster(t, 2)
	var out strings.Builder
	if err := run([]string{"-addr", addr, "-once"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"day 2 [settled] ready",
		"days settled 2",
		"shard", "slo:", "ledger tail:",
		"budget-residual-zero",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	// Day 2 is fault-free (the plan names only index 24), so every
	// shard row reads ok; day 1's substitution still shows in the
	// ledger tail length.
	if !strings.Contains(got, "ok") {
		t.Errorf("table missing healthy shard rows:\n%s", got)
	}
	if strings.Count(got, "day ") < 2 {
		t.Errorf("ledger tail missing both settled days:\n%s", got)
	}
}

// TestOpsSLOExitBreach: a fault-injected day breaches the degraded-day
// objective, so -slo-exit turns the scrape into a nonzero exit naming
// the burning objective — the CI gate contract.
func TestOpsSLOExitBreach(t *testing.T) {
	addr := startOpsCluster(t, 1)
	var out strings.Builder
	err := run([]string{"-addr", addr, "-once", "-slo-exit"}, &out)
	if err == nil {
		t.Fatalf("run with -slo-exit succeeded against a breached target:\n%s", out.String())
	}
	if !errors.Is(err, errSLOUnhealthy) {
		t.Errorf("error %v, want errSLOUnhealthy", err)
	}
	if !strings.Contains(err.Error(), "degraded-day-rate") {
		t.Errorf("error %v does not name the burning objective", err)
	}
	// The snapshot still renders before the gate fires, so the operator
	// sees why the exit was nonzero.
	if !strings.Contains(out.String(), "BURNING") {
		t.Errorf("output missing the burning objective row:\n%s", out.String())
	}
}

// TestOpsSLOExitRequiresSurface: gating on a target that serves no
// /api/v1/slo is a misconfiguration, not a pass — the gate fails loudly
// instead of silently approving an unobserved service.
func TestOpsSLOExitRequiresSurface(t *testing.T) {
	cluster, err := netproto.StartCluster(context.Background(), netproto.WithShards(2))
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	srv, err := obs.ServeOperator("127.0.0.1:0", cluster.Operator())
	if err != nil {
		t.Fatalf("ServeOperator: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	var out strings.Builder
	err = run([]string{"-addr", srv.Addr(), "-once", "-slo-exit"}, &out)
	if err == nil {
		t.Fatal("run with -slo-exit succeeded against a target without an SLO surface")
	}
	if !errors.Is(err, errSLOUnhealthy) || !strings.Contains(err.Error(), "/api/v1/slo") {
		t.Errorf("error %v, want errSLOUnhealthy naming the missing surface", err)
	}
}

// TestOpsRenderBundleLine: the bundle status renders as one line — a
// placeholder until the first capture, then the full write/suppress
// counters with the last bundle's path and reason.
func TestOpsRenderBundleLine(t *testing.T) {
	rep := &opsReport{Ready: true, Bundle: &obs.BundleStatus{Suppressed: 2}}
	var out strings.Builder
	render(&out, rep)
	if !strings.Contains(out.String(), "bundles: none captured (2 suppressed, 0 errors)") {
		t.Errorf("empty-status line missing:\n%s", out.String())
	}

	rep.Bundle = &obs.BundleStatus{
		LastPath:   "/var/bundles/bundle-x.tar.gz",
		LastReason: "slo:degraded-day-rate",
		LastUnixNS: 1700000000 * int64(1e9),
		Writes:     3,
		Suppressed: 1,
	}
	out.Reset()
	render(&out, rep)
	got := out.String()
	for _, want := range []string{
		"bundles: 3 written, 1 suppressed, 0 errors",
		"/var/bundles/bundle-x.tar.gz",
		"slo:degraded-day-rate",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("bundle line missing %q:\n%s", want, got)
		}
	}
}

// TestOpsFlagValidation rejects nonsense and unreachable targets.
func TestOpsFlagValidation(t *testing.T) {
	for _, argv := range [][]string{
		{"-interval", "0s"},
		{"-ledger", "-1"},
	} {
		var out strings.Builder
		if err := run(argv, &out); err == nil {
			t.Errorf("run(%v) accepted invalid flags", argv)
		}
	}
	var out strings.Builder
	if err := run([]string{"-addr", "127.0.0.1:1", "-once", "-timeout", "200ms"}, &out); err == nil {
		t.Error("run against a dead port succeeded")
	}
}

// TestOpsOnceJSONAgainstReplicaSet scrapes a live 3-replica settlement
// center after a leader kill: the replicas section must show the new
// leader, the bumped term, the failover count, and one row per replica.
func TestOpsOnceJSONAgainstReplicaSet(t *testing.T) {
	var ledgerBuf bytes.Buffer
	rs, err := netproto.StartReplicaSet(context.Background(),
		netproto.WithReplicas(3),
		netproto.WithTraceSeed(5),
		netproto.WithLedger(netproto.NewJournal(&ledgerBuf)),
	)
	if err != nil {
		t.Fatalf("StartReplicaSet: %v", err)
	}
	t.Cleanup(func() { rs.Close() })

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	}
	retry := netproto.RetryPolicy{MaxAttempts: 20, BaseDelay: 5e6, MaxDelay: 25e7, Multiplier: 2, Jitter: 0.2, Seed: 1}
	for i, typ := range types {
		a, err := netproto.Connect(context.Background(), rs.Addr(), core.HouseholdID(i), &netproto.Truthful{Type: typ},
			netproto.WithDialer(rs.Dialer()), netproto.WithRetryPolicy(retry))
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		t.Cleanup(func() { a.Close() })
	}
	if err := rs.WaitForAgentsContext(context.Background(), len(types)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.RunDayContext(context.Background(), 1); err != nil {
		t.Fatalf("day 1: %v", err)
	}
	if err := rs.Kill(rs.Leader()); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.RunDayContext(context.Background(), 2); err != nil {
		t.Fatalf("day 2 after failover: %v", err)
	}

	op := rs.Operator()
	srv, err := obs.ServeOperator("127.0.0.1:0", op)
	if err != nil {
		t.Fatalf("ServeOperator: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	op.SetReady(true)

	var out strings.Builder
	if err := run([]string{"-addr", srv.Addr(), "-once", "-json"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep opsReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Replicas == nil {
		t.Fatal("replicas section absent though the target serves /api/v1/replicas")
	}
	r := rep.Replicas
	if r.Leader != 1 || r.Term != 2 || r.Failovers != 1 || !r.Quorum {
		t.Errorf("replicas = leader %d term %d failovers %d quorum %v, want leader 1 term 2 failovers 1 quorum true",
			r.Leader, r.Term, r.Failovers, r.Quorum)
	}
	if len(r.Replicas) != 3 {
		t.Fatalf("%d replica rows, want 3", len(r.Replicas))
	}
	if rep.Day.DaysSettled != 2 {
		t.Errorf("days settled = %d, want 2 (count survives failover)", rep.Day.DaysSettled)
	}

	// The table view renders the replica section too.
	out.Reset()
	if err := run([]string{"-addr", srv.Addr(), "-once"}, &out); err != nil {
		t.Fatalf("run table: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replicas: leader 1 term 2 quorum, 1 failovers") {
		t.Errorf("table missing replica summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "dead") || !strings.Contains(out.String(), "leader") {
		t.Errorf("table missing replica roles:\n%s", out.String())
	}
}
