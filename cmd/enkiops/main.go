// Command enkiops is the operator console for a running settlement
// service: it polls the /api/v1 status API that enkid -obs.http and
// enkiload -ops serve and renders a live day/shard view — current
// phase and deadline, households reported vs dark, per-shard health
// with substitutions and settle latency, the day's PAR and payment
// fairness spread, the Theorem 1 residual of each audited ledger day,
// and SLO burn rates.
//
//	enkiops -addr 127.0.0.1:8080                  # live watch, 2s cadence
//	enkiops -addr 127.0.0.1:8080 -once            # one snapshot, then exit
//	enkiops -addr 127.0.0.1:8080 -once -json      # machine-readable, for scripts
//	enkiops -addr 127.0.0.1:8080 -once -slo-exit  # CI gate: nonzero on any burning SLO
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enki/internal/obs"
)

// errSLOUnhealthy marks a -slo-exit failure: an objective is burning
// (or the target has no SLO surface to gate on).
var errSLOUnhealthy = errors.New("slo unhealthy")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "enkiops:", err)
		os.Exit(1)
	}
}

// opsReport is one polled snapshot of the operator plane — the JSON
// document -json emits, assembled from the individual API endpoints.
type opsReport struct {
	Ready  bool              `json:"ready"`
	Day    obs.DayStatus     `json:"day"`
	Shards []obs.ShardStatus `json:"shards"`
	// Replicas is the quorum-set health of a replicated center (absent
	// when the target does not serve /api/v1/replicas).
	Replicas *obs.ReplicaSetStatus `json:"replicas,omitempty"`
	SLO      *obs.SLOReport        `json:"slo,omitempty"`
	Bundle   *obs.BundleStatus     `json:"bundle,omitempty"`
	Ledger   []ledgerLine          `json:"ledgerTail,omitempty"`
	// PAR and Spread mirror the mechanism gauges for the last settled
	// day: peak-to-average ratio and max−min payment.
	PAR    float64 `json:"par,omitempty"`
	Spread float64 `json:"paymentSpread,omitempty"`
}

// ledgerLine is the console's view of one audit-ledger entry: the day,
// its money totals, and the Theorem 1 residual Σp − ξ·κ recomputed from
// the audited values (zero on every sound day).
type ledgerLine struct {
	Day      int     `json:"day"`
	TraceID  string  `json:"traceId,omitempty"`
	Cost     float64 `json:"cost"`
	Revenue  float64 `json:"revenue"`
	Xi       float64 `json:"xi"`
	Residual float64 `json:"residual"`
}

func run(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("enkiops", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "operator-plane address (host:port or full http:// URL)")
		interval = fs.Duration("interval", 2*time.Second, "poll cadence in watch mode")
		once     = fs.Bool("once", false, "poll once and exit")
		asJSON   = fs.Bool("json", false, "emit the snapshot as JSON instead of the table")
		tailN    = fs.Int("ledger", 5, "audited ledger-tail entries to include")
		watchFor = fs.Duration("for", 0, "stop watching after this long (0 = until interrupted)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
		sloExit  = fs.Bool("slo-exit", false, "exit nonzero if any sampled SLO objective is unhealthy (CI gate; requires the target to serve /api/v1/slo)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval %v must be positive", *interval)
	}
	if *tailN < 0 {
		return fmt.Errorf("-ledger %d must be non-negative", *tailN)
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: *timeout}

	poll := func() error {
		rep, err := fetch(client, base, *tailN)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			render(out, rep)
		}
		if *sloExit {
			if rep.SLO == nil {
				return fmt.Errorf("%w: target serves no /api/v1/slo", errSLOUnhealthy)
			}
			for _, o := range rep.SLO.Objectives {
				if !o.Healthy {
					return fmt.Errorf("%w: %s (%d/%d bad over budget %g)", errSLOUnhealthy, o.Name, o.Bad, o.Total, o.Budget)
				}
			}
		}
		return nil
	}
	if *once {
		return poll()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watchFor > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *watchFor)
		defer cancel()
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		if err := poll(); err != nil {
			// An SLO breach under -slo-exit ends the watch nonzero; a
			// transient scrape failure must not kill it — the service may
			// be mid-restart. Report the latter and keep polling.
			if errors.Is(err, errSLOUnhealthy) {
				return err
			}
			fmt.Fprintf(out, "enkiops: %v\n", err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// fetch assembles one opsReport from the operator API. The day and
// shard endpoints are mandatory — their absence is a broken target —
// while SLO, ledger, and metrics are optional surfaces that degrade to
// empty sections when the service runs without them.
func fetch(client *http.Client, base string, tailN int) (*opsReport, error) {
	get := func(path string, v any, required bool) (bool, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return false, fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound && !required {
			return false, nil
		}
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return false, fmt.Errorf("decode %s: %w", path, err)
		}
		return true, nil
	}

	rep := &opsReport{}
	if resp, err := client.Get(base + "/readyz"); err == nil {
		rep.Ready = resp.StatusCode == http.StatusOK
		resp.Body.Close()
	}
	if _, err := get("/api/v1/day", &rep.Day, true); err != nil {
		return nil, err
	}
	if _, err := get("/api/v1/shards", &rep.Shards, true); err != nil {
		return nil, err
	}
	var replicas obs.ReplicaSetStatus
	if ok, err := get("/api/v1/replicas", &replicas, false); err != nil {
		return nil, err
	} else if ok {
		rep.Replicas = &replicas
	}
	var slo obs.SLOReport
	if ok, err := get("/api/v1/slo", &slo, false); err != nil {
		return nil, err
	} else if ok {
		rep.SLO = &slo
	}
	var bundle obs.BundleStatus
	if ok, err := get("/api/v1/debug/bundle", &bundle, false); err != nil {
		return nil, err
	} else if ok {
		rep.Bundle = &bundle
	}
	if tailN > 0 {
		var raw []json.RawMessage
		if ok, err := get(fmt.Sprintf("/api/v1/ledger/tail?n=%d", tailN), &raw, false); err != nil {
			return nil, err
		} else if ok {
			rep.Ledger = decodeLedger(raw)
		}
	}
	var snap obs.Snapshot
	if ok, err := get("/api/v1/metrics", &snap, false); err != nil {
		return nil, err
	} else if ok {
		rep.PAR = snap.Gauges[obs.MetricMechDayPAR]
		rep.Spread = snap.Gauges[obs.MetricMechPaymentSpread]
	}
	return rep, nil
}

// decodeLedger projects raw audit-ledger lines onto the console view,
// recomputing each day's Theorem 1 residual from its audited totals.
func decodeLedger(raw []json.RawMessage) []ledgerLine {
	out := make([]ledgerLine, 0, len(raw))
	for _, line := range raw {
		var e struct {
			Day     int     `json:"day"`
			TraceID string  `json:"traceId"`
			Cost    float64 `json:"cost"`
			Revenue float64 `json:"revenue"`
			Xi      float64 `json:"xi"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			continue // foreign journal line; the console shows what it can
		}
		out = append(out, ledgerLine{
			Day:      e.Day,
			TraceID:  e.TraceID,
			Cost:     e.Cost,
			Revenue:  e.Revenue,
			Xi:       e.Xi,
			Residual: e.Revenue - e.Xi*e.Cost,
		})
	}
	return out
}

// render writes the human table: day header, shard health table, SLO
// burn rates, and the audited ledger tail.
func render(w io.Writer, rep *opsReport) {
	ready := "ready"
	if !rep.Ready {
		ready = "starting"
	}
	d := rep.Day
	fmt.Fprintf(w, "day %d [%s] %s — members %d, reported %d, dark %d, days settled %d",
		d.Day, d.Phase, ready, d.Members, d.Reported, d.Dark, d.DaysSettled)
	if d.DeadlineRemainingMS > 0 {
		fmt.Fprintf(w, ", deadline in %.0fms", d.DeadlineRemainingMS)
	}
	fmt.Fprintln(w)
	if d.DaysSettled > 0 {
		fmt.Fprintf(w, "last day: cost $%.2f revenue $%.2f residual %+.3g peak %.1f kW",
			d.LastCost, d.LastRevenue, d.LastResidual, d.LastPeak)
		if rep.PAR > 0 {
			fmt.Fprintf(w, " PAR %.3f spread $%.2f", rep.PAR, rep.Spread)
		}
		fmt.Fprintln(w)
	}

	if len(rep.Shards) > 0 {
		fmt.Fprintf(w, "%-6s %-8s %5s %6s %7s %6s %6s %10s %10s %10s %9s\n",
			"shard", "health", "day", "hh", "settled", "absent", "subst", "cost", "revenue", "residual", "settle ms")
		for _, s := range rep.Shards {
			health := "ok"
			if !s.Healthy {
				health = "FAILED"
			} else if s.Absent+s.Substituted > 0 {
				health = "degraded"
			}
			fmt.Fprintf(w, "%-6d %-8s %5d %6d %7d %6d %6d %10.2f %10.2f %+10.2g %9.2f\n",
				s.Shard, health, s.LastDay, s.Households, s.Settled, s.Absent, s.Substituted,
				s.Cost, s.Revenue, s.Residual, s.LastSettleMS)
			if s.Err != "" {
				fmt.Fprintf(w, "       err: %s\n", s.Err)
			}
		}
	}

	if rep.Replicas != nil {
		r := rep.Replicas
		quorum := "quorum"
		if !r.Quorum {
			quorum = "NO QUORUM"
		}
		fmt.Fprintf(w, "replicas: leader %d term %d %s, %d failovers\n", r.Leader, r.Term, quorum, r.Failovers)
		for _, rs := range r.Replicas {
			fmt.Fprintf(w, "  %-2d %-9s term %-4d commit %-6d lag %-4d %s\n",
				rs.ID, rs.Role, rs.Term, rs.CommitIndex, rs.CommitLag, rs.Addr)
		}
	}

	if rep.SLO != nil {
		fmt.Fprintf(w, "slo:\n")
		for _, o := range rep.SLO.Objectives {
			health := "ok"
			if !o.Healthy {
				health = "BURNING"
			}
			fmt.Fprintf(w, "  %-28s %-8s budget %-7g bad %d/%d", o.Name, health, o.Budget, o.Bad, o.Total)
			for _, b := range o.Burn {
				fmt.Fprintf(w, "  %s×%.2f", b.Window, b.Rate)
			}
			fmt.Fprintln(w)
		}
	}

	if rep.Bundle != nil {
		b := rep.Bundle
		if b.Writes == 0 {
			fmt.Fprintf(w, "bundles: none captured (%d suppressed, %d errors)\n", b.Suppressed, b.Errors)
		} else {
			fmt.Fprintf(w, "bundles: %d written, %d suppressed, %d errors — last %s (%s, %s)\n",
				b.Writes, b.Suppressed, b.Errors, b.LastPath, b.LastReason,
				time.Unix(0, b.LastUnixNS).UTC().Format(time.RFC3339))
		}
	}

	if len(rep.Ledger) > 0 {
		fmt.Fprintf(w, "ledger tail:\n")
		for _, l := range rep.Ledger {
			fmt.Fprintf(w, "  day %-5d cost $%-10.2f revenue $%-10.2f residual %+.3g  %s\n",
				l.Day, l.Cost, l.Revenue, l.Residual, l.TraceID)
		}
	}
}
