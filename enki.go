// Package enki is the public API of the Enki reproduction: a tractable,
// ex ante budget-balanced, weakly Bayesian incentive-compatible
// mechanism for cooperative residential demand-side management, after
// Yuan, Hang, Huhns, and Singh, "A Mechanism for Cooperative
// Demand-Side Management" (ICDCS 2017).
//
// A neighborhood center collects each household's day-ahead preference
// χ = (α, β, v) — consume power for v consecutive hours anywhere in the
// window [α, β) — allocates consumption intervals so that peak load is
// reduced, and bills each household its social cost: flexible truthful
// households pay less, defectors pay more, and the center's books
// balance exactly at ξ·κ(ω).
//
// The top-level package re-exports the domain model, the schedulers,
// and the mechanism; the heavier substrates keep their own facades:
//
//   - Neighborhood (here) — one-call day simulation for library users
//   - enki/net — the TCP center/agent protocol with fault tolerance
//     (phase deadlines, retry, session resumption, fault injection);
//     the facade over internal/netproto (cmd/enkid, cmd/enkiagent)
//   - internal/experiment — regenerates every paper table and figure
//   - internal/study — the Section VII user-study game
//
// See README.md for a tour and DESIGN.md for the system inventory.
package enki

import (
	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
	"enki/internal/solver"
)

// Re-exported domain model (see internal/core).
type (
	// Hour is an hour-of-day slot in {0, ..., 23}.
	Hour = core.Hour
	// Interval is a half-open hour interval [Begin, End).
	Interval = core.Interval
	// Preference is a household request χ = (α, β, v).
	Preference = core.Preference
	// Type is a household's private type θ = (χ, ρ).
	Type = core.Type
	// HouseholdID identifies a household in a neighborhood.
	HouseholdID = core.HouseholdID
	// Household couples a type with the report it submitted.
	Household = core.Household
	// Report is a declared preference with its household ID.
	Report = core.Report
	// Assignment is a suggested allocation s_i.
	Assignment = core.Assignment
	// Load is an hourly consumption profile l_h.
	Load = core.Load
)

// Re-exported pricing and scheduling (see internal/pricing, internal/sched).
type (
	// Pricer prices an hourly load level; implementations must be
	// convex and nondecreasing.
	Pricer = pricing.Pricer
	// Quadratic is the paper's pricing function P_h(l) = σ·l² (Eq. 1).
	Quadratic = pricing.Quadratic
	// Scheduler allocates consumption intervals to reports.
	Scheduler = sched.Scheduler
	// GreedyScheduler is Enki's flexibility-ordered allocator.
	GreedyScheduler = sched.Greedy
	// OptimalScheduler solves the Eq. 2 MIQP exactly (or to a bounded
	// gap), substituting for the paper's CPLEX solver.
	OptimalScheduler = sched.Optimal
	// SolverOptions bounds an OptimalScheduler's search.
	SolverOptions = solver.Options
	// MechanismConfig carries the k and ξ scaling factors.
	MechanismConfig = mechanism.Config
	// Settlement is a day's financial outcome under Enki.
	Settlement = mechanism.Settlement
	// Day is a completed day ready for settlement.
	Day = mechanism.Day
	// RNG is the deterministic random source used everywhere.
	RNG = dist.RNG
	// UsageProfile is a simulated household's narrow/wide usage profile.
	UsageProfile = profile.Profile
)

// Paper-default parameters (Section VI).
const (
	// DefaultSigma is the pricing scale σ = 0.3.
	DefaultSigma = pricing.DefaultSigma
	// DefaultRating is the power rating r = 2 kW.
	DefaultRating = core.DefaultPowerRating
	// DefaultK is the social-cost scaling factor k = 1.
	DefaultK = mechanism.DefaultK
	// DefaultXi is the payment scaling factor ξ = 1.2.
	DefaultXi = mechanism.DefaultXi
)

// NewPreference builds and validates a preference χ = (begin, end, v).
func NewPreference(begin, end Hour, duration int) (Preference, error) {
	return core.NewPreference(begin, end, duration)
}

// MustPreference is NewPreference for static literals; it panics on
// invalid input.
func MustPreference(begin, end Hour, duration int) Preference {
	return core.MustPreference(begin, end, duration)
}

// NewRNG returns a deterministic random source for the given seed.
func NewRNG(seed uint64) *RNG { return dist.New(seed) }

// DefaultMechanismConfig returns k = 1, ξ = 1.2.
func DefaultMechanismConfig() MechanismConfig { return mechanism.DefaultConfig() }

// Settle computes the Enki settlement (scores, payments, utilities) for
// a completed day.
func Settle(p Pricer, cfg MechanismConfig, day Day) (Settlement, error) {
	return mechanism.Settle(p, cfg, day)
}

// FlexibilityScores computes the Eq. 4 flexibility score of every
// preference against the whole population.
func FlexibilityScores(prefs []Preference) []float64 {
	return mechanism.FlexibilityScores(prefs)
}

// Valuation evaluates Eq. 3: a household's willingness to pay when an
// allocation satisfies tau of its v preferred slots.
func Valuation(tau, duration int, rho float64) float64 {
	return core.Valuation(tau, duration, rho)
}

// ClosestConsumption returns the consumption inside the true window
// closest to the allocation — the automated defection rule.
func ClosestConsumption(truth Preference, allocation Interval) Interval {
	return core.ClosestConsumption(truth, allocation)
}

// NewProfileGenerator returns the Section VI usage-profile generator
// with the paper's distributions.
func NewProfileGenerator(rng *RNG) (*profile.Generator, error) {
	return profile.NewGenerator(profile.DefaultConfig(), rng)
}
