// Package coalition implements the paper's future-work extension
// (Section VIII): "direct cooperation among households forming small
// coalitions to reduce their joint peak demand further."
//
// A coalition is a small group of households that the center treats as
// one accountable entity:
//
//   - members may swap allocations internally (same duration, each slot
//     admitted by the swap partner's true window), rescuing a member
//     whose allocation misses its true preference from having to defect;
//   - defection is scored at the coalition level: the multiset of the
//     coalition's consumptions is matched against the multiset of its
//     allocations, so an internal swap that leaves the aggregate load
//     untouched is not a defection;
//   - flexibility is the energy-weighted mean of member scores, and the
//     coalition's Eq. 7 payment is split among members in proportion to
//     their energy.
//
// Formation is greedy: households are grouped (up to MaxSize) by swap
// affinity — same duration and overlapping true windows — since only
// compatible members can rescue each other.
package coalition

import (
	"fmt"
	"sort"

	"enki/internal/core"
)

// DefaultMaxSize bounds coalition membership ("small coalitions").
const DefaultMaxSize = 3

// Coalition is a group of household indices (positions into the day's
// household slice, not IDs).
type Coalition struct {
	Members []int
}

// Form greedily groups households into coalitions of at most maxSize
// members by swap affinity. Households that cannot rescue anyone stay
// singletons. The grouping is deterministic: households are scanned in
// order and joined to the open coalition with the highest affinity.
func Form(households []core.Household, maxSize int) ([]Coalition, error) {
	if maxSize <= 0 {
		maxSize = DefaultMaxSize
	}
	if len(households) == 0 {
		return nil, fmt.Errorf("coalition: no households")
	}

	coalitions := []Coalition{}
	for i, h := range households {
		bestC, bestScore := -1, 0
		for ci := range coalitions {
			if len(coalitions[ci].Members) >= maxSize {
				continue
			}
			score := 0
			for _, m := range coalitions[ci].Members {
				score += affinity(households[m], h)
			}
			if score > bestScore {
				bestC, bestScore = ci, score
			}
		}
		if bestC >= 0 {
			coalitions[bestC].Members = append(coalitions[bestC].Members, i)
		} else {
			coalitions = append(coalitions, Coalition{Members: []int{i}})
		}
	}
	return coalitions, nil
}

// affinity scores how useful two households are to each other as swap
// partners: 0 when they can never trade (different durations or
// disjoint true windows), otherwise the overlap of their true windows.
func affinity(a, b core.Household) int {
	if a.Type.True.Duration != b.Type.True.Duration {
		return 0
	}
	return a.Type.True.Window.Overlap(b.Type.True.Window)
}

// PlanConsumptions decides each household's consumption with
// coalition-internal swaps: members first take their own allocation if
// it satisfies their true preference; remaining members try to take an
// unclaimed coalition slot that does; anyone left defects to the
// closest true-window placement (as an individual household would).
// The returned slice is aligned with households.
func PlanConsumptions(households []core.Household, coalitions []Coalition, assignments []core.Interval) ([]core.Interval, error) {
	if len(households) != len(assignments) {
		return nil, fmt.Errorf("coalition: %d households but %d assignments", len(households), len(assignments))
	}
	if err := checkPartition(len(households), coalitions); err != nil {
		return nil, err
	}

	consumptions := make([]core.Interval, len(households))
	for _, c := range coalitions {
		assignSwaps(households, c, assignments, consumptions)
	}
	return consumptions, nil
}

// assignSwaps finds the member-to-slot matching that satisfies the most
// members (ties broken toward keeping members on their own slots) by
// exhaustive search — coalitions are small by design. Members no
// matching can satisfy defect individually from their own allocation.
func assignSwaps(households []core.Household, c Coalition, assignments, consumptions []core.Interval) {
	k := len(c.Members)
	feasible := make([][]bool, k)
	for mi, m := range c.Members {
		feasible[mi] = make([]bool, k)
		for si, s := range c.Members {
			feasible[mi][si] = households[m].Type.True.Admits(assignments[s])
		}
	}

	perm := make([]int, k)
	bestPerm := make([]int, k)
	used := make([]bool, k)
	bestSat, bestOwn := -1, -1

	var search func(mi, sat, own int)
	search = func(mi, sat, own int) {
		if mi == k {
			if sat > bestSat || (sat == bestSat && own > bestOwn) {
				bestSat, bestOwn = sat, own
				copy(bestPerm, perm)
			}
			return
		}
		for si := 0; si < k; si++ {
			if used[si] {
				continue
			}
			used[si] = true
			perm[mi] = si
			dSat, dOwn := 0, 0
			if feasible[mi][si] {
				dSat = 1
			}
			if si == mi {
				dOwn = 1
			}
			search(mi+1, sat+dSat, own+dOwn)
			used[si] = false
		}
	}
	search(0, 0, 0)

	for mi, m := range c.Members {
		slot := c.Members[bestPerm[mi]]
		if feasible[mi][bestPerm[mi]] {
			consumptions[m] = assignments[slot]
		} else {
			// No coalition slot satisfies this member: defect
			// individually from its own allocation.
			consumptions[m] = core.ClosestConsumption(households[m].Type.True, assignments[m])
		}
	}
}

// checkPartition verifies the coalitions partition {0, ..., n-1}.
func checkPartition(n int, coalitions []Coalition) error {
	seen := make([]bool, n)
	count := 0
	for _, c := range coalitions {
		for _, m := range c.Members {
			if m < 0 || m >= n {
				return fmt.Errorf("coalition: member index %d out of range", m)
			}
			if seen[m] {
				return fmt.Errorf("coalition: household %d in two coalitions", m)
			}
			seen[m] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("coalition: %d of %d households covered", count, n)
	}
	return nil
}

// UnmatchedConsumptions matches a coalition's consumption multiset
// against its allocation multiset and returns, per member, whether its
// consumption is covered by some coalition allocation (an internal
// swap) or is a genuine coalition-level deviation. Matching is greedy
// over sorted intervals, exact-match first.
func UnmatchedConsumptions(coalition Coalition, assignments, consumptions []core.Interval) map[int]bool {
	available := make(map[core.Interval]int, len(coalition.Members))
	for _, m := range coalition.Members {
		available[assignments[m]]++
	}
	unmatched := make(map[int]bool, len(coalition.Members))
	members := append([]int(nil), coalition.Members...)
	sort.Ints(members)
	// Members following their own allocation have first claim on the
	// multiset; swapped members match whatever remains. This keeps a
	// compliant member from being displaced by a defector who happens
	// to land on the same interval.
	for _, m := range members {
		if consumptions[m] == assignments[m] {
			available[consumptions[m]]--
		}
	}
	for _, m := range members {
		if consumptions[m] == assignments[m] {
			continue
		}
		if available[consumptions[m]] > 0 {
			available[consumptions[m]]--
		} else {
			unmatched[m] = true
		}
	}
	return unmatched
}
