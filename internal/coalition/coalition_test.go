package coalition

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func household(id int, truth core.Preference, reported core.Preference) core.Household {
	return core.Household{
		ID:       core.HouseholdID(id),
		Type:     core.Type{True: truth, ValuationFactor: 5},
		Reported: reported,
	}
}

func TestFormValidation(t *testing.T) {
	if _, err := Form(nil, 3); err == nil {
		t.Error("no households should be rejected")
	}
}

func TestFormPartition(t *testing.T) {
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(4))
	if err != nil {
		t.Fatal(err)
	}
	households := make([]core.Household, 20)
	for i, p := range gen.DrawN(20) {
		households[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
	}
	coalitions, err := Form(households, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPartition(len(households), coalitions); err != nil {
		t.Fatalf("Form result is not a partition: %v", err)
	}
	for _, c := range coalitions {
		if len(c.Members) > 3 {
			t.Errorf("coalition of size %d exceeds the maximum 3", len(c.Members))
		}
	}
}

func TestFormGroupsCompatibleHouseholds(t *testing.T) {
	// Two pairs: evening duration-2 households and morning duration-1
	// households. Formation should not mix incompatible durations.
	households := []core.Household{
		household(0, core.MustPreference(18, 22, 2), core.MustPreference(18, 22, 2)),
		household(1, core.MustPreference(18, 23, 2), core.MustPreference(18, 23, 2)),
		household(2, core.MustPreference(7, 11, 1), core.MustPreference(7, 11, 1)),
		household(3, core.MustPreference(8, 12, 1), core.MustPreference(8, 12, 1)),
	}
	coalitions, err := Form(households, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range coalitions {
		if len(c.Members) < 2 {
			continue
		}
		d := households[c.Members[0]].Type.True.Duration
		for _, m := range c.Members[1:] {
			if households[m].Type.True.Duration != d {
				t.Errorf("coalition mixes durations: members %v", c.Members)
			}
		}
	}
}

// TestSwapRescuesDefector is the core of the extension: a member whose
// allocation misses its true window exchanges slots with a compatible
// partner, and the coalition is not punished because its aggregate load
// is exactly what the center allocated.
func TestSwapRescuesDefector(t *testing.T) {
	// Household 0 misreports (claims morning, truly needs 18-20).
	// Household 1 is truthful with a wide all-day tolerance, so the two
	// allocations can be exchanged: 1's evening slot satisfies 0, and
	// 0's morning slot satisfies 1.
	households := []core.Household{
		household(0, core.MustPreference(18, 20, 2), core.MustPreference(8, 12, 2)),
		household(1, core.MustPreference(8, 22, 2), core.MustPreference(8, 22, 2)),
	}
	assignments := []core.Interval{
		{Begin: 8, End: 10},  // misses 0's truth, fits 1's
		{Begin: 18, End: 20}, // satisfies 0's truth
	}
	coalitions := []Coalition{{Members: []int{0, 1}}}
	cons, err := PlanConsumptions(households, coalitions, assignments)
	if err != nil {
		t.Fatal(err)
	}
	if cons[0] != (core.Interval{Begin: 18, End: 20}) {
		t.Fatalf("household 0 consumed %v, want the partner slot (18,20)", cons[0])
	}
	if cons[1] != (core.Interval{Begin: 8, End: 10}) {
		t.Fatalf("household 1 consumed %v, want the exchanged slot (8,10)", cons[1])
	}
	unmatched := UnmatchedConsumptions(coalitions[0], assignments, cons)
	if len(unmatched) != 0 {
		t.Errorf("a pure exchange must leave no unmatched consumption, got %v", unmatched)
	}
}

// TestNoRescueWithoutExchange: when the displaced partner has nowhere
// feasible to go, the coalition does not fake a rescue by stacking —
// the misreporter defects individually.
func TestNoRescueWithoutExchange(t *testing.T) {
	households := []core.Household{
		household(0, core.MustPreference(18, 20, 2), core.MustPreference(8, 12, 2)),
		household(1, core.MustPreference(17, 22, 2), core.MustPreference(17, 22, 2)), // cannot take (8,10)
	}
	assignments := []core.Interval{{Begin: 8, End: 10}, {Begin: 18, End: 20}}
	coalitions := []Coalition{{Members: []int{0, 1}}}
	cons, err := PlanConsumptions(households, coalitions, assignments)
	if err != nil {
		t.Fatal(err)
	}
	if cons[1] != assignments[1] {
		t.Errorf("the compliant partner must keep its slot, got %v", cons[1])
	}
	unmatched := UnmatchedConsumptions(coalitions[0], assignments, cons)
	if !unmatched[0] {
		t.Error("the stacking misreporter must be flagged as the coalition's deviation")
	}
	if unmatched[1] {
		t.Error("the compliant partner must not be flagged")
	}
}

func TestPlanConsumptionsCompliantStaysPut(t *testing.T) {
	households := []core.Household{
		household(0, core.MustPreference(18, 22, 2), core.MustPreference(18, 22, 2)),
		household(1, core.MustPreference(18, 22, 2), core.MustPreference(18, 22, 2)),
	}
	assignments := []core.Interval{{Begin: 18, End: 20}, {Begin: 20, End: 22}}
	coalitions := []Coalition{{Members: []int{0, 1}}}
	cons, err := PlanConsumptions(households, coalitions, assignments)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cons {
		if cons[i] != assignments[i] {
			t.Errorf("compliant member %d moved from %v to %v", i, assignments[i], cons[i])
		}
	}
}

func TestPlanConsumptionsValidation(t *testing.T) {
	households := []core.Household{
		household(0, core.MustPreference(18, 22, 2), core.MustPreference(18, 22, 2)),
	}
	if _, err := PlanConsumptions(households, []Coalition{{Members: []int{0}}}, nil); err == nil {
		t.Error("assignment length mismatch should be rejected")
	}
	assignments := []core.Interval{{Begin: 18, End: 20}}
	if _, err := PlanConsumptions(households, []Coalition{{Members: []int{0, 1}}}, assignments); err == nil {
		t.Error("out-of-range member should be rejected")
	}
	if _, err := PlanConsumptions(households, []Coalition{}, assignments); err == nil {
		t.Error("non-covering partition should be rejected")
	}
}

func TestSettleBudgetBalanceAndRescue(t *testing.T) {
	households := []core.Household{
		household(0, core.MustPreference(18, 20, 2), core.MustPreference(8, 12, 2)),
		household(1, core.MustPreference(17, 22, 2), core.MustPreference(17, 22, 2)),
		household(2, core.MustPreference(19, 23, 2), core.MustPreference(19, 23, 2)),
	}
	reports := make([]core.Report, len(households))
	for i, h := range households {
		reports[i] = core.Report{ID: h.ID, Pref: h.Reported}
	}
	greedy := &sched.Greedy{Pricer: quad, Rating: 2}
	as, err := greedy.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	assignments := make([]core.Interval, len(as))
	for i, a := range as {
		assignments[i] = a.Interval
	}
	coalitions, err := Form(households, 3)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := PlanConsumptions(households, coalitions, assignments)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Settle(quad, mechanism.DefaultConfig(), households, coalitions, assignments, cons, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Revenue()-mechanism.DefaultXi*s.Cost) > 1e-9 {
		t.Errorf("revenue %g != ξκ = %g", s.Revenue(), mechanism.DefaultXi*s.Cost)
	}
	if s.Rescued+s.Defectors == 0 && !households[0].Type.True.Admits(assignments[0]) {
		t.Error("the misreporter must either be rescued or counted as a defector")
	}
}

// TestCoalitionBeatsSingletons: on a day where a misreporter can be
// rescued, the coalition world produces no genuine defections while the
// singleton world does, and the misreporter's bill is lower inside the
// coalition.
func TestCoalitionBeatsSingletons(t *testing.T) {
	households := []core.Household{
		household(0, core.MustPreference(18, 20, 2), core.MustPreference(8, 12, 2)),
		household(1, core.MustPreference(8, 22, 2), core.MustPreference(8, 22, 2)),
	}
	assignments := []core.Interval{{Begin: 8, End: 10}, {Begin: 18, End: 20}}
	cfg := mechanism.DefaultConfig()

	// Coalition world.
	coalitions := []Coalition{{Members: []int{0, 1}}}
	cCons, err := PlanConsumptions(households, coalitions, assignments)
	if err != nil {
		t.Fatal(err)
	}
	withC, err := Settle(quad, cfg, households, coalitions, assignments, cCons, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Singleton world: same center, every household on its own.
	singletons := []Coalition{{Members: []int{0}}, {Members: []int{1}}}
	sCons, err := PlanConsumptions(households, singletons, assignments)
	if err != nil {
		t.Fatal(err)
	}
	withoutC, err := Settle(quad, cfg, households, singletons, assignments, sCons, 2)
	if err != nil {
		t.Fatal(err)
	}

	if withC.Defectors != 0 {
		t.Errorf("coalition world has %d defectors, want 0 (rescued)", withC.Defectors)
	}
	if withoutC.Defectors == 0 {
		t.Error("singleton world should contain a genuine defector")
	}
	if withC.Payments[0] >= withoutC.Payments[0] {
		t.Errorf("rescued misreporter pays %g in coalition, %g alone — coalition should be cheaper",
			withC.Payments[0], withoutC.Payments[0])
	}
}

func TestSettleValidation(t *testing.T) {
	households := []core.Household{
		household(0, core.MustPreference(18, 22, 2), core.MustPreference(18, 22, 2)),
	}
	assignments := []core.Interval{{Begin: 18, End: 20}}
	coalitions := []Coalition{{Members: []int{0}}}
	cfg := mechanism.DefaultConfig()
	if _, err := Settle(quad, cfg, households, coalitions, assignments, nil, 2); err == nil {
		t.Error("consumption length mismatch should be rejected")
	}
	if _, err := Settle(quad, cfg, households, coalitions, assignments, assignments, 0); err == nil {
		t.Error("zero rating should be rejected")
	}
	if _, err := Settle(quad, cfg, households, nil, assignments, assignments, 2); err == nil {
		t.Error("non-covering partition should be rejected")
	}
}
