package coalition

import (
	"fmt"
	"math"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

// Settlement is the outcome of a coalition-aware Enki day.
type Settlement struct {
	Cost             float64   // κ(ω)
	CoalitionPayment []float64 // Eq. 7 payment per coalition
	Payments         []float64 // per household (energy split of its coalition's bill)
	Flexibility      []float64 // per coalition (energy-weighted member mean, zeroed on coalition defection... per member rules)
	Defection        []float64 // per coalition (Eq. 5 over unmatched consumptions)
	Rescued          int       // members whose defection was absorbed by an internal swap
	Defectors        int       // members whose consumption is a genuine coalition-level deviation
}

// Revenue is Σ p_i over households.
func (s Settlement) Revenue() float64 {
	var sum float64
	for _, p := range s.Payments {
		sum += p
	}
	return sum
}

// Settle runs the coalition-aware mechanism for a completed day. The
// center's accounting unit is the coalition: flexibility is the
// energy-weighted mean of member predicted scores (zeroed for members
// whose consumption is unmatched), defection applies Eq. 5 to each
// unmatched consumption, and the Eq. 7 payment of a coalition is split
// among members by energy. Budget balance is preserved exactly.
func Settle(p pricing.Pricer, cfg mechanism.Config, households []core.Household, coalitions []Coalition, assignments, consumptions []core.Interval, rating float64) (Settlement, error) {
	if err := cfg.Validate(); err != nil {
		return Settlement{}, err
	}
	if len(households) != len(assignments) || len(households) != len(consumptions) {
		return Settlement{}, fmt.Errorf("coalition: %d households, %d assignments, %d consumptions",
			len(households), len(assignments), len(consumptions))
	}
	if rating <= 0 {
		return Settlement{}, fmt.Errorf("coalition: rating %g must be positive", rating)
	}
	if err := checkPartition(len(households), coalitions); err != nil {
		return Settlement{}, err
	}

	prefs := make([]core.Preference, len(households))
	for i, h := range households {
		prefs[i] = h.Reported
	}
	predicted := mechanism.FlexibilityScores(prefs)

	// Coalition-level scores.
	allocLoad := core.LoadOf(assignments, rating)
	allocCost := pricing.Cost(p, allocLoad)

	nC := len(coalitions)
	flex := make([]float64, nC)
	defect := make([]float64, nC)
	energy := make([]float64, nC)
	var rescued, defectors int

	for ci, c := range coalitions {
		unmatched := UnmatchedConsumptions(c, assignments, consumptions)
		var flexSum, eSum float64
		for _, m := range c.Members {
			e := float64(households[m].Reported.Duration) * rating
			eSum += e
			if unmatched[m] {
				defectors++
				// Eq. 5 for the unmatched consumption: swap the member's
				// allocation for its consumption in the allocated profile.
				swapped := allocLoad
				swapped.RemoveInterval(assignments[m], rating)
				swapped.AddInterval(consumptions[m], rating)
				harm := pricing.Cost(p, swapped) - allocCost
				if harm < 0 {
					harm = 0
				}
				o := core.OverlapRatio(assignments[m], consumptions[m])
				defect[ci] += harm / math.Exp(o)
				// An unmatched member contributes no flexibility.
				continue
			}
			if consumptions[m] != assignments[m] {
				rescued++
			}
			flexSum += predicted[m] * e
		}
		if eSum > 0 {
			flex[ci] = flexSum / eSum
		}
		energy[ci] = eSum
	}

	psi, err := mechanism.SocialCostScores(flex, defect, cfg.K)
	if err != nil {
		return Settlement{}, err
	}
	cost := pricing.CostOfIntervals(p, consumptions, rating)
	coalitionPayments, err := mechanism.Payments(psi, cfg.Xi, cost)
	if err != nil {
		return Settlement{}, err
	}

	payments := make([]float64, len(households))
	for ci, c := range coalitions {
		if energy[ci] == 0 {
			continue
		}
		for _, m := range c.Members {
			e := float64(households[m].Reported.Duration) * rating
			payments[m] = coalitionPayments[ci] * e / energy[ci]
		}
	}

	return Settlement{
		Cost:             cost,
		CoalitionPayment: coalitionPayments,
		Payments:         payments,
		Flexibility:      flex,
		Defection:        defect,
		Rescued:          rescued,
		Defectors:        defectors,
	}, nil
}
