package pricing

import (
	"math"
	"testing"
	"testing/quick"

	"enki/internal/core"
)

func TestNewQuadratic(t *testing.T) {
	if _, err := NewQuadratic(0.3); err != nil {
		t.Fatalf("valid sigma rejected: %v", err)
	}
	if _, err := NewQuadratic(0); err == nil {
		t.Error("sigma 0 should be rejected")
	}
	if _, err := NewQuadratic(-1); err == nil {
		t.Error("negative sigma should be rejected")
	}
}

func TestQuadraticHourCost(t *testing.T) {
	q := Quadratic{Sigma: 0.3}
	tests := []struct {
		load, want float64
	}{
		{0, 0},
		{1, 0.3},
		{2, 1.2},
		{10, 30},
	}
	for _, tt := range tests {
		if got := q.HourCost(tt.load); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("HourCost(%g) = %g, want %g", tt.load, got, tt.want)
		}
	}
}

func TestQuadraticConvexity(t *testing.T) {
	q := Quadratic{Sigma: DefaultSigma}
	prop := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw % 1000)
		b := float64(bRaw % 1000)
		mid := q.HourCost((a + b) / 2)
		avg := (q.HourCost(a) + q.HourCost(b)) / 2
		return mid <= avg+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("quadratic pricer not convex: %v", err)
	}
}

func TestNewPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise(nil); err == nil {
		t.Error("empty step list should be rejected")
	}
	if _, err := NewPiecewise([]Step{{Threshold: 5, Rate: 1}}); err == nil {
		t.Error("first threshold must be zero")
	}
	if _, err := NewPiecewise([]Step{{0, 2}, {10, 1}}); err == nil {
		t.Error("decreasing rates should be rejected (non-convex)")
	}
	if _, err := NewPiecewise([]Step{{0, 1}, {0, 2}}); err == nil {
		t.Error("duplicate thresholds should be rejected")
	}
}

func TestPiecewiseHourCost(t *testing.T) {
	// Two-step tariff: $1/kWh up to 4 kWh, $3/kWh beyond.
	p, err := NewPiecewise([]Step{{0, 1}, {4, 3}})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		load, want float64
	}{
		{0, 0},
		{-1, 0},
		{2, 2},
		{4, 4},
		{6, 4 + 2*3},
	}
	for _, tt := range tests {
		if got := p.HourCost(tt.load); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("HourCost(%g) = %g, want %g", tt.load, got, tt.want)
		}
	}
}

func TestPiecewiseConvexAndMonotone(t *testing.T) {
	p, err := NewPiecewise([]Step{{0, 0.5}, {4, 2}, {8, 5}})
	if err != nil {
		t.Fatal(err)
	}
	monotone := func(aRaw, dRaw uint16) bool {
		a := float64(aRaw % 500)
		d := float64(dRaw%100) / 10
		return p.HourCost(a+d) >= p.HourCost(a)-1e-12
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Errorf("piecewise pricer not monotone: %v", err)
	}
	convex := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw % 500)
		b := float64(bRaw % 500)
		return p.HourCost((a+b)/2) <= (p.HourCost(a)+p.HourCost(b))/2+1e-9
	}
	if err := quick.Check(convex, nil); err != nil {
		t.Errorf("piecewise pricer not convex: %v", err)
	}
}

func TestCost(t *testing.T) {
	q := Quadratic{Sigma: 0.3}
	var l core.Load
	l.AddInterval(core.Interval{Begin: 18, End: 20}, 2) // two slots of 2 kWh
	want := 2 * 0.3 * 4.0
	if got := Cost(q, l); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %g, want %g", got, want)
	}
}

func TestCostOfIntervals(t *testing.T) {
	q := Quadratic{Sigma: 1}
	// Overlapping pair: slot 19 has 4 kWh, slots 18 and 20 have 2 kWh.
	got := CostOfIntervals(q, []core.Interval{{Begin: 18, End: 20}, {Begin: 19, End: 21}}, 2)
	want := 4.0 + 16 + 4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CostOfIntervals = %g, want %g", got, want)
	}
}

func TestMarginalCost(t *testing.T) {
	q := Quadratic{Sigma: 1}
	var base core.Load
	base.AddInterval(core.Interval{Begin: 18, End: 20}, 2)
	iv := core.Interval{Begin: 19, End: 21}
	got := MarginalCost(q, &base, iv, 2)
	// slot 19: 16−4 = 12; slot 20: 4−0 = 4.
	if math.Abs(got-16) > 1e-12 {
		t.Errorf("MarginalCost = %g, want 16", got)
	}
	// Marginal cost must equal the full-cost difference.
	after := base
	after.AddInterval(iv, 2)
	if diff := Cost(q, after) - Cost(q, base); math.Abs(got-diff) > 1e-9 {
		t.Errorf("MarginalCost %g disagrees with cost difference %g", got, diff)
	}
}

// TestMarginalCostSuperadditive: for convex pricing, the sum of solo
// marginal costs lower-bounds the joint marginal cost — the bound the
// optimal solver's pruning relies on.
func TestMarginalCostSuperadditive(t *testing.T) {
	q := Quadratic{Sigma: DefaultSigma}
	prop := func(s1, s2, baseRaw byte) bool {
		var base core.Load
		bs := int(baseRaw) % 20
		base.AddInterval(core.Interval{Begin: bs, End: min(bs+4, 24)}, 3)
		iv1 := core.Interval{Begin: int(s1) % 22, End: int(s1)%22 + 2}
		iv2 := core.Interval{Begin: int(s2) % 22, End: int(s2)%22 + 2}
		solo := MarginalCost(q, &base, iv1, 2) + MarginalCost(q, &base, iv2, 2)
		joint := base
		joint.AddInterval(iv1, 2)
		jointDelta := MarginalCost(q, &base, iv1, 2) + MarginalCost(q, &joint, iv2, 2)
		return solo <= jointDelta+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("solo marginal costs must lower-bound joint cost: %v", err)
	}
}
