// Package pricing implements the neighborhood cost model of Section III.
//
// The neighborhood buys power on the day-ahead market at a superlinear
// (strictly convex) hourly price. The paper adopts the quadratic form
// P_h(l_h) = σ·l_h² (Eq. 1) following Mohsenian-Rad et al., and notes
// that other convex forms (e.g. a two-step piecewise-linear tariff)
// satisfy the same assumptions; both are provided here so that the
// ablation benches can swap them.
package pricing

import (
	"fmt"
	"sort"

	"enki/internal/core"
)

// DefaultSigma is the paper's scaling factor σ = 0.3 (Section VI).
const DefaultSigma = 0.3

// Pricer computes the hourly cost of an aggregate load level.
type Pricer interface {
	// HourCost returns P_h(l) for an hourly load l (kWh). It must be
	// nonnegative, nondecreasing, and convex in l.
	HourCost(load float64) float64
	// MarginalRate returns a subgradient of HourCost at load — the
	// instantaneous $/kWh price. Exact solvers use it for relaxation
	// bounds; any value in the subdifferential is valid.
	MarginalRate(load float64) float64
}

// Quadratic is the paper's pricing function P_h(l) = σ·l² (Eq. 1).
type Quadratic struct {
	// Sigma is the scaling factor σ > 0.
	Sigma float64
}

var _ Pricer = Quadratic{}

// NewQuadratic returns the Eq. 1 pricer, validating σ > 0.
func NewQuadratic(sigma float64) (Quadratic, error) {
	if sigma <= 0 {
		return Quadratic{}, fmt.Errorf("pricing: sigma %g must be positive", sigma)
	}
	return Quadratic{Sigma: sigma}, nil
}

// HourCost returns σ·l².
func (q Quadratic) HourCost(load float64) float64 { return q.Sigma * load * load }

// MarginalRate returns the derivative 2σl.
func (q Quadratic) MarginalRate(load float64) float64 { return 2 * q.Sigma * load }

// Step is one segment of a piecewise-linear convex tariff: loads above
// Threshold are charged at Rate per kWh.
type Step struct {
	Threshold float64 // kWh above which Rate applies
	Rate      float64 // $/kWh marginal price on this segment
}

// Piecewise is a convex piecewise-linear tariff, the two-step
// alternative the paper attributes to Mohsenian-Rad et al. Rates must
// be nondecreasing across steps for convexity.
type Piecewise struct {
	steps []Step
}

var _ Pricer = (*Piecewise)(nil)

// NewPiecewise builds a convex piecewise tariff from marginal-rate
// steps. Steps are sorted by threshold; the first threshold must be 0
// and rates must be nondecreasing.
func NewPiecewise(steps []Step) (*Piecewise, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("pricing: piecewise tariff needs at least one step")
	}
	sorted := make([]Step, len(steps))
	copy(sorted, steps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Threshold < sorted[j].Threshold })
	if sorted[0].Threshold != 0 {
		return nil, fmt.Errorf("pricing: first step threshold is %g, want 0", sorted[0].Threshold)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Rate < sorted[i-1].Rate {
			return nil, fmt.Errorf("pricing: rates must be nondecreasing for convexity (step %d)", i)
		}
		if sorted[i].Threshold == sorted[i-1].Threshold {
			return nil, fmt.Errorf("pricing: duplicate threshold %g", sorted[i].Threshold)
		}
	}
	return &Piecewise{steps: sorted}, nil
}

// HourCost integrates the marginal rates up to load.
func (p *Piecewise) HourCost(load float64) float64 {
	if load <= 0 {
		return 0
	}
	var cost float64
	for i, s := range p.steps {
		upper := load
		if i+1 < len(p.steps) && p.steps[i+1].Threshold < load {
			upper = p.steps[i+1].Threshold
		}
		if upper <= s.Threshold {
			break
		}
		cost += (upper - s.Threshold) * s.Rate
	}
	return cost
}

// MarginalRate returns the marginal rate of the segment containing
// load; at a kink the steeper (right) rate is returned, which is a
// valid subgradient.
func (p *Piecewise) MarginalRate(load float64) float64 {
	if load < 0 {
		return 0
	}
	rate := p.steps[0].Rate
	for _, s := range p.steps[1:] {
		if load >= s.Threshold {
			rate = s.Rate
		}
	}
	return rate
}

// Cost returns κ(ω) = Σ_h P_h(l_h) (Eq. 1): the price the neighborhood
// pays the power company for the day's aggregate load.
func Cost(p Pricer, l core.Load) float64 {
	var sum float64
	for _, v := range l {
		sum += p.HourCost(v)
	}
	return sum
}

// CostOfIntervals aggregates occupancy intervals at a uniform rating
// and prices the resulting load.
func CostOfIntervals(p Pricer, intervals []core.Interval, rating float64) float64 {
	l := core.LoadOf(intervals, rating)
	return Cost(p, l)
}

// MarginalCost returns the cost increase of adding an occupancy
// interval at the given rating on top of base: κ(base + iv) − κ(base).
// Schedulers use this as the greedy objective and the optimal solver
// uses it as a lower bound (superadditivity of convex costs).
func MarginalCost(p Pricer, base *core.Load, iv core.Interval, rating float64) float64 {
	var delta float64
	for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
		delta += p.HourCost(base[h]+rating) - p.HourCost(base[h])
	}
	return delta
}
