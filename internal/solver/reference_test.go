package solver

// This file preserves the SEED branch-and-bound as the differential-
// test oracle: a verbatim copy (modulo renames and stripped obs
// instrumentation) of BranchAndBound as it stood before the pruned
// parallel rewrite. The differential suite requires the fast solver to
// reproduce this oracle's objective values exactly. Do not "optimize"
// this file — its whole value is that it cannot drift along with the
// fast path.

import (
	"sort"
	"time"

	"enki/internal/core"
	"enki/internal/pricing"
)

// refState carries the search state of one refBranchAndBound run.
type refState struct {
	pricer           pricing.Pricer
	items            []bbItem
	choice           []int
	best             []int
	load             core.Load
	curCost          float64
	incumbent        float64
	nodes            int64
	pruned           uint64
	incumbentUpdates uint64
	limited          bool
	opts             Options
	deadline         time.Time
	energySuffix     []float64
	slotUnion        [][core.HoursPerDay]bool
	slots            [][]int
	sameAsPrev       []bool
	fracX            [][]float64
	levelScratch     []float64
}

// refBranchAndBound is the seed solver: depth-first branch-and-bound
// with the superadditivity and union water-filling bounds, symmetry
// breaking over adjacent identical items, and a greedy-plus-local-search
// incumbent.
func refBranchAndBound(p pricing.Pricer, items []Item, opts Options) (Result, error) {
	if err := validate(items); err != nil {
		return Result{}, err
	}

	ordered := make([]bbItem, len(items))
	for i, it := range items {
		ordered[i] = bbItem{Item: it, pos: i, energy: float64(it.Candidates[0].Len()) * it.Rating}
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if len(a.Candidates) != len(b.Candidates) {
			return len(a.Candidates) < len(b.Candidates)
		}
		if a.energy != b.energy {
			return a.energy > b.energy
		}
		if a.Candidates[0].Begin != b.Candidates[0].Begin {
			return a.Candidates[0].Begin < b.Candidates[0].Begin
		}
		return a.Rating < b.Rating
	})

	n := len(ordered)
	st := &refState{
		pricer:       p,
		items:        ordered,
		choice:       make([]int, n),
		best:         make([]int, n),
		opts:         opts,
		energySuffix: make([]float64, n+1),
		slotUnion:    make([][core.HoursPerDay]bool, n+1),
	}
	st.slots = make([][]int, n)
	st.fracX = make([][]float64, n)
	st.sameAsPrev = make([]bool, n)
	for i := 1; i < n; i++ {
		a, b := &ordered[i-1], &ordered[i]
		st.sameAsPrev[i] = a.Rating == b.Rating &&
			len(a.Candidates) == len(b.Candidates) &&
			a.Candidates[0] == b.Candidates[0]
	}
	for i := n - 1; i >= 0; i-- {
		st.energySuffix[i] = st.energySuffix[i+1] + ordered[i].energy
		st.slotUnion[i] = st.slotUnion[i+1]
		var seen [core.HoursPerDay]bool
		for _, iv := range ordered[i].Candidates {
			for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
				st.slotUnion[i][h] = true
				seen[h] = true
			}
		}
		for h := 0; h < core.HoursPerDay; h++ {
			if seen[h] {
				st.slots[i] = append(st.slots[i], h)
			}
		}
		st.fracX[i] = make([]float64, len(st.slots[i]))
	}
	st.incumbent = refSeedIncumbent(p, ordered, st.best)
	if opts.TimeLimit > 0 {
		st.deadline = time.Now().Add(opts.TimeLimit)
	}
	rootLB := st.relaxBound(0, 50)

	st.dfs(0)

	res := Result{
		Choice:     make([]int, n),
		Cost:       st.incumbent,
		Optimal:    !st.limited,
		Nodes:      st.nodes,
		LowerBound: rootLB,
	}
	if res.Optimal {
		res.LowerBound = res.Cost
	}
	for i, it := range ordered {
		res.Choice[it.pos] = st.best[i]
	}
	return res, nil
}

func (st *refState) acceptable(lb float64) bool {
	return lb >= st.incumbent*(1-st.opts.RelGap)
}

func (st *refState) dfs(i int) {
	if st.limited {
		return
	}
	st.nodes++
	if st.opts.NodeLimit > 0 && st.nodes > st.opts.NodeLimit {
		st.limited = true
		return
	}
	if !st.deadline.IsZero() && st.nodes%256 == 0 && time.Now().After(st.deadline) {
		st.limited = true
		return
	}
	n := len(st.items)
	if i == n {
		if cost := pricing.Cost(st.pricer, st.load); cost < st.incumbent {
			st.incumbent = cost
			st.incumbentUpdates++
			copy(st.best, st.choice)
		}
		return
	}

	if st.acceptable(st.waterfillBound(i)) {
		st.pruned++
		return
	}

	bound := st.curCost
	for j := i; j < n; j++ {
		bound += st.minMarginal(j)
		if st.acceptable(bound) {
			st.pruned++
			return
		}
	}

	it := &st.items[i]
	type cand struct {
		idx      int
		marginal float64
	}
	cands := make([]cand, len(it.Candidates))
	for c, iv := range it.Candidates {
		cands[c] = cand{idx: c, marginal: pricing.MarginalCost(st.pricer, &st.load, iv, it.Rating)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].marginal < cands[b].marginal })

	minIdx := 0
	if st.sameAsPrev[i] {
		minIdx = st.choice[i-1]
	}
	for _, c := range cands {
		if st.acceptable(st.curCost + c.marginal) {
			st.pruned++
			break
		}
		if c.idx < minIdx {
			continue
		}
		iv := it.Candidates[c.idx]
		st.load.AddInterval(iv, it.Rating)
		st.curCost += c.marginal
		st.choice[i] = c.idx
		st.dfs(i + 1)
		st.curCost -= c.marginal
		st.load.RemoveInterval(iv, it.Rating)
		if st.limited {
			return
		}
	}
}

func (st *refState) minMarginal(i int) float64 {
	it := &st.items[i]
	best := pricing.MarginalCost(st.pricer, &st.load, it.Candidates[0], it.Rating)
	for _, iv := range it.Candidates[1:] {
		if m := pricing.MarginalCost(st.pricer, &st.load, iv, it.Rating); m < best {
			best = m
		}
	}
	return best
}

func (st *refState) waterfillBound(i int) float64 {
	union := &st.slotUnion[i]
	energy := st.energySuffix[i]

	var fixed float64
	levels := make([]float64, 0, core.HoursPerDay)
	for h := 0; h < core.HoursPerDay; h++ {
		if union[h] {
			levels = append(levels, st.load[h])
		} else {
			fixed += st.pricer.HourCost(st.load[h])
		}
	}
	if len(levels) == 0 {
		return st.curCost
	}
	sort.Float64s(levels)

	remaining := energy
	lambda := levels[0]
	for k := 0; k < len(levels); k++ {
		width := float64(k + 1)
		var gap float64
		if k+1 < len(levels) {
			gap = levels[k+1] - lambda
		} else {
			gap = remaining/width + 1
		}
		if remaining <= gap*width {
			lambda += remaining / width
			remaining = 0
			break
		}
		remaining -= gap * width
		lambda = levels[k+1]
	}

	var cost float64
	for _, lv := range levels {
		if lv < lambda {
			lv = lambda
		}
		cost += st.pricer.HourCost(lv)
	}
	return fixed + cost
}

func (st *refState) relaxBound(i int, sweeps int) float64 {
	n := len(st.items)
	if i >= n {
		return st.curCost
	}
	load := st.load
	for j := i; j < n; j++ {
		ss := st.slots[j]
		per := st.items[j].energy / float64(len(ss))
		for k, h := range ss {
			st.fracX[j][k] = per
			load[h] += per
		}
	}
	for s := 0; s < sweeps; s++ {
		for j := i; j < n; j++ {
			ss := st.slots[j]
			x := st.fracX[j]
			for k, h := range ss {
				load[h] -= x[k]
			}
			st.levelScratch = st.levelScratch[:0]
			for _, h := range ss {
				st.levelScratch = append(st.levelScratch, load[h])
			}
			sort.Float64s(st.levelScratch)
			lambda := waterLevel(st.levelScratch, st.items[j].energy)
			for k, h := range ss {
				add := lambda - load[h]
				if add < 0 {
					add = 0
				}
				x[k] = add
				load[h] += add
			}
		}
	}

	var f float64
	var g [core.HoursPerDay]float64
	for h := 0; h < core.HoursPerDay; h++ {
		f += st.pricer.HourCost(load[h])
		g[h] = st.pricer.MarginalRate(load[h])
	}
	bound := f
	for j := i; j < n; j++ {
		ss := st.slots[j]
		minG := g[ss[0]]
		var dot float64
		for k, h := range ss {
			if g[h] < minG {
				minG = g[h]
			}
			dot += g[h] * st.fracX[j][k]
		}
		bound += st.items[j].energy*minG - dot
	}
	return bound
}

// refSeedIncumbent is the seed incumbent heuristic: marginal-cost
// greedy improved to a single-move local optimum.
func refSeedIncumbent(p pricing.Pricer, ordered []bbItem, best []int) float64 {
	var load core.Load
	for i := range ordered {
		it := &ordered[i]
		bestC, bestM := 0, pricing.MarginalCost(p, &load, it.Candidates[0], it.Rating)
		for c := 1; c < len(it.Candidates); c++ {
			if m := pricing.MarginalCost(p, &load, it.Candidates[c], it.Rating); m < bestM {
				bestC, bestM = c, m
			}
		}
		load.AddInterval(it.Candidates[bestC], it.Rating)
		best[i] = bestC
	}

	improved := true
	for improved {
		improved = false
		for i := range ordered {
			it := &ordered[i]
			cur := best[i]
			load.RemoveInterval(it.Candidates[cur], it.Rating)
			bestC, bestM := cur, pricing.MarginalCost(p, &load, it.Candidates[cur], it.Rating)
			for c := range it.Candidates {
				if c == cur {
					continue
				}
				if m := pricing.MarginalCost(p, &load, it.Candidates[c], it.Rating); m < bestM-1e-12 {
					bestC, bestM = c, m
				}
			}
			load.AddInterval(it.Candidates[bestC], it.Rating)
			if bestC != cur {
				best[i] = bestC
				improved = true
			}
		}
	}
	return pricing.Cost(p, load)
}
