package solver

import (
	"testing"
)

func TestSymCorrect(t *testing.T) {
	// TestSymCorrect: duplicated (identical) items exercise the symmetry-
	// breaking path; the optimum must match the exhaustive oracle.
	for seed := uint64(1); seed <= 5; seed++ {
		items := randomItems(t, seed, 6)
		items = append(items, items[0], items[0], items[1])
		ex, err := Exhaustive(sigma, items)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(sigma, items, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if diff := ex.Cost - bb.Cost; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("seed %d: %g vs %g", seed, ex.Cost, bb.Cost)
		}
	}
}
