// Package solver solves the paper's allocation problem (Eq. 2) exactly:
// choose one occupancy interval per household from its feasible set so
// that the neighborhood's convex cost Σ_h P_h(l_h) is minimized.
//
// The paper used the MIQP solver of IBM ILOG CPLEX V12.4. This package
// is the from-scratch substitute: depth-first branch-and-bound over
// deferments with two complementary lower bounds (a superadditivity
// bound and a water-filling convex-relaxation bound), an incumbent
// seeded by greedy placement plus single-move local search, and a
// CPLEX-style relative optimality gap. An exhaustive enumerator is
// provided for tiny instances and as a test oracle.
package solver

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"enki/internal/core"
	"enki/internal/obs"
	"enki/internal/pricing"
)

// Item is one household's placement problem: a non-empty set of
// feasible occupancy intervals (one per deferment) and a power rating.
type Item struct {
	Candidates []core.Interval
	Rating     float64
}

// ItemFromPreference expands a reported preference χ̂ into an Item with
// one candidate per feasible deferment d ∈ {0, ..., slack}.
func ItemFromPreference(pref core.Preference, rating float64) Item {
	cands := make([]core.Interval, 0, pref.StartChoices())
	for d := 0; d <= pref.Slack(); d++ {
		cands = append(cands, pref.IntervalAt(d))
	}
	return Item{Candidates: cands, Rating: rating}
}

// Options bounds the search effort.
type Options struct {
	// NodeLimit caps explored nodes; 0 means no explicit cap.
	NodeLimit int64
	// TimeLimit caps wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// RelGap accepts any incumbent within this relative distance of the
	// proven lower bound, mirroring a MIP solver's optimality gap.
	// 0 demands exactness. CPLEX's default is 1e-4.
	RelGap float64
}

// Result is the outcome of a solve.
type Result struct {
	Choice  []int   // chosen candidate index per item, in input order
	Cost    float64 // objective value κ of the chosen placement
	Optimal bool    // whether the result is proven optimal (within RelGap)
	Nodes   int64   // search nodes explored
	// LowerBound is a proven lower bound on the optimum: the objective
	// itself when the search completed, otherwise the root convex
	// relaxation. Gap() quantifies incumbent quality when a limit
	// interrupted the search.
	LowerBound float64
}

// Gap returns the relative optimality gap (Cost − LowerBound)/Cost,
// or 0 when the cost is zero.
func (r Result) Gap() float64 {
	if r.Cost == 0 {
		return 0
	}
	return (r.Cost - r.LowerBound) / r.Cost
}

// Intervals materializes the chosen occupancy intervals in input order.
func (r Result) Intervals(items []Item) []core.Interval {
	out := make([]core.Interval, len(r.Choice))
	for i, c := range r.Choice {
		out[i] = items[i].Candidates[c]
	}
	return out
}

// ErrNoItems is returned when the instance is empty.
var ErrNoItems = errors.New("solver: no items")

func validate(items []Item) error {
	if len(items) == 0 {
		return ErrNoItems
	}
	for i, it := range items {
		if len(it.Candidates) == 0 {
			return fmt.Errorf("solver: item %d has no candidates", i)
		}
		if it.Rating <= 0 {
			return fmt.Errorf("solver: item %d has non-positive rating %g", i, it.Rating)
		}
	}
	return nil
}

// Exhaustive enumerates every joint placement. It is exponential in the
// number of items and intended for tiny instances and as a test oracle
// for BranchAndBound.
func Exhaustive(p pricing.Pricer, items []Item) (Result, error) {
	if err := validate(items); err != nil {
		return Result{}, err
	}
	choice := make([]int, len(items))
	best := make([]int, len(items))
	var load core.Load
	bestCost := -1.0
	var nodes int64

	var recurse func(i int)
	recurse = func(i int) {
		if i == len(items) {
			nodes++
			cost := pricing.Cost(p, load)
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				copy(best, choice)
			}
			return
		}
		for c, iv := range items[i].Candidates {
			load.AddInterval(iv, items[i].Rating)
			choice[i] = c
			recurse(i + 1)
			load.RemoveInterval(iv, items[i].Rating)
		}
	}
	recurse(0)
	return Result{Choice: best, Cost: bestCost, Optimal: true, Nodes: nodes}, nil
}

// bbState carries the search state of one BranchAndBound invocation.
type bbState struct {
	pricer    pricing.Pricer
	items     []bbItem
	choice    []int // per ordered position
	best      []int
	load      core.Load
	curCost   float64
	incumbent float64
	nodes     int64
	// pruned counts subtrees cut by a bound; incumbentUpdates counts
	// leaf improvements. Both are deterministic search facts (absent
	// node/time limits) exported to the obs registry after the solve.
	pruned           uint64
	incumbentUpdates uint64
	limited          bool
	opts             Options
	deadline         time.Time
	// energySuffix[i] is the total energy of items i..n-1.
	energySuffix []float64
	// slotUnion[i] marks the slots reachable by any of items i..n-1.
	slotUnion [][core.HoursPerDay]bool
	// slots[j] lists the slots item j may load (union of candidates).
	slots [][]int
	// sameAsPrev[j] marks item j as identical to item j-1 in the
	// ordered sequence; symmetry breaking then requires item j's chosen
	// candidate index to be at least item j-1's.
	sameAsPrev []bool
	// fracX[j] is scratch: item j's fractional allocation per slot of
	// slots[j], used by the relaxation bound.
	fracX [][]float64
	// levelScratch is reusable sort space for water-filling.
	levelScratch []float64
}

type bbItem struct {
	Item
	pos    int
	energy float64 // duration × rating
}

// BranchAndBound solves the placement problem with depth-first
// branch-and-bound. At each node it prunes with the maximum of two
// lower bounds:
//
//  1. superadditivity: placed cost + Σ over unplaced items of the
//     cheapest marginal cost of placing that item alone (valid because
//     convex costs are superadditive in added load);
//  2. water-filling: the exact optimum of the continuous relaxation in
//     which the unplaced items' total energy may spread arbitrarily
//     over the union of their feasible slots.
//
// The incumbent is seeded by marginal-cost greedy placement improved by
// single-item local search, which is typically optimal or within a
// fraction of a percent, so most of the search is spent proving the
// bound. If a node/time limit interrupts the search the incumbent is
// returned with Optimal = false.
func BranchAndBound(p pricing.Pricer, items []Item, opts Options) (Result, error) {
	if err := validate(items); err != nil {
		return Result{}, err
	}

	ordered := make([]bbItem, len(items))
	for i, it := range items {
		ordered[i] = bbItem{Item: it, pos: i, energy: float64(it.Candidates[0].Len()) * it.Rating}
	}
	// Most-constrained first; among equals, biggest energy first so that
	// high-impact placements happen near the root where bounds matter.
	// The final keys group identical items (same candidate list and
	// rating) adjacently for symmetry breaking.
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if len(a.Candidates) != len(b.Candidates) {
			return len(a.Candidates) < len(b.Candidates)
		}
		if a.energy != b.energy {
			return a.energy > b.energy
		}
		if a.Candidates[0].Begin != b.Candidates[0].Begin {
			return a.Candidates[0].Begin < b.Candidates[0].Begin
		}
		return a.Rating < b.Rating
	})

	n := len(ordered)
	st := &bbState{
		pricer:       p,
		items:        ordered,
		choice:       make([]int, n),
		best:         make([]int, n),
		opts:         opts,
		energySuffix: make([]float64, n+1),
		slotUnion:    make([][core.HoursPerDay]bool, n+1),
	}
	st.slots = make([][]int, n)
	st.fracX = make([][]float64, n)
	st.sameAsPrev = make([]bool, n)
	for i := 1; i < n; i++ {
		a, b := &ordered[i-1], &ordered[i]
		st.sameAsPrev[i] = a.Rating == b.Rating &&
			len(a.Candidates) == len(b.Candidates) &&
			a.Candidates[0] == b.Candidates[0]
	}
	for i := n - 1; i >= 0; i-- {
		st.energySuffix[i] = st.energySuffix[i+1] + ordered[i].energy
		st.slotUnion[i] = st.slotUnion[i+1]
		var seen [core.HoursPerDay]bool
		for _, iv := range ordered[i].Candidates {
			for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
				st.slotUnion[i][h] = true
				seen[h] = true
			}
		}
		for h := 0; h < core.HoursPerDay; h++ {
			if seen[h] {
				st.slots[i] = append(st.slots[i], h)
			}
		}
		st.fracX[i] = make([]float64, len(st.slots[i]))
	}
	st.incumbent = seedIncumbent(p, ordered, st.best)
	if opts.TimeLimit > 0 {
		st.deadline = time.Now().Add(opts.TimeLimit)
	}
	rootLB := st.relaxBound(0, 50)

	st.dfs(0)

	res := Result{
		Choice:     make([]int, n),
		Cost:       st.incumbent,
		Optimal:    !st.limited,
		Nodes:      st.nodes,
		LowerBound: rootLB,
	}
	if res.Optimal {
		res.LowerBound = res.Cost
	}
	for i, it := range ordered {
		res.Choice[it.pos] = st.best[i]
	}

	reg := obs.Default()
	reg.Counter(obs.MetricSolverSolvesTotal).Inc()
	reg.Counter(obs.MetricSolverNodesExpanded).Add(uint64(st.nodes))
	reg.Counter(obs.MetricSolverNodesPruned).Add(st.pruned)
	reg.Counter(obs.MetricSolverIncumbentUpdates).Add(st.incumbentUpdates)
	if st.limited {
		reg.Counter(obs.MetricSolverLimitedTotal).Inc()
	}
	return res, nil
}

// acceptable reports whether a node with lower bound lb can be pruned
// against the incumbent under the configured relative gap.
func (st *bbState) acceptable(lb float64) bool {
	return lb >= st.incumbent*(1-st.opts.RelGap)
}

func (st *bbState) dfs(i int) {
	if st.limited {
		return
	}
	st.nodes++
	if st.opts.NodeLimit > 0 && st.nodes > st.opts.NodeLimit {
		st.limited = true
		return
	}
	if !st.deadline.IsZero() && st.nodes%256 == 0 && time.Now().After(st.deadline) {
		st.limited = true
		return
	}
	n := len(st.items)
	if i == n {
		// Recompute exactly at leaves: the incrementally maintained
		// curCost accumulates float drift over deep paths.
		if cost := pricing.Cost(st.pricer, st.load); cost < st.incumbent {
			st.incumbent = cost
			st.incumbentUpdates++
			copy(st.best, st.choice)
		}
		return
	}

	// Cheapest bound first: union water-filling is strongest high in
	// the tree, where many items remain.
	if st.acceptable(st.waterfillBound(i)) {
		st.pruned++
		return
	}

	// Superadditive solo-marginal completion: strongest deep in the
	// tree, where few items remain.
	bound := st.curCost
	for j := i; j < n; j++ {
		bound += st.minMarginal(j)
		if st.acceptable(bound) {
			st.pruned++
			return
		}
	}

	it := &st.items[i]
	type cand struct {
		idx      int
		marginal float64
	}
	cands := make([]cand, len(it.Candidates))
	for c, iv := range it.Candidates {
		cands[c] = cand{idx: c, marginal: pricing.MarginalCost(st.pricer, &st.load, iv, it.Rating)}
	}
	// Cheapest-first child order finds strong incumbents early.
	sort.Slice(cands, func(a, b int) bool { return cands[a].marginal < cands[b].marginal })

	// Symmetry breaking: an item identical to its predecessor may not
	// pick an earlier candidate — interchangeable items are explored in
	// canonical (nondecreasing deferment) order only.
	minIdx := 0
	if st.sameAsPrev[i] {
		minIdx = st.choice[i-1]
	}
	for _, c := range cands {
		if st.acceptable(st.curCost + c.marginal) {
			st.pruned++
			break // children sorted: the rest are at least as bad
		}
		if c.idx < minIdx {
			continue
		}
		iv := it.Candidates[c.idx]
		st.load.AddInterval(iv, it.Rating)
		st.curCost += c.marginal
		st.choice[i] = c.idx
		st.dfs(i + 1)
		st.curCost -= c.marginal
		st.load.RemoveInterval(iv, it.Rating)
		if st.limited {
			return
		}
	}
}

// minMarginal returns the cheapest solo marginal cost of item i on the
// current partial load.
func (st *bbState) minMarginal(i int) float64 {
	it := &st.items[i]
	best := pricing.MarginalCost(st.pricer, &st.load, it.Candidates[0], it.Rating)
	for _, iv := range it.Candidates[1:] {
		if m := pricing.MarginalCost(st.pricer, &st.load, iv, it.Rating); m < best {
			best = m
		}
	}
	return best
}

// waterfillBound computes the continuous-relaxation lower bound for a
// node about to place item i: slots outside the remaining items' union
// keep their current cost, and the remaining energy E is spread over
// the union slots so as to minimize Σ P(l_h + x_h) — for a convex P the
// optimum raises the lowest-loaded slots to a common water level.
// Relaxing both integrality and the per-item window constraints only
// enlarges the feasible set, so this never exceeds the true optimum.
func (st *bbState) waterfillBound(i int) float64 {
	union := &st.slotUnion[i]
	energy := st.energySuffix[i]

	var fixed float64
	levels := make([]float64, 0, core.HoursPerDay)
	for h := 0; h < core.HoursPerDay; h++ {
		if union[h] {
			levels = append(levels, st.load[h])
		} else {
			fixed += st.pricer.HourCost(st.load[h])
		}
	}
	if len(levels) == 0 {
		return st.curCost // no remaining energy can be placed anywhere
	}
	sort.Float64s(levels)

	// Find the water level λ such that Σ max(0, λ − level) = energy.
	remaining := energy
	lambda := levels[0]
	for k := 0; k < len(levels); k++ {
		width := float64(k + 1)
		var gap float64
		if k+1 < len(levels) {
			gap = levels[k+1] - lambda
		} else {
			gap = remaining/width + 1 // sentinel: final segment absorbs the rest
		}
		if remaining <= gap*width {
			lambda += remaining / width
			remaining = 0
			break
		}
		remaining -= gap * width
		lambda = levels[k+1]
	}

	var cost float64
	for _, lv := range levels {
		if lv < lambda {
			lv = lambda
		}
		cost += st.pricer.HourCost(lv)
	}
	return fixed + cost
}

// waterLevel returns the level λ such that raising every entry of
// levels (ascending) below λ up to λ absorbs exactly energy.
func waterLevel(levels []float64, energy float64) float64 {
	remaining := energy
	lambda := levels[0]
	for k := 0; k < len(levels); k++ {
		width := float64(k + 1)
		var gap float64
		if k+1 < len(levels) {
			gap = levels[k+1] - lambda
		} else {
			gap = remaining/width + 1 // sentinel: final segment absorbs the rest
		}
		if remaining <= gap*width {
			return lambda + remaining/width
		}
		remaining -= gap * width
		lambda = levels[k+1]
	}
	return lambda
}

// relaxBound lower-bounds the completion of a node about to place item
// i via the continuous relaxation that keeps each remaining item's
// energy inside its own window but drops integrality and
// consecutiveness. It runs `sweeps` rounds of cyclic per-item
// water-filling (block coordinate descent on the convex objective) and
// converts the resulting fractional point x into a valid bound with the
// Frank-Wolfe linearization
//
//	f(x*) ≥ f(x) + Σ_i e_i·min_{h∈W_i} g_h − Σ_ih g_h·x_ih
//
// where g is a subgradient of the cost at x. The bound is valid at any
// x, converged or not.
func (st *bbState) relaxBound(i int, sweeps int) float64 {
	n := len(st.items)
	if i >= n {
		return st.curCost
	}
	load := st.load
	for j := i; j < n; j++ {
		ss := st.slots[j]
		per := st.items[j].energy / float64(len(ss))
		for k, h := range ss {
			st.fracX[j][k] = per
			load[h] += per
		}
	}
	for s := 0; s < sweeps; s++ {
		for j := i; j < n; j++ {
			ss := st.slots[j]
			x := st.fracX[j]
			for k, h := range ss {
				load[h] -= x[k]
			}
			st.levelScratch = st.levelScratch[:0]
			for _, h := range ss {
				st.levelScratch = append(st.levelScratch, load[h])
			}
			sort.Float64s(st.levelScratch)
			lambda := waterLevel(st.levelScratch, st.items[j].energy)
			for k, h := range ss {
				add := lambda - load[h]
				if add < 0 {
					add = 0
				}
				x[k] = add
				load[h] += add
			}
		}
	}

	var f float64
	var g [core.HoursPerDay]float64
	for h := 0; h < core.HoursPerDay; h++ {
		f += st.pricer.HourCost(load[h])
		g[h] = st.pricer.MarginalRate(load[h])
	}
	bound := f
	for j := i; j < n; j++ {
		ss := st.slots[j]
		minG := g[ss[0]]
		var dot float64
		for k, h := range ss {
			if g[h] < minG {
				minG = g[h]
			}
			dot += g[h] * st.fracX[j][k]
		}
		bound += st.items[j].energy*minG - dot
	}
	return bound
}

// seedIncumbent fills best (per ordered position) with a marginal-cost
// greedy placement improved to a single-move local optimum, and returns
// its cost.
func seedIncumbent(p pricing.Pricer, ordered []bbItem, best []int) float64 {
	var load core.Load
	for i := range ordered {
		it := &ordered[i]
		bestC, bestM := 0, pricing.MarginalCost(p, &load, it.Candidates[0], it.Rating)
		for c := 1; c < len(it.Candidates); c++ {
			if m := pricing.MarginalCost(p, &load, it.Candidates[c], it.Rating); m < bestM {
				bestC, bestM = c, m
			}
		}
		load.AddInterval(it.Candidates[bestC], it.Rating)
		best[i] = bestC
	}

	// Single-item moves until no move improves the cost.
	improved := true
	for improved {
		improved = false
		for i := range ordered {
			it := &ordered[i]
			cur := best[i]
			load.RemoveInterval(it.Candidates[cur], it.Rating)
			bestC, bestM := cur, pricing.MarginalCost(p, &load, it.Candidates[cur], it.Rating)
			for c := range it.Candidates {
				if c == cur {
					continue
				}
				if m := pricing.MarginalCost(p, &load, it.Candidates[c], it.Rating); m < bestM-1e-12 {
					bestC, bestM = c, m
				}
			}
			load.AddInterval(it.Candidates[bestC], it.Rating)
			if bestC != cur {
				best[i] = bestC
				improved = true
			}
		}
	}
	return pricing.Cost(p, load)
}
