// Package solver solves the paper's allocation problem (Eq. 2) exactly:
// choose one occupancy interval per household from its feasible set so
// that the neighborhood's convex cost Σ_h P_h(l_h) is minimized.
//
// The paper used the MIQP solver of IBM ILOG CPLEX V12.4. This package
// is the from-scratch substitute: branch-and-bound over deferments with
// a three-stage lower-bound cascade (superadditivity, union
// water-filling, and a window-respecting convex relaxation), root
// reduced-cost candidate fixing, symmetry breaking across identical
// households, an incumbent warm-started by greedy placement plus
// single-move local search, and a deterministic parallel subtree search
// over internal/parallel: the root is decomposed into a fixed frontier
// of subtrees whose independent searches combine into a result that is
// bit-identical at any worker count. An exhaustive enumerator is
// provided for tiny instances and as a test oracle.
package solver

import (
	"errors"
	"fmt"
	"time"

	"enki/internal/core"
	"enki/internal/pricing"
)

// Item is one household's placement problem: a non-empty set of
// feasible occupancy intervals (one per deferment) and a power rating.
type Item struct {
	Candidates []core.Interval
	Rating     float64
}

// ItemFromPreference expands a reported preference χ̂ into an Item with
// one candidate per feasible deferment d ∈ {0, ..., slack}.
func ItemFromPreference(pref core.Preference, rating float64) Item {
	cands := make([]core.Interval, 0, pref.StartChoices())
	for d := 0; d <= pref.Slack(); d++ {
		cands = append(cands, pref.IntervalAt(d))
	}
	return Item{Candidates: cands, Rating: rating}
}

// Options bounds the search effort.
type Options struct {
	// NodeLimit caps explored nodes; 0 means no explicit cap.
	NodeLimit int64
	// TimeLimit caps wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// RelGap accepts any incumbent within this relative distance of the
	// proven lower bound, mirroring a MIP solver's optimality gap.
	// 0 demands exactness. CPLEX's default is 1e-4.
	RelGap float64
	// Workers sets the parallel subtree search's pool size: 0 or 1 runs
	// serially, N > 1 fans the root frontier out over N goroutines. The
	// result (choice, cost, node and prune counts) is bit-identical at
	// every worker count — subtrees never share incumbents, so each
	// subtree's outcome is a pure function of the instance.
	Workers int
}

// Result is the outcome of a solve.
type Result struct {
	Choice  []int   // chosen candidate index per item, in input order
	Cost    float64 // objective value κ of the chosen placement
	Optimal bool    // whether the result is proven optimal (within RelGap)
	Nodes   int64   // search nodes explored
	// LowerBound is a proven lower bound on the optimum: the objective
	// itself when the search completed, otherwise the root convex
	// relaxation. Gap() quantifies incumbent quality when a limit
	// interrupted the search.
	LowerBound float64
}

// Gap returns the relative optimality gap (Cost − LowerBound)/Cost,
// or 0 when the cost is zero.
func (r Result) Gap() float64 {
	if r.Cost == 0 {
		return 0
	}
	return (r.Cost - r.LowerBound) / r.Cost
}

// Intervals materializes the chosen occupancy intervals in input order.
func (r Result) Intervals(items []Item) []core.Interval {
	out := make([]core.Interval, len(r.Choice))
	for i, c := range r.Choice {
		out[i] = items[i].Candidates[c]
	}
	return out
}

// ErrNoItems is returned when the instance is empty.
var ErrNoItems = errors.New("solver: no items")

func validate(items []Item) error {
	if len(items) == 0 {
		return ErrNoItems
	}
	for i, it := range items {
		if len(it.Candidates) == 0 {
			return fmt.Errorf("solver: item %d has no candidates", i)
		}
		if it.Rating <= 0 {
			return fmt.Errorf("solver: item %d has non-positive rating %g", i, it.Rating)
		}
	}
	return nil
}

// Exhaustive enumerates every joint placement. It is exponential in the
// number of items and intended for tiny instances and as a test oracle
// for BranchAndBound.
func Exhaustive(p pricing.Pricer, items []Item) (Result, error) {
	if err := validate(items); err != nil {
		return Result{}, err
	}
	choice := make([]int, len(items))
	best := make([]int, len(items))
	var load core.Load
	bestCost := -1.0
	var nodes int64

	var recurse func(i int)
	recurse = func(i int) {
		if i == len(items) {
			nodes++
			cost := pricing.Cost(p, load)
			if bestCost < 0 || cost < bestCost {
				bestCost = cost
				copy(best, choice)
			}
			return
		}
		for c, iv := range items[i].Candidates {
			load.AddInterval(iv, items[i].Rating)
			choice[i] = c
			recurse(i + 1)
			load.RemoveInterval(iv, items[i].Rating)
		}
	}
	recurse(0)
	return Result{Choice: best, Cost: bestCost, Optimal: true, Nodes: nodes}, nil
}

// bbItem is one item in search order, carrying its original input
// position, total energy, and — after reduced-cost fixing — the mapping
// from its (possibly filtered) candidate list back to original
// candidate indices.
type bbItem struct {
	Item
	pos    int
	energy float64 // duration × rating
	orig   []int   // original candidate index per filtered candidate
}

// waterLevel returns the level λ such that raising every entry of
// levels (ascending) below λ up to λ absorbs exactly energy.
func waterLevel(levels []float64, energy float64) float64 {
	remaining := energy
	lambda := levels[0]
	for k := 0; k < len(levels); k++ {
		width := float64(k + 1)
		var gap float64
		if k+1 < len(levels) {
			gap = levels[k+1] - lambda
		} else {
			gap = remaining/width + 1 // sentinel: final segment absorbs the rest
		}
		if remaining <= gap*width {
			return lambda + remaining/width
		}
		remaining -= gap * width
		lambda = levels[k+1]
	}
	return lambda
}

// seedIncumbent fills best (per ordered position) with a marginal-cost
// greedy placement improved to a single-move local optimum, and returns
// its cost. This is the warm start every subtree search measures its
// findings against.
func seedIncumbent(p pricing.Pricer, ordered []bbItem, best []int) float64 {
	m := newCostModel(p)
	var load core.Load
	for i := range ordered {
		it := &ordered[i]
		bestC, bestM := 0, m.marginal(&load, it.Candidates[0], it.Rating)
		for c := 1; c < len(it.Candidates); c++ {
			if mc := m.marginal(&load, it.Candidates[c], it.Rating); mc < bestM {
				bestC, bestM = c, mc
			}
		}
		load.AddInterval(it.Candidates[bestC], it.Rating)
		best[i] = bestC
	}

	return improveMoves(&m, ordered, best, &load)
}

// improveMoves applies single-item moves to the placement in best
// (whose occupancy is load) until no move improves the cost, and
// returns the resulting objective. Both the greedy warm start and the
// relaxation-rounded incumbent finish through it.
func improveMoves(m *costModel, ordered []bbItem, best []int, load *core.Load) float64 {
	improved := true
	for improved {
		improved = false
		for i := range ordered {
			it := &ordered[i]
			cur := best[i]
			load.RemoveInterval(it.Candidates[cur], it.Rating)
			bestC, bestM := cur, m.marginal(load, it.Candidates[cur], it.Rating)
			for c := range it.Candidates {
				if c == cur {
					continue
				}
				if mc := m.marginal(load, it.Candidates[c], it.Rating); mc < bestM-1e-12 {
					bestC, bestM = c, mc
				}
			}
			load.AddInterval(it.Candidates[bestC], it.Rating)
			if bestC != cur {
				best[i] = bestC
				improved = true
			}
		}
	}
	return m.cost(load)
}

// roundedIncumbent rounds the root relaxation to an integral schedule:
// each item takes its cheapest candidate under the relaxation's load
// gradient (the Frank–Wolfe vertex), then single-item moves polish the
// result. On instances where the relaxation is nearly integral this
// recovers the optimum directly, collapsing the search to a bound
// certificate.
func roundedIncumbent(m *costModel, ordered []bbItem, grad *[core.HoursPerDay]float64, best []int) float64 {
	var load core.Load
	for i := range ordered {
		it := &ordered[i]
		bestC := 0
		var bestMass float64
		for c, iv := range it.Candidates {
			var sum float64
			for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
				sum += grad[h]
			}
			if c == 0 || sum < bestMass {
				bestC, bestMass = c, sum
			}
		}
		best[i] = bestC
		load.AddInterval(it.Candidates[bestC], it.Rating)
	}
	return improveMoves(m, ordered, best, &load)
}
