package solver

// The solver half of ISSUE 6's differential harness: the rewritten
// branch-and-bound (bound cascade, candidate fixing, dive + frontier
// parallelism) is replayed against the retained seed solver
// (reference_test.go) over a seeded corpus, and its parallel search is
// required to be bit-identical at every worker count.

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
)

// corpusItems draws one random solver instance: n households with
// random windows, durations, and ratings, spanning rigid to fully
// flexible preferences. Duplicated items (every fourth instance)
// exercise the symmetry-breaking path.
func corpusItems(rng *dist.RNG, n int) []Item {
	items := make([]Item, 0, n+2)
	for i := 0; i < n; i++ {
		begin := rng.Intn(core.HoursPerDay)
		width := 1 + rng.Intn(core.HoursPerDay-begin)
		dur := 1 + rng.Intn(width)
		pref := core.Preference{Window: core.Interval{Begin: begin, End: begin + width}, Duration: dur}
		rating := 1 + float64(rng.Intn(3))
		items = append(items, ItemFromPreference(pref, rating))
	}
	return items
}

// TestDifferentialSolver replays the fast solver and the seed solver
// over ~1k seeded random instances with RelGap 0 and requires matching
// objective values (within float tolerance), proven optimality, and a
// feasible, correctly costed choice vector — under both quadratic and
// piecewise pricing.
func TestDifferentialSolver(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow; skipped in -short mode")
	}
	piecewise, err := pricing.NewPiecewise([]pricing.Step{{Threshold: 0, Rate: 0.5}, {Threshold: 8, Rate: 3}})
	if err != nil {
		t.Fatal(err)
	}
	pricers := []struct {
		name string
		p    pricing.Pricer
	}{
		{"quadratic", sigma},
		{"piecewise", piecewise},
	}
	const instances = 500 // ×2 pricers = 1k differential replays
	for _, pr := range pricers {
		t.Run(pr.name, func(t *testing.T) {
			for k := 0; k < instances; k++ {
				seed := uint64(k + 1)
				rng := dist.New(seed)
				n := 1 + rng.Intn(9)
				items := corpusItems(rng, n)
				if k%4 == 3 { // duplicate an item: symmetry path
					items = append(items, items[0])
				}

				got, err := BranchAndBound(pr.p, items, Options{})
				if err != nil {
					t.Fatalf("instance %d: fast: %v", k, err)
				}
				want, err := refBranchAndBound(pr.p, items, Options{})
				if err != nil {
					t.Fatalf("instance %d: seed: %v", k, err)
				}
				if math.Abs(got.Cost-want.Cost) > 1e-9 {
					t.Fatalf("instance %d (n=%d): fast optimum %.12g != seed optimum %.12g",
						k, len(items), got.Cost, want.Cost)
				}
				if !got.Optimal || !want.Optimal {
					t.Fatalf("instance %d: unlimited solves must prove optimality (fast=%v seed=%v)",
						k, got.Optimal, want.Optimal)
				}
				if len(got.Choice) != len(items) {
					t.Fatalf("instance %d: choice has %d entries, want %d", k, len(got.Choice), len(items))
				}
				for i, c := range got.Choice {
					if c < 0 || c >= len(items[i].Candidates) {
						t.Fatalf("instance %d: item %d choice %d out of range [0,%d)",
							k, i, c, len(items[i].Candidates))
					}
				}
				if recomputed := costOf(pr.p, items, got.Choice); math.Abs(recomputed-got.Cost) > 1e-9 {
					t.Fatalf("instance %d: reported cost %g != recomputed %g", k, got.Cost, recomputed)
				}
				if got.LowerBound > got.Cost+1e-9 {
					t.Fatalf("instance %d: lower bound %g exceeds cost %g", k, got.LowerBound, got.Cost)
				}
			}
		})
	}
}

// TestDifferentialSolverRejectsSameInputs checks the two solvers agree
// on invalid instances.
func TestDifferentialSolverRejectsSameInputs(t *testing.T) {
	cases := map[string][]Item{
		"empty":               nil,
		"no candidates":       {{Rating: 2}},
		"non-positive rating": {{Candidates: []core.Interval{{Begin: 1, End: 3}}, Rating: 0}},
	}
	for name, items := range cases {
		if _, err := BranchAndBound(sigma, items, Options{}); err == nil {
			t.Errorf("%s: fast solver accepted invalid input", name)
		}
		if _, err := refBranchAndBound(sigma, items, Options{}); err == nil {
			t.Errorf("%s: seed solver accepted invalid input", name)
		}
	}
}

// TestSolverWorkersBitIdentical is the determinism contract of
// Options.Workers: the full Result — choice vector, cost bits, node
// count, optimality, lower bound — must be identical at every worker
// count, because subtrees never share incumbents and each subtree
// search is a pure function of the instance.
func TestSolverWorkersBitIdentical(t *testing.T) {
	for _, n := range []int{12, 18, 24} {
		items := randomItems(t, uint64(n), n)
		base, err := BranchAndBound(sigma, items, Options{RelGap: 1e-4, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := BranchAndBound(sigma, items, Options{RelGap: 1e-4, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != base.Cost { // bit identity, not tolerance
				t.Errorf("n=%d workers=%d: cost %.17g != serial %.17g", n, workers, got.Cost, base.Cost)
			}
			if got.LowerBound != base.LowerBound {
				t.Errorf("n=%d workers=%d: lower bound %.17g != serial %.17g", n, workers, got.LowerBound, base.LowerBound)
			}
			if got.Nodes != base.Nodes {
				t.Errorf("n=%d workers=%d: nodes %d != serial %d", n, workers, got.Nodes, base.Nodes)
			}
			if got.Optimal != base.Optimal {
				t.Errorf("n=%d workers=%d: optimal %v != serial %v", n, workers, got.Optimal, base.Optimal)
			}
			for i := range base.Choice {
				if got.Choice[i] != base.Choice[i] {
					t.Errorf("n=%d workers=%d: choice[%d] = %d != serial %d", n, workers, i, got.Choice[i], base.Choice[i])
					break
				}
			}
		}
	}
}

// TestSolverNeverWorseThanIncumbent: the branch-and-bound warm-starts
// from a greedy-plus-local-search incumbent, so its result can never
// cost more — even under a node budget that stops the search at once.
func TestSolverNeverWorseThanIncumbent(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		items := randomItems(t, seed, 15)
		ordered := make([]bbItem, len(items))
		for i, it := range items {
			ordered[i] = bbItem{Item: it, pos: i, energy: float64(it.Candidates[0].Len()) * it.Rating}
		}
		orderItems(ordered)
		warm := seedIncumbent(sigma, ordered, make([]int, len(ordered)))

		for _, opts := range []Options{{}, {NodeLimit: 1}, {NodeLimit: 100}} {
			res, err := BranchAndBound(sigma, items, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost > warm+1e-9 {
				t.Errorf("seed %d opts %+v: solver cost %g worse than incumbent %g", seed, opts, res.Cost, warm)
			}
		}
	}
}

// TestSolverLowerBoundBelowOptimum: on instances small enough to
// enumerate, the starved search's root lower bound must never exceed
// the true optimum (the bound-cascade validity property).
func TestSolverLowerBoundBelowOptimum(t *testing.T) {
	for k := 0; k < 50; k++ {
		rng := dist.New(uint64(k + 1000))
		items := corpusItems(rng, 1+rng.Intn(6))
		ex, err := Exhaustive(sigma, items)
		if err != nil {
			t.Fatal(err)
		}
		starved, err := BranchAndBound(sigma, items, Options{NodeLimit: 1})
		if err != nil {
			t.Fatal(err)
		}
		if starved.LowerBound > ex.Cost+1e-9 {
			t.Errorf("instance %d: root bound %g exceeds optimum %g", k, starved.LowerBound, ex.Cost)
		}
	}
}
