package solver

import (
	"errors"
	"math"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
	"enki/internal/profile"
)

var sigma = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func randomItems(t *testing.T, seed uint64, n int) []Item {
	t.Helper()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, n)
	for i, p := range gen.DrawN(n) {
		items[i] = ItemFromPreference(p.Wide, p.Rating)
	}
	return items
}

func costOf(p pricing.Pricer, items []Item, choice []int) float64 {
	var load core.Load
	for i, c := range choice {
		load.AddInterval(items[i].Candidates[c], items[i].Rating)
	}
	return pricing.Cost(p, load)
}

func TestItemFromPreference(t *testing.T) {
	it := ItemFromPreference(core.MustPreference(18, 22, 2), 2)
	if len(it.Candidates) != 3 {
		t.Fatalf("expected 3 candidates, got %d", len(it.Candidates))
	}
	want := []core.Interval{{Begin: 18, End: 20}, {Begin: 19, End: 21}, {Begin: 20, End: 22}}
	for i, w := range want {
		if it.Candidates[i] != w {
			t.Errorf("candidate %d = %v, want %v", i, it.Candidates[i], w)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Exhaustive(sigma, nil); !errors.Is(err, ErrNoItems) {
		t.Errorf("empty instance should return ErrNoItems, got %v", err)
	}
	if _, err := BranchAndBound(sigma, nil, Options{}); !errors.Is(err, ErrNoItems) {
		t.Errorf("empty instance should return ErrNoItems, got %v", err)
	}
	noCands := []Item{{Rating: 2}}
	if _, err := Exhaustive(sigma, noCands); err == nil {
		t.Error("item with no candidates should be rejected")
	}
	badRating := []Item{{Candidates: []core.Interval{{Begin: 18, End: 20}}, Rating: 0}}
	if _, err := BranchAndBound(sigma, badRating, Options{}); err == nil {
		t.Error("item with zero rating should be rejected")
	}
}

func TestExhaustiveTwoHouseholds(t *testing.T) {
	// Two identical (18, 20, 1) requests: the optimum separates them.
	items := []Item{
		ItemFromPreference(core.MustPreference(18, 20, 1), 2),
		ItemFromPreference(core.MustPreference(18, 20, 1), 2),
	}
	res, err := Exhaustive(sigma, items)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Error("exhaustive result must be optimal")
	}
	// Separated: cost = σ·(2² + 2²) = 0.3·8 = 2.4. Stacked: σ·4² = 4.8.
	if math.Abs(res.Cost-2.4) > 1e-9 {
		t.Errorf("cost = %g, want 2.4 (separated)", res.Cost)
	}
	ivs := res.Intervals(items)
	if ivs[0] == ivs[1] {
		t.Errorf("optimal placement must separate the households, got %v and %v", ivs[0], ivs[1])
	}
}

func TestExhaustivePaperExample3(t *testing.T) {
	// Example 3: χ_A = (16,18,2), χ_B = χ_C = (18,21,2). The optimum
	// keeps A at (16,18) and separates B and C as (18,20)/(19,21),
	// giving peak 4 kWh (one overlap hour) — cost σ(4+4+4+16+4) = σ·32
	// with r=2: loads are 2,2 (16-18), then B/C overlap pattern.
	items := []Item{
		ItemFromPreference(core.MustPreference(16, 18, 2), 2),
		ItemFromPreference(core.MustPreference(18, 21, 2), 2),
		ItemFromPreference(core.MustPreference(18, 21, 2), 2),
	}
	res, err := Exhaustive(sigma, items)
	if err != nil {
		t.Fatal(err)
	}
	ivs := res.Intervals(items)
	if ivs[0] != (core.Interval{Begin: 16, End: 18}) {
		t.Errorf("A must stay at (16,18), got %v", ivs[0])
	}
	if ivs[1] == ivs[2] {
		t.Errorf("B and C must be separated, got %v and %v", ivs[1], ivs[2])
	}
	// B and C windows are (18,21): placements (18,20) and (19,21)
	// overlap at hour 19 → loads 2,2,2,4,2 → Σl² = 32, cost 9.6.
	if math.Abs(res.Cost-9.6) > 1e-9 {
		t.Errorf("cost = %g, want 9.6", res.Cost)
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		items := randomItems(t, seed, 7)
		ex, err := Exhaustive(sigma, items)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(sigma, items, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !bb.Optimal {
			t.Fatalf("seed %d: branch-and-bound not proven optimal", seed)
		}
		if math.Abs(ex.Cost-bb.Cost) > 1e-9 {
			t.Errorf("seed %d: exhaustive cost %g != branch-and-bound cost %g", seed, ex.Cost, bb.Cost)
		}
		// The reported cost must equal the cost of the reported choice.
		if recomputed := costOf(sigma, items, bb.Choice); math.Abs(recomputed-bb.Cost) > 1e-9 {
			t.Errorf("seed %d: reported cost %g != recomputed %g", seed, bb.Cost, recomputed)
		}
	}
}

func TestBranchAndBoundMatchesExhaustivePiecewise(t *testing.T) {
	tariff, err := pricing.NewPiecewise([]pricing.Step{{Threshold: 0, Rate: 1}, {Threshold: 4, Rate: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(20); seed <= 26; seed++ {
		items := randomItems(t, seed, 6)
		ex, err := Exhaustive(tariff, items)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(tariff, items, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ex.Cost-bb.Cost) > 1e-9 {
			t.Errorf("seed %d: piecewise exhaustive %g != branch-and-bound %g", seed, ex.Cost, bb.Cost)
		}
	}
}

func TestBranchAndBoundLargerInstance(t *testing.T) {
	items := randomItems(t, 99, 14)
	res, err := BranchAndBound(sigma, items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Error("unlimited search must prove optimality")
	}
	if recomputed := costOf(sigma, items, res.Choice); math.Abs(recomputed-res.Cost) > 1e-9 {
		t.Errorf("reported cost %g != recomputed %g", res.Cost, recomputed)
	}
	if math.Abs(res.LowerBound-res.Cost) > 1e-9 {
		t.Errorf("proven-optimal result must report LowerBound = Cost, got %g vs %g",
			res.LowerBound, res.Cost)
	}
	for i, c := range res.Choice {
		if c < 0 || c >= len(items[i].Candidates) {
			t.Fatalf("choice %d = %d out of range", i, c)
		}
	}
}

func TestBranchAndBoundGapReporting(t *testing.T) {
	// At paper scale (n = 40+) exact proof is out of reach (the reason
	// the paper reaches for CPLEX); a time-limited solve must still
	// report a valid root lower bound and a sane gap.
	items := randomItems(t, 77, 40)
	res, err := BranchAndBound(sigma, items, Options{TimeLimit: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Skip("instance unexpectedly solved to optimality; gap path not exercised")
	}
	if res.LowerBound <= 0 || res.LowerBound > res.Cost {
		t.Errorf("lower bound %g must be in (0, %g]", res.LowerBound, res.Cost)
	}
	if g := res.Gap(); g < 0 || g > 0.25 {
		t.Errorf("gap %g outside the plausible band [0, 0.25]", g)
	}
}

func TestRelaxBoundNeverExceedsOptimum(t *testing.T) {
	// The root relaxation must lower-bound the exhaustive optimum.
	for seed := uint64(40); seed < 48; seed++ {
		items := randomItems(t, seed, 6)
		ex, err := Exhaustive(sigma, items)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(sigma, items, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// With an unlimited search LowerBound equals Cost; re-derive the
		// root bound through a deliberately starved search instead.
		starved, err := BranchAndBound(sigma, items, Options{NodeLimit: 1})
		if err != nil {
			t.Fatal(err)
		}
		if starved.LowerBound > ex.Cost+1e-9 {
			t.Errorf("seed %d: root relaxation %g exceeds optimum %g", seed, starved.LowerBound, ex.Cost)
		}
		if math.Abs(bb.Cost-ex.Cost) > 1e-9 {
			t.Errorf("seed %d: optima disagree: %g vs %g", seed, bb.Cost, ex.Cost)
		}
	}
}

func TestBranchAndBoundNodeLimit(t *testing.T) {
	items := randomItems(t, 5, 25)
	res, err := BranchAndBound(sigma, items, Options{NodeLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Error("limited search must not claim optimality")
	}
	// The incumbent must still be a feasible, correctly costed placement.
	if recomputed := costOf(sigma, items, res.Choice); math.Abs(recomputed-res.Cost) > 1e-9 {
		t.Errorf("limited incumbent cost %g != recomputed %g", res.Cost, recomputed)
	}
}

func TestBranchAndBoundTimeLimit(t *testing.T) {
	items := randomItems(t, 8, 40)
	start := time.Now()
	res, err := BranchAndBound(sigma, items, Options{TimeLimit: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("time-limited solve took %v", elapsed)
	}
	if recomputed := costOf(sigma, items, res.Choice); math.Abs(recomputed-res.Cost) > 1e-9 {
		t.Errorf("time-limited incumbent cost %g != recomputed %g", res.Cost, recomputed)
	}
}

func TestBranchAndBoundSingleItem(t *testing.T) {
	items := []Item{ItemFromPreference(core.MustPreference(18, 22, 2), 2)}
	res, err := BranchAndBound(sigma, items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Any placement of a single item costs σ·2·4 = 2.4.
	if math.Abs(res.Cost-2.4) > 1e-9 {
		t.Errorf("single-item cost = %g, want 2.4", res.Cost)
	}
	if !res.Optimal {
		t.Error("single-item solve must be optimal")
	}
}

func TestResultIntervals(t *testing.T) {
	items := []Item{
		ItemFromPreference(core.MustPreference(18, 22, 2), 2),
		ItemFromPreference(core.MustPreference(16, 20, 2), 2),
	}
	res, err := BranchAndBound(sigma, items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ivs := res.Intervals(items)
	if len(ivs) != 2 {
		t.Fatalf("Intervals returned %d entries", len(ivs))
	}
	for i, iv := range ivs {
		if iv != items[i].Candidates[res.Choice[i]] {
			t.Errorf("interval %d = %v mismatch with choice", i, iv)
		}
	}
}
