package solver

import (
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enki/internal/core"
	"enki/internal/obs"
	"enki/internal/parallel"
	"enki/internal/pricing"
)

// Search tuning. The frontier size is a function of the instance only —
// never of Options.Workers — so the subtree decomposition, and with it
// every node count and prune decision, is identical at every worker
// count.
const (
	// frontierTarget is the number of root subtrees the serial expansion
	// aims for before handing them to the pool: enough to keep any sane
	// worker count busy, few enough that the expansion itself is cheap.
	frontierTarget = 96
	// relaxSweepsRoot/relaxSweepsNode are the block-coordinate-descent
	// sweep counts for the convex relaxation at the root (where the
	// bound's quality sets up reduced-cost fixing) and at interior nodes
	// (where the iterate is warm-started from the parent's, so a single
	// sweep recovers most of the bound at a fraction of the cost).
	relaxSweepsRoot = 50
	relaxSweepsNode = 1
	// relaxMinRemaining gates the interior relaxation bound: with fewer
	// unplaced items the cheap bounds already prune well and the
	// relaxation's setup cost outweighs its extra strength.
	relaxMinRemaining = 2
	// limitCheckStride is how many nodes a worker explores between
	// wall-clock deadline checks, mirroring the seed's nodes%256 cadence.
	limitCheckStride = 256
	// diveBudget is the node allowance of the serial dive phase that
	// tightens the shared incumbent before the frontier fans out. Every
	// subtree prunes against the dive's best, so a near-optimal warm
	// start here shrinks the whole parallel search; the dive is serial
	// and budgeted by its own node count, so it is deterministic and its
	// result independent of Options.Workers.
	diveBudget = 20000
	// memoCap bounds one searcher's transposition table. Past the cap
	// lookups continue but inserts stop: revisited states re-explore,
	// which costs time but never correctness, so memory stays bounded on
	// adversarial instances.
	memoCap = 1 << 21
)

// cappedWaterLevel returns the level λ such that raising every entry of
// levels (ascending) below λ toward λ — but by at most cap each —
// absorbs exactly energy. It is the water level of the rating-capped
// relaxation: a household can put at most its rating into one hour.
// F(λ) = Σ_h min(max(λ−l_h,0), limit) is piecewise linear with slope
// breakpoints at each l_h (+1) and l_h+limit (−1); both sequences are
// already sorted, so one merge sweep finds the segment containing
// energy.
func cappedWaterLevel(levels []float64, limit, energy float64) float64 {
	m := len(levels)
	lambda := levels[0]
	filled := 0.0
	slope := 0.0
	i, j := 0, 0
	for i < m || j < m {
		var ev float64
		up := j >= m || (i < m && levels[i] <= levels[j]+limit)
		if up {
			ev = levels[i]
		} else {
			ev = levels[j] + limit
		}
		if slope > 0 {
			if next := filled + slope*(ev-lambda); next >= energy {
				return lambda + (energy-filled)/slope
			} else {
				filled = next
			}
		}
		lambda = ev
		if up {
			slope++
			i++
		} else {
			slope--
			j++
		}
	}
	// energy ≥ total capacity m·limit (equality up to rounding): every
	// slot saturates.
	return lambda
}

// costModel devirtualizes the pricer on the search hot path: the
// paper's Quadratic pricer (Eq. 1) — the common case — runs inline
// per-slot arithmetic identical to what the pricing helpers compute
// (same expressions in the same order, so the floats match bit for
// bit); any other Pricer falls back to interface dispatch.
type costModel struct {
	p     pricing.Pricer
	sigma float64
	quad  bool
}

func newCostModel(p pricing.Pricer) costModel {
	if q, ok := p.(pricing.Quadratic); ok {
		return costModel{p: p, sigma: q.Sigma, quad: true}
	}
	return costModel{p: p}
}

func (m *costModel) hourCost(l float64) float64 {
	if m.quad {
		return m.sigma * l * l
	}
	return m.p.HourCost(l)
}

func (m *costModel) marginalRate(l float64) float64 {
	if m.quad {
		return 2 * m.sigma * l
	}
	return m.p.MarginalRate(l)
}

// cost is pricing.Cost without the dispatch: Σ_h P_h(l_h), summed in
// hour order.
func (m *costModel) cost(load *core.Load) float64 {
	if m.quad {
		var sum float64
		for _, v := range load {
			sum += m.sigma * v * v
		}
		return sum
	}
	return pricing.Cost(m.p, *load)
}

// marginal is pricing.MarginalCost without the dispatch: the cost of
// adding iv at the given rating on top of load, accumulated slot by
// slot in slot order.
func (m *costModel) marginal(load *core.Load, iv core.Interval, rating float64) float64 {
	if m.quad {
		var delta float64
		for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
			l := load[h]
			lr := l + rating
			delta += m.sigma*lr*lr - m.sigma*l*l
		}
		return delta
	}
	return pricing.MarginalCost(m.p, load, iv, rating)
}

// searchStats are one searcher's deterministic effort counters. Every
// subtree accumulates its own and the driver sums them in frontier
// order, so the totals are identical at every worker count.
type searchStats struct {
	nodes            int64
	prunedSuper      uint64
	prunedWater      uint64
	prunedRelax      uint64
	prunedChild      uint64
	prunedMemo       uint64
	incumbentUpdates uint64
}

func (s *searchStats) add(o *searchStats) {
	s.nodes += o.nodes
	s.prunedSuper += o.prunedSuper
	s.prunedWater += o.prunedWater
	s.prunedRelax += o.prunedRelax
	s.prunedChild += o.prunedChild
	s.prunedMemo += o.prunedMemo
	s.incumbentUpdates += o.incumbentUpdates
}

func (s *searchStats) pruned() uint64 {
	return s.prunedSuper + s.prunedWater + s.prunedRelax + s.prunedChild + s.prunedMemo
}

// searchCtx is the read-only shared state of one BranchAndBound run.
// After prepare() nothing in it mutates except the two atomics, so
// workers share it freely.
type searchCtx struct {
	model     costModel
	items     []bbItem
	n         int
	opts      Options
	incumbent float64 // warm-start cost every subtree prunes against
	gapMul    float64 // 1 − RelGap
	deadline  time.Time
	maxCands  int
	// latticeStep is the cost lattice of feasible schedules: with the
	// quadratic pricer and integral ratings sharing gcd g, every hourly
	// load is a multiple of g, so every feasible cost σ·Σl² is a multiple
	// of σ·g². Any lower bound may then be rounded up to the next lattice
	// point — a free tightening of up to σg² at every prune test,
	// decisive deep in the tree where bounds sit a fraction of a step
	// below the incumbent. 0 disables rounding.
	latticeStep float64
	// gridUnit is g itself (0 when the lattice is disabled): loads live
	// on g·ℤ, which upgrades the union water-filling bound from a
	// continuous pour to an exact discrete one.
	gridUnit float64
	// memoOK enables the per-subtree transposition table: it requires
	// the lattice (integral ratings make loads exact, so the packed key
	// is collision-free) and per-slot loads that fit a byte.
	memoOK bool

	sameAsPrev   []bool
	energySuffix []float64
	slotUnion    []uint32 // bitmask of hours items i.. may occupy
	slots        [][]int  // sorted occupiable hours per item

	nodeCount atomic.Int64 // NodeLimit enforcement only; totals come from stats
	limited   atomic.Bool
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// roundBound rounds a valid lower bound up to the feasible-cost
// lattice. The epsilon guard absorbs float drift in the bound so a
// value representing a lattice point never rounds past it.
func (sc *searchCtx) roundBound(b float64) float64 {
	if sc.latticeStep == 0 {
		return b
	}
	return sc.latticeStep * math.Ceil(b/sc.latticeStep-1e-6)
}

// prepare derives the per-level search tables from the (possibly
// candidate-filtered) item list.
func (sc *searchCtx) prepare() {
	n := sc.n
	sc.sameAsPrev = make([]bool, n)
	for i := 1; i < n; i++ {
		a, b := &sc.items[i-1], &sc.items[i]
		// Full-list equality (not just length and first candidate): after
		// reduced-cost fixing the lists are no longer contiguous deferment
		// runs, so only identical lists license the symmetry cut.
		sc.sameAsPrev[i] = a.Rating == b.Rating && slices.Equal(a.Candidates, b.Candidates)
	}
	sc.energySuffix = make([]float64, n+1)
	sc.slotUnion = make([]uint32, n+1)
	sc.slots = make([][]int, n)
	sc.maxCands = 0
	for i := n - 1; i >= 0; i-- {
		it := &sc.items[i]
		if len(it.Candidates) > sc.maxCands {
			sc.maxCands = len(it.Candidates)
		}
		sc.energySuffix[i] = sc.energySuffix[i+1] + it.energy
		var mask uint32
		for _, iv := range it.Candidates {
			for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
				mask |= 1 << uint(h)
			}
		}
		for h := 0; h < core.HoursPerDay; h++ {
			if mask&(1<<uint(h)) != 0 {
				sc.slots[i] = append(sc.slots[i], h)
			}
		}
		sc.slotUnion[i] = sc.slotUnion[i+1] | mask
	}
}

// searcher is the per-subtree search state: a DFS stack plus reusable
// scratch for the bound computations. Searchers never communicate; each
// subtree's outcome depends only on the instance and the shared warm
// start.
type searcher struct {
	sc         *searchCtx
	load       core.Load
	curCost    float64
	choice     []int
	best       []int
	bestCost   float64
	found      bool
	st         searchStats
	sinceCheck int
	nodeBudget int64 // dive phase only: local node allowance, 0 = none
	exhausted  bool  // dive ran out of budget before finishing

	cands        []candEntry // n slabs of maxCands entries
	levels       []float64
	fracX        [][]float64
	levelScratch []float64
	candG        []float64 // n slabs: per-candidate gradient mass by level
	minC         []float64 // per level: min over that level's candG slab
	units        []int     // discrete water-filling scratch (lattice mode)
	memo         map[memoKey]struct{}
}

// memoKey is the exact state identity of a search node: the 24-hour
// load profile in grid units (three words of packed bytes) plus the
// depth. Two nodes with equal keys fix the same item set to loads that
// are bit-identical (integral ratings sum exactly), so their completion
// subtrees are interchangeable.
type memoKey [4]uint64

// loadKey packs the current load and depth. No hashing — distinct
// states never collide, so a memo hit is a proof, not a heuristic.
func (w *searcher) loadKey(depth int) (k memoKey) {
	inv := 1 / w.sc.gridUnit
	for h := 0; h < core.HoursPerDay; h++ {
		u := uint64(w.load[h]*inv + 0.5)
		k[h>>3] |= u << uint((h&7)*8)
	}
	k[3] = uint64(depth)
	return
}

type candEntry struct {
	idx  int32
	marg float64
}

func newSearcher(sc *searchCtx) *searcher {
	w := &searcher{sc: sc}
	n := sc.n
	w.choice = make([]int, n)
	w.best = make([]int, n)
	w.cands = make([]candEntry, n*sc.maxCands)
	w.levels = make([]float64, 0, core.HoursPerDay)
	w.levelScratch = make([]float64, 0, core.HoursPerDay)
	w.units = make([]int, 0, core.HoursPerDay)
	w.candG = make([]float64, n*sc.maxCands)
	w.minC = make([]float64, n)
	w.fracX = make([][]float64, n)
	for j := range sc.slots {
		w.fracX[j] = make([]float64, len(sc.slots[j]))
	}
	if sc.memoOK {
		w.memo = make(map[memoKey]struct{}, 1<<12)
	}
	return w
}

// initFrac resets the fractional relaxation iterate to the uniform
// spread for every item from level i on. reset calls it so a pooled
// searcher's starting iterate never depends on which subtrees it ran
// before — the property that keeps bound values, and therefore node
// counts, identical at every worker count.
func (w *searcher) initFrac(i int) {
	sc := w.sc
	for j := i; j < sc.n; j++ {
		ss := sc.slots[j]
		per := sc.items[j].energy / float64(len(ss))
		x := w.fracX[j]
		for k := range ss {
			x[k] = per
		}
	}
}

// reset prepares the searcher for one subtree rooted at nd.
func (w *searcher) reset(nd *frontierNode) {
	w.load = nd.load
	w.curCost = nd.curCost
	copy(w.choice, nd.choice)
	w.bestCost = w.sc.incumbent
	w.found = false
	w.st = searchStats{}
	w.sinceCheck = 0
	w.nodeBudget = 0
	w.exhausted = false
	w.initFrac(nd.depth)
	// The memo is valid only within one subtree: across subtrees the
	// acceptance threshold resets to the shared warm start, so an entry
	// explored under a tighter incumbent would wrongly prune a looser
	// revisit — and a stale table would also break the Workers:1≡N
	// bit-identity, since pooled searchers see different task histories.
	if w.memo != nil {
		clear(w.memo)
	}
}

// checkLimits counts one node against the limits and reports whether
// the search must stop. NodeLimit is enforced exactly (one atomic per
// node — precision over speed when the caller asked for a cap); the
// wall-clock deadline is polled every limitCheckStride nodes.
func (w *searcher) checkLimits() bool {
	sc := w.sc
	if sc.opts.NodeLimit > 0 && sc.nodeCount.Add(1) > sc.opts.NodeLimit {
		sc.limited.Store(true)
		return true
	}
	if sc.limited.Load() {
		return true
	}
	w.sinceCheck++
	if w.sinceCheck >= limitCheckStride {
		w.sinceCheck = 0
		if !sc.deadline.IsZero() && time.Now().After(sc.deadline) {
			sc.limited.Store(true)
			return true
		}
	}
	return false
}

// record registers a completed assignment against the subtree-local
// incumbent.
func (w *searcher) record(choice []int, cost float64) {
	if cost < w.bestCost {
		w.bestCost = cost
		w.found = true
		w.st.incumbentUpdates++
		copy(w.best, choice)
	}
}

// dfs explores the subtree below the current partial assignment of
// items [0, i).
func (w *searcher) dfs(i int) {
	sc := w.sc
	w.st.nodes++
	if w.nodeBudget > 0 && w.st.nodes > w.nodeBudget {
		w.exhausted = true
		return
	}
	if w.checkLimits() {
		return
	}
	if i == sc.n {
		w.record(w.choice, sc.model.cost(&w.load))
		return
	}
	// Transposition: a state (depth, load) already explored in this
	// subtree had the same completion set under a threshold at least as
	// loose as the current one (the subtree incumbent only tightens), and
	// leaf costs are exact functions of the load alone — so a revisit can
	// contribute nothing and the whole subtree is cut. Entries are marked
	// on entry; that stays sound because a bound-pruned first visit
	// proved no improving completion, and a budget- or limit-truncated
	// one unwinds the searcher immediately, so no later lookup trusts it.
	if sc.memoOK {
		mk := w.loadKey(i)
		if _, seen := w.memo[mk]; seen {
			w.st.prunedMemo++
			return
		}
		if len(w.memo) < memoCap {
			w.memo[mk] = struct{}{}
		}
	}

	acc := w.bestCost * sc.gapMul

	// Bound cascade, cheapest first. Superadditivity: completing the
	// schedule costs at least each remaining item's best-case marginal
	// on the current load (convexity makes marginals superadditive).
	bound := w.curCost
	for j := i; j < sc.n; j++ {
		bound += w.minMarginal(j)
		if sc.roundBound(bound) >= acc {
			w.st.prunedSuper++
			return
		}
	}
	// Union water-filling: spread the remaining energy optimally over
	// the remaining items' joint feasible hours, ignoring windows.
	if sc.roundBound(w.waterfillBound(i)) >= acc {
		w.st.prunedWater++
		return
	}
	// Window-respecting convex relaxation, linearized into a certified
	// bound — strongest and priciest. Its gradient doubles as a
	// per-child reduced-cost test below.
	haveFW := sc.n-i >= relaxMinRemaining
	var fw float64
	if haveFW {
		if fw = w.relaxBound(i, relaxSweepsNode, nil); sc.roundBound(fw) >= acc {
			w.st.prunedRelax++
			return
		}
	}
	cg := w.candG[i*sc.maxCands:]
	fwBase := fw - w.minC[i]

	it := &sc.items[i]
	cands := w.cands[i*sc.maxCands : i*sc.maxCands+len(it.Candidates)]
	for c, iv := range it.Candidates {
		cands[c] = candEntry{idx: int32(c), marg: sc.model.marginal(&w.load, iv, it.Rating)}
	}
	// Insertion sort: candidate lists are at most 24 long and often
	// nearly sorted; no allocation, deterministic order.
	for a := 1; a < len(cands); a++ {
		e := cands[a]
		b := a - 1
		for b >= 0 && cands[b].marg > e.marg {
			cands[b+1] = cands[b]
			b--
		}
		cands[b+1] = e
	}

	minIdx := 0
	if sc.sameAsPrev[i] {
		minIdx = w.choice[i-1]
	}
	for _, c := range cands {
		if sc.roundBound(w.curCost+c.marg) >= acc {
			// Candidates are sorted by marginal: every later child is at
			// least as expensive, so the whole remainder is cut (rounding
			// is monotone, so the sorted break stays valid).
			w.st.prunedChild++
			break
		}
		if int(c.idx) < minIdx {
			continue
		}
		// Reduced cost: forcing this candidate tightens the node's
		// Frank–Wolfe bound from minC to its own gradient mass.
		if haveFW && sc.roundBound(fwBase+cg[c.idx]) >= acc {
			w.st.prunedChild++
			continue
		}
		iv := it.Candidates[c.idx]
		w.load.AddInterval(iv, it.Rating)
		w.curCost += c.marg
		w.choice[i] = int(c.idx)
		w.dfs(i + 1)
		w.curCost -= c.marg
		w.load.RemoveInterval(iv, it.Rating)
		if w.exhausted || sc.limited.Load() {
			return
		}
		// The recursion may have improved the subtree incumbent.
		acc = w.bestCost * sc.gapMul
	}
}

// minMarginal is the cheapest placement of item j on the current load.
func (w *searcher) minMarginal(j int) float64 {
	it := &w.sc.items[j]
	m := &w.sc.model
	best := m.marginal(&w.load, it.Candidates[0], it.Rating)
	for _, iv := range it.Candidates[1:] {
		if v := m.marginal(&w.load, iv, it.Rating); v < best {
			best = v
		}
	}
	return best
}

// waterfillBound lower-bounds any completion from level i: the
// remaining energy is spread over the remaining items' joint feasible
// hours as if windows did not bind — the convex-cost-minimal
// water-filling profile — and hours outside the union pay their
// already-fixed cost.
func (w *searcher) waterfillBound(i int) float64 {
	sc := w.sc
	union := sc.slotUnion[i]
	if union == 0 {
		return w.curCost
	}
	m := &sc.model
	var fixed float64
	levels := w.levels[:0]
	for h := 0; h < core.HoursPerDay; h++ {
		if union&(1<<uint(h)) != 0 {
			levels = append(levels, w.load[h])
		} else {
			fixed += m.hourCost(w.load[h])
		}
	}
	slices.Sort(levels)
	if sc.gridUnit > 0 {
		// Loads live on g·ℤ, so the exact discrete pour is both valid
		// and strictly tighter than the continuous one plus rounding.
		return fixed + w.discreteFill(levels, sc.gridUnit, sc.energySuffix[i])
	}
	lambda := waterLevel(levels, sc.energySuffix[i])
	var cost float64
	for _, lv := range levels {
		if lv < lambda {
			lv = lambda
		}
		cost += m.hourCost(lv)
	}
	return fixed + cost
}

// discreteFill pours energy (a multiple of g) onto the ascending levels
// (all multiples of g) in units of g, lowest level first — the exact
// minimum of the separable discrete convex cost, computed by leveling
// bands between breakpoints instead of unit-by-unit. It lower-bounds
// any integral completion because every placement raises whole slots by
// whole ratings, all multiples of g.
func (w *searcher) discreteFill(levels []float64, g, energy float64) float64 {
	m := &w.sc.model
	q := int(math.Round(energy / g))
	H := len(levels)
	us := w.units[:0]
	for _, lv := range levels {
		us = append(us, int(math.Round(lv/g)))
	}
	w.units = us

	T := us[0] // common level of the bottom band
	k := 0     // slots [0..k] are in the band
	need := 0  // units consumed so far
	for {
		for k+1 < H && us[k+1] <= T {
			k++
		}
		width := k + 1
		gapTo := q - need + 1 // sentinel: no breakpoint left
		if k+1 < H {
			gapTo = (us[k+1] - T) * width
		}
		if need+gapTo > q {
			rem := q - need
			lift := rem / width
			r := rem - lift*width
			T += lift
			// width−r slots settle at T, r slots take one extra unit;
			// slots above the band keep their level.
			cost := float64(width-r)*m.hourCost(float64(T)*g) + float64(r)*m.hourCost(float64(T+1)*g)
			for j := k + 1; j < H; j++ {
				cost += m.hourCost(float64(us[j]) * g)
			}
			return cost
		}
		need += gapTo
		T = us[k+1]
	}
}

// relaxBound lower-bounds any completion from level i via the
// window-respecting convex relaxation: each remaining item's energy may
// spread fractionally over its own feasible hours. Block-coordinate
// descent (water-filling one item at a time) approaches the relaxed
// optimum from above, so the iterate itself is not a bound; the
// Frank–Wolfe linearization f(x) + min_y ⟨∇f(x), y−x⟩ is valid at any
// iterate when y ranges over a set containing every integral schedule,
// and the inner minimum splits per item into its cheapest-gradient
// CANDIDATE (tighter than the cheapest single hour, since an integral
// item must cover a whole candidate interval). The iterate warm-starts
// from w.fracX — maintained across the subtree's DFS, reset per subtree
// by initFrac — so one sweep recovers most of the bound.
//
// Side outputs: level i's candG slab holds the gradient mass
// r_i·Σ_{h∈c} grad_h per candidate c and minC[i] its minimum (dfs
// prunes children with them: forcing candidate c tightens the bound by
// candG[c]−minC[i]); when g is non-nil the load gradient is stored
// there (the root uses it for reduced-cost candidate fixing).
func (w *searcher) relaxBound(i, sweeps int, g *[core.HoursPerDay]float64) float64 {
	sc := w.sc
	n := sc.n
	if i >= n {
		return w.curCost
	}
	m := &sc.model
	load := w.load
	for j := i; j < n; j++ {
		ss := sc.slots[j]
		x := w.fracX[j]
		for k, h := range ss {
			load[h] += x[k]
		}
	}
	for s := 0; s < sweeps; s++ {
		for j := i; j < n; j++ {
			ss := sc.slots[j]
			x := w.fracX[j]
			for k, h := range ss {
				load[h] -= x[k]
			}
			scratch := w.levelScratch[:0]
			for _, h := range ss {
				scratch = append(scratch, load[h])
			}
			// Insertion sort: ≤24 entries, nearly sorted on later sweeps.
			for a := 1; a < len(scratch); a++ {
				e := scratch[a]
				b := a - 1
				for b >= 0 && scratch[b] > e {
					scratch[b+1] = scratch[b]
					b--
				}
				scratch[b+1] = e
			}
			w.levelScratch = scratch
			// Rating-capped fill: an integral item puts at most its
			// rating into one hour, and capping the fractional iterate
			// the same way keeps it near the integral geometry, which
			// sharpens both f(x) and the gradient the bound uses.
			it := &sc.items[j]
			lambda := cappedWaterLevel(scratch, it.Rating, it.energy)
			for k, h := range ss {
				add := lambda - load[h]
				if add < 0 {
					add = 0
				} else if add > it.Rating {
					add = it.Rating
				}
				x[k] = add
				load[h] += add
			}
		}
	}

	var f float64
	var grad [core.HoursPerDay]float64
	for h := 0; h < core.HoursPerDay; h++ {
		f += m.hourCost(load[h])
		grad[h] = m.marginalRate(load[h])
	}
	bound := f
	for j := i; j < n; j++ {
		it := &sc.items[j]
		var minC float64
		if j == i {
			// Export the branching level's per-candidate masses.
			cg := w.candG[i*sc.maxCands:]
			for c, iv := range it.Candidates {
				var sum float64
				for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
					sum += grad[h]
				}
				sum *= it.Rating
				cg[c] = sum
				if c == 0 || sum < minC {
					minC = sum
				}
			}
			w.minC[i] = minC
		} else {
			for c, iv := range it.Candidates {
				var sum float64
				for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
					sum += grad[h]
				}
				if sum*it.Rating < minC || c == 0 {
					minC = sum * it.Rating
				}
			}
		}
		ss := sc.slots[j]
		var dot float64
		for k, h := range ss {
			dot += grad[h] * w.fracX[j][k]
		}
		bound += minC - dot
	}
	if g != nil {
		*g = grad
	}
	return bound
}

// frontierNode is one subtree root produced by the serial frontier
// expansion: items [0, depth) are fixed to choice, yielding load and
// incremental cost curCost.
type frontierNode struct {
	depth   int
	curCost float64
	load    core.Load
	choice  []int
}

// expand pops the node and pushes its surviving children, mirroring one
// dfs level: same bound cascade, same candidate order, same symmetry
// cut, same prune accounting — so the frontier is exactly the set of
// subtrees a serial search would have entered.
func (w *searcher) expand(nd *frontierNode, queue *[]frontierNode) {
	sc := w.sc
	w.load = nd.load
	w.curCost = nd.curCost
	i := nd.depth

	w.st.nodes++
	if w.checkLimits() {
		return
	}
	acc := w.bestCost * sc.gapMul
	bound := w.curCost
	for j := i; j < sc.n; j++ {
		bound += w.minMarginal(j)
		if sc.roundBound(bound) >= acc {
			w.st.prunedSuper++
			return
		}
	}
	if sc.roundBound(w.waterfillBound(i)) >= acc {
		w.st.prunedWater++
		return
	}
	haveFW := sc.n-i >= relaxMinRemaining
	var fw float64
	if haveFW {
		if fw = w.relaxBound(i, relaxSweepsNode, nil); sc.roundBound(fw) >= acc {
			w.st.prunedRelax++
			return
		}
	}
	cg := w.candG[i*sc.maxCands:]
	fwBase := fw - w.minC[i]

	it := &sc.items[i]
	cands := w.cands[:len(it.Candidates)]
	for c, iv := range it.Candidates {
		cands[c] = candEntry{idx: int32(c), marg: sc.model.marginal(&w.load, iv, it.Rating)}
	}
	for a := 1; a < len(cands); a++ {
		e := cands[a]
		b := a - 1
		for b >= 0 && cands[b].marg > e.marg {
			cands[b+1] = cands[b]
			b--
		}
		cands[b+1] = e
	}
	minIdx := 0
	if sc.sameAsPrev[i] && i > 0 {
		minIdx = nd.choice[i-1]
	}
	for _, c := range cands {
		if sc.roundBound(w.curCost+c.marg) >= acc {
			w.st.prunedChild++
			break
		}
		if int(c.idx) < minIdx {
			continue
		}
		if haveFW && sc.roundBound(fwBase+cg[c.idx]) >= acc {
			w.st.prunedChild++
			continue
		}
		child := frontierNode{
			depth:   i + 1,
			curCost: w.curCost + c.marg,
			load:    w.load,
			choice:  make([]int, i+1, sc.n),
		}
		copy(child.choice, nd.choice)
		child.choice[i] = int(c.idx)
		child.load.AddInterval(it.Candidates[c.idx], it.Rating)
		*queue = append(*queue, child)
	}
}

// orderItems sorts the instance into search order: most constrained
// (fewest candidates) first, then biggest energy, then earliest window,
// then rating — the seed's ordering, which both concentrates branching
// near the root and lands identical items adjacently for the symmetry
// cut.
func orderItems(ordered []bbItem) {
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if len(a.Candidates) != len(b.Candidates) {
			return len(a.Candidates) < len(b.Candidates)
		}
		if a.energy != b.energy {
			return a.energy > b.energy
		}
		if a.Candidates[0].Begin != b.Candidates[0].Begin {
			return a.Candidates[0].Begin < b.Candidates[0].Begin
		}
		return a.Rating < b.Rating
	})
}

// fixCandidates performs root reduced-cost fixing: with rootLB the
// Frank–Wolfe bound at the root iterate and grad its load gradient,
// forcing item j onto candidate c tightens the bound from j's
// cheapest-candidate gradient mass to c's own —
// rootLB − min_c' r_j·Σ_{h∈c'} grad_h + r_j·Σ_{h∈c} grad_h; candidates
// whose tightened bound already reaches the acceptance threshold can
// never appear in an improving solution and are dropped. Filtered lists
// are fresh slices (caller-provided Candidates are never mutated), with
// bbItem.orig mapping filtered indices back to the caller's. Identical
// items lose identical candidates, so the symmetry cut survives fixing.
// Returns the number of candidates dropped, and ok=false when some item
// lost every candidate — proof that no solution beats the incumbent
// within the gap, so the caller can return the incumbent as optimal.
func fixCandidates(sc *searchCtx, rootLB float64, grad *[core.HoursPerDay]float64) (fixed int, ok bool) {
	threshold := sc.incumbent * sc.gapMul
	masses := make([]float64, 0, sc.maxCands)
	for j := range sc.items {
		it := &sc.items[j]
		masses = masses[:0]
		var minC float64
		for c, iv := range it.Candidates {
			var sum float64
			for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
				sum += grad[h]
			}
			sum *= it.Rating
			masses = append(masses, sum)
			if c == 0 || sum < minC {
				minC = sum
			}
		}
		base := rootLB - minC
		keep := make([]core.Interval, 0, len(it.Candidates))
		orig := make([]int, 0, len(it.Candidates))
		for c, iv := range it.Candidates {
			if sc.roundBound(base+masses[c]) >= threshold {
				fixed++
				continue
			}
			keep = append(keep, iv)
			// Compose with any earlier fixing pass so orig always maps
			// back to the caller's candidate indices.
			orig = append(orig, it.orig[c])
		}
		if len(keep) == 0 {
			return fixed, false
		}
		it.Candidates = keep
		it.orig = orig
	}
	return fixed, true
}

// BranchAndBound solves Eq. 2 exactly (within Options.RelGap) by
// depth-first branch-and-bound warm-started from a greedy incumbent.
// See the package comment for the bound cascade, reduced-cost fixing,
// symmetry breaking, and the deterministic frontier parallelism; the
// differential suite holds this solver to the retained seed
// implementation's objectives over a seeded corpus.
func BranchAndBound(p pricing.Pricer, items []Item, opts Options) (Result, error) {
	if err := validate(items); err != nil {
		return Result{}, err
	}
	start := time.Now()

	ordered := make([]bbItem, len(items))
	for i, it := range items {
		ordered[i] = bbItem{Item: it, pos: i, energy: float64(it.Candidates[0].Len()) * it.Rating}
	}
	orderItems(ordered)
	n := len(ordered)

	// Warm start on the full candidate lists; incBest holds original
	// candidate indices per ordered position.
	incBest := make([]int, n)
	incumbent := seedIncumbent(p, ordered, incBest)

	sc := &searchCtx{
		model:     newCostModel(p),
		items:     ordered,
		n:         n,
		opts:      opts,
		incumbent: incumbent,
		gapMul:    1 - opts.RelGap,
	}
	if opts.TimeLimit > 0 {
		sc.deadline = start.Add(opts.TimeLimit)
	}
	if sc.model.quad && sc.model.sigma > 0 {
		// With integral ratings sharing gcd g, every hourly load is a
		// multiple of g, so every feasible cost σ·Σl² is a multiple of
		// σ·g² — the wider the gcd, the coarser (stronger) the lattice.
		g := 0
		for i := range ordered {
			r := ordered[i].Rating
			if r != math.Trunc(r) || r > 1<<20 {
				g = 0
				break
			}
			g = gcd(g, int(r))
		}
		if g > 0 {
			sc.latticeStep = sc.model.sigma * float64(g) * float64(g)
			sc.gridUnit = float64(g)
			// A slot's load never exceeds the sum of ratings, so when that
			// fits a byte of grid units the packed memo key is exact.
			var totalRating float64
			for i := range ordered {
				totalRating += ordered[i].Rating
			}
			sc.memoOK = totalRating/sc.gridUnit <= 255
		}
	}
	for i := range sc.items {
		it := &sc.items[i]
		it.orig = make([]int, len(it.Candidates))
		for c := range it.orig {
			it.orig[c] = c
		}
	}
	sc.prepare()

	res := Result{Choice: make([]int, n), Cost: incumbent, LowerBound: 0}
	for i := range ordered {
		res.Choice[ordered[i].pos] = incBest[i]
	}

	exp := newSearcher(sc)
	exp.initFrac(0)
	var rootGrad [core.HoursPerDay]float64
	rootLB := exp.relaxBound(0, relaxSweepsRoot, &rootGrad)
	// The optimum lives on the feasible-cost lattice, so the reported
	// bound may be rounded up to it. (The raw rootLB stays the base of
	// the reduced-cost fixing arithmetic, whose per-candidate bounds are
	// rounded individually.)
	res.LowerBound = sc.roundBound(rootLB)

	finish := func(total searchStats, frontierTasks, fixed int, limited bool) Result {
		res.Nodes = total.nodes
		res.Optimal = !limited
		if res.Optimal {
			res.LowerBound = res.Cost
		}
		observeSolve(&total, frontierTasks, fixed, limited, time.Since(start))
		return res
	}

	// Round the relaxation into an integral schedule; on near-integral
	// relaxations this lands on (or beside) the optimum and tightens the
	// incumbent before any node is explored.
	roundBest := make([]int, n)
	if rc := roundedIncumbent(&sc.model, ordered, &rootGrad, roundBest); rc < incumbent {
		incumbent = rc
		sc.incumbent = rc
		res.Cost = rc
		copy(incBest, roundBest)
		for i := range ordered {
			res.Choice[ordered[i].pos] = incBest[i]
		}
	}

	// The root bound may already certify the warm start.
	if sc.roundBound(rootLB) >= incumbent*sc.gapMul {
		return finish(searchStats{}, 0, 0, false), nil
	}

	// Branch first on the items whose relaxation placement is farthest
	// from any single candidate: each item's Frank–Wolfe slack
	// min_c⟨g,c⟩ − ⟨g,x_j⟩ is its contribution to the integrality error,
	// and fixing high-slack items integrally collapses that error fastest
	// (the MIP rule of branching on fractional variables). Identical
	// adjacent items share their group maximum so the symmetry cut keeps
	// its adjacency.
	slack := make([]float64, n)
	for j := 0; j < n; j++ {
		it := &ordered[j]
		var minC float64
		for c, iv := range it.Candidates {
			var sum float64
			for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
				sum += rootGrad[h]
			}
			sum *= it.Rating
			if c == 0 || sum < minC {
				minC = sum
			}
		}
		var dot float64
		for k, h := range sc.slots[j] {
			dot += rootGrad[h] * exp.fracX[j][k]
		}
		slack[j] = minC - dot
	}
	for j := 1; j < n; j++ {
		if sc.sameAsPrev[j] && slack[j-1] > slack[j] {
			slack[j] = slack[j-1]
		}
	}
	for j := n - 2; j >= 0; j-- {
		if sc.sameAsPrev[j+1] && slack[j+1] > slack[j] {
			slack[j] = slack[j+1]
		}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return slack[perm[a]] > slack[perm[b]] })
	permItems := make([]bbItem, n)
	permInc := make([]int, n)
	for i, p := range perm {
		permItems[i] = ordered[p]
		permInc[i] = incBest[p]
	}
	copy(ordered, permItems) // in place: sc.items aliases ordered
	copy(incBest, permInc)

	fixed, feasible := fixCandidates(sc, rootLB, &rootGrad)
	if !feasible {
		// Every completion through some item is bounded out: the warm
		// start is optimal within the gap.
		return finish(searchStats{}, 0, fixed, false), nil
	}
	sc.prepare() // reordering and filtering changed every search table
	exp = newSearcher(sc)

	// Serial dive: a budgeted depth-first pass that usually reaches a
	// (near-)optimal incumbent long before the budget runs out. Every
	// later subtree prunes against its result. If the dive finishes
	// inside the budget it has searched the whole tree and the frontier
	// never runs.
	root := frontierNode{choice: make([]int, 0, n)}
	exp.reset(&root)
	exp.nodeBudget = diveBudget
	exp.dfs(0)
	total := exp.st
	diveDone := !exp.exhausted
	if exp.found {
		sc.incumbent = exp.bestCost
		res.Cost = exp.bestCost
		for i := range ordered {
			res.Choice[ordered[i].pos] = ordered[i].orig[exp.best[i]]
		}
	}
	if diveDone || sc.limited.Load() {
		return finish(total, 0, fixed, sc.limited.Load()), nil
	}
	if exp.found {
		// The tighter incumbent may bound out more candidates.
		more, feasible := fixCandidates(sc, rootLB, &rootGrad)
		fixed += more
		if !feasible {
			return finish(total, 0, fixed, false), nil
		}
		sc.prepare()
	}

	// Serial frontier expansion: identical for every Options.Workers.
	queue := make([]frontierNode, 1, 4*frontierTarget)
	queue[0] = frontierNode{choice: make([]int, 0, n)}
	head := 0
	exp.reset(&queue[0])
	for head < len(queue) && len(queue)-head < frontierTarget && !sc.limited.Load() {
		nd := queue[head]
		head++
		if nd.depth == n {
			// The whole tree fit into the frontier budget.
			exp.st.nodes++
			if exp.checkLimits() {
				break
			}
			exp.record(nd.choice, sc.model.cost(&nd.load))
			continue
		}
		exp.expand(&nd, &queue)
	}
	total.add(&exp.st)

	tasks := queue[head:]
	type subtreeResult struct {
		found  bool
		cost   float64
		choice []int
		st     searchStats
	}
	results := make([]subtreeResult, len(tasks))
	if len(tasks) > 0 && !sc.limited.Load() {
		pool := sync.Pool{New: func() any { return newSearcher(sc) }}
		workers := opts.Workers
		if workers <= 0 {
			workers = 1
		}
		eng := parallel.Engine{Workers: workers}
		_ = eng.ForEach(len(tasks), func(i int) error {
			w := pool.Get().(*searcher)
			defer pool.Put(w)
			w.reset(&tasks[i])
			w.dfs(tasks[i].depth)
			r := &results[i]
			r.st = w.st
			if w.found {
				r.found = true
				r.cost = w.bestCost
				r.choice = append([]int(nil), w.best...)
			}
			return nil
		})
	}

	// Deterministic combination: the (dive-tightened) warm start, then
	// the expansion's leaves, then each subtree in frontier order;
	// strict improvement keeps the earliest winner on ties.
	bestCost, bestChoice := sc.incumbent, []int(nil)
	if exp.found {
		bestCost, bestChoice = exp.bestCost, exp.best
	}
	for i := range results {
		total.add(&results[i].st)
		if results[i].found && results[i].cost < bestCost {
			bestCost, bestChoice = results[i].cost, results[i].choice
		}
	}
	if bestChoice != nil {
		res.Cost = bestCost
		for i := range ordered {
			res.Choice[ordered[i].pos] = ordered[i].orig[bestChoice[i]]
		}
	}
	return finish(total, len(tasks), fixed, sc.limited.Load()), nil
}

// observeSolve records one solve in the default registry: total and
// per-bound pruned counters, deterministic effort counters, and the
// wall-clock node-rate gauge (exempt from the determinism contract,
// like every gauge).
func observeSolve(total *searchStats, frontierTasks, fixed int, limited bool, elapsed time.Duration) {
	reg := obs.Default()
	reg.Counter(obs.MetricSolverSolvesTotal).Inc()
	reg.Counter(obs.MetricSolverNodesExpanded).Add(uint64(total.nodes))
	reg.Counter(obs.MetricSolverNodesPruned).Add(total.pruned())
	reg.Counter(obs.MetricSolverNodesPruned, obs.LabelBound, obs.BoundSuperadditive).Add(total.prunedSuper)
	reg.Counter(obs.MetricSolverNodesPruned, obs.LabelBound, obs.BoundWaterfill).Add(total.prunedWater)
	reg.Counter(obs.MetricSolverNodesPruned, obs.LabelBound, obs.BoundRelaxation).Add(total.prunedRelax)
	reg.Counter(obs.MetricSolverNodesPruned, obs.LabelBound, obs.BoundChild).Add(total.prunedChild)
	reg.Counter(obs.MetricSolverNodesPruned, obs.LabelBound, obs.BoundMemo).Add(total.prunedMemo)
	reg.Counter(obs.MetricSolverIncumbentUpdates).Add(total.incumbentUpdates)
	reg.Counter(obs.MetricSolverFrontierTasks).Add(uint64(frontierTasks))
	reg.Counter(obs.MetricSolverCandidatesFixed).Add(uint64(fixed))
	if limited {
		reg.Counter(obs.MetricSolverLimitedTotal).Inc()
	}
	if s := elapsed.Seconds(); s > 0 {
		reg.Gauge(obs.MetricSolverNodeRate).Set(float64(total.nodes) / s)
	}
}
