package solver

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"enki/internal/core"
	"enki/internal/pricing"
)

func TestWaterLevelExact(t *testing.T) {
	tests := []struct {
		name   string
		levels []float64
		energy float64
		want   float64
	}{
		{"flat base", []float64{0, 0, 0, 0}, 8, 2},
		{"single slot", []float64{3}, 4, 7},
		{"staircase filled", []float64{0, 2, 4}, 3, 2.5}, // fill 0→2 (2), then two slots 0.5 each
		{"fills past all levels", []float64{1, 2}, 10, 6.5},
		{"zero energy", []float64{5, 7}, 0, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			levels := append([]float64(nil), tt.levels...)
			sort.Float64s(levels)
			got := waterLevel(levels, tt.energy)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("waterLevel(%v, %g) = %g, want %g", tt.levels, tt.energy, got, tt.want)
			}
		})
	}
}

// TestWaterLevelConservation: raising every level below λ to λ absorbs
// exactly the requested energy.
func TestWaterLevelConservation(t *testing.T) {
	prop := func(raw [6]uint8, eRaw uint16) bool {
		levels := make([]float64, len(raw))
		for i, v := range raw {
			levels[i] = float64(v) / 4
		}
		sort.Float64s(levels)
		energy := float64(eRaw) / 100
		lambda := waterLevel(levels, energy)
		var absorbed float64
		for _, l := range levels {
			if l < lambda {
				absorbed += lambda - l
			}
		}
		return math.Abs(absorbed-energy) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("water level does not conserve energy: %v", err)
	}
}

// TestWaterfillBoundIsLowerBound: for random small instances, the
// bbState waterfill bound at the root never exceeds the exhaustive
// optimum.
func TestWaterfillBoundIsLowerBound(t *testing.T) {
	p := pricing.Quadratic{Sigma: 0.3}
	mk := func(begin, width, dur int) Item {
		return ItemFromPreference(core.Preference{
			Window:   core.Interval{Begin: begin, End: begin + width},
			Duration: dur,
		}, 2)
	}
	instances := [][]Item{
		{mk(18, 4, 2), mk(18, 4, 2), mk(16, 6, 3)},
		{mk(0, 24, 1), mk(10, 8, 4), mk(12, 5, 2), mk(14, 4, 1)},
		{mk(20, 4, 2), mk(20, 4, 2), mk(20, 4, 2)},
	}
	for k, items := range instances {
		ex, err := Exhaustive(p, items)
		if err != nil {
			t.Fatal(err)
		}
		// Build a root bbState the way BranchAndBound does, then query
		// the bound directly.
		starved, err := BranchAndBound(p, items, Options{NodeLimit: 1})
		if err != nil {
			t.Fatal(err)
		}
		if starved.LowerBound > ex.Cost+1e-9 {
			t.Errorf("instance %d: root bound %g exceeds optimum %g", k, starved.LowerBound, ex.Cost)
		}
	}
}

func TestSeedIncumbentFeasible(t *testing.T) {
	p := pricing.Quadratic{Sigma: 0.3}
	items := []Item{
		ItemFromPreference(core.MustPreference(18, 22, 2), 2),
		ItemFromPreference(core.MustPreference(16, 24, 3), 2),
		ItemFromPreference(core.MustPreference(10, 14, 2), 2),
	}
	ordered := make([]bbItem, len(items))
	for i, it := range items {
		ordered[i] = bbItem{Item: it, pos: i, energy: float64(it.Candidates[0].Len()) * it.Rating}
	}
	best := make([]int, len(items))
	cost := seedIncumbent(p, ordered, best)
	if cost <= 0 {
		t.Fatalf("seed cost %g must be positive", cost)
	}
	var load core.Load
	for i, c := range best {
		if c < 0 || c >= len(ordered[i].Candidates) {
			t.Fatalf("seed choice %d out of range", c)
		}
		load.AddInterval(ordered[i].Candidates[c], ordered[i].Rating)
	}
	if got := pricing.Cost(p, load); math.Abs(got-cost) > 1e-9 {
		t.Errorf("seed cost %g != recomputed %g", cost, got)
	}
	// Local search means no single move improves.
	for i := range ordered {
		cur := ordered[i].Candidates[best[i]]
		load.RemoveInterval(cur, ordered[i].Rating)
		for _, iv := range ordered[i].Candidates {
			if m := pricing.MarginalCost(p, &load, iv, ordered[i].Rating); m <
				pricing.MarginalCost(p, &load, cur, ordered[i].Rating)-1e-9 {
				t.Errorf("seed not a local optimum: item %d can move to %v", i, iv)
			}
		}
		load.AddInterval(cur, ordered[i].Rating)
	}
}

func TestGapZeroCost(t *testing.T) {
	r := Result{Cost: 0, LowerBound: 0}
	if r.Gap() != 0 {
		t.Errorf("zero-cost gap = %g, want 0", r.Gap())
	}
}
