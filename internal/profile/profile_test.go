package profile

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
)

func newTestGenerator(t *testing.T, seed uint64) *Generator {
	t.Helper()
	g, err := NewGenerator(DefaultConfig(), dist.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(DefaultConfig(), nil); err == nil {
		t.Error("nil RNG should be rejected")
	}
	bad := DefaultConfig()
	bad.BeginLambda = 0
	if _, err := NewGenerator(bad, dist.New(1)); err == nil {
		t.Error("zero lambda should be rejected")
	}
	bad = DefaultConfig()
	bad.MinDuration = 3
	bad.MaxDuration = 2
	if _, err := NewGenerator(bad, dist.New(1)); err == nil {
		t.Error("inverted duration range should be rejected")
	}
	bad = DefaultConfig()
	bad.MaxDuration = 23
	if _, err := NewGenerator(bad, dist.New(1)); err == nil {
		t.Error("duration + margin exceeding the day should be rejected")
	}
	bad = DefaultConfig()
	bad.RhoLo = 0
	if _, err := NewGenerator(bad, dist.New(1)); err == nil {
		t.Error("nonpositive rho should be rejected")
	}
	bad = DefaultConfig()
	bad.Rating = 0
	if _, err := NewGenerator(bad, dist.New(1)); err == nil {
		t.Error("zero rating should be rejected")
	}
	bad = DefaultConfig()
	bad.WideEndMargin = -1
	if _, err := NewGenerator(bad, dist.New(1)); err == nil {
		t.Error("negative margin should be rejected")
	}
}

func TestDrawProducesValidProfiles(t *testing.T) {
	g := newTestGenerator(t, 42)
	cfg := DefaultConfig()
	for i := 0; i < 5000; i++ {
		p := g.Draw()
		if err := p.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v (profile %+v)", i, err, p)
		}
		if p.Narrow.Duration < cfg.MinDuration || p.Narrow.Duration > cfg.MaxDuration {
			t.Fatalf("duration %d outside [%d, %d]", p.Narrow.Duration, cfg.MinDuration, cfg.MaxDuration)
		}
		if p.Narrow.Slack() != 0 {
			t.Fatalf("narrow interval must be rigid (slack 0), got %d", p.Narrow.Slack())
		}
		if p.Wide.Width()-p.Narrow.Width() < cfg.WideEndMargin {
			t.Fatalf("wide window %v narrower than narrow %v + margin", p.Wide.Window, p.Narrow.Window)
		}
		if p.Rho < cfg.RhoLo || p.Rho >= cfg.RhoHi {
			t.Fatalf("rho %g outside [%g, %g)", p.Rho, cfg.RhoLo, cfg.RhoHi)
		}
		if p.Rating != core.DefaultPowerRating {
			t.Fatalf("rating %g, want %g", p.Rating, core.DefaultPowerRating)
		}
	}
}

func TestDrawBeginTimeDistribution(t *testing.T) {
	g := newTestGenerator(t, 7)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.Draw().Narrow.Window.Begin)
	}
	mean := sum / n
	// Poisson(16) clamped into the feasible range pulls the mean down
	// slightly; it must remain an evening-peaked distribution.
	if mean < 14 || mean > 17 {
		t.Errorf("mean begin time %g not in the evening-peak band [14, 17]", mean)
	}
}

func TestDrawDeterministic(t *testing.T) {
	g1 := newTestGenerator(t, 11)
	g2 := newTestGenerator(t, 11)
	for i := 0; i < 100; i++ {
		p1, p2 := g1.Draw(), g2.Draw()
		if p1 != p2 {
			t.Fatalf("same seed diverged at draw %d: %+v vs %+v", i, p1, p2)
		}
	}
}

func TestDrawN(t *testing.T) {
	g := newTestGenerator(t, 3)
	ps := g.DrawN(50)
	if len(ps) != 50 {
		t.Fatalf("DrawN(50) returned %d profiles", len(ps))
	}
}

func TestTypeNarrowAndWide(t *testing.T) {
	p := Profile{
		Narrow: core.MustPreference(18, 20, 2),
		Wide:   core.MustPreference(18, 24, 2),
		Rho:    5,
		Rating: 2,
	}
	tn := p.TypeNarrow()
	if tn.True != p.Narrow || tn.ValuationFactor != 5 {
		t.Errorf("TypeNarrow = %+v", tn)
	}
	tw := p.TypeWide()
	if tw.True != p.Wide || tw.ValuationFactor != 5 {
		t.Errorf("TypeWide = %+v", tw)
	}
}

func TestProfileValidate(t *testing.T) {
	valid := Profile{
		Narrow: core.MustPreference(18, 20, 2),
		Wide:   core.MustPreference(18, 24, 2),
		Rho:    5,
		Rating: 2,
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bad := valid
	bad.Wide = core.MustPreference(19, 24, 2) // does not cover narrow
	if err := bad.Validate(); err == nil {
		t.Error("wide window not covering narrow should be rejected")
	}
	bad = valid
	bad.Narrow = core.MustPreference(18, 21, 3) // duration mismatch
	if err := bad.Validate(); err == nil {
		t.Error("duration mismatch should be rejected")
	}
	bad = valid
	bad.Rho = 0
	if err := bad.Validate(); err == nil {
		t.Error("rho 0 should be rejected")
	}
	bad = valid
	bad.Rating = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rating should be rejected")
	}
}

func TestReports(t *testing.T) {
	g := newTestGenerator(t, 5)
	ps := g.DrawN(10)
	wide := WideReports(ps)
	narrow := NarrowReports(ps)
	if len(wide) != 10 || len(narrow) != 10 {
		t.Fatalf("report lengths %d, %d, want 10", len(wide), len(narrow))
	}
	for i := range ps {
		if wide[i].ID != core.HouseholdID(i) || narrow[i].ID != core.HouseholdID(i) {
			t.Errorf("report %d has wrong ID", i)
		}
		if wide[i].Pref != ps[i].Wide {
			t.Errorf("wide report %d = %v, want %v", i, wide[i].Pref, ps[i].Wide)
		}
		if narrow[i].Pref != ps[i].Narrow {
			t.Errorf("narrow report %d = %v, want %v", i, narrow[i].Pref, ps[i].Narrow)
		}
	}
	if err := core.ValidateReports(wide); err != nil {
		t.Errorf("wide reports invalid: %v", err)
	}
}

func TestRhoMean(t *testing.T) {
	g := newTestGenerator(t, 13)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Draw().Rho
	}
	if mean := sum / n; math.Abs(mean-5.5) > 0.1 {
		t.Errorf("rho mean = %g, want ~5.5 for U[1,10]", mean)
	}
}
