// Package profile generates the household usage profiles of the
// paper's simulation study (Section VI).
//
// Each household has a usage profile consisting of a narrow interval
// (what it most prefers), a wide interval (what it can tolerate), and a
// duration. The paper's generative model is:
//
//   - beginning time of the narrow and wide intervals ~ Poisson(16),
//   - duration ~ Uniform{1, ..., 4},
//   - narrow end = begin + duration,
//   - wide end ~ Uniform{narrow end + 2, ..., 24},
//   - consumption 2 kWh per occupied hour, valuation factor ρ ~ U[1, 10].
//
// Draws are clamped so every profile is feasible within H = {0..23}.
package profile

import (
	"fmt"

	"enki/internal/core"
	"enki/internal/dist"
)

// Profile is one household's usage profile for a day.
type Profile struct {
	Narrow core.Preference // most-preferred request
	Wide   core.Preference // tolerable request (same begin and duration, wider end)
	Rho    float64         // valuation factor ρ
	Rating float64         // power rating r in kW
}

// TypeNarrow returns the household type whose true preference is the
// narrow interval (the Section VI-B incentive-compatibility setting).
func (p Profile) TypeNarrow() core.Type {
	return core.Type{True: p.Narrow, ValuationFactor: p.Rho}
}

// TypeWide returns the household type whose true preference is the wide
// interval (the Section VI-A social-welfare setting, where "every
// household reports its wide interval as its true preference").
func (p Profile) TypeWide() core.Type {
	return core.Type{True: p.Wide, ValuationFactor: p.Rho}
}

// Validate checks internal consistency of the profile.
func (p Profile) Validate() error {
	if err := p.Narrow.Validate(); err != nil {
		return fmt.Errorf("narrow: %w", err)
	}
	if err := p.Wide.Validate(); err != nil {
		return fmt.Errorf("wide: %w", err)
	}
	if p.Narrow.Duration != p.Wide.Duration {
		return fmt.Errorf("profile: narrow duration %d != wide duration %d",
			p.Narrow.Duration, p.Wide.Duration)
	}
	if !p.Wide.Window.Covers(p.Narrow.Window) {
		return fmt.Errorf("profile: wide window %v does not cover narrow window %v",
			p.Wide.Window, p.Narrow.Window)
	}
	if p.Rho <= 0 {
		return fmt.Errorf("profile: rho %g must be positive", p.Rho)
	}
	if p.Rating <= 0 {
		return fmt.Errorf("profile: rating %g must be positive", p.Rating)
	}
	return nil
}

// Config parameterizes the generator. The zero value is not useful;
// call DefaultConfig for the paper's parameters.
type Config struct {
	BeginLambda   float64 // Poisson mean of the narrow begin time (paper: 16)
	MinDuration   int     // inclusive lower bound of duration (paper: 1)
	MaxDuration   int     // inclusive upper bound of duration (paper: 4)
	WideEndMargin int     // minimum extra width of the wide window (paper: 2)
	RhoLo         float64 // valuation factor lower bound (paper: 1)
	RhoHi         float64 // valuation factor upper bound (paper: 10)
	Rating        float64 // power rating in kW (paper: 2)
}

// DefaultConfig returns the Section VI parameters.
func DefaultConfig() Config {
	return Config{
		BeginLambda:   16,
		MinDuration:   1,
		MaxDuration:   4,
		WideEndMargin: 2,
		RhoLo:         1,
		RhoHi:         10,
		Rating:        core.DefaultPowerRating,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.BeginLambda <= 0 {
		return fmt.Errorf("profile: begin lambda %g must be positive", c.BeginLambda)
	}
	if c.MinDuration < 1 || c.MaxDuration < c.MinDuration {
		return fmt.Errorf("profile: bad duration range [%d, %d]", c.MinDuration, c.MaxDuration)
	}
	if c.MaxDuration+c.WideEndMargin > core.HoursPerDay {
		return fmt.Errorf("profile: duration %d + margin %d exceeds the day", c.MaxDuration, c.WideEndMargin)
	}
	if c.WideEndMargin < 0 {
		return fmt.Errorf("profile: margin %d must be nonnegative", c.WideEndMargin)
	}
	if c.RhoLo <= 0 || c.RhoHi < c.RhoLo {
		return fmt.Errorf("profile: bad rho range [%g, %g]", c.RhoLo, c.RhoHi)
	}
	if c.Rating <= 0 {
		return fmt.Errorf("profile: rating %g must be positive", c.Rating)
	}
	return nil
}

// Generator draws usage profiles from a Config using a deterministic
// RNG stream.
type Generator struct {
	cfg Config
	rng *dist.RNG
}

// NewGenerator builds a generator; it returns an error on an invalid
// configuration.
func NewGenerator(cfg Config, rng *dist.RNG) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("profile: nil RNG")
	}
	return &Generator{cfg: cfg, rng: rng}, nil
}

// Draw samples one usage profile per the Section VI model.
func (g *Generator) Draw() Profile {
	c := g.cfg
	duration := g.rng.IntRange(c.MinDuration, c.MaxDuration)

	// The begin time must leave room for the duration plus the wide
	// margin before the end of the day.
	maxBegin := core.HoursPerDay - duration - c.WideEndMargin
	begin := g.rng.Poisson(c.BeginLambda)
	if begin > maxBegin {
		begin = maxBegin
	}

	narrowEnd := begin + duration
	wideEnd := g.rng.IntRange(narrowEnd+c.WideEndMargin, core.HoursPerDay)

	return Profile{
		Narrow: core.Preference{
			Window:   core.Interval{Begin: begin, End: narrowEnd},
			Duration: duration,
		},
		Wide: core.Preference{
			Window:   core.Interval{Begin: begin, End: wideEnd},
			Duration: duration,
		},
		Rho:    g.rng.FloatRange(c.RhoLo, c.RhoHi),
		Rating: c.Rating,
	}
}

// DrawN samples n profiles.
func (g *Generator) DrawN(n int) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = g.Draw()
	}
	return out
}

// WideReports converts profiles into the reports used by the
// social-welfare study: every household truthfully reports its wide
// interval. IDs are assigned positionally.
func WideReports(profiles []Profile) []core.Report {
	out := make([]core.Report, len(profiles))
	for i, p := range profiles {
		out[i] = core.Report{ID: core.HouseholdID(i), Pref: p.Wide}
	}
	return out
}

// NarrowReports converts profiles into reports of the narrow intervals.
func NarrowReports(profiles []Profile) []core.Report {
	out := make([]core.Report, len(profiles))
	for i, p := range profiles {
		out[i] = core.Report{ID: core.HouseholdID(i), Pref: p.Narrow}
	}
	return out
}
