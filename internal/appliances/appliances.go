// Package appliances implements the multi-appliance extension the
// paper sketches in Section III: a household declares several shiftable
// loads ("the power rating r will vary when we model multiple
// appliances for a given household") plus a constant nonshiftable base
// load, and its payment adds the base load's constant cost to the
// social-cost share of its shiftable appliances.
//
// Allocation generalizes the greedy scheduler to per-appliance ratings;
// scoring aggregates Eq. 4-6 at the household level (an appliance's
// flexibility weighted by its energy); payments remain Eq. 7 and stay
// exactly budget balanced.
package appliances

import (
	"fmt"
	"sort"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

// Appliance is one shiftable load of a household.
type Appliance struct {
	// Name labels the appliance ("ev", "dishwasher", ...).
	Name string
	// Type is the appliance's true preference and valuation factor.
	Type core.Type
	// Reported is the declared preference (equal to Type.True for a
	// truthful household).
	Reported core.Preference
	// Rating is the appliance's power draw in kW while running.
	Rating float64
}

// Validate checks the appliance's constraints.
func (a Appliance) Validate() error {
	if err := a.Type.Validate(); err != nil {
		return fmt.Errorf("appliance %q: %w", a.Name, err)
	}
	if err := a.Reported.Validate(); err != nil {
		return fmt.Errorf("appliance %q report: %w", a.Name, err)
	}
	if a.Reported.Duration != a.Type.True.Duration {
		return fmt.Errorf("appliance %q: reported duration %d != true duration %d",
			a.Name, a.Reported.Duration, a.Type.True.Duration)
	}
	if a.Rating <= 0 {
		return fmt.Errorf("appliance %q: rating %g must be positive", a.Name, a.Rating)
	}
	return nil
}

// Energy is the appliance's shiftable energy (duration × rating, kWh).
func (a Appliance) Energy() float64 {
	return float64(a.Reported.Duration) * a.Rating
}

// Household is a multi-appliance household.
type Household struct {
	// ID identifies the household.
	ID core.HouseholdID
	// BaseLoad is the household's constant nonshiftable draw in kW,
	// applied to every hour of the day. Its cost cannot be reduced by
	// scheduling and enters the bill as a constant.
	BaseLoad float64
	// Appliances are the shiftable loads.
	Appliances []Appliance
}

// Validate checks the household's constraints.
func (h Household) Validate() error {
	if h.BaseLoad < 0 {
		return fmt.Errorf("household %d: negative base load %g", h.ID, h.BaseLoad)
	}
	if len(h.Appliances) == 0 {
		return fmt.Errorf("household %d: no appliances", h.ID)
	}
	names := make(map[string]bool, len(h.Appliances))
	for _, a := range h.Appliances {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("household %d: %w", h.ID, err)
		}
		if names[a.Name] {
			return fmt.Errorf("household %d: duplicate appliance %q", h.ID, a.Name)
		}
		names[a.Name] = true
	}
	return nil
}

// ShiftableEnergy is the household's total schedulable energy.
func (h Household) ShiftableEnergy() float64 {
	var sum float64
	for _, a := range h.Appliances {
		sum += a.Energy()
	}
	return sum
}

// Plan is the center's allocation for one household: one interval per
// appliance, in appliance order.
type Plan struct {
	ID        core.HouseholdID
	Intervals []core.Interval
}

// slot identifies one appliance in the flattened problem.
type slot struct {
	house, app int
	flex       float64
	energy     float64
}

// Allocate generalizes the Section IV-C greedy scheduler: it computes
// Eq. 4 flexibility per appliance across the whole neighborhood,
// processes appliances in increasing flexibility (ties broken by rng,
// or deterministically when rng is nil), and places each at the
// deferment minimizing (peak, marginal cost). The base loads are part
// of the load profile from the start, so scheduling routes shiftable
// energy around them.
func Allocate(p pricing.Pricer, households []Household, rng *dist.RNG) ([]Plan, error) {
	if p == nil {
		return nil, fmt.Errorf("appliances: nil pricer")
	}
	if len(households) == 0 {
		return nil, fmt.Errorf("appliances: no households")
	}
	seen := make(map[core.HouseholdID]bool, len(households))
	for _, h := range households {
		if err := h.Validate(); err != nil {
			return nil, err
		}
		if seen[h.ID] {
			return nil, fmt.Errorf("appliances: duplicate household id %d", h.ID)
		}
		seen[h.ID] = true
	}

	// Flatten appliances and compute neighborhood-wide flexibility.
	var prefs []core.Preference
	var slots []slot
	for hi, h := range households {
		for ai, a := range h.Appliances {
			prefs = append(prefs, a.Reported)
			slots = append(slots, slot{house: hi, app: ai, energy: a.Energy()})
		}
	}
	flex := mechanism.FlexibilityScores(prefs)
	for i := range slots {
		slots[i].flex = flex[i]
	}
	jitter := make([]float64, len(slots))
	for i := range jitter {
		if rng != nil {
			jitter[i] = rng.Float64()
		} else {
			jitter[i] = float64(i)
		}
	}
	order := make([]int, len(slots))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if slots[order[a]].flex != slots[order[b]].flex {
			return slots[order[a]].flex < slots[order[b]].flex
		}
		return jitter[order[a]] < jitter[order[b]]
	})

	// Seed the profile with every household's base load.
	var load core.Load
	for _, h := range households {
		for hr := 0; hr < core.HoursPerDay; hr++ {
			load[hr] += h.BaseLoad
		}
	}

	plans := make([]Plan, len(households))
	for hi, h := range households {
		plans[hi] = Plan{ID: h.ID, Intervals: make([]core.Interval, len(h.Appliances))}
	}
	for _, idx := range order {
		s := slots[idx]
		a := households[s.house].Appliances[s.app]
		best := bestPlacement(p, a.Reported, a.Rating, &load)
		plans[s.house].Intervals[s.app] = best
		load.AddInterval(best, a.Rating)
	}
	return plans, nil
}

// bestPlacement mirrors the single-appliance greedy objective:
// (resulting peak, marginal cost, earliest start).
func bestPlacement(p pricing.Pricer, pref core.Preference, rating float64, load *core.Load) core.Interval {
	best := pref.IntervalAt(0)
	bestPeak, bestCost := placementKey(p, best, rating, load)
	for d := 1; d <= pref.Slack(); d++ {
		iv := pref.IntervalAt(d)
		peak, cost := placementKey(p, iv, rating, load)
		if peak < bestPeak || (peak == bestPeak && cost < bestCost-1e-12) {
			best, bestPeak, bestCost = iv, peak, cost
		}
	}
	return best
}

func placementKey(p pricing.Pricer, iv core.Interval, rating float64, load *core.Load) (peak, cost float64) {
	for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
		if lv := load[h] + rating; lv > peak {
			peak = lv
		}
	}
	return peak, pricing.MarginalCost(p, load, iv, rating)
}
