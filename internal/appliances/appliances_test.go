package appliances

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func appliance(name string, pref core.Preference, rating float64) Appliance {
	return Appliance{
		Name:     name,
		Type:     core.Type{True: pref, ValuationFactor: 5},
		Reported: pref,
		Rating:   rating,
	}
}

func twoHouseholds() []Household {
	return []Household{
		{
			ID:       0,
			BaseLoad: 0.5,
			Appliances: []Appliance{
				appliance("ev", core.MustPreference(18, 24, 3), 3),
				appliance("dishwasher", core.MustPreference(19, 23, 1), 1),
			},
		},
		{
			ID:       1,
			BaseLoad: 0.3,
			Appliances: []Appliance{
				appliance("dryer", core.MustPreference(17, 22, 2), 2),
			},
		},
	}
}

func TestHouseholdValidate(t *testing.T) {
	hs := twoHouseholds()
	for _, h := range hs {
		if err := h.Validate(); err != nil {
			t.Errorf("valid household rejected: %v", err)
		}
	}
	bad := hs[0]
	bad.BaseLoad = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative base load should be rejected")
	}
	bad = hs[0]
	bad.Appliances = nil
	if err := bad.Validate(); err == nil {
		t.Error("no appliances should be rejected")
	}
	bad = hs[0]
	bad.Appliances = []Appliance{
		appliance("ev", core.MustPreference(18, 24, 3), 3),
		appliance("ev", core.MustPreference(19, 23, 1), 1),
	}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate appliance names should be rejected")
	}
	bad = hs[0]
	badApp := bad.Appliances[0]
	badApp.Rating = 0
	bad.Appliances = []Appliance{badApp}
	if err := bad.Validate(); err == nil {
		t.Error("zero rating should be rejected")
	}
	badApp = hs[0].Appliances[0]
	badApp.Reported = core.MustPreference(18, 24, 2) // duration mismatch
	bad.Appliances = []Appliance{badApp}
	if err := bad.Validate(); err == nil {
		t.Error("reported duration mismatch should be rejected")
	}
}

func TestAllocateRespectsWindows(t *testing.T) {
	hs := twoHouseholds()
	plans, err := Allocate(quad, hs, dist.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != len(hs) {
		t.Fatalf("got %d plans, want %d", len(plans), len(hs))
	}
	for hi, h := range hs {
		if plans[hi].ID != h.ID {
			t.Errorf("plan %d has id %d, want %d", hi, plans[hi].ID, h.ID)
		}
		for ai, a := range h.Appliances {
			if !a.Reported.Admits(plans[hi].Intervals[ai]) {
				t.Errorf("household %d appliance %q: %v not admitted by %v",
					h.ID, a.Name, plans[hi].Intervals[ai], a.Reported)
			}
		}
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(nil, twoHouseholds(), nil); err == nil {
		t.Error("nil pricer should be rejected")
	}
	if _, err := Allocate(quad, nil, nil); err == nil {
		t.Error("no households should be rejected")
	}
	dup := twoHouseholds()
	dup[1].ID = dup[0].ID
	if _, err := Allocate(quad, dup, nil); err == nil {
		t.Error("duplicate IDs should be rejected")
	}
}

func TestAllocateSpreadsAroundBaseLoad(t *testing.T) {
	// Two identical flexible appliances and one household with a huge
	// base load: the scheduler still spreads shiftable energy, and the
	// base load raises everyone's cost but not the peak placement rule.
	hs := []Household{
		{ID: 0, BaseLoad: 0, Appliances: []Appliance{appliance("a", core.MustPreference(18, 22, 1), 2)}},
		{ID: 1, BaseLoad: 0, Appliances: []Appliance{appliance("b", core.MustPreference(18, 22, 1), 2)}},
	}
	plans, err := Allocate(quad, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].Intervals[0] == plans[1].Intervals[0] {
		t.Errorf("identical flexible appliances should be separated, both at %v", plans[0].Intervals[0])
	}
}

func TestSettleBudgetBalance(t *testing.T) {
	hs := twoHouseholds()
	plans, err := Allocate(quad, hs, dist.New(2))
	if err != nil {
		t.Fatal(err)
	}
	cons := Comply(plans)
	s, err := Settle(quad, mechanism.DefaultConfig(), hs, plans, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 1 carries over: revenue = ξ·κ(ω) exactly.
	if math.Abs(s.Revenue()-mechanism.DefaultXi*s.Cost) > 1e-9 {
		t.Errorf("revenue %g != ξκ = %g", s.Revenue(), mechanism.DefaultXi*s.Cost)
	}
	if s.BaseCost <= 0 || s.BaseCost >= s.Cost {
		t.Errorf("base cost %g should be positive and below total %g", s.BaseCost, s.Cost)
	}
	for i, d := range s.Defection {
		if d != 0 {
			t.Errorf("compliant household %d has defection %g", i, d)
		}
	}
}

func TestSettleDefectorPaysMore(t *testing.T) {
	// Two households with one appliance each, identical preferences;
	// household 1's appliance defects onto household 0's slot.
	hs := []Household{
		{ID: 0, Appliances: []Appliance{appliance("a", core.MustPreference(18, 20, 1), 2)}},
		{ID: 1, Appliances: []Appliance{appliance("b", core.MustPreference(18, 20, 1), 2)}},
	}
	plans, err := Allocate(quad, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cons := Comply(plans)
	cons[1].Intervals[0] = plans[0].Intervals[0] // stack onto the neighbor
	s, err := Settle(quad, mechanism.DefaultConfig(), hs, plans, cons)
	if err != nil {
		t.Fatal(err)
	}
	if s.Defection[1] <= 0 {
		t.Fatalf("defector's score %g, want > 0", s.Defection[1])
	}
	if s.Payments[1] <= s.Payments[0] {
		t.Errorf("defector pays %g, compliant neighbor %g", s.Payments[1], s.Payments[0])
	}
	// Budget balance even with defection.
	if math.Abs(s.Revenue()-mechanism.DefaultXi*s.Cost) > 1e-9 {
		t.Errorf("revenue %g != ξκ = %g", s.Revenue(), mechanism.DefaultXi*s.Cost)
	}
}

func TestSettleBaseLoadApportionment(t *testing.T) {
	// Same single appliance each, very different base loads: the
	// heavier base-load household pays more.
	hs := []Household{
		{ID: 0, BaseLoad: 2, Appliances: []Appliance{appliance("a", core.MustPreference(8, 12, 1), 2)}},
		{ID: 1, BaseLoad: 0.2, Appliances: []Appliance{appliance("b", core.MustPreference(18, 22, 1), 2)}},
	}
	plans, err := Allocate(quad, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Settle(quad, mechanism.DefaultConfig(), hs, plans, Comply(plans))
	if err != nil {
		t.Fatal(err)
	}
	if s.Payments[0] <= s.Payments[1] {
		t.Errorf("base-heavy household pays %g, light one %g", s.Payments[0], s.Payments[1])
	}
}

func TestSettleValidation(t *testing.T) {
	hs := twoHouseholds()
	plans, err := Allocate(quad, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cons := Comply(plans)
	if _, err := Settle(quad, mechanism.DefaultConfig(), hs, plans[:1], cons); err == nil {
		t.Error("plan/household mismatch should be rejected")
	}
	badPlans := Comply(plans) // reuse as a deep copy of intervals
	_ = badPlans
	badPlan := []Plan{{ID: plans[0].ID, Intervals: []core.Interval{{Begin: 0, End: 3}, plans[0].Intervals[1]}}, plans[1]}
	if _, err := Settle(quad, mechanism.DefaultConfig(), hs, badPlan, cons); err == nil {
		t.Error("plan outside the reported window should be rejected")
	}
	badCons := Comply(plans)
	badCons[0].Intervals[0] = core.Interval{Begin: 18, End: 19} // wrong duration
	if _, err := Settle(quad, mechanism.DefaultConfig(), hs, plans, badCons); err == nil {
		t.Error("consumption with wrong duration should be rejected")
	}
}

func TestConsumeTruthfullyDefectsWhenMisreported(t *testing.T) {
	hs := twoHouseholds()
	// Household 1 misreports its dryer: true evening need, claims morning.
	hs[1].Appliances[0].Reported = core.MustPreference(6, 10, 2)
	plans, err := Allocate(quad, hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cons := ConsumeTruthfully(hs, plans)
	trueWindow := hs[1].Appliances[0].Type.True.Window
	if !trueWindow.Covers(cons[1].Intervals[0]) {
		t.Errorf("truthful consumption %v outside true window %v", cons[1].Intervals[0], trueWindow)
	}
	if cons[1].Intervals[0] == plans[1].Intervals[0] {
		t.Error("misreported appliance should have defected")
	}
}

func TestShiftableEnergy(t *testing.T) {
	h := twoHouseholds()[0]
	want := 3.0*3 + 1.0*1
	if got := h.ShiftableEnergy(); got != want {
		t.Errorf("ShiftableEnergy = %g, want %g", got, want)
	}
}
