package appliances

import (
	"fmt"
	"math"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

// Consumption is one household's realized per-appliance consumption,
// aligned with its Plan.
type Consumption struct {
	ID        core.HouseholdID
	Intervals []core.Interval
}

// Comply returns the consumptions of fully cooperative households.
func Comply(plans []Plan) []Consumption {
	out := make([]Consumption, len(plans))
	for i, p := range plans {
		out[i] = Consumption{ID: p.ID, Intervals: append([]core.Interval(nil), p.Intervals...)}
	}
	return out
}

// ConsumeTruthfully follows each appliance's allocation when it
// satisfies the true preference and otherwise defects to the closest
// true-window placement.
func ConsumeTruthfully(households []Household, plans []Plan) []Consumption {
	out := make([]Consumption, len(plans))
	for i, p := range plans {
		ivs := make([]core.Interval, len(p.Intervals))
		for ai, iv := range p.Intervals {
			ivs[ai] = core.ClosestConsumption(households[i].Appliances[ai].Type.True, iv)
		}
		out[i] = Consumption{ID: p.ID, Intervals: ivs}
	}
	return out
}

// Settlement is the household-level financial outcome of a
// multi-appliance day.
type Settlement struct {
	Cost        float64   // κ(ω), including base loads
	BaseCost    float64   // the constant cost of the base loads alone
	Flexibility []float64 // energy-weighted household flexibility (0 if any appliance defected... per appliance rules)
	Defection   []float64 // summed appliance defection scores per household
	SocialCost  []float64 // Ψ per household (Eq. 6 on the aggregates)
	Payments    []float64 // p_i (Eq. 7): social-cost share of the shiftable cost plus the base-load constant
	Valuations  []float64 // Σ appliance valuations (Eq. 3)
	Utilities   []float64 // valuation − payment (Eq. 8)
}

// Revenue is Σ p_i.
func (s Settlement) Revenue() float64 {
	var sum float64
	for _, p := range s.Payments {
		sum += p
	}
	return sum
}

// Settle computes the multi-appliance settlement: per-appliance Eq. 4
// flexibility (zeroed on defection) and Eq. 5 defection scores are
// aggregated per household (flexibility energy-weighted, defection
// summed), Eq. 6/7 run on the aggregates over the shiftable part of the
// cost, and every household additionally pays ξ times its own base
// load's constant cost. Revenue is exactly ξ·κ(ω), preserving
// Theorem 1.
func Settle(p pricing.Pricer, cfg mechanism.Config, households []Household, plans []Plan, consumptions []Consumption) (Settlement, error) {
	if err := cfg.Validate(); err != nil {
		return Settlement{}, err
	}
	if len(households) != len(plans) || len(households) != len(consumptions) {
		return Settlement{}, fmt.Errorf("appliances: %d households, %d plans, %d consumptions",
			len(households), len(plans), len(consumptions))
	}

	// Flatten to appliance level, validating alignment.
	var prefs []core.Preference
	var assigned, consumed []core.Interval
	var owner []int
	var ratings []float64
	var types []core.Type
	for hi, h := range households {
		if err := h.Validate(); err != nil {
			return Settlement{}, err
		}
		if len(plans[hi].Intervals) != len(h.Appliances) || len(consumptions[hi].Intervals) != len(h.Appliances) {
			return Settlement{}, fmt.Errorf("appliances: household %d has %d appliances, %d planned, %d consumed",
				h.ID, len(h.Appliances), len(plans[hi].Intervals), len(consumptions[hi].Intervals))
		}
		for ai, a := range h.Appliances {
			iv := plans[hi].Intervals[ai]
			if !a.Reported.Admits(iv) {
				return Settlement{}, fmt.Errorf("appliances: household %d appliance %q: plan %v not admitted by report %v",
					h.ID, a.Name, iv, a.Reported)
			}
			c := consumptions[hi].Intervals[ai]
			if c.Len() != a.Reported.Duration {
				return Settlement{}, fmt.Errorf("appliances: household %d appliance %q: consumption %v has duration %d, want %d",
					h.ID, a.Name, c, c.Len(), a.Reported.Duration)
			}
			prefs = append(prefs, a.Reported)
			assigned = append(assigned, iv)
			consumed = append(consumed, c)
			owner = append(owner, hi)
			ratings = append(ratings, a.Rating)
			types = append(types, a.Type)
		}
	}

	// Scores at appliance level. Defection uses the appliance's own
	// rating via a per-appliance swap against the realized profile of
	// assignments (base loads included: a defection onto the base peak
	// is costlier).
	predicted := mechanism.FlexibilityScores(prefs)
	flexApp := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	defectApp := defectionScores(p, households, ratings, assigned, consumed)

	n := len(households)
	flex := make([]float64, n)
	defect := make([]float64, n)
	energy := make([]float64, n)
	for i, hi := range owner {
		e := float64(prefs[i].Duration) * ratings[i]
		flex[hi] += flexApp[i] * e
		defect[hi] += defectApp[i]
		energy[hi] += e
	}
	for hi := range flex {
		if energy[hi] > 0 {
			flex[hi] /= energy[hi]
		}
	}

	psi, err := mechanism.SocialCostScores(flex, defect, cfg.K)
	if err != nil {
		return Settlement{}, err
	}

	// Cost split: base (constant) vs shiftable (scheduled) parts.
	load := baseLoadOf(households)
	baseCost := pricing.Cost(p, load)
	for i, iv := range consumed {
		load.AddInterval(iv, ratings[i])
	}
	cost := pricing.Cost(p, load)
	shiftableCost := cost - baseCost

	shiftPayments, err := mechanism.Payments(psi, cfg.Xi, shiftableCost)
	if err != nil {
		return Settlement{}, err
	}

	// The base-load constant is apportioned by each household's own
	// base draw — the "constant cost added to each household's payment".
	var totalBase float64
	for _, h := range households {
		totalBase += h.BaseLoad
	}
	payments := make([]float64, n)
	valuations := make([]float64, n)
	utilities := make([]float64, n)
	for hi, h := range households {
		payments[hi] = shiftPayments[hi]
		if totalBase > 0 {
			payments[hi] += h.BaseLoad / totalBase * cfg.Xi * baseCost
		}
	}
	for i, hi := range owner {
		valuations[hi] += core.ValuationOf(assigned[i], types[i])
	}
	for hi := range utilities {
		utilities[hi] = core.Utility(valuations[hi], payments[hi])
	}

	return Settlement{
		Cost:        cost,
		BaseCost:    baseCost,
		Flexibility: flex,
		Defection:   defect,
		SocialCost:  psi,
		Payments:    payments,
		Valuations:  valuations,
		Utilities:   utilities,
	}, nil
}

// baseLoadOf builds the constant base-load profile.
func baseLoadOf(households []Household) core.Load {
	var load core.Load
	for _, h := range households {
		for hr := 0; hr < core.HoursPerDay; hr++ {
			load[hr] += h.BaseLoad
		}
	}
	return load
}

// defectionScores computes Eq. 5 per appliance against the full
// allocated profile (base loads included).
func defectionScores(p pricing.Pricer, households []Household, ratings []float64, assigned, consumed []core.Interval) []float64 {
	base := baseLoadOf(households)
	for i, iv := range assigned {
		base.AddInterval(iv, ratings[i])
	}
	baseCost := pricing.Cost(p, base)

	out := make([]float64, len(assigned))
	for i := range assigned {
		if assigned[i] == consumed[i] {
			continue
		}
		swapped := base
		swapped.RemoveInterval(assigned[i], ratings[i])
		swapped.AddInterval(consumed[i], ratings[i])
		harm := pricing.Cost(p, swapped) - baseCost
		if harm < 0 {
			harm = 0
		}
		o := core.OverlapRatio(assigned[i], consumed[i])
		out[i] = harm / math.Exp(o)
	}
	return out
}
