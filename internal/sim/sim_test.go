package sim

import (
	"math"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/pricing"
	"enki/internal/sched"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func testConfig() Config {
	return Config{
		Scheduler: &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:    quad,
		Mechanism: mechanism.DefaultConfig(),
		Rating:    2,
	}
}

func truthfulPolicies() []netproto.Policy {
	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
		{True: core.MustPreference(8, 14, 2), ValuationFactor: 2},
	}
	out := make([]netproto.Policy, len(types))
	for i, typ := range types {
		out[i] = &netproto.Truthful{Type: typ}
	}
	return out
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(testConfig(), nil, 3); err == nil {
		t.Error("no policies should be rejected")
	}
	if _, err := Run(testConfig(), truthfulPolicies(), 0); err == nil {
		t.Error("zero days should be rejected")
	}
	bad := testConfig()
	bad.Scheduler = nil
	if _, err := Run(bad, truthfulPolicies(), 1); err == nil {
		t.Error("nil scheduler should be rejected")
	}
	bad = testConfig()
	bad.Pricer = nil
	if _, err := Run(bad, truthfulPolicies(), 1); err == nil {
		t.Error("nil pricer should be rejected")
	}
	bad = testConfig()
	bad.Rating = 0
	if _, err := Run(bad, truthfulPolicies(), 1); err == nil {
		t.Error("zero rating should be rejected")
	}
}

func TestTruthfulRunNoDefections(t *testing.T) {
	res, err := Run(testConfig(), truthfulPolicies(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 5 {
		t.Fatalf("got %d days, want 5", len(res.Days))
	}
	if res.TotalDefections() != 0 {
		t.Errorf("truthful run has %d defections", res.TotalDefections())
	}
	for _, d := range res.Days {
		var revenue float64
		for _, p := range d.Payments {
			revenue += p
		}
		if math.Abs(revenue-mechanism.DefaultXi*d.Cost) > 1e-9 {
			t.Errorf("day %d: revenue %g != ξκ %g", d.Day, revenue, mechanism.DefaultXi*d.Cost)
		}
		if d.PAR < 1 {
			t.Errorf("day %d: PAR %g below 1", d.Day, d.PAR)
		}
	}
	if len(res.CostSeries()) != 5 || len(res.DefectionSeries()) != 5 {
		t.Error("series lengths wrong")
	}
}

func TestMisreporterPunishedEveryDay(t *testing.T) {
	policies := truthfulPolicies()
	policies = append(policies, &netproto.Misreporter{
		Type:     core.Type{True: core.MustPreference(18, 20, 2), ValuationFactor: 5},
		Reported: core.MustPreference(8, 12, 2),
	})
	res, err := Run(testConfig(), policies, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDefections() != 4 {
		t.Errorf("misreporter should defect every day, got %d/4", res.TotalDefections())
	}
	for _, d := range res.Days {
		idx := len(policies) - 1
		if d.DefectionSc[idx] <= 0 {
			t.Errorf("day %d: defector score %g", d.Day, d.DefectionSc[idx])
		}
		var maxOther float64
		for i, p := range d.Payments[:idx] {
			if p > maxOther {
				maxOther = p
			}
			_ = i
		}
		if d.Payments[idx] <= maxOther {
			t.Errorf("day %d: defector pays %g, max truthful %g", d.Day, d.Payments[idx], maxOther)
		}
	}
}

// TestSimMatchesNetworkCenter is the layering guarantee: the in-process
// driver and the TCP center produce identical settlements for the same
// policies and deterministic scheduler.
func TestSimMatchesNetworkCenter(t *testing.T) {
	mkPolicies := func() []netproto.Policy {
		return []netproto.Policy{
			&netproto.Truthful{Type: core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}},
			&netproto.Truthful{Type: core.Type{True: core.MustPreference(17, 23, 2), ValuationFactor: 4}},
			&netproto.Misreporter{
				Type:     core.Type{True: core.MustPreference(18, 20, 2), ValuationFactor: 5},
				Reported: core.MustPreference(10, 14, 2),
			},
		}
	}

	// In-process.
	simRes, err := Run(testConfig(), mkPolicies(), 2)
	if err != nil {
		t.Fatal(err)
	}

	// Over TCP.
	center, err := netproto.NewCenter("127.0.0.1:0", netproto.CenterConfig{
		Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:       quad,
		Mechanism:    mechanism.DefaultConfig(),
		Rating:       2,
		ReplyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()
	for i, p := range mkPolicies() {
		a, err := netproto.Dial(center.Addr(), core.HouseholdID(i), p)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := center.WaitForAgents(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 2; day++ {
		record, err := center.RunDay(day)
		if err != nil {
			t.Fatal(err)
		}
		simDay := simRes.Days[day-1]
		if math.Abs(record.Cost-simDay.Cost) > 1e-9 {
			t.Errorf("day %d: TCP cost %g != sim cost %g", day, record.Cost, simDay.Cost)
		}
		for i := range record.Payments {
			if math.Abs(record.Payments[i]-simDay.Payments[i]) > 1e-9 {
				t.Errorf("day %d household %d: TCP payment %g != sim payment %g",
					day, i, record.Payments[i], simDay.Payments[i])
			}
		}
	}
}

func TestRunRejectsInvalidPolicyOutput(t *testing.T) {
	policies := []netproto.Policy{badPolicy{}}
	if _, err := Run(testConfig(), policies, 1); err == nil {
		t.Error("invalid report should fail the run")
	}
}

// badPolicy reports an infeasible preference.
type badPolicy struct{}

func (badPolicy) Report(int) core.Preference {
	return core.Preference{Window: core.Interval{Begin: 20, End: 18}, Duration: 1}
}
func (badPolicy) Consume(_ int, a core.Interval) core.Interval { return a }
func (badPolicy) Feedback(int, netproto.PaymentDetail)         {}
