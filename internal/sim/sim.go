// Package sim is the in-process multi-day simulation driver: it runs
// the same day cycle as the TCP center (internal/netproto) against the
// same Policy contract, without sockets. Any household policy —
// truthful, misreporting, or ECC-learning — can therefore be developed
// and tested in-process and then deployed over the wire unchanged; the
// equivalence is asserted by TestSimMatchesNetworkCenter.
//
// The driver records a per-day metric time series (cost, peak, PAR,
// defections, payments) for longitudinal studies such as the
// smart-meter learning curve.
package sim

import (
	"fmt"
	"sort"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/netproto"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// Config parameterizes a simulation run.
type Config struct {
	// Scheduler allocates each day; it must be non-nil.
	Scheduler sched.Scheduler
	// Pricer prices hourly load; it must be non-nil.
	Pricer pricing.Pricer
	// Mechanism carries the payment scaling factors.
	Mechanism mechanism.Config
	// Rating is the power rating r in kW.
	Rating float64
}

func (c Config) validate() error {
	if c.Scheduler == nil {
		return fmt.Errorf("sim: nil scheduler")
	}
	if c.Pricer == nil {
		return fmt.Errorf("sim: nil pricer")
	}
	if c.Rating <= 0 {
		return fmt.Errorf("sim: rating %g must be positive", c.Rating)
	}
	return c.Mechanism.Validate()
}

// DayMetrics is the aggregate outcome of one simulated day.
type DayMetrics struct {
	Day         int
	Cost        float64   // κ(ω)
	Peak        float64   // peak hourly load (kWh)
	PAR         float64   // peak-to-average ratio
	Defections  int       // households whose consumption differed from their allocation
	Payments    []float64 // per household, in policy order
	Utilities   []float64 // valuation is unknown to the center; this is −payment unless policies expose types (see RunWithTypes)
	Flexibility []float64
	DefectionSc []float64
}

// Result is a full run's time series.
type Result struct {
	Days []DayMetrics
}

// TotalDefections sums defections across all days.
func (r *Result) TotalDefections() int {
	var n int
	for _, d := range r.Days {
		n += d.Defections
	}
	return n
}

// CostSeries returns the per-day neighborhood costs.
func (r *Result) CostSeries() []float64 {
	out := make([]float64, len(r.Days))
	for i, d := range r.Days {
		out[i] = d.Cost
	}
	return out
}

// DefectionSeries returns the per-day defection counts.
func (r *Result) DefectionSeries() []int {
	out := make([]int, len(r.Days))
	for i, d := range r.Days {
		out[i] = d.Defections
	}
	return out
}

// Run simulates `days` day cycles over the policies. Policies are
// addressed by their slice position: household i gets HouseholdID(i).
func Run(cfg Config, policies []netproto.Policy, days int) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("sim: no policies")
	}
	if days <= 0 {
		return nil, fmt.Errorf("sim: days %d must be positive", days)
	}

	res := &Result{}
	for day := 1; day <= days; day++ {
		metrics, err := runDay(cfg, policies, day)
		if err != nil {
			return nil, fmt.Errorf("sim: day %d: %w", day, err)
		}
		res.Days = append(res.Days, *metrics)
	}
	return res, nil
}

// runDay mirrors netproto.Center.RunDay without the wire.
func runDay(cfg Config, policies []netproto.Policy, day int) (*DayMetrics, error) {
	n := len(policies)
	reports := make([]core.Report, n)
	for i, p := range policies {
		pref := p.Report(day)
		if err := pref.Validate(); err != nil {
			return nil, fmt.Errorf("policy %d: invalid report: %w", i, err)
		}
		reports[i] = core.Report{ID: core.HouseholdID(i), Pref: pref}
	}
	sort.Slice(reports, func(a, b int) bool { return reports[a].ID < reports[b].ID })

	assignments, err := cfg.Scheduler.Allocate(reports)
	if err != nil {
		return nil, err
	}

	assigned := make([]core.Interval, n)
	consumed := make([]core.Interval, n)
	prefs := make([]core.Preference, n)
	for i := range reports {
		prefs[i] = reports[i].Pref
		assigned[i] = assignments[i].Interval
		consumed[i] = policies[i].Consume(day, assigned[i])
		if consumed[i].Len() != prefs[i].Duration {
			return nil, fmt.Errorf("policy %d: consumed %d slots, declared %d",
				i, consumed[i].Len(), prefs[i].Duration)
		}
	}

	predicted := mechanism.FlexibilityScores(prefs)
	flex := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	defect := mechanism.DefectionScores(cfg.Pricer, cfg.Rating, assigned, consumed)
	psi, err := mechanism.SocialCostScores(flex, defect, cfg.Mechanism.K)
	if err != nil {
		return nil, err
	}
	load := core.LoadOf(consumed, cfg.Rating)
	cost := pricing.Cost(cfg.Pricer, load)
	payments, err := mechanism.Payments(psi, cfg.Mechanism.Xi, cost)
	if err != nil {
		return nil, err
	}

	metrics := &DayMetrics{
		Day:         day,
		Cost:        cost,
		Peak:        load.Peak(),
		PAR:         load.PAR(),
		Payments:    payments,
		Utilities:   make([]float64, n),
		Flexibility: flex,
		DefectionSc: defect,
	}
	for i := range policies {
		if core.Defected(assigned[i], consumed[i]) {
			metrics.Defections++
		}
		metrics.Utilities[i] = -payments[i]
		policies[i].Feedback(day, netproto.PaymentDetail{
			Amount:      payments[i],
			Flexibility: flex[i],
			Defection:   defect[i],
			SocialCost:  psi[i],
			TotalCost:   cost,
			PeakLoad:    load.Peak(),
		})
	}
	return metrics, nil
}
