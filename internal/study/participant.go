// Package study reproduces the paper's user study (Section VII) as a
// simulation: the same 16-round game, treatments, artificial-agent
// schedule, scoring, and metrics, with the 20 human subjects replaced
// by parametric behavioral models. The substitution is documented in
// DESIGN.md: the mechanism-side code paths (allocation, payments,
// defection punishment, flexibility rewards) are identical; only the
// human decision policy is synthetic.
package study

import (
	"enki/internal/core"
	"enki/internal/dist"
)

// RoundRecord is one participant's outcome in one round.
type RoundRecord struct {
	Round          int             // 1-based round number
	Truth          core.Preference // the true preference provided
	Submitted      core.Preference // the interval the participant reported
	Allocation     core.Interval   // the center's suggestion
	Consumption    core.Interval   // realized consumption
	Payment        float64         // p_i
	Utility        float64         // U_i (Eq. 8)
	Score          float64         // utility transformed to [0, 100]
	Defected       bool            // consumption != allocation
	SubmittedTruth bool            // submitted exactly the true interval
}

// FlexibilityRatio is the Section VII-D metric: the length of the
// submitted interval lying within the true interval over the length of
// the true interval — 0 when the subject's report is disjoint from its
// truth (a defection setup), 1 when the subject submits its exact true
// interval (or a superset).
func (r RoundRecord) FlexibilityRatio() float64 {
	trueLen := r.Truth.Window.Len()
	if trueLen == 0 {
		return 0
	}
	return float64(r.Submitted.Window.Overlap(r.Truth.Window)) / float64(trueLen)
}

// Participant is a player in the game: given its true preference for
// the round and its past outcomes, it submits a preferred interval.
// Consumption is automated by the engine per Section VII-B (within the
// true interval, close to the allocation).
type Participant interface {
	// Model names the behavioral model for reporting.
	Model() string
	// Submit returns the preference to report this round. It must have
	// the truth's duration and be feasible (window width ≥ duration).
	Submit(round int, truth core.Preference, history []RoundRecord) core.Preference
}

// clampWindow builds a valid preference of the given duration whose
// window is clipped into the day.
func clampWindow(begin, end, duration int) core.Preference {
	if end-begin < duration {
		end = begin + duration
	}
	if begin < 0 {
		end -= begin
		begin = 0
	}
	if end > core.HoursPerDay {
		shift := end - core.HoursPerDay
		begin -= shift
		end = core.HoursPerDay
		if begin < 0 {
			begin = 0
		}
	}
	if end-begin < duration {
		begin = max(0, end-duration)
	}
	return core.Preference{Window: core.Interval{Begin: begin, End: end}, Duration: duration}
}

// shifted returns the truth's exact interval displaced by delta — a
// defection setup when delta moves it off the true window.
func shifted(truth core.Preference, delta int) core.Preference {
	return clampWindow(truth.Window.Begin+delta, truth.Window.End+delta, truth.Duration)
}

// pinned returns a rigid window (width = duration) starting delta slots
// from the truth's begin. A rigid window forces the allocation onto
// that exact interval, so a displacement off the true window guarantees
// a defection — the "shifting his submitted interval" temptation of
// Section VII-B.
func pinned(truth core.Preference, delta int, rng *dist.RNG) core.Preference {
	var start int
	if delta >= 0 {
		// Exit past the window's right edge: beyond the last feasible
		// start. Fall back to the left when the day boundary clamps.
		start = truth.Window.End - truth.Duration + delta
		if start+truth.Duration > core.HoursPerDay {
			start = truth.Window.Begin - delta
		}
	} else {
		start = truth.Window.Begin + delta
		if start < 0 {
			start = truth.Window.End - truth.Duration - delta
		}
	}
	_ = rng
	return clampWindow(start, start+truth.Duration, truth.Duration)
}

// narrowed returns a sub-window of the truth covering frac of its
// width (at least the duration).
func narrowed(truth core.Preference, frac float64, rng *dist.RNG) core.Preference {
	width := truth.Window.Len()
	target := int(float64(width)*frac + 0.5)
	if target < truth.Duration {
		target = truth.Duration
	}
	if target >= width {
		return truth
	}
	offset := rng.Intn(width - target + 1)
	begin := truth.Window.Begin + offset
	return clampWindow(begin, begin+target, truth.Duration)
}

// Artificial is the paper's scripted agent: its true preference updates
// every round; in defect mode it submits a shifted interval and (per
// the engine's consumption rule) overrides its allocation; in
// cooperate mode it reports truthfully. Half of the artificial agents
// defect during rounds 1-8; all cooperate during rounds 9-16.
type Artificial struct {
	// DefectsEarly marks the half of the agents that defect in the
	// Defect stage (rounds 1-8).
	DefectsEarly bool
	// RNG drives the defection offsets.
	RNG *dist.RNG
}

var _ Participant = (*Artificial)(nil)

// Model implements Participant.
func (a *Artificial) Model() string {
	if a.DefectsEarly {
		return "agent-defector"
	}
	return "agent-cooperator"
}

// Submit implements Participant.
func (a *Artificial) Submit(round int, truth core.Preference, _ []RoundRecord) core.Preference {
	if a.DefectsEarly && round <= 8 {
		// Misreport: demand a rigid slot displaced off the truth.
		delta := 2 + a.RNG.Intn(3)
		if a.RNG.Bool(0.5) {
			delta = -delta
		}
		return pinned(truth, delta, a.RNG)
	}
	return truth
}
