package study

import (
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
)

func runDefaultStudy(t *testing.T, seed uint64) *StudyResult {
	t.Helper()
	res, err := RunStudy(DefaultStudyConfig(), dist.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStudyStructure(t *testing.T) {
	res := runDefaultStudy(t, 1)
	if len(res.Sessions) != 8 {
		t.Fatalf("got %d sessions, want 8 (4 T1 + 4 T2)", len(res.Sessions))
	}
	if len(res.Subjects) != 20 {
		t.Fatalf("got %d subjects, want 20", len(res.Subjects))
	}
	if got := len(res.SubjectsByTreatment(1)); got != 16 {
		t.Errorf("treatment 1 has %d subjects, want 16", got)
	}
	if got := len(res.SubjectsByTreatment(2)); got != 4 {
		t.Errorf("treatment 2 has %d subjects, want 4", got)
	}
	if got := len(res.NonConfused()); got != 16 {
		t.Errorf("non-confused count %d, want 16", got)
	}
	for _, s := range res.Subjects {
		if len(s.Result.Rounds) != 16 {
			t.Fatalf("subject %d played %d rounds, want 16", s.Number, len(s.Result.Rounds))
		}
	}
	// Roster placement: P7 and P8 are learners; 6, 9, 13, 15 confused.
	models := map[int]string{}
	for _, s := range res.Subjects {
		models[s.Number] = s.Result.Model
	}
	for _, n := range []int{7, 8} {
		if models[n] != "learner" {
			t.Errorf("subject %d model %q, want learner", n, models[n])
		}
	}
	for _, n := range []int{6, 9, 13, 15} {
		if models[n] != "confused" {
			t.Errorf("subject %d model %q, want confused", n, models[n])
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	a := runDefaultStudy(t, 5)
	b := runDefaultStudy(t, 5)
	for i := range a.Subjects {
		ra, rb := a.Subjects[i].Result.Rounds, b.Subjects[i].Result.Rounds
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("subject %d round %d diverged", i, j)
			}
		}
	}
}

// TestTableIIBands checks the Table II defection-rate pattern across
// seeds: Overall low, Initial highest, Cooperate lowest.
func TestTableIIBands(t *testing.T) {
	var overall, initial, defectStage, coop float64
	const reps = 10
	for seed := uint64(0); seed < reps; seed++ {
		res := runDefaultStudy(t, seed)
		all := res.AllSubjects()
		overall += MeanDefectionRate(all, StageOverall)
		initial += MeanDefectionRate(all, StageInitial)
		defectStage += MeanDefectionRate(all, StageDefect)
		coop += MeanDefectionRate(all, StageCooperate)
	}
	overall, initial, defectStage, coop = overall/reps, initial/reps, defectStage/reps, coop/reps

	if overall < 0.12 || overall > 0.30 {
		t.Errorf("overall defection %g outside the paper band around 0.205", overall)
	}
	if initial < 0.25 || initial > 0.50 {
		t.Errorf("initial defection %g outside the paper band around 0.363", initial)
	}
	if !(initial > defectStage && defectStage > coop) {
		t.Errorf("stage ordering violated: initial %g, defect %g, cooperate %g",
			initial, defectStage, coop)
	}
	if coop > 0.20 {
		t.Errorf("cooperate defection %g too high (paper 0.125)", coop)
	}
}

// TestTableIVBands checks the treatment split: T2 subjects defect less
// in Cooperate (paper: 0.03 vs 0.15).
func TestTableIVBands(t *testing.T) {
	var t1coop, t2coop float64
	const reps = 10
	for seed := uint64(20); seed < 20+reps; seed++ {
		res := runDefaultStudy(t, seed)
		t1coop += MeanDefectionRate(res.SubjectsByTreatment(1), StageCooperate)
		t2coop += MeanDefectionRate(res.SubjectsByTreatment(2), StageCooperate)
	}
	t1coop, t2coop = t1coop/reps, t2coop/reps
	if t2coop >= t1coop {
		t.Errorf("T2 cooperate defection %g should be below T1's %g", t2coop, t1coop)
	}
	if t2coop > 0.10 {
		t.Errorf("T2 cooperate defection %g too high (paper 0.03)", t2coop)
	}
}

// TestTableIIIMannWhitney: the Overall stage must reject the
// random-defection null decisively; Initial must not be decisive.
func TestTableIIIMannWhitney(t *testing.T) {
	res := runDefaultStudy(t, 42)
	all := res.AllSubjects()
	overall, err := DefectionTest(all, StageOverall)
	if err != nil {
		t.Fatal(err)
	}
	if overall.P >= 0.001 {
		t.Errorf("overall p = %g, want < 0.001 (paper < 0.0001)", overall.P)
	}
	coop, err := DefectionTest(all, StageCooperate)
	if err != nil {
		t.Fatal(err)
	}
	if coop.P >= 0.01 {
		t.Errorf("cooperate p = %g, want < 0.01 (paper < 0.0001)", coop.P)
	}
	initial, err := DefectionTest(all, StageInitial)
	if err != nil {
		t.Fatal(err)
	}
	if initial.P <= overall.P {
		t.Errorf("initial p (%g) should exceed overall p (%g): early rounds look closer to random",
			initial.P, overall.P)
	}
}

// TestFigure8TrueSelecting: non-confused subjects select their exact
// true interval more often in Cooperate than in Initial, and the
// Mann-Whitney test detects it (paper: 23.75% → 37.5%, p = 0.0143).
func TestFigure8TrueSelecting(t *testing.T) {
	var initial, coop float64
	const reps = 10
	for seed := uint64(50); seed < 50+reps; seed++ {
		res := runDefaultStudy(t, seed)
		all := res.AllSubjects()
		initial += MeanTrueSelectingRatio(all, StageInitial)
		coop += MeanTrueSelectingRatio(all, StageCooperate)
	}
	initial, coop = initial/reps, coop/reps
	if coop <= initial {
		t.Errorf("true-selecting ratio must rise: initial %g, cooperate %g", initial, coop)
	}
	if coop < 0.28 || coop > 0.50 {
		t.Errorf("cooperate true-selecting ratio %g outside the paper band around 0.375", coop)
	}

	res := runDefaultStudy(t, 42)
	mw, err := TrueSelectingTest(res.NonConfused())
	if err != nil {
		t.Fatal(err)
	}
	if !mw.Significant(0.05) {
		t.Errorf("figure 8 test p = %g, want < 0.05 (paper 0.0143)", mw.P)
	}
}

// TestFigure9Flexibility: the learners (P7, P8) defect early and then
// lock onto flexibility ratio 1; the intermediate average rises.
func TestFigure9Flexibility(t *testing.T) {
	res := runDefaultStudy(t, 7)
	var learnerLate, learnerEarly, nLearner float64
	var interEarly, interLate, nInter float64
	for _, s := range res.Subjects {
		series := FlexibilitySeries(s.Result)
		var early, late float64
		for i, v := range series {
			if i < 4 {
				early += v / 4
			}
			if i >= 12 {
				late += v / 4
			}
		}
		switch s.Result.Model {
		case "learner":
			learnerEarly += early
			learnerLate += late
			nLearner++
		case "intermediate":
			interEarly += early
			interLate += late
			nInter++
		}
	}
	if nLearner == 0 || nInter == 0 {
		t.Fatal("roster missing learner or intermediate subjects")
	}
	if learnerLate/nLearner < 0.99 {
		t.Errorf("learners' late flexibility ratio %g, want 1.0 (exact truth)", learnerLate/nLearner)
	}
	if learnerEarly/nLearner >= learnerLate/nLearner {
		t.Errorf("learners should start lower than they end: %g vs %g",
			learnerEarly/nLearner, learnerLate/nLearner)
	}
	if interLate/nInter <= interEarly/nInter {
		t.Errorf("intermediate flexibility ratio should rise: %g -> %g",
			interEarly/nInter, interLate/nInter)
	}
}

func TestStagesTable(t *testing.T) {
	want := map[string][2]int{
		"Overall":   {1, 16},
		"Initial":   {1, 4},
		"Defect":    {1, 8},
		"Cooperate": {9, 16},
	}
	for _, s := range Stages() {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected stage %q", s.Name)
			continue
		}
		if s.First != w[0] || s.Last != w[1] {
			t.Errorf("stage %s = [%d, %d], want %v", s.Name, s.First, s.Last, w)
		}
	}
	if StageOverall.Rounds() != 16 || StageInitial.Rounds() != 4 {
		t.Error("stage round counts wrong")
	}
}

func TestFlexibilityRatioMetric(t *testing.T) {
	truth := core.MustPreference(16, 22, 2)
	rec := RoundRecord{Truth: truth, Submitted: truth}
	if rec.FlexibilityRatio() != 1 {
		t.Errorf("exact truth ratio = %g, want 1", rec.FlexibilityRatio())
	}
	rec.Submitted = core.MustPreference(2, 6, 2) // disjoint: defection setup
	if rec.FlexibilityRatio() != 0 {
		t.Errorf("disjoint ratio = %g, want 0", rec.FlexibilityRatio())
	}
	rec.Submitted = core.MustPreference(16, 19, 2) // half the window
	if rec.FlexibilityRatio() != 0.5 {
		t.Errorf("half ratio = %g, want 0.5", rec.FlexibilityRatio())
	}
}

func TestArtificialAgentSchedule(t *testing.T) {
	rng := dist.New(3)
	defector := &Artificial{DefectsEarly: true, RNG: rng.Split()}
	cooperator := &Artificial{DefectsEarly: false, RNG: rng.Split()}
	truth := core.MustPreference(14, 20, 2)
	for round := 1; round <= 16; round++ {
		d := defector.Submit(round, truth, nil)
		c := cooperator.Submit(round, truth, nil)
		if c != truth {
			t.Errorf("round %d: cooperator submitted %v, want truth", round, c)
		}
		if round <= 8 {
			if d == truth {
				t.Errorf("round %d: defector submitted the truth", round)
			}
		} else if d != truth {
			t.Errorf("round %d: defector must cooperate after round 8, got %v", round, d)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	cfg := DefaultSessionConfig()
	rng := dist.New(1)
	if _, err := RunSession(cfg, 1, nil, nil, rng); err == nil {
		t.Error("session with no subjects should fail")
	}
	bad := cfg
	bad.Rounds = 0
	if _, err := RunSession(bad, 1, []Participant{&Rational{RNG: rng}}, nil, rng); err == nil {
		t.Error("zero rounds should be rejected")
	}
	bad = cfg
	bad.Pricer = nil
	if _, err := RunSession(bad, 1, []Participant{&Rational{RNG: rng}}, nil, rng); err == nil {
		t.Error("nil pricer should be rejected")
	}
}

func TestDefectionIsPunished(t *testing.T) {
	// The mechanism-side claim behind RQ1: within a session, defecting
	// rounds score lower on average than compliant rounds for the
	// population of subjects (defectors carry Ψ > compliants).
	res := runDefaultStudy(t, 11)
	var defSum, defN, okSum, okN float64
	for _, s := range res.Subjects {
		for _, r := range s.Result.Rounds {
			if r.Defected {
				defSum += r.Score
				defN++
			} else {
				okSum += r.Score
				okN++
			}
		}
	}
	if defN == 0 || okN == 0 {
		t.Fatal("study produced no defections or no compliant rounds")
	}
	if defSum/defN >= okSum/okN {
		t.Errorf("defecting rounds average score %g should be below compliant %g",
			defSum/defN, okSum/okN)
	}
}

func TestSubmittedWindowsAlwaysValid(t *testing.T) {
	// Property: every model's submission is a valid preference with the
	// truth's duration, across many random truths.
	rng := dist.New(99)
	models := []Participant{
		&Learner{RNG: rng.Split()},
		&Intermediate{RNG: rng.Split()},
		&Rational{RNG: rng.Split()},
		&Confused{RNG: rng.Split()},
		&Artificial{DefectsEarly: true, RNG: rng.Split()},
	}
	truthRNG := rng.Split()
	for trial := 0; trial < 2000; trial++ {
		dur := truthRNG.IntRange(1, 4)
		begin := truthRNG.Intn(core.HoursPerDay - dur - 2)
		end := truthRNG.IntRange(begin+dur+2, core.HoursPerDay)
		truth := core.MustPreference(begin, end, dur)
		round := truthRNG.IntRange(1, 16)
		for _, m := range models {
			sub := m.Submit(round, truth, nil)
			if err := sub.Validate(); err != nil {
				t.Fatalf("%s submitted invalid %v for truth %v: %v", m.Model(), sub, truth, err)
			}
			if sub.Duration != truth.Duration {
				t.Fatalf("%s changed duration: %v for truth %v", m.Model(), sub, truth)
			}
		}
	}
}
