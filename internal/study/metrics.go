package study

import (
	"fmt"

	"enki/internal/stats"
)

// Stage is one of the paper's round ranges (Section VII-D).
type Stage struct {
	Name  string
	First int // inclusive, 1-based
	Last  int // inclusive
}

// The paper's four stages over a 16-round session.
var (
	StageOverall   = Stage{Name: "Overall", First: 1, Last: 16}
	StageInitial   = Stage{Name: "Initial", First: 1, Last: 4}
	StageDefect    = Stage{Name: "Defect", First: 1, Last: 8}
	StageCooperate = Stage{Name: "Cooperate", First: 9, Last: 16}
)

// Stages lists the paper's stages in Table II order.
func Stages() []Stage {
	return []Stage{StageOverall, StageInitial, StageDefect, StageCooperate}
}

// Rounds returns the number of rounds the stage covers.
func (s Stage) Rounds() int { return s.Last - s.First + 1 }

// contains reports whether a 1-based round lies in the stage.
func (s Stage) contains(round int) bool { return round >= s.First && round <= s.Last }

// DefectionCount returns how many rounds of the stage the participant
// defected in.
func DefectionCount(p ParticipantResult, s Stage) int {
	var n int
	for _, r := range p.Rounds {
		if s.contains(r.Round) && r.Defected {
			n++
		}
	}
	return n
}

// DefectionRate is the participant's defection count over the stage's
// round count.
func DefectionRate(p ParticipantResult, s Stage) float64 {
	return float64(DefectionCount(p, s)) / float64(s.Rounds())
}

// TrueSelectingRatio is the fraction of the stage's rounds in which the
// participant submitted exactly its true interval (Section VII-D RQ2).
func TrueSelectingRatio(p ParticipantResult, s Stage) float64 {
	var n int
	for _, r := range p.Rounds {
		if s.contains(r.Round) && r.SubmittedTruth {
			n++
		}
	}
	return float64(n) / float64(s.Rounds())
}

// FlexibilitySeries returns the participant's per-round flexibility
// ratios in round order (the Figure 9 series).
func FlexibilitySeries(p ParticipantResult) []float64 {
	out := make([]float64, len(p.Rounds))
	for i, r := range p.Rounds {
		out[i] = r.FlexibilityRatio()
	}
	return out
}

// MeanDefectionRate averages DefectionRate over participants.
func MeanDefectionRate(ps []ParticipantResult, s Stage) float64 {
	if len(ps) == 0 {
		return 0
	}
	var sum float64
	for _, p := range ps {
		sum += DefectionRate(p, s)
	}
	return sum / float64(len(ps))
}

// MeanTrueSelectingRatio averages TrueSelectingRatio over participants.
func MeanTrueSelectingRatio(ps []ParticipantResult, s Stage) float64 {
	if len(ps) == 0 {
		return 0
	}
	var sum float64
	for _, p := range ps {
		sum += TrueSelectingRatio(p, s)
	}
	return sum / float64(len(ps))
}

// DefectionTest runs the Table III Mann-Whitney U test for a stage:
// sample 1 holds each subject's defection count, sample 2 the
// random-defection null (half the stage's rounds for every subject).
func DefectionTest(ps []ParticipantResult, s Stage) (stats.MannWhitneyResult, error) {
	if len(ps) == 0 {
		return stats.MannWhitneyResult{}, fmt.Errorf("study: no participants")
	}
	observed := make([]float64, len(ps))
	null := make([]float64, len(ps))
	for i, p := range ps {
		observed[i] = float64(DefectionCount(p, s))
		null[i] = float64(s.Rounds()) / 2
	}
	return stats.MannWhitneyU(observed, null)
}

// TrueSelectingTest runs the Figure 8 Mann-Whitney U test: each
// subject's true-interval selecting ratio in Initial (sample 1) against
// Cooperate (sample 2). Confused subjects should be excluded by the
// caller, as the paper does.
func TrueSelectingTest(ps []ParticipantResult) (stats.MannWhitneyResult, error) {
	if len(ps) == 0 {
		return stats.MannWhitneyResult{}, fmt.Errorf("study: no participants")
	}
	initial := make([]float64, len(ps))
	cooperate := make([]float64, len(ps))
	for i, p := range ps {
		initial[i] = TrueSelectingRatio(p, StageInitial)
		cooperate[i] = TrueSelectingRatio(p, StageCooperate)
	}
	return stats.MannWhitneyU(initial, cooperate)
}
