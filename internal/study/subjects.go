package study

import (
	"enki/internal/core"
	"enki/internal/dist"
)

// The behavioral subject models. Each is a stylized policy calibrated
// to the questionnaire clusters the paper reports: subjects who
// understood the game well (explore early, then lock onto the truth),
// subjects with intermediate understanding (flexibility grows with
// experience), mostly-rational subjects, and the four subjects who
// reported not understanding the game at all (random play).

// Learner models a subject who understands the game well (the paper's
// P7/P8 pattern): it experiments with misreports in the early rounds,
// compares the scores of truthful and untruthful rounds, and commits to
// its exact true interval once the evidence (or the Cooperate stage)
// arrives.
type Learner struct {
	// RNG drives exploration.
	RNG *dist.RNG
	// ExploreRounds is how many opening rounds are exploratory
	// (default 6 when zero).
	ExploreRounds int
}

var _ Participant = (*Learner)(nil)

// Model implements Participant.
func (*Learner) Model() string { return "learner" }

// Submit implements Participant.
func (l *Learner) Submit(round int, truth core.Preference, history []RoundRecord) core.Preference {
	explore := l.ExploreRounds
	if explore == 0 {
		explore = 6
	}
	if round > explore {
		return truth // committed: exact true interval (Cooperate behavior)
	}
	// During exploration, compare evidence so far; a learner that has
	// already seen defection hurt stops early.
	if truthAvg, defectAvg, ok := scoreSplit(history); ok && defectAvg < truthAvg {
		return truth
	}
	if l.RNG.Bool(0.8) {
		delta := 2 + l.RNG.Intn(3)
		if l.RNG.Bool(0.5) {
			delta = -delta
		}
		return pinned(truth, delta, l.RNG)
	}
	return truth
}

// scoreSplit averages past scores for truthful-compliant rounds vs
// defecting rounds. ok is false until both kinds have been observed.
func scoreSplit(history []RoundRecord) (truthAvg, defectAvg float64, ok bool) {
	var ts, tn, ds, dn float64
	for _, r := range history {
		if r.Defected {
			ds += r.Score
			dn++
		} else {
			ts += r.Score
			tn++
		}
	}
	if tn == 0 || dn == 0 {
		return 0, 0, false
	}
	return ts / tn, ds / dn, true
}

// Intermediate models a subject with partial understanding: it starts
// by submitting a narrow slice of its true window (hedging) and widens
// its submission as rounds pass — the rising flexibility-ratio pattern
// of Figure 9's "average of four subjects". Early on it occasionally
// defects outright.
type Intermediate struct {
	// RNG drives the hedging noise.
	RNG *dist.RNG
}

var _ Participant = (*Intermediate)(nil)

// Model implements Participant.
func (*Intermediate) Model() string { return "intermediate" }

// Submit implements Participant.
func (m *Intermediate) Submit(round int, truth core.Preference, _ []RoundRecord) core.Preference {
	defectP := 0.5 - 0.045*float64(round)
	if defectP > 0 && m.RNG.Bool(defectP) {
		delta := 2 + m.RNG.Intn(3)
		if m.RNG.Bool(0.5) {
			delta = -delta
		}
		return pinned(truth, delta, m.RNG)
	}
	frac := 0.38 + 0.036*float64(round) + m.RNG.FloatRange(-0.05, 0.05)
	if frac > 1 {
		frac = 1
	}
	return narrowed(truth, frac, m.RNG)
}

// Rational models a subject who trusts the mechanism from the start:
// nearly always truthful, with rare narrow hedges early on.
type Rational struct {
	// RNG drives the rare hedges.
	RNG *dist.RNG
}

var _ Participant = (*Rational)(nil)

// Model implements Participant.
func (*Rational) Model() string { return "rational" }

// Submit implements Participant.
func (r *Rational) Submit(round int, truth core.Preference, _ []RoundRecord) core.Preference {
	hedgeP := 0.1
	if round > 8 {
		hedgeP = 0.03
	}
	if r.RNG.Bool(hedgeP) {
		if r.RNG.Bool(0.5) {
			return narrowed(truth, 0.6, r.RNG)
		}
		return pinned(truth, 1, r.RNG)
	}
	return truth
}

// Confused models the four subjects who reported not understanding the
// game: a uniformly random submission around the truth every round.
type Confused struct {
	// RNG drives the random submissions.
	RNG *dist.RNG
}

var _ Participant = (*Confused)(nil)

// Model implements Participant.
func (*Confused) Model() string { return "confused" }

// Submit implements Participant.
func (c *Confused) Submit(_ int, truth core.Preference, _ []RoundRecord) core.Preference {
	begin := truth.Window.Begin + c.RNG.IntRange(-4, 4)
	width := truth.Duration + c.RNG.Intn(5)
	return clampWindow(begin, begin+width, truth.Duration)
}
