package study

import (
	"fmt"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
)

// SessionConfig parameterizes one game session (Section VII-C).
type SessionConfig struct {
	// Rounds is the number of game rounds (paper: 16).
	Rounds int
	// TruthChangeEvery is how often subjects receive a fresh true
	// preference (paper: every 4 rounds). Artificial agents' truths
	// update every round.
	TruthChangeEvery int
	// Pricer prices hourly load.
	Pricer pricing.Pricer
	// Rating is the power rating r in kW.
	Rating float64
	// Mechanism carries the payment scaling factors.
	Mechanism mechanism.Config
	// ScoreScale converts utility into game points around 50:
	// score = clamp(0, 100, 50 + ScoreScale·U). Zero means 4.
	ScoreScale float64
}

// DefaultSessionConfig returns the paper's session parameters.
func DefaultSessionConfig() SessionConfig {
	return SessionConfig{
		Rounds:           16,
		TruthChangeEvery: 4,
		Pricer:           pricing.Quadratic{Sigma: pricing.DefaultSigma},
		Rating:           core.DefaultPowerRating,
		Mechanism:        mechanism.DefaultConfig(),
		ScoreScale:       4,
	}
}

func (c SessionConfig) validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("study: rounds %d must be positive", c.Rounds)
	}
	if c.TruthChangeEvery <= 0 {
		return fmt.Errorf("study: truth change period %d must be positive", c.TruthChangeEvery)
	}
	if c.Pricer == nil {
		return fmt.Errorf("study: nil pricer")
	}
	if c.Rating <= 0 {
		return fmt.Errorf("study: rating %g must be positive", c.Rating)
	}
	if c.ScoreScale < 0 {
		return fmt.Errorf("study: score scale %g must be nonnegative", c.ScoreScale)
	}
	return c.Mechanism.Validate()
}

// ParticipantResult is one participant's full session trajectory.
type ParticipantResult struct {
	Model     string        // behavioral model name
	IsSubject bool          // true for subjects, false for artificial agents
	Rounds    []RoundRecord // one record per round
}

// SessionResult is the outcome of a full session.
type SessionResult struct {
	Treatment    int                 // 1 or 2
	Participants []ParticipantResult // subjects first, then agents
}

// Subjects returns only the subject trajectories.
func (s *SessionResult) Subjects() []ParticipantResult {
	var out []ParticipantResult
	for _, p := range s.Participants {
		if p.IsSubject {
			out = append(out, p)
		}
	}
	return out
}

// player is the engine's per-participant state.
type player struct {
	participant Participant
	isSubject   bool
	truth       core.Preference
	rho         float64
	history     []RoundRecord
}

// RunSession plays one full session: subjects and artificial agents
// submit preferences each round, Enki's greedy scheduler allocates,
// consumption is automated (within the true window, closest to the
// allocation), payments follow Eq. 7, and each participant's utility
// is transformed into a 0-100 score.
func RunSession(cfg SessionConfig, treatment int, subjects, agents []Participant, rng *dist.RNG) (*SessionResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ScoreScale == 0 {
		cfg.ScoreScale = 4
	}
	if len(subjects) == 0 {
		return nil, fmt.Errorf("study: session needs at least one subject")
	}

	gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
	if err != nil {
		return nil, err
	}

	players := make([]*player, 0, len(subjects)+len(agents))
	for _, s := range subjects {
		players = append(players, &player{participant: s, isSubject: true})
	}
	for _, a := range agents {
		players = append(players, &player{participant: a, isSubject: false})
	}

	greedy := &sched.Greedy{Pricer: cfg.Pricer, Rating: cfg.Rating, RNG: rng.Split()}

	for round := 1; round <= cfg.Rounds; round++ {
		// Refresh truths: subjects every TruthChangeEvery rounds,
		// artificial agents every round.
		for _, p := range players {
			if !p.isSubject || (round-1)%cfg.TruthChangeEvery == 0 {
				prof := gen.Draw()
				p.truth = prof.Wide
				p.rho = prof.Rho
			}
		}

		if err := playRound(cfg, round, players, greedy); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
	}

	res := &SessionResult{Treatment: treatment}
	for _, p := range players {
		res.Participants = append(res.Participants, ParticipantResult{
			Model:     p.participant.Model(),
			IsSubject: p.isSubject,
			Rounds:    p.history,
		})
	}
	return res, nil
}

func playRound(cfg SessionConfig, round int, players []*player, greedy *sched.Greedy) error {
	reports := make([]core.Report, len(players))
	for i, p := range players {
		sub := p.participant.Submit(round, p.truth, p.history)
		if err := sub.Validate(); err != nil {
			return fmt.Errorf("participant %d (%s): invalid submission: %w", i, p.participant.Model(), err)
		}
		if sub.Duration != p.truth.Duration {
			return fmt.Errorf("participant %d (%s): submitted duration %d, truth %d",
				i, p.participant.Model(), sub.Duration, p.truth.Duration)
		}
		reports[i] = core.Report{ID: core.HouseholdID(i), Pref: sub}
	}

	assignments, err := greedy.Allocate(reports)
	if err != nil {
		return err
	}

	assigned := make([]core.Interval, len(players))
	consumed := make([]core.Interval, len(players))
	prefs := make([]core.Preference, len(players))
	for i, p := range players {
		prefs[i] = reports[i].Pref
		assigned[i] = assignments[i].Interval
		// Consumption is automated per Section VII-B: within the true
		// interval and close to the allocation.
		consumed[i] = core.ClosestConsumption(p.truth, assigned[i])
	}

	predicted := mechanism.FlexibilityScores(prefs)
	flex := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	defect := mechanism.DefectionScores(cfg.Pricer, cfg.Rating, assigned, consumed)
	psi, err := mechanism.SocialCostScores(flex, defect, cfg.Mechanism.K)
	if err != nil {
		return err
	}
	cost := pricing.CostOfIntervals(cfg.Pricer, consumed, cfg.Rating)
	payments, err := mechanism.Payments(psi, cfg.Mechanism.Xi, cost)
	if err != nil {
		return err
	}

	for i, p := range players {
		valuation := core.Valuation(core.Satisfaction(assigned[i], p.truth), p.truth.Duration, p.rho)
		utility := core.Utility(valuation, payments[i])
		score := 50 + cfg.ScoreScale*utility
		if score < 0 {
			score = 0
		} else if score > 100 {
			score = 100
		}
		p.history = append(p.history, RoundRecord{
			Round:          round,
			Truth:          p.truth,
			Submitted:      reports[i].Pref,
			Allocation:     assigned[i],
			Consumption:    consumed[i],
			Payment:        payments[i],
			Utility:        utility,
			Score:          score,
			Defected:       core.Defected(assigned[i], consumed[i]),
			SubmittedTruth: reports[i].Pref == p.truth,
		})
	}
	return nil
}
