package study

import (
	"strings"
	"testing"

	"enki/internal/dist"
)

func TestQuestionnaireMarginals(t *testing.T) {
	res := runDefaultStudy(t, 1)
	qs := Questionnaires(res, dist.New(9))
	if len(qs) != 20 {
		t.Fatalf("got %d questionnaires, want 20", len(qs))
	}
	s := Summarize(qs)
	// Section VII-A: four female, three undergraduates, four with prior
	// gambling experience, four who did not understand at all.
	if s.Female != 4 {
		t.Errorf("female = %d, want 4", s.Female)
	}
	if s.Undergraduates != 3 {
		t.Errorf("undergraduates = %d, want 3", s.Undergraduates)
	}
	if s.Gambling != 4 {
		t.Errorf("gambling = %d, want 4", s.Gambling)
	}
	if s.ByUnderstanding[DidNotUnderstand] != 4 {
		t.Errorf("did-not-understand = %d, want 4", s.ByUnderstanding[DidNotUnderstand])
	}
	total := 0
	for _, n := range s.ByUnderstanding {
		total += n
	}
	if total != 20 {
		t.Errorf("understanding counts sum to %d, want 20", total)
	}
	render := s.Render()
	if !strings.Contains(render, "4 female") || !strings.Contains(render, "3 undergraduates") {
		t.Errorf("render missing marginals:\n%s", render)
	}
}

func TestQuestionnaireRiskBounds(t *testing.T) {
	res := runDefaultStudy(t, 2)
	for _, q := range Questionnaires(res, dist.New(4)) {
		if q.RiskTolerance < 0 || q.RiskTolerance > 1 {
			t.Errorf("subject %d: risk tolerance %g outside [0, 1]", q.Number, q.RiskTolerance)
		}
		if q.Understanding < UnderstoodWell || q.Understanding > DidNotUnderstand {
			t.Errorf("subject %d: invalid understanding %v", q.Number, q.Understanding)
		}
	}
}

func TestUnderstandingPredictsBehavior(t *testing.T) {
	// Average across seeds: well-understanding subjects defect less in
	// Cooperate than subjects who did not understand.
	var well, notAtAll float64
	const reps = 8
	for seed := uint64(0); seed < reps; seed++ {
		res := runDefaultStudy(t, seed)
		qs := Questionnaires(res, dist.New(seed+100))
		rates := UnderstandingPredictsBehavior(res, qs)
		well += rates[UnderstoodWell]
		notAtAll += rates[DidNotUnderstand]
	}
	if well/reps >= notAtAll/reps {
		t.Errorf("understanding should predict cooperation: well %g vs not-at-all %g",
			well/reps, notAtAll/reps)
	}
}

func TestUnderstandingString(t *testing.T) {
	if UnderstoodWell.String() != "well" || DidNotUnderstand.String() != "not at all" {
		t.Error("Understanding.String labels wrong")
	}
	if !strings.Contains(Understanding(99).String(), "99") {
		t.Error("unknown understanding should render its value")
	}
}
