package study

import (
	"fmt"

	"enki/internal/dist"
	"enki/internal/parallel"
)

// StudyConfig parameterizes the full two-treatment study.
type StudyConfig struct {
	// Session is the per-session game configuration.
	Session SessionConfig
	// Workers fans the independent sessions out over this many
	// goroutines (0 = runtime.GOMAXPROCS(0), 1 = serial). Each session
	// draws from a stream derived purely from the study RNG and the
	// session index, so results are identical for every worker count.
	Workers int
	// T1Sessions is the number of Treatment 1 sessions (paper: 4),
	// each with T1SubjectsPerSession subjects and T1Agents artificial
	// agents.
	T1Sessions           int
	T1SubjectsPerSession int
	T1Agents             int
	// T2Sessions is the number of Treatment 2 sessions (paper: 4),
	// each with one subject and T2Agents artificial agents.
	T2Sessions int
	T2Agents   int
}

// DefaultStudyConfig returns the paper's design: four T1 sessions of
// four subjects plus six artificial agents, and four T2 sessions of one
// subject plus four artificial agents — 20 subjects in total.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		Session:              DefaultSessionConfig(),
		T1Sessions:           4,
		T1SubjectsPerSession: 4,
		T1Agents:             6,
		T2Sessions:           4,
		T2Agents:             4,
	}
}

// SubjectRecord couples a subject's trajectory with its study-wide
// numbering and treatment.
type SubjectRecord struct {
	// Number is the 1-based subject number. The roster places the two
	// well-understanding learners at 7 and 8 (the paper's P7 and P8)
	// and the four confused subjects at numbers 6, 9, 13, and 15 —
	// inside Treatment 1, since the paper's Treatment 2 defection rates
	// (0.03 in Cooperate) are incompatible with a confused subject.
	Number    int
	Treatment int
	Result    ParticipantResult
}

// StudyResult is the outcome of the full study.
type StudyResult struct {
	Sessions []SessionResult
	Subjects []SubjectRecord // all 20 subjects in roster order
}

// SubjectsByTreatment returns the trajectories of one treatment's
// subjects.
func (r *StudyResult) SubjectsByTreatment(treatment int) []ParticipantResult {
	var out []ParticipantResult
	for _, s := range r.Subjects {
		if s.Treatment == treatment {
			out = append(out, s.Result)
		}
	}
	return out
}

// AllSubjects returns every subject trajectory in roster order.
func (r *StudyResult) AllSubjects() []ParticipantResult {
	out := make([]ParticipantResult, len(r.Subjects))
	for i, s := range r.Subjects {
		out[i] = s.Result
	}
	return out
}

// NonConfused returns the subjects who understood the game — the
// paper removes the four confused subjects before the Figure 8 test.
func (r *StudyResult) NonConfused() []ParticipantResult {
	var out []ParticipantResult
	for _, s := range r.Subjects {
		if s.Result.Model != "confused" {
			out = append(out, s.Result)
		}
	}
	return out
}

// rosterModel returns the behavioral model for a 1-based subject
// number: confused at 6, 9, 13, 15; learners at 7 and 8; rational at
// 1, 11, 16; intermediate elsewhere (including all four Treatment 2
// subjects, 17-20).
func rosterModel(number int, rng *dist.RNG) Participant {
	switch number {
	case 6, 9, 13, 15:
		return &Confused{RNG: rng}
	case 7, 8:
		return &Learner{RNG: rng}
	case 1, 11, 16:
		return &Rational{RNG: rng}
	default:
		return &Intermediate{RNG: rng}
	}
}

// sessionSpec pins down everything one session needs before it runs,
// so sessions can execute in any order on any worker.
type sessionSpec struct {
	treatment    int
	subjectCount int
	agentCount   int
	firstNumber  int
}

// RunStudy executes the full two-treatment study. Subject numbers 1-16
// fill the Treatment 1 sessions in order; numbers 17-20 are the
// Treatment 2 subjects.
//
// Sessions are independent jobs fanned out over cfg.Workers goroutines.
// Each session's randomness is a pure labeled split of rng by session
// index (the caller's rng is never advanced), so the study is
// bit-for-bit identical for every worker count.
func RunStudy(cfg StudyConfig, rng *dist.RNG) (*StudyResult, error) {
	if cfg.T1Sessions < 0 || cfg.T2Sessions < 0 {
		return nil, fmt.Errorf("study: negative session counts")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("study: workers %d must be non-negative", cfg.Workers)
	}

	specs := make([]sessionSpec, 0, cfg.T1Sessions+cfg.T2Sessions)
	number := 1
	for s := 0; s < cfg.T1Sessions; s++ {
		specs = append(specs, sessionSpec{1, cfg.T1SubjectsPerSession, cfg.T1Agents, number})
		number += cfg.T1SubjectsPerSession
	}
	for s := 0; s < cfg.T2Sessions; s++ {
		specs = append(specs, sessionSpec{2, 1, cfg.T2Agents, number})
		number++
	}

	sessions := make([]SessionResult, len(specs))
	records := make([][]SubjectRecord, len(specs))
	engine := parallel.Engine{Workers: cfg.Workers}
	err := engine.ForEach(len(specs), func(si int) error {
		spec := specs[si]
		srng := rng.Split(uint64(si))
		subjects := make([]Participant, spec.subjectCount)
		numbers := make([]int, spec.subjectCount)
		for i := range subjects {
			numbers[i] = spec.firstNumber + i
			subjects[i] = rosterModel(numbers[i], srng.Split())
		}
		agents := make([]Participant, spec.agentCount)
		for i := range agents {
			// Half of the artificial agents defect in rounds 1-8.
			agents[i] = &Artificial{DefectsEarly: i < spec.agentCount/2, RNG: srng.Split()}
		}
		session, err := RunSession(cfg.Session, spec.treatment, subjects, agents, srng.Split())
		if err != nil {
			return fmt.Errorf("treatment %d: %w", spec.treatment, err)
		}
		sessions[si] = *session
		recs := make([]SubjectRecord, spec.subjectCount)
		for i, p := range session.Subjects() {
			recs[i] = SubjectRecord{Number: numbers[i], Treatment: spec.treatment, Result: p}
		}
		records[si] = recs
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &StudyResult{Sessions: sessions}
	for _, recs := range records {
		res.Subjects = append(res.Subjects, recs...)
	}
	return res, nil
}
