package study

import (
	"fmt"
	"strings"

	"enki/internal/dist"
)

// Understanding is a subject's self-reported grasp of the game in the
// post-study questionnaire (Section VII-B).
type Understanding int

// Self-reported understanding levels.
const (
	// UnderstoodWell corresponds to the paper's P7/P8 cluster.
	UnderstoodWell Understanding = iota + 1
	// UnderstoodPartly is the intermediate cluster.
	UnderstoodPartly
	// DidNotUnderstand marks the four subjects who "had not understood
	// the game at all".
	DidNotUnderstand
)

// String implements fmt.Stringer.
func (u Understanding) String() string {
	switch u {
	case UnderstoodWell:
		return "well"
	case UnderstoodPartly:
		return "partly"
	case DidNotUnderstand:
		return "not at all"
	default:
		return fmt.Sprintf("Understanding(%d)", int(u))
	}
}

// Questionnaire is one subject's post-study answers: the demographic
// attributes Section VII-A reports (20 computer-science students, four
// female, three undergraduates, four with prior gambling experience)
// and the self-assessments Section VII-B asks for.
type Questionnaire struct {
	Number        int           // 1-based subject number
	Female        bool          // 4 of 20
	Undergraduate bool          // 3 of 20
	Gambling      bool          // 4 of 20 with prior gambling experience
	Understanding Understanding // self-reported understanding
	RiskTolerance float64       // self-reported risk attitude in [0, 1]
}

// QuestionnaireFor synthesizes a subject's questionnaire consistent
// with its behavioral model: confused subjects report not understanding
// at all, learners report understanding well, and risk tolerance rises
// with how aggressively the model explores. Demographics follow the
// paper's marginals deterministically by subject number.
func QuestionnaireFor(rec SubjectRecord, rng *dist.RNG) Questionnaire {
	q := Questionnaire{
		Number: rec.Number,
		// Section VII-A marginals, assigned by fixed positions.
		Female:        rec.Number == 2 || rec.Number == 5 || rec.Number == 12 || rec.Number == 18,
		Undergraduate: rec.Number == 3 || rec.Number == 10 || rec.Number == 17,
		Gambling:      rec.Number == 4 || rec.Number == 8 || rec.Number == 14 || rec.Number == 20,
	}
	switch rec.Result.Model {
	case "confused":
		q.Understanding = DidNotUnderstand
		q.RiskTolerance = 0.4 + 0.3*rng.Float64()
	case "learner":
		q.Understanding = UnderstoodWell
		q.RiskTolerance = 0.6 + 0.3*rng.Float64()
	case "rational":
		q.Understanding = UnderstoodWell
		q.RiskTolerance = 0.1 + 0.2*rng.Float64()
	default:
		q.Understanding = UnderstoodPartly
		q.RiskTolerance = 0.3 + 0.4*rng.Float64()
	}
	return q
}

// Questionnaires builds the full post-study questionnaire set.
func Questionnaires(res *StudyResult, rng *dist.RNG) []Questionnaire {
	out := make([]Questionnaire, len(res.Subjects))
	for i, rec := range res.Subjects {
		out[i] = QuestionnaireFor(rec, rng.Split())
	}
	return out
}

// QuestionnaireSummary aggregates the questionnaire the way Section
// VII-A reports it.
type QuestionnaireSummary struct {
	Subjects        int
	Female          int
	Undergraduates  int
	Gambling        int
	ByUnderstanding map[Understanding]int
}

// Summarize computes the questionnaire marginals.
func Summarize(qs []Questionnaire) QuestionnaireSummary {
	s := QuestionnaireSummary{
		Subjects:        len(qs),
		ByUnderstanding: make(map[Understanding]int, 3),
	}
	for _, q := range qs {
		if q.Female {
			s.Female++
		}
		if q.Undergraduate {
			s.Undergraduates++
		}
		if q.Gambling {
			s.Gambling++
		}
		s.ByUnderstanding[q.Understanding]++
	}
	return s
}

// Render prints the Section VII-A style summary line.
func (s QuestionnaireSummary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d subjects (%d female; %d undergraduates; %d with prior gambling experience)\n",
		s.Subjects, s.Female, s.Undergraduates, s.Gambling)
	fmt.Fprintf(&b, "self-reported understanding: well %d, partly %d, not at all %d\n",
		s.ByUnderstanding[UnderstoodWell], s.ByUnderstanding[UnderstoodPartly],
		s.ByUnderstanding[DidNotUnderstand])
	return b.String()
}

// UnderstandingPredictsBehavior checks the paper's qualitative link:
// subjects reporting better understanding defect less in the Cooperate
// stage. It returns the mean Cooperate defection rate per reported
// understanding level.
func UnderstandingPredictsBehavior(res *StudyResult, qs []Questionnaire) map[Understanding]float64 {
	sums := make(map[Understanding]float64, 3)
	counts := make(map[Understanding]float64, 3)
	byNumber := make(map[int]ParticipantResult, len(res.Subjects))
	for _, rec := range res.Subjects {
		byNumber[rec.Number] = rec.Result
	}
	for _, q := range qs {
		p, ok := byNumber[q.Number]
		if !ok {
			continue
		}
		sums[q.Understanding] += DefectionRate(p, StageCooperate)
		counts[q.Understanding]++
	}
	out := make(map[Understanding]float64, len(sums))
	for u, s := range sums {
		out[u] = s / counts[u]
	}
	return out
}
