package dist

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams should start differently")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(2)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	counts := make([]int, 6)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(6) value %d drawn %d times; expected ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(1, 4) // the paper's duration distribution U[1,4]
		if v < 1 || v > 4 {
			t.Fatalf("IntRange(1,4) = %d out of range", v)
		}
	}
	if got := r.IntRange(7, 7); got != 7 {
		t.Errorf("degenerate IntRange = %d, want 7", got)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.FloatRange(1, 10) // the paper's ρ ~ U[1,10]
		if v < 1 || v >= 10 {
			t.Fatalf("FloatRange(1,10) = %g out of range", v)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(6)
	const lambda = 16.0 // the paper's begin-time distribution
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.Poisson(lambda))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-lambda) > 0.2 {
		t.Errorf("Poisson(16) mean = %g, want ~16", mean)
	}
	if math.Abs(variance-lambda) > 0.8 {
		t.Errorf("Poisson(16) variance = %g, want ~16", variance)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := New(8)
	const lambda = 100.0
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(lambda))
	}
	if mean := sum / n; math.Abs(mean-lambda) > 1 {
		t.Errorf("Poisson(100) mean = %g, want ~100", mean)
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(0) should panic")
		}
	}()
	New(1).Poisson(0)
}

func TestNormMoments(t *testing.T) {
	r := New(9)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %g, want ~1", variance)
	}
}

func TestNormRange(t *testing.T) {
	r := New(10)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormRange(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("NormRange(5,2) mean = %g, want ~5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) = %v is not a permutation", p)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Perm(10) = %v missing elements", p)
	}
}

func TestBool(t *testing.T) {
	r := New(12)
	const n = 50000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %g, want ~0.3", frac)
	}
}
