// Package dist provides the deterministic random-number substrate used
// by every stochastic component of the reproduction: a seeded SplitMix64
// generator and the samplers the simulation study needs (Poisson,
// uniform, normal). All experiment code draws through this package so
// that runs are reproducible bit-for-bit from a seed; no global
// math/rand state is used anywhere in the repository.
package dist

import "math"

// RNG is a deterministic pseudo-random generator (SplitMix64). The zero
// value is a valid generator seeded with 0; prefer New for clarity.
type RNG struct {
	state uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically
// independent of r's. Use it to give each simulated household or round
// its own stream so adding draws in one place does not perturb others.
//
// Without labels, Split consumes one draw from r: the child's stream
// depends on how many draws and splits preceded it, which is fine for
// serial code but useless for parallel fan-out.
//
// With labels, Split is a pure function of r's current state and the
// label sequence — it does not advance r. Two labeled splits with the
// same labels from the same state name the same stream no matter how
// many other streams were derived in between or on which goroutine,
// which is what lets the experiment engine give each (population,
// round) job a reproducible stream regardless of worker count:
//
//	root := dist.New(cfg.Seed)
//	rng := root.Split(labelSweep, uint64(population), uint64(round))
//
// Distinct label sequences yield decorrelated SplitMix64 streams (each
// label is folded through the SplitMix64 finalizer).
func (r *RNG) Split(labels ...uint64) *RNG {
	if len(labels) == 0 {
		return &RNG{state: r.Uint64()}
	}
	s := r.state
	for _, l := range labels {
		s = mix64(s ^ mix64(l+0x9e3779b97f4a7c15))
	}
	return &RNG{state: s}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche mix used to
// fold labels into a derived stream's seed.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics (programming error, not runtime input).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in the inclusive range [lo, hi].
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("dist: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// FloatRange returns a uniform float64 in [lo, hi).
func (r *RNG) FloatRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Poisson samples a Poisson(lambda) variate using Knuth's product
// method, adequate for the paper's λ = 16. It panics on λ ≤ 0.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		panic("dist: Poisson with non-positive lambda")
	}
	// For large λ split the draw to avoid underflow of e^{-λ}.
	if lambda > 30 {
		half := math.Floor(lambda / 2)
		return r.Poisson(half) + r.Poisson(lambda-half)
	}
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormRange returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) NormRange(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
