package dist

import (
	"math"
	"testing"
)

// TestLabeledSplitGolden pins the labeled derivation so it stays stable
// across runs, platforms, and refactors: every figure of the paper
// reproduction is seeded through these streams, so changing them
// silently would change every experiment's output.
func TestLabeledSplitGolden(t *testing.T) {
	tests := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"New(1).Split(0)", New(1).Split(0).Uint64(), 0x85c61a300ec70fa1},
		{"New(1).Split(1)", New(1).Split(1).Uint64(), 0x21a5715431dc4cc7},
		{"New(1).Split(2,3)", New(1).Split(2, 3).Uint64(), 0xbd9468c61a2b7e40},
		{"New(1).Split(3,2)", New(1).Split(3, 2).Uint64(), 0x6918b63dc08a3b9c},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("%s = %#x, want %#x", tt.name, tt.got, tt.want)
		}
	}
	r := New(42).Split(7, 0, 9)
	if a := r.Uint64(); a != 0xcfa555fb5cc06114 {
		t.Errorf("New(42).Split(7,0,9) first draw = %#x", a)
	}
	if b := r.Uint64(); b != 0xf4080bdc5c68d387 {
		t.Errorf("New(42).Split(7,0,9) second draw = %#x", b)
	}
}

// TestLabeledSplitIsPure: a labeled split must not advance the receiver
// and must be independent of any other labeled splits taken before it —
// the property the parallel engine relies on for worker-count-
// independent reproducibility.
func TestLabeledSplitIsPure(t *testing.T) {
	a := New(9)
	first := a.Split(4, 2).Uint64()
	// Derive a pile of unrelated streams in between.
	for l := uint64(0); l < 100; l++ {
		_ = a.Split(l).Uint64()
	}
	if again := a.Split(4, 2).Uint64(); again != first {
		t.Errorf("labeled split changed after unrelated labeled splits: %#x vs %#x", again, first)
	}
	// The receiver's own stream is untouched.
	b := New(9)
	if a.Uint64() != b.Uint64() {
		t.Error("labeled Split advanced the receiver's state")
	}
	// An unlabeled split, by contrast, consumes a draw.
	c, d := New(9), New(9)
	c.Split()
	if c.Uint64() == d.Uint64() {
		t.Error("unlabeled Split should advance the receiver's state")
	}
}

// TestLabeledSplitDistinctStreams: distinct labels (and distinct label
// orders) must open distinct streams.
func TestLabeledSplitDistinctStreams(t *testing.T) {
	r := New(1)
	seen := make(map[uint64]uint64)
	for l := uint64(0); l < 4096; l++ {
		v := r.Split(l).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("labels %d and %d opened the same stream", prev, l)
		}
		seen[v] = l
	}
	if r.Split(2, 3).Uint64() == r.Split(3, 2).Uint64() {
		t.Error("label order should matter")
	}
	if r.Split(5).Uint64() == r.Split(5, 0).Uint64() {
		t.Error("label arity should matter")
	}
}

// TestLabeledSplitStreamsUncorrelated checks that sibling streams are
// statistically independent: each is uniform, and adjacent labels show
// no linear correlation.
func TestLabeledSplitStreamsUncorrelated(t *testing.T) {
	const streams = 64
	const draws = 2048
	r := New(123)
	series := make([][]float64, streams)
	for s := range series {
		rng := r.Split(uint64(s))
		series[s] = make([]float64, draws)
		var sum float64
		for i := range series[s] {
			series[s][i] = rng.Float64()
			sum += series[s][i]
		}
		if mean := sum / draws; math.Abs(mean-0.5) > 0.05 {
			t.Errorf("stream %d mean %g strays from 0.5", s, mean)
		}
	}
	for s := 1; s < streams; s++ {
		if rho := pearson(series[s-1], series[s]); math.Abs(rho) > 0.08 {
			t.Errorf("streams %d and %d correlate: rho = %g", s-1, s, rho)
		}
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
