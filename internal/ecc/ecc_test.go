package ecc

import (
	"errors"
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
)

// routine synthesizes a household with start ~ round(N(mu, sigma)) and
// a fixed duration.
func routine(rng *dist.RNG, mu, sigma float64, dur int) core.Interval {
	start := int(math.Round(rng.NormRange(mu, sigma)))
	if start < 0 {
		start = 0
	}
	if start > core.HoursPerDay-dur {
		start = core.HoursPerDay - dur
	}
	return core.Interval{Begin: start, End: start + dur}
}

func TestNewLearnerValidation(t *testing.T) {
	if _, err := NewLearner(WithAlpha(0)); err == nil {
		t.Error("alpha 0 should be rejected")
	}
	if _, err := NewLearner(WithAlpha(1.5)); err == nil {
		t.Error("alpha > 1 should be rejected")
	}
	if _, err := NewLearner(WithCoverage(0)); err == nil {
		t.Error("coverage 0 should be rejected")
	}
	if _, err := NewLearner(WithCoverage(2)); err == nil {
		t.Error("coverage > 1 should be rejected")
	}
	if _, err := NewLearner(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestObserveValidation(t *testing.T) {
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Observe(core.Interval{Begin: 20, End: 18}); err == nil {
		t.Error("invalid interval should be rejected")
	}
	if err := l.Observe(core.Interval{Begin: 5, End: 5}); err == nil {
		t.Error("empty interval should be rejected")
	}
}

func TestPredictBeforeObserve(t *testing.T) {
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Predict(); !errors.Is(err, ErrNoObservations) {
		t.Errorf("expected ErrNoObservations, got %v", err)
	}
	if l.Confidence() != 0 {
		t.Error("confidence before observations should be 0")
	}
}

func TestLearnsRegularRoutine(t *testing.T) {
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly regular household: (19, 21) every day.
	for day := 0; day < 10; day++ {
		if err := l.Observe(core.Interval{Begin: 19, End: 21}); err != nil {
			t.Fatal(err)
		}
	}
	pref, err := l.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pref.Duration != 2 {
		t.Errorf("duration = %d, want 2", pref.Duration)
	}
	if pref.Window.Begin != 19 || pref.Window.End != 21 {
		t.Errorf("window = %v, want (19, 21)", pref.Window)
	}
	if c := l.Confidence(); c < 0.99 {
		t.Errorf("confidence = %g, want ~1 for a regular household", c)
	}
}

func TestLearnsNoisyRoutine(t *testing.T) {
	rng := dist.New(5)
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	const mu, sigma, dur = 19.0, 1.0, 2
	for day := 0; day < 60; day++ {
		if err := l.Observe(routine(rng, mu, sigma, dur)); err != nil {
			t.Fatal(err)
		}
	}
	pref, err := l.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pref.Duration != dur {
		t.Errorf("duration = %d, want %d", pref.Duration, dur)
	}
	// The window should cover the bulk of the start distribution:
	// roughly μ ± 2σ.
	if pref.Window.Begin > 18 || pref.Window.End < 21 {
		t.Errorf("window %v does not cover the routine around hour 19", pref.Window)
	}
	// And not be absurdly wide.
	if pref.Window.Len() > 10 {
		t.Errorf("window %v too wide for σ = 1", pref.Window)
	}
	// Check forward coverage: the window admits ~coverage of future days.
	hits := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		iv := routine(rng, mu, sigma, dur)
		if pref.Window.Covers(iv) {
			hits++
		}
	}
	if frac := float64(hits) / trials; frac < 0.75 {
		t.Errorf("window admits only %.0f%% of future days", 100*frac)
	}
}

func TestAdaptsToRoutineChange(t *testing.T) {
	rng := dist.New(9)
	l, err := NewLearner(WithAlpha(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 30; day++ {
		if err := l.Observe(routine(rng, 19, 0.5, 2)); err != nil {
			t.Fatal(err)
		}
	}
	// Routine shifts to the morning.
	for day := 0; day < 20; day++ {
		if err := l.Observe(routine(rng, 8, 0.5, 2)); err != nil {
			t.Fatal(err)
		}
	}
	pref, err := l.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pref.Window.Begin > 10 {
		t.Errorf("learner did not adapt: window %v still in the evening", pref.Window)
	}
}

func TestModalDurationTracksChange(t *testing.T) {
	l, err := NewLearner(WithAlpha(0.3))
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 10; day++ {
		if err := l.Observe(core.Interval{Begin: 18, End: 20}); err != nil { // duration 2
			t.Fatal(err)
		}
	}
	for day := 0; day < 15; day++ {
		if err := l.Observe(core.Interval{Begin: 18, End: 22}); err != nil { // duration 4
			t.Fatal(err)
		}
	}
	pref, err := l.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if pref.Duration != 4 {
		t.Errorf("duration = %d, want 4 after the routine lengthened", pref.Duration)
	}
}

func TestPredictLateEveningClamps(t *testing.T) {
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	// A routine at the end of the day must still produce a feasible
	// window inside [0, 24].
	for day := 0; day < 5; day++ {
		if err := l.Observe(core.Interval{Begin: 21, End: 24}); err != nil {
			t.Fatal(err)
		}
	}
	pref, err := l.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if err := pref.Validate(); err != nil {
		t.Fatalf("prediction infeasible: %v", err)
	}
	if pref.Window.End > core.HoursPerDay {
		t.Errorf("window %v exceeds the day", pref.Window)
	}
}

func TestPredictionsAlwaysFeasible(t *testing.T) {
	// Property: whatever the observation stream, Predict returns a
	// valid preference.
	rng := dist.New(77)
	for trial := 0; trial < 200; trial++ {
		l, err := NewLearner(WithAlpha(0.1 + rng.Float64()*0.8))
		if err != nil {
			t.Fatal(err)
		}
		days := 1 + rng.Intn(40)
		for d := 0; d < days; d++ {
			dur := 1 + rng.Intn(6)
			start := rng.Intn(core.HoursPerDay - dur)
			if err := l.Observe(core.Interval{Begin: start, End: start + dur}); err != nil {
				t.Fatal(err)
			}
		}
		pref, err := l.Predict()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := pref.Validate(); err != nil {
			t.Fatalf("trial %d: infeasible prediction %v: %v", trial, pref, err)
		}
		if c := l.Confidence(); c < 0 || c > 1+1e-9 {
			t.Fatalf("trial %d: confidence %g outside [0, 1]", trial, c)
		}
	}
}

func TestReporterColdStart(t *testing.T) {
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	fallback := core.MustPreference(17, 23, 2)
	r := &Reporter{Learner: l, Fallback: fallback}

	f, err := r.Report()
	if err != nil {
		t.Fatal(err)
	}
	if f.Preference != fallback || f.Confidence != 0 {
		t.Errorf("cold start forecast = %+v, want fallback with zero confidence", f)
	}

	for day := 0; day < 5; day++ {
		if err := l.Observe(core.Interval{Begin: 19, End: 21}); err != nil {
			t.Fatal(err)
		}
	}
	f, err = r.Report()
	if err != nil {
		t.Fatal(err)
	}
	if f.Preference == fallback {
		t.Error("after MinDays the learner's prediction should be used")
	}
	if f.Confidence <= 0.9 {
		t.Errorf("confidence = %g, want high for a regular routine", f.Confidence)
	}
}

func TestReporterValidation(t *testing.T) {
	r := &Reporter{}
	if _, err := r.Report(); err == nil {
		t.Error("nil learner should be rejected")
	}
	l, err := NewLearner()
	if err != nil {
		t.Fatal(err)
	}
	r = &Reporter{Learner: l} // invalid zero fallback during cold start
	if _, err := r.Report(); err == nil {
		t.Error("cold start without a valid fallback should fail")
	}
}

func TestMeanAbsError(t *testing.T) {
	if got := MeanAbsError([]int{18, 20}, []int{19, 18}); got != 1.5 {
		t.Errorf("MeanAbsError = %g, want 1.5", got)
	}
	if !math.IsNaN(MeanAbsError(nil, nil)) {
		t.Error("empty input should yield NaN")
	}
	if !math.IsNaN(MeanAbsError([]int{1}, []int{1, 2})) {
		t.Error("mismatched lengths should yield NaN")
	}
}
