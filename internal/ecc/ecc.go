// Package ecc implements the Energy Consumption Controller unit the
// paper embeds in each household's smart meter (Section I): it
//
//   - learns the household's daily power consumption pattern online,
//   - decides a preference window wide enough to cover the pattern, and
//   - reports the household's demand for the next day.
//
// The learner maintains exponentially weighted frequencies of observed
// start hours and durations. A prediction extracts the modal duration
// and the smallest contiguous start window capturing a configurable
// probability mass, widened into a reported preference. Forgetting
// (the EWMA decay) lets the ECC track routine changes — a household
// that shifts its dinner hour re-converges within a few days.
package ecc

import (
	"fmt"
	"math"

	"enki/internal/core"
)

// DefaultAlpha is the EWMA decay: each new observation carries this
// weight and history decays by (1 − alpha).
const DefaultAlpha = 0.15

// DefaultCoverage is the start-hour probability mass a predicted window
// must capture.
const DefaultCoverage = 0.9

// Learner learns one household's consumption pattern online. The zero
// value is not ready; construct with NewLearner.
type Learner struct {
	alpha    float64
	coverage float64

	startWeight [core.HoursPerDay]float64
	durWeight   [core.HoursPerDay + 1]float64
	total       float64
	days        int
}

// Option customizes a Learner.
type Option func(*Learner)

// WithAlpha sets the EWMA decay factor in (0, 1].
func WithAlpha(alpha float64) Option {
	return func(l *Learner) { l.alpha = alpha }
}

// WithCoverage sets the start-hour mass a predicted window captures,
// in (0, 1].
func WithCoverage(q float64) Option {
	return func(l *Learner) { l.coverage = q }
}

// NewLearner builds a pattern learner.
func NewLearner(opts ...Option) (*Learner, error) {
	l := &Learner{alpha: DefaultAlpha, coverage: DefaultCoverage}
	for _, opt := range opts {
		opt(l)
	}
	if l.alpha <= 0 || l.alpha > 1 {
		return nil, fmt.Errorf("ecc: alpha %g outside (0, 1]", l.alpha)
	}
	if l.coverage <= 0 || l.coverage > 1 {
		return nil, fmt.Errorf("ecc: coverage %g outside (0, 1]", l.coverage)
	}
	return l, nil
}

// Days returns how many observations the learner has absorbed.
func (l *Learner) Days() int { return l.days }

// Observe absorbs one day's realized consumption interval.
func (l *Learner) Observe(iv core.Interval) error {
	if err := iv.Validate(); err != nil {
		return fmt.Errorf("ecc: observe: %w", err)
	}
	if iv.Empty() {
		return fmt.Errorf("ecc: observe: empty interval")
	}
	decay := 1 - l.alpha
	for h := range l.startWeight {
		l.startWeight[h] *= decay
	}
	for d := range l.durWeight {
		l.durWeight[d] *= decay
	}
	l.total = l.total*decay + l.alpha
	l.startWeight[iv.Begin] += l.alpha
	l.durWeight[iv.Len()] += l.alpha
	l.days++
	return nil
}

// ErrNoObservations is reported by Predict before any Observe call.
var ErrNoObservations = fmt.Errorf("ecc: no observations yet")

// Predict reports the preference to declare for the next day: the modal
// duration, and the smallest contiguous start window capturing the
// configured coverage, widened by the duration so that every covered
// start fits.
func (l *Learner) Predict() (core.Preference, error) {
	if l.days == 0 {
		return core.Preference{}, ErrNoObservations
	}
	duration := l.modalDuration()

	lo, hi := l.startWindow()
	end := hi + duration
	if end > core.HoursPerDay {
		end = core.HoursPerDay
		if end-lo < duration {
			lo = end - duration
		}
	}
	pref := core.Preference{Window: core.Interval{Begin: lo, End: end}, Duration: duration}
	if err := pref.Validate(); err != nil {
		return core.Preference{}, fmt.Errorf("ecc: predicted infeasible preference: %w", err)
	}
	return pref, nil
}

// Confidence returns the fraction of recent start mass inside the
// window Predict would report — a measure of how settled the pattern
// is (1 for a perfectly regular household).
func (l *Learner) Confidence() float64 {
	if l.days == 0 || l.total == 0 {
		return 0
	}
	lo, hi := l.startWindow()
	var mass float64
	for h := lo; h <= hi && h < core.HoursPerDay; h++ {
		mass += l.startWeight[h]
	}
	return mass / l.total
}

// modalDuration returns the duration with the largest smoothed weight
// (ties to the shorter duration).
func (l *Learner) modalDuration() int {
	best, bestW := 1, -1.0
	for d := 1; d <= core.HoursPerDay; d++ {
		if l.durWeight[d] > bestW+1e-15 {
			best, bestW = d, l.durWeight[d]
		}
	}
	return best
}

// startWindow returns the smallest contiguous hour range [lo, hi]
// whose start-hour mass reaches the coverage target.
func (l *Learner) startWindow() (lo, hi int) {
	target := l.coverage * l.total

	bestLo, bestHi := 0, core.HoursPerDay-1
	bestLen := core.HoursPerDay + 1
	bestMass := 0.0
	for a := 0; a < core.HoursPerDay; a++ {
		var mass float64
		for b := a; b < core.HoursPerDay; b++ {
			mass += l.startWeight[b]
			if mass+1e-12 >= target {
				length := b - a + 1
				if length < bestLen || (length == bestLen && mass > bestMass) {
					bestLo, bestHi, bestLen, bestMass = a, b, length, mass
				}
				break
			}
		}
	}
	if bestLen == core.HoursPerDay+1 {
		// Coverage unreachable (numerical fringe): fall back to the
		// support of the distribution.
		lo, hi = -1, -1
		for h, w := range l.startWeight {
			if w > 0 {
				if lo == -1 {
					lo = h
				}
				hi = h
			}
		}
		if lo == -1 {
			return 0, 0
		}
		return lo, hi
	}
	return bestLo, bestHi
}

// Forecast couples a prediction with its confidence.
type Forecast struct {
	Preference core.Preference
	Confidence float64
}

// Reporter wraps a Learner with a cold-start default: before the
// learner has seen MinDays observations it reports Fallback.
type Reporter struct {
	// Learner is the pattern learner; it must be non-nil.
	Learner *Learner
	// Fallback is reported during cold start.
	Fallback core.Preference
	// MinDays is the number of observations required before the
	// learner's prediction is trusted (default 3 when zero).
	MinDays int
}

// Report returns the preference to declare for the next day.
func (r *Reporter) Report() (Forecast, error) {
	minDays := r.MinDays
	if minDays == 0 {
		minDays = 3
	}
	if r.Learner == nil {
		return Forecast{}, fmt.Errorf("ecc: nil learner")
	}
	if r.Learner.Days() < minDays {
		if err := r.Fallback.Validate(); err != nil {
			return Forecast{}, fmt.Errorf("ecc: cold start needs a valid fallback: %w", err)
		}
		return Forecast{Preference: r.Fallback, Confidence: 0}, nil
	}
	pref, err := r.Learner.Predict()
	if err != nil {
		return Forecast{}, err
	}
	return Forecast{Preference: pref, Confidence: r.Learner.Confidence()}, nil
}

// MeanAbsError is a convenience for evaluating a learner against a
// known routine: the mean absolute difference between predicted and
// true window begins over a horizon of observations.
func MeanAbsError(predicted, actual []int) float64 {
	if len(predicted) == 0 || len(predicted) != len(actual) {
		return math.NaN()
	}
	var sum float64
	for i := range predicted {
		sum += math.Abs(float64(predicted[i] - actual[i]))
	}
	return sum / float64(len(predicted))
}
