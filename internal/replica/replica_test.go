package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"testing"
)

// TestLogAppendAssignsDenseIndices: leader appends take consecutive
// 1-based indices and stamp the current term.
func TestLogAppendAssignsDenseIndices(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 3; i++ {
		e := l.Append(1, uint64(i), KindPhase, "preference", json.RawMessage(`{}`))
		if e.Index != uint64(i) {
			t.Fatalf("append %d got index %d", i, e.Index)
		}
		if e.Term != 1 {
			t.Fatalf("append %d got term %d", i, e.Term)
		}
	}
	if l.NextIndex() != 4 || l.LastIndex() != 3 {
		t.Errorf("next=%d last=%d, want 4/3", l.NextIndex(), l.LastIndex())
	}
	if l.Commit() != 0 {
		t.Errorf("appends must not commit: watermark %d", l.Commit())
	}
}

// TestLogInsertOrdering: a follower inserts in order, rejects gaps with
// ErrGap, and accepts a provisional overwrite from a new leader.
func TestLogInsertOrdering(t *testing.T) {
	l := NewLog()
	if err := l.Insert(Entry{Term: 1, Index: 1, Kind: KindMember}); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(Entry{Term: 1, Index: 3, Kind: KindMember}); !errors.Is(err, ErrGap) {
		t.Fatalf("gap insert: %v, want ErrGap", err)
	}
	if err := l.Insert(Entry{Term: 1, Index: 2, Kind: KindPhase, Phase: "preference"}); err != nil {
		t.Fatal(err)
	}
	// A new leader (term 2) re-replicates the provisional index 2.
	if err := l.Insert(Entry{Term: 2, Index: 2, Kind: KindPhase, Phase: "preference"}); err != nil {
		t.Fatalf("provisional overwrite: %v", err)
	}
	if l.Term() != 2 {
		t.Errorf("term %d, want 2 after observing a term-2 entry", l.Term())
	}
}

// TestLogCommitOrdering: CommitTo returns exactly the newly committed
// entries, in order, once each — the apply-exactly-once contract — and
// a committed entry can no longer be rewritten.
func TestLogCommitOrdering(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 4; i++ {
		l.Append(1, uint64(i), KindDay, "", json.RawMessage(`{"day":1}`))
	}
	newly := l.CommitTo(2)
	if len(newly) != 2 || newly[0].Index != 1 || newly[1].Index != 2 {
		t.Fatalf("CommitTo(2) returned %+v, want entries 1,2", newly)
	}
	if again := l.CommitTo(2); len(again) != 0 {
		t.Fatalf("re-commit returned %+v, want none (idempotent)", again)
	}
	newly = l.CommitTo(10) // capped at the held entries
	if len(newly) != 2 || newly[0].Index != 3 || newly[1].Index != 4 {
		t.Fatalf("CommitTo(10) returned %+v, want entries 3,4", newly)
	}
	if l.Commit() != 4 {
		t.Errorf("commit watermark %d, want 4", l.Commit())
	}
	// Rewriting a committed entry with different content conflicts;
	// re-delivering the identical entry is absorbed.
	if err := l.Insert(Entry{Term: 2, Index: 1, Kind: KindDay, Data: json.RawMessage(`{"day":9}`)}); !errors.Is(err, ErrConflict) {
		t.Fatalf("committed rewrite: %v, want ErrConflict", err)
	}
	if err := l.Insert(Entry{Term: 1, Index: 1, Kind: KindDay, Day: 1, Data: json.RawMessage(`{"day":1}`)}); err != nil {
		t.Fatalf("identical re-delivery: %v", err)
	}
}

// TestLogObserveTermDeposesOldLeader: once a higher term is observed,
// the old term is rejected — the ErrNotLeader trigger on the wire.
func TestLogObserveTermDeposesOldLeader(t *testing.T) {
	l := NewLog()
	if !l.ObserveTerm(3) {
		t.Fatal("first term observation rejected")
	}
	if l.ObserveTerm(2) {
		t.Fatal("stale term accepted after term 3")
	}
	if !l.ObserveTerm(3) {
		t.Fatal("current term rejected")
	}
}

// TestQuorumAckOrdering: acks accumulate toward floor(n/2)+1, duplicate
// acks from one replica never double-count, and the leader's own ack
// participates like any other.
func TestQuorumAckOrdering(t *testing.T) {
	q := NewQuorum(5)
	if q.Ack(0) {
		t.Fatal("1/5 acks reached quorum")
	}
	if q.Ack(0) || q.Acks() != 1 {
		t.Fatalf("duplicate ack double-counted: %d acks", q.Acks())
	}
	if q.Ack(3) {
		t.Fatal("2/5 acks reached quorum")
	}
	if !q.Ack(4) {
		t.Fatal("3/5 acks did not reach quorum")
	}
	if !q.Reached() {
		t.Fatal("Reached() false after majority")
	}
	if Majority(3) != 2 || Majority(5) != 3 || Majority(1) != 1 {
		t.Errorf("Majority: got %d/%d/%d for n=3/5/1", Majority(3), Majority(5), Majority(1))
	}
}

// TestElectLowestLive: deterministic election picks the lowest live ID.
func TestElectLowestLive(t *testing.T) {
	if got := Elect([]int{2, 1, 4}); got != 1 {
		t.Errorf("Elect = %d, want 1", got)
	}
	if got := Elect(nil); got != -1 {
		t.Errorf("Elect(none) = %d, want -1", got)
	}
}

// TestSuffixAndAdopt: Suffix returns the entries after a watermark and
// Adopt folds a surviving log's tail into a new leader's copy.
func TestSuffixAndAdopt(t *testing.T) {
	donor := NewLog()
	for i := 1; i <= 3; i++ {
		donor.Append(1, 1, KindPhase, "consumption", nil)
	}
	donor.CommitTo(1)

	heir := NewLog()
	heir.Append(1, 1, KindPhase, "consumption", nil)
	heir.CommitTo(1)
	if err := heir.Adopt(donor.Suffix(heir.LastIndex())); err != nil {
		t.Fatal(err)
	}
	if heir.LastIndex() != 3 {
		t.Errorf("adopted log holds %d entries, want 3", heir.LastIndex())
	}
	if heir.Commit() != 1 {
		t.Errorf("adopt moved the commit watermark to %d", heir.Commit())
	}
}

// TestWireRoundTrip: a peer message survives the length-prefixed JSON
// framing over a real socket pair.
func TestWireRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	want := &Message{Kind: MsgAppend, Term: 2, From: 0, Commit: 7,
		Entry: &Entry{Term: 2, Index: 8, Kind: KindDay, Day: 3, Data: json.RawMessage(`{"x":1}`)}}
	go func() { _ = WriteMessage(client, want) }()
	got, err := ReadMessage(server)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Term != want.Term || got.Commit != want.Commit {
		t.Fatalf("round trip lost header fields: %+v", got)
	}
	if got.Entry == nil || got.Entry.Index != 8 || !bytes.Equal(got.Entry.Data, want.Entry.Data) {
		t.Fatalf("round trip lost entry: %+v", got.Entry)
	}
}
