package replica

// Quorum tracks acknowledgements for one appended entry across an
// n-replica set. Acks are idempotent per replica, so a duplicated
// delivery never double-counts toward the majority.
type Quorum struct {
	n     int
	acked map[int]bool
}

// NewQuorum returns a tracker for an n-replica set.
func NewQuorum(n int) *Quorum {
	return &Quorum{n: n, acked: make(map[int]bool, n)}
}

// Ack records replica id's acknowledgement and reports whether the
// entry has reached a majority.
func (q *Quorum) Ack(id int) bool {
	q.acked[id] = true
	return q.Reached()
}

// Acks returns the number of distinct replicas that have acknowledged.
func (q *Quorum) Acks() int { return len(q.acked) }

// Reached reports whether a majority of the n replicas has
// acknowledged.
func (q *Quorum) Reached() bool { return len(q.acked) >= Majority(q.n) }
