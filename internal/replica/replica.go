// Package replica implements the quorum log that replicates the
// settlement center's per-day journal across 2f+1 replicas. Settlement
// is a deterministic state machine (the same committed entries replay
// to byte-identical ledgers), so the log stays deliberately simple: a
// leader appends entries, followers acknowledge them, and an entry
// commits once a majority holds it. Leader election is deterministic —
// the lowest live replica ID leads — so a failover never needs votes,
// only a log sync from the surviving majority.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// Entry kinds, in the order a settlement day produces them: membership
// changes as agents register, one phase boundary per collection round,
// and the day's audit-ledger entry at settle.
const (
	// KindMember records one household registration (ID, session token,
	// epoch), so a new leader reconstructs the membership and accepts
	// the session tokens the old leader issued.
	KindMember = "member"
	// KindPhase records a completed collection phase: the reports (and
	// absentees) after the preference round, the consumptions (and
	// substitutions) after the consumption round.
	KindPhase = "phase"
	// KindDay records a settled day: the DayRecord plus the marshaled
	// audit-ledger entry, applied to every replica's local ledger at
	// commit.
	KindDay = "day"
)

// Entry is one replicated log record. Index is 1-based and dense; Term
// is the leadership term that appended the entry. Data is the kind-
// specific payload, kept as raw JSON so replicas apply the leader's
// exact bytes.
type Entry struct {
	Term  uint64          `json:"term"`
	Index uint64          `json:"index"`
	Kind  string          `json:"kind"`
	Day   int             `json:"day,omitempty"`
	Phase string          `json:"phase,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// Sentinel errors of the quorum log.
var (
	// ErrNotLeader rejects an append from a deposed leader: the
	// follower has seen a higher term.
	ErrNotLeader = errors.New("replica: not leader")
	// ErrGap rejects an out-of-order insert: the follower is missing
	// entries before the offered index and needs a suffix resend.
	ErrGap = errors.New("replica: log gap")
	// ErrConflict rejects an insert that would rewrite a committed
	// entry with different content.
	ErrConflict = errors.New("replica: conflicts with committed entry")
)

// Log is one replica's copy of the quorum log: a dense slice of entries
// plus a commit watermark. Entries above the watermark are provisional —
// a new leader may re-replicate them — while the committed prefix is
// immutable and identical on every replica that holds it.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	commit  uint64 // highest committed index
	term    uint64 // highest term observed
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Term returns the highest leadership term this log has observed.
func (l *Log) Term() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term
}

// ObserveTerm raises the log's term watermark. It reports whether the
// offered term is current (>= every term seen before); a false return
// means the sender has been deposed.
func (l *Log) ObserveTerm(term uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if term < l.term {
		return false
	}
	l.term = term
	return true
}

// NextIndex returns the index the next appended entry will take.
func (l *Log) NextIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries)) + 1
}

// LastIndex returns the highest index present (0 when empty).
func (l *Log) LastIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Commit returns the commit watermark.
func (l *Log) Commit() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commit
}

// Append appends an entry at the next index under the given term (the
// leader-side write). It returns the assigned entry.
func (l *Log) Append(term, day uint64, kind, phase string, data json.RawMessage) Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if term > l.term {
		l.term = term
	}
	e := Entry{Term: term, Index: uint64(len(l.entries)) + 1, Kind: kind, Day: int(day), Phase: phase, Data: data}
	l.entries = append(l.entries, e)
	return e
}

// Insert places a replicated entry at its index (the follower-side
// write). Inserting at the next index appends; re-inserting an existing
// provisional index overwrites it (a new leader re-replicating the
// uncommitted tail); a gap returns ErrGap so the leader can resend the
// missing suffix; rewriting a committed entry with different content
// returns ErrConflict.
func (l *Log) Insert(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case e.Index == uint64(len(l.entries))+1:
		l.entries = append(l.entries, e)
	case e.Index >= 1 && e.Index <= uint64(len(l.entries)):
		if e.Index <= l.commit {
			have := l.entries[e.Index-1]
			if have.Kind != e.Kind || have.Day != e.Day || have.Phase != e.Phase || !jsonEqual(have.Data, e.Data) {
				return fmt.Errorf("index %d: %w", e.Index, ErrConflict)
			}
			return nil // idempotent re-delivery of a committed entry
		}
		l.entries[e.Index-1] = e
	default:
		return fmt.Errorf("index %d after %d: %w", e.Index, len(l.entries), ErrGap)
	}
	if e.Term > l.term {
		l.term = e.Term
	}
	return nil
}

// CommitTo raises the commit watermark to index (capped at the last
// held entry) and returns the entries that just became committed, in
// order — the caller applies them to its local state exactly once.
func (l *Log) CommitTo(index uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if index > uint64(len(l.entries)) {
		index = uint64(len(l.entries))
	}
	if index <= l.commit {
		return nil
	}
	newly := make([]Entry, index-l.commit)
	copy(newly, l.entries[l.commit:index])
	l.commit = index
	return newly
}

// Entries returns a copy of the whole log, committed prefix first.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Suffix returns a copy of the entries with index > after.
func (l *Log) Suffix(after uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after >= uint64(len(l.entries)) {
		return nil
	}
	out := make([]Entry, uint64(len(l.entries))-after)
	copy(out, l.entries[after:])
	return out
}

// Adopt replaces the provisional tail with the given entries, keeping
// the committed prefix (a new leader adopting the longest surviving
// log). Entries at or below the commit watermark are ignored.
func (l *Log) Adopt(entries []Entry) error {
	for _, e := range entries {
		if err := l.Insert(e); err != nil {
			return err
		}
	}
	return nil
}

// Majority returns the quorum size for n replicas: floor(n/2)+1.
func Majority(n int) int { return n/2 + 1 }

// Elect returns the deterministic leader among the live replica IDs —
// the lowest — or -1 when none are alive. With 2f+1 replicas and at
// most f failures every surviving replica computes the same answer, so
// no vote is needed.
func Elect(live []int) int {
	leader := -1
	for _, id := range live {
		if leader < 0 || id < leader {
			leader = id
		}
	}
	return leader
}

// jsonEqual compares two raw JSON payloads byte-wise (both sides come
// from the same marshaler, so semantic equality is byte equality).
func jsonEqual(a, b json.RawMessage) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
