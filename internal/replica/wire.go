package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Message kinds of the replica peer protocol. The framing is the same
// length-prefixed shape the settlement wire uses — a 4-byte big-endian
// length followed by JSON — so peer links and agent links share one
// on-wire discipline.
const (
	// MsgAppend carries one entry from the leader; the follower inserts
	// it and answers MsgAck.
	MsgAppend = "append"
	// MsgCommit raises the follower's commit watermark; the follower
	// applies the newly committed entries and answers MsgAck.
	MsgCommit = "commit"
	// MsgAck acknowledges an append or commit. OK false carries a
	// Reason ("not leader", "gap") and, for gaps, the follower's
	// LastIndex so the leader can resend the missing suffix.
	MsgAck = "ack"
	// MsgSync asks a follower for its whole log; the follower answers
	// MsgLog.
	MsgSync = "sync"
	// MsgLog returns a follower's entries and commit watermark to a
	// syncing new leader.
	MsgLog = "log"
)

// Message is one frame of the replica peer protocol.
type Message struct {
	Kind      string  `json:"kind"`
	Term      uint64  `json:"term,omitempty"`
	From      int     `json:"from"`
	Commit    uint64  `json:"commit,omitempty"`
	OK        bool    `json:"ok,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	LastIndex uint64  `json:"lastIndex,omitempty"`
	Entry     *Entry  `json:"entry,omitempty"`
	Entries   []Entry `json:"entries,omitempty"`
}

// MaxFrameSize bounds one peer frame. Day entries carry a full
// DayRecord plus ledger entry, so the bound is generous.
const MaxFrameSize = 1 << 24

// WriteMessage frames and writes one peer message: a 4-byte big-endian
// length followed by the JSON encoding.
func WriteMessage(w io.Writer, m *Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("replica: encode %s: %w", m.Kind, err)
	}
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("replica: frame of %d bytes exceeds limit", len(payload))
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("replica: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("replica: write payload: %w", err)
	}
	return nil
}

// ReadMessage reads one framed peer message.
func ReadMessage(r io.Reader) (*Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF is meaningful to callers; do not wrap
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return nil, fmt.Errorf("replica: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("replica: read payload: %w", err)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("replica: decode frame: %w", err)
	}
	return &m, nil
}
