package core

import "fmt"

// ValidationError describes a domain object that violates a model
// constraint from Section III of the paper.
type ValidationError struct {
	Field  string // which object or field is invalid
	Reason string // human-readable constraint violation
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("invalid %s: %s", e.Field, e.Reason)
}
