package core

import (
	"errors"
	"testing"
)

func TestNewPreference(t *testing.T) {
	tests := []struct {
		name       string
		begin, end Hour
		duration   int
		wantErr    bool
	}{
		{"paper example", 18, 22, 2, false},
		{"exact fit", 18, 20, 2, false},
		{"duration too long", 18, 20, 3, true},
		{"zero duration", 18, 20, 0, true},
		{"negative duration", 18, 20, -1, true},
		{"invalid window", 22, 18, 1, true},
		{"window past day", 20, 26, 2, true},
		{"full-day window", 0, 24, 4, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPreference(tt.begin, tt.end, tt.duration)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewPreference(%d, %d, %d) error = %v, wantErr %v",
					tt.begin, tt.end, tt.duration, err, tt.wantErr)
			}
			if err != nil {
				var verr *ValidationError
				if !errors.As(err, &verr) {
					t.Errorf("error %v is not a *ValidationError", err)
				}
			}
		})
	}
}

func TestMustPreferencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPreference with invalid input should panic")
		}
	}()
	MustPreference(20, 18, 1)
}

func TestPreferenceSlackAndChoices(t *testing.T) {
	tests := []struct {
		pref        Preference
		slack       int
		choices     int
		firstStart  Hour
		lastStart   Hour
		description string
	}{
		{MustPreference(18, 22, 2), 2, 3, 18, 20, "paper χ=(18,22,2)"},
		{MustPreference(18, 20, 2), 0, 1, 18, 18, "rigid"},
		{MustPreference(0, 24, 1), 23, 24, 0, 23, "fully flexible"},
	}
	for _, tt := range tests {
		t.Run(tt.description, func(t *testing.T) {
			if got := tt.pref.Slack(); got != tt.slack {
				t.Errorf("Slack() = %d, want %d", got, tt.slack)
			}
			if got := tt.pref.StartChoices(); got != tt.choices {
				t.Errorf("StartChoices() = %d, want %d", got, tt.choices)
			}
			if got := tt.pref.IntervalAt(0); got.Begin != tt.firstStart {
				t.Errorf("IntervalAt(0).Begin = %d, want %d", got.Begin, tt.firstStart)
			}
			if got := tt.pref.IntervalAt(tt.slack); got.Begin != tt.lastStart {
				t.Errorf("IntervalAt(slack).Begin = %d, want %d", got.Begin, tt.lastStart)
			}
		})
	}
}

func TestPreferenceAdmits(t *testing.T) {
	p := MustPreference(18, 22, 2)
	for d := 0; d <= p.Slack(); d++ {
		if iv := p.IntervalAt(d); !p.Admits(iv) {
			t.Errorf("preference %v should admit its own IntervalAt(%d) = %v", p, d, iv)
		}
	}
	if p.Admits(Interval{Begin: 17, End: 19}) {
		t.Error("allocation starting before the window must be rejected")
	}
	if p.Admits(Interval{Begin: 21, End: 23}) {
		t.Error("allocation ending after the window must be rejected")
	}
	if p.Admits(Interval{Begin: 18, End: 21}) {
		t.Error("allocation with the wrong duration must be rejected")
	}
}

func TestPreferenceString(t *testing.T) {
	if got := MustPreference(18, 22, 2).String(); got != "(18, 22, 2)" {
		t.Errorf("String() = %q, want %q", got, "(18, 22, 2)")
	}
}

func TestTypeValidate(t *testing.T) {
	valid := Type{True: MustPreference(18, 22, 2), ValuationFactor: 5}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid type rejected: %v", err)
	}
	badRho := Type{True: MustPreference(18, 22, 2), ValuationFactor: 0}
	if err := badRho.Validate(); err == nil {
		t.Error("type with ρ = 0 should be rejected")
	}
	badPref := Type{True: Preference{Window: Interval{18, 19}, Duration: 2}, ValuationFactor: 1}
	if err := badPref.Validate(); err == nil {
		t.Error("type with infeasible preference should be rejected")
	}
}

func TestValidateReports(t *testing.T) {
	good := []Report{
		{ID: 1, Pref: MustPreference(18, 22, 2)},
		{ID: 2, Pref: MustPreference(16, 24, 3)},
	}
	if err := ValidateReports(good); err != nil {
		t.Errorf("valid reports rejected: %v", err)
	}
	dup := []Report{
		{ID: 1, Pref: MustPreference(18, 22, 2)},
		{ID: 1, Pref: MustPreference(16, 24, 3)},
	}
	if err := ValidateReports(dup); err == nil {
		t.Error("duplicate household IDs should be rejected")
	}
	bad := []Report{{ID: 1, Pref: Preference{Window: Interval{18, 19}, Duration: 4}}}
	if err := ValidateReports(bad); err == nil {
		t.Error("infeasible preference should be rejected")
	}
}

func TestHouseholdTruthful(t *testing.T) {
	typ := Type{True: MustPreference(18, 20, 2), ValuationFactor: 5}
	h := TruthfulHousehold(7, typ)
	if !h.Truthful() {
		t.Error("TruthfulHousehold should report its true preference")
	}
	h.Reported = MustPreference(14, 20, 2)
	if h.Truthful() {
		t.Error("household with widened report must not be truthful")
	}
}

func TestOverlapRatioPaperExample(t *testing.T) {
	// Section IV-B3: s_i = (14,18), ω_i = (15,19) gives o_i = 3/4.
	got := OverlapRatio(Interval{14, 18}, Interval{15, 19})
	if got != 0.75 {
		t.Errorf("OverlapRatio = %g, want 0.75", got)
	}
	if OverlapRatio(Interval{14, 18}, Interval{14, 18}) != 1 {
		t.Error("full compliance should give o_i = 1")
	}
	if OverlapRatio(Interval{14, 18}, Interval{19, 23}) != 0 {
		t.Error("disjoint consumption should give o_i = 0")
	}
	if OverlapRatio(Interval{14, 14}, Interval{14, 18}) != 0 {
		t.Error("empty assignment should give o_i = 0, not NaN")
	}
}

func TestDefected(t *testing.T) {
	s := Interval{18, 20}
	if Defected(s, s) {
		t.Error("identical consumption is not a defection")
	}
	if !Defected(s, Interval{19, 21}) {
		t.Error("shifted consumption is a defection")
	}
}
