package core

import "fmt"

// Report is a household's declared preference χ̂_i for the next day.
// The paper assumes durations are always reported truthfully; windows
// may be misreported.
type Report struct {
	ID   HouseholdID `json:"id"`
	Pref Preference  `json:"pref"`
}

// Assignment is the center's suggested allocation s_i for a household:
// an occupancy interval of exactly the reported duration scheduled
// inside the reported window.
type Assignment struct {
	ID       HouseholdID `json:"id"`
	Interval Interval    `json:"interval"`
}

// Consumption is a household's realized consumption ω_i for the day.
type Consumption struct {
	ID       HouseholdID `json:"id"`
	Interval Interval    `json:"interval"`
}

// Household couples a private type with the report the household chose
// to submit. Reported and true preferences coincide for a truthful
// household.
type Household struct {
	ID       HouseholdID `json:"id"`
	Type     Type        `json:"type"`
	Reported Preference  `json:"reported"`
}

// Truthful reports whether the household reported its true preference.
func (h Household) Truthful() bool { return h.Reported == h.Type.True }

// TruthfulHousehold builds a household that reports its true type.
func TruthfulHousehold(id HouseholdID, t Type) Household {
	return Household{ID: id, Type: t, Reported: t.True}
}

// ValidateReports checks a batch of reports: unique IDs and valid
// preferences. It returns the first violation found.
func ValidateReports(reports []Report) error {
	seen := make(map[HouseholdID]bool, len(reports))
	for _, r := range reports {
		if seen[r.ID] {
			return &ValidationError{
				Field:  "reports",
				Reason: fmt.Sprintf("duplicate household id %d", r.ID),
			}
		}
		seen[r.ID] = true
		if err := r.Pref.Validate(); err != nil {
			return fmt.Errorf("household %d: %w", r.ID, err)
		}
	}
	return nil
}

// ClosestConsumption returns the consumption interval of the true
// preferred duration, inside the true window, whose start is closest to
// the allocation's start — the "real consumption within the subject's
// true interval and close to his allocation" rule automated in the user
// study (Section VII-B). A household whose allocation already satisfies
// its true preference follows it exactly.
func ClosestConsumption(truth Preference, alloc Interval) Interval {
	if truth.Admits(alloc) {
		return alloc
	}
	lo := truth.Window.Begin
	hi := truth.Window.End - truth.Duration
	start := clamp(alloc.Begin, lo, hi)
	return Interval{Begin: start, End: start + truth.Duration}
}

// Defected reports whether a consumption deviates from its assignment.
func Defected(assigned, consumed Interval) bool { return assigned != consumed }

// OverlapRatio is o_i ∈ [0, 1] of Eq. 5: the fraction of the assigned
// interval the household actually followed, |s_i ∩ ω_i| / v_i.
func OverlapRatio(assigned, consumed Interval) float64 {
	if assigned.Len() == 0 {
		return 0
	}
	return float64(assigned.Overlap(consumed)) / float64(assigned.Len())
}
