package core

import (
	"encoding/json"
	"testing"
)

// The domain types cross the wire (internal/netproto) and may be
// persisted; their JSON encodings are a contract.

func TestPreferenceJSONRoundTrip(t *testing.T) {
	in := MustPreference(18, 22, 2)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"window":{"begin":18,"end":22},"duration":2}`
	if string(data) != want {
		t.Errorf("encoding = %s, want %s", data, want)
	}
	var out Preference
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %v vs %v", out, in)
	}
}

func TestTypeJSONRoundTrip(t *testing.T) {
	in := Type{True: MustPreference(18, 20, 2), ValuationFactor: 5}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Type
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
}

func TestHouseholdJSONRoundTrip(t *testing.T) {
	in := TruthfulHousehold(7, Type{True: MustPreference(16, 23, 3), ValuationFactor: 2.5})
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Household
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
}

func TestReportAndAssignmentJSON(t *testing.T) {
	r := Report{ID: 3, Pref: MustPreference(18, 22, 2)}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var r2 Report
	if err := json.Unmarshal(data, &r2); err != nil {
		t.Fatal(err)
	}
	if r2 != r {
		t.Errorf("report round trip: %+v vs %+v", r2, r)
	}

	a := Assignment{ID: 3, Interval: Interval{Begin: 19, End: 21}}
	data, err = json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var a2 Assignment
	if err := json.Unmarshal(data, &a2); err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Errorf("assignment round trip: %+v vs %+v", a2, a)
	}
}
