package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLoadAddRemove(t *testing.T) {
	var l Load
	l.AddInterval(Interval{18, 20}, 2)
	if l[18] != 2 || l[19] != 2 || l[20] != 0 || l[17] != 0 {
		t.Errorf("unexpected load after add: %v", l[16:21])
	}
	l.AddInterval(Interval{19, 21}, 2)
	if l[19] != 4 || l[20] != 2 {
		t.Errorf("overlapping add wrong: l[19]=%g l[20]=%g", l[19], l[20])
	}
	l.RemoveInterval(Interval{18, 20}, 2)
	if l[18] != 0 || l[19] != 2 {
		t.Errorf("remove wrong: l[18]=%g l[19]=%g", l[18], l[19])
	}
}

func TestLoadIgnoresOutOfDaySlots(t *testing.T) {
	var l Load
	l.AddInterval(Interval{Begin: 23, End: 26}, 1) // clipped at 24
	if l[23] != 1 {
		t.Errorf("l[23] = %g, want 1", l[23])
	}
	if got := l.Total(); got != 1 {
		t.Errorf("Total = %g, want 1 (out-of-day slots clipped)", got)
	}
	l.AddInterval(Interval{Begin: -2, End: 1}, 1)
	if l[0] != 1 {
		t.Errorf("l[0] = %g, want 1", l[0])
	}
}

func TestLoadMetrics(t *testing.T) {
	var l Load
	l.AddInterval(Interval{18, 22}, 3) // 4 slots of 3 kWh
	if got := l.Peak(); got != 3 {
		t.Errorf("Peak = %g, want 3", got)
	}
	if got := l.Total(); got != 12 {
		t.Errorf("Total = %g, want 12", got)
	}
	if got := l.Average(); got != 0.5 {
		t.Errorf("Average = %g, want 0.5", got)
	}
	if got := l.PAR(); got != 6 {
		t.Errorf("PAR = %g, want 6", got)
	}
	if got := l.SumSquares(); got != 36 {
		t.Errorf("SumSquares = %g, want 36", got)
	}
	var empty Load
	if got := empty.PAR(); got != 0 {
		t.Errorf("empty PAR = %g, want 0", got)
	}
}

func TestLoadOf(t *testing.T) {
	l := LoadOf([]Interval{{18, 20}, {19, 21}}, 2)
	want := map[int]float64{18: 2, 19: 4, 20: 2}
	for h, w := range want {
		if l[h] != w {
			t.Errorf("l[%d] = %g, want %g", h, l[h], w)
		}
	}
}

// TestLoadConservation: total energy equals Σ_i v_i · r no matter how
// intervals overlap (property).
func TestLoadConservation(t *testing.T) {
	prop := func(starts [6]byte, durs [6]byte) bool {
		var ivs []Interval
		var want float64
		for k := range starts {
			v := int(durs[k]%4) + 1
			s := int(starts[k]) % (HoursPerDay - v)
			ivs = append(ivs, Interval{Begin: s, End: s + v})
			want += float64(v) * DefaultPowerRating
		}
		l := LoadOf(ivs, DefaultPowerRating)
		return math.Abs(l.Total()-want) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("energy not conserved: %v", err)
	}
}

// TestLoadPARAtLeastOne: any nonempty load has PAR ≥ 1.
func TestLoadPARAtLeastOne(t *testing.T) {
	prop := func(starts [5]byte, durs [5]byte) bool {
		var ivs []Interval
		for k := range starts {
			v := int(durs[k]%4) + 1
			s := int(starts[k]) % (HoursPerDay - v)
			ivs = append(ivs, Interval{Begin: s, End: s + v})
		}
		l := LoadOf(ivs, 2)
		return l.PAR() >= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("PAR below 1: %v", err)
	}
}

func TestOccupancyPaperExample2(t *testing.T) {
	// Example 2: χ_A = (18,19,1), χ_B = χ_C = (18,20,1).
	prefs := []Preference{
		MustPreference(18, 19, 1),
		MustPreference(18, 20, 1),
		MustPreference(18, 20, 1),
	}
	n := Occupancy(prefs)
	if n[18] != 3 {
		t.Errorf("n_18 = %d, want 3", n[18])
	}
	if n[19] != 2 {
		t.Errorf("n_19 = %d, want 2", n[19])
	}
	if n[17] != 0 || n[20] != 0 {
		t.Errorf("slots outside all windows must be empty: n_17=%d n_20=%d", n[17], n[20])
	}
}
