package core

import (
	"testing"
	"testing/quick"
)

func TestClosestConsumption(t *testing.T) {
	truth := MustPreference(18, 22, 2)
	tests := []struct {
		name  string
		alloc Interval
		want  Interval
	}{
		{"admitted allocation followed exactly", Interval{19, 21}, Interval{19, 21}},
		{"too early clamps to window start", Interval{10, 12}, Interval{18, 20}},
		{"too late clamps to window end", Interval{23, 25}, Interval{20, 22}},
		{"overlapping left edge", Interval{17, 19}, Interval{18, 20}},
		{"overlapping right edge", Interval{21, 23}, Interval{20, 22}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClosestConsumption(truth, tt.alloc); got != tt.want {
				t.Errorf("ClosestConsumption(%v) = %v, want %v", tt.alloc, got, tt.want)
			}
		})
	}
}

// Properties: the result always lies inside the true window with the
// true duration, and is a fixed point for admitted allocations.
func TestClosestConsumptionProperties(t *testing.T) {
	prop := func(tb, tw, ab byte, dRaw byte) bool {
		dur := int(dRaw%4) + 1
		begin := int(tb) % (HoursPerDay - dur - 1)
		end := begin + dur + 1 + int(tw)%(HoursPerDay-begin-dur-1+1)
		if end > HoursPerDay {
			end = HoursPerDay
		}
		truth := Preference{Window: Interval{Begin: begin, End: end}, Duration: dur}
		if truth.Validate() != nil {
			return true // skip infeasible fixtures
		}
		aStart := int(ab) % (HoursPerDay - dur)
		alloc := Interval{Begin: aStart, End: aStart + dur}

		got := ClosestConsumption(truth, alloc)
		if got.Len() != dur {
			return false
		}
		if !truth.Window.Covers(got) {
			return false
		}
		if truth.Admits(alloc) && got != alloc {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("ClosestConsumption property violated: %v", err)
	}
}

// The distance property: no feasible placement is closer to the
// allocation start than the one returned.
func TestClosestConsumptionIsClosest(t *testing.T) {
	truth := MustPreference(10, 20, 3)
	for aStart := 0; aStart <= HoursPerDay-3; aStart++ {
		alloc := Interval{Begin: aStart, End: aStart + 3}
		got := ClosestConsumption(truth, alloc)
		best := 1 << 30
		for d := 0; d <= truth.Slack(); d++ {
			iv := truth.IntervalAt(d)
			dist := iv.Begin - alloc.Begin
			if dist < 0 {
				dist = -dist
			}
			if dist < best {
				best = dist
			}
		}
		gotDist := got.Begin - alloc.Begin
		if gotDist < 0 {
			gotDist = -gotDist
		}
		if gotDist != best {
			t.Errorf("alloc %v: returned %v at distance %d, best possible %d",
				alloc, got, gotDist, best)
		}
	}
}
