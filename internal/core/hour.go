// Package core defines the domain model of the Enki neighborhood:
// hours, preference windows, preferences, allocations, consumptions,
// household types, valuations, and hourly load profiles.
//
// The model follows Section III of the paper. A day is the hour set
// H = {0, ..., 23}. A household i declares a preference
// χ_i = (α_i, β_i, v_i): it wants to consume power for v_i consecutive
// hours starting no earlier than α_i and finishing no later than β_i.
// Occupancy intervals are half-open: an interval (18, 20) occupies the
// hour slots 18 and 19.
package core

// HoursPerDay is the number of scheduling slots in a day (|H| = 24).
const HoursPerDay = 24

// Hour is an hour-of-day slot in H = {0, ..., 23}. Interval endpoints
// may additionally take the value 24 (end of day, exclusive bound).
type Hour = int

// ValidHour reports whether h is a consumable slot in H.
func ValidHour(h Hour) bool { return h >= 0 && h < HoursPerDay }

// ValidBound reports whether h is a valid interval endpoint (0..24).
func ValidBound(h Hour) bool { return h >= 0 && h <= HoursPerDay }
