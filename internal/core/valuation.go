package core

// Valuation implements Eq. 3, a household's willingness to pay for an
// allocation that satisfies tau of its v preferred slots:
//
//	V_i(τ, v, ρ) = −ρ/(2v)·τ² + ρτ, τ ∈ [0, v]
//
// The function is increasing and concave in τ, reaches its maximum
// ρv/2 at τ = v, increases with v, and increases with ρ — the four
// criteria of Section IV-B1. τ outside [0, v] is clamped.
func Valuation(tau, duration int, rho float64) float64 {
	if duration <= 0 {
		return 0
	}
	t := float64(clamp(tau, 0, duration))
	v := float64(duration)
	return -rho/(2*v)*t*t + rho*t
}

// MaxValuation is the valuation of a fully satisfied household, ρv/2.
func MaxValuation(duration int, rho float64) float64 {
	return Valuation(duration, duration, rho)
}

// Satisfaction returns τ_i: the number of slots in which the allocation
// satisfies the household's true preference — the overlap of the
// allocated occupancy interval with the true preferred window, capped
// at the preferred duration.
func Satisfaction(allocation Interval, truePref Preference) int {
	tau := truePref.Window.Overlap(allocation)
	if tau > truePref.Duration {
		tau = truePref.Duration
	}
	return tau
}

// ValuationOf evaluates Eq. 3 for an allocation against a household
// type: V_i(τ_i, v_i, ρ_i) with τ_i = Satisfaction(allocation, χ_i).
func ValuationOf(allocation Interval, t Type) float64 {
	return Valuation(Satisfaction(allocation, t.True), t.True.Duration, t.ValuationFactor)
}

// Utility is the quasilinear utility of Eq. 8: valuation minus payment.
func Utility(valuation, payment float64) float64 { return valuation - payment }

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
