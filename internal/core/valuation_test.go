package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValuationShape(t *testing.T) {
	const rho, v = 5.0, 4
	// V(0) = 0; V(v) = ρv/2; V is increasing in τ on [0, v].
	if got := Valuation(0, v, rho); got != 0 {
		t.Errorf("V(0) = %g, want 0", got)
	}
	want := rho * float64(v) / 2
	if got := Valuation(v, v, rho); math.Abs(got-want) > 1e-12 {
		t.Errorf("V(v) = %g, want ρv/2 = %g", got, want)
	}
	if got := MaxValuation(v, rho); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxValuation = %g, want %g", got, want)
	}
	prev := math.Inf(-1)
	for tau := 0; tau <= v; tau++ {
		cur := Valuation(tau, v, rho)
		if cur <= prev && tau > 0 {
			t.Errorf("V not strictly increasing at τ=%d: %g <= %g", tau, cur, prev)
		}
		prev = cur
	}
}

func TestValuationClampsTau(t *testing.T) {
	const rho, v = 3.0, 2
	if Valuation(5, v, rho) != Valuation(v, v, rho) {
		t.Error("τ beyond v should clamp to the maximum valuation")
	}
	if Valuation(-1, v, rho) != 0 {
		t.Error("negative τ should clamp to zero valuation")
	}
	if Valuation(1, 0, rho) != 0 {
		t.Error("non-positive duration should yield zero valuation")
	}
}

// TestValuationCriteria checks the four Section IV-B1 criteria as
// properties over random (τ, v, ρ).
func TestValuationCriteria(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}

	// Marginal benefit of τ is nonincreasing (concavity).
	concave := func(tauRaw, vRaw byte, rhoRaw uint16) bool {
		v := int(vRaw%8) + 2
		tau := int(tauRaw) % v
		rho := 1 + float64(rhoRaw%900)/100
		m1 := Valuation(tau+1, v, rho) - Valuation(tau, v, rho)
		m2 := Valuation(tau+2, v, rho) - Valuation(tau+1, v, rho)
		return m2 <= m1+1e-9
	}
	if err := quick.Check(concave, cfg); err != nil {
		t.Errorf("marginal benefit must be nonincreasing: %v", err)
	}

	// Valuation increases with v (for fixed τ ≤ both durations).
	increasingInV := func(tauRaw, vRaw byte, rhoRaw uint16) bool {
		v := int(vRaw%8) + 2
		tau := int(tauRaw)%v + 1
		rho := 1 + float64(rhoRaw%900)/100
		return Valuation(tau, v+1, rho) >= Valuation(tau, v, rho)-1e-9
	}
	if err := quick.Check(increasingInV, cfg); err != nil {
		t.Errorf("valuation must increase with v: %v", err)
	}

	// Valuation increases with ρ.
	increasingInRho := func(tauRaw, vRaw byte, rhoRaw uint16) bool {
		v := int(vRaw%8) + 2
		tau := int(tauRaw)%v + 1
		rho := 1 + float64(rhoRaw%900)/100
		return Valuation(tau, v, rho+1) > Valuation(tau, v, rho)
	}
	if err := quick.Check(increasingInRho, cfg); err != nil {
		t.Errorf("valuation must increase with ρ: %v", err)
	}
}

func TestSatisfaction(t *testing.T) {
	truth := MustPreference(18, 20, 2)
	tests := []struct {
		name  string
		alloc Interval
		want  int
	}{
		{"exact", Interval{18, 20}, 2},
		{"disjoint earlier", Interval{14, 16}, 0},
		{"half overlap", Interval{17, 19}, 1},
		{"covering wider window", Interval{18, 20}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Satisfaction(tt.alloc, truth); got != tt.want {
				t.Errorf("Satisfaction(%v) = %d, want %d", tt.alloc, got, tt.want)
			}
		})
	}
	// τ is capped at the preferred duration even when the true window is
	// wider than the allocation duration.
	wide := MustPreference(10, 20, 2)
	if got := Satisfaction(Interval{10, 16}, wide); got != 2 {
		t.Errorf("Satisfaction capped = %d, want 2", got)
	}
}

func TestValuationOfAndUtility(t *testing.T) {
	typ := Type{True: MustPreference(18, 20, 2), ValuationFactor: 5}
	full := ValuationOf(Interval{18, 20}, typ)
	if math.Abs(full-5) > 1e-12 { // ρv/2 = 5·2/2
		t.Errorf("full valuation = %g, want 5", full)
	}
	none := ValuationOf(Interval{8, 10}, typ)
	if none != 0 {
		t.Errorf("disjoint valuation = %g, want 0", none)
	}
	if got := Utility(5, 1.5); got != 3.5 {
		t.Errorf("Utility(5, 1.5) = %g, want 3.5", got)
	}
}
