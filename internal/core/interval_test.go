package core

import (
	"testing"
	"testing/quick"
)

func TestNewInterval(t *testing.T) {
	tests := []struct {
		name       string
		begin, end Hour
		wantErr    bool
	}{
		{"valid evening", 18, 20, false},
		{"empty", 5, 5, false},
		{"full day", 0, 24, false},
		{"end before begin", 20, 18, true},
		{"negative begin", -1, 5, true},
		{"end past day", 20, 25, true},
		{"begin past day", 25, 25, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewInterval(tt.begin, tt.end)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewInterval(%d, %d) error = %v, wantErr %v", tt.begin, tt.end, err, tt.wantErr)
			}
		})
	}
}

func TestIntervalLenAndContains(t *testing.T) {
	iv := Interval{Begin: 18, End: 20}
	if got := iv.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
	if !iv.Contains(18) || !iv.Contains(19) {
		t.Error("interval (18,20) should contain slots 18 and 19")
	}
	if iv.Contains(20) {
		t.Error("interval (18,20) is half-open and must not contain slot 20")
	}
	if iv.Contains(17) {
		t.Error("interval (18,20) must not contain slot 17")
	}
}

func TestIntervalOverlapPaperExample(t *testing.T) {
	// Section IV-B3: s_i = (14,18), ω_i = (15,19) gives |s ∩ ω| = 3.
	s := Interval{Begin: 14, End: 18}
	w := Interval{Begin: 15, End: 19}
	if got := s.Overlap(w); got != 3 {
		t.Errorf("Overlap((14,18),(15,19)) = %d, want 3", got)
	}
}

func TestIntervalOverlap(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want int
	}{
		{"identical", Interval{18, 20}, Interval{18, 20}, 2},
		{"disjoint", Interval{8, 10}, Interval{18, 20}, 0},
		{"adjacent", Interval{8, 10}, Interval{10, 12}, 0},
		{"nested", Interval{8, 20}, Interval{10, 12}, 2},
		{"partial", Interval{8, 11}, Interval{10, 14}, 1},
		{"empty operand", Interval{8, 8}, Interval{0, 24}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlap(tt.b); got != tt.want {
				t.Errorf("Overlap(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestIntervalOverlapProperties(t *testing.T) {
	norm := func(x, y byte) Interval {
		b, e := int(x%25), int(y%25)
		if b > e {
			b, e = e, b
		}
		return Interval{Begin: b, End: e}
	}
	symmetric := func(a0, a1, b0, b1 byte) bool {
		a, b := norm(a0, a1), norm(b0, b1)
		return a.Overlap(b) == b.Overlap(a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("overlap not symmetric: %v", err)
	}
	bounded := func(a0, a1, b0, b1 byte) bool {
		a, b := norm(a0, a1), norm(b0, b1)
		ov := a.Overlap(b)
		return ov >= 0 && ov <= a.Len() && ov <= b.Len()
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("overlap out of bounds: %v", err)
	}
	selfOverlap := func(a0, a1 byte) bool {
		a := norm(a0, a1)
		return a.Overlap(a) == a.Len()
	}
	if err := quick.Check(selfOverlap, nil); err != nil {
		t.Errorf("self overlap must equal length: %v", err)
	}
}

func TestIntervalCovers(t *testing.T) {
	outer := Interval{Begin: 16, End: 24}
	if !outer.Covers(Interval{Begin: 18, End: 20}) {
		t.Error("(16,24) should cover (18,20)")
	}
	if !outer.Covers(outer) {
		t.Error("an interval should cover itself")
	}
	if outer.Covers(Interval{Begin: 15, End: 20}) {
		t.Error("(16,24) must not cover (15,20)")
	}
	if outer.Covers(Interval{Begin: 20, End: 25}) {
		t.Error("(16,24) must not cover (20,25)")
	}
}

func TestIntervalShiftAndSlots(t *testing.T) {
	iv := Interval{Begin: 18, End: 20}
	shifted := iv.Shift(2)
	if shifted != (Interval{Begin: 20, End: 22}) {
		t.Errorf("Shift(2) = %v, want (20, 22)", shifted)
	}
	slots := iv.Slots()
	if len(slots) != 2 || slots[0] != 18 || slots[1] != 19 {
		t.Errorf("Slots() = %v, want [18 19]", slots)
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{Begin: 18, End: 22}).String(); got != "(18, 22)" {
		t.Errorf("String() = %q, want %q", got, "(18, 22)")
	}
}
