package core

import (
	"fmt"
	"strconv"
)

// Interval is a half-open hour interval [Begin, End): it occupies the
// slots Begin, Begin+1, ..., End-1. The paper writes an interval as a
// pair such as (18, 20), which occupies hours 18 and 19.
type Interval struct {
	Begin Hour `json:"begin"`
	End   Hour `json:"end"`
}

// NewInterval returns the interval [begin, end) after validating bounds.
func NewInterval(begin, end Hour) (Interval, error) {
	iv := Interval{Begin: begin, End: end}
	if err := iv.Validate(); err != nil {
		return Interval{}, err
	}
	return iv, nil
}

// Validate checks that the interval lies within the day and is ordered.
func (iv Interval) Validate() error {
	if !ValidBound(iv.Begin) || !ValidBound(iv.End) {
		return &ValidationError{
			Field:  "interval",
			Reason: fmt.Sprintf("bounds [%d, %d) outside day [0, %d]", iv.Begin, iv.End, HoursPerDay),
		}
	}
	if iv.Begin > iv.End {
		return &ValidationError{
			Field:  "interval",
			Reason: fmt.Sprintf("begin %d after end %d", iv.Begin, iv.End),
		}
	}
	return nil
}

// Len is the number of slots the interval occupies.
func (iv Interval) Len() int { return iv.End - iv.Begin }

// Empty reports whether the interval occupies no slots.
func (iv Interval) Empty() bool { return iv.Len() == 0 }

// Contains reports whether slot h is occupied by the interval.
func (iv Interval) Contains(h Hour) bool { return h >= iv.Begin && h < iv.End }

// Covers reports whether other lies entirely inside iv.
func (iv Interval) Covers(other Interval) bool {
	return iv.Begin <= other.Begin && other.End <= iv.End
}

// Overlap returns the number of slots shared by iv and other. This is
// the |s_i ∩ ω_i| quantity of Eq. 5: Overlap((14,18), (15,19)) = 3.
func (iv Interval) Overlap(other Interval) int {
	lo := max(iv.Begin, other.Begin)
	hi := min(iv.End, other.End)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Shift returns the interval translated by d slots. The result may be
// invalid; callers that construct shifted intervals from untrusted
// deferments should Validate it.
func (iv Interval) Shift(d int) Interval {
	return Interval{Begin: iv.Begin + d, End: iv.End + d}
}

// Slots returns the occupied slots in increasing order.
func (iv Interval) Slots() []Hour {
	out := make([]Hour, 0, iv.Len())
	for h := iv.Begin; h < iv.End; h++ {
		out = append(out, h)
	}
	return out
}

// String renders the interval in the paper's (begin, end) notation.
func (iv Interval) String() string {
	return "(" + strconv.Itoa(iv.Begin) + ", " + strconv.Itoa(iv.End) + ")"
}
