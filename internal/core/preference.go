package core

import "fmt"

// HouseholdID identifies a household within a neighborhood.
type HouseholdID int

// Preference is a household's declared (or true) consumption request
// χ_i = (α_i, β_i, v_i): consume power for Duration consecutive hours,
// anywhere inside Window. The model requires β_i − α_i ≥ v_i.
type Preference struct {
	Window   Interval `json:"window"`
	Duration int      `json:"duration"`
}

// NewPreference builds χ = (begin, end, duration) and validates it.
func NewPreference(begin, end Hour, duration int) (Preference, error) {
	p := Preference{Window: Interval{Begin: begin, End: end}, Duration: duration}
	if err := p.Validate(); err != nil {
		return Preference{}, err
	}
	return p, nil
}

// MustPreference is NewPreference for statically known literals; it
// panics on invalid input and is intended for tests and examples.
func MustPreference(begin, end Hour, duration int) Preference {
	p, err := NewPreference(begin, end, duration)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate checks the Section III constraints on a preference.
func (p Preference) Validate() error {
	if err := p.Window.Validate(); err != nil {
		return err
	}
	if p.Duration <= 0 {
		return &ValidationError{
			Field:  "preference",
			Reason: fmt.Sprintf("duration %d must be positive", p.Duration),
		}
	}
	if p.Window.Len() < p.Duration {
		return &ValidationError{
			Field: "preference",
			Reason: fmt.Sprintf("window %v of %d slots cannot fit duration %d",
				p.Window, p.Window.Len(), p.Duration),
		}
	}
	return nil
}

// Slack is the number of deferment choices minus one: the allocation
// start may be deferred by d ∈ {0, ..., Slack()} slots from the window
// begin (the 0 ≤ d_i ≤ β̂_i − α̂_i − v_i constraint of Eq. 2).
func (p Preference) Slack() int { return p.Window.Len() - p.Duration }

// StartChoices is the number of feasible allocation start hours.
func (p Preference) StartChoices() int { return p.Slack() + 1 }

// IntervalAt returns the occupancy interval obtained by deferring the
// start by d slots from the window begin.
func (p Preference) IntervalAt(d int) Interval {
	return Interval{Begin: p.Window.Begin + d, End: p.Window.Begin + d + p.Duration}
}

// Admits reports whether iv is a feasible allocation for p: same
// duration and scheduled entirely inside the window.
func (p Preference) Admits(iv Interval) bool {
	return iv.Len() == p.Duration && p.Window.Covers(iv)
}

// Width is the window width β − α used by the flexibility score (Eq. 4).
func (p Preference) Width() int { return p.Window.Len() }

// String renders the preference in the paper's χ = (α, β, v) notation.
func (p Preference) String() string {
	return fmt.Sprintf("(%d, %d, %d)", p.Window.Begin, p.Window.End, p.Duration)
}

// Type is a household's private type θ_i = (χ_i, ρ_i): its true
// preference and its valuation factor (willingness to pay).
type Type struct {
	True            Preference `json:"true"`
	ValuationFactor float64    `json:"valuationFactor"`
}

// Validate checks the type's constraints (ρ_i > 0 and a valid χ_i).
func (t Type) Validate() error {
	if err := t.True.Validate(); err != nil {
		return err
	}
	if t.ValuationFactor <= 0 {
		return &ValidationError{
			Field:  "type",
			Reason: fmt.Sprintf("valuation factor %g must be positive", t.ValuationFactor),
		}
	}
	return nil
}
