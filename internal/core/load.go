package core

// DefaultPowerRating is the paper's appliance power rating r = 2 kW
// (each occupied hour consumes 2 kWh).
const DefaultPowerRating = 2.0

// Load is the aggregated hourly consumption profile l_h (kWh) over a day.
type Load [HoursPerDay]float64

// AddInterval adds rating kWh to every slot occupied by iv. Slots
// outside the day are ignored so that callers may pass unvalidated
// shifted intervals without panicking.
func (l *Load) AddInterval(iv Interval, rating float64) {
	for h := max(iv.Begin, 0); h < min(iv.End, HoursPerDay); h++ {
		l[h] += rating
	}
}

// RemoveInterval subtracts rating kWh from every slot occupied by iv.
func (l *Load) RemoveInterval(iv Interval, rating float64) {
	l.AddInterval(iv, -rating)
}

// Peak returns the maximum hourly load.
func (l *Load) Peak() float64 {
	peak := l[0]
	for _, v := range l[1:] {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Total returns the day's total energy.
func (l *Load) Total() float64 {
	var sum float64
	for _, v := range l {
		sum += v
	}
	return sum
}

// Average returns the mean hourly load over the 24 slots.
func (l *Load) Average() float64 { return l.Total() / HoursPerDay }

// PAR returns the peak-to-average ratio, the Figure 4 metric. It
// returns 0 for an empty day.
func (l *Load) PAR() float64 {
	avg := l.Average()
	if avg == 0 {
		return 0
	}
	return l.Peak() / avg
}

// SumSquares returns Σ_h l_h², the kernel of the quadratic pricing
// function (Eq. 1 divided by σ).
func (l *Load) SumSquares() float64 {
	var sum float64
	for _, v := range l {
		sum += v * v
	}
	return sum
}

// LoadOf aggregates the given occupancy intervals at a uniform power
// rating into an hourly load profile.
func LoadOf(intervals []Interval, rating float64) Load {
	var l Load
	for _, iv := range intervals {
		l.AddInterval(iv, rating)
	}
	return l
}

// Occupancy returns n_h: the number of households whose preference
// window could cover slot h, for every h. The flexibility score (Eq. 4)
// averages these counts over each household's own window. Example 2 of
// the paper: preferences (18,19,1), (18,20,1), (18,20,1) give
// n_18 = 3 and n_19 = 2.
func Occupancy(prefs []Preference) [HoursPerDay]int {
	var n [HoursPerDay]int
	for _, p := range prefs {
		for h := max(p.Window.Begin, 0); h < min(p.Window.End, HoursPerDay); h++ {
			n[h]++
		}
	}
	return n
}
