package mechanism

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
	"enki/internal/profile"
)

// propertyDays is the number of random valid Days each property is
// checked against.
const propertyDays = 1000

// randomDay draws a valid Day: a generated population of truthful
// households, a random admitted assignment for each, and compliant
// consumption except for ~30% of households, which defect to a random
// same-duration interval anywhere in the day.
func randomDay(t *testing.T, rng *dist.RNG) Day {
	t.Helper()
	n := 2 + rng.Intn(19)
	gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	day := Day{Rating: core.DefaultPowerRating}
	for i, p := range gen.DrawN(n) {
		h := core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
		assigned := h.Reported.IntervalAt(rng.Intn(h.Reported.Slack() + 1))
		consumed := assigned
		if rng.Bool(0.3) {
			begin := rng.Intn(core.HoursPerDay - h.Reported.Duration + 1)
			consumed = core.Interval{Begin: begin, End: begin + h.Reported.Duration}
		}
		day.Households = append(day.Households, h)
		day.Assignments = append(day.Assignments, assigned)
		day.Consumptions = append(day.Consumptions, consumed)
	}
	if err := day.Validate(); err != nil {
		t.Fatalf("randomDay built an invalid day: %v", err)
	}
	return day
}

// TestPropertyBudgetBalance checks Theorem 1 on random days: at ξ ≥ 1
// the neighborhood collects at least the power company's bill, and at
// ξ = 1 revenue equals cost exactly (within float tolerance).
func TestPropertyBudgetBalance(t *testing.T) {
	rng := dist.New(2024)
	pricer := pricing.Quadratic{Sigma: pricing.DefaultSigma}
	for i := 0; i < propertyDays; i++ {
		day := randomDay(t, rng)

		s, err := Settle(pricer, Config{K: DefaultK, Xi: DefaultXi}, day)
		if err != nil {
			t.Fatalf("day %d: %v", i, err)
		}
		tol := 1e-9 * math.Max(1, s.Cost)
		if s.Revenue() < s.Cost-tol {
			t.Fatalf("day %d: revenue %g below cost %g at xi=%g",
				i, s.Revenue(), s.Cost, DefaultXi)
		}
		if s.CenterUtility() < -tol {
			t.Fatalf("day %d: center utility %g negative", i, s.CenterUtility())
		}

		exact, err := Settle(pricer, Config{K: DefaultK, Xi: 1}, day)
		if err != nil {
			t.Fatalf("day %d: %v", i, err)
		}
		if diff := math.Abs(exact.Revenue() - exact.Cost); diff > tol {
			t.Fatalf("day %d: xi=1 revenue %g != cost %g (diff %g)",
				i, exact.Revenue(), exact.Cost, diff)
		}
	}
}

// TestPropertyScoresWellFormed checks the Eq. 6 scores on random days:
// every Ψ_i is strictly positive (normalized shares live in
// [1/2, 3/2], so Ψ_i ∈ [k/3, 3k]) and every payment is non-negative.
func TestPropertyScoresWellFormed(t *testing.T) {
	rng := dist.New(7)
	pricer := pricing.Quadratic{Sigma: pricing.DefaultSigma}
	cfg := Config{K: DefaultK, Xi: DefaultXi}
	for i := 0; i < propertyDays; i++ {
		day := randomDay(t, rng)
		s, err := Settle(pricer, cfg, day)
		if err != nil {
			t.Fatalf("day %d: %v", i, err)
		}
		for j, psi := range s.SocialCost {
			if psi <= 0 {
				t.Fatalf("day %d household %d: social cost %g not positive", i, j, psi)
			}
			if psi < cfg.K/3-1e-12 || psi > 3*cfg.K+1e-12 {
				t.Fatalf("day %d household %d: social cost %g outside [k/3, 3k]", i, j, psi)
			}
			if s.Payments[j] < 0 {
				t.Fatalf("day %d household %d: negative payment %g", i, j, s.Payments[j])
			}
		}
	}
}

// TestPropertyFlexibilityMonotone checks the Eq. 4 shape on random
// populations: f_i = (β−α)/v · 1/N_i.
//
// Stretching the reported duration v (window fixed) never increases
// flexibility — the household occupies more of the same window, so it
// is strictly less flexible. This is the monotonicity the greedy order
// relies on. Note the window direction is NOT monotone in general:
// widening β−α also changes N_i, and growing the window into a
// congested hour can lower the score — so the window half of the
// property is asserted only in isolation, where N_i ≡ 1 and f = w/v is
// strictly increasing in the width.
func TestPropertyFlexibilityMonotone(t *testing.T) {
	rng := dist.New(99)
	for i := 0; i < propertyDays; i++ {
		n := 2 + rng.Intn(19)
		gen, err := profile.NewGenerator(profile.DefaultConfig(), rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		prefs := make([]core.Preference, n)
		for j, p := range gen.DrawN(n) {
			prefs[j] = p.Wide
		}
		scores := FlexibilityScores(prefs)

		target := rng.Intn(n)
		if prefs[target].Slack() == 0 {
			continue // duration already fills the window
		}
		stretched := append([]core.Preference(nil), prefs...)
		stretched[target].Duration++
		if stretched[target].Validate() != nil {
			t.Fatalf("day %d: stretched preference invalid", i)
		}
		after := FlexibilityScores(stretched)
		if after[target] > scores[target]+1e-12 {
			t.Fatalf("day %d: stretching duration of %v raised flexibility %g -> %g",
				i, prefs[target], scores[target], after[target])
		}
	}

	// Window monotonicity holds for an isolated household (N_i = 1).
	for width := 2; width < core.HoursPerDay; width++ {
		narrow := core.MustPreference(0, core.Hour(width), 1)
		wide := core.MustPreference(0, core.Hour(width+1), 1)
		fNarrow := FlexibilityScore(narrow, []core.Preference{narrow})
		fWide := FlexibilityScore(wide, []core.Preference{wide})
		if fWide <= fNarrow {
			t.Fatalf("isolated: widening %v -> %v did not raise flexibility (%g -> %g)",
				narrow, wide, fNarrow, fWide)
		}
	}
}
