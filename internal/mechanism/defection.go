package mechanism

import (
	"math"

	"enki/internal/core"
	"enki/internal/pricing"
)

// DefectionScores computes δ_i of Eq. 5 for every household:
//
//	δ_i = (κ(s_{−i} ∪ ω_i) − κ(s)) / e^{o_i}
//
// where κ(s) is the neighborhood cost if everyone followed their
// allocations, κ(s_{−i} ∪ ω_i) replaces household i's allocation with
// its realized consumption, and o_i is the overlap fraction between
// allocation and consumption. A household that follows its allocation
// has δ_i = 0. A defection that happens to lower the neighborhood cost
// is clamped to 0 rather than rewarded: the mechanism punishes harm, it
// does not pay for accidental help.
func DefectionScores(p pricing.Pricer, rating float64, assignments, consumptions []core.Interval) []float64 {
	base := core.LoadOf(assignments, rating)
	baseCost := pricing.Cost(p, base)

	out := make([]float64, len(assignments))
	for i := range assignments {
		if assignments[i] == consumptions[i] {
			continue // exact compliance: δ_i = 0 without recomputation
		}
		// κ(s_{−i} ∪ ω_i): swap i's allocation for its consumption.
		swapped := base
		swapped.RemoveInterval(assignments[i], rating)
		swapped.AddInterval(consumptions[i], rating)
		harm := pricing.Cost(p, swapped) - baseCost
		if harm < 0 {
			harm = 0
		}
		o := core.OverlapRatio(assignments[i], consumptions[i])
		out[i] = harm / math.Exp(o)
	}
	return out
}
