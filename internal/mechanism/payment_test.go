package mechanism

import (
	"testing"
	"testing/quick"
)

func TestNormalizedShares(t *testing.T) {
	got := NormalizedShares([]float64{1, 3})
	if !almost(got[0], 0.75, 1e-12) || !almost(got[1], 1.25, 1e-12) {
		t.Errorf("NormalizedShares = %v, want [0.75 1.25]", got)
	}
	zeros := NormalizedShares([]float64{0, 0, 0})
	for _, v := range zeros {
		if v != 0.5 {
			t.Errorf("all-zero shares must normalize to 0.5, got %v", zeros)
		}
	}
}

func TestNormalizedSharesRange(t *testing.T) {
	// Eq. 6: normalized scores live in [0.5, 1.5].
	prop := func(raw [6]uint8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		for _, s := range NormalizedShares(xs) {
			if s < 0.5 || s > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("normalized shares out of [0.5, 1.5]: %v", err)
	}
}

func TestSocialCostScores(t *testing.T) {
	// Truthful compliant household: f > 0, δ = 0 → Ψ = k·0.5/(F).
	// Defector: f = 0, δ > 0 → Ψ = k·(∆)/0.5.
	flex := []float64{2, 0}
	defect := []float64{0, 3}
	psi, err := SocialCostScores(flex, defect, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Household 0: ∆ = 0.5, F = 1.5 → Ψ = 1/3.
	if !almost(psi[0], 0.5/1.5, 1e-12) {
		t.Errorf("Ψ_0 = %g, want 1/3", psi[0])
	}
	// Household 1: ∆ = 1.5, F = 0.5 → Ψ = 3.
	if !almost(psi[1], 3, 1e-12) {
		t.Errorf("Ψ_1 = %g, want 3", psi[1])
	}
	if psi[1] <= psi[0] {
		t.Error("the defector must carry a larger social cost")
	}
}

func TestSocialCostScoresValidation(t *testing.T) {
	if _, err := SocialCostScores([]float64{1}, []float64{0, 0}, 1); err == nil {
		t.Error("mismatched lengths should be rejected")
	}
	if _, err := SocialCostScores([]float64{1}, []float64{0}, 0); err == nil {
		t.Error("k = 0 should be rejected")
	}
}

func TestSocialCostScoresScaleWithK(t *testing.T) {
	flex := []float64{1, 2}
	defect := []float64{0.5, 0}
	psi1, err := SocialCostScores(flex, defect, 1)
	if err != nil {
		t.Fatal(err)
	}
	psi3, err := SocialCostScores(flex, defect, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range psi1 {
		if !almost(psi3[i], 3*psi1[i], 1e-12) {
			t.Errorf("Ψ must scale linearly with k: %g vs %g", psi3[i], psi1[i])
		}
	}
}

func TestPayments(t *testing.T) {
	psi := []float64{1, 3}
	p, err := Payments(psi, 1.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p[0], 30, 1e-9) || !almost(p[1], 90, 1e-9) {
		t.Errorf("payments = %v, want [30 90]", p)
	}
}

func TestPaymentsBudgetBalance(t *testing.T) {
	// Theorem 1: Σ p_i = ξ·κ(ω), so U_c = (ξ − 1)·κ(ω) ≥ 0 for ξ ≥ 1.
	prop := func(raw [8]uint8, costRaw uint16, xiRaw uint8) bool {
		psi := make([]float64, 0, len(raw))
		var sum float64
		for _, v := range raw {
			psi = append(psi, float64(v)+0.5) // Ψ ∈ [0.5, ...] like Eq. 6 output
			sum += float64(v) + 0.5
		}
		cost := float64(costRaw) / 10
		xi := 1 + float64(xiRaw)/100
		p, err := Payments(psi, xi, cost)
		if err != nil {
			return false
		}
		var revenue float64
		for _, x := range p {
			revenue += x
		}
		return revenue >= cost-1e-9 && almost(revenue, xi*cost, 1e-6*(1+cost))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("budget balance violated: %v", err)
	}
}

func TestPaymentsValidation(t *testing.T) {
	if _, err := Payments([]float64{1}, 0.9, 10); err == nil {
		t.Error("ξ < 1 should be rejected")
	}
	if _, err := Payments([]float64{1}, 1.2, -1); err == nil {
		t.Error("negative cost should be rejected")
	}
	if _, err := Payments([]float64{0, 0}, 1.2, 10); err == nil {
		t.Error("all-zero social costs should be rejected")
	}
	p, err := Payments(nil, 1.2, 10)
	if err != nil || len(p) != 0 {
		t.Errorf("empty settlement should yield no payments, got %v, %v", p, err)
	}
}

func TestProportionalPayments(t *testing.T) {
	p, err := ProportionalPayments([]float64{2, 6}, 1.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p[0], 30, 1e-9) || !almost(p[1], 90, 1e-9) {
		t.Errorf("proportional payments = %v, want [30 90]", p)
	}
	if _, err := ProportionalPayments([]float64{-1}, 1.2, 10); err == nil {
		t.Error("negative energy should be rejected")
	}
	if _, err := ProportionalPayments([]float64{1}, 0.5, 10); err == nil {
		t.Error("ξ < 1 should be rejected")
	}
	zero, err := ProportionalPayments([]float64{0, 0}, 1.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range zero {
		if v != 0 {
			t.Errorf("zero-energy day should have zero payments, got %v", zero)
		}
	}
}

func TestPaymentsStrictIC(t *testing.T) {
	psi := []float64{0.5, 1.5}
	p, err := PaymentsStrictIC(psi, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p[0], 5, 1e-12) || !almost(p[1], 15, 1e-12) {
		t.Errorf("strict IC payments = %v, want [5 15]", p)
	}
	if _, err := PaymentsStrictIC(psi, -1); err == nil {
		t.Error("negative cost should be rejected")
	}
	if _, err := PaymentsStrictIC([]float64{-1}, 10); err == nil {
		t.Error("negative score should be rejected")
	}
}

// TestStrictICBreaksBudgetBalance demonstrates the Section V-B
// trade-off: the strict-IC rule's revenue is ΣΨ·κ, which deviates from
// κ whenever ΣΨ differs from 1 — unlike Eq. 7, which always collects
// exactly ξ·κ.
func TestStrictICBreaksBudgetBalance(t *testing.T) {
	// Ψ for one truthful flexible household and one defector: the sum
	// is far from 1.
	psi, err := SocialCostScores([]float64{2, 0}, []float64{0, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const cost = 100.0
	strict, err := PaymentsStrictIC(psi, cost)
	if err != nil {
		t.Fatal(err)
	}
	var strictRevenue float64
	for _, p := range strict {
		strictRevenue += p
	}
	if almost(strictRevenue, cost, 1e-6) {
		t.Fatalf("strict IC revenue %g coincidentally balanced; pick a different fixture", strictRevenue)
	}

	balanced, err := Payments(psi, 1, cost)
	if err != nil {
		t.Fatal(err)
	}
	var balancedRevenue float64
	for _, p := range balanced {
		balancedRevenue += p
	}
	if !almost(balancedRevenue, cost, 1e-9) {
		t.Errorf("Eq. 7 revenue %g should equal κ = %g at ξ = 1", balancedRevenue, cost)
	}
}
