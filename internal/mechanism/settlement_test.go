package mechanism_test

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

// buildDay assembles a compliant day for n truthful households drawn
// from the Section VI profile model, allocated greedily.
func buildDay(t *testing.T, seed uint64, n int) mechanism.Day {
	t.Helper()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	profiles := gen.DrawN(n)
	households := make([]core.Household, n)
	reports := make([]core.Report, n)
	for i, p := range profiles {
		households[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
		reports[i] = core.Report{ID: core.HouseholdID(i), Pref: p.Wide}
	}
	greedy := &sched.Greedy{Pricer: quad, Rating: 2}
	assignments, err := greedy.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	day := mechanism.Day{
		Households:   households,
		Assignments:  make([]core.Interval, n),
		Consumptions: make([]core.Interval, n),
		Rating:       2,
	}
	for i, a := range assignments {
		day.Assignments[i] = a.Interval
		day.Consumptions[i] = a.Interval
	}
	return day
}

func TestDayValidate(t *testing.T) {
	day := buildDay(t, 1, 5)
	if err := day.Validate(); err != nil {
		t.Fatalf("valid day rejected: %v", err)
	}
	bad := day
	bad.Rating = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rating should be rejected")
	}
	bad = day
	bad.Assignments = bad.Assignments[:len(bad.Assignments)-1]
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch should be rejected")
	}
	bad = buildDay(t, 1, 5)
	bad.Assignments[0] = core.Interval{Begin: 0, End: bad.Households[0].Reported.Duration}
	if bad.Households[0].Reported.Admits(bad.Assignments[0]) {
		t.Skip("random draw admits hour 0; pick a different fixture")
	}
	if err := bad.Validate(); err == nil {
		t.Error("assignment outside the reported window should be rejected")
	}
	empty := mechanism.Day{}
	if err := empty.Validate(); err == nil {
		t.Error("empty day should be rejected")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := mechanism.DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (mechanism.Config{K: 0, Xi: 1.2}).Validate(); err == nil {
		t.Error("k = 0 should be rejected")
	}
	if err := (mechanism.Config{K: 1, Xi: 0.99}).Validate(); err == nil {
		t.Error("xi < 1 should be rejected")
	}
}

// TestBudgetBalanceTheorem1 verifies Theorem 1 across random days and
// ξ values: U_c = Σp_i − κ(ω) = (ξ − 1)·κ(ω) ≥ 0 exactly.
func TestBudgetBalanceTheorem1(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		day := buildDay(t, seed, 4+int(seed%20))
		for _, xi := range []float64{1, 1.2, 2} {
			cfg := mechanism.Config{K: 1, Xi: xi}
			s, err := mechanism.Settle(quad, cfg, day)
			if err != nil {
				t.Fatal(err)
			}
			want := (xi - 1) * s.Cost
			if math.Abs(s.CenterUtility()-want) > 1e-6 {
				t.Errorf("seed %d ξ=%g: center utility %g, want (ξ−1)κ = %g",
					seed, xi, s.CenterUtility(), want)
			}
			if s.CenterUtility() < -1e-9 {
				t.Errorf("seed %d ξ=%g: center in deficit: %g", seed, xi, s.CenterUtility())
			}
		}
	}
}

// TestBudgetBalanceWithDefectors repeats Theorem 1 on days that include
// misreporting defectors: balance must hold regardless of behavior.
func TestBudgetBalanceWithDefectors(t *testing.T) {
	for seed := uint64(30); seed <= 40; seed++ {
		day := buildDay(t, seed, 10)
		rng := dist.New(seed * 77)
		// A third of the households defect to a random in-day slot of
		// the same duration.
		for i := range day.Consumptions {
			if rng.Bool(0.33) {
				v := day.Consumptions[i].Len()
				start := rng.Intn(core.HoursPerDay - v)
				day.Consumptions[i] = core.Interval{Begin: start, End: start + v}
			}
		}
		s, err := mechanism.Settle(quad, mechanism.DefaultConfig(), day)
		if err != nil {
			t.Fatal(err)
		}
		want := (mechanism.DefaultXi - 1) * s.Cost
		if math.Abs(s.CenterUtility()-want) > 1e-6 {
			t.Errorf("seed %d: center utility %g, want %g", seed, s.CenterUtility(), want)
		}
	}
}

// TestWeakIncentiveCompatibilityScenario reproduces the Section V-B
// two-scenario argument: household A with truth (18,20,2) either
// misreports (14,20,2) and defects back to (18,20), or reports
// truthfully — with identical consumption, the truthful scenario yields
// at least the misreporting utility.
func TestWeakIncentiveCompatibilityScenario(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		truth := core.MustPreference(18, 20, 2)
		misreport := core.MustPreference(14, 20, 2)
		rho := 5.0

		utility := func(report core.Preference) float64 {
			gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			others := gen.DrawN(49)
			reports := []core.Report{{ID: 0, Pref: report}}
			households := []core.Household{{
				ID:       0,
				Type:     core.Type{True: truth, ValuationFactor: rho},
				Reported: report,
			}}
			for i, o := range others {
				id := core.HouseholdID(i + 1)
				reports = append(reports, core.Report{ID: id, Pref: o.Wide})
				households = append(households, core.TruthfulHousehold(id, o.TypeWide()))
			}
			greedy := &sched.Greedy{Pricer: quad, Rating: 2}
			assignments, err := greedy.Allocate(reports)
			if err != nil {
				t.Fatal(err)
			}
			day := mechanism.Day{
				Households:   households,
				Assignments:  make([]core.Interval, len(households)),
				Consumptions: make([]core.Interval, len(households)),
				Rating:       2,
			}
			for i, a := range assignments {
				day.Assignments[i] = a.Interval
				day.Consumptions[i] = a.Interval
			}
			// Household 0 consumes within its true window regardless.
			day.Consumptions[0] = core.ClosestConsumption(truth, day.Assignments[0])
			s, err := mechanism.Settle(quad, mechanism.DefaultConfig(), day)
			if err != nil {
				t.Fatal(err)
			}
			return s.Utilities[0]
		}

		truthful := utility(truth)
		lying := utility(misreport)
		if lying > truthful+1e-9 {
			t.Errorf("seed %d: misreporting utility %g beats truthful %g", seed, lying, truthful)
		}
	}
}

// TestExpectedUtilityHigherWithEnki verifies Theorem 5: the average
// household utility under Enki is at least the proportional-allocation
// (no-Enki) world's, because the greedy allocation lowers κ.
func TestExpectedUtilityHigherWithEnki(t *testing.T) {
	for seed := uint64(50); seed < 60; seed++ {
		n := 20
		gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		profiles := gen.DrawN(n)
		households := make([]core.Household, n)
		reports := make([]core.Report, n)
		for i, p := range profiles {
			households[i] = core.TruthfulHousehold(core.HouseholdID(i), p.TypeWide())
			reports[i] = core.Report{ID: core.HouseholdID(i), Pref: p.Wide}
		}

		// Enki world: greedy allocation, everyone complies.
		greedy := &sched.Greedy{Pricer: quad, Rating: 2}
		ga, err := greedy.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		enkiDay := mechanism.Day{Households: households, Rating: 2}
		for _, a := range ga {
			enkiDay.Assignments = append(enkiDay.Assignments, a.Interval)
			enkiDay.Consumptions = append(enkiDay.Consumptions, a.Interval)
		}
		enki, err := mechanism.Settle(quad, mechanism.DefaultConfig(), enkiDay)
		if err != nil {
			t.Fatal(err)
		}

		// No-Enki world: everyone consumes at the start of its window
		// (price-taking, uncoordinated) and pays proportionally.
		noDay := mechanism.Day{Households: households, Rating: 2}
		for _, h := range households {
			iv := h.Reported.IntervalAt(0)
			noDay.Assignments = append(noDay.Assignments, iv)
			noDay.Consumptions = append(noDay.Consumptions, iv)
		}
		baseline, err := mechanism.SettleProportional(quad, mechanism.DefaultXi, noDay)
		if err != nil {
			t.Fatal(err)
		}

		var enkiMean, baseMean float64
		for i := range households {
			enkiMean += enki.Utilities[i] / float64(n)
			baseMean += baseline.Utilities[i] / float64(n)
		}
		if enkiMean < baseMean-1e-9 {
			t.Errorf("seed %d: Enki mean utility %g below proportional baseline %g",
				seed, enkiMean, baseMean)
		}
	}
}

// TestFlexibleHouseholdGainsMore spot-checks Theorem 6: with equal
// consumption, the most flexible household's Enki payment is below its
// proportional share.
func TestFlexibleHouseholdGainsMore(t *testing.T) {
	// Three equal-duration households; household 0 is the most
	// flexible (widest, off-peak window).
	households := []core.Household{
		core.TruthfulHousehold(0, core.Type{True: core.MustPreference(6, 18, 2), ValuationFactor: 5}),
		core.TruthfulHousehold(1, core.Type{True: core.MustPreference(18, 21, 2), ValuationFactor: 5}),
		core.TruthfulHousehold(2, core.Type{True: core.MustPreference(18, 21, 2), ValuationFactor: 5}),
	}
	reports := make([]core.Report, len(households))
	for i, h := range households {
		reports[i] = core.Report{ID: h.ID, Pref: h.Reported}
	}
	greedy := &sched.Greedy{Pricer: quad, Rating: 2}
	assignments, err := greedy.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	day := mechanism.Day{Households: households, Rating: 2}
	for _, a := range assignments {
		day.Assignments = append(day.Assignments, a.Interval)
		day.Consumptions = append(day.Consumptions, a.Interval)
	}
	s, err := mechanism.Settle(quad, mechanism.DefaultConfig(), day)
	if err != nil {
		t.Fatal(err)
	}
	proportionalShare := mechanism.DefaultXi * s.Cost / 3 // equal energy → equal share
	if s.Payments[0] >= proportionalShare {
		t.Errorf("flexible household pays %g, at or above its proportional share %g",
			s.Payments[0], proportionalShare)
	}
	if s.Payments[1] <= s.Payments[0] {
		t.Errorf("rigid household pays %g, not above flexible %g", s.Payments[1], s.Payments[0])
	}
}

// TestSettleProportionalBudget: the baseline world also collects
// exactly ξ·κ.
func TestSettleProportionalBudget(t *testing.T) {
	day := buildDay(t, 3, 12)
	s, err := mechanism.SettleProportional(quad, 1.2, day)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Revenue()-1.2*s.Cost) > 1e-6 {
		t.Errorf("proportional revenue %g != 1.2κ = %g", s.Revenue(), 1.2*s.Cost)
	}
}

// TestSettlementArraysAligned checks every settlement slice has one
// entry per household and valuations respect allocation satisfaction.
func TestSettlementArraysAligned(t *testing.T) {
	day := buildDay(t, 9, 15)
	s, err := mechanism.Settle(quad, mechanism.DefaultConfig(), day)
	if err != nil {
		t.Fatal(err)
	}
	n := len(day.Households)
	for name, l := range map[string]int{
		"flexibility": len(s.Flexibility),
		"defection":   len(s.Defection),
		"socialCost":  len(s.SocialCost),
		"payments":    len(s.Payments),
		"valuations":  len(s.Valuations),
		"utilities":   len(s.Utilities),
	} {
		if l != n {
			t.Errorf("%s has %d entries, want %d", name, l, n)
		}
	}
	for i, h := range day.Households {
		maxV := core.MaxValuation(h.Type.True.Duration, h.Type.ValuationFactor)
		if s.Valuations[i] < 0 || s.Valuations[i] > maxV+1e-9 {
			t.Errorf("valuation %d = %g outside [0, %g]", i, s.Valuations[i], maxV)
		}
		if math.Abs(s.Utilities[i]-(s.Valuations[i]-s.Payments[i])) > 1e-9 {
			t.Errorf("utility %d != valuation − payment", i)
		}
	}
	// Compliance means κ(ω) = κ(s).
	if math.Abs(s.Cost-s.AllocCost) > 1e-9 {
		t.Errorf("compliant day: cost %g != alloc cost %g", s.Cost, s.AllocCost)
	}
}
