// Package mechanism implements the Enki payment mechanism of
// Section IV: flexibility scores (Eq. 4), defection scores (Eq. 5),
// social-cost scores (Eq. 6), the budget-balanced payment rule (Eq. 7),
// quasilinear utilities (Eq. 8), and the proportional-allocation
// baseline world used by Theorems 5 and 6.
package mechanism

import (
	"enki/internal/core"
)

// DefaultK is the paper's social-cost scaling factor k = 1 (Section VI).
const DefaultK = 1.0

// DefaultXi is the paper's payment scaling factor ξ = 1.2 (Section VI).
// Budget balance requires ξ ≥ 1 (Theorem 1).
const DefaultXi = 1.2

// FlexibilityScores computes the predicted flexibility score f_i of
// Eq. 4 for every preference:
//
//	f_i = (β_i − α_i)/v_i · 1/N_i
//
// where N_i is the average number of households (including i) whose
// windows cover each hour of i's window. Predicted scores assume all
// households report truthfully; the greedy scheduler orders by them and
// the payment rule uses them for non-defecting households.
func FlexibilityScores(prefs []core.Preference) []float64 {
	return FlexibilityScoresInto(make([]float64, len(prefs)), prefs)
}

// FlexibilityScoresInto computes Eq. 4 into dst, which must have
// len(prefs) entries, and returns it. It performs no allocations: the
// greedy scheduler's zero-alloc hot path calls it with a scratch
// buffer. The arithmetic is identical to FlexibilityScores.
func FlexibilityScoresInto(dst []float64, prefs []core.Preference) []float64 {
	n := core.Occupancy(prefs)
	for i, p := range prefs {
		dst[i] = flexibilityOf(p, n)
	}
	return dst
}

// FlexibilityScore computes Eq. 4 for one preference against a
// population of windows that must include the preference itself.
func FlexibilityScore(p core.Preference, population []core.Preference) float64 {
	return flexibilityOf(p, core.Occupancy(population))
}

func flexibilityOf(p core.Preference, n [core.HoursPerDay]int) float64 {
	width := p.Width()
	if width == 0 || p.Duration == 0 {
		return 0
	}
	var sum int
	for h := max(p.Window.Begin, 0); h < min(p.Window.End, core.HoursPerDay); h++ {
		sum += n[h]
	}
	avg := float64(sum) / float64(width) // N_i
	if avg == 0 {
		return 0
	}
	return float64(width) / float64(p.Duration) / avg
}

// ActualFlexibilities zeroes the flexibility of defectors: per
// Section IV-B3, "f_i = 0 when the household misreports and defects",
// while obedient households keep their predicted score.
func ActualFlexibilities(predicted []float64, assignments, consumptions []core.Interval) []float64 {
	out := make([]float64, len(predicted))
	for i := range predicted {
		if core.Defected(assignments[i], consumptions[i]) {
			out[i] = 0
		} else {
			out[i] = predicted[i]
		}
	}
	return out
}
