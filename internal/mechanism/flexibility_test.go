package mechanism

import (
	"math"
	"testing"

	"enki/internal/core"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFlexibilityPaperExample2(t *testing.T) {
	// Example 2: χ_A = (18,19,1), χ_B = χ_C = (18,20,1).
	// N_B = (3+2)/2 = 2.5 and f_B = (2/1)·(1/2.5) = 0.8. A is less
	// flexible than B and C: f_A < f_B = f_C.
	prefs := []core.Preference{
		core.MustPreference(18, 19, 1),
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
	}
	f := FlexibilityScores(prefs)
	if !almost(f[1], 0.8, 1e-12) {
		t.Errorf("f_B = %g, want 0.8", f[1])
	}
	if !almost(f[1], f[2], 1e-12) {
		t.Errorf("f_B = %g != f_C = %g", f[1], f[2])
	}
	if f[0] >= f[1] {
		t.Errorf("f_A = %g should be less than f_B = %g", f[0], f[1])
	}
	// f_A = (1/1)·(1/N_A), N_A = 3 → 1/3.
	if !almost(f[0], 1.0/3, 1e-12) {
		t.Errorf("f_A = %g, want 1/3", f[0])
	}
}

func TestFlexibilityPaperExample3(t *testing.T) {
	// Example 3: χ_A = (16,18,2), χ_B = χ_C = (18,21,2). A prefers an
	// off-peak window, so f_B = f_C < f_A.
	prefs := []core.Preference{
		core.MustPreference(16, 18, 2),
		core.MustPreference(18, 21, 2),
		core.MustPreference(18, 21, 2),
	}
	f := FlexibilityScores(prefs)
	if !(f[1] < f[0]) || !(f[2] < f[0]) {
		t.Errorf("expected f_B = f_C < f_A, got f = %v", f)
	}
	if !almost(f[1], f[2], 1e-12) {
		t.Errorf("f_B = %g != f_C = %g", f[1], f[2])
	}
	// A occupies its window alone: N_A = 1, f_A = (2/2)·1 = 1.
	if !almost(f[0], 1, 1e-12) {
		t.Errorf("f_A = %g, want 1", f[0])
	}
}

func TestFlexibilityIdenticalHouseholds(t *testing.T) {
	// Example 1: identical preferences → identical scores.
	prefs := []core.Preference{
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
	}
	f := FlexibilityScores(prefs)
	if !almost(f[0], f[1], 1e-12) || !almost(f[1], f[2], 1e-12) {
		t.Errorf("identical preferences must score identically, got %v", f)
	}
}

func TestFlexibilityWiderWindowScoresHigher(t *testing.T) {
	// Property 1: all else equal, a wider truthful window scores higher
	// flexibility (and therefore pays less).
	narrow := []core.Preference{
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
	}
	wide := []core.Preference{
		core.MustPreference(18, 22, 1),
		core.MustPreference(18, 20, 1),
	}
	fNarrow := FlexibilityScores(narrow)
	fWide := FlexibilityScores(wide)
	if fWide[0] <= fNarrow[0] {
		t.Errorf("widening the window must raise flexibility: %g -> %g", fNarrow[0], fWide[0])
	}
}

func TestFlexibilityOffPeakScoresHigher(t *testing.T) {
	// Property 2: preferring an uncrowded window scores higher than an
	// equally wide crowded window.
	crowd := []core.Preference{
		core.MustPreference(18, 21, 2),
		core.MustPreference(18, 21, 2),
		core.MustPreference(18, 21, 2),
	}
	offPeak := append([]core.Preference{core.MustPreference(8, 11, 2)}, crowd[1:]...)
	fCrowd := FlexibilityScores(crowd)
	fOff := FlexibilityScores(offPeak)
	if fOff[0] <= fCrowd[0] {
		t.Errorf("off-peak window must raise flexibility: %g -> %g", fCrowd[0], fOff[0])
	}
}

func TestFlexibilityScoreSingle(t *testing.T) {
	p := core.MustPreference(18, 22, 2)
	got := FlexibilityScore(p, []core.Preference{p})
	// Alone: N = 1, f = width/duration = 2.
	if !almost(got, 2, 1e-12) {
		t.Errorf("solo flexibility = %g, want 2", got)
	}
}

func TestFlexibilityDegenerate(t *testing.T) {
	if got := flexibilityOf(core.Preference{}, [core.HoursPerDay]int{}); got != 0 {
		t.Errorf("zero-width preference flexibility = %g, want 0", got)
	}
}

func TestActualFlexibilities(t *testing.T) {
	predicted := []float64{1.5, 0.8}
	assignments := []core.Interval{{Begin: 18, End: 20}, {Begin: 20, End: 22}}
	consumptions := []core.Interval{{Begin: 18, End: 20}, {Begin: 19, End: 21}}
	got := ActualFlexibilities(predicted, assignments, consumptions)
	if got[0] != 1.5 {
		t.Errorf("compliant household keeps its score: got %g", got[0])
	}
	if got[1] != 0 {
		t.Errorf("defector's actual flexibility must be 0: got %g", got[1])
	}
}
