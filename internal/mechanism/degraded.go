package mechanism

import "enki/internal/core"

// DarkConsumption imputes the consumption of a household that reported
// a preference and then went dark before confirming: the earliest
// feasible placement inside its reported window. The imputation is a
// pure function of the journaled report, so a center replaying the day
// from its journal reconstructs the identical settlement, and an
// auditor can verify the substituted interval from the ledger row
// alone.
//
// The substituted household is settled on the Eq. 5 defector path — it
// never confirmed compliance, so its flexibility reward is forfeited
// (f_i = 0) and its defection score is computed from the imputed
// interval exactly as if it had consumed there. Payments still scale to
// ξ·κ(ω) over the imputed load (Eq. 7), so the Theorem 1 budget
// identity Σp − κ(ω) = (ξ−1)·κ(ω) holds exactly on degraded days.
func DarkConsumption(pref core.Preference) core.Interval {
	return pref.IntervalAt(0)
}
