package mechanism

import "fmt"

// NormalizedShares maps raw scores to the [0.5, 1.5] band of Eq. 6:
// share_i = x_i/Σx + 1/2. When every score is zero the share term is
// defined as 0 (so each normalized value is exactly 1/2), matching the
// "f_i > 0 and δ_i = 0 when truthful" boundary analysis of the paper.
func NormalizedShares(xs []float64) []float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		share := 0.0
		if sum > 0 {
			share = x / sum
		}
		out[i] = share + 0.5
	}
	return out
}

// SocialCostScores computes Ψ_i of Eq. 6:
//
//	Ψ_i = k · (δ_i/Σδ + 1/2) / (f_i/Σf + 1/2)
//
// from raw flexibility and defection scores. k is the scaling factor
// (paper default 1). It returns an error on mismatched lengths or
// non-positive k.
func SocialCostScores(flex, defect []float64, k float64) ([]float64, error) {
	if len(flex) != len(defect) {
		return nil, fmt.Errorf("mechanism: %d flexibility scores vs %d defection scores", len(flex), len(defect))
	}
	if k <= 0 {
		return nil, fmt.Errorf("mechanism: scaling factor k = %g must be positive", k)
	}
	nf := NormalizedShares(flex)
	nd := NormalizedShares(defect)
	out := make([]float64, len(flex))
	for i := range out {
		out[i] = k * nd[i] / nf[i]
	}
	return out, nil
}

// Payments computes p_i of Eq. 7:
//
//	p_i = Ψ_i/ΣΨ · ξ · κ(ω)
//
// Budget balance (Theorem 1) requires ξ ≥ 1: the neighborhood collects
// ξ·κ(ω) ≥ κ(ω) in total. It returns an error when ξ < 1 or when all
// social-cost scores vanish.
func Payments(socialCost []float64, xi, totalCost float64) ([]float64, error) {
	if xi < 1 {
		return nil, fmt.Errorf("mechanism: xi = %g violates budget balance (need ξ ≥ 1)", xi)
	}
	if totalCost < 0 {
		return nil, fmt.Errorf("mechanism: negative neighborhood cost %g", totalCost)
	}
	var sum float64
	for _, s := range socialCost {
		sum += s
	}
	out := make([]float64, len(socialCost))
	if len(socialCost) == 0 {
		return out, nil
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mechanism: social-cost scores sum to %g; cannot apportion payments", sum)
	}
	for i, s := range socialCost {
		out[i] = s / sum * xi * totalCost
	}
	return out, nil
}

// PaymentsStrictIC is the alternative rule Section V-B mentions: "Enki
// could be made Bayesian incentive-compatible by setting the payment of
// each household i as p_i = Ψ_i·κ(ω)." Dropping the ΣΨ normalization
// strengthens incentive compatibility — a household's payment no longer
// depends on the others' normalized scores — but the neighborhood's
// revenue becomes ΣΨ·κ(ω), which over- or under-collects depending on
// the day: exact budget balance (Theorem 1) is lost. The paper keeps
// Eq. 7 for that reason; this variant exists for the trade-off's
// property tests and benches.
func PaymentsStrictIC(socialCost []float64, totalCost float64) ([]float64, error) {
	if totalCost < 0 {
		return nil, fmt.Errorf("mechanism: negative neighborhood cost %g", totalCost)
	}
	out := make([]float64, len(socialCost))
	for i, s := range socialCost {
		if s < 0 {
			return nil, fmt.Errorf("mechanism: negative social-cost score %g", s)
		}
		out[i] = s * totalCost
	}
	return out, nil
}

// ProportionalPayments is the no-Enki baseline of Section V-D (Kelly's
// proportional allocation): each price-taking household pays in
// proportion to its energy use, p_i = b_i/Σb · ξ · κ(ω^z).
func ProportionalPayments(energy []float64, xi, totalCost float64) ([]float64, error) {
	if xi < 1 {
		return nil, fmt.Errorf("mechanism: xi = %g violates budget balance (need ξ ≥ 1)", xi)
	}
	var sum float64
	for i, b := range energy {
		if b < 0 {
			return nil, fmt.Errorf("mechanism: household %d has negative energy %g", i, b)
		}
		sum += b
	}
	out := make([]float64, len(energy))
	if sum == 0 {
		return out, nil
	}
	for i, b := range energy {
		out[i] = b / sum * xi * totalCost
	}
	return out, nil
}
