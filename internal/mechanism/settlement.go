package mechanism

import (
	"fmt"
	"math"

	"enki/internal/core"
	"enki/internal/obs"
	"enki/internal/pricing"
)

// Config carries the mechanism's scaling factors.
type Config struct {
	K  float64 // social-cost scaling factor k (Eq. 6); paper: 1
	Xi float64 // payment scaling factor ξ ≥ 1 (Eq. 7); paper: 1.2
}

// DefaultConfig returns the Section VI parameters (k = 1, ξ = 1.2).
func DefaultConfig() Config { return Config{K: DefaultK, Xi: DefaultXi} }

// Validate checks the mechanism parameters.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("mechanism: k = %g must be positive", c.K)
	}
	if c.Xi < 1 {
		return fmt.Errorf("mechanism: xi = %g must be at least 1 for budget balance", c.Xi)
	}
	return nil
}

// Day is one completed day of the neighborhood: who the households are,
// what they reported, what the center allocated, and what they actually
// consumed. Slices are parallel and indexed identically.
type Day struct {
	Households   []core.Household // types and reports
	Assignments  []core.Interval  // s_i, one per household
	Consumptions []core.Interval  // ω_i, one per household
	Rating       float64          // power rating r in kW
}

// Validate checks structural consistency of the day.
func (d Day) Validate() error {
	n := len(d.Households)
	if n == 0 {
		return fmt.Errorf("mechanism: day has no households")
	}
	if len(d.Assignments) != n || len(d.Consumptions) != n {
		return fmt.Errorf("mechanism: %d households, %d assignments, %d consumptions",
			n, len(d.Assignments), len(d.Consumptions))
	}
	if d.Rating <= 0 {
		return fmt.Errorf("mechanism: rating %g must be positive", d.Rating)
	}
	for i, h := range d.Households {
		if err := h.Type.Validate(); err != nil {
			return fmt.Errorf("household %d: %w", i, err)
		}
		if err := h.Reported.Validate(); err != nil {
			return fmt.Errorf("household %d report: %w", i, err)
		}
		if !h.Reported.Admits(d.Assignments[i]) {
			return fmt.Errorf("household %d: assignment %v not admitted by report %v",
				i, d.Assignments[i], h.Reported)
		}
		if d.Consumptions[i].Len() != h.Reported.Duration {
			return fmt.Errorf("household %d: consumption %v has duration %d, want %d",
				i, d.Consumptions[i], d.Consumptions[i].Len(), h.Reported.Duration)
		}
	}
	return nil
}

// Settlement is the financial outcome of a day under Enki.
type Settlement struct {
	Cost        float64   // κ(ω): what the neighborhood pays the power company
	AllocCost   float64   // κ(s): cost if everyone had complied
	Flexibility []float64 // actual flexibility scores (0 for defectors)
	Defection   []float64 // δ_i (Eq. 5)
	SocialCost  []float64 // Ψ_i (Eq. 6)
	Payments    []float64 // p_i (Eq. 7)
	Valuations  []float64 // V_i(τ_i, v_i, ρ_i) from allocation vs true preference
	Utilities   []float64 // U_i = V_i − p_i (Eq. 8)
}

// Revenue is Σ p_i, the neighborhood's income.
func (s Settlement) Revenue() float64 {
	var sum float64
	for _, p := range s.Payments {
		sum += p
	}
	return sum
}

// CenterUtility is U_c = Σ p_i − κ(ω); Theorem 1 guarantees it equals
// (ξ − 1)·κ(ω) ≥ 0.
func (s Settlement) CenterUtility() float64 { return s.Revenue() - s.Cost }

// RecordSettlementMetrics publishes one settled day to the default
// metrics registry: score and payment distributions (histograms, so
// they merge deterministically across parallel days), the Theorem 1
// budget residual Σp − κ(ω), the payment spread max p − min p, and
// the day's PAR. It also enforces the Theorem 1 identity Σp = ξ·κ(ω):
// a day whose signed deviation leaves the floating-point tolerance band
// increments the budget-violations counter the budget-residual-zero SLO
// burns against. The gauges hold the most recent day — meaningful for
// the serial enkid daemon; in parallel experiment runs only the
// histograms and the counters are deterministic.
func RecordSettlementMetrics(flex, defect, psi, payments []float64, cost, xi, par float64) {
	reg := obs.Default()
	reg.Counter(obs.MetricMechSettlementsTotal).Inc()
	flexH := reg.Histogram(obs.MetricMechFlexibilityScore, obs.ScoreBuckets)
	defectH := reg.Histogram(obs.MetricMechDefectionScore, obs.ScoreBuckets)
	psiH := reg.Histogram(obs.MetricMechSocialCostScore, obs.ScoreBuckets)
	payH := reg.Histogram(obs.MetricMechPaymentDollars, obs.DollarBuckets)
	var revenue, minP, maxP float64
	for i := range payments {
		flexH.Observe(flex[i])
		defectH.Observe(defect[i])
		psiH.Observe(psi[i])
		payH.Observe(payments[i])
		revenue += payments[i]
		if i == 0 || payments[i] < minP {
			minP = payments[i]
		}
		if i == 0 || payments[i] > maxP {
			maxP = payments[i]
		}
	}
	reg.Gauge(obs.MetricMechBudgetResidual).Set(revenue - cost)
	reg.Gauge(obs.MetricMechPaymentSpread).Set(maxP - minP)
	reg.Gauge(obs.MetricMechDayPAR).Set(par)
	deviation := revenue - xi*cost
	reg.Gauge(obs.MetricMechTheorem1Deviation).Set(deviation)
	if tol := 1e-9 * math.Max(1, math.Abs(xi*cost)); math.Abs(deviation) > tol {
		reg.Counter(obs.MetricMechBudgetViolations).Inc()
	}
}

// Settle computes the full Enki settlement for a day: scores, payments,
// and utilities.
func Settle(p pricing.Pricer, cfg Config, day Day) (Settlement, error) {
	if err := cfg.Validate(); err != nil {
		return Settlement{}, err
	}
	if err := day.Validate(); err != nil {
		return Settlement{}, err
	}

	prefs := make([]core.Preference, len(day.Households))
	for i, h := range day.Households {
		prefs[i] = h.Reported
	}
	predicted := FlexibilityScores(prefs)
	flex := ActualFlexibilities(predicted, day.Assignments, day.Consumptions)
	defect := DefectionScores(p, day.Rating, day.Assignments, day.Consumptions)

	psi, err := SocialCostScores(flex, defect, cfg.K)
	if err != nil {
		return Settlement{}, err
	}

	cost := pricing.CostOfIntervals(p, day.Consumptions, day.Rating)
	allocCost := pricing.CostOfIntervals(p, day.Assignments, day.Rating)

	payments, err := Payments(psi, cfg.Xi, cost)
	if err != nil {
		return Settlement{}, err
	}

	valuations := make([]float64, len(day.Households))
	utilities := make([]float64, len(day.Households))
	for i, h := range day.Households {
		valuations[i] = core.ValuationOf(day.Assignments[i], h.Type)
		utilities[i] = core.Utility(valuations[i], payments[i])
	}

	load := core.LoadOf(day.Consumptions, day.Rating)
	RecordSettlementMetrics(flex, defect, psi, payments, cost, cfg.Xi, load.PAR())

	return Settlement{
		Cost:        cost,
		AllocCost:   allocCost,
		Flexibility: flex,
		Defection:   defect,
		SocialCost:  psi,
		Payments:    payments,
		Valuations:  valuations,
		Utilities:   utilities,
	}, nil
}

// SettleProportional computes the no-Enki baseline world of Section V-D
// for the same day: every household consumes per its consumption
// interval and pays proportionally to energy used. Valuations are
// unchanged ("the valuation of each household stays the same no matter
// whether it participates in Enki").
func SettleProportional(p pricing.Pricer, xi float64, day Day) (Settlement, error) {
	if err := day.Validate(); err != nil {
		return Settlement{}, err
	}
	cost := pricing.CostOfIntervals(p, day.Consumptions, day.Rating)
	energy := make([]float64, len(day.Consumptions))
	for i, c := range day.Consumptions {
		energy[i] = float64(c.Len()) * day.Rating
	}
	payments, err := ProportionalPayments(energy, xi, cost)
	if err != nil {
		return Settlement{}, err
	}
	valuations := make([]float64, len(day.Households))
	utilities := make([]float64, len(day.Households))
	for i, h := range day.Households {
		valuations[i] = core.ValuationOf(day.Assignments[i], h.Type)
		utilities[i] = core.Utility(valuations[i], payments[i])
	}
	return Settlement{
		Cost:       cost,
		AllocCost:  cost,
		Payments:   payments,
		Valuations: valuations,
		Utilities:  utilities,
	}, nil
}
