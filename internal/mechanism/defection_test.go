package mechanism

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/pricing"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func TestDefectionPaperExample4(t *testing.T) {
	// Example 4 / Figure 3: A and B both report (18,20,1); A is
	// allocated hour 18, B hour 19. A complies; B defects to hour 18.
	assignments := []core.Interval{{Begin: 18, End: 19}, {Begin: 19, End: 20}}
	consumptions := []core.Interval{{Begin: 18, End: 19}, {Begin: 18, End: 19}}
	d := DefectionScores(quad, 2, assignments, consumptions)
	if d[0] != 0 {
		t.Errorf("δ_A = %g, want 0 (A complies)", d[0])
	}
	if d[1] <= 0 {
		t.Errorf("δ_B = %g, want > 0 (B defects and raises the peak)", d[1])
	}
	// Hand check: κ(s) = σ(4+4) = 2.4; with B defecting onto hour 18 the
	// load is 4 kWh there: κ = σ·16 = 4.8; o_B = 0 → δ_B = 2.4/e⁰ = 2.4.
	if !almost(d[1], 2.4, 1e-9) {
		t.Errorf("δ_B = %g, want 2.4", d[1])
	}
}

func TestDefectionOverlapDiscount(t *testing.T) {
	// A partial defection (higher o_i) is punished less than a total one
	// causing the same harm, because of the e^{o_i} denominator. A second
	// household at (18,20) makes both defections collide with one loaded
	// hour, so the raw harms are identical.
	assignments := []core.Interval{{Begin: 14, End: 18}, {Begin: 18, End: 20}}
	partial := []core.Interval{{Begin: 15, End: 19}, {Begin: 18, End: 20}} // o = 3/4, collides at 18
	d := DefectionScores(quad, 2, assignments, partial)
	if d[0] <= 0 {
		t.Fatalf("δ = %g, want > 0", d[0])
	}
	// Same harm but with zero overlap (collides at 19 instead).
	zero := []core.Interval{{Begin: 19, End: 23}, {Begin: 18, End: 20}}
	dz := DefectionScores(quad, 2, assignments, zero)
	// Raw harms are equal, so the o = 3/4 case must be e^{3/4} cheaper.
	if dz[0] <= d[0] {
		t.Errorf("zero-overlap defection %g should exceed partial-overlap %g", dz[0], d[0])
	}
	if !almost(d[0]*math.Exp(0.75), dz[0]*math.Exp(0), 1e-9) {
		t.Errorf("overlap discount mismatch: %g vs %g", d[0]*math.Exp(0.75), dz[0])
	}
}

func TestDefectionBeneficialClampedToZero(t *testing.T) {
	// A defector that moves off the peak reduces the cost; its score is
	// clamped to zero rather than rewarded.
	assignments := []core.Interval{{Begin: 18, End: 20}, {Begin: 18, End: 20}}
	consumptions := []core.Interval{{Begin: 18, End: 20}, {Begin: 8, End: 10}}
	d := DefectionScores(quad, 2, assignments, consumptions)
	if d[1] != 0 {
		t.Errorf("beneficial defection score = %g, want 0", d[1])
	}
}

func TestDefectionAllCompliant(t *testing.T) {
	assignments := []core.Interval{{Begin: 18, End: 20}, {Begin: 20, End: 22}}
	d := DefectionScores(quad, 2, assignments, assignments)
	for i, v := range d {
		if v != 0 {
			t.Errorf("δ_%d = %g, want 0 for full compliance", i, v)
		}
	}
}

func TestDefectionMoreHarmMoreScore(t *testing.T) {
	// Property 3 quantified: defecting onto a taller peak scores higher.
	assignments := []core.Interval{
		{Begin: 10, End: 12},                                             // defector
		{Begin: 18, End: 20}, {Begin: 18, End: 20}, {Begin: 18, End: 20}, // the peak
		{Begin: 2, End: 4}, // a quiet slot
	}
	ontoPeak := []core.Interval{
		{Begin: 18, End: 20},
		{Begin: 18, End: 20}, {Begin: 18, End: 20}, {Begin: 18, End: 20},
		{Begin: 2, End: 4},
	}
	ontoQuiet := []core.Interval{
		{Begin: 2, End: 4},
		{Begin: 18, End: 20}, {Begin: 18, End: 20}, {Begin: 18, End: 20},
		{Begin: 2, End: 4},
	}
	dPeak := DefectionScores(quad, 2, assignments, ontoPeak)
	dQuiet := DefectionScores(quad, 2, assignments, ontoQuiet)
	if dPeak[0] <= dQuiet[0] {
		t.Errorf("defecting onto the peak (%g) must score above defecting onto a quiet slot (%g)",
			dPeak[0], dQuiet[0])
	}
}
