package mechanism

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"enki/internal/core"
)

// LedgerSchemaVersion identifies the audit-ledger record layout.
const LedgerSchemaVersion = 1

// LedgerHousehold is one household's row in a day's audit ledger: the
// raw inputs (report, allocation, consumption) alongside every Eq. 4–7
// intermediate computed from them, so an auditor can recompute the
// whole score/payment chain without the center's process state.
type LedgerHousehold struct {
	ID       core.HouseholdID `json:"id"`
	Reported core.Preference  `json:"reported"`
	Assigned core.Interval    `json:"assigned"`
	Consumed core.Interval    `json:"consumed"`

	// DefermentSlots is the greedy scheduler's decision for this
	// household: how many hours past the reported window begin the
	// allocation deferred it (0 = scheduled at the earliest wish).
	DefermentSlots int `json:"defermentSlots"`

	// Substituted marks a degraded-day settlement: the household went
	// dark before confirming consumption, so Consumed is the center's
	// imputation (DarkConsumption of the journaled report) rather than
	// a reported interval, and the household is settled as a defector
	// (Defected true, flexibility forfeited) regardless of whether the
	// imputed interval happens to match the assignment. Omitted on
	// fault-free days so their ledger bytes are unchanged.
	Substituted bool `json:"substituted,omitempty"`

	Defected             bool    `json:"defected"`
	PredictedFlexibility float64 `json:"predictedFlexibility"` // Eq. 4, assuming compliance
	Flexibility          float64 `json:"flexibility"`          // Eq. 4, zeroed on defection
	Defection            float64 `json:"defection"`            // Eq. 5
	SocialCost           float64 `json:"socialCost"`           // Eq. 6
	Payment              float64 `json:"payment"`              // Eq. 7
}

// LedgerEntry is the deterministic per-day audit record the settlement
// path emits: one JSONL line per day, linked to the day's trace ID, and
// byte-identical for identical day inputs (no clocks, no randomness).
type LedgerEntry struct {
	Schema  int    `json:"schema"`
	TraceID string `json:"traceId"`
	Day     int    `json:"day"`

	// Mechanism parameters the recorded chain was computed under.
	K      float64 `json:"k"`
	Xi     float64 `json:"xi"`
	Rating float64 `json:"rating"`

	Cost           float64 `json:"cost"`           // κ(ω)
	Revenue        float64 `json:"revenue"`        // Σ p_i
	BudgetResidual float64 `json:"budgetResidual"` // Σ p_i − κ(ω) = (ξ−1)·κ(ω)
	Peak           float64 `json:"peak"`

	Households []LedgerHousehold `json:"households"`
}

// BuildLedgerEntry assembles the audit record for one settled day from
// the settlement chain's inputs and intermediates. Slices are parallel
// with reports; substituted marks degraded-day imputations (nil means
// none). The entry is a pure function of its arguments.
func BuildLedgerEntry(traceID string, day int, cfg Config, rating float64,
	reports []core.Report, assigned, consumed []core.Interval, substituted []bool,
	predicted, flex, defect, psi, payments []float64, cost, peak float64) LedgerEntry {
	entry := LedgerEntry{
		Schema:     LedgerSchemaVersion,
		TraceID:    traceID,
		Day:        day,
		K:          cfg.K,
		Xi:         cfg.Xi,
		Rating:     rating,
		Cost:       cost,
		Peak:       peak,
		Households: make([]LedgerHousehold, len(reports)),
	}
	for i, r := range reports {
		slots := int(assigned[i].Begin - r.Pref.Window.Begin)
		if slots < 0 {
			slots = 0
		}
		sub := substituted != nil && substituted[i]
		entry.Households[i] = LedgerHousehold{
			ID:                   r.ID,
			Reported:             r.Pref,
			Assigned:             assigned[i],
			Consumed:             consumed[i],
			DefermentSlots:       slots,
			Substituted:          sub,
			Defected:             core.Defected(assigned[i], consumed[i]) || sub,
			PredictedFlexibility: predicted[i],
			Flexibility:          flex[i],
			Defection:            defect[i],
			SocialCost:           psi[i],
			Payment:              payments[i],
		}
		entry.Revenue += payments[i]
	}
	entry.BudgetResidual = entry.Revenue - cost
	return entry
}

// ReadLedger loads an audit ledger from a JSONL stream, in order. Like
// the settlement journal, a corrupt or truncated final line (crash
// during append) is skipped; corruption followed by further valid
// entries is an error.
func ReadLedger(r io.Reader) ([]LedgerEntry, error) {
	var out []LedgerEntry
	var pending error
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for scanner.Scan() {
		line++
		if len(scanner.Bytes()) == 0 {
			continue
		}
		var e LedgerEntry
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			if pending != nil {
				return nil, pending
			}
			pending = fmt.Errorf("mechanism: ledger line %d: %w", line, err)
			continue
		}
		if pending != nil {
			return nil, pending
		}
		out = append(out, e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("mechanism: read ledger: %w", err)
	}
	return out, nil
}

// auditTolerance absorbs float round-trip noise (JSON encode/decode and
// summation order) when recomputing the chain; any real inconsistency
// is orders of magnitude larger.
const auditTolerance = 1e-9

func auditClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= auditTolerance*math.Max(scale, 1)
}

// Audit recomputes the recorded equation chain from the entry's own
// inputs and returns every mismatch found (empty = the entry is
// internally consistent):
//
//   - Eq. 4: predicted flexibility from the reported preferences, and
//     its zeroing for households whose consumption defected;
//   - defection flags from assigned vs consumed intervals, with
//     substituted (degraded-day) households forced onto the defector
//     path and their imputed interval checked against DarkConsumption
//     of the journaled report;
//   - Eq. 6: social-cost scores from the recorded flexibility and
//     defection scores under the entry's k;
//   - Eq. 7: payments from the recomputed scores under the entry's ξ
//     and recorded cost;
//   - the Theorem 1 budget identity Σp − κ(ω) = (ξ−1)·κ(ω).
//
// The Eq. 5 defection magnitudes depend on the pricing function, which
// the ledger does not embed; they are audited as recorded inputs.
func (e LedgerEntry) Audit() []string {
	var bad []string
	n := len(e.Households)
	if n == 0 {
		return []string{"entry has no households"}
	}
	if e.Schema != LedgerSchemaVersion {
		bad = append(bad, fmt.Sprintf("schema %d, auditor understands %d", e.Schema, LedgerSchemaVersion))
	}

	prefs := make([]core.Preference, n)
	flex := make([]float64, n)
	defect := make([]float64, n)
	for i, h := range e.Households {
		prefs[i] = h.Reported
		flex[i] = h.Flexibility
		defect[i] = h.Defection
	}

	predicted := FlexibilityScores(prefs)
	for i, h := range e.Households {
		if !auditClose(predicted[i], h.PredictedFlexibility) {
			bad = append(bad, fmt.Sprintf("household %d: Eq. 4 predicted flexibility %g, recorded %g",
				h.ID, predicted[i], h.PredictedFlexibility))
		}
		defected := core.Defected(h.Assigned, h.Consumed) || h.Substituted
		if defected != h.Defected {
			bad = append(bad, fmt.Sprintf("household %d: defected flag %v, intervals say %v",
				h.ID, h.Defected, defected))
		}
		if h.Substituted {
			if want := DarkConsumption(h.Reported); h.Consumed != want {
				bad = append(bad, fmt.Sprintf("household %d: substituted consumption %v, imputation says %v",
					h.ID, h.Consumed, want))
			}
		}
		wantFlex := h.PredictedFlexibility
		if defected {
			wantFlex = 0
		}
		if !auditClose(wantFlex, h.Flexibility) {
			bad = append(bad, fmt.Sprintf("household %d: actual flexibility %g, recorded %g",
				h.ID, wantFlex, h.Flexibility))
		}
		slots := int(h.Assigned.Begin - h.Reported.Window.Begin)
		if slots < 0 {
			slots = 0
		}
		if slots != h.DefermentSlots {
			bad = append(bad, fmt.Sprintf("household %d: deferment %d slots, recorded %d",
				h.ID, slots, h.DefermentSlots))
		}
	}

	psi, err := SocialCostScores(flex, defect, e.K)
	if err != nil {
		return append(bad, fmt.Sprintf("Eq. 6 recompute failed: %v", err))
	}
	for i, h := range e.Households {
		if !auditClose(psi[i], h.SocialCost) {
			bad = append(bad, fmt.Sprintf("household %d: Eq. 6 social cost %g, recorded %g",
				h.ID, psi[i], h.SocialCost))
		}
	}

	payments, err := Payments(psi, e.Xi, e.Cost)
	if err != nil {
		return append(bad, fmt.Sprintf("Eq. 7 recompute failed: %v", err))
	}
	var revenue float64
	for i, h := range e.Households {
		if !auditClose(payments[i], h.Payment) {
			bad = append(bad, fmt.Sprintf("household %d: Eq. 7 payment %g, recorded %g",
				h.ID, payments[i], h.Payment))
		}
		revenue += h.Payment
	}
	if !auditClose(revenue, e.Revenue) {
		bad = append(bad, fmt.Sprintf("revenue Σp = %g, recorded %g", revenue, e.Revenue))
	}
	if !auditClose(e.Revenue-e.Cost, e.BudgetResidual) {
		bad = append(bad, fmt.Sprintf("budget residual %g, recorded %g", e.Revenue-e.Cost, e.BudgetResidual))
	}
	if !auditClose(e.BudgetResidual, (e.Xi-1)*e.Cost) {
		bad = append(bad, fmt.Sprintf("Theorem 1: residual %g, (ξ−1)·κ = %g", e.BudgetResidual, (e.Xi-1)*e.Cost))
	}
	return bad
}
