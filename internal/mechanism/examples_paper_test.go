package mechanism_test

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/sched"
)

// These tests reproduce the paper's motivating Examples 1-4 (Section
// IV-B2 and Figures 2-3) end-to-end through the greedy scheduler and
// the full settlement.

func settleExample(t *testing.T, prefs []core.Preference, consume func(i int, alloc core.Interval) core.Interval) mechanism.Settlement {
	t.Helper()
	households := make([]core.Household, len(prefs))
	reports := make([]core.Report, len(prefs))
	for i, p := range prefs {
		typ := core.Type{True: p, ValuationFactor: 5}
		households[i] = core.TruthfulHousehold(core.HouseholdID(i), typ)
		reports[i] = core.Report{ID: core.HouseholdID(i), Pref: p}
	}
	greedy := &sched.Greedy{Pricer: quad, Rating: 2}
	assignments, err := greedy.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	day := mechanism.Day{Households: households, Rating: 2}
	for i, a := range assignments {
		day.Assignments = append(day.Assignments, a.Interval)
		c := a.Interval
		if consume != nil {
			c = consume(i, a.Interval)
		}
		day.Consumptions = append(day.Consumptions, c)
	}
	s, err := mechanism.Settle(quad, mechanism.DefaultConfig(), day)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Example 1: identical true preferences (18,20,1) → equal payments.
func TestPaperExample1EqualPayments(t *testing.T) {
	prefs := []core.Preference{
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
	}
	s := settleExample(t, prefs, nil)
	if math.Abs(s.Payments[0]-s.Payments[1]) > 1e-9 ||
		math.Abs(s.Payments[1]-s.Payments[2]) > 1e-9 {
		t.Errorf("identical preferences must pay equally, got %v", s.Payments)
	}
}

// Example 2: A's narrower window (18,19,1) vs B = C = (18,20,1) →
// A is less flexible and pays more.
func TestPaperExample2NarrowPaysMore(t *testing.T) {
	prefs := []core.Preference{
		core.MustPreference(18, 19, 1), // A
		core.MustPreference(18, 20, 1), // B
		core.MustPreference(18, 20, 1), // C
	}
	s := settleExample(t, prefs, nil)
	if s.Payments[0] <= s.Payments[1] || s.Payments[0] <= s.Payments[2] {
		t.Errorf("A (narrow) must pay more: payments %v", s.Payments)
	}
	if math.Abs(s.Payments[1]-s.Payments[2]) > 1e-9 {
		t.Errorf("B and C must pay equally, got %v", s.Payments)
	}
}

// Example 3: A's off-peak (16,18,2) vs B = C = (18,21,2) → A is more
// flexible despite the narrower window and pays less.
func TestPaperExample3OffPeakPaysLess(t *testing.T) {
	prefs := []core.Preference{
		core.MustPreference(16, 18, 2), // A
		core.MustPreference(18, 21, 2), // B
		core.MustPreference(18, 21, 2), // C
	}
	s := settleExample(t, prefs, nil)
	if s.Payments[0] >= s.Payments[1] || s.Payments[0] >= s.Payments[2] {
		t.Errorf("A (off-peak) must pay less: payments %v", s.Payments)
	}
}

// Example 4 / Figure 3: A and B report (18,20,1); B defects onto A's
// hour and must pay more.
func TestPaperExample4DefectorPaysMore(t *testing.T) {
	prefs := []core.Preference{
		core.MustPreference(18, 20, 1), // A
		core.MustPreference(18, 20, 1), // B
	}
	s := settleExample(t, prefs, func(i int, alloc core.Interval) core.Interval {
		if i == 1 {
			// B ignores its slot and consumes hour 18.
			return core.Interval{Begin: 18, End: 19}
		}
		return alloc
	})
	if s.Defection[0] != 0 {
		t.Fatalf("A complied but has defection %g", s.Defection[0])
	}
	if s.Defection[1] <= 0 {
		t.Fatalf("B defected but has defection %g", s.Defection[1])
	}
	if s.Payments[1] <= s.Payments[0] {
		t.Errorf("the defector must pay more: A %g, B %g", s.Payments[0], s.Payments[1])
	}
}

// Property 1 (Section IV-B2), end to end: widening a truthful window
// weakly lowers the payment, all else equal.
func TestProperty1WiderWindowPaysLess(t *testing.T) {
	base := []core.Preference{
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
		core.MustPreference(18, 20, 1),
	}
	wide := append([]core.Preference(nil), base...)
	wide[0] = core.MustPreference(18, 23, 1)
	sBase := settleExample(t, base, nil)
	sWide := settleExample(t, wide, nil)
	if sWide.Payments[0] >= sBase.Payments[0] {
		t.Errorf("widening the window must lower the payment: %g -> %g",
			sBase.Payments[0], sWide.Payments[0])
	}
}
