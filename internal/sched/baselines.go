package sched

import (
	"sort"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
)

// Earliest is the uncoordinated baseline: every household starts at the
// beginning of its reported window (deferment 0), modeling a
// neighborhood with no demand-side management — everyone consumes at
// will as early as their preference allows.
type Earliest struct{}

var _ Scheduler = Earliest{}

// Name implements Scheduler.
func (Earliest) Name() string { return "earliest" }

// Allocate implements Scheduler.
func (Earliest) Allocate(reports []core.Report) ([]core.Assignment, error) {
	if err := validateReports(reports); err != nil {
		return nil, err
	}
	start := time.Now()
	intervals := make([]core.Interval, len(reports))
	for i, r := range reports {
		intervals[i] = r.Pref.IntervalAt(0)
	}
	assignments := assignmentsOf(reports, intervals)
	observeAllocation(Earliest{}.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}

// Random places every household at a uniformly random feasible
// deferment — the "price signal without coordination" strawman.
type Random struct {
	// RNG drives the placements; it must be non-nil.
	RNG *dist.RNG
}

var _ Scheduler = (*Random)(nil)

// Name implements Scheduler.
func (*Random) Name() string { return "random" }

// Allocate implements Scheduler.
func (s *Random) Allocate(reports []core.Report) ([]core.Assignment, error) {
	if err := validateReports(reports); err != nil {
		return nil, err
	}
	start := time.Now()
	intervals := make([]core.Interval, len(reports))
	for i, r := range reports {
		intervals[i] = r.Pref.IntervalAt(s.RNG.Intn(r.Pref.StartChoices()))
	}
	assignments := assignmentsOf(reports, intervals)
	observeAllocation(s.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}

// GreedyOrdered is the ordering-ablation scheduler: identical greedy
// placement to Enki's allocator but with a configurable processing
// order, isolating the contribution of the flexibility ordering
// (DESIGN.md ablation "greedy ordering by flexibility vs alternatives").
type GreedyOrdered struct {
	// Pricer prices hourly load. It must be non-nil.
	Pricer pricing.Pricer
	// Rating is the per-household power rating r in kW.
	Rating float64
	// Order selects the processing order.
	Order Ordering
	// RNG is required for OrderShuffled.
	RNG *dist.RNG
}

// Ordering enumerates the ablation processing orders.
type Ordering int

// Processing orders for GreedyOrdered.
const (
	// OrderReport processes households in report order.
	OrderReport Ordering = iota + 1
	// OrderShuffled processes households in a random order.
	OrderShuffled
	// OrderWidestFirst processes the most flexible windows first —
	// the reverse of Enki's rule.
	OrderWidestFirst
)

var _ Scheduler = (*GreedyOrdered)(nil)

// Name implements Scheduler.
func (s *GreedyOrdered) Name() string {
	switch s.Order {
	case OrderShuffled:
		return "greedy-shuffled"
	case OrderWidestFirst:
		return "greedy-widest-first"
	default:
		return "greedy-report-order"
	}
}

// Allocate implements Scheduler.
func (s *GreedyOrdered) Allocate(reports []core.Report) ([]core.Assignment, error) {
	if err := validateReports(reports); err != nil {
		return nil, err
	}
	start := time.Now()
	order := make([]int, len(reports))
	for i := range order {
		order[i] = i
	}
	switch s.Order {
	case OrderShuffled:
		s.RNG.ShuffleInts(order)
	case OrderWidestFirst:
		sort.SliceStable(order, func(a, b int) bool {
			return reports[order[a]].Pref.Slack() > reports[order[b]].Pref.Slack()
		})
	}

	inner := Greedy{Pricer: s.Pricer, Rating: s.Rating}
	quad, isQuad := s.Pricer.(pricing.Quadratic)
	var deque [core.HoursPerDay]int
	intervals := make([]core.Interval, len(reports))
	var load core.Load
	for _, pos := range order {
		iv := inner.bestPlacement(reports[pos].Pref, &load, quad, isQuad, &deque)
		intervals[pos] = iv
		load.AddInterval(iv, s.Rating)
	}
	assignments := assignmentsOf(reports, intervals)
	if err := CheckAssignments(reports, assignments); err != nil {
		return nil, err
	}
	observeAllocation(s.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}

// LocalSearch starts from a base scheduler's allocation and applies
// single-household moves until no move lowers the neighborhood cost.
// With Earliest as base it is a decentralized best-response dynamic in
// the style of Mohsenian-Rad et al.'s game-theoretic DSM.
type LocalSearch struct {
	// Base produces the starting allocation; it must be non-nil.
	Base Scheduler
	// Pricer prices hourly load. It must be non-nil.
	Pricer pricing.Pricer
	// Rating is the per-household power rating r in kW.
	Rating float64
	// MaxSweeps caps improvement passes; 0 means sweep to fixpoint.
	MaxSweeps int
}

var _ Scheduler = (*LocalSearch)(nil)

// Name implements Scheduler.
func (s *LocalSearch) Name() string { return "local-search(" + s.Base.Name() + ")" }

// Allocate implements Scheduler.
func (s *LocalSearch) Allocate(reports []core.Report) ([]core.Assignment, error) {
	start := time.Now()
	assignments, err := s.Base.Allocate(reports)
	if err != nil {
		return nil, err
	}
	load := LoadOfAssignments(assignments, s.Rating)

	sweeps := 0
	improved := true
	for improved && (s.MaxSweeps == 0 || sweeps < s.MaxSweeps) {
		improved = false
		sweeps++
		for i, r := range reports {
			cur := assignments[i].Interval
			load.RemoveInterval(cur, s.Rating)
			bestIv := cur
			bestM := pricing.MarginalCost(s.Pricer, &load, cur, s.Rating)
			for d := 0; d <= r.Pref.Slack(); d++ {
				iv := r.Pref.IntervalAt(d)
				if iv == cur {
					continue
				}
				if m := pricing.MarginalCost(s.Pricer, &load, iv, s.Rating); m < bestM-1e-12 {
					bestIv, bestM = iv, m
				}
			}
			load.AddInterval(bestIv, s.Rating)
			if bestIv != cur {
				assignments[i].Interval = bestIv
				improved = true
			}
		}
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		return nil, err
	}
	observeAllocation(s.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}
