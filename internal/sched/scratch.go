package sched

import (
	"sync"

	"enki/internal/core"
	"enki/internal/obs"
)

// Scratch holds the reusable working buffers of one Greedy allocation:
// the preference mirror, flexibility scores, tie-break jitter, the
// processing order, the chosen intervals, and the sliding-window deque
// of the incremental peak tracker.
//
// Ownership contract: a Scratch belongs to exactly one Allocate call at
// a time. Greedy.AllocateInto callers that pass their own Scratch must
// not share it between concurrent calls — the allocator overwrites
// every buffer unconditionally and never reads stale contents, so reuse
// across sequential calls (of any size) is safe and allocation-free
// once the buffers have grown to the high-water population. When no
// Scratch is supplied, Greedy.Allocate borrows one from an internal
// sync.Pool, which makes the plain API goroutine-safe and still
// allocation-free in steady state.
type Scratch struct {
	prefs     []core.Preference
	flex      []float64
	jitter    []float64
	order     []int
	intervals []core.Interval
	ids       []core.HouseholdID
	deque     [core.HoursPerDay]int
}

// grow resizes every buffer to n entries, reusing capacity.
func (s *Scratch) grow(n int) {
	if cap(s.prefs) < n {
		s.prefs = make([]core.Preference, n)
		s.flex = make([]float64, n)
		s.jitter = make([]float64, n)
		s.order = make([]int, n)
		s.intervals = make([]core.Interval, n)
		s.ids = make([]core.HouseholdID, n)
	}
	s.prefs = s.prefs[:n]
	s.flex = s.flex[:n]
	s.jitter = s.jitter[:n]
	s.order = s.order[:n]
	s.intervals = s.intervals[:n]
	s.ids = s.ids[:n]
}

// scratchPool recycles Scratch buffers across Allocate calls so the
// steady state performs no per-call buffer allocations.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// allocMetrics caches the metric handles one scheduler records into.
// Looking handles up through the registry builds a label-qualified key
// string per call; caching them keyed by the registry generation keeps
// the hot path allocation-free while staying coherent with test-time
// registry Resets.
type allocMetrics struct {
	gen      uint64
	total    *obs.Counter
	latency  *obs.Histogram
	slots    *obs.Counter
	deferred *obs.Counter
}

var (
	allocMetricsMu    sync.Mutex
	allocMetricsCache = make(map[string]*allocMetrics)
)

// metricsFor returns the cached handles for a scheduler name,
// re-registering them when the registry generation moved (i.e. after a
// Reset). Scheduler names are compile-time constants, so the map lookup
// does not allocate.
func metricsFor(scheduler string) *allocMetrics {
	reg := obs.Default()
	gen := reg.Generation()
	allocMetricsMu.Lock()
	defer allocMetricsMu.Unlock()
	m := allocMetricsCache[scheduler]
	if m == nil || m.gen != gen {
		m = &allocMetrics{
			gen:      gen,
			total:    reg.Counter(obs.MetricSchedAllocateTotal, obs.LabelScheduler, scheduler),
			latency:  reg.Histogram(obs.MetricSchedAllocateLatencyMS, obs.LatencyBucketsMS, obs.LabelScheduler, scheduler),
			slots:    reg.Counter(obs.MetricSchedDefermentSlots, obs.LabelScheduler, scheduler),
			deferred: reg.Counter(obs.MetricSchedDeferredHouseholds, obs.LabelScheduler, scheduler),
		}
		allocMetricsCache[scheduler] = m
	}
	return m
}
