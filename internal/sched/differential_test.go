package sched

import (
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
)

// corpusReports draws one random instance for the differential suite:
// n households with random windows, durations, and therefore slack —
// from fully rigid (duration == window) to fully flexible (whole-day
// windows), the axes ISSUE 6 calls out.
func corpusReports(rng *dist.RNG, n int) []core.Report {
	reports := make([]core.Report, n)
	for i := range reports {
		begin := rng.Intn(core.HoursPerDay)
		width := 1 + rng.Intn(core.HoursPerDay-begin)
		dur := 1 + rng.Intn(width)
		reports[i] = core.Report{
			ID:   core.HouseholdID(i),
			Pref: core.Preference{Window: core.Interval{Begin: begin, End: begin + width}, Duration: dur},
		}
	}
	return reports
}

// TestDifferentialGreedy replays the fast allocator and the retained
// seed implementation over ~1k seeded random instances and requires
// bit-identical schedules: same intervals for every household, in every
// instance, under both quadratic and piecewise pricing and with and
// without RNG tie-breaking.
func TestDifferentialGreedy(t *testing.T) {
	piecewise, err := pricing.NewPiecewise([]pricing.Step{{Threshold: 0, Rate: 0.5}, {Threshold: 8, Rate: 3}})
	if err != nil {
		t.Fatal(err)
	}
	pricers := []struct {
		name string
		p    pricing.Pricer
	}{
		{"quadratic", quad},
		{"piecewise", piecewise},
	}
	const instances = 1000
	for _, pr := range pricers {
		t.Run(pr.name, func(t *testing.T) {
			for k := 0; k < instances; k++ {
				seed := uint64(k + 1)
				rng := dist.New(seed)
				n := 1 + rng.Intn(60)
				reports := corpusReports(rng, n)
				useRNG := k%2 == 1

				var fastRNG, refRNG *dist.RNG
				if useRNG {
					fastRNG = dist.New(seed * 7919)
					refRNG = dist.New(seed * 7919)
				}
				fast := &Greedy{Pricer: pr.p, Rating: 2, RNG: fastRNG}
				ref := &refGreedy{Pricer: pr.p, Rating: 2, RNG: refRNG}

				got, err := fast.Allocate(reports)
				if err != nil {
					t.Fatalf("instance %d: fast: %v", k, err)
				}
				want, err := ref.Allocate(reports)
				if err != nil {
					t.Fatalf("instance %d: reference: %v", k, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("instance %d (n=%d, rng=%v): household %d: fast %v != seed %v",
							k, n, useRNG, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestDifferentialGreedyRejectsSameInputs checks the validators agree
// on what is invalid: empty input, duplicate IDs, and malformed
// preferences are rejected by both implementations.
func TestDifferentialGreedyRejectsSameInputs(t *testing.T) {
	fast := &Greedy{Pricer: quad, Rating: 2}
	ref := &refGreedy{Pricer: quad, Rating: 2}
	cases := map[string][]core.Report{
		"empty": nil,
		"duplicate ids": {
			{ID: 3, Pref: core.MustPreference(18, 20, 1)},
			{ID: 3, Pref: core.MustPreference(10, 14, 2)},
		},
		"duration exceeds window": {
			{ID: 0, Pref: core.Preference{Window: core.Interval{Begin: 18, End: 20}, Duration: 5}},
		},
		"zero duration": {
			{ID: 0, Pref: core.Preference{Window: core.Interval{Begin: 18, End: 20}, Duration: 0}},
		},
		"window outside day": {
			{ID: 0, Pref: core.Preference{Window: core.Interval{Begin: 20, End: 30}, Duration: 2}},
		},
	}
	for name, reports := range cases {
		if _, err := fast.Allocate(reports); err == nil {
			t.Errorf("%s: fast allocator accepted invalid input", name)
		}
		if _, err := ref.Allocate(reports); err == nil {
			t.Errorf("%s: reference allocator accepted invalid input", name)
		}
	}
}

// TestGreedyAllocateSteadyStateAllocs pins the hot path's allocation
// budget: Allocate performs exactly one allocation in steady state (the
// returned slice), and AllocateInto with a reused Scratch and output
// buffer performs none.
func TestGreedyAllocateSteadyStateAllocs(t *testing.T) {
	reports := corpusReports(dist.New(42), 50)
	g := &Greedy{Pricer: quad, Rating: 2}
	// Warm up: first call grows pool buffers and registers metrics.
	if _, err := g.Allocate(reports); err != nil {
		t.Fatal(err)
	}

	if got := testing.AllocsPerRun(100, func() {
		if _, err := g.Allocate(reports); err != nil {
			t.Fatal(err)
		}
	}); got > 2 {
		t.Errorf("Allocate: %g allocs/op, want <= 2", got)
	}

	var s Scratch
	dst := make([]core.Assignment, 0, len(reports))
	if _, err := g.AllocateInto(&s, dst, reports); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(100, func() {
		if _, err := g.AllocateInto(&s, dst, reports); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("AllocateInto with reused buffers: %g allocs/op, want 0", got)
	}
}

// TestAllocateIntoReusesDst confirms the fast path writes into the
// caller's buffer when it has capacity and falls back to a fresh slice
// when it does not.
func TestAllocateIntoReusesDst(t *testing.T) {
	reports := corpusReports(dist.New(7), 10)
	g := &Greedy{Pricer: quad, Rating: 2}
	dst := make([]core.Assignment, 0, 10)
	out, err := g.AllocateInto(nil, dst, reports)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &dst[:1][0] {
		t.Error("AllocateInto did not reuse the caller's buffer")
	}
	small := make([]core.Assignment, 0, 2)
	out, err = g.AllocateInto(nil, small, reports)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(reports) {
		t.Fatalf("AllocateInto returned %d assignments, want %d", len(out), len(reports))
	}
}
