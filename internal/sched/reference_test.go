package sched

// This file preserves the SEED implementation of Greedy.Allocate as the
// differential-test oracle. It is a verbatim copy (modulo renames) of
// the allocator as it stood before the zero-allocation rewrite; the
// differential suite replays both implementations over a seeded corpus
// and requires bit-identical schedules. Do not "optimize" this file —
// its whole value is that it cannot drift along with the fast path.

import (
	"sort"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

// refGreedy is the seed Greedy allocator: flexibility-ordered, ties
// broken by RNG jitter, each household placed at the deferment that
// minimizes (resulting peak, marginal cost, start hour).
type refGreedy struct {
	Pricer pricing.Pricer
	Rating float64
	RNG    *dist.RNG
}

// Allocate is the seed implementation of Greedy.Allocate, byte-for-byte
// in its arithmetic: per-slot peak rescans and interface-dispatched
// marginal costs.
func (g *refGreedy) Allocate(reports []core.Report) ([]core.Assignment, error) {
	if err := validateReports(reports); err != nil {
		return nil, err
	}

	prefs := make([]core.Preference, len(reports))
	for i, r := range reports {
		prefs[i] = r.Pref
	}
	flex := mechanism.FlexibilityScores(prefs)

	type ranked struct {
		pos    int
		flex   float64
		jitter float64
	}
	order := make([]ranked, len(reports))
	for i := range reports {
		j := float64(i) // deterministic fallback: report order
		if g.RNG != nil {
			j = g.RNG.Float64()
		}
		order[i] = ranked{pos: i, flex: flex[i], jitter: j}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].flex != order[b].flex {
			return order[a].flex < order[b].flex
		}
		return order[a].jitter < order[b].jitter
	})

	intervals := make([]core.Interval, len(reports))
	var load core.Load
	for _, o := range order {
		pref := prefs[o.pos]
		best := g.bestPlacement(pref, &load)
		intervals[o.pos] = best
		load.AddInterval(best, g.Rating)
	}

	assignments := assignmentsOf(reports, intervals)
	if err := CheckAssignments(reports, assignments); err != nil {
		return nil, err
	}
	return assignments, nil
}

// bestPlacement is the seed placement rule: full per-slot rescan of the
// peak for every candidate deferment.
func (g *refGreedy) bestPlacement(pref core.Preference, load *core.Load) core.Interval {
	best := pref.IntervalAt(0)
	bestPeak, bestCost := g.placementKey(best, load)
	for d := 1; d <= pref.Slack(); d++ {
		iv := pref.IntervalAt(d)
		peak, cost := g.placementKey(iv, load)
		if peak < bestPeak || (peak == bestPeak && cost < bestCost-1e-12) {
			best, bestPeak, bestCost = iv, peak, cost
		}
	}
	return best
}

// placementKey is the seed scoring: peak over iv's slots after
// placement, and the marginal cost of the placement.
func (g *refGreedy) placementKey(iv core.Interval, load *core.Load) (peak, cost float64) {
	for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
		if lv := load[h] + g.Rating; lv > peak {
			peak = lv
		}
	}
	return peak, pricing.MarginalCost(g.Pricer, load, iv, g.Rating)
}
