package sched

import (
	"time"

	"enki/internal/core"
	"enki/internal/pricing"
	"enki/internal/solver"
)

// Optimal solves the Eq. 2 allocation problem exactly (or to within the
// configured gap/time budget) via branch-and-bound. It is the
// reproduction's substitute for the CPLEX MIQP solver the paper used.
type Optimal struct {
	// Pricer prices hourly load. It must be non-nil.
	Pricer pricing.Pricer
	// Rating is the per-household power rating r in kW.
	Rating float64
	// Options bounds the search; the zero value demands a proven
	// optimum with no limits (only advisable for small n).
	Options solver.Options

	// LastResult records the most recent solve's statistics (cost,
	// nodes, optimality proof, lower bound) for experiment reporting.
	LastResult solver.Result
}

var _ Scheduler = (*Optimal)(nil)

// Name implements Scheduler.
func (o *Optimal) Name() string { return "optimal" }

// Allocate implements Scheduler.
func (o *Optimal) Allocate(reports []core.Report) ([]core.Assignment, error) {
	if err := validateReports(reports); err != nil {
		return nil, err
	}
	start := time.Now()
	items := make([]solver.Item, len(reports))
	for i, r := range reports {
		items[i] = solver.ItemFromPreference(r.Pref, o.Rating)
	}
	res, err := solver.BranchAndBound(o.Pricer, items, o.Options)
	if err != nil {
		return nil, err
	}
	o.LastResult = res

	assignments := assignmentsOf(reports, res.Intervals(items))
	if err := CheckAssignments(reports, assignments); err != nil {
		return nil, err
	}
	observeAllocation(o.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}
