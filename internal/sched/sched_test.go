package sched

import (
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/solver"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func randomReports(t *testing.T, seed uint64, n int) []core.Report {
	t.Helper()
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return profile.WideReports(gen.DrawN(n))
}

func costOfAssignments(assignments []core.Assignment) float64 {
	return pricing.Cost(quad, LoadOfAssignments(assignments, 2))
}

func TestGreedyRespectsReports(t *testing.T) {
	g := &Greedy{Pricer: quad, Rating: 2}
	for seed := uint64(1); seed <= 5; seed++ {
		reports := randomReports(t, seed, 30)
		assignments, err := g.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAssignments(reports, assignments); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGreedyEmptyReports(t *testing.T) {
	g := &Greedy{Pricer: quad, Rating: 2}
	if _, err := g.Allocate(nil); err == nil {
		t.Error("empty report set should be rejected")
	}
}

func TestGreedyPaperExample3Order(t *testing.T) {
	// Example 3 with the Section IV-C narrative: Enki processes B and C
	// (less flexible) before A, separating B and C and leaving A at
	// (16,18). The resulting cost matches the optimum.
	reports := []core.Report{
		{ID: 0, Pref: core.MustPreference(16, 18, 2)}, // A
		{ID: 1, Pref: core.MustPreference(18, 21, 2)}, // B
		{ID: 2, Pref: core.MustPreference(18, 21, 2)}, // C
	}
	g := &Greedy{Pricer: quad, Rating: 2}
	assignments, err := g.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if assignments[0].Interval != (core.Interval{Begin: 16, End: 18}) {
		t.Errorf("A allocated %v, want (16,18)", assignments[0].Interval)
	}
	if assignments[1].Interval == assignments[2].Interval {
		t.Errorf("B and C must be separated, both got %v", assignments[1].Interval)
	}
	if got := costOfAssignments(assignments); math.Abs(got-9.6) > 1e-9 {
		t.Errorf("greedy cost = %g, want optimal 9.6", got)
	}
}

func TestGreedyFlattensIdenticalRequests(t *testing.T) {
	// Four households that could all stack at 18:00 but have room to
	// spread: greedy must produce PAR 1 over the window.
	reports := []core.Report{
		{ID: 0, Pref: core.MustPreference(18, 22, 1)},
		{ID: 1, Pref: core.MustPreference(18, 22, 1)},
		{ID: 2, Pref: core.MustPreference(18, 22, 1)},
		{ID: 3, Pref: core.MustPreference(18, 22, 1)},
	}
	g := &Greedy{Pricer: quad, Rating: 2}
	assignments, err := g.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	load := LoadOfAssignments(assignments, 2)
	if load.Peak() != 2 {
		t.Errorf("peak = %g, want 2 (perfectly spread)", load.Peak())
	}
}

func TestGreedyRandomTieBreakIsStillValid(t *testing.T) {
	g := &Greedy{Pricer: quad, Rating: 2, RNG: dist.New(7)}
	reports := randomReports(t, 3, 25)
	assignments, err := g.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDeterministicWithoutRNG(t *testing.T) {
	g1 := &Greedy{Pricer: quad, Rating: 2}
	g2 := &Greedy{Pricer: quad, Rating: 2}
	reports := randomReports(t, 9, 20)
	a1, err := g1.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := g2.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("deterministic greedy diverged at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestOptimalMatchesSolver(t *testing.T) {
	reports := randomReports(t, 11, 10)
	o := &Optimal{Pricer: quad, Rating: 2}
	assignments, err := o.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		t.Fatal(err)
	}
	if !o.LastResult.Optimal {
		t.Error("small instance must be solved to proven optimality")
	}
	if got := costOfAssignments(assignments); math.Abs(got-o.LastResult.Cost) > 1e-6 {
		t.Errorf("allocation cost %g != solver cost %g", got, o.LastResult.Cost)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	for seed := uint64(30); seed < 36; seed++ {
		reports := randomReports(t, seed, 12)
		g := &Greedy{Pricer: quad, Rating: 2}
		o := &Optimal{Pricer: quad, Rating: 2}
		ga, err := g.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := o.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		gc, oc := costOfAssignments(ga), costOfAssignments(oa)
		if oc > gc+1e-9 {
			t.Errorf("seed %d: optimal cost %g exceeds greedy cost %g", seed, oc, gc)
		}
	}
}

func TestOptimalTimeLimited(t *testing.T) {
	reports := randomReports(t, 50, 40)
	o := &Optimal{Pricer: quad, Rating: 2, Options: solver.Options{NodeLimit: 50000}}
	assignments, err := o.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		t.Fatal(err)
	}
	if o.LastResult.Gap() < 0 {
		t.Errorf("gap %g must be nonnegative", o.LastResult.Gap())
	}
}

func TestEarliestBaseline(t *testing.T) {
	reports := []core.Report{
		{ID: 0, Pref: core.MustPreference(18, 22, 2)},
		{ID: 1, Pref: core.MustPreference(16, 20, 1)},
	}
	assignments, err := Earliest{}.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if assignments[0].Interval != (core.Interval{Begin: 18, End: 20}) {
		t.Errorf("assignment 0 = %v, want (18,20)", assignments[0].Interval)
	}
	if assignments[1].Interval != (core.Interval{Begin: 16, End: 17}) {
		t.Errorf("assignment 1 = %v, want (16,17)", assignments[1].Interval)
	}
}

func TestRandomBaselineValid(t *testing.T) {
	s := &Random{RNG: dist.New(4)}
	reports := randomReports(t, 13, 20)
	assignments, err := s.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyBeatsUncoordinatedBaselines(t *testing.T) {
	// The core value proposition: Enki's greedy coordination yields a
	// lower neighborhood cost than no coordination, on average.
	var greedyTotal, earliestTotal float64
	for seed := uint64(60); seed < 70; seed++ {
		reports := randomReports(t, seed, 30)
		g := &Greedy{Pricer: quad, Rating: 2}
		ga, err := g.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		ea, err := Earliest{}.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		greedyTotal += costOfAssignments(ga)
		earliestTotal += costOfAssignments(ea)
	}
	if greedyTotal >= earliestTotal {
		t.Errorf("greedy total cost %g should beat earliest-start %g", greedyTotal, earliestTotal)
	}
}

func TestGreedyOrderedAblations(t *testing.T) {
	reports := randomReports(t, 21, 25)
	for _, s := range []Scheduler{
		&GreedyOrdered{Pricer: quad, Rating: 2, Order: OrderReport},
		&GreedyOrdered{Pricer: quad, Rating: 2, Order: OrderShuffled, RNG: dist.New(1)},
		&GreedyOrdered{Pricer: quad, Rating: 2, Order: OrderWidestFirst},
	} {
		assignments, err := s.Allocate(reports)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := CheckAssignments(reports, assignments); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestLocalSearchImprovesEarliest(t *testing.T) {
	reports := randomReports(t, 31, 25)
	base := Earliest{}
	ls := &LocalSearch{Base: base, Pricer: quad, Rating: 2}
	ba, err := base.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	la, err := ls.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if costOfAssignments(la) > costOfAssignments(ba)+1e-9 {
		t.Errorf("local search must not worsen its base: %g vs %g",
			costOfAssignments(la), costOfAssignments(ba))
	}
	if costOfAssignments(la) >= costOfAssignments(ba) {
		t.Errorf("local search should strictly improve a stacked start: %g vs %g",
			costOfAssignments(la), costOfAssignments(ba))
	}
}

func TestLocalSearchMaxSweeps(t *testing.T) {
	reports := randomReports(t, 32, 20)
	ls := &LocalSearch{Base: Earliest{}, Pricer: quad, Rating: 2, MaxSweeps: 1}
	assignments, err := ls.Allocate(reports)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerNames(t *testing.T) {
	tests := []struct {
		s    Scheduler
		want string
	}{
		{&Greedy{}, "enki-greedy"},
		{&Optimal{}, "optimal"},
		{Earliest{}, "earliest"},
		{&Random{}, "random"},
		{&GreedyOrdered{Order: OrderReport}, "greedy-report-order"},
		{&GreedyOrdered{Order: OrderShuffled}, "greedy-shuffled"},
		{&GreedyOrdered{Order: OrderWidestFirst}, "greedy-widest-first"},
		{&LocalSearch{Base: Earliest{}}, "local-search(earliest)"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestCheckAssignmentsCatchesViolations(t *testing.T) {
	reports := []core.Report{{ID: 1, Pref: core.MustPreference(18, 22, 2)}}
	bad := []core.Assignment{{ID: 1, Interval: core.Interval{Begin: 14, End: 16}}}
	if err := CheckAssignments(reports, bad); err == nil {
		t.Error("out-of-window assignment should be rejected")
	}
	wrongID := []core.Assignment{{ID: 2, Interval: core.Interval{Begin: 18, End: 20}}}
	if err := CheckAssignments(reports, wrongID); err == nil {
		t.Error("mismatched ID should be rejected")
	}
	if err := CheckAssignments(reports, nil); err == nil {
		t.Error("length mismatch should be rejected")
	}
}

func TestGreedyNearOptimalAtScale(t *testing.T) {
	// The Figure 4/5 claim: greedy stays close to optimal. At n = 12,
	// exhaustively provable sizes, greedy must be within 15% of optimal
	// across seeds (it is usually exactly optimal).
	var worst float64
	for seed := uint64(80); seed < 90; seed++ {
		reports := randomReports(t, seed, 12)
		g := &Greedy{Pricer: quad, Rating: 2}
		o := &Optimal{Pricer: quad, Rating: 2}
		ga, err := g.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		oa, err := o.Allocate(reports)
		if err != nil {
			t.Fatal(err)
		}
		ratio := costOfAssignments(ga) / costOfAssignments(oa)
		if ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.15 {
		t.Errorf("greedy/optimal cost ratio %g exceeds 1.15", worst)
	}
}
