package sched

import (
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
)

// FuzzGreedyAllocate drives the zero-alloc greedy path with
// fuzz-derived report sets. Raw fuzz bytes decode into households —
// including deliberately invalid windows, durations, and duplicate IDs
// — and the property under test is total robustness: the allocator
// either rejects the input with an error (and the retained seed
// implementation agrees it is invalid) or returns a schedule that
// CheckAssignments admits, produced without panicking and, on the
// AllocateInto path with reused buffers, without allocating.
func FuzzGreedyAllocate(f *testing.F) {
	f.Add([]byte{18, 2, 4, 10, 1, 6}, uint8(0))
	f.Add([]byte{0, 24, 24, 0, 24, 1, 23, 1, 1}, uint8(1))
	f.Add([]byte{255, 255, 255, 255}, uint8(2))
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{20, 30, 2, 20, 30, 2}, uint8(4))

	f.Fuzz(func(t *testing.T, raw []byte, idSeed uint8) {
		// Three bytes per report: begin, width, duration — deliberately
		// unclamped so invalid preferences reach the validator. IDs
		// collide when idSeed selects a small modulus.
		n := len(raw) / 3
		if n > 64 {
			n = 64
		}
		reports := make([]core.Report, 0, n)
		idMod := core.HouseholdID(idSeed)%7 + 1
		for i := 0; i < n; i++ {
			id := core.HouseholdID(i)
			if idSeed%2 == 1 {
				id = id % idMod
			}
			begin := int(raw[3*i]) % 32
			width := int(raw[3*i+1]) % 32
			dur := int(raw[3*i+2]) % 32
			reports = append(reports, core.Report{
				ID:   id,
				Pref: core.Preference{Window: core.Interval{Begin: begin, End: begin + width}, Duration: dur},
			})
		}

		g := &Greedy{Pricer: quad, Rating: 2}
		ref := &refGreedy{Pricer: quad, Rating: 2}
		got, err := g.Allocate(reports)
		if err != nil {
			if _, refErr := ref.Allocate(reports); refErr == nil {
				t.Fatalf("fast allocator rejected input the seed accepts: %v", err)
			}
			return
		}
		if refOut, refErr := ref.Allocate(reports); refErr != nil {
			t.Fatalf("fast allocator accepted input the seed rejects: %v", refErr)
		} else {
			for i := range refOut {
				if got[i] != refOut[i] {
					t.Fatalf("household %d: fast %v != seed %v", i, got[i], refOut[i])
				}
			}
		}
		if err := CheckAssignments(reports, got); err != nil {
			t.Fatalf("schedule not admitted: %v", err)
		}

		// The reused-buffer path must stay allocation-free on any valid
		// input, not just the benchmark corpus.
		var s Scratch
		dst := make([]core.Assignment, 0, len(reports))
		if _, err := g.AllocateInto(&s, dst, reports); err != nil {
			t.Fatalf("AllocateInto after successful Allocate: %v", err)
		}
		if allocs := testing.AllocsPerRun(5, func() {
			if _, err := g.AllocateInto(&s, dst, reports); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Fatalf("AllocateInto with reused buffers allocated %g times", allocs)
		}
	})
}

// FuzzGreedyAllocateRNG exercises the random tie-breaking path with a
// fuzzed seed: the fast and seed allocators must consume the RNG stream
// identically, so equal seeds must yield bit-identical schedules.
func FuzzGreedyAllocateRNG(f *testing.F) {
	f.Add(uint64(1), uint8(10))
	f.Add(uint64(42), uint8(50))
	f.Fuzz(func(t *testing.T, seed uint64, n uint8) {
		if n == 0 {
			n = 1
		}
		reports := corpusReports(dist.New(seed), int(n)%60+1)
		fast := &Greedy{Pricer: quad, Rating: 2, RNG: dist.New(seed)}
		ref := &refGreedy{Pricer: quad, Rating: 2, RNG: dist.New(seed)}
		got, err := fast.Allocate(reports)
		if err != nil {
			t.Fatalf("corpus reports must be valid: %v", err)
		}
		want, err := ref.Allocate(reports)
		if err != nil {
			t.Fatalf("seed allocator: %v", err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("household %d: fast %v != seed %v", i, got[i], want[i])
			}
		}
	})
}
