package sched

import (
	"sort"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

// Greedy is Enki's allocator (Section IV-C): it computes each
// household's predicted flexibility score assuming truthful reports,
// processes households in order of increasing flexibility (ties broken
// randomly), and places each household at the deferment that greedily
// minimizes the peak load of the households handled so far, with the
// marginal cost and then the earliest start as tie-breakers.
type Greedy struct {
	// Pricer prices hourly load (used for the cost tie-breaker). It
	// must be non-nil.
	Pricer pricing.Pricer
	// Rating is the per-household power rating r in kW.
	Rating float64
	// RNG breaks flexibility ties randomly, as the paper prescribes.
	// A nil RNG breaks ties deterministically by household position,
	// which experiments use for reproducibility.
	RNG *dist.RNG
}

var _ Scheduler = (*Greedy)(nil)

// Name implements Scheduler.
func (g *Greedy) Name() string { return "enki-greedy" }

// Allocate implements Scheduler.
func (g *Greedy) Allocate(reports []core.Report) ([]core.Assignment, error) {
	if err := validateReports(reports); err != nil {
		return nil, err
	}
	start := time.Now()

	prefs := make([]core.Preference, len(reports))
	for i, r := range reports {
		prefs[i] = r.Pref
	}
	flex := mechanism.FlexibilityScores(prefs)

	// Order positions by increasing predicted flexibility. Random
	// jitter implements the paper's "breaking ties randomly".
	type ranked struct {
		pos    int
		flex   float64
		jitter float64
	}
	order := make([]ranked, len(reports))
	for i := range reports {
		j := float64(i) // deterministic fallback: report order
		if g.RNG != nil {
			j = g.RNG.Float64()
		}
		order[i] = ranked{pos: i, flex: flex[i], jitter: j}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].flex != order[b].flex {
			return order[a].flex < order[b].flex
		}
		return order[a].jitter < order[b].jitter
	})

	intervals := make([]core.Interval, len(reports))
	var load core.Load
	for _, o := range order {
		pref := prefs[o.pos]
		best := g.bestPlacement(pref, &load)
		intervals[o.pos] = best
		load.AddInterval(best, g.Rating)
	}

	assignments := assignmentsOf(reports, intervals)
	if err := CheckAssignments(reports, assignments); err != nil {
		return nil, err
	}
	observeAllocation(g.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}

// bestPlacement chooses the deferment minimizing (resulting peak,
// marginal cost, start hour) against the current partial load.
func (g *Greedy) bestPlacement(pref core.Preference, load *core.Load) core.Interval {
	best := pref.IntervalAt(0)
	bestPeak, bestCost := g.placementKey(best, load)
	for d := 1; d <= pref.Slack(); d++ {
		iv := pref.IntervalAt(d)
		peak, cost := g.placementKey(iv, load)
		if peak < bestPeak || (peak == bestPeak && cost < bestCost-1e-12) {
			best, bestPeak, bestCost = iv, peak, cost
		}
	}
	return best
}

// placementKey returns the peak over iv's slots after placement and the
// marginal cost of the placement.
func (g *Greedy) placementKey(iv core.Interval, load *core.Load) (peak, cost float64) {
	for h := max(iv.Begin, 0); h < min(iv.End, core.HoursPerDay); h++ {
		if lv := load[h] + g.Rating; lv > peak {
			peak = lv
		}
	}
	return peak, pricing.MarginalCost(g.Pricer, load, iv, g.Rating)
}
