package sched

import (
	"fmt"
	"slices"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
)

// Greedy is Enki's allocator (Section IV-C): it computes each
// household's predicted flexibility score assuming truthful reports,
// processes households in order of increasing flexibility (ties broken
// randomly), and places each household at the deferment that greedily
// minimizes the peak load of the households handled so far, with the
// marginal cost and then the earliest start as tie-breakers.
//
// The hot path is allocation-free in steady state: working buffers come
// from a pooled (or caller-owned) Scratch, the per-candidate peak is
// tracked incrementally with a sliding-window monotonic deque instead
// of per-slot rescans, and the quadratic Eq. 1 pricer is devirtualized
// so the marginal-cost tie-breaker runs without interface dispatch. The
// placement decisions are bit-identical to the seed implementation
// (internal/sched/reference_test.go), which the differential suite
// enforces over a seeded corpus.
type Greedy struct {
	// Pricer prices hourly load (used for the cost tie-breaker). It
	// must be non-nil.
	Pricer pricing.Pricer
	// Rating is the per-household power rating r in kW.
	Rating float64
	// RNG breaks flexibility ties randomly, as the paper prescribes.
	// A nil RNG breaks ties deterministically by household position,
	// which experiments use for reproducibility.
	RNG *dist.RNG
}

var _ Scheduler = (*Greedy)(nil)

// Name implements Scheduler.
func (g *Greedy) Name() string { return "enki-greedy" }

// Allocate implements Scheduler. It borrows a pooled Scratch, so the
// only steady-state allocation is the returned assignment slice; use
// AllocateInto to eliminate that one too.
func (g *Greedy) Allocate(reports []core.Report) ([]core.Assignment, error) {
	return g.AllocateInto(nil, nil, reports)
}

// AllocateInto is Allocate with caller-controlled memory: scratch
// buffers come from s (borrowed from the internal pool when s is nil)
// and the assignments are appended to dst[:0] (so a dst with capacity
// for len(reports) entries makes the call allocation-free). The
// returned slice aliases dst when it fits. A Scratch must not be shared
// between concurrent calls; see the Scratch ownership contract.
func (g *Greedy) AllocateInto(s *Scratch, dst []core.Assignment, reports []core.Report) ([]core.Assignment, error) {
	pooled := s == nil
	if pooled {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	if err := validateReportsScratch(s, reports); err != nil {
		return nil, err
	}
	start := time.Now()
	n := len(reports)
	s.grow(n)

	for i, r := range reports {
		s.prefs[i] = r.Pref
	}
	mechanism.FlexibilityScoresInto(s.flex, s.prefs)

	// Order positions by increasing predicted flexibility. Random
	// jitter implements the paper's "breaking ties randomly"; jitter is
	// drawn in report order so the RNG stream matches the seed
	// implementation draw for draw.
	for i := 0; i < n; i++ {
		j := float64(i) // deterministic fallback: report order
		if g.RNG != nil {
			j = g.RNG.Float64()
		}
		s.jitter[i] = j
		s.order[i] = i
	}
	// The (flex, jitter) key is a strict total order (jitter entries are
	// distinct), so any comparison sort yields the same permutation the
	// seed's sort.Slice did.
	flex, jitter := s.flex, s.jitter
	slices.SortFunc(s.order, func(a, b int) int {
		fa, fb := flex[a], flex[b]
		if fa != fb {
			if fa < fb {
				return -1
			}
			return 1
		}
		ja, jb := jitter[a], jitter[b]
		switch {
		case ja < jb:
			return -1
		case ja > jb:
			return 1
		}
		return 0
	})

	quad, isQuad := g.Pricer.(pricing.Quadratic)
	var load core.Load
	for _, pos := range s.order {
		best := g.bestPlacement(s.prefs[pos], &load, quad, isQuad, &s.deque)
		s.intervals[pos] = best
		load.AddInterval(best, g.Rating)
	}

	assignments := dst
	if cap(assignments) < n {
		assignments = make([]core.Assignment, n)
	}
	assignments = assignments[:n]
	for i, r := range reports {
		assignments[i] = core.Assignment{ID: r.ID, Interval: s.intervals[i]}
	}
	if err := CheckAssignments(reports, assignments); err != nil {
		return nil, err
	}
	observeAllocation(g.Name(), reports, assignments, time.Since(start))
	return assignments, nil
}

// validateReportsScratch mirrors validateReports without its per-call
// map: preferences are validated in report order, then duplicate IDs
// are caught by sorting a scratch copy and scanning adjacent entries.
// (On inputs with several independent defects the two validators may
// surface different ones first; both always reject exactly the same
// input set.)
func validateReportsScratch(s *Scratch, reports []core.Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("sched: no reports")
	}
	for _, r := range reports {
		if err := r.Pref.Validate(); err != nil {
			return fmt.Errorf("household %d: %w", r.ID, err)
		}
	}
	s.grow(len(reports))
	for i, r := range reports {
		s.ids[i] = r.ID
	}
	slices.Sort(s.ids)
	for i := 1; i < len(s.ids); i++ {
		if s.ids[i] == s.ids[i-1] {
			return &core.ValidationError{
				Field:  "reports",
				Reason: fmt.Sprintf("duplicate household id %d", s.ids[i]),
			}
		}
	}
	return nil
}

// bestPlacement chooses the deferment minimizing (resulting peak,
// marginal cost, start hour) against the current partial load. The peak
// of each candidate window is maintained incrementally by a monotonic
// sliding-window deque (O(window) total instead of O(window×duration)),
// and the marginal cost is only evaluated for candidates whose peak
// ties or beats the incumbent — lazily, because a strictly worse peak
// already loses. Both keys reproduce the seed arithmetic exactly: the
// deque yields the same float peak as the per-slot rescan, and the
// marginal cost is summed slot by slot in the same order.
func (g *Greedy) bestPlacement(pref core.Preference, load *core.Load, quad pricing.Quadratic, isQuad bool, deque *[core.HoursPerDay]int) core.Interval {
	b := pref.Window.Begin
	v := pref.Duration
	slack := pref.Slack()

	// Prime the deque with the first window [b, b+v).
	head, tail := 0, 0
	for h := b; h < b+v; h++ {
		for tail > head && load[deque[tail-1]] <= load[h] {
			tail--
		}
		deque[tail] = h
		tail++
	}
	bestD := 0
	bestPeak := load[deque[head]] + g.Rating
	bestCost := g.marginal(load, b, b+v, quad, isQuad)
	for d := 1; d <= slack; d++ {
		// Slide to [b+d, b+d+v): expire the left slot, admit the right.
		if deque[head] < b+d {
			head++
		}
		h := b + d + v - 1
		for tail > head && load[deque[tail-1]] <= load[h] {
			tail--
		}
		deque[tail] = h
		tail++

		peak := load[deque[head]] + g.Rating
		if peak > bestPeak {
			continue
		}
		cost := g.marginal(load, b+d, b+d+v, quad, isQuad)
		if peak < bestPeak || cost < bestCost-1e-12 {
			bestD, bestPeak, bestCost = d, peak, cost
		}
	}
	return pref.IntervalAt(bestD)
}

// marginal computes the marginal cost of occupying [lo, hi) at the
// household rating: the quadratic fast path runs the exact per-slot
// expression pricing.MarginalCost would (σ(l+r)² − σl², in slot order,
// so the floats are bit-identical) without interface dispatch; every
// other pricer takes the generic path.
func (g *Greedy) marginal(load *core.Load, lo, hi int, quad pricing.Quadratic, isQuad bool) float64 {
	if isQuad {
		var delta float64
		for h := lo; h < hi; h++ {
			l := load[h]
			lr := l + g.Rating
			delta += quad.Sigma*lr*lr - quad.Sigma*l*l
		}
		return delta
	}
	return pricing.MarginalCost(g.Pricer, load, core.Interval{Begin: lo, End: hi}, g.Rating)
}
