// Package sched implements the neighborhood center's allocation
// schedulers: Enki's greedy flexibility-ordered allocator (Section
// IV-C), the exact Optimal scheduler (Eq. 2, via internal/solver), and
// the baseline allocators used by the ablation benches.
//
// A Scheduler consumes validated household reports and produces one
// assignment per report, each scheduled inside the reported window with
// exactly the reported duration.
package sched

import (
	"fmt"
	"time"

	"enki/internal/core"
)

// Scheduler allocates consumption intervals to reported preferences.
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Allocate returns one assignment per report, in report order.
	// Every assignment satisfies report.Pref.Admits(assignment).
	Allocate(reports []core.Report) ([]core.Assignment, error)
}

// validateReports guards every scheduler's input.
func validateReports(reports []core.Report) error {
	if len(reports) == 0 {
		return fmt.Errorf("sched: no reports")
	}
	return core.ValidateReports(reports)
}

// assignmentsOf pairs chosen intervals with household IDs.
func assignmentsOf(reports []core.Report, intervals []core.Interval) []core.Assignment {
	out := make([]core.Assignment, len(reports))
	for i, r := range reports {
		out[i] = core.Assignment{ID: r.ID, Interval: intervals[i]}
	}
	return out
}

// CheckAssignments verifies that every assignment is admitted by its
// report; schedulers use it as a postcondition and tests as an oracle.
func CheckAssignments(reports []core.Report, assignments []core.Assignment) error {
	if len(reports) != len(assignments) {
		return fmt.Errorf("sched: %d reports but %d assignments", len(reports), len(assignments))
	}
	for i, r := range reports {
		a := assignments[i]
		if a.ID != r.ID {
			return fmt.Errorf("sched: assignment %d has id %d, want %d", i, a.ID, r.ID)
		}
		if !r.Pref.Admits(a.Interval) {
			return fmt.Errorf("sched: assignment %v not admitted by report %v of household %d",
				a.Interval, r.Pref, r.ID)
		}
	}
	return nil
}

// Deferment is one household's scheduling decision: how many hours past
// its reported window begin the allocator pushed its start (0 when the
// household got its earliest wish). The mechanism audit ledger records
// one per household so a settlement day's allocation can be audited
// alongside its Eq. 4–7 chain.
type Deferment struct {
	ID    core.HouseholdID `json:"id"`
	Slots int              `json:"slots"`
}

// DefermentsOf derives each household's deferment decision from a
// completed allocation, in report order. It is a pure function of
// (reports, assignments), so it replays identically at any worker
// count.
func DefermentsOf(reports []core.Report, assignments []core.Assignment) []Deferment {
	out := make([]Deferment, len(reports))
	for i, r := range reports {
		slots := int(assignments[i].Interval.Begin - r.Pref.Window.Begin)
		if slots < 0 {
			slots = 0
		}
		out[i] = Deferment{ID: r.ID, Slots: slots}
	}
	return out
}

// observeAllocation records one completed allocation in the default
// metrics registry: a per-scheduler call counter, latency histogram,
// and the deferment counters (slots deferred past each report's window
// start, and how many households were deferred at all). The deferment
// counters are pure functions of the allocation, so they obey the
// engine's bit-identical-at-any-worker-count contract; only the
// latency histogram is timing. The handles come from the generation-
// keyed cache and the deferments are folded inline (not materialized
// via DefermentsOf), so the call is allocation-free on the hot path.
func observeAllocation(scheduler string, reports []core.Report, assignments []core.Assignment, elapsed time.Duration) {
	m := metricsFor(scheduler)
	m.total.Inc()
	m.latency.Observe(float64(elapsed.Nanoseconds()) / 1e6)
	var slots, deferred uint64
	for i, r := range reports {
		if d := int(assignments[i].Interval.Begin - r.Pref.Window.Begin); d > 0 {
			slots += uint64(d)
			deferred++
		}
	}
	m.slots.Add(slots)
	m.deferred.Add(deferred)
}

// LoadOfAssignments aggregates assignments into an hourly load profile.
func LoadOfAssignments(assignments []core.Assignment, rating float64) core.Load {
	var l core.Load
	for _, a := range assignments {
		l.AddInterval(a.Interval, rating)
	}
	return l
}
