package netproto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"

	"enki/internal/core"
	"enki/internal/obs"
)

// Codec serializes protocol messages inside batch frames. Two codecs
// ship with the package: CodecJSON (the historical representation, the
// negotiation fallback) and CodecBinary (a compact fixed-layout binary
// encoding, roughly 4× smaller and an order of magnitude cheaper to
// encode). A codec must be a pure bijection on the Message fields it
// carries: Decode(Append(nil, m)) == m for every encodable m, which the
// cross-codec differential fuzz (FuzzCodecDifferential) enforces
// against the JSON reference.
type Codec interface {
	// Name is the codec's negotiation token ("json", "binary").
	Name() string
	// ID is the codec's one-byte wire tag inside batch frames.
	ID() byte
	// Append appends m's encoding to dst and returns the extended slice.
	Append(dst []byte, m *Message) ([]byte, error)
	// Decode parses one message. It must not retain data.
	Decode(data []byte) (*Message, error)
}

// Codec names understood by this build. Negotiation tokens, WithCodec
// arguments, and -wire.codec flag values.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

var (
	codecMu     sync.RWMutex
	codecByName = map[string]Codec{}
	codecByID   = map[byte]Codec{}
)

// RegisterCodec adds a codec to the process-wide registry consulted by
// negotiation and batch-frame decoding. Registering a name or ID twice
// panics: codec identity is part of the wire contract.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecByName[c.Name()]; dup {
		panic(fmt.Sprintf("netproto: codec %q registered twice", c.Name()))
	}
	if _, dup := codecByID[c.ID()]; dup {
		panic(fmt.Sprintf("netproto: codec id %d registered twice", c.ID()))
	}
	codecByName[c.Name()] = c
	codecByID[c.ID()] = c
}

// LookupCodec resolves a codec by negotiation name.
func LookupCodec(name string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecByName[name]
	return c, ok
}

func lookupCodecID(id byte) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecByID[id]
	return c, ok
}

// CodecNames lists the registered codecs in lexical order — the offer
// an agent puts on its hello.
func CodecNames() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecByName))
	for name := range codecByName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterCodec(jsonCodec{})
	RegisterCodec(binaryCodec{})
}

// jsonCodec is the reference codec: encoding/json over the Message
// struct tags, byte-identical to the legacy per-message framing's
// payload.
type jsonCodec struct{}

func (jsonCodec) Name() string { return CodecJSON }
func (jsonCodec) ID() byte     { return 0 }

func (jsonCodec) Append(dst []byte, m *Message) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("netproto: encode %s: %w", m.Kind, err)
	}
	return append(dst, payload...), nil
}

func (jsonCodec) Decode(data []byte) (*Message, error) {
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("netproto: decode frame: %w", err)
	}
	return &m, nil
}

// binaryCodec is the compact codec: a fixed field order with a presence
// bitmask for the optional payloads, varint integers, and raw-byte
// strings. Unlike JSON it round-trips arbitrary byte strings (no UTF-8
// normalization), so its round-trip contract is strictly wider than the
// reference codec's.
//
// Layout:
//
//	u8      kind code (wireKinds index+1; 0 = explicit string follows)
//	[str]   kind (only when code == 0)
//	varint  id (zigzag)
//	varint  day (zigzag)
//	uvarint presence bitmask (binTrace … binMetrics bits)
//	fields in bit order, each:
//	  trace    = str traceID, str spanID
//	  token    = str
//	  pref     = varint begin, end, duration (zigzag)
//	  interval = varint begin, end (zigzag)
//	  payment  = 6 × f64 (LE bits)
//	  err      = str
//	  codecs   = uvarint count, count × str
//	  codec    = str
//	  metrics  = str (JSON-encoded obs.MetricsReport)
//
// str = uvarint length + raw bytes. The mask was a single byte until
// the binMetrics bit pushed it past eight bits; masks below 0x80 encode
// to the same byte either way, and larger masks only ever travel on
// connections that negotiated a codec (hello/welcome are always
// legacy-framed), so the widening is not a wire break for any message
// an older build could have produced.
type binaryCodec struct{}

func (binaryCodec) Name() string { return CodecBinary }
func (binaryCodec) ID() byte     { return 1 }

// wireKinds assigns the protocol kinds their one-byte codes. Appending
// is safe; reordering is a wire break.
var wireKinds = []Kind{
	KindHello, KindWelcome, KindRequest, KindPreference,
	KindAllocation, KindConsumption, KindPayment, KindError,
	KindMetricsReport,
}

// Presence bits of the binary codec's optional fields.
const (
	binTrace = 1 << iota
	binToken
	binPref
	binInterval
	binPayment
	binErr
	binCodecs
	binCodec
	binMetrics
)

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func (binaryCodec) Append(dst []byte, m *Message) ([]byte, error) {
	code := byte(0)
	for i, k := range wireKinds {
		if m.Kind == k {
			code = byte(i + 1)
			break
		}
	}
	dst = append(dst, code)
	if code == 0 {
		dst = appendString(dst, string(m.Kind))
	}
	dst = appendVarint(dst, int64(m.ID))
	dst = appendVarint(dst, int64(m.Day))

	var mask uint64
	if m.Trace != nil {
		mask |= binTrace
	}
	if m.Token != "" {
		mask |= binToken
	}
	if m.Pref != nil {
		mask |= binPref
	}
	if m.Interval != nil {
		mask |= binInterval
	}
	if m.Payment != nil {
		mask |= binPayment
	}
	if m.Err != "" {
		mask |= binErr
	}
	if m.Codecs != nil {
		mask |= binCodecs
	}
	if m.Codec != "" {
		mask |= binCodec
	}
	var metricsJSON []byte
	if m.Metrics != nil {
		var err error
		metricsJSON, err = json.Marshal(m.Metrics)
		if err != nil {
			return nil, fmt.Errorf("netproto: encode %s metrics: %w", m.Kind, err)
		}
		mask |= binMetrics
	}
	dst = appendUvarint(dst, mask)

	if m.Trace != nil {
		dst = appendString(dst, m.Trace.TraceID)
		dst = appendString(dst, m.Trace.SpanID)
	}
	if m.Token != "" {
		dst = appendString(dst, m.Token)
	}
	if m.Pref != nil {
		dst = appendVarint(dst, int64(m.Pref.Window.Begin))
		dst = appendVarint(dst, int64(m.Pref.Window.End))
		dst = appendVarint(dst, int64(m.Pref.Duration))
	}
	if m.Interval != nil {
		dst = appendVarint(dst, int64(m.Interval.Begin))
		dst = appendVarint(dst, int64(m.Interval.End))
	}
	if m.Payment != nil {
		for _, f := range [...]float64{
			m.Payment.Amount, m.Payment.Flexibility, m.Payment.Defection,
			m.Payment.SocialCost, m.Payment.TotalCost, m.Payment.PeakLoad,
		} {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
	}
	if m.Err != "" {
		dst = appendString(dst, m.Err)
	}
	if m.Codecs != nil {
		dst = appendUvarint(dst, uint64(len(m.Codecs)))
		for _, name := range m.Codecs {
			dst = appendString(dst, name)
		}
	}
	if m.Codec != "" {
		dst = appendString(dst, m.Codec)
	}
	if metricsJSON != nil {
		dst = appendUvarint(dst, uint64(len(metricsJSON)))
		dst = append(dst, metricsJSON...)
	}
	return dst, nil
}

// binReader walks a binary-codec payload with saturating error state.
type binReader struct {
	data []byte
	err  error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("netproto: decode frame: truncated binary message")
	}
}

func (r *binReader) byte() byte {
	if r.err != nil || len(r.data) == 0 {
		r.fail()
		return 0
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail()
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *binReader) float64() float64 {
	if r.err != nil || len(r.data) < 8 {
		r.fail()
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return f
}

func (binaryCodec) Decode(data []byte) (*Message, error) {
	r := &binReader{data: data}
	var m Message
	code := r.byte()
	switch {
	case code == 0:
		m.Kind = Kind(r.string())
	case int(code) <= len(wireKinds):
		m.Kind = wireKinds[code-1]
	default:
		return nil, fmt.Errorf("netproto: decode frame: unknown kind code %d", code)
	}
	m.ID = core.HouseholdID(r.varint())
	m.Day = int(r.varint())
	mask := r.uvarint()
	if mask&binTrace != 0 {
		m.Trace = &obs.TraceContext{TraceID: r.string(), SpanID: r.string()}
	}
	if mask&binToken != 0 {
		m.Token = r.string()
	}
	if mask&binPref != 0 {
		m.Pref = &core.Preference{
			Window:   core.Interval{Begin: int(r.varint()), End: int(r.varint())},
			Duration: int(r.varint()),
		}
	}
	if mask&binInterval != 0 {
		m.Interval = &core.Interval{Begin: int(r.varint()), End: int(r.varint())}
	}
	if mask&binPayment != 0 {
		m.Payment = &PaymentDetail{
			Amount:      r.float64(),
			Flexibility: r.float64(),
			Defection:   r.float64(),
			SocialCost:  r.float64(),
			TotalCost:   r.float64(),
			PeakLoad:    r.float64(),
		}
	}
	if mask&binErr != 0 {
		m.Err = r.string()
	}
	if mask&binCodecs != 0 {
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.data)) {
			r.fail() // each offer needs at least its length byte
		}
		if r.err == nil {
			m.Codecs = make([]string, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				m.Codecs = append(m.Codecs, r.string())
			}
		}
	}
	if mask&binCodec != 0 {
		m.Codec = r.string()
	}
	if mask&binMetrics != 0 {
		blob := r.string()
		if r.err == nil {
			m.Metrics = &obs.MetricsReport{}
			if err := json.Unmarshal([]byte(blob), m.Metrics); err != nil {
				return nil, fmt.Errorf("netproto: decode metrics report: %w", err)
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("netproto: decode frame: %d trailing bytes", len(r.data))
	}
	return &m, nil
}

// selectCodec is the center's half of codec negotiation: the first
// entry of the preference list (the center's configured codec, then
// JSON) that the agent offered and this build registers. An empty offer
// — a pre-batching agent — selects nothing, and the connection stays on
// legacy per-message JSON frames.
func selectCodec(preferred string, offered []string) Codec {
	if len(offered) == 0 {
		return nil
	}
	prefs := []string{preferred, CodecJSON}
	for _, want := range prefs {
		if want == "" {
			continue
		}
		for _, name := range offered {
			if name != want {
				continue
			}
			if c, ok := LookupCodec(name); ok {
				return c
			}
		}
	}
	return nil
}
