// Package netproto implements the neighborhood model's communication
// substrate (Figure 1): a neighborhood center server and household ECC
// agents exchanging the day-ahead protocol over TCP —
//
//	center → agent: preference request for day d
//	agent → center: reported preference χ̂
//	center → agent: suggested allocation s
//	agent → center: realized consumption ω
//	center → agent: payment p (with score breakdown)
//
// Messages travel in length-prefixed frames. Registration (hello and
// welcome) always uses the legacy one-JSON-message-per-frame format;
// the exchange doubles as codec negotiation, after which a connection
// may switch to batched frames carrying multiple messages in either the
// JSON or the compact binary codec (see frame.go and codec.go). The
// package uses only the standard library (net, encoding/json, sync).
package netproto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"enki/internal/core"
	"enki/internal/obs"
)

// MaxFrameSize bounds a single message frame; anything larger is a
// protocol violation (guards against a misbehaving or malicious peer).
const MaxFrameSize = 1 << 20

// Kind discriminates protocol messages.
type Kind string

// Protocol message kinds.
const (
	KindHello       Kind = "hello"       // agent → center: join the neighborhood
	KindWelcome     Kind = "welcome"     // center → agent: registration accepted
	KindRequest     Kind = "request"     // center → agent: report tomorrow's preference
	KindPreference  Kind = "preference"  // agent → center: reported preference
	KindAllocation  Kind = "allocation"  // center → agent: suggested allocation
	KindConsumption Kind = "consumption" // agent → center: realized consumption
	KindPayment     Kind = "payment"     // center → agent: settlement for the day
	KindError       Kind = "error"       // either direction: fatal protocol error

	// KindMetricsReport piggybacks a source's compact obs snapshot onto
	// the settlement wire (agent → center after the consumption reply;
	// shard → center appended to the payment batch) so the center can
	// assemble the federated cluster-wide metrics view. Emitted only when
	// metrics reporting is negotiated on (WithMetricsReporting); a center
	// that does not expect it rejects it like any other out-of-phase
	// message.
	KindMetricsReport Kind = "metricsReport"
)

// Message is the single frame type exchanged on the wire. Fields are
// populated according to Kind.
type Message struct {
	Kind Kind             `json:"kind"`
	ID   core.HouseholdID `json:"id"`
	Day  int              `json:"day"`

	// Trace carries the sender's span context so the receiver's spans
	// join the same settlement-day trace (deterministic trace IDs are
	// derived from the center's trace seed and the day number, never
	// from randomness). Nil outside a day cycle (hello/welcome).
	Trace *obs.TraceContext `json:"trace,omitempty"`

	// Token is the session-resumption credential. The center issues it
	// on the welcome; a reconnecting agent presents it on its hello to
	// resume the interrupted session (the center replays the phase
	// messages the agent missed) instead of registering fresh.
	Token string `json:"token,omitempty"`

	// Codecs (hello) offers the batch-frame codecs the agent can speak;
	// Codec (welcome) is the center's selection. Both empty on either
	// side keeps the connection on the legacy per-message JSON framing,
	// which is how a post-batching endpoint interoperates with a
	// pre-batching peer: an old center ignores the unknown hello field
	// and answers a codec-less welcome, an old agent offers nothing and
	// is answered in kind. The hello/welcome exchange itself always
	// travels legacy-framed.
	Codecs []string `json:"codecs,omitempty"` // hello: agent → center offer
	Codec  string   `json:"codec,omitempty"`  // welcome: center → agent selection

	Pref     *core.Preference `json:"pref,omitempty"`     // preference
	Interval *core.Interval   `json:"interval,omitempty"` // allocation, consumption

	Payment *PaymentDetail `json:"payment,omitempty"` // payment

	// Metrics is a metricsReport's federated snapshot payload.
	Metrics *obs.MetricsReport `json:"metrics,omitempty"`

	Err string `json:"err,omitempty"` // error
}

// PaymentDetail is the per-household settlement the center reveals: the
// bill plus the score breakdown and the neighborhood aggregates, which
// is the "load statistics and score history" information step of the
// user study (Section VII-B).
type PaymentDetail struct {
	Amount      float64 `json:"amount"`      // p_i
	Flexibility float64 `json:"flexibility"` // f_i (0 when defected)
	Defection   float64 `json:"defection"`   // δ_i
	SocialCost  float64 `json:"socialCost"`  // Ψ_i
	TotalCost   float64 `json:"totalCost"`   // κ(ω) for the whole neighborhood
	PeakLoad    float64 `json:"peakLoad"`    // peak hourly load
}

// WriteMessage frames and writes one message: a 4-byte big-endian
// length followed by the JSON encoding.
func WriteMessage(w io.Writer, m *Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("netproto: encode %s: %w", m.Kind, err)
	}
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("netproto: frame of %d bytes exceeds limit", len(payload))
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("netproto: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("netproto: write payload: %w", err)
	}
	observeFrame(obs.DirectionSent, len(payload))
	return nil
}

// observeFrame counts one framed message and its on-wire size (header
// included) in the given direction, from this process's perspective.
func observeFrame(direction string, payloadLen int) {
	reg := obs.Default()
	reg.Counter(obs.MetricNetMessagesTotal, obs.LabelDirection, direction).Inc()
	reg.Counter(obs.MetricNetBytesTotal, obs.LabelDirection, direction).Add(uint64(payloadLen) + 4)
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF is meaningful to callers; do not wrap
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return nil, fmt.Errorf("netproto: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("netproto: read payload: %w", err)
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("netproto: decode frame: %w", err)
	}
	observeFrame(obs.DirectionReceived, len(payload))
	return &m, nil
}
