package netproto

import (
	"bytes"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/sched"
)

// traceTestTypes is a small seeded neighborhood for the trace tests.
var traceTestTypes = []core.Type{
	{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
	{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
}

// dialTruthful connects one truthful agent per type and waits for all
// registrations.
func dialTruthful(t *testing.T, c *Center) []*Agent {
	t.Helper()
	agents := make([]*Agent, len(traceTestTypes))
	for i, typ := range traceTestTypes {
		a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		t.Cleanup(func() { a.Close() })
	}
	if err := c.WaitForAgents(len(traceTestTypes), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return agents
}

// waitForHistories blocks until every agent has observed n settlements.
func waitForHistories(t *testing.T, agents []*Agent, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, a := range agents {
		for len(a.History()) < n && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if len(a.History()) < n {
			t.Fatalf("agent %d observed %d settlements, want %d", a.ID(), len(a.History()), n)
		}
	}
}

// TestDayCycleOneConnectedTrace is the acceptance check for the
// hierarchical tracing slice: a seeded day over loopback must yield ONE
// connected trace — a shared deterministic trace ID, a root day span,
// center-side phase spans under it, and agent-side spans parented under
// the phase spans across the process (here: connection) boundary.
func TestDayCycleOneConnectedTrace(t *testing.T) {
	tr := obs.DefaultTracer()
	tr.Drain() // discard anything earlier tests left behind
	tr.Enable()
	t.Cleanup(func() {
		tr.Disable()
		tr.Drain()
	})

	const seed = 42
	cfg := CenterConfig{
		Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:       quad,
		Mechanism:    mechanism.DefaultConfig(),
		Rating:       2,
		ReplyTimeout: 5 * time.Second,
		TraceSeed:    seed,
	}
	c, err := NewCenter("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	agents := dialTruthful(t, c)

	record, err := c.RunDay(1)
	if err != nil {
		t.Fatal(err)
	}
	waitForHistories(t, agents, 1) // agent payment spans end asynchronously

	wantTID := obs.DeriveTraceID(seed, 1)
	if record.TraceID != wantTID {
		t.Fatalf("record trace ID %q, want %q", record.TraceID, wantTID)
	}

	spans := tr.Drain()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	byID := make(map[string]obs.Span, len(spans))
	var root *obs.Span
	counts := map[string]int{}
	for i, s := range spans {
		if s.TraceID != wantTID {
			t.Fatalf("span %s in trace %q, want every span in %q", s.Name, s.TraceID, wantTID)
		}
		if s.SpanID == "" {
			t.Fatalf("span %s has no span ID", s.Name)
		}
		if s.ParentID == "" {
			if root != nil {
				t.Fatalf("two root spans: %s and %s", root.Name, s.Name)
			}
			root = &spans[i]
		}
		byID[s.SpanID] = s
		counts[s.Name]++
	}
	if root == nil || root.Name != obs.SpanNetDay {
		t.Fatalf("root span = %+v, want a %s span", root, obs.SpanNetDay)
	}
	// One day span, preference + consumption + payment phases, one
	// settle span, and one agent span per household per phase.
	if counts[obs.SpanNetDay] != 1 || counts[obs.SpanNetPhase] != 3 || counts[obs.SpanNetSettle] != 1 {
		t.Errorf("center span counts %v, want 1 day / 3 phase / 1 settle", counts)
	}
	if want := 3 * len(traceTestTypes); counts[obs.SpanNetAgentPhase] != want {
		t.Errorf("%d agent spans, want %d", counts[obs.SpanNetAgentPhase], want)
	}
	for _, s := range spans {
		if s.ParentID == "" {
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok {
			t.Errorf("span %s (%s) has parent %s not in the trace", s.Name, s.SpanID, s.ParentID)
			continue
		}
		switch s.Name {
		case obs.SpanNetPhase, obs.SpanNetSettle:
			if parent.Name != obs.SpanNetDay {
				t.Errorf("%s parented under %s, want %s", s.Name, parent.Name, obs.SpanNetDay)
			}
		case obs.SpanNetAgentPhase:
			if parent.Name != obs.SpanNetPhase {
				t.Errorf("agent span parented under %s, want %s", parent.Name, obs.SpanNetPhase)
			}
		}
	}
}

// TestTraceIdentitiesReproducible runs the same seeded day on two
// independent center/agent sets and requires identical span identity
// multisets: trace and span IDs are derived, never random, so replays
// name the same spans.
func TestTraceIdentitiesReproducible(t *testing.T) {
	runOnce := func() []string {
		tr := obs.DefaultTracer()
		tr.Drain()
		tr.Enable()
		defer tr.Disable()

		cfg := CenterConfig{
			Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
			Pricer:       quad,
			Mechanism:    mechanism.DefaultConfig(),
			Rating:       2,
			ReplyTimeout: 5 * time.Second,
			TraceSeed:    7,
		}
		c, err := NewCenter("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		agents := dialTruthful(t, c)
		if _, err := c.RunDay(1); err != nil {
			t.Fatal(err)
		}
		waitForHistories(t, agents, 1)
		return tr.Identities()
	}

	first := runOnce()
	second := runOnce()
	if len(first) == 0 {
		t.Fatal("no span identities collected")
	}
	if len(first) != len(second) {
		t.Fatalf("identity counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("identity %d differs:\n  %s\n  %s", i, first[i], second[i])
		}
	}
}

// TestLedgerDeterministicBytesAndAudit runs the same seeded days on two
// independent centers writing audit ledgers, and requires (a) byte-
// identical ledger files and (b) a clean Eq. 4–7 audit of every entry.
func TestLedgerDeterministicBytesAndAudit(t *testing.T) {
	runOnce := func() *bytes.Buffer {
		var buf bytes.Buffer
		cfg := CenterConfig{
			Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
			Pricer:       quad,
			Mechanism:    mechanism.DefaultConfig(),
			Rating:       2,
			ReplyTimeout: 5 * time.Second,
			TraceSeed:    99,
			Ledger:       NewJournal(&buf),
		}
		c, err := NewCenter("127.0.0.1:0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		dialTruthful(t, c)
		for day := 1; day <= 3; day++ {
			if _, err := c.RunDay(day); err != nil {
				t.Fatalf("day %d: %v", day, err)
			}
		}
		return &buf
	}

	first := runOnce()
	second := runOnce()
	if first.Len() == 0 {
		t.Fatal("empty ledger")
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("ledger bytes differ between identical seeded runs")
	}

	entries, err := mechanism.ReadLedger(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("ledger has %d entries, want 3", len(entries))
	}
	for _, e := range entries {
		if e.TraceID != obs.DeriveTraceID(99, uint64(e.Day)) {
			t.Errorf("day %d ledger entry trace ID %q not the derived day trace", e.Day, e.TraceID)
		}
		if bad := e.Audit(); len(bad) != 0 {
			t.Errorf("day %d audit found mismatches: %v", e.Day, bad)
		}
	}
}
