package netproto

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/obs"
)

// reportingTypes is a small deterministic neighborhood for the TCP
// federation tests.
var reportingTypes = []core.Type{
	{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
	{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
	{True: core.MustPreference(8, 14, 2), ValuationFactor: 2},
}

// startReportingPair starts a center with the given center options and
// one truthful agent per reportingTypes entry with the given agent
// options. The lists are separate because options validate their
// targets: both must carry WithMetricsReporting for reporting tests so
// the two sides agree.
func startReportingPair(t *testing.T, agentOpts []Option, centerOpts ...Option) *Center {
	t.Helper()
	c, err := StartCenter("127.0.0.1:0", centerOpts...)
	if err != nil {
		t.Fatalf("StartCenter: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	for i, typ := range reportingTypes {
		a, err := Connect(context.Background(), c.Addr(), core.HouseholdID(i), &Truthful{Type: typ}, agentOpts...)
		if err != nil {
			t.Fatalf("connect agent %d: %v", i, err)
		}
		t.Cleanup(func() { a.Close() })
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.WaitForAgentsContext(ctx, len(reportingTypes)); err != nil {
		t.Fatalf("WaitForAgents: %v", err)
	}
	return c
}

// TestCenterReportingFederatesAgentSnapshots: with reporting on, every
// agent piggybacks its cumulative snapshot onto the consumption phase,
// and by the time a day settles the center's federation holds one
// up-to-date source per agent. Day 2's snapshots carry day 1's payment
// feedback, so the merged days-settled counter equals the agent count.
func TestCenterReportingFederatesAgentSnapshots(t *testing.T) {
	c := startReportingPair(t, []Option{WithMetricsReporting(true)},
		WithMetricsReporting(true), WithPhaseDeadline(5*time.Second))
	for day := 1; day <= 2; day++ {
		if _, err := c.RunDayContext(context.Background(), day); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
	}
	fed := c.Federation()
	if fed == nil {
		t.Fatal("reporting on but Federation() is nil")
	}
	snap := fed.Snapshot()
	if len(snap.Sources) != len(reportingTypes) {
		t.Fatalf("federated sources = %d, want %d (%v)", len(snap.Sources), len(reportingTypes), fed.Sources())
	}
	for i := range reportingTypes {
		src, ok := snap.Sources[fmt.Sprintf("agent/%d", i)]
		if !ok {
			t.Fatalf("agent/%d missing from federation (%v)", i, fed.Sources())
		}
		// Two days requested; the day-2 snapshot rides day 2's
		// consumption phase, after the day-2 request was handled.
		if got := src.Counters[obs.MetricAgentReportsTotal]; got != 2 {
			t.Errorf("agent/%d reports_total = %d, want 2", i, got)
		}
		// Day 1's payment lands before day 2's request on the same
		// ordered connection, so day 2's snapshot shows one settled day.
		if got := src.Counters[obs.MetricAgentDaysSettled]; got != 1 {
			t.Errorf("agent/%d days_settled = %d, want 1", i, got)
		}
	}
	merged := snap.Merged
	if got := merged.Counters[obs.MetricAgentReportsTotal]; got != uint64(2*len(reportingTypes)) {
		t.Errorf("merged reports_total = %d, want %d", got, 2*len(reportingTypes))
	}
	if got := merged.Counters[obs.MetricAgentDaysSettled]; got != uint64(len(reportingTypes)) {
		t.Errorf("merged days_settled = %d, want %d", got, len(reportingTypes))
	}
}

// TestCenterReportingOffKeepsWireClean: without the option the agent
// sends no metricsReport messages and the center exposes no federation —
// the default wire stream is unchanged, keeping fault-plan indices and
// existing chaos plans valid.
func TestCenterReportingOffKeepsWireClean(t *testing.T) {
	c := startReportingPair(t, nil)
	if _, err := c.RunDayContext(context.Background(), 1); err != nil {
		t.Fatalf("day 1: %v", err)
	}
	if c.Federation() != nil {
		t.Error("Federation() non-nil with reporting off")
	}
	op := c.Operator()
	srv := httptest.NewServer(op.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/federation")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/api/v1/federation = %d with reporting off, want 404", resp.StatusCode)
	}
}

// TestCenterOperatorServesLiveDay drives the full operator plane against
// a real settled day: readiness gating, day status, the single-shard
// health table, the audit-ledger tail with its Theorem 1 residual, the
// SLO report, and the federated view.
func TestCenterOperatorServesLiveDay(t *testing.T) {
	var ledgerBuf bytes.Buffer
	ledger := NewJournal(&ledgerBuf)
	c := startReportingPair(t, []Option{WithMetricsReporting(true)},
		WithMetricsReporting(true),
		WithSLO(),
		WithLedger(ledger),
		WithTraceSeed(3),
		WithPhaseDeadline(5*time.Second),
	)
	op := c.Operator()
	srv := httptest.NewServer(op.Handler())
	defer srv.Close()

	get := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if v != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("decode %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	if code := get("/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", code)
	}
	op.SetReady(true)
	if code := get("/readyz", nil); code != http.StatusOK {
		t.Errorf("/readyz after ready = %d, want 200", code)
	}

	if _, err := c.RunDayContext(context.Background(), 1); err != nil {
		t.Fatalf("day 1: %v", err)
	}

	var day obs.DayStatus
	if code := get("/api/v1/day", &day); code != http.StatusOK {
		t.Fatalf("/api/v1/day = %d", code)
	}
	if day.Phase != "settled" || day.DaysSettled != 1 || day.Day != 1 {
		t.Errorf("day status %+v, want settled day 1", day)
	}
	if math.Abs(day.LastResidual) > 1e-9 {
		t.Errorf("settled-day residual %g, want 0 (Theorem 1)", day.LastResidual)
	}

	var shards []obs.ShardStatus
	if code := get("/api/v1/shards", &shards); code != http.StatusOK {
		t.Fatalf("/api/v1/shards = %d", code)
	}
	if len(shards) != 1 || !shards[0].Healthy || shards[0].Settled != len(reportingTypes) {
		t.Errorf("shard table %+v, want one healthy shard with %d settled", shards, len(reportingTypes))
	}
	if math.Abs(shards[0].Residual) > 1e-9 {
		t.Errorf("shard residual %g, want 0", shards[0].Residual)
	}

	var tail []struct {
		Day     int     `json:"day"`
		Revenue float64 `json:"revenue"`
		Cost    float64 `json:"cost"`
		Xi      float64 `json:"xi"`
	}
	if code := get("/api/v1/ledger/tail?n=5", &tail); code != http.StatusOK {
		t.Fatalf("/api/v1/ledger/tail = %d", code)
	}
	if len(tail) != 1 || tail[0].Day != 1 {
		t.Fatalf("ledger tail %+v, want the one settled day", tail)
	}
	if residual := tail[0].Revenue - tail[0].Xi*tail[0].Cost; math.Abs(residual) > 1e-9 {
		t.Errorf("ledger-tail residual %g, want 0", residual)
	}

	var slo obs.SLOReport
	if code := get("/api/v1/slo", &slo); code != http.StatusOK {
		t.Fatalf("/api/v1/slo = %d", code)
	}
	if len(slo.Objectives) != len(obs.DefaultObjectives()) {
		t.Fatalf("slo objectives = %d, want %d", len(slo.Objectives), len(obs.DefaultObjectives()))
	}
	// The SLO engine reads the shared default registry, which other
	// tests in this binary also feed (degraded days, injected faults),
	// so only the budget identity — which nothing in the suite violates
	// — is asserted healthy; the rest are checked structurally.
	for _, o := range slo.Objectives {
		if len(o.Burn) != len(slo.Windows) {
			t.Errorf("objective %s has %d burn windows, want %d", o.Name, len(o.Burn), len(slo.Windows))
		}
		if o.Name == "budget-residual-zero" && !o.Healthy {
			t.Errorf("budget-residual-zero unhealthy: %+v", o)
		}
	}

	var fedView obs.FederatedSnapshot
	if code := get("/api/v1/federation", &fedView); code != http.StatusOK {
		t.Fatalf("/api/v1/federation = %d", code)
	}
	if len(fedView.Sources) != len(reportingTypes) {
		t.Errorf("federated sources = %d, want %d", len(fedView.Sources), len(reportingTypes))
	}
}

// TestChaosFederatedSnapshotDegradedShard is the observability chaos
// contract: a fault that degrades one shard (a dropped consumption
// frame → one substituted household) is visible in the federated
// snapshot under that shard's source, in the /api/v1/shards health
// table, and in the day status — while the settled bytes and the
// deterministic portion of the federated view stay bit-identical
// between the serial reference run and a parallel one.
func TestChaosFederatedSnapshotDegradedShard(t *testing.T) {
	// 64 households over 8 shards → 8 per shard. Shard 3's per-link
	// stream on day 1: requests 0–7, preferences 8–15, allocations
	// 16–23, consumptions 24–31 — dropping 24 substitutes exactly one
	// household. The trailing metricsReport (index 40) is untouched.
	type result struct {
		bytes  []byte
		fed    obs.FederatedSnapshot
		shards []obs.ShardStatus
		day    obs.DayStatus
	}
	run := func(workers int) result {
		plan := &FaultPlan{Actions: map[int]FaultAction{24: FaultDrop}}
		cluster := buildCluster(t, 64,
			WithShards(8),
			WithWorkers(workers),
			WithTraceSeed(5),
			WithMetricsReporting(true),
			WithShardFaultPlan(3, plan),
		)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for day := 1; day <= 2; day++ {
			rec, err := cluster.ClusterDay(context.Background(), day)
			if err != nil {
				t.Fatalf("workers=%d day %d: %v", workers, day, err)
			}
			if day == 1 {
				if rec.Shards[3].Substituted != 1 || rec.Shards[3].Err != "" {
					t.Fatalf("workers=%d shard 3 day 1: %+v, want 1 substitution, no error", workers, rec.Shards[3])
				}
				st := cluster.ShardStatuses()
				if len(st) != 8 || !st[3].Healthy || st[3].Substituted != 1 {
					t.Fatalf("workers=%d shard table after day 1: %+v", workers, st)
				}
				if ds := cluster.DayStatus(); ds.Dark != 1 {
					t.Errorf("workers=%d day status dark = %d, want 1", workers, ds.Dark)
				}
			}
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
		return result{buf.Bytes(), cluster.Federation().Snapshot(), cluster.ShardStatuses(), cluster.DayStatus()}
	}

	serial := run(1)
	if len(serial.fed.Sources) != 8 {
		t.Fatalf("federated sources = %d, want 8", len(serial.fed.Sources))
	}
	degraded, ok := serial.fed.Sources["shard/0003"]
	if !ok {
		t.Fatal("shard/0003 missing from federation")
	}
	if got := degraded.Counters[obs.MetricClusterSubstitutionsTotal]; got != 1 {
		t.Errorf("shard/0003 substitutions = %d, want 1 (day 1's dropped consumption)", got)
	}
	for s := 0; s < 8; s++ {
		if s == 3 {
			continue
		}
		src := serial.fed.Sources[fmt.Sprintf("shard/%04d", s)]
		if got := src.Counters[obs.MetricClusterSubstitutionsTotal]; got != 0 {
			t.Errorf("healthy shard %d shows %d substitutions", s, got)
		}
	}
	if got := serial.fed.Merged.Counters[obs.MetricClusterHouseholdsSettled]; got != 128 {
		t.Errorf("merged households settled = %d, want 128 (64 × 2 days)", got)
	}
	if got := serial.fed.Merged.Counters[obs.MetricClusterShardsSettled]; got != 16 {
		t.Errorf("merged shards settled = %d, want 16", got)
	}

	parallel := run(4)
	if !bytes.Equal(serial.bytes, parallel.bytes) {
		t.Error("settled bytes differ between Workers:1 and Workers:4 with reporting on")
	}
	if diffs := serial.fed.Merged.DiffDeterministic(parallel.fed.Merged); len(diffs) > 0 {
		t.Errorf("federated merge not deterministic across worker counts: %v", diffs)
	}
	for name, src := range serial.fed.Sources {
		if diffs := src.DiffDeterministic(parallel.fed.Sources[name]); len(diffs) > 0 {
			t.Errorf("source %s not deterministic across worker counts: %v", name, diffs)
		}
	}
}
