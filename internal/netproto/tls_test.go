package netproto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math"
	"math/big"
	"net"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/sched"
)

// selfSignedTLS builds an in-memory self-signed certificate for the
// loopback deployment test.
func selfSignedTLS(t *testing.T) (serverCfg, clientCfg *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	template := x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "enki-center"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &template, &template, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)

	serverCfg = &tls.Config{
		Certificates: []tls.Certificate{{
			Certificate: [][]byte{der},
			PrivateKey:  key,
		}},
		MinVersion: tls.VersionTLS13,
	}
	clientCfg = &tls.Config{
		RootCAs:    pool,
		ServerName: "127.0.0.1",
		MinVersion: tls.VersionTLS13,
	}
	return serverCfg, clientCfg
}

// TestDayCycleOverTLS runs the full Figure 1 protocol over TLS 1.3
// using the bring-your-own-transport constructors.
func TestDayCycleOverTLS(t *testing.T) {
	serverCfg, clientCfg := selfSignedTLS(t)

	ln, err := tls.Listen("tcp", "127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	center, err := NewCenterWithListener(ln, CenterConfig{
		Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:       quad,
		Mechanism:    mechanism.DefaultConfig(),
		Rating:       2,
		ReplyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
	}
	agents := make([]*Agent, len(types))
	for i, typ := range types {
		conn, err := tls.Dial("tcp", center.Addr(), clientCfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgent(conn, core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			conn.Close()
			t.Fatal(err)
		}
		agents[i] = a
		defer a.Close()
	}
	if err := center.WaitForAgents(len(types), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	for day := 1; day <= 2; day++ {
		record, err := center.RunDay(day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		var revenue float64
		for _, p := range record.Payments {
			revenue += p
		}
		if math.Abs(revenue-mechanism.DefaultXi*record.Cost) > 1e-6 {
			t.Errorf("day %d over TLS: revenue %g != ξκ %g", day, revenue, mechanism.DefaultXi*record.Cost)
		}
	}
}

// TestTLSRejectsPlaintextClient: a plaintext client cannot register on
// a TLS listener.
func TestTLSRejectsPlaintextClient(t *testing.T) {
	serverCfg, _ := selfSignedTLS(t)
	ln, err := tls.Listen("tcp", "127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	center, err := NewCenterWithListener(ln, CenterConfig{
		Scheduler: &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:    quad,
		Mechanism: mechanism.DefaultConfig(),
		Rating:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()

	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	if _, err := Dial(center.Addr(), 0, &Truthful{Type: typ}); err == nil {
		t.Error("plaintext Dial against a TLS center should fail")
	}
}
