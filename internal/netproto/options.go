package netproto

import (
	"context"
	"net"
	"time"

	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// DialFunc establishes one transport connection to the center. The
// default dials plain TCP; supply your own (via WithDialer) for TLS or
// test transports. Agents call it again on every reconnect attempt.
type DialFunc func(ctx context.Context) (net.Conn, error)

// agentConfig is the agent side of the option set.
type agentConfig struct {
	retry RetryPolicy
	plan  *FaultPlan
	dial  DialFunc
}

// options is the combined center/agent option state. One Option type
// serves both constructors — an option that only concerns the other
// side is simply inert, so a test can build one shared option list
// (say, a fault plan plus a phase deadline) and hand it to both ends.
type options struct {
	center CenterConfig
	agent  agentConfig
}

// Option configures StartCenter, StartCenterListener, Connect, and
// NewAgent. Options meaningful to only one side are no-ops on the
// other.
type Option func(*options)

// defaultOptions is the options-based constructors' starting point: the
// quadratic pricer from the paper's evaluation, the default mechanism
// parameters, and a 2 kW appliance rating. The scheduler defaults to
// Greedy over the final pricer and rating, resolved after every option
// has applied (see resolveCenter).
func defaultOptions() *options {
	return &options{
		center: CenterConfig{
			Pricer:    pricing.Quadratic{Sigma: pricing.DefaultSigma},
			Mechanism: mechanism.DefaultConfig(),
			Rating:    2,
		},
	}
}

// resolveCenter finalizes the center config once all options have
// applied: a nil scheduler becomes Greedy over the configured pricer
// and rating, so WithPricer/WithRating compose with the default
// scheduler instead of being ignored by a prematurely built one.
func (o *options) resolveCenter() CenterConfig {
	cfg := o.center
	if cfg.Scheduler == nil {
		cfg.Scheduler = &sched.Greedy{Pricer: cfg.Pricer, Rating: cfg.Rating}
	}
	return cfg
}

// WithScheduler sets the center's allocation scheduler (default:
// sched.Greedy over the configured pricer and rating).
func WithScheduler(s sched.Scheduler) Option {
	return func(o *options) { o.center.Scheduler = s }
}

// WithPricer sets the hourly pricing function on the center (default:
// the paper's quadratic pricer).
func WithPricer(p pricing.Pricer) Option {
	return func(o *options) { o.center.Pricer = p }
}

// WithMechanism sets the mechanism's payment-scaling parameters
// (default: mechanism.DefaultConfig).
func WithMechanism(m mechanism.Config) Option {
	return func(o *options) { o.center.Mechanism = m }
}

// WithRating sets the per-household appliance power rating in kW
// (default: 2).
func WithRating(r float64) Option {
	return func(o *options) { o.center.Rating = r }
}

// WithPhaseDeadline bounds each protocol phase on the center: a
// household that has not answered when the deadline expires is settled
// dark — excluded from the day if it never reported, imputed via the
// Eq. 5 defector path if it reported and then vanished. Default:
// DefaultPhaseDeadline.
func WithPhaseDeadline(d time.Duration) Option {
	return func(o *options) { o.center.PhaseDeadline = d }
}

// WithTraceSeed sets the seed for the center's deterministic per-day
// trace IDs and session tokens.
func WithTraceSeed(seed uint64) Option {
	return func(o *options) { o.center.TraceSeed = seed }
}

// WithLedger directs the center's per-day audit-ledger entries to j.
func WithLedger(j *Journal) Option {
	return func(o *options) { o.center.Ledger = j }
}

// WithFaultPlan installs a deterministic fault-injection schedule on
// outbound messages — per accepted connection on a center, across the
// whole message stream (reconnects included) on an agent. Nil restores
// fault-free delivery.
func WithFaultPlan(p *FaultPlan) Option {
	return func(o *options) {
		o.center.FaultPlan = p
		o.agent.plan = p
	}
}

// WithRetryPolicy enables agent-side reconnection with the given
// bounded-backoff policy. Agents without a policy (the default) treat
// the first link failure as terminal, matching the pre-fault-tolerance
// behaviour.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(o *options) { o.agent.retry = p }
}

// WithDialer replaces the agent's transport dialer (default: plain TCP
// to the Connect address). Reconnect attempts reuse it, so a TLS agent
// keeps TLS across resumes.
func WithDialer(d DialFunc) Option {
	return func(o *options) { o.agent.dial = d }
}
