package netproto

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// DialFunc establishes one transport connection to the center. The
// default dials plain TCP; supply your own (via WithDialer) for TLS or
// test transports. Agents call it again on every reconnect attempt.
type DialFunc func(ctx context.Context) (net.Conn, error)

// agentConfig is the agent side of the option set.
type agentConfig struct {
	retry     RetryPolicy
	plan      *FaultPlan
	dial      DialFunc
	codecs    []string // batch-frame codecs offered on the hello
	reporting bool     // piggyback per-agent obs snapshots on the consumption phase
}

// replicaConfig is the replica-set side of the option set.
type replicaConfig struct {
	n             int           // replica count, odd (2f+1)
	leaderID      int           // initial leader replica ID
	quorumTimeout time.Duration // per-follower deadline on append/commit round trips
}

// target is the bitmask of constructors an option applies to. Every
// option declares its targets so a constructor can reject options that
// would otherwise be silently ignored (e.g. WithShards on Connect).
type target uint8

const (
	targetCenter target = 1 << iota
	targetAgent
	targetCluster
	targetReplica
)

// constructors names the constructor functions a target mask covers, in
// a fixed order, for validation error messages.
func (t target) constructors() string {
	var names []string
	if t&targetCenter != 0 {
		names = append(names, "StartCenter")
	}
	if t&targetAgent != 0 {
		names = append(names, "Connect/NewAgent")
	}
	if t&targetCluster != 0 {
		names = append(names, "StartCluster")
	}
	if t&targetReplica != 0 {
		names = append(names, "StartReplicaSet")
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// appliedOption records one applied With* option for target validation.
type appliedOption struct {
	name    string
	targets target
}

// options is the combined center/agent/cluster/replica option state.
// One Option type serves every constructor; each constructor validates
// that every applied option actually targets it, so a misplaced option
// is a descriptive error instead of a silent no-op.
type options struct {
	center  CenterConfig
	agent   agentConfig
	cluster ClusterConfig
	replica replicaConfig
	applied []appliedOption
}

// Option configures StartCenter, StartCenterListener, Connect,
// NewAgent, StartCluster, and StartReplicaSet. Each option declares
// which constructors it targets; passing it elsewhere returns a
// descriptive error from the constructor.
type Option func(*options)

// option wraps an apply function with its name and target mask so
// constructors can validate the applied set.
func option(name string, targets target, apply func(*options)) Option {
	return func(o *options) {
		o.applied = append(o.applied, appliedOption{name: name, targets: targets})
		apply(o)
	}
}

// validate checks every applied option against the constructor's
// target, returning a descriptive error for the first mismatch.
func (o *options) validate(ctor string, t target) error {
	for _, a := range o.applied {
		if a.targets&t == 0 {
			return fmt.Errorf("netproto: %s does not apply to %s (it configures %s)",
				a.name, ctor, a.targets.constructors())
		}
	}
	return nil
}

// Replica-set defaults.
const (
	// DefaultReplicas is the replica count without WithReplicas: 2f+1
	// with f=1, the smallest set that survives one center crash.
	DefaultReplicas = 3
	// DefaultQuorumTimeout bounds each append/commit round trip to one
	// follower before the leader counts it as unreachable.
	DefaultQuorumTimeout = 2 * time.Second
)

// defaultOptions is the options-based constructors' starting point: the
// quadratic pricer from the paper's evaluation, the default mechanism
// parameters, and a 2 kW appliance rating. The scheduler defaults to
// Greedy over the final pricer and rating, resolved after every option
// has applied (see resolveCenter).
func defaultOptions() *options {
	return &options{
		center: CenterConfig{
			Pricer:    pricing.Quadratic{Sigma: pricing.DefaultSigma},
			Mechanism: mechanism.DefaultConfig(),
			Rating:    2,
			Codec:     CodecJSON,
		},
		agent: agentConfig{
			codecs: CodecNames(),
		},
		cluster: ClusterConfig{
			Shards:    1,
			BatchSize: DefaultBatchSize,
			Records:   true,
		},
		replica: replicaConfig{
			n:             DefaultReplicas,
			leaderID:      0,
			quorumTimeout: DefaultQuorumTimeout,
		},
	}
}

// resolveCenter finalizes the center config once all options have
// applied: a nil scheduler becomes Greedy over the configured pricer
// and rating, so WithPricer/WithRating compose with the default
// scheduler instead of being ignored by a prematurely built one.
func (o *options) resolveCenter() CenterConfig {
	cfg := o.center
	if cfg.Scheduler == nil {
		cfg.Scheduler = &sched.Greedy{Pricer: cfg.Pricer, Rating: cfg.Rating}
	}
	return cfg
}

// settlementTargets is the mask for options that configure how a day
// settles — meaningful wherever a center runs, including inside a
// cluster shard or a replica set.
const settlementTargets = targetCenter | targetCluster | targetReplica

// WithScheduler sets the center's allocation scheduler (default:
// sched.Greedy over the configured pricer and rating).
func WithScheduler(s sched.Scheduler) Option {
	return option("WithScheduler", settlementTargets, func(o *options) { o.center.Scheduler = s })
}

// WithPricer sets the hourly pricing function on the center (default:
// the paper's quadratic pricer).
func WithPricer(p pricing.Pricer) Option {
	return option("WithPricer", settlementTargets, func(o *options) { o.center.Pricer = p })
}

// WithMechanism sets the mechanism's payment-scaling parameters
// (default: mechanism.DefaultConfig).
func WithMechanism(m mechanism.Config) Option {
	return option("WithMechanism", settlementTargets, func(o *options) { o.center.Mechanism = m })
}

// WithRating sets the per-household appliance power rating in kW
// (default: 2).
func WithRating(r float64) Option {
	return option("WithRating", settlementTargets, func(o *options) { o.center.Rating = r })
}

// WithPhaseDeadline bounds each protocol phase on the center: a
// household that has not answered when the deadline expires is settled
// dark — excluded from the day if it never reported, imputed via the
// Eq. 5 defector path if it reported and then vanished. Default:
// DefaultPhaseDeadline.
func WithPhaseDeadline(d time.Duration) Option {
	return option("WithPhaseDeadline", settlementTargets, func(o *options) { o.center.PhaseDeadline = d })
}

// WithTraceSeed sets the seed for the center's deterministic per-day
// trace IDs and session tokens.
func WithTraceSeed(seed uint64) Option {
	return option("WithTraceSeed", settlementTargets, func(o *options) { o.center.TraceSeed = seed })
}

// WithLedger directs the center's per-day audit-ledger entries to j. On
// a replica set j receives the quorum-committed merged ledger: every
// committed day exactly once, across failovers.
func WithLedger(j *Journal) Option {
	return option("WithLedger", settlementTargets, func(o *options) { o.center.Ledger = j })
}

// WithFaultPlan installs a deterministic fault-injection schedule on
// outbound messages — per accepted connection on a center, across the
// whole message stream (reconnects included) on an agent. Nil restores
// fault-free delivery.
func WithFaultPlan(p *FaultPlan) Option {
	return option("WithFaultPlan", targetCenter|targetAgent|targetReplica, func(o *options) {
		o.center.FaultPlan = p
		o.agent.plan = p
	})
}

// WithRetryPolicy enables agent-side reconnection with the given
// bounded-backoff policy. Agents without a policy (the default) treat
// the first link failure as terminal, matching the pre-fault-tolerance
// behaviour.
func WithRetryPolicy(p RetryPolicy) Option {
	return option("WithRetryPolicy", targetAgent, func(o *options) { o.agent.retry = p })
}

// WithDialer replaces the agent's transport dialer (default: plain TCP
// to the Connect address). Reconnect attempts reuse it, so a TLS agent
// keeps TLS across resumes — and a replica-set agent keeps following
// the current leader (see ReplicaSet.Dialer).
func WithDialer(d DialFunc) Option {
	return option("WithDialer", targetAgent, func(o *options) { o.agent.dial = d })
}

// WithCodec sets the batch-frame codec (CodecJSON or CodecBinary) the
// center — or every shard link of a cluster — encodes with. On a TCP
// center the codec still has to be negotiated: a connection whose agent
// offers nothing stays on the legacy per-message JSON framing. Default:
// CodecJSON.
func WithCodec(name string) Option {
	return option("WithCodec", settlementTargets, func(o *options) {
		o.center.Codec = name
		o.cluster.Codec = name
	})
}

// WithMetricsReporting enables obs federation on both sides of the
// protocol: agents piggyback a cumulative per-agent snapshot on every
// consumption phase, cluster shards append theirs to the payment batch,
// and the center (or cluster) folds every report into the federated
// registry behind /api/v1/federation. Default off — the extra wire
// messages shift fault-plan indices, so chaos plans written against the
// plain stream stay valid unless a test opts in.
func WithMetricsReporting(on bool) Option {
	return option("WithMetricsReporting", settlementTargets|targetAgent, func(o *options) {
		o.center.Reporting = on
		o.agent.reporting = on
	})
}

// WithSLO installs the burn-rate objectives the center's operator plane
// evaluates on every /api/v1/slo scrape. Called with no arguments it
// installs obs.DefaultObjectives. Without this option the endpoint
// serves 404.
func WithSLO(objectives ...obs.Objective) Option {
	return option("WithSLO", settlementTargets, func(o *options) {
		if len(objectives) == 0 {
			objectives = obs.DefaultObjectives()
		}
		o.center.SLO = objectives
	})
}

// WithShards partitions a cluster's households into n neighborhoods,
// each settled as its own independent mechanism day (default 1 — the
// single-neighborhood special case).
func WithShards(n int) Option {
	return option("WithShards", targetCluster, func(o *options) { o.cluster.Shards = n })
}

// WithBatchSize caps the messages carried per batch frame on cluster
// shard links (default DefaultBatchSize; 1 degenerates to unbatched
// framing, the baseline the BENCH_net delta is measured against).
func WithBatchSize(n int) Option {
	return option("WithBatchSize", targetCluster, func(o *options) { o.cluster.BatchSize = n })
}

// WithWorkers sets the worker-pool size a cluster settles shards with
// (default 0 = GOMAXPROCS; the Workers:1≡Workers:N contract guarantees
// the count never changes any settled byte).
func WithWorkers(n int) Option {
	return option("WithWorkers", targetCluster, func(o *options) { o.cluster.Workers = n })
}

// WithShardRecords controls whether ClusterDay retains every shard's
// full per-household DayRecord (default true). Disabled, a day keeps
// only the per-shard summaries — the memory-bounded mode the
// million-household enkiload runs use.
func WithShardRecords(keep bool) Option {
	return option("WithShardRecords", targetCluster, func(o *options) { o.cluster.Records = keep })
}

// WithShardFaultPlan injects a deterministic fault plan into one
// shard's link (chaos testing): message indexes count per shard per
// day-phase stream, so a plan names the same messages on every run.
// Sibling shards are untouched.
func WithShardFaultPlan(shard int, plan *FaultPlan) Option {
	return option("WithShardFaultPlan", targetCluster, func(o *options) {
		if o.cluster.ShardFaults == nil {
			o.cluster.ShardFaults = make(map[int]*FaultPlan)
		}
		o.cluster.ShardFaults[shard] = plan
	})
}

// WithReplicas sets the replica count of a StartReplicaSet — 2f+1
// centers surviving f crashes (default DefaultReplicas = 3). The count
// must be odd and positive so every quorum is a strict majority.
func WithReplicas(n int) Option {
	return option("WithReplicas", targetReplica, func(o *options) { o.replica.n = n })
}

// WithReplicaID sets the replica that leads at start-up (default 0).
// After a failover leadership always falls to the lowest live ID,
// regardless of who led first.
func WithReplicaID(id int) Option {
	return option("WithReplicaID", targetReplica, func(o *options) { o.replica.leaderID = id })
}

// WithQuorumTimeout bounds each append/commit round trip to one
// follower (default DefaultQuorumTimeout). A follower that misses the
// deadline does not count toward the entry's quorum.
func WithQuorumTimeout(d time.Duration) Option {
	return option("WithQuorumTimeout", targetReplica, func(o *options) { o.replica.quorumTimeout = d })
}
