package netproto

import (
	"context"
	"net"
	"time"

	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// DialFunc establishes one transport connection to the center. The
// default dials plain TCP; supply your own (via WithDialer) for TLS or
// test transports. Agents call it again on every reconnect attempt.
type DialFunc func(ctx context.Context) (net.Conn, error)

// agentConfig is the agent side of the option set.
type agentConfig struct {
	retry     RetryPolicy
	plan      *FaultPlan
	dial      DialFunc
	codecs    []string // batch-frame codecs offered on the hello
	reporting bool     // piggyback per-agent obs snapshots on the consumption phase
}

// options is the combined center/agent/cluster option state. One Option
// type serves every constructor — an option that only concerns another
// surface is simply inert, so a test can build one shared option list
// (say, a fault plan plus a phase deadline) and hand it to both ends.
type options struct {
	center  CenterConfig
	agent   agentConfig
	cluster ClusterConfig
}

// Option configures StartCenter, StartCenterListener, Connect, and
// NewAgent. Options meaningful to only one side are no-ops on the
// other.
type Option func(*options)

// defaultOptions is the options-based constructors' starting point: the
// quadratic pricer from the paper's evaluation, the default mechanism
// parameters, and a 2 kW appliance rating. The scheduler defaults to
// Greedy over the final pricer and rating, resolved after every option
// has applied (see resolveCenter).
func defaultOptions() *options {
	return &options{
		center: CenterConfig{
			Pricer:    pricing.Quadratic{Sigma: pricing.DefaultSigma},
			Mechanism: mechanism.DefaultConfig(),
			Rating:    2,
			Codec:     CodecJSON,
		},
		agent: agentConfig{
			codecs: CodecNames(),
		},
		cluster: ClusterConfig{
			Shards:    1,
			BatchSize: DefaultBatchSize,
			Records:   true,
		},
	}
}

// resolveCenter finalizes the center config once all options have
// applied: a nil scheduler becomes Greedy over the configured pricer
// and rating, so WithPricer/WithRating compose with the default
// scheduler instead of being ignored by a prematurely built one.
func (o *options) resolveCenter() CenterConfig {
	cfg := o.center
	if cfg.Scheduler == nil {
		cfg.Scheduler = &sched.Greedy{Pricer: cfg.Pricer, Rating: cfg.Rating}
	}
	return cfg
}

// WithScheduler sets the center's allocation scheduler (default:
// sched.Greedy over the configured pricer and rating).
func WithScheduler(s sched.Scheduler) Option {
	return func(o *options) { o.center.Scheduler = s }
}

// WithPricer sets the hourly pricing function on the center (default:
// the paper's quadratic pricer).
func WithPricer(p pricing.Pricer) Option {
	return func(o *options) { o.center.Pricer = p }
}

// WithMechanism sets the mechanism's payment-scaling parameters
// (default: mechanism.DefaultConfig).
func WithMechanism(m mechanism.Config) Option {
	return func(o *options) { o.center.Mechanism = m }
}

// WithRating sets the per-household appliance power rating in kW
// (default: 2).
func WithRating(r float64) Option {
	return func(o *options) { o.center.Rating = r }
}

// WithPhaseDeadline bounds each protocol phase on the center: a
// household that has not answered when the deadline expires is settled
// dark — excluded from the day if it never reported, imputed via the
// Eq. 5 defector path if it reported and then vanished. Default:
// DefaultPhaseDeadline.
func WithPhaseDeadline(d time.Duration) Option {
	return func(o *options) { o.center.PhaseDeadline = d }
}

// WithTraceSeed sets the seed for the center's deterministic per-day
// trace IDs and session tokens.
func WithTraceSeed(seed uint64) Option {
	return func(o *options) { o.center.TraceSeed = seed }
}

// WithLedger directs the center's per-day audit-ledger entries to j.
func WithLedger(j *Journal) Option {
	return func(o *options) { o.center.Ledger = j }
}

// WithFaultPlan installs a deterministic fault-injection schedule on
// outbound messages — per accepted connection on a center, across the
// whole message stream (reconnects included) on an agent. Nil restores
// fault-free delivery.
func WithFaultPlan(p *FaultPlan) Option {
	return func(o *options) {
		o.center.FaultPlan = p
		o.agent.plan = p
	}
}

// WithRetryPolicy enables agent-side reconnection with the given
// bounded-backoff policy. Agents without a policy (the default) treat
// the first link failure as terminal, matching the pre-fault-tolerance
// behaviour.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(o *options) { o.agent.retry = p }
}

// WithDialer replaces the agent's transport dialer (default: plain TCP
// to the Connect address). Reconnect attempts reuse it, so a TLS agent
// keeps TLS across resumes.
func WithDialer(d DialFunc) Option {
	return func(o *options) { o.agent.dial = d }
}

// WithCodec sets the batch-frame codec (CodecJSON or CodecBinary) the
// center — or every shard link of a cluster — encodes with. On a TCP
// center the codec still has to be negotiated: a connection whose agent
// offers nothing stays on the legacy per-message JSON framing. Default:
// CodecJSON.
func WithCodec(name string) Option {
	return func(o *options) {
		o.center.Codec = name
		o.cluster.Codec = name
	}
}

// WithMetricsReporting enables obs federation on both sides of the
// protocol: agents piggyback a cumulative per-agent snapshot on every
// consumption phase, cluster shards append theirs to the payment batch,
// and the center (or cluster) folds every report into the federated
// registry behind /api/v1/federation. Default off — the extra wire
// messages shift fault-plan indices, so chaos plans written against the
// plain stream stay valid unless a test opts in.
func WithMetricsReporting(on bool) Option {
	return func(o *options) {
		o.center.Reporting = on
		o.agent.reporting = on
	}
}

// WithSLO installs the burn-rate objectives the center's operator plane
// evaluates on every /api/v1/slo scrape. Called with no arguments it
// installs obs.DefaultObjectives. Without this option the endpoint
// serves 404.
func WithSLO(objectives ...obs.Objective) Option {
	return func(o *options) {
		if len(objectives) == 0 {
			objectives = obs.DefaultObjectives()
		}
		o.center.SLO = objectives
	}
}

// WithShards partitions a cluster's households into n neighborhoods,
// each settled as its own independent mechanism day (default 1 — the
// single-neighborhood special case).
func WithShards(n int) Option {
	return func(o *options) { o.cluster.Shards = n }
}

// WithBatchSize caps the messages carried per batch frame on cluster
// shard links (default DefaultBatchSize; 1 degenerates to unbatched
// framing, the baseline the BENCH_net delta is measured against).
func WithBatchSize(n int) Option {
	return func(o *options) { o.cluster.BatchSize = n }
}

// WithWorkers sets the worker-pool size a cluster settles shards with
// (default 0 = GOMAXPROCS; the Workers:1≡Workers:N contract guarantees
// the count never changes any settled byte).
func WithWorkers(n int) Option {
	return func(o *options) { o.cluster.Workers = n }
}

// WithShardRecords controls whether ClusterDay retains every shard's
// full per-household DayRecord (default true). Disabled, a day keeps
// only the per-shard summaries — the memory-bounded mode the
// million-household enkiload runs use.
func WithShardRecords(keep bool) Option {
	return func(o *options) { o.cluster.Records = keep }
}

// WithShardFaultPlan injects a deterministic fault plan into one
// shard's link (chaos testing): message indexes count per shard per
// day-phase stream, so a plan names the same messages on every run.
// Sibling shards are untouched.
func WithShardFaultPlan(shard int, plan *FaultPlan) Option {
	return func(o *options) {
		if o.cluster.ShardFaults == nil {
			o.cluster.ShardFaults = make(map[int]*FaultPlan)
		}
		o.cluster.ShardFaults[shard] = plan
	}
}
