package netproto

import (
	"errors"

	"enki/internal/replica"
)

// Sentinel errors of the settlement protocol, re-exported through the
// public net facade so callers branch with errors.Is instead of string
// matching. Every error returned on these paths wraps its sentinel.
var (
	// ErrNotLeader marks an operation that reached a replica which is
	// not the current leader — a registration against a follower, or a
	// replication append from a deposed leader. Shared with
	// internal/replica so errors.Is matches across both layers.
	ErrNotLeader = replica.ErrNotLeader

	// ErrQuorumLost marks a replicated operation that could not reach a
	// majority of the replica set: the day cannot commit and fails
	// rather than settling unreplicated.
	ErrQuorumLost = errors.New("netproto: quorum lost")

	// ErrSessionExpired marks a session-resumption handshake the center
	// rejected: the presented token no longer matches the session (the
	// ID re-registered fresh, bumping the epoch, or the token is simply
	// wrong).
	ErrSessionExpired = errors.New("netproto: session expired")

	// ErrRetryExhausted marks an agent whose retry policy ran out of
	// reconnect attempts; the agent is terminal and Err returns an
	// error wrapping this sentinel.
	ErrRetryExhausted = errors.New("netproto: retry attempts exhausted")
)
