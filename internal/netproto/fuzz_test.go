package netproto

import (
	"bytes"
	"reflect"
	"testing"
	"unicode/utf8"

	"enki/internal/core"
	"enki/internal/obs"
)

// FuzzReadMessage feeds arbitrary bytes to the frame decoder: it must
// never panic and never return both a message and an error.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	pref := core.MustPreference(18, 22, 2)
	_ = WriteMessage(&seed, &Message{Kind: KindPreference, ID: 1, Day: 3, Pref: &pref})
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte(`{"kind":"hello"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

// FuzzRoundTrip: any message the writer accepts must decode back to an
// identical frame — in the legacy framing and through each batch-frame
// codec.
func FuzzRoundTrip(f *testing.F) {
	f.Add("hello", int64(3), 7, "some error")
	f.Add("payment", int64(0), 0, "")
	f.Fuzz(func(t *testing.T, kind string, id int64, day int, errStr string) {
		if !utf8.ValidString(kind) || !utf8.ValidString(errStr) {
			t.Skip() // JSON normalizes invalid UTF-8 to U+FFFD, so it cannot round-trip
		}
		in := &Message{Kind: Kind(kind), ID: core.HouseholdID(id), Day: day, Err: errStr}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			t.Skip() // oversized or unencodable inputs are rejected by contract
		}
		out, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("wrote but could not read back: %v", err)
		}
		if out.Kind != in.Kind || out.ID != in.ID || out.Day != in.Day || out.Err != in.Err {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
		for _, name := range CodecNames() {
			c, _ := LookupCodec(name)
			enc, err := c.Append(nil, in)
			if err != nil {
				t.Fatalf("%s encode: %v", name, err)
			}
			dec, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s wrote but could not decode back: %v", name, err)
			}
			if !reflect.DeepEqual(in, dec) {
				t.Fatalf("%s round trip mismatch: %+v vs %+v", name, dec, in)
			}
		}
	})
}

// FuzzDecodeBatch feeds arbitrary bytes to the batch-frame decoder
// (codec ID, message count, per-message lengths, codec payloads): it
// must never panic and never return messages alongside an error.
func FuzzDecodeBatch(f *testing.F) {
	pref := core.MustPreference(18, 22, 2)
	for _, name := range []string{CodecJSON, CodecBinary} {
		c, _ := LookupCodec(name)
		frame, err := AppendBatch(nil, c, []*Message{
			{Kind: KindRequest, ID: 1, Day: 2},
			{Kind: KindPreference, ID: 1, Day: 2, Pref: &pref},
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, payload []byte) {
		msgs, err := DecodeBatch(payload)
		if err != nil && msgs != nil {
			t.Fatal("messages returned alongside an error")
		}
		if err == nil {
			for _, m := range msgs {
				if m == nil {
					t.Fatal("nil message in decoded batch")
				}
			}
		}
	})
}

// FuzzCodecDifferential is the cross-codec oracle: the same message
// encoded by the JSON codec and by the binary codec must decode to the
// same value — any divergence is a bug in one of them. The message is
// assembled from fuzzed fields including the optional structs.
func FuzzCodecDifferential(f *testing.F) {
	f.Add("preference", int64(1), 2, "tok", int64(18), int64(22), 2, 1.5, true, "trace", "span")
	f.Add("payment", int64(0), 0, "", int64(0), int64(0), 0, -3.25, false, "", "")
	f.Fuzz(func(t *testing.T, kind string, id int64, day int, token string,
		begin, end int64, duration int, amount float64, withPayment bool, traceID, spanID string) {
		if !utf8.ValidString(kind) || !utf8.ValidString(token) ||
			!utf8.ValidString(traceID) || !utf8.ValidString(spanID) {
			t.Skip() // JSON cannot round-trip invalid UTF-8; binary can, so skip the comparison
		}
		in := &Message{Kind: Kind(kind), ID: core.HouseholdID(id), Day: day, Token: token}
		if begin != 0 || end != 0 {
			in.Interval = &core.Interval{Begin: core.Hour(begin), End: core.Hour(end)}
		}
		if duration > 0 {
			in.Pref = &core.Preference{
				Window:   core.Interval{Begin: core.Hour(begin), End: core.Hour(end)},
				Duration: duration,
			}
		}
		if withPayment {
			in.Payment = &PaymentDetail{Amount: amount, TotalCost: amount * 2}
		}
		if traceID != "" || spanID != "" {
			in.Trace = &obs.TraceContext{TraceID: traceID, SpanID: spanID}
		}

		jsonC, _ := LookupCodec(CodecJSON)
		binC, _ := LookupCodec(CodecBinary)
		je, err := jsonC.Append(nil, in)
		if err != nil {
			t.Skip() // unencodable by contract (e.g. NaN payment in JSON)
		}
		be, err := binC.Append(nil, in)
		if err != nil {
			t.Fatalf("json accepted but binary rejected: %v", err)
		}
		jd, err := jsonC.Decode(je)
		if err != nil {
			t.Fatalf("json decode: %v", err)
		}
		bd, err := binC.Decode(be)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if !reflect.DeepEqual(jd, bd) {
			t.Fatalf("codecs disagree:\n json   %+v\n binary %+v", jd, bd)
		}
	})
}
