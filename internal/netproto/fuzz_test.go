package netproto

import (
	"bytes"
	"testing"
	"unicode/utf8"

	"enki/internal/core"
)

// FuzzReadMessage feeds arbitrary bytes to the frame decoder: it must
// never panic and never return both a message and an error.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	pref := core.MustPreference(18, 22, 2)
	_ = WriteMessage(&seed, &Message{Kind: KindPreference, ID: 1, Day: 3, Pref: &pref})
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte(`{"kind":"hello"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil message with nil error")
		}
	})
}

// FuzzRoundTrip: any message the writer accepts must decode back to an
// identical frame.
func FuzzRoundTrip(f *testing.F) {
	f.Add("hello", int64(3), 7, "some error")
	f.Add("payment", int64(0), 0, "")
	f.Fuzz(func(t *testing.T, kind string, id int64, day int, errStr string) {
		if !utf8.ValidString(kind) || !utf8.ValidString(errStr) {
			t.Skip() // JSON normalizes invalid UTF-8 to U+FFFD, so it cannot round-trip
		}
		in := &Message{Kind: Kind(kind), ID: core.HouseholdID(id), Day: day, Err: errStr}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			t.Skip() // oversized or unencodable inputs are rejected by contract
		}
		out, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("wrote but could not read back: %v", err)
		}
		if out.Kind != in.Kind || out.ID != in.ID || out.Day != in.Day || out.Err != in.Err {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
	})
}
