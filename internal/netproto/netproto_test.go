package netproto

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/sched"
)

var quad = pricing.Quadratic{Sigma: pricing.DefaultSigma}

func newTestCenter(t *testing.T) *Center {
	t.Helper()
	cfg := CenterConfig{
		Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:       quad,
		Mechanism:    mechanism.DefaultConfig(),
		Rating:       2,
		ReplyTimeout: 5 * time.Second,
	}
	c, err := NewCenter("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestWireRoundTrip(t *testing.T) {
	pref := core.MustPreference(18, 22, 2)
	iv := core.Interval{Begin: 19, End: 21}
	msgs := []*Message{
		{Kind: KindHello, ID: 3},
		{Kind: KindRequest, ID: 3, Day: 7},
		{Kind: KindPreference, ID: 3, Day: 7, Pref: &pref},
		{Kind: KindAllocation, ID: 3, Day: 7, Interval: &iv},
		{Kind: KindPayment, ID: 3, Day: 7, Payment: &PaymentDetail{Amount: 4.2, TotalCost: 21}},
		{Kind: KindError, Err: "boom"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || got.Day != want.Day {
			t.Errorf("round trip mismatch: %+v vs %+v", got, want)
		}
		if want.Pref != nil && (got.Pref == nil || *got.Pref != *want.Pref) {
			t.Errorf("pref mismatch: %v vs %v", got.Pref, want.Pref)
		}
		if want.Interval != nil && (got.Interval == nil || *got.Interval != *want.Interval) {
			t.Errorf("interval mismatch: %v vs %v", got.Interval, want.Interval)
		}
		if want.Payment != nil && (got.Payment == nil || got.Payment.Amount != want.Payment.Amount) {
			t.Errorf("payment mismatch: %v vs %v", got.Payment, want.Payment)
		}
	}
}

func TestReadMessageRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("oversized frame should be rejected")
	}
}

func TestCenterConfigValidation(t *testing.T) {
	base := CenterConfig{
		Scheduler: &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:    quad,
		Mechanism: mechanism.DefaultConfig(),
		Rating:    2,
	}
	bad := base
	bad.Scheduler = nil
	if _, err := NewCenter("127.0.0.1:0", bad); err == nil {
		t.Error("nil scheduler should be rejected")
	}
	bad = base
	bad.Pricer = nil
	if _, err := NewCenter("127.0.0.1:0", bad); err == nil {
		t.Error("nil pricer should be rejected")
	}
	bad = base
	bad.Rating = 0
	if _, err := NewCenter("127.0.0.1:0", bad); err == nil {
		t.Error("zero rating should be rejected")
	}
	bad = base
	bad.Mechanism.Xi = 0.5
	if _, err := NewCenter("127.0.0.1:0", bad); err == nil {
		t.Error("xi < 1 should be rejected")
	}
}

func TestFullDayCycleTruthfulAgents(t *testing.T) {
	c := newTestCenter(t)

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
		{True: core.MustPreference(8, 14, 2), ValuationFactor: 2},
	}
	agents := make([]*Agent, len(types))
	for i, typ := range types {
		a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		defer a.Close()
	}
	if err := c.WaitForAgents(len(types), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	record, err := c.RunDay(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(record.Reports) != len(types) {
		t.Fatalf("got %d reports, want %d", len(record.Reports), len(types))
	}
	for i, r := range record.Reports {
		if r.Pref != types[r.ID].True {
			t.Errorf("report %d = %v, want %v", i, r.Pref, types[r.ID].True)
		}
	}
	// Truthful agents follow allocations: no defection, exact budget.
	for i, d := range record.Defection {
		if d != 0 {
			t.Errorf("defection[%d] = %g, want 0", i, d)
		}
	}
	var revenue float64
	for _, p := range record.Payments {
		revenue += p
	}
	if math.Abs(revenue-mechanism.DefaultXi*record.Cost) > 1e-6 {
		t.Errorf("revenue %g != ξ·κ = %g", revenue, mechanism.DefaultXi*record.Cost)
	}

	// Every agent observed its settlement.
	deadline := time.Now().Add(2 * time.Second)
	for i, a := range agents {
		for len(a.History()) == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		hist := a.History()
		if len(hist) != 1 {
			t.Fatalf("agent %d history length %d, want 1", i, len(hist))
		}
		if hist[0].TotalCost != record.Cost {
			t.Errorf("agent %d saw cost %g, want %g", i, hist[0].TotalCost, record.Cost)
		}
	}
}

func TestMultiDayAndDefector(t *testing.T) {
	c := newTestCenter(t)

	honest := &Truthful{Type: core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}}
	liarType := core.Type{True: core.MustPreference(18, 20, 2), ValuationFactor: 5}
	liar := &Misreporter{
		Type:     liarType,
		Reported: core.MustPreference(14, 20, 2), // widened window, Section V-B style
	}
	a1, err := Dial(c.Addr(), 0, honest)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(c.Addr(), 1, liar)
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	for day := 1; day <= 3; day++ {
		record, err := c.RunDay(day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		for i, r := range record.Reports {
			if r.ID != 1 {
				continue
			}
			cons := record.Consumptions[i].Interval
			if !liarType.True.Window.Covers(cons) {
				t.Errorf("day %d: liar consumed %v outside true window", day, cons)
			}
			if core.Defected(record.Assignments[i].Interval, cons) {
				if record.Defection[i] < 0 {
					t.Errorf("day %d: negative defection score", day)
				}
				if record.Flexibility[i] != 0 {
					t.Errorf("day %d: defector kept flexibility %g", day, record.Flexibility[i])
				}
			}
		}
	}
}

func TestRunDayNoAgents(t *testing.T) {
	c := newTestCenter(t)
	if _, err := c.RunDay(1); err == nil {
		t.Error("RunDay with no agents should fail")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	c := newTestCenter(t)
	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	a1, err := Dial(c.Addr(), 7, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	if _, err := Dial(c.Addr(), 7, &Truthful{Type: typ}); err == nil {
		t.Error("duplicate household ID should be rejected at registration")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("unexpected rejection error: %v", err)
	}
}

func TestAgentDisconnectFailsPhase(t *testing.T) {
	c := newTestCenter(t)
	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	a1, err := Dial(c.Addr(), 0, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(c.Addr(), 1, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	a2.Close() // drop before the day starts

	// The day must fail cleanly (either at send or collect), not hang.
	done := make(chan error, 1)
	go func() {
		_, err := c.RunDay(1)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			// A race is possible: if the drop was processed before the
			// snapshot, the day legitimately ran with one agent.
			if c.AgentCount() != 1 {
				t.Error("RunDay succeeded despite a missing agent")
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDay hung after agent disconnect")
	}
}

func TestWaitForAgentsTimeout(t *testing.T) {
	c := newTestCenter(t)
	if err := c.WaitForAgents(3, 50*time.Millisecond); err == nil {
		t.Error("WaitForAgents should time out with no agents")
	}
}

func TestAgentCleanShutdownNoError(t *testing.T) {
	c := newTestCenter(t)
	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	a, err := Dial(c.Addr(), 0, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Err(); err != nil {
		t.Errorf("clean shutdown should leave no terminal error, got %v", err)
	}
}

func TestClosestConsumptionPolicy(t *testing.T) {
	truth := core.MustPreference(18, 20, 2)
	m := &Misreporter{Type: core.Type{True: truth, ValuationFactor: 1}, Reported: core.MustPreference(14, 20, 2)}
	// Allocation (14,16) misses the true window: defect to (18,20).
	if got := m.Consume(1, core.Interval{Begin: 14, End: 16}); got != (core.Interval{Begin: 18, End: 20}) {
		t.Errorf("Consume = %v, want (18,20)", got)
	}
	// Allocation (18,20) satisfies the true preference: follow it.
	if got := m.Consume(1, core.Interval{Begin: 18, End: 20}); got != (core.Interval{Begin: 18, End: 20}) {
		t.Errorf("Consume = %v, want (18,20)", got)
	}
}
