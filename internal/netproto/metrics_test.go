package netproto

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/obs"
)

// TestMetricsScrapeAfterDayCycle is the observability acceptance test
// for the wire protocol: after one full day cycle the debug handler's
// /metrics page must expose the netproto, scheduler, and mechanism
// series — the same page cmd/enkid serves under -http.
func TestMetricsScrapeAfterDayCycle(t *testing.T) {
	obs.Default().Reset()
	c := newTestCenter(t)

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
		{True: core.MustPreference(19, 24, 3), ValuationFactor: 6},
	}
	for i, typ := range types {
		a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := c.WaitForAgents(len(types), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunDay(1); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.DebugHandler(obs.Default()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, series := range []string{
		obs.MetricNetDaysTotal,
		obs.MetricNetMessagesTotal + `{direction="sent"}`,
		obs.MetricNetMessagesTotal + `{direction="received"}`,
		obs.MetricNetBytesTotal + `{direction="sent"}`,
		obs.MetricNetPhaseLatencyMS,
		obs.MetricSchedAllocateTotal + `{scheduler="enki-greedy"}`,
		obs.MetricSchedAllocateLatencyMS,
		obs.MetricMechSettlementsTotal,
		obs.MetricMechFlexibilityScore,
		obs.MetricMechPaymentDollars,
		obs.MetricMechBudgetResidual,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}

	// The day actually ran: the day counter and per-direction message
	// counters must be non-zero on the page, not just present.
	if !strings.Contains(body, obs.MetricNetDaysTotal+" 1") {
		t.Errorf("day counter not incremented:\n%s", body)
	}
	if strings.Contains(body, obs.MetricNetMessagesTotal+`{direction="sent"} 0`) {
		t.Error("sent-message counter still zero after a day cycle")
	}

	// /healthz responds.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz: status %d", hresp.StatusCode)
	}
}
