package netproto

import (
	"bytes"
	"context"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/sched"
)

// fullMessage exercises every Message field at once.
func fullMessage() *Message {
	pref := core.MustPreference(18, 22, 2)
	iv := core.Interval{Begin: 19, End: 21}
	return &Message{
		Kind:     KindPayment,
		ID:       42,
		Day:      7,
		Trace:    &obs.TraceContext{TraceID: "deadbeef", SpanID: "cafe"},
		Token:    "tok-123",
		Codecs:   []string{"binary", "json"},
		Codec:    "binary",
		Pref:     &pref,
		Interval: &iv,
		Payment: &PaymentDetail{
			Amount:      -1.25,
			Flexibility: 0.5,
			Defection:   0.125,
			SocialCost:  0.375,
			TotalCost:   100.5,
			PeakLoad:    12,
		},
		Err: "an error",
	}
}

// TestCodecRoundTrip: every registered codec must reproduce a
// fully-populated message exactly, and each protocol kind must survive
// with its sparse field set.
func TestCodecRoundTrip(t *testing.T) {
	kinds := []*Message{
		{Kind: KindHello, ID: 1, Codecs: []string{"json"}},
		{Kind: KindWelcome, ID: 1, Token: "t", Codec: "json"},
		{Kind: KindRequest, ID: 2, Day: 1},
		{Kind: KindError, Err: "boom"},
		fullMessage(),
	}
	for _, name := range CodecNames() {
		c, ok := LookupCodec(name)
		if !ok {
			t.Fatalf("registered codec %q not found", name)
		}
		for _, in := range kinds {
			enc, err := c.Append(nil, in)
			if err != nil {
				t.Fatalf("%s encode %s: %v", name, in.Kind, err)
			}
			out, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s decode %s: %v", name, in.Kind, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Errorf("%s %s round trip:\n in  %+v\n out %+v", name, in.Kind, in, out)
			}
		}
	}
}

// TestBinaryCodecSmallerThanJSON pins the point of the binary codec: a
// typical day-cycle batch must take meaningfully fewer bytes than the
// same batch in JSON.
func TestBinaryCodecSmallerThanJSON(t *testing.T) {
	msgs := make([]*Message, 64)
	for i := range msgs {
		pref := core.MustPreference(18, 22, 2)
		msgs[i] = &Message{Kind: KindPreference, ID: core.HouseholdID(i), Day: 3, Pref: &pref}
	}
	jsonCodec, _ := LookupCodec(CodecJSON)
	binCodec, _ := LookupCodec(CodecBinary)
	jf, err := AppendBatch(nil, jsonCodec, msgs)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := AppendBatch(nil, binCodec, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bf) >= len(jf)/2 {
		t.Errorf("binary batch %dB not under half of JSON batch %dB", len(bf), len(jf))
	}
}

// TestBatchRoundTripBothCodecs drives frames through the byte-level
// write/read path (headers, counts, per-message lengths) for each codec
// and for the degenerate single-message batch.
func TestBatchRoundTripBothCodecs(t *testing.T) {
	pref := core.MustPreference(17, 23, 3)
	batches := [][]*Message{
		{{Kind: KindRequest, ID: 1, Day: 1}},
		{
			{Kind: KindRequest, ID: 1, Day: 1},
			{Kind: KindPreference, ID: 2, Day: 1, Pref: &pref},
			fullMessage(),
		},
	}
	for _, name := range CodecNames() {
		c, _ := LookupCodec(name)
		for _, in := range batches {
			var buf bytes.Buffer
			if err := WriteBatch(&buf, c, in); err != nil {
				t.Fatalf("%s write: %v", name, err)
			}
			out, err := ReadBatch(&buf)
			if err != nil {
				t.Fatalf("%s read: %v", name, err)
			}
			if !reflect.DeepEqual(in, out) {
				t.Errorf("%s batch round trip mismatch (%d msgs)", name, len(in))
			}
		}
	}
}

// TestDecodeBatchRejectsCorruption: truncations and bit flips must fail
// loudly, never panic or return phantom messages.
func TestDecodeBatchRejectsCorruption(t *testing.T) {
	c, _ := LookupCodec(CodecBinary)
	frame, err := AppendBatch(nil, c, []*Message{fullMessage(), fullMessage()})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	if _, err := DecodeBatch(payload); err != nil {
		t.Fatalf("pristine payload rejected: %v", err)
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := DecodeBatch([]byte{99, 1, 1, 0}); err == nil {
		t.Error("unknown codec id accepted")
	}
	for cut := 1; cut < len(payload); cut += 7 {
		if _, err := DecodeBatch(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestSelectCodec covers the negotiation matrix: empty offers stay
// legacy, unknown preferences fall back to JSON, and the preferred
// codec wins when offered.
func TestSelectCodec(t *testing.T) {
	cases := []struct {
		preferred string
		offered   []string
		want      string // "" means legacy (nil codec)
	}{
		{"", nil, ""},
		{CodecBinary, nil, ""},
		{"", []string{"json"}, "json"},
		{CodecBinary, []string{"json", "binary"}, "binary"},
		{CodecBinary, []string{"json"}, "json"},
		{"zstd", []string{"json", "binary"}, "json"},
		{"zstd", []string{"snappy"}, ""},
	}
	for _, tc := range cases {
		c := selectCodec(tc.preferred, tc.offered)
		got := ""
		if c != nil {
			got = c.Name()
		}
		if got != tc.want {
			t.Errorf("selectCodec(%q, %v) = %q, want %q", tc.preferred, tc.offered, got, tc.want)
		}
	}
}

// legacyDay drives one scripted day-cycle exchange for a single
// household over raw legacy frames — the behaviour of a pre-batching
// peer, which knows nothing of Codecs fields or batch frames.
func legacyDay(t *testing.T, conn net.Conn, id core.HouseholdID) {
	t.Helper()
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return // center closed after the day
		}
		switch m.Kind {
		case KindRequest:
			pref := core.MustPreference(18, 22, 2)
			if err := WriteMessage(conn, &Message{Kind: KindPreference, ID: id, Day: m.Day, Pref: &pref}); err != nil {
				t.Errorf("legacy preference: %v", err)
				return
			}
		case KindAllocation:
			if err := WriteMessage(conn, &Message{Kind: KindConsumption, ID: id, Day: m.Day, Interval: m.Interval}); err != nil {
				t.Errorf("legacy consumption: %v", err)
				return
			}
		case KindPayment:
			return // day complete
		default:
			t.Errorf("legacy agent got unexpected %s", m.Kind)
			return
		}
	}
}

// TestNegotiationLegacyAgentAgainstNewCenter is the backward-compat
// acceptance test: an agent that predates codec negotiation (offers
// nothing, speaks only legacy frames) registers against a center
// preferring the binary codec and settles a full day.
func TestNegotiationLegacyAgentAgainstNewCenter(t *testing.T) {
	center, err := StartCenter("127.0.0.1:0",
		WithCodec(CodecBinary),
		WithPhaseDeadline(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()

	conn, err := net.Dial("tcp", center.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A pre-negotiation hello: no Codecs offer.
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 5}); err != nil {
		t.Fatal(err)
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if welcome.Kind != KindWelcome {
		t.Fatalf("got %s, want welcome", welcome.Kind)
	}
	if welcome.Codec != "" {
		t.Fatalf("center selected codec %q for a legacy agent; must stay legacy", welcome.Codec)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		legacyDay(t, conn, 5)
	}()
	record, err := center.RunDayContext(context.Background(), 1)
	if err != nil {
		t.Fatalf("day against legacy agent: %v", err)
	}
	if len(record.Payments) != 1 || record.Substituted != nil || record.Absent != nil {
		t.Fatalf("legacy agent day degraded: %+v", record)
	}
	<-done
}

// TestNegotiationNewAgentAgainstLegacyCenter covers the other
// direction: a modern agent offers codecs, but the center (simulated
// pre-PR peer) answers a codec-less welcome — the agent must stay on
// legacy framing and complete the day.
func TestNegotiationNewAgentAgainstLegacyCenter(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()

	type helloResult struct {
		hello *Message
		err   error
	}
	helloCh := make(chan helloResult, 1)
	go func() {
		m, err := ReadMessage(server)
		if err == nil {
			// A legacy center: ignores the unknown Codecs field, answers
			// without a codec selection.
			err = WriteMessage(server, &Message{Kind: KindWelcome, ID: m.ID, Token: "tok"})
		}
		helloCh <- helloResult{m, err}
	}()

	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	agent, err := NewAgent(client, 3, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	hr := <-helloCh
	if hr.err != nil {
		t.Fatal(hr.err)
	}
	if len(hr.hello.Codecs) == 0 {
		t.Error("modern agent offered no codecs")
	}

	// The agent must answer a legacy-framed request with a legacy frame.
	if err := WriteMessage(server, &Message{Kind: KindRequest, ID: 3, Day: 1}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(server)
	if err != nil {
		t.Fatalf("agent reply not legacy-framed: %v", err)
	}
	if reply.Kind != KindPreference || reply.Pref == nil {
		t.Fatalf("got %s, want preference", reply.Kind)
	}
}

// TestNegotiationBinaryEndToEnd runs a real TCP day under the binary
// codec and asserts the negotiated framing actually carried it: the
// per-codec byte counters must show binary traffic on both directions.
func TestNegotiationBinaryEndToEnd(t *testing.T) {
	obs.Default().Reset()
	center, err := StartCenter("127.0.0.1:0",
		WithCodec(CodecBinary),
		WithScheduler(&sched.Greedy{Pricer: quad, Rating: 2}),
		WithMechanism(mechanism.DefaultConfig()),
		WithPhaseDeadline(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer center.Close()

	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	}
	ctx := context.Background()
	for i, typ := range types {
		a, err := Connect(ctx, center.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := center.WaitForAgentsContext(ctx, len(types)); err != nil {
		t.Fatal(err)
	}
	if _, err := center.RunDayContext(ctx, 1); err != nil {
		t.Fatal(err)
	}

	snap := obs.Default().Snapshot()
	var binaryBytes, frames uint64
	for key, v := range snap.Counters {
		if strings.Contains(key, obs.MetricNetCodecBytesTotal) && strings.Contains(key, CodecBinary) {
			binaryBytes += v
		}
		if strings.Contains(key, obs.MetricNetFramesTotal) {
			frames += v
		}
	}
	if binaryBytes == 0 {
		t.Error("no binary codec bytes counted after a binary-negotiated day")
	}
	if frames == 0 {
		t.Error("no batch frames counted after a binary-negotiated day")
	}
}
