package netproto

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/parallel"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// ClusterConfig carries the cluster-specific knobs of the option set;
// the settlement parameters (pricer, mechanism, rating, trace seed,
// ledger) are shared with the single-neighborhood center options.
// Prefer StartCluster with functional options.
type ClusterConfig struct {
	// Shards is the number of neighborhoods the membership is
	// partitioned into (≥ 1). Each shard settles as its own independent
	// mechanism day — its own scheduler, its own Theorem 1 budget.
	Shards int
	// Workers sizes the worker pool shards settle on. Zero means
	// GOMAXPROCS. The worker count never changes a settled byte.
	Workers int
	// Codec names the batch-frame codec shard links encode with
	// (CodecJSON or CodecBinary; empty means CodecJSON).
	Codec string
	// BatchSize caps the messages per batch frame on shard links
	// (≥ 1; zero means DefaultBatchSize).
	BatchSize int
	// Records keeps every shard's full per-household DayRecord on the
	// ClusterDayRecord. Disable for memory-bounded million-household
	// runs, which then retain only the per-shard summaries.
	Records bool
	// ShardFaults injects a deterministic fault plan into the named
	// shards' links (chaos testing). Message indexes count across the
	// shard link's whole lifetime, so a plan names the same messages on
	// every run. Shards without an entry run fault-free.
	ShardFaults map[int]*FaultPlan
}

func (c ClusterConfig) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("netproto: cluster shards %d must be at least 1", c.Shards)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("netproto: cluster batch size %d must be positive", c.BatchSize)
	}
	for shard := range c.ShardFaults {
		if shard < 0 || shard >= c.Shards {
			return fmt.Errorf("netproto: fault plan for shard %d outside [0, %d)", shard, c.Shards)
		}
	}
	return nil
}

// clusterSeedSalt namespaces per-shard RNG streams within the cluster's
// trace seed, so a shard's scheduler stream never collides with trace
// IDs or session tokens derived from the same seed.
const clusterSeedSalt = 0x636c7573 // "clus"

// clusterMember is one household enrolled in a cluster.
type clusterMember struct {
	id     core.HouseholdID
	policy Policy
}

// shardState is the durable per-shard machinery: the framed link the
// shard's protocol messages travel through, and the shard's own
// scheduler (with a seed-derived RNG for the paper's random
// tie-breaking) so concurrent shards never share mutable state.
type shardState struct {
	link      *shardLink
	scheduler sched.Scheduler
	members   []clusterMember // sorted by household ID

	// src and reg carry the shard's federated metrics dimension when
	// reporting is on: reg accumulates the shard's own series across
	// days, and each day's payment batch carries a metricsReport with
	// reg's snapshot under the src source name ("shard/0003" — zero-
	// padded so federation sources sort in shard-index order).
	src string
	reg *obs.Registry
}

// Cluster is the sharded multi-neighborhood settlement service: it
// partitions its households into Shards neighborhoods and settles all
// of them concurrently, each through the same batched wire framing a
// TCP connection negotiates. Create with StartCluster, enroll
// households with Join, run days with ClusterDay.
//
// StartCenter remains the single-shard special case of this service
// with real sockets under it; the cluster trades the sockets for
// in-process links so a million households settle in seconds while
// every message still passes through the negotiated codec framing.
//
// Determinism contract: the settled output — every ShardDay, every
// DayRecord byte, every ledger entry — is bit-identical for any worker
// count and any Join order. Shard seeds derive from the trace seed and
// the shard index, results land in pre-sized per-shard slots, and the
// merged ledger is appended in shard-index order after the parallel
// phase.
type Cluster struct {
	center  CenterConfig  // settlement parameters shared with the center
	cfg     ClusterConfig // cluster-specific knobs
	codec   Codec
	engine  parallel.Engine
	custom  bool // scheduler came from WithScheduler (shared across shards)
	fed     *obs.Federation
	slo     *obs.SLOEngine
	mu      sync.Mutex
	members map[core.HouseholdID]Policy
	shards  []*shardState
	dirty   bool // membership changed since shards were built
	closed  bool

	stat clusterStatus
}

// clusterStatus is the cluster's operator-plane state: the day summary
// and the per-shard health table, rebuilt at each merge.
type clusterStatus struct {
	mu     sync.Mutex
	day    obs.DayStatus
	shards []obs.ShardStatus
}

// StartCluster starts a sharded settlement service configured by
// functional options; unset options take the paper's defaults plus one
// shard — the single-neighborhood special case. The context only gates
// ClusterDay cancellation; the cluster itself holds no sockets or
// goroutines between days.
func StartCluster(ctx context.Context, opts ...Option) (*Cluster, error) {
	if ctx == nil {
		return nil, errors.New("netproto: nil context")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := o.validate("StartCluster", targetCluster); err != nil {
		return nil, err
	}
	custom := o.center.Scheduler != nil
	center := o.resolveCenter()
	cfg := o.cluster
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Codec == "" {
		cfg.Codec = CodecJSON
	}
	if err := center.validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	codec, ok := LookupCodec(cfg.Codec)
	if !ok {
		return nil, fmt.Errorf("netproto: unknown codec %q", cfg.Codec)
	}
	c := &Cluster{
		center:  center,
		cfg:     cfg,
		codec:   codec,
		engine:  parallel.Engine{Workers: cfg.Workers},
		custom:  custom,
		members: make(map[core.HouseholdID]Policy),
		dirty:   true,
	}
	c.stat.day.Phase = "idle"
	if center.Reporting {
		c.fed = obs.NewFederation(obs.Default())
	}
	if len(center.SLO) > 0 {
		slo, err := obs.NewSLOEngine(obs.Default(), center.SLO)
		if err != nil {
			return nil, err
		}
		c.slo = slo
	}
	return c, nil
}

// Federation returns the cluster's federated metrics view, or nil when
// metrics reporting is off.
func (c *Cluster) Federation() *obs.Federation { return c.fed }

// Operator assembles the cluster's operator plane: the default
// registry, this cluster as the status source, the audit ledger's tail
// when a ledger is configured, plus the federation and SLO engine when
// enabled. Serve it with obs.ServeOperator; the caller flips SetReady
// once enrollment is complete.
func (c *Cluster) Operator() *obs.Operator {
	op := obs.NewOperator(nil)
	op.Status = c
	if c.center.Ledger != nil {
		op.Ledger = c.center.Ledger
	}
	op.Federation = c.fed
	op.SLO = c.slo
	return op
}

// DayStatus implements obs.StatusSource for /api/v1/day.
func (c *Cluster) DayStatus() obs.DayStatus {
	c.stat.mu.Lock()
	defer c.stat.mu.Unlock()
	return c.stat.day
}

// ShardStatuses implements obs.StatusSource for /api/v1/shards: the
// last settled day's per-shard health table, in shard-index order.
func (c *Cluster) ShardStatuses() []obs.ShardStatus {
	c.stat.mu.Lock()
	defer c.stat.mu.Unlock()
	return append([]obs.ShardStatus(nil), c.stat.shards...)
}

// Join enrolls a household. Households may join between days; the next
// ClusterDay repartitions the membership (sorted by household ID, in
// contiguous near-equal blocks) so the partition is a pure function of
// the member set, never of join order.
func (c *Cluster) Join(id core.HouseholdID, policy Policy) error {
	if policy == nil {
		return errors.New("netproto: nil policy")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("netproto: cluster closed")
	}
	if _, ok := c.members[id]; ok {
		return fmt.Errorf("netproto: duplicate household id %d", id)
	}
	c.members[id] = policy
	c.dirty = true
	return nil
}

// Members returns the number of enrolled households.
func (c *Cluster) Members() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.members)
}

// Shards returns the configured shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// Close marks the cluster closed; subsequent Join and ClusterDay calls
// fail. There are no sockets or goroutines to tear down.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// rebuildShards repartitions the membership into shards. Callers hold
// c.mu. Repartitioning re-derives each shard's scheduler stream and
// resets its link's fault-plan message index, which is why mid-sequence
// joins change subsequent days (they change the neighborhoods
// themselves) but never the days already settled.
func (c *Cluster) rebuildShards() {
	ids := make([]core.HouseholdID, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	root := dist.New(c.center.TraceSeed)
	n := len(ids)
	c.shards = make([]*shardState, c.cfg.Shards)
	for s := 0; s < c.cfg.Shards; s++ {
		lo, hi := s*n/c.cfg.Shards, (s+1)*n/c.cfg.Shards
		members := make([]clusterMember, 0, hi-lo)
		for _, id := range ids[lo:hi] {
			members = append(members, clusterMember{id: id, policy: c.members[id]})
		}
		scheduler := c.center.Scheduler
		if !c.custom {
			// Fresh Greedy per shard: the paper's random tie-breaking from
			// a seed-derived stream, owned by this shard alone.
			scheduler = &sched.Greedy{
				Pricer: c.center.Pricer,
				Rating: c.center.Rating,
				RNG:    root.Split(clusterSeedSalt, uint64(s)),
			}
		}
		c.shards[s] = &shardState{
			link: &shardLink{
				shard: s,
				codec: c.codec,
				batch: c.cfg.BatchSize,
				plan:  c.cfg.ShardFaults[s],
			},
			scheduler: scheduler,
			members:   members,
		}
		if c.fed != nil {
			c.shards[s].src = fmt.Sprintf("shard/%04d", s)
			c.shards[s].reg = obs.NewRegistry()
		}
	}
	c.dirty = false
}

// ShardDay is one neighborhood's outcome within a cluster day. A shard
// either settles (Err empty, aggregates populated, Record present when
// records are kept) or fails in isolation (Err set, siblings
// untouched).
type ShardDay struct {
	Shard   int    `json:"shard"`
	TraceID string `json:"traceId,omitempty"`

	Households  int `json:"households"`            // members at dawn
	Settled     int `json:"settled"`               // households with a bill
	Absent      int `json:"absent,omitempty"`      // never reported; sat the day out
	Substituted int `json:"substituted,omitempty"` // settled via the imputed defector path

	Cost    float64 `json:"cost"`    // κ(ω) for this neighborhood
	Revenue float64 `json:"revenue"` // Σ payments (Theorem 1: ξ·κ)
	Peak    float64 `json:"peak"`    // peak hourly load

	// Record is the shard's full per-household day record; nil when the
	// cluster runs with WithShardRecords(false) or the shard failed.
	Record *DayRecord `json:"record,omitempty"`

	Err string `json:"err,omitempty"` // non-empty when the shard failed
}

// ClusterDayRecord is the deterministic merge of one day across every
// shard: the per-shard outcomes in shard-index order plus cluster-wide
// aggregates. Failed shards are reported here rather than failing the
// day — one faulty neighborhood never perturbs its siblings' ledgers.
type ClusterDayRecord struct {
	Day    int        `json:"day"`
	Shards []ShardDay `json:"shards"`

	Households  int `json:"households"`
	Settled     int `json:"settled"`
	Absent      int `json:"absent,omitempty"`
	Substituted int `json:"substituted,omitempty"`
	Failed      int `json:"failed,omitempty"` // shards with Err set

	Cost    float64 `json:"cost"`    // Σ shard costs
	Revenue float64 `json:"revenue"` // Σ shard revenues
	Peak    float64 `json:"peak"`    // max shard peak
}

// ClusterDay settles day for every shard concurrently and merges the
// outcomes. It is not safe for concurrent use with itself. Shard
// failures (a shard whose protocol round breaks) are isolated into
// their ShardDay.Err; the error return is reserved for cluster-level
// problems — no members, cancellation, a closed cluster, or a ledger
// write failure during the serial merge.
func (c *Cluster) ClusterDay(ctx context.Context, day int) (*ClusterDayRecord, error) {
	start := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("netproto: cluster closed")
	}
	if len(c.members) == 0 {
		c.mu.Unlock()
		return nil, errors.New("netproto: no enrolled households")
	}
	if c.dirty {
		c.rebuildShards()
	}
	shards := c.shards
	memberCount := len(c.members)
	c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	c.stat.mu.Lock()
	prevSettled := c.stat.day.DaysSettled
	c.stat.day = obs.DayStatus{Day: day, Phase: "settling", Members: memberCount, DaysSettled: prevSettled}
	c.stat.mu.Unlock()

	// Parallel phase: each shard settles into its own pre-sized slot and
	// never returns an error into ForEach (an error would stop dispatch
	// and starve sibling shards); failures are recorded in the slot.
	// Per-shard wall-clock lands in a side slot, never in the ShardDay —
	// its JSON stays bit-identical across worker counts.
	days := make([]ShardDay, len(shards))
	entries := make([]*mechanism.LedgerEntry, len(shards))
	latMS := make([]float64, len(shards))
	_ = c.engine.ForEach(len(shards), func(s int) error {
		t0 := time.Now()
		days[s], entries[s] = c.runShardDay(shards[s], s, day)
		latMS[s] = float64(time.Since(t0).Nanoseconds()) / 1e6
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Serial merge, in shard-index order: ledger entries append in a
	// deterministic sequence no matter how the parallel phase
	// interleaved, and the aggregates fold left-to-right.
	rec := &ClusterDayRecord{Day: day, Shards: days}
	for s := range days {
		d := &days[s]
		rec.Households += d.Households
		if d.Err != "" {
			rec.Failed++
			continue
		}
		rec.Settled += d.Settled
		rec.Absent += d.Absent
		rec.Substituted += d.Substituted
		rec.Cost += d.Cost
		rec.Revenue += d.Revenue
		if d.Peak > rec.Peak {
			rec.Peak = d.Peak
		}
		if c.center.Ledger != nil && entries[s] != nil {
			if err := c.center.Ledger.AppendValue(entries[s]); err != nil {
				return nil, fmt.Errorf("netproto: audit ledger: %w", err)
			}
		}
	}
	obs.Default().Counter(obs.MetricClusterDaysTotal).Inc()
	if rec.Absent > 0 {
		obs.Default().Counter(obs.MetricClusterAbsentTotal).Add(uint64(rec.Absent))
	}
	if rec.Absent+rec.Substituted+rec.Failed > 0 {
		obs.Default().Counter(obs.MetricNetDegradedDaysTotal).Inc()
	}
	if r := obs.DefaultRecorder(); r.Enabled() {
		action := "ok"
		if rec.Absent+rec.Substituted+rec.Failed > 0 {
			action = "degraded"
		}
		r.Record(obs.Event{Kind: obs.EventDay, Day: day, Shard: -1, Action: action, N: rec.Settled})
	}
	settleMS := float64(time.Since(start).Nanoseconds()) / 1e6
	obs.Default().Histogram(obs.MetricNetDaySettleMS, obs.LatencyBucketsMS).
		ObserveExemplar(settleMS, obs.DeriveTraceID(c.center.TraceSeed, uint64(day)))

	statuses := make([]obs.ShardStatus, len(days))
	for s := range days {
		d := &days[s]
		statuses[s] = obs.ShardStatus{
			Shard:        s,
			Healthy:      d.Err == "",
			Err:          d.Err,
			TraceID:      d.TraceID,
			LastDay:      day,
			Households:   d.Households,
			Settled:      d.Settled,
			Absent:       d.Absent,
			Substituted:  d.Substituted,
			Cost:         d.Cost,
			Revenue:      d.Revenue,
			Residual:     d.Revenue - c.center.Mechanism.Xi*d.Cost,
			LastSettleMS: latMS[s],
		}
	}
	c.stat.mu.Lock()
	c.stat.shards = statuses
	c.stat.day = obs.DayStatus{
		Day:          day,
		Phase:        "settled",
		Members:      rec.Households,
		Reported:     rec.Settled,
		Dark:         rec.Absent + rec.Substituted,
		DaysSettled:  prevSettled + 1,
		LastCost:     rec.Cost,
		LastRevenue:  rec.Revenue,
		LastResidual: rec.Revenue - c.center.Mechanism.Xi*rec.Cost,
		LastPeak:     rec.Peak,
	}
	c.stat.mu.Unlock()
	return rec, nil
}

// runShardDay runs the full Figure 1 day cycle for one shard, every
// message passing through the shard's batch-framed link: request →
// preference → allocation → consumption → payment, then settlement.
// Message loss (injected faults) degrades the shard the same way agent
// darkness degrades the TCP center: a household whose preference never
// arrives is absent; one that reported and then went dark is settled
// via the Eq. 5 imputed-defector path.
func (c *Cluster) runShardDay(st *shardState, shard, day int) (ShardDay, *mechanism.LedgerEntry) {
	start := time.Now()
	tid := obs.DeriveTraceID(c.center.TraceSeed, uint64(day), uint64(shard))
	span := obs.DefaultTracer().StartTrace(tid, obs.SpanClusterShard,
		"day", strconv.Itoa(day), "shard", strconv.Itoa(shard))
	defer span.End()
	defer func() {
		obs.Default().Histogram(obs.MetricClusterShardSettleMS, obs.LatencyBucketsMS).
			Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	}()

	out := ShardDay{Shard: shard, TraceID: tid, Households: len(st.members)}
	recordShardDay := func() {
		rec := obs.DefaultRecorder()
		if !rec.Enabled() {
			return
		}
		action := "ok"
		switch {
		case out.Err != "":
			action = "failed"
		case out.Absent+out.Substituted > 0:
			action = "degraded"
		}
		rec.Record(obs.Event{
			Kind:    obs.EventShardDay,
			Day:     day,
			Shard:   shard,
			Action:  action,
			N:       out.Settled,
			TraceID: tid,
			Err:     out.Err,
		})
	}
	defer recordShardDay()
	fail := func(err error) (ShardDay, *mechanism.LedgerEntry) {
		out.Err = err.Error()
		obs.Default().Counter(obs.MetricClusterShardFailures).Inc()
		return out, nil
	}
	if len(st.members) == 0 {
		// An empty shard (more shards than households) settles trivially.
		obs.Default().Counter(obs.MetricClusterShardsSettled).Inc()
		return out, nil
	}

	// Phase 1: requests out, preferences back. Loss on either leg makes
	// the household absent for the day.
	requests := make([]*Message, len(st.members))
	for i, m := range st.members {
		requests[i] = &Message{Kind: KindRequest, ID: m.id, Day: day}
	}
	delivered, err := st.link.transfer(requests)
	if err != nil {
		return fail(err)
	}
	prefMsgs := make([]*Message, 0, len(delivered))
	forEachDelivered(st.members, delivered, func(m clusterMember, _ *Message) {
		pref := m.policy.Report(day)
		prefMsgs = append(prefMsgs, &Message{Kind: KindPreference, ID: m.id, Day: day, Pref: &pref})
	})
	delivered, err = st.link.transfer(prefMsgs)
	if err != nil {
		return fail(err)
	}
	reports := make([]core.Report, 0, len(delivered))
	forEachDelivered(st.members, delivered, func(m clusterMember, msg *Message) {
		reports = append(reports, core.Report{ID: m.id, Pref: *msg.Pref})
	})
	if len(reports) == 0 {
		return fail(fmt.Errorf("no household reported a preference (all %d dark)", len(st.members)))
	}
	for _, r := range reports {
		if err := r.Pref.Validate(); err != nil {
			return fail(fmt.Errorf("household %d: invalid report: %w", r.ID, err))
		}
	}
	out.Absent = len(st.members) - len(reports)

	assignments, err := st.scheduler.Allocate(reports)
	if err != nil {
		return fail(fmt.Errorf("allocate: %w", err))
	}

	// Phase 2: allocations out, consumptions back. Loss on either leg
	// puts the household on the imputed-defector path.
	reporting := make([]clusterMember, len(reports))
	memberAt := memberIndexer(st.members)
	allocMsgs := make([]*Message, len(reports))
	for i := range reports {
		reporting[i] = st.members[memberAt(reports[i].ID)]
		iv := assignments[i].Interval
		allocMsgs[i] = &Message{Kind: KindAllocation, ID: reports[i].ID, Day: day, Interval: &iv}
	}
	delivered, err = st.link.transfer(allocMsgs)
	if err != nil {
		return fail(err)
	}
	consMsgs := make([]*Message, 0, len(delivered))
	reportAt := reportIndexer(reports)
	forEachDelivered(reporting, delivered, func(m clusterMember, msg *Message) {
		iv := m.policy.Consume(day, *msg.Interval)
		consMsgs = append(consMsgs, &Message{Kind: KindConsumption, ID: m.id, Day: day, Interval: &iv})
	})
	delivered, err = st.link.transfer(consMsgs)
	if err != nil {
		return fail(err)
	}
	consumptions := make([]core.Consumption, len(reports))
	seen := make([]bool, len(reports))
	var badConsumption error
	forEachDelivered(reporting, delivered, func(m clusterMember, msg *Message) {
		i := reportAt(m.id)
		if msg.Interval.Len() != reports[i].Pref.Duration && badConsumption == nil {
			badConsumption = fmt.Errorf("household %d consumed %d slots, declared %d",
				m.id, msg.Interval.Len(), reports[i].Pref.Duration)
			return
		}
		consumptions[i] = core.Consumption{ID: m.id, Interval: *msg.Interval}
		seen[i] = true
	})
	if badConsumption != nil {
		return fail(badConsumption)
	}
	var substituted []bool
	for i := range reports {
		if seen[i] {
			continue
		}
		if substituted == nil {
			substituted = make([]bool, len(reports))
		}
		substituted[i] = true
		out.Substituted++
		consumptions[i] = core.Consumption{ID: reports[i].ID, Interval: mechanism.DarkConsumption(reports[i].Pref)}
	}

	record, entry, err := settleDay(c.center, tid, day, reports, assignments, consumptions, substituted)
	if err != nil {
		return fail(err)
	}

	// Phase 3: payments out, best-effort — the settled record is already
	// authoritative, so loss here only suppresses a household's feedback.
	// When reporting is on, the shard's cumulative metrics snapshot rides
	// the same batch as one trailing metricsReport message — through the
	// same codec, counted by the same wire metrics, subject to the same
	// fault plan (a dropped or garbled frame loses the day's report; the
	// next day's cumulative snapshot covers the gap).
	var revenue float64
	for _, p := range record.Payments {
		revenue += p
	}
	payMsgs := make([]*Message, len(reports), len(reports)+1)
	for i := range reports {
		payMsgs[i] = &Message{Kind: KindPayment, ID: reports[i].ID, Day: day, Payment: &PaymentDetail{
			Amount:      record.Payments[i],
			Flexibility: record.Flexibility[i],
			Defection:   record.Defection[i],
			SocialCost:  record.SocialCost[i],
			TotalCost:   record.Cost,
			PeakLoad:    record.Peak,
		}}
	}
	if st.reg != nil {
		st.reg.Counter(obs.MetricClusterShardsSettled).Inc()
		st.reg.Counter(obs.MetricClusterHouseholdsSettled).Add(uint64(len(reports)))
		if out.Substituted > 0 {
			st.reg.Counter(obs.MetricClusterSubstitutionsTotal).Add(uint64(out.Substituted))
		}
		if out.Absent > 0 {
			st.reg.Counter(obs.MetricClusterAbsentTotal).Add(uint64(out.Absent))
		}
		st.reg.Gauge(obs.MetricMechTheorem1Deviation).Set(revenue - c.center.Mechanism.Xi*record.Cost)
		st.reg.Histogram(obs.MetricClusterShardSettleMS, obs.LatencyBucketsMS).
			ObserveExemplar(float64(time.Since(start).Nanoseconds())/1e6, tid)
		payMsgs = append(payMsgs, &Message{Kind: KindMetricsReport, Day: day,
			Metrics: &obs.MetricsReport{Source: st.src, Snapshot: st.reg.Snapshot()}})
	}
	delivered, err = st.link.transfer(payMsgs)
	if err != nil {
		return fail(err)
	}
	// The trailing metricsReport (ID 0, no payment) must never reach the
	// member walk: extract it by kind before delivering feedback.
	var shardReport *obs.MetricsReport
	kept := delivered[:0]
	for _, m := range delivered {
		if m.Kind == KindMetricsReport {
			if m.Metrics != nil {
				shardReport = m.Metrics
			}
			continue
		}
		kept = append(kept, m)
	}
	forEachDelivered(reporting, kept, func(m clusterMember, msg *Message) {
		m.policy.Feedback(day, *msg.Payment)
	})
	if shardReport != nil && c.fed != nil {
		c.fed.Report(shardReport)
	}

	out.Settled = len(reports)
	out.Cost = record.Cost
	out.Peak = record.Peak
	out.Revenue = revenue
	if c.cfg.Records {
		out.Record = record
	}
	reg := obs.Default()
	reg.Counter(obs.MetricClusterShardsSettled).Inc()
	reg.Counter(obs.MetricClusterHouseholdsSettled).Add(uint64(len(reports)))
	if out.Substituted > 0 {
		reg.Counter(obs.MetricClusterSubstitutionsTotal).Add(uint64(out.Substituted))
	}
	return out, entry
}

// settleDay computes scores, payments, and aggregates for a completed
// day — the shared settlement core of the TCP center and the cluster
// shards. Substituted households forfeit their flexibility reward (they
// never confirmed compliance), putting them on the Eq. 5 defector path.
// The ledger entry is built but not appended; the caller owns ledger
// ordering.
func settleDay(cfg CenterConfig, tid string, day int, reports []core.Report, assignments []core.Assignment, consumptions []core.Consumption, substituted []bool) (*DayRecord, *mechanism.LedgerEntry, error) {
	prefs := make([]core.Preference, len(reports))
	assigned := make([]core.Interval, len(reports))
	consumed := make([]core.Interval, len(reports))
	for i := range reports {
		prefs[i] = reports[i].Pref
		assigned[i] = assignments[i].Interval
		consumed[i] = consumptions[i].Interval
	}
	predicted := mechanism.FlexibilityScores(prefs)
	flex := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	for i := range substituted {
		if substituted[i] {
			flex[i] = 0
		}
	}
	defect := mechanism.DefectionScores(cfg.Pricer, cfg.Rating, assigned, consumed)
	psi, err := mechanism.SocialCostScores(flex, defect, cfg.Mechanism.K)
	if err != nil {
		return nil, nil, fmt.Errorf("netproto: social cost: %w", err)
	}
	load := core.LoadOf(consumed, cfg.Rating)
	cost := pricing.Cost(cfg.Pricer, load)
	payments, err := mechanism.Payments(psi, cfg.Mechanism.Xi, cost)
	if err != nil {
		return nil, nil, fmt.Errorf("netproto: payments: %w", err)
	}
	mechanism.RecordSettlementMetrics(flex, defect, psi, payments, cost, cfg.Mechanism.Xi, load.PAR())
	var entry *mechanism.LedgerEntry
	if cfg.Ledger != nil {
		e := mechanism.BuildLedgerEntry(tid, day, cfg.Mechanism, cfg.Rating,
			reports, assigned, consumed, substituted, predicted, flex, defect, psi, payments, cost, load.Peak())
		entry = &e
	}
	return &DayRecord{
		Day:          day,
		TraceID:      tid,
		Reports:      reports,
		Assignments:  assignments,
		Consumptions: consumptions,
		Payments:     payments,
		Flexibility:  flex,
		Defection:    defect,
		SocialCost:   psi,
		Cost:         cost,
		Peak:         load.Peak(),
		Substituted:  substituted,
	}, entry, nil
}

// forEachDelivered merge-walks delivered messages against the sorted
// member slice they were generated from, invoking fn once per delivered
// member in member order. Delivery preserves order and duplicates
// (FaultDup) arrive adjacent, so a single forward walk suffices — no
// per-phase maps, which matters at a million households.
func forEachDelivered(members []clusterMember, delivered []*Message, fn func(m clusterMember, msg *Message)) {
	i := 0
	var last core.HouseholdID = -1
	for _, msg := range delivered {
		if msg.ID == last {
			continue // duplicate delivery
		}
		for i < len(members) && members[i].id < msg.ID {
			i++
		}
		if i >= len(members) {
			return
		}
		if members[i].id == msg.ID {
			fn(members[i], msg)
			last = msg.ID
			i++
		}
	}
}

// memberIndexer returns a lookup from household ID to index in the
// sorted member slice, backed by binary search (no map at 1M scale).
func memberIndexer(members []clusterMember) func(core.HouseholdID) int {
	return func(id core.HouseholdID) int {
		return sort.Search(len(members), func(i int) bool { return members[i].id >= id })
	}
}

// reportIndexer is memberIndexer over a report slice (same sorted-by-ID
// invariant).
func reportIndexer(reports []core.Report) func(core.HouseholdID) int {
	return func(id core.HouseholdID) int {
		return sort.Search(len(reports), func(i int) bool { return reports[i].ID >= id })
	}
}

// shardLink is the in-process stand-in for a shard's wire: every
// message batch is encoded into a real batch frame (AppendBatch) and
// decoded back out (ReadBatch), so frame counts, messages-per-frame,
// and per-codec byte volumes in the wire metrics are honest — the
// cluster measures the same framing a TCP connection would carry, minus
// the socket.
type shardLink struct {
	shard    int
	codec    Codec
	batch    int
	plan     *FaultPlan
	next     int // fault-plan message index, cumulative across days
	buf      bytes.Buffer
	batchBuf []*Message
}

// transfer carries msgs across the link in batches of up to batch
// messages and returns what arrived, in order. Faults from the link's
// plan apply per message index: drop loses the message, dup delivers it
// twice, delay delivers normally (latency is meaningless in-process,
// but the fault is still counted), and garble corrupts the whole frame
// carrying the message — the receiver's decode fails and every message
// in that frame is lost, the batched analogue of a garbled TCP frame
// killing a connection. Only encode bugs return an error.
func (l *shardLink) transfer(msgs []*Message) ([]*Message, error) {
	out := make([]*Message, 0, len(msgs))
	for start := 0; start < len(msgs); start += l.batch {
		end := start + l.batch
		if end > len(msgs) {
			end = len(msgs)
		}
		batch := l.batchBuf[:0]
		garbled := false
		for _, m := range msgs[start:end] {
			action := l.plan.ActionAt(l.next)
			l.next++
			if action != FaultNone {
				obs.Default().Counter(obs.MetricNetFaultsTotal, obs.LabelAction, action.String()).Inc()
				if rec := obs.DefaultRecorder(); rec.Enabled() {
					rec.Record(obs.Event{
						Kind:   obs.EventFault,
						Shard:  l.shard,
						Action: action.String(),
						N:      l.next - 1, // the message index the fault struck
					})
				}
			}
			switch action {
			case FaultDrop:
				continue
			case FaultDup:
				batch = append(batch, m, m)
			case FaultGarble:
				garbled = true
				batch = append(batch, m)
			default: // FaultNone, FaultDelay
				batch = append(batch, m)
			}
		}
		l.batchBuf = batch
		if len(batch) == 0 {
			continue
		}
		l.buf.Reset()
		if err := WriteBatch(&l.buf, l.codec, batch); err != nil {
			return nil, err
		}
		if garbled {
			payload := l.buf.Bytes()[4:]
			for i := range payload {
				payload[i] ^= 0x5a
			}
		}
		got, err := ReadBatch(&l.buf)
		if err != nil {
			if garbled {
				continue // the corrupted frame is lost in its entirety
			}
			return nil, err
		}
		out = append(out, got...)
	}
	return out, nil
}
