package netproto

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
)

// fastRetry is the chaos suite's reconnect policy: small deterministic
// backoffs so resumes land well inside the phase deadline.
var fastRetry = RetryPolicy{
	MaxAttempts: 5,
	BaseDelay:   2 * time.Millisecond,
	MaxDelay:    50 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.2,
	Seed:        1,
}

// chaosCenter starts an options-built center writing its audit ledger
// to buf.
func chaosCenter(t *testing.T, buf *bytes.Buffer, opts ...Option) *Center {
	t.Helper()
	base := []Option{WithTraceSeed(7), WithLedger(NewJournal(buf))}
	c, err := StartCenter("127.0.0.1:0", append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// runChaosDays runs a fixed truthful neighborhood for the given number
// of days, with per-agent options from optsFor (nil means fault-free),
// and returns the ledger bytes. The topology and seeds are fixed so two
// invocations differ only by their fault plans.
func runChaosDays(t *testing.T, days int, optsFor func(i int) []Option) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := chaosCenter(t, &buf)
	agents := make([]*Agent, len(traceTestTypes))
	for i, typ := range traceTestTypes {
		var opts []Option
		if optsFor != nil {
			opts = optsFor(i)
		}
		a, err := Connect(context.Background(), c.Addr(), core.HouseholdID(i), &Truthful{Type: typ}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	if err := c.WaitForAgentsContext(context.Background(), len(agents)); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= days; day++ {
		record, err := c.RunDayContext(context.Background(), day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if record.Substituted != nil || record.Absent != nil {
			t.Fatalf("day %d settled degraded (substituted %v, absent %v); faults should have resumed",
				day, record.Substituted, record.Absent)
		}
	}
	return buf.Bytes()
}

// TestChaosPermanentlyDarkAgentSettlesAsDefector is the tentpole
// acceptance test: a settlement day with one agent that reports a
// preference and then goes permanently dark must complete, bill the
// dark household via the Eq. 5 defector path from its journaled report,
// and keep the Theorem 1 budget residual at zero — with the
// substitution recorded in the audit ledger and the entry passing a
// full equation audit.
func TestChaosPermanentlyDarkAgentSettlesAsDefector(t *testing.T) {
	var buf bytes.Buffer
	c := chaosCenter(t, &buf, WithPhaseDeadline(300*time.Millisecond))

	for i, typ := range traceTestTypes[:2] {
		a, err := Connect(context.Background(), c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	// Household 2 answers the preference request and then falls silent:
	// dark past the consumption deadline.
	darkPref := core.MustPreference(18, 23, 2)
	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 2}); err != nil {
		t.Fatal(err)
	}
	if w, err := ReadMessage(conn); err != nil || w.Kind != KindWelcome {
		t.Fatalf("registration failed: %v %v", w, err)
	}
	go func() {
		for {
			m, err := ReadMessage(conn)
			if err != nil {
				return
			}
			if m.Kind == KindRequest {
				_ = WriteMessage(conn, &Message{Kind: KindPreference, ID: 2, Day: m.Day, Pref: &darkPref})
			}
			// Allocations and payments go unanswered: permanently dark.
		}
	}()
	if err := c.WaitForAgentsContext(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	record, err := c.RunDayContext(context.Background(), 1)
	if err != nil {
		t.Fatalf("degraded day should complete, got %v", err)
	}
	if len(record.Reports) != 3 {
		t.Fatalf("%d reports, want 3 (the dark household reported)", len(record.Reports))
	}
	if len(record.Absent) != 0 {
		t.Errorf("absent = %v, want none (the dark household did report)", record.Absent)
	}
	idx := -1
	for i, r := range record.Reports {
		if r.ID == 2 {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("dark household missing from reports")
	}
	if record.Substituted == nil || !record.Substituted[idx] {
		t.Fatalf("substituted = %v, want household 2 marked", record.Substituted)
	}
	for i := range record.Reports {
		if i != idx && record.Substituted[i] {
			t.Errorf("live household %d marked substituted", record.Reports[i].ID)
		}
	}
	if got, want := record.Consumptions[idx].Interval, mechanism.DarkConsumption(darkPref); got != want {
		t.Errorf("imputed consumption %v, want DarkConsumption %v", got, want)
	}
	if record.Flexibility[idx] != 0 {
		t.Errorf("dark household kept flexibility %g, want 0 (defector path)", record.Flexibility[idx])
	}

	// Theorem 1 holds exactly on the degraded day.
	var revenue float64
	for _, p := range record.Payments {
		revenue += p
	}
	if residual := revenue - mechanism.DefaultXi*record.Cost; math.Abs(residual) > 1e-9 {
		t.Errorf("budget residual %g, want 0", residual)
	}

	// The ledger records the substitution and passes the full audit.
	entries, err := mechanism.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d ledger entries, want 1", len(entries))
	}
	h := entries[0].Households[idx]
	if !h.Substituted || !h.Defected {
		t.Errorf("ledger row: substituted=%v defected=%v, want both true", h.Substituted, h.Defected)
	}
	if bad := entries[0].Audit(); len(bad) != 0 {
		t.Errorf("degraded-day audit found mismatches: %v", bad)
	}
}

// TestChaosDropThenResumeByteIdenticalLedger is the resume acceptance
// test: an agent whose link is cut mid-day (its consumption reply is
// dropped on the wire) reconnects under its retry policy, presents its
// session token, is replayed the allocation it missed, and the day —
// and every later day — settles to the byte-identical ledger of a
// fault-free run.
func TestChaosDropThenResumeByteIdenticalLedger(t *testing.T) {
	resumesBefore := obs.Default().Counter(obs.MetricNetResumesTotal, obs.LabelSide, obs.SideCenter).Value()

	clean := runChaosDays(t, 2, nil)
	if len(clean) == 0 {
		t.Fatal("empty fault-free ledger")
	}
	// Agent 0's message index 2 is its day-1 consumption reply
	// (0 = hello, 1 = preference reply).
	plan, err := ParseFaultPlan("drop@2")
	if err != nil {
		t.Fatal(err)
	}
	faulted := runChaosDays(t, 2, func(i int) []Option {
		if i != 0 {
			return nil
		}
		return []Option{WithFaultPlan(plan), WithRetryPolicy(fastRetry)}
	})
	if !bytes.Equal(clean, faulted) {
		t.Errorf("ledger bytes differ between fault-free and drop-then-resume runs:\n%s\nvs\n%s", clean, faulted)
	}
	if got := obs.Default().Counter(obs.MetricNetResumesTotal, obs.LabelSide, obs.SideCenter).Value(); got <= resumesBefore {
		t.Errorf("center resume counter %d, want > %d (a session resumed)", got, resumesBefore)
	}
}

// TestChaosMixedFaultsByteIdenticalLedger drives drop, garble, dup, and
// delay through full settlement days at once: every fault either
// resumes or is absorbed, and the ledger stays byte-identical to the
// fault-free run.
func TestChaosMixedFaultsByteIdenticalLedger(t *testing.T) {
	clean := runChaosDays(t, 2, nil)
	optsFor := func(i int) []Option {
		switch i {
		case 0: // consumption reply dropped: link cut, resume
			plan, _ := ParseFaultPlan("drop@2")
			return []Option{WithFaultPlan(plan), WithRetryPolicy(fastRetry)}
		case 1: // preference reply garbled: center drops the link, resume
			plan, _ := ParseFaultPlan("garble@1")
			return []Option{WithFaultPlan(plan), WithRetryPolicy(fastRetry)}
		default: // duplicated and delayed replies: absorbed, no resume
			plan, _ := ParseFaultPlan("dup@1,delay@3,hold=5ms")
			return []Option{WithFaultPlan(plan), WithRetryPolicy(fastRetry)}
		}
	}
	faulted := runChaosDays(t, 2, optsFor)
	if !bytes.Equal(clean, faulted) {
		t.Error("ledger bytes differ between fault-free and mixed-fault runs")
	}
	// The same fault scenario replays to the same ledger: faults,
	// backoff jitter, and tokens are all seeded.
	again := runChaosDays(t, 2, optsFor)
	if !bytes.Equal(faulted, again) {
		t.Error("ledger bytes differ between two identical fault runs")
	}
}

// TestSessionTokenGatesResume exercises the resume handshake directly:
// a live session rejects a second registration, a dark session rejects
// a wrong token, and the issued token resumes.
func TestSessionTokenGatesResume(t *testing.T) {
	var buf bytes.Buffer
	c := chaosCenter(t, &buf)

	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 5}); err != nil {
		t.Fatal(err)
	}
	w, err := ReadMessage(conn)
	if err != nil || w.Kind != KindWelcome {
		t.Fatalf("registration failed: %v %v", w, err)
	}
	if w.Token == "" {
		t.Fatal("welcome carried no session token")
	}

	// Live session: any second hello for the ID is a duplicate.
	dup := rawDial(t, c.Addr())
	if err := WriteMessage(dup, &Message{Kind: KindHello, ID: 5, Token: w.Token}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(dup); err != nil || m.Kind != KindError || !strings.Contains(m.Err, "duplicate") {
		t.Fatalf("hello against a live session: %v %v, want duplicate rejection", m, err)
	}

	// Dark session: a wrong token is rejected, the issued one resumes.
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.AgentCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	impostor := rawDial(t, c.Addr())
	if err := WriteMessage(impostor, &Message{Kind: KindHello, ID: 5, Token: "0123456789abcdef"}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(impostor); err != nil || m.Kind != KindError || !strings.Contains(m.Err, "token") {
		t.Fatalf("hello with a wrong token: %v %v, want token rejection", m, err)
	}
	resumed := rawDial(t, c.Addr())
	if err := WriteMessage(resumed, &Message{Kind: KindHello, ID: 5, Token: w.Token}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMessage(resumed); err != nil || m.Kind != KindWelcome {
		t.Fatalf("resume with the issued token: %v %v, want welcome", m, err)
	}
}

// TestRunDayContextCancel: a cancelled context aborts a phase promptly
// instead of waiting out the deadline.
func TestRunDayContextCancel(t *testing.T) {
	var buf bytes.Buffer
	c := chaosCenter(t, &buf) // default 10s phase deadline

	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.RunDayContext(ctx, 1)
	if err == nil {
		t.Fatal("RunDayContext should fail when its context expires")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, context expired after 100ms", elapsed)
	}
}

// TestWaitForAgentsContextCancel mirrors the ctx conversion of the old
// timeout-based wait.
func TestWaitForAgentsContextCancel(t *testing.T) {
	var buf bytes.Buffer
	c := chaosCenter(t, &buf)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.WaitForAgentsContext(ctx, 3); err == nil {
		t.Error("WaitForAgentsContext should fail when its context expires")
	}
}
