package netproto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"enki/internal/dist"
	"enki/internal/obs"
)

// FaultAction is one kind of injected network fault, applied to a
// single outbound protocol message.
type FaultAction uint8

// Fault actions a FaultPlan can schedule per message index.
const (
	// FaultNone delivers the message normally.
	FaultNone FaultAction = iota
	// FaultDrop cuts the link instead of delivering the message: the
	// connection is closed and the frame is lost, as if the cable was
	// pulled mid-send. The peer observes a read error; the sender's own
	// next read fails, which is what triggers the agent's retry path.
	FaultDrop
	// FaultDelay holds the message for the plan's Hold duration before
	// delivering it, simulating a congested or slow link.
	FaultDelay
	// FaultDup delivers the frame twice, simulating a retransmitting
	// link. Receivers must treat day-cycle replies idempotently.
	FaultDup
	// FaultGarble delivers a correctly framed but bit-flipped payload.
	// The receiver's JSON decode fails and it drops the connection,
	// exercising the same resume path as FaultDrop but from the far
	// side of the link.
	FaultGarble
)

// String names the action for metrics labels and plan specs.
func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	case FaultGarble:
		return "garble"
	default:
		return "none"
	}
}

// DefaultFaultHold is the FaultDelay hold time when a plan does not set
// one.
const DefaultFaultHold = 10 * time.Millisecond

// FaultPlan is a deterministic fault-injection schedule: a map from
// outbound message index to the fault applied to that message. On an
// agent the index counts every message the agent ever sends (hello,
// then one reply per phase, then the hellos of any reconnects); on the
// center it counts per connection. Identical plans yield identical
// fault sequences, which is what makes chaos runs reproducible and lets
// the chaos suite assert byte-identical ledgers across repeats.
//
// Build one explicitly, with GenerateFaultPlan (seeded rates), or from
// a -fault-plan flag spec via ParseFaultPlan.
type FaultPlan struct {
	// Actions maps a 0-based outbound message index to its fault.
	// Indexes absent from the map deliver normally.
	Actions map[int]FaultAction
	// Hold is the FaultDelay hold time; zero means DefaultFaultHold.
	Hold time.Duration
}

// ActionAt returns the fault scheduled for message index i (nil-safe).
func (p *FaultPlan) ActionAt(i int) FaultAction {
	if p == nil || p.Actions == nil {
		return FaultNone
	}
	return p.Actions[i]
}

func (p *FaultPlan) hold() time.Duration {
	if p == nil || p.Hold == 0 {
		return DefaultFaultHold
	}
	return p.Hold
}

// String renders the plan as a spec string ParseFaultPlan accepts,
// with explicit per-index actions in index order.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Actions) == 0 {
		return ""
	}
	idx := make([]int, 0, len(p.Actions))
	for i := range p.Actions {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	parts := make([]string, 0, len(idx))
	for _, i := range idx {
		parts = append(parts, fmt.Sprintf("%s@%d", p.Actions[i], i))
	}
	return strings.Join(parts, ",")
}

// GenerateFaultPlan derives a fault schedule for the first msgs message
// indexes from a seed and per-action rates in [0, 1]. The draw is a
// pure function of the arguments (dist.RNG), so the same seed and
// rates always name the same plan — reproducible soak runs.
func GenerateFaultPlan(seed uint64, msgs int, drop, delay, dup, garble float64) *FaultPlan {
	rng := dist.New(seed)
	plan := &FaultPlan{Actions: make(map[int]FaultAction)}
	for i := 0; i < msgs; i++ {
		u := rng.Float64()
		switch {
		case u < drop:
			plan.Actions[i] = FaultDrop
		case u < drop+delay:
			plan.Actions[i] = FaultDelay
		case u < drop+delay+dup:
			plan.Actions[i] = FaultDup
		case u < drop+delay+dup+garble:
			plan.Actions[i] = FaultGarble
		}
	}
	return plan
}

// ParseFaultPlan parses a -fault-plan flag spec. Two token families may
// be mixed, comma-separated:
//
//	drop@3,dup@7,garble@12      explicit per-index actions
//	seed=42,msgs=100,drop=0.05  seeded generation over the first msgs
//	                            indexes (rates: drop, delay, dup, garble)
//	hold=50ms                   FaultDelay hold time
//
// Explicit index actions override generated ones. An empty spec yields
// a nil plan (no faults).
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var (
		seed                   uint64
		msgs                   = 64
		drop, delay, dup, garb float64
		hold                   time.Duration
		generate               bool
		explicit               = map[int]FaultAction{}
		actionsByName          = map[string]FaultAction{"drop": FaultDrop, "delay": FaultDelay, "dup": FaultDup, "garble": FaultGarble}
	)
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if name, idxStr, ok := strings.Cut(tok, "@"); ok {
			action, known := actionsByName[name]
			if !known {
				return nil, fmt.Errorf("netproto: fault plan %q: unknown action %q", spec, name)
			}
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("netproto: fault plan %q: bad message index %q", spec, idxStr)
			}
			explicit[idx] = action
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("netproto: fault plan %q: token %q is neither action@index nor key=value", spec, tok)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("netproto: fault plan %q: bad seed %q", spec, val)
			}
			seed = n
		case "msgs":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("netproto: fault plan %q: bad msgs %q", spec, val)
			}
			msgs = n
		case "hold":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("netproto: fault plan %q: bad hold %q", spec, val)
			}
			hold = d
		case "drop", "delay", "dup", "garble":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("netproto: fault plan %q: rate %s=%q outside [0, 1]", spec, key, val)
			}
			generate = true
			switch key {
			case "drop":
				drop = rate
			case "delay":
				delay = rate
			case "dup":
				dup = rate
			case "garble":
				garb = rate
			}
		default:
			return nil, fmt.Errorf("netproto: fault plan %q: unknown key %q", spec, key)
		}
	}
	var plan *FaultPlan
	if generate {
		plan = GenerateFaultPlan(seed, msgs, drop, delay, dup, garb)
	} else {
		plan = &FaultPlan{Actions: make(map[int]FaultAction)}
	}
	for i, a := range explicit {
		plan.Actions[i] = a
	}
	plan.Hold = hold
	return plan, nil
}

// faultInjector applies a FaultPlan to a stream of outbound messages,
// counting indexes across calls. A nil injector (or nil plan) delivers
// everything untouched, so senders can call it unconditionally.
type faultInjector struct {
	plan *FaultPlan
	next atomic.Int64
}

func newFaultInjector(plan *FaultPlan) *faultInjector {
	if plan == nil {
		return nil
	}
	return &faultInjector{plan: plan}
}

// send delivers m on conn under the connection's negotiated framing
// (ws; nil means legacy JSON frames), applying the fault scheduled for
// this injector's next message index. FaultDrop closes conn and reports
// success: the message is lost in flight and the link is down, which
// the sender discovers on its next read — exactly how a real link
// failure presents.
func (f *faultInjector) send(conn net.Conn, ws *wireState, m *Message) error {
	if f == nil || f.plan == nil {
		return ws.write(conn, m)
	}
	idx := int(f.next.Add(1) - 1)
	action := f.plan.ActionAt(idx)
	if action != FaultNone {
		obs.Default().Counter(obs.MetricNetFaultsTotal, obs.LabelAction, action.String()).Inc()
	}
	switch action {
	case FaultDrop:
		conn.Close()
		return nil
	case FaultDelay:
		time.Sleep(f.plan.hold())
		return ws.write(conn, m)
	case FaultDup:
		if err := ws.write(conn, m); err != nil {
			return err
		}
		return ws.write(conn, m)
	case FaultGarble:
		return writeGarbled(conn, ws, m)
	default:
		return ws.write(conn, m)
	}
}

// writeGarbled frames m correctly but bit-flips every payload byte, so
// the receiver's length-prefixed read succeeds and its decode fails — a
// deterministic stand-in for on-wire corruption, under whichever
// framing the connection negotiated.
func writeGarbled(w net.Conn, ws *wireState, m *Message) error {
	var payload []byte
	var err error
	if ws != nil && ws.codec != nil {
		// Garble the whole batch frame body after the length header: the
		// codec ID or the message bytes are corrupted either way, and
		// the receiver's DecodeBatch fails.
		frame, ferr := AppendBatch(nil, ws.codec, []*Message{m})
		if ferr != nil {
			return ferr
		}
		payload = frame[4:]
	} else if payload, err = json.Marshal(m); err != nil {
		return fmt.Errorf("netproto: encode %s: %w", m.Kind, err)
	}
	for i := range payload {
		payload[i] ^= 0x5a
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("netproto: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("netproto: write payload: %w", err)
	}
	observeFrame(obs.DirectionSent, len(payload))
	return nil
}
