package netproto

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/obs"
)

// Policy is a household agent's decision logic — the ECC unit of the
// paper: it decides what preference to report for a day and how to
// consume given an allocation, and observes the resulting settlement.
type Policy interface {
	// Report returns the preference χ̂ to declare for the day.
	Report(day int) core.Preference
	// Consume returns the realized consumption ω given the center's
	// allocation. It must have the reported duration.
	Consume(day int, allocation core.Interval) core.Interval
	// Feedback delivers the settlement for a completed day.
	Feedback(day int, detail PaymentDetail)
}

// Truthful is the prosocial policy: report the true preference and
// follow the allocation exactly.
type Truthful struct {
	// Type is the household's private type.
	Type core.Type
}

var _ Policy = (*Truthful)(nil)

// Report implements Policy.
func (p *Truthful) Report(int) core.Preference { return p.Type.True }

// Consume implements Policy.
func (p *Truthful) Consume(_ int, allocation core.Interval) core.Interval { return allocation }

// Feedback implements Policy.
func (p *Truthful) Feedback(int, PaymentDetail) {}

// Misreporter widens or shifts its reported window but consumes inside
// its true window, defecting whenever the allocation misses its true
// preference — the Section V-B scenario.
type Misreporter struct {
	// Type is the household's private type.
	Type core.Type
	// Reported is the misreported preference (same duration).
	Reported core.Preference
}

var _ Policy = (*Misreporter)(nil)

// Report implements Policy.
func (p *Misreporter) Report(int) core.Preference { return p.Reported }

// Consume implements Policy: follow the allocation when it satisfies
// the true preference, otherwise defect to the closest true-window
// placement.
func (p *Misreporter) Consume(_ int, allocation core.Interval) core.Interval {
	return core.ClosestConsumption(p.Type.True, allocation)
}

// Feedback implements Policy.
func (p *Misreporter) Feedback(int, PaymentDetail) {}

// Agent is a household ECC client connected to a neighborhood center.
// It answers the center's protocol messages using its Policy. Create
// with Connect; stop with Close, which closes the connection and waits
// for the message loop to exit.
//
// With a retry policy (WithRetryPolicy), a link failure triggers
// bounded redials with exponential backoff and deterministic seeded
// jitter; each successful redial resumes the prior session by token,
// and the center replays whatever phase messages were missed. Without
// one, the first failure is terminal (the historical behaviour).
type Agent struct {
	id     core.HouseholdID
	policy Policy
	cfg    agentConfig
	inj    *faultInjector // indices persist across reconnects
	jitter *dist.RNG      // retry jitter stream, split per household
	reg    *obs.Registry  // per-agent metrics, piggybacked when reporting
	src    string         // federation source key ("agent/<id>")

	mu      sync.Mutex
	ws      *wireState // framing negotiated on the current connection
	conn    net.Conn
	token   string // session-resumption credential from the welcome
	history []PaymentDetail
	paid    map[int]bool // days already settled; dedupes replayed payments
	err     error
	closed  bool // Close was called; suppress the resulting read error

	closing chan struct{}
	done    chan struct{}
	once    sync.Once
}

// Connect dials a center, registers the household, and starts the
// agent's message loop. The context governs the initial dial and
// handshake only; use Close to stop the agent. Options configure the
// transport (WithDialer), reconnection (WithRetryPolicy), and fault
// injection (WithFaultPlan).
func Connect(ctx context.Context, addr string, id core.HouseholdID, policy Policy, opts ...Option) (*Agent, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := o.validate("Connect", targetAgent); err != nil {
		return nil, err
	}
	cfg := o.agent
	if cfg.dial == nil {
		var d net.Dialer
		cfg.dial = func(ctx context.Context) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := cfg.dial(ctx)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial center: %w", err)
	}
	a, err := newAgent(conn, id, policy, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// Dial connects to a center over plain TCP without reconnection.
//
// Deprecated: use Connect, which takes a context and options.
func Dial(addr string, id core.HouseholdID, policy Policy) (*Agent, error) {
	return Connect(context.Background(), addr, id, policy)
}

// NewAgent registers the household over a caller-provided connection —
// typically a tls.Conn — and starts the agent's message loop. The agent
// takes ownership of the connection and closes it on Close. Without a
// WithDialer option the agent cannot reconnect, since it has no way to
// re-establish the transport.
func NewAgent(conn net.Conn, id core.HouseholdID, policy Policy, opts ...Option) (*Agent, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := o.validate("NewAgent", targetAgent); err != nil {
		return nil, err
	}
	return newAgent(conn, id, policy, o.agent)
}

func newAgent(conn net.Conn, id core.HouseholdID, policy Policy, cfg agentConfig) (*Agent, error) {
	if policy == nil {
		return nil, errors.New("netproto: nil policy")
	}
	a := &Agent{
		id:      id,
		policy:  policy,
		cfg:     cfg,
		inj:     newFaultInjector(cfg.plan),
		conn:    conn,
		paid:    make(map[int]bool),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.retry.Enabled() {
		a.jitter = cfg.retry.jitterRNG(uint64(id))
	}
	if cfg.reporting {
		a.reg = obs.NewRegistry()
		a.src = fmt.Sprintf("agent/%d", id)
	}
	token, err := a.handshake(conn, "")
	if err != nil {
		return nil, err
	}
	a.token = token
	go a.loop()
	return a, nil
}

// handshake registers or resumes over conn: hello (bearing the resume
// token, if any, plus the codec offer) out, welcome back. The welcome's
// codec selection fixes the connection's framing — empty (a pre-batching
// center, or one that declined the offer) keeps the legacy per-message
// JSON frames. It returns the session token the center issued.
func (a *Agent) handshake(conn net.Conn, token string) (string, error) {
	hello := &Message{Kind: KindHello, ID: a.id, Token: token, Codecs: a.cfg.codecs}
	if err := a.inj.send(conn, nil, hello); err != nil {
		return "", err
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		return "", fmt.Errorf("netproto: read welcome: %w", err)
	}
	if welcome.Kind != KindWelcome {
		return "", rejectionError(welcome)
	}
	var ws *wireState
	if welcome.Codec != "" {
		codec, ok := LookupCodec(welcome.Codec)
		if !ok {
			return "", fmt.Errorf("netproto: center selected unknown codec %q", welcome.Codec)
		}
		ws = &wireState{codec: codec}
	}
	a.mu.Lock()
	a.ws = ws
	a.mu.Unlock()
	return welcome.Token, nil
}

// rejectionError maps a registration rejection onto the sentinel error
// taxonomy: a token mismatch is ErrSessionExpired, a follower replica
// is ErrNotLeader. The wire strings themselves are stable protocol
// surface; the sentinels are what callers should branch on.
func rejectionError(welcome *Message) error {
	switch {
	case strings.Contains(welcome.Err, "token"):
		return fmt.Errorf("netproto: registration rejected (%s): %w", welcome.Err, ErrSessionExpired)
	case strings.Contains(welcome.Err, "not leader"):
		return fmt.Errorf("netproto: registration rejected (%s): %w", welcome.Err, ErrNotLeader)
	default:
		return fmt.Errorf("netproto: registration rejected: %s %s", welcome.Kind, welcome.Err)
	}
}

// terminalErr is the error an agent records when its reconnect path
// gives up: with a retry policy configured the cause is wrapped in
// ErrRetryExhausted, so callers distinguish "retried and lost" from the
// policy-less first-failure-is-terminal mode.
func (a *Agent) terminalErr(cause error) error {
	if !a.cfg.retry.Enabled() {
		return cause
	}
	return fmt.Errorf("%w (%d attempts): %v", ErrRetryExhausted, a.cfg.retry.MaxAttempts, cause)
}

// ID returns the agent's household ID.
func (a *Agent) ID() core.HouseholdID { return a.id }

// Close shuts the connection and waits for the message loop to exit.
func (a *Agent) Close() error {
	a.once.Do(func() {
		a.mu.Lock()
		a.closed = true
		conn := a.conn
		a.mu.Unlock()
		close(a.closing)
		conn.Close()
	})
	<-a.done
	return nil
}

// Err returns the terminal error of the message loop, if any (nil for
// a clean shutdown via Close).
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// History returns the settlements observed so far, oldest first.
func (a *Agent) History() []PaymentDetail {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PaymentDetail, len(a.history))
	copy(out, a.history)
	return out
}

// phaseSpan opens the agent-side span for handling one center message:
// a remote child of the center's phase span (via the message's trace
// context), so both sides of a settlement day share one trace.
func (a *Agent) phaseSpan(m *Message, phase Kind) *ActiveAgentSpan {
	var tc obs.TraceContext
	if m.Trace != nil {
		tc = *m.Trace
	}
	span := obs.DefaultTracer().StartRemote(tc, obs.SpanNetAgentPhase,
		obs.LabelPhase, string(phase),
		"day", strconv.Itoa(m.Day),
		"household", strconv.Itoa(int(a.id)))
	return &ActiveAgentSpan{span: span, traceID: tc.TraceID}
}

// ActiveAgentSpan pairs an in-flight agent span with its trace ID so
// replies can carry the agent's own context back to the center.
type ActiveAgentSpan struct {
	span    *obs.ActiveSpan
	traceID string
}

// reply returns the trace context an agent reply should carry: the
// shared trace ID with the agent span as the sender position. Nil when
// the inbound message carried no trace.
func (s *ActiveAgentSpan) reply() *obs.TraceContext {
	if s.traceID == "" {
		return nil
	}
	return &obs.TraceContext{TraceID: s.traceID, SpanID: s.span.ID()}
}

// End finishes the underlying span (nil-safe).
func (s *ActiveAgentSpan) End() { s.span.End() }

func (a *Agent) loop() {
	defer close(a.done)
	for {
		a.mu.Lock()
		conn, ws := a.conn, a.ws
		a.mu.Unlock()
		m, err := ws.read(conn)
		if err != nil {
			if a.isClosed() {
				return
			}
			if a.reconnect() {
				continue
			}
			a.setErr(a.terminalErr(err))
			return
		}
		fatal, err := a.handle(m)
		if err == nil {
			continue
		}
		if fatal {
			a.setErr(err)
			return
		}
		// A send failed: the link is down, not the protocol. Try to
		// resume; the center will replay the message we failed to
		// answer.
		if a.isClosed() {
			return
		}
		if a.reconnect() {
			continue
		}
		a.setErr(a.terminalErr(err))
		return
	}
}

// handle processes one center message. A returned error with fatal true
// is a protocol failure that terminates the agent; with fatal false it
// is a transport failure the reconnect path may recover from. Payments
// are deduplicated by day, since session resumption can replay one the
// agent already observed.
func (a *Agent) handle(m *Message) (fatal bool, err error) {
	switch m.Kind {
	case KindRequest:
		span := a.phaseSpan(m, KindPreference)
		pref := a.policy.Report(m.Day)
		if a.reg != nil {
			a.reg.Counter(obs.MetricAgentReportsTotal).Inc()
		}
		err := a.send(&Message{Kind: KindPreference, ID: a.id, Day: m.Day, Pref: &pref, Trace: span.reply()})
		span.End()
		return false, err
	case KindAllocation:
		if m.Interval == nil {
			return true, errors.New("netproto: allocation frame without interval")
		}
		span := a.phaseSpan(m, KindConsumption)
		cons := a.policy.Consume(m.Day, *m.Interval)
		// The obs snapshot piggybacks on the consumption phase, sent
		// BEFORE the reply: the center's collect() returns the moment
		// the last consumption lands, so a report trailing it would sit
		// in the inbox until the next phase. Snapshots are cumulative —
		// a replay after reconnect just re-delivers the same totals.
		if a.reg != nil {
			report := &Message{Kind: KindMetricsReport, ID: a.id, Day: m.Day,
				Metrics: &obs.MetricsReport{Source: a.src, Snapshot: a.reg.Snapshot()}}
			if err := a.send(report); err != nil {
				span.End()
				return false, err
			}
		}
		err := a.send(&Message{Kind: KindConsumption, ID: a.id, Day: m.Day, Interval: &cons, Trace: span.reply()})
		span.End()
		return false, err
	case KindPayment:
		if m.Payment == nil {
			return false, nil
		}
		a.mu.Lock()
		dup := a.paid[m.Day]
		if !dup {
			a.paid[m.Day] = true
			a.history = append(a.history, *m.Payment)
		}
		a.mu.Unlock()
		if !dup {
			if a.reg != nil {
				a.reg.Counter(obs.MetricAgentDaysSettled).Inc()
			}
			span := a.phaseSpan(m, KindPayment)
			a.policy.Feedback(m.Day, *m.Payment)
			span.End()
		}
		return false, nil
	case KindError:
		return true, fmt.Errorf("netproto: center error: %s", m.Err)
	default:
		return true, fmt.Errorf("netproto: unexpected %s from center", m.Kind)
	}
}

// send writes one message on the current connection through the fault
// injector, under the connection's negotiated framing.
func (a *Agent) send(m *Message) error {
	a.mu.Lock()
	conn, ws := a.conn, a.ws
	a.mu.Unlock()
	return a.inj.send(conn, ws, m)
}

// reconnect runs the retry policy after a link failure: bounded
// redials spaced by exponential backoff with the agent's deterministic
// jitter stream, each presenting the session token so the center
// resumes the session and replays missed messages. It reports whether
// a connection was re-established.
func (a *Agent) reconnect() bool {
	a.mu.Lock()
	token := a.token
	closed := a.closed
	a.mu.Unlock()
	if closed || a.cfg.dial == nil || !a.cfg.retry.Enabled() || token == "" {
		return false
	}
	for attempt := 1; attempt <= a.cfg.retry.MaxAttempts; attempt++ {
		obs.Default().Counter(obs.MetricNetRetriesTotal).Inc()
		if rec := obs.DefaultRecorder(); rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.EventRetry, Shard: -1, Action: obs.SideAgent, N: attempt})
		}
		wait := time.NewTimer(a.cfg.retry.Backoff(attempt, a.jitter))
		select {
		case <-wait.C:
		case <-a.closing:
			wait.Stop()
			return false
		}
		conn, err := a.cfg.dial(context.Background())
		if err != nil {
			continue
		}
		// Any handshake failure is retryable: the center may still be
		// tearing down the dead connection (a transient "duplicate
		// household id") or restarting.
		newToken, err := a.handshake(conn, token)
		if err != nil {
			conn.Close()
			continue
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			conn.Close()
			return false
		}
		a.conn = conn
		if newToken != "" {
			a.token = newToken
		}
		a.mu.Unlock()
		obs.Default().Counter(obs.MetricNetResumesTotal, obs.LabelSide, obs.SideAgent).Inc()
		if rec := obs.DefaultRecorder(); rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.EventResume, Shard: -1, Action: obs.SideAgent, N: attempt})
		}
		return true
	}
	return false
}

func (a *Agent) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

func (a *Agent) setErr(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return // shutdown initiated locally; the read error is expected
	}
	if a.err == nil && err != nil {
		a.err = err
	}
}
