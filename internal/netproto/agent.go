package netproto

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"enki/internal/core"
	"enki/internal/obs"
)

// Policy is a household agent's decision logic — the ECC unit of the
// paper: it decides what preference to report for a day and how to
// consume given an allocation, and observes the resulting settlement.
type Policy interface {
	// Report returns the preference χ̂ to declare for the day.
	Report(day int) core.Preference
	// Consume returns the realized consumption ω given the center's
	// allocation. It must have the reported duration.
	Consume(day int, allocation core.Interval) core.Interval
	// Feedback delivers the settlement for a completed day.
	Feedback(day int, detail PaymentDetail)
}

// Truthful is the prosocial policy: report the true preference and
// follow the allocation exactly.
type Truthful struct {
	// Type is the household's private type.
	Type core.Type
}

var _ Policy = (*Truthful)(nil)

// Report implements Policy.
func (p *Truthful) Report(int) core.Preference { return p.Type.True }

// Consume implements Policy.
func (p *Truthful) Consume(_ int, allocation core.Interval) core.Interval { return allocation }

// Feedback implements Policy.
func (p *Truthful) Feedback(int, PaymentDetail) {}

// Misreporter widens or shifts its reported window but consumes inside
// its true window, defecting whenever the allocation misses its true
// preference — the Section V-B scenario.
type Misreporter struct {
	// Type is the household's private type.
	Type core.Type
	// Reported is the misreported preference (same duration).
	Reported core.Preference
}

var _ Policy = (*Misreporter)(nil)

// Report implements Policy.
func (p *Misreporter) Report(int) core.Preference { return p.Reported }

// Consume implements Policy: follow the allocation when it satisfies
// the true preference, otherwise defect to the closest true-window
// placement.
func (p *Misreporter) Consume(_ int, allocation core.Interval) core.Interval {
	return core.ClosestConsumption(p.Type.True, allocation)
}

// Feedback implements Policy.
func (p *Misreporter) Feedback(int, PaymentDetail) {}

// Agent is a household ECC client connected to a neighborhood center.
// It answers the center's protocol messages using its Policy. Create
// with Dial; stop with Close, which closes the connection and waits for
// the message loop to exit.
type Agent struct {
	id     core.HouseholdID
	conn   net.Conn
	policy Policy

	mu      sync.Mutex
	history []PaymentDetail
	err     error
	closed  bool // Close was called; suppress the resulting read error

	done chan struct{}
	once sync.Once
}

// Dial connects to a center over plain TCP, registers the household,
// and starts the agent's message loop. For TLS or other transports,
// establish the connection yourself and use NewAgent.
func Dial(addr string, id core.HouseholdID, policy Policy) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial center: %w", err)
	}
	a, err := NewAgent(conn, id, policy)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// NewAgent registers the household over a caller-provided connection —
// typically a tls.Conn — and starts the agent's message loop. The agent
// takes ownership of the connection and closes it on Close.
func NewAgent(conn net.Conn, id core.HouseholdID, policy Policy) (*Agent, error) {
	if policy == nil {
		return nil, errors.New("netproto: nil policy")
	}
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: id}); err != nil {
		return nil, err
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("netproto: read welcome: %w", err)
	}
	if welcome.Kind != KindWelcome {
		return nil, fmt.Errorf("netproto: registration rejected: %s %s", welcome.Kind, welcome.Err)
	}

	a := &Agent{id: id, conn: conn, policy: policy, done: make(chan struct{})}
	go a.loop()
	return a, nil
}

// ID returns the agent's household ID.
func (a *Agent) ID() core.HouseholdID { return a.id }

// Close shuts the connection and waits for the message loop to exit.
func (a *Agent) Close() error {
	a.once.Do(func() {
		a.mu.Lock()
		a.closed = true
		a.mu.Unlock()
		a.conn.Close()
	})
	<-a.done
	return nil
}

// Err returns the terminal error of the message loop, if any (nil for
// a clean shutdown via Close).
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// History returns the settlements observed so far, oldest first.
func (a *Agent) History() []PaymentDetail {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PaymentDetail, len(a.history))
	copy(out, a.history)
	return out
}

// phaseSpan opens the agent-side span for handling one center message:
// a remote child of the center's phase span (via the message's trace
// context), so both sides of a settlement day share one trace.
func (a *Agent) phaseSpan(m *Message, phase Kind) *ActiveAgentSpan {
	var tc obs.TraceContext
	if m.Trace != nil {
		tc = *m.Trace
	}
	span := obs.DefaultTracer().StartRemote(tc, obs.SpanNetAgentPhase,
		obs.LabelPhase, string(phase),
		"day", strconv.Itoa(m.Day),
		"household", strconv.Itoa(int(a.id)))
	return &ActiveAgentSpan{span: span, traceID: tc.TraceID}
}

// ActiveAgentSpan pairs an in-flight agent span with its trace ID so
// replies can carry the agent's own context back to the center.
type ActiveAgentSpan struct {
	span    *obs.ActiveSpan
	traceID string
}

// reply returns the trace context an agent reply should carry: the
// shared trace ID with the agent span as the sender position. Nil when
// the inbound message carried no trace.
func (s *ActiveAgentSpan) reply() *obs.TraceContext {
	if s.traceID == "" {
		return nil
	}
	return &obs.TraceContext{TraceID: s.traceID, SpanID: s.span.ID()}
}

// End finishes the underlying span (nil-safe).
func (s *ActiveAgentSpan) End() { s.span.End() }

func (a *Agent) loop() {
	defer close(a.done)
	for {
		m, err := ReadMessage(a.conn)
		if err != nil {
			a.setErr(err)
			return
		}
		switch m.Kind {
		case KindRequest:
			span := a.phaseSpan(m, KindPreference)
			pref := a.policy.Report(m.Day)
			reply := &Message{Kind: KindPreference, ID: a.id, Day: m.Day, Pref: &pref, Trace: span.reply()}
			err := WriteMessage(a.conn, reply)
			span.End()
			if err != nil {
				a.setErr(err)
				return
			}
		case KindAllocation:
			if m.Interval == nil {
				a.setErr(errors.New("netproto: allocation frame without interval"))
				return
			}
			span := a.phaseSpan(m, KindConsumption)
			cons := a.policy.Consume(m.Day, *m.Interval)
			reply := &Message{Kind: KindConsumption, ID: a.id, Day: m.Day, Interval: &cons, Trace: span.reply()}
			err := WriteMessage(a.conn, reply)
			span.End()
			if err != nil {
				a.setErr(err)
				return
			}
		case KindPayment:
			if m.Payment != nil {
				span := a.phaseSpan(m, KindPayment)
				a.mu.Lock()
				a.history = append(a.history, *m.Payment)
				a.mu.Unlock()
				a.policy.Feedback(m.Day, *m.Payment)
				span.End()
			}
		case KindError:
			a.setErr(fmt.Errorf("netproto: center error: %s", m.Err))
			return
		default:
			a.setErr(fmt.Errorf("netproto: unexpected %s from center", m.Kind))
			return
		}
	}
}

func (a *Agent) setErr(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return // shutdown initiated locally; the read error is expected
	}
	if a.err == nil && err != nil {
		a.err = err
	}
}
