package netproto

import (
	"encoding/binary"
	"fmt"
	"io"

	"enki/internal/obs"
)

// Batch frame layout, used once a connection has negotiated a codec
// (legacy connections keep the historical one-JSON-message-per-frame
// format of WriteMessage/ReadMessage):
//
//	u32 BE   payload length (everything after these 4 bytes)
//	u8       codec ID
//	uvarint  message count
//	count ×  { uvarint message length, message bytes }
//
// A frame carries 1..n messages encoded with one codec. Which framing a
// connection speaks is negotiated on the hello/welcome exchange (always
// legacy-framed), so the reader never has to guess.

// DefaultBatchSize is the messages-per-frame cap applied when batching
// is enabled without an explicit WithBatchSize.
const DefaultBatchSize = 64

// frameOverhead is the fixed per-frame cost: length header, codec ID.
const frameOverhead = 4 + 1

// AppendBatch encodes msgs into one batch frame appended to dst. It is
// the allocation-free core of WriteBatch, exposed for benchmarks and
// the in-process cluster links.
func AppendBatch(dst []byte, c Codec, msgs []*Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	dst = append(dst, c.ID())
	dst = binary.AppendUvarint(dst, uint64(len(msgs)))
	var scratch []byte
	for _, m := range msgs {
		enc, err := c.Append(scratch[:0], m)
		if err != nil {
			return nil, err
		}
		scratch = enc
		dst = binary.AppendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
	}
	payload := len(dst) - start - 4
	if payload > MaxFrameSize {
		return nil, fmt.Errorf("netproto: batch frame of %d bytes exceeds limit", payload)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(payload))
	return dst, nil
}

// WriteBatch frames and writes msgs as one batch frame encoded with c,
// and records the frame in the wire metrics (frames, messages-per-frame
// histogram, per-codec bytes).
func WriteBatch(w io.Writer, c Codec, msgs []*Message) error {
	frame, err := AppendBatch(nil, c, msgs)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("netproto: write frame: %w", err)
	}
	observeBatch(obs.DirectionSent, c, len(msgs), len(frame))
	return nil
}

// observeBatch counts one batch frame: the legacy per-message traffic
// series (so dashboards sum both framings), plus the frame count, the
// messages-per-frame histogram, and per-codec byte volume.
func observeBatch(direction string, c Codec, msgs, wireBytes int) {
	reg := obs.Default()
	reg.Counter(obs.MetricNetMessagesTotal, obs.LabelDirection, direction).Add(uint64(msgs))
	reg.Counter(obs.MetricNetBytesTotal, obs.LabelDirection, direction).Add(uint64(wireBytes))
	reg.Counter(obs.MetricNetFramesTotal, obs.LabelDirection, direction).Inc()
	reg.Histogram(obs.MetricNetFrameMessages, obs.BatchBuckets).Observe(float64(msgs))
	reg.Counter(obs.MetricNetCodecBytesTotal, obs.LabelCodec, c.Name(), obs.LabelDirection, direction).Add(uint64(wireBytes))
	if rec := obs.DefaultRecorder(); rec.Enabled() {
		rec.Record(obs.Event{
			Kind:   obs.EventWireFrame,
			Shard:  -1,
			Codec:  c.Name(),
			Action: direction,
			N:      msgs,
			Bytes:  wireBytes,
		})
	}
}

// DecodeBatch parses one batch frame payload (everything after the u32
// length header) into messages.
func DecodeBatch(payload []byte) ([]*Message, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("netproto: empty batch frame")
	}
	c, ok := lookupCodecID(payload[0])
	if !ok {
		return nil, fmt.Errorf("netproto: unknown codec id %d", payload[0])
	}
	rest := payload[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("netproto: batch frame missing message count")
	}
	rest = rest[n:]
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("netproto: batch frame claims %d messages in %d bytes", count, len(rest))
	}
	msgs := make([]*Message, 0, count)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint(rest)
		if n <= 0 || size > uint64(len(rest)-n) {
			return nil, fmt.Errorf("netproto: batch frame message %d truncated", i)
		}
		rest = rest[n:]
		m, err := c.Decode(rest[:size])
		if err != nil {
			return nil, err
		}
		rest = rest[size:]
		msgs = append(msgs, m)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("netproto: batch frame has %d trailing bytes", len(rest))
	}
	return msgs, nil
}

// ReadBatch reads one batch frame from r and decodes its messages,
// recording the frame in the wire metrics.
func ReadBatch(r io.Reader) ([]*Message, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF is meaningful to callers; do not wrap
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameSize {
		return nil, fmt.Errorf("netproto: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("netproto: read payload: %w", err)
	}
	msgs, err := DecodeBatch(payload)
	if err != nil {
		return nil, err
	}
	if len(msgs) > 0 {
		c, _ := lookupCodecID(payload[0])
		observeBatch(obs.DirectionReceived, c, len(msgs), int(size)+4)
	}
	return msgs, nil
}

// frameReader adapts the batch framing to the one-message-at-a-time
// read loops of the center and agent: it reads a frame when its buffer
// runs dry and hands out the decoded messages in order.
type frameReader struct {
	r       io.Reader
	pending []*Message
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

func (fr *frameReader) next() (*Message, error) {
	for len(fr.pending) == 0 {
		msgs, err := ReadBatch(fr.r)
		if err != nil {
			return nil, err
		}
		fr.pending = msgs
	}
	m := fr.pending[0]
	fr.pending = fr.pending[1:]
	return m, nil
}

// wireState is one connection's framing mode: nil codec means the
// legacy per-message JSON framing, a non-nil codec means batch frames.
// The reader is lazily created because the mode is decided only after
// the hello/welcome exchange.
type wireState struct {
	codec Codec
	fr    *frameReader
}

// write sends one message under the connection's framing (a batch of
// one on negotiated connections — the TCP path serves one household per
// connection, so cross-household batching happens on cluster links, not
// here).
func (ws *wireState) write(w io.Writer, m *Message) error {
	if ws == nil || ws.codec == nil {
		return WriteMessage(w, m)
	}
	return WriteBatch(w, ws.codec, []*Message{m})
}

// read receives the next message under the connection's framing.
func (ws *wireState) read(r io.Reader) (*Message, error) {
	if ws == nil || ws.codec == nil {
		return ReadMessage(r)
	}
	if ws.fr == nil || ws.fr.r != r {
		ws.fr = newFrameReader(r)
	}
	return ws.fr.next()
}
