package netproto

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/mechanism"
	"enki/internal/pricing"
	"enki/internal/profile"
	"enki/internal/sched"
)

// buildCluster enrolls n deterministic truthful households (profile
// generator, seed 42) into a fresh cluster built with opts.
func buildCluster(t *testing.T, n int, opts ...Option) *Cluster {
	t.Helper()
	cluster, err := StartCluster(context.Background(), opts...)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { cluster.Close() })
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(42))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	for i := 0; i < n; i++ {
		p := gen.Draw()
		if err := cluster.Join(core.HouseholdID(i), &Truthful{Type: p.TypeWide()}); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	return cluster
}

// marshalDays renders a multi-day cluster run to bytes for bit-identity
// comparisons.
func marshalDays(t *testing.T, cluster *Cluster, days int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for day := 1; day <= days; day++ {
		rec, err := cluster.ClusterDay(context.Background(), day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if err := enc.Encode(rec); err != nil {
			t.Fatalf("encode day %d: %v", day, err)
		}
	}
	return buf.Bytes()
}

// TestClusterWorkersBitIdentical is the cluster's determinism contract:
// the serial reference run (Workers: 1) and any parallel run settle
// byte-identical days — records and audit ledger both — for every codec.
func TestClusterWorkersBitIdentical(t *testing.T) {
	for _, codec := range CodecNames() {
		t.Run(codec, func(t *testing.T) {
			var ref []byte
			var refLedger string
			for _, workers := range []int{1, 2, 7} {
				var ledger bytes.Buffer
				cluster := buildCluster(t, 120,
					WithShards(16),
					WithWorkers(workers),
					WithCodec(codec),
					WithTraceSeed(7),
					WithLedger(NewJournal(&ledger)),
				)
				got := marshalDays(t, cluster, 3)
				if ref == nil {
					ref, refLedger = got, ledger.String()
					continue
				}
				if !bytes.Equal(got, ref) {
					t.Errorf("workers=%d record bytes differ from serial reference", workers)
				}
				if ledger.String() != refLedger {
					t.Errorf("workers=%d ledger bytes differ from serial reference", workers)
				}
			}
		})
	}
}

// TestClusterJoinOrderIrrelevant: the shard partition is a function of
// the member set, so enrolling households in reverse produces the same
// settled bytes as enrolling them in order.
func TestClusterJoinOrderIrrelevant(t *testing.T) {
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(42))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	n := 60
	profiles := gen.DrawN(n)
	run := func(order []int) []byte {
		cluster, err := StartCluster(context.Background(), WithShards(8), WithTraceSeed(7))
		if err != nil {
			t.Fatalf("StartCluster: %v", err)
		}
		defer cluster.Close()
		for _, i := range order {
			if err := cluster.Join(core.HouseholdID(i), &Truthful{Type: profiles[i].TypeWide()}); err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		}
		return marshalDays(t, cluster, 2)
	}
	forward := make([]int, n)
	reverse := make([]int, n)
	for i := range forward {
		forward[i] = i
		reverse[i] = n - 1 - i
	}
	if !bytes.Equal(run(forward), run(reverse)) {
		t.Error("join order changed the settled bytes")
	}
}

// TestClusterMatchesSim pins the cluster's settlement to the in-process
// simulator: one shard, a shared deterministic scheduler, batch framing
// in between — the payments must match sim.Run exactly, proving the
// wire framing is transparent to the mechanism.
func TestClusterMatchesSim(t *testing.T) {
	// Imported here to avoid a dependency cycle: sim imports netproto,
	// so the equivalence test lives in enkitest-style form — the sim
	// side is recomputed inline via the shared settlement helper.
	gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(9))
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	profiles := gen.DrawN(20)

	cluster, err := StartCluster(context.Background(),
		WithScheduler(&sched.Greedy{Pricer: defaultTestPricer(), Rating: 2}),
		WithCodec(CodecBinary),
	)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cluster.Close()
	for i, p := range profiles {
		if err := cluster.Join(core.HouseholdID(i), &Truthful{Type: p.TypeWide()}); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	rec, err := cluster.ClusterDay(context.Background(), 1)
	if err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}
	if len(rec.Shards) != 1 || rec.Shards[0].Record == nil {
		t.Fatalf("expected one shard with a record, got %+v", rec)
	}

	// Reference: the same day directly through the settlement core.
	reports := make([]core.Report, len(profiles))
	for i, p := range profiles {
		reports[i] = core.Report{ID: core.HouseholdID(i), Pref: p.TypeWide().True}
	}
	scheduler := &sched.Greedy{Pricer: defaultTestPricer(), Rating: 2}
	assignments, err := scheduler.Allocate(reports)
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	consumptions := make([]core.Consumption, len(reports))
	for i := range assignments {
		consumptions[i] = core.Consumption{ID: reports[i].ID, Interval: assignments[i].Interval}
	}
	cfg := CenterConfig{Pricer: defaultTestPricer(), Mechanism: mechanism.DefaultConfig(), Rating: 2}
	want, _, err := settleDay(cfg, "", 1, reports, assignments, consumptions, nil)
	if err != nil {
		t.Fatalf("settleDay: %v", err)
	}
	got := rec.Shards[0].Record
	if len(got.Payments) != len(want.Payments) {
		t.Fatalf("settled %d households, want %d", len(got.Payments), len(want.Payments))
	}
	for i := range want.Payments {
		if got.Payments[i] != want.Payments[i] {
			t.Errorf("household %d payment %g, want %g", i, got.Payments[i], want.Payments[i])
		}
	}
	if got.Cost != want.Cost || got.Peak != want.Peak {
		t.Errorf("aggregates (%g, %g), want (%g, %g)", got.Cost, got.Peak, want.Cost, want.Peak)
	}
}

// TestClusterBudgetIdentityPerShard checks Theorem 1 on every shard and
// on the merge: each neighborhood collects exactly ξ·κ, so residuals
// vanish shard by shard and in total.
func TestClusterBudgetIdentityPerShard(t *testing.T) {
	cluster := buildCluster(t, 90, WithShards(9), WithCodec(CodecBinary), WithTraceSeed(3))
	rec, err := cluster.ClusterDay(context.Background(), 1)
	if err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}
	xi := mechanism.DefaultConfig().Xi
	for _, shard := range rec.Shards {
		if shard.Err != "" {
			t.Fatalf("shard %d failed: %s", shard.Shard, shard.Err)
		}
		if residual := shard.Revenue - xi*shard.Cost; math.Abs(residual) > 1e-9 {
			t.Errorf("shard %d residual %g", shard.Shard, residual)
		}
	}
	if residual := rec.Revenue - xi*rec.Cost; math.Abs(residual) > 1e-9 {
		t.Errorf("merged residual %g", residual)
	}
	if rec.Settled != 90 || rec.Failed != 0 {
		t.Errorf("settled %d failed %d, want 90/0", rec.Settled, rec.Failed)
	}
}

// TestClusterShardRecordsOff: the memory-bounded mode drops the bulky
// per-household records but keeps every summary aggregate.
func TestClusterShardRecordsOff(t *testing.T) {
	cluster := buildCluster(t, 40, WithShards(4), WithShardRecords(false))
	rec, err := cluster.ClusterDay(context.Background(), 1)
	if err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}
	for _, shard := range rec.Shards {
		if shard.Record != nil {
			t.Errorf("shard %d kept a record with records off", shard.Shard)
		}
		if shard.Settled == 0 || shard.Cost <= 0 {
			t.Errorf("shard %d summary empty: %+v", shard.Shard, shard)
		}
	}
}

// TestClusterChaosFaultyShardIsolated is the cluster's blast-radius
// contract: a shard whose link eats every frame fails alone, and its
// siblings settle byte-for-byte what they settle on a fault-free run.
func TestClusterChaosFaultyShardIsolated(t *testing.T) {
	// Drop every message on shard 2's link for the whole day.
	sabotage := &FaultPlan{Actions: map[int]FaultAction{}}
	for i := 0; i < 200; i++ {
		sabotage.Actions[i] = FaultDrop
	}
	run := func(opts ...Option) *ClusterDayRecord {
		base := []Option{WithShards(5), WithTraceSeed(11)}
		cluster := buildCluster(t, 50, append(base, opts...)...)
		rec, err := cluster.ClusterDay(context.Background(), 1)
		if err != nil {
			t.Fatalf("ClusterDay: %v", err)
		}
		return rec
	}
	clean := run()
	faulty := run(WithShardFaultPlan(2, sabotage))

	if faulty.Shards[2].Err == "" {
		t.Fatal("sabotaged shard did not fail")
	}
	if faulty.Failed != 1 {
		t.Fatalf("failed shards = %d, want 1", faulty.Failed)
	}
	for s := 0; s < 5; s++ {
		if s == 2 {
			continue
		}
		got, _ := json.Marshal(faulty.Shards[s])
		want, _ := json.Marshal(clean.Shards[s])
		if !bytes.Equal(got, want) {
			t.Errorf("sibling shard %d perturbed by shard 2's faults", s)
		}
	}
}

// TestClusterChaosFaultDegradesShard: dropping one household's
// consumption reply inside a shard settles that household via the
// imputed-defector path — the shard degrades, it does not fail, and its
// budget identity still holds exactly.
func TestClusterChaosFaultDegradesShard(t *testing.T) {
	// One shard of 10 households. Per-link message stream: 10 requests,
	// 10 preferences, 10 allocations, then consumptions — drop the first
	// consumption reply (index 30).
	cluster := buildCluster(t, 10,
		WithShards(1),
		WithBatchSize(4),
		WithShardFaultPlan(0, &FaultPlan{Actions: map[int]FaultAction{30: FaultDrop}}),
	)
	rec, err := cluster.ClusterDay(context.Background(), 1)
	if err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}
	shard := rec.Shards[0]
	if shard.Err != "" {
		t.Fatalf("shard failed instead of degrading: %s", shard.Err)
	}
	if shard.Substituted != 1 {
		t.Fatalf("substituted = %d, want 1", shard.Substituted)
	}
	if shard.Settled != 10 {
		t.Fatalf("settled = %d, want 10 (dark household still billed)", shard.Settled)
	}
	xi := mechanism.DefaultConfig().Xi
	if residual := shard.Revenue - xi*shard.Cost; math.Abs(residual) > 1e-9 {
		t.Errorf("degraded shard residual %g", residual)
	}
	if shard.Record == nil || shard.Record.Substituted == nil {
		t.Fatal("record does not mark the substituted household")
	}
}

// TestClusterChaosGarbledFrameLosesBatch: a garbled frame loses every
// message it carries (the batched analogue of a corrupted TCP frame),
// and with batch size 4 that means up to four households go absent from
// one injected fault.
func TestClusterChaosGarbledFrameLosesBatch(t *testing.T) {
	// Garble the first request frame: requests 0-3 are lost, so those
	// households never report and sit the day out.
	cluster := buildCluster(t, 12,
		WithShards(1),
		WithBatchSize(4),
		WithShardFaultPlan(0, &FaultPlan{Actions: map[int]FaultAction{0: FaultGarble}}),
	)
	rec, err := cluster.ClusterDay(context.Background(), 1)
	if err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}
	shard := rec.Shards[0]
	if shard.Err != "" {
		t.Fatalf("shard failed: %s", shard.Err)
	}
	if shard.Absent != 4 {
		t.Errorf("absent = %d, want 4 (whole garbled frame lost)", shard.Absent)
	}
	if shard.Settled != 8 {
		t.Errorf("settled = %d, want 8", shard.Settled)
	}
}

// TestClusterEmptyAndErrorPaths covers the service's refusals: no
// members, bad codec, bad shard count, double-join, joining after
// close.
func TestClusterEmptyAndErrorPaths(t *testing.T) {
	ctx := context.Background()
	if _, err := StartCluster(ctx, WithShards(0)); err == nil {
		t.Error("shards=0 accepted")
	}
	if _, err := StartCluster(ctx, WithCodec("gzip")); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := StartCluster(ctx, WithShards(2), WithShardFaultPlan(5, &FaultPlan{})); err == nil {
		t.Error("out-of-range shard fault plan accepted")
	}
	cluster, err := StartCluster(ctx)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	if _, err := cluster.ClusterDay(ctx, 1); err == nil {
		t.Error("empty cluster settled a day")
	}
	typ := profile.Profile{}
	_ = typ
	p := &Truthful{}
	if err := cluster.Join(1, p); err != nil {
		t.Fatalf("join: %v", err)
	}
	if err := cluster.Join(1, p); err == nil {
		t.Error("duplicate id accepted")
	}
	cluster.Close()
	if err := cluster.Join(2, p); err == nil {
		t.Error("join after close accepted")
	}
	if _, err := cluster.ClusterDay(ctx, 1); err == nil {
		t.Error("day after close accepted")
	}
}

// defaultTestPricer returns the pricer defaultOptions uses, for tests
// that need a matching reference computation.
func defaultTestPricer() pricing.Pricer { return defaultOptions().center.Pricer }
