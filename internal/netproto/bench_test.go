package netproto

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"enki/internal/core"
	"enki/internal/dist"
	"enki/internal/obs"
	"enki/internal/profile"
)

// benchBatch builds a representative shard-phase batch: the message mix
// one batch frame actually carries during a day (requests, preferences,
// allocations, consumptions, payments).
func benchBatch(n int) []*Message {
	pref := core.MustPreference(16, 22, 3)
	iv := core.Interval{Begin: 17, End: 20}
	msgs := make([]*Message, 0, n)
	for i := 0; i < n; i++ {
		id := core.HouseholdID(i)
		switch i % 5 {
		case 0:
			msgs = append(msgs, &Message{Kind: KindRequest, ID: id, Day: 3})
		case 1:
			msgs = append(msgs, &Message{Kind: KindPreference, ID: id, Day: 3, Pref: &pref})
		case 2:
			msgs = append(msgs, &Message{Kind: KindAllocation, ID: id, Day: 3, Interval: &iv})
		case 3:
			msgs = append(msgs, &Message{Kind: KindConsumption, ID: id, Day: 3, Interval: &iv})
		default:
			msgs = append(msgs, &Message{Kind: KindPayment, ID: id, Day: 3,
				Payment: &PaymentDetail{Amount: 12.5, Flexibility: 0.4, TotalCost: 980.25}})
		}
	}
	return msgs
}

// BenchmarkBatchEncode measures AppendBatch per codec over a
// DefaultBatchSize batch; wireB/op is the encoded frame size.
func BenchmarkBatchEncode(b *testing.B) {
	msgs := benchBatch(DefaultBatchSize)
	for _, name := range CodecNames() {
		c, _ := LookupCodec(name)
		b.Run("codec="+name, func(b *testing.B) {
			var buf []byte
			var err error
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf, err = AppendBatch(buf[:0], c, msgs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(buf)), "wireB/op")
		})
	}
}

// BenchmarkBatchDecode measures DecodeBatch per codec.
func BenchmarkBatchDecode(b *testing.B) {
	msgs := benchBatch(DefaultBatchSize)
	for _, name := range CodecNames() {
		c, _ := LookupCodec(name)
		frame, err := AppendBatch(nil, c, msgs)
		if err != nil {
			b.Fatal(err)
		}
		payload := frame[4:]
		b.Run("codec="+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeBatch(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterDay settles a full preference→payment day over the
// sharded service. The codec and batch-size axes expose the two wire
// deltas BENCH_net.json is the baseline for: JSON vs binary, and
// batched frames vs frame-per-message (batch=1). frames/op and
// wireB/op come from the obs counters, so they gate the real framing
// behavior rather than an estimate.
func BenchmarkClusterDay(b *testing.B) {
	const households, shards = 2000, 16
	cases := []struct {
		codec string
		batch int
	}{
		{CodecJSON, DefaultBatchSize},
		{CodecBinary, DefaultBatchSize},
		{CodecBinary, 1},
	}
	for _, tc := range cases {
		b.Run("codec="+tc.codec+"/batch="+strconv.Itoa(tc.batch), func(b *testing.B) {
			cluster, err := StartCluster(context.Background(),
				WithShards(shards),
				WithCodec(tc.codec),
				WithBatchSize(tc.batch),
				WithShardRecords(false),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			gen, err := profile.NewGenerator(profile.DefaultConfig(), dist.New(42))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < households; i++ {
				p := gen.Draw()
				if err := cluster.Join(core.HouseholdID(i), &Truthful{Type: p.TypeWide()}); err != nil {
					b.Fatal(err)
				}
			}

			frames0 := counterFamily(obs.MetricNetFramesTotal)
			bytes0 := counterFamily(obs.MetricNetCodecBytesTotal)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.ClusterDay(context.Background(), i+1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(counterFamily(obs.MetricNetFramesTotal)-frames0)/float64(b.N), "frames/op")
			b.ReportMetric(float64(counterFamily(obs.MetricNetCodecBytesTotal)-bytes0)/float64(b.N), "wireB/op")
		})
	}
}

// counterFamily sums every label combination of one counter name.
func counterFamily(name string) uint64 {
	var total uint64
	for k, v := range obs.Default().Snapshot().Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}
