package netproto

import (
	"testing"
	"time"
)

func TestParseFaultPlanExplicit(t *testing.T) {
	plan, err := ParseFaultPlan("drop@3,dup@7,garble@12,hold=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ActionAt(3); got != FaultDrop {
		t.Errorf("ActionAt(3) = %s, want drop", got)
	}
	if got := plan.ActionAt(7); got != FaultDup {
		t.Errorf("ActionAt(7) = %s, want dup", got)
	}
	if got := plan.ActionAt(12); got != FaultGarble {
		t.Errorf("ActionAt(12) = %s, want garble", got)
	}
	if got := plan.ActionAt(0); got != FaultNone {
		t.Errorf("ActionAt(0) = %s, want none", got)
	}
	if plan.Hold != 50*time.Millisecond {
		t.Errorf("hold = %v, want 50ms", plan.Hold)
	}
	if got := plan.String(); got != "drop@3,dup@7,garble@12" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseFaultPlanEmptyAndErrors(t *testing.T) {
	plan, err := ParseFaultPlan("")
	if err != nil || plan != nil {
		t.Errorf("empty spec: plan %v err %v, want nil nil", plan, err)
	}
	for _, bad := range []string{
		"explode@3", "drop@x", "drop@-1", "bogus", "wat=1",
		"drop=1.5", "msgs=0", "seed=abc", "hold=fast",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

func TestGenerateFaultPlanDeterministicAndOverridable(t *testing.T) {
	a := GenerateFaultPlan(42, 200, 0.1, 0.1, 0.1, 0.1)
	b := GenerateFaultPlan(42, 200, 0.1, 0.1, 0.1, 0.1)
	if len(a.Actions) == 0 {
		t.Fatal("40% combined fault rate over 200 messages generated nothing")
	}
	for i, act := range a.Actions {
		if b.Actions[i] != act {
			t.Fatalf("index %d: %s vs %s from the same seed", i, act, b.Actions[i])
		}
	}
	if len(a.Actions) != len(b.Actions) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a.Actions), len(b.Actions))
	}
	// A different seed names a different schedule.
	c := GenerateFaultPlan(43, 200, 0.1, 0.1, 0.1, 0.1)
	same := len(c.Actions) == len(a.Actions)
	if same {
		for i, act := range a.Actions {
			if c.Actions[i] != act {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 42 and 43 generated identical plans")
	}
	// An explicit index token overrides the generated action.
	mixed, err := ParseFaultPlan("seed=42,msgs=50,drop=0.9,dup@0")
	if err != nil {
		t.Fatal(err)
	}
	if got := mixed.ActionAt(0); got != FaultDup {
		t.Errorf("explicit dup@0 = %s, want dup to override the generated action", got)
	}
}

func TestParseRetryPolicy(t *testing.T) {
	p, err := ParseRetryPolicy("attempts=3,base=10ms,max=1s,mult=3,jitter=0.5,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Multiplier: 3, Jitter: 0.5, Seed: 9}
	if p != want {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
	if p, err := ParseRetryPolicy(""); err != nil || p.Enabled() {
		t.Errorf("empty spec: %+v %v, want disabled policy", p, err)
	}
	if p, err := ParseRetryPolicy("attempts=2"); err != nil || p.BaseDelay != DefaultRetryBase {
		t.Errorf("omitted keys should take defaults: %+v %v", p, err)
	}
	for _, bad := range []string{"attempts=x", "base=10", "wat=1", "attempts", "attempts=-1"} {
		if _, err := ParseRetryPolicy(bad); err == nil {
			t.Errorf("spec %q should be rejected", bad)
		}
	}
}

// TestRetryBackoffDeterministicJitter is the retry-jitter extension of
// the determinism contract: the backoff sequence is a pure function of
// (policy seed, household ID, attempt), so replaying a fault scenario
// replays the same delays, while distinct households draw decorrelated
// sequences from one shared policy.
func TestRetryBackoffDeterministicJitter(t *testing.T) {
	p := DefaultRetryPolicy()
	seq := func(id uint64) []time.Duration {
		rng := p.jitterRNG(id)
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = p.Backoff(i+1, rng)
		}
		return out
	}
	first, second := seq(3), seq(3)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("attempt %d: %v vs %v from the same household stream", i+1, first[i], second[i])
		}
	}
	other := seq(4)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("households 3 and 4 drew identical jitter sequences")
	}
	// Exponential envelope: each delay stays within jitter bounds of
	// base·mult^(attempt−1), capped at MaxDelay.
	for i, d := range first {
		ideal := float64(p.BaseDelay) * pow(p.Multiplier, i)
		if ideal > float64(p.MaxDelay) {
			ideal = float64(p.MaxDelay)
		}
		lo, hi := time.Duration(ideal*(1-p.Jitter)), time.Duration(ideal*(1+p.Jitter))
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}
}

func pow(b float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= b
	}
	return out
}

func TestBackoffZeroPolicyDefaults(t *testing.T) {
	var p RetryPolicy // zero: disabled, but Backoff must still be sane
	if p.Enabled() {
		t.Fatal("zero policy should be disabled")
	}
	if d := p.Backoff(1, nil); d != DefaultRetryBase {
		t.Errorf("Backoff(1) = %v, want default base %v", d, DefaultRetryBase)
	}
	if d := p.Backoff(100, nil); d != DefaultRetryMax {
		t.Errorf("Backoff(100) = %v, want capped at %v", d, DefaultRetryMax)
	}
}
