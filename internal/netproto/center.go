package netproto

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// CenterConfig configures a neighborhood center.
type CenterConfig struct {
	// Scheduler produces allocations from reports; it must be non-nil.
	Scheduler sched.Scheduler
	// Pricer prices hourly load; it must be non-nil.
	Pricer pricing.Pricer
	// Mechanism carries the payment scaling factors.
	Mechanism mechanism.Config
	// Rating is the per-household power rating r in kW.
	Rating float64
	// ReplyTimeout bounds each protocol phase (preference collection,
	// consumption collection). Zero means DefaultReplyTimeout.
	ReplyTimeout time.Duration
	// TraceSeed parameterizes the deterministic per-day trace IDs:
	// day d's trace is obs.DeriveTraceID(TraceSeed, d), so two centers
	// replaying the same days under the same seed name the same traces.
	// Zero is a valid seed.
	TraceSeed uint64
	// Ledger, when non-nil, receives one mechanism.LedgerEntry per
	// settled day — the per-day audit record of every Eq. 4–7
	// intermediate, linked to the day's trace ID. It typically shares
	// a Journal-backed file with nothing else (one JSONL line per day).
	Ledger *Journal
}

// DefaultReplyTimeout is the per-phase wait applied when
// CenterConfig.ReplyTimeout is zero.
const DefaultReplyTimeout = 10 * time.Second

func (c CenterConfig) validate() error {
	if c.Scheduler == nil {
		return errors.New("netproto: nil scheduler")
	}
	if c.Pricer == nil {
		return errors.New("netproto: nil pricer")
	}
	if c.Rating <= 0 {
		return fmt.Errorf("netproto: rating %g must be positive", c.Rating)
	}
	return c.Mechanism.Validate()
}

// inbound is a message received from a registered agent. The conn
// pointer lets the center discard stale events from a connection that
// has since been replaced by a reconnect.
type inbound struct {
	id   core.HouseholdID
	conn *centerConn
	msg  *Message
	err  error // non-nil when the connection died
}

// centerConn is the center's view of one agent connection.
type centerConn struct {
	id   core.HouseholdID
	conn net.Conn
	mu   sync.Mutex // serializes writes
}

func (c *centerConn) send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WriteMessage(c.conn, m)
}

// Center is the neighborhood controller: it accepts household agent
// connections and orchestrates the Figure 1 day cycle. Create with
// NewCenter; stop with Close, which shuts the listener, drops every
// connection, and waits for all goroutines to exit.
type Center struct {
	cfg CenterConfig
	ln  net.Listener

	mu     sync.Mutex
	conns  map[core.HouseholdID]*centerConn
	joined chan struct{} // signaled (best effort) on each registration

	inbox chan inbound

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

// NewCenter starts a center listening on a plain TCP addr (e.g.
// "127.0.0.1:0"). For TLS or other transports, bring your own listener
// via NewCenterWithListener.
func NewCenter(addr string, cfg CenterConfig) (*Center, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen: %w", err)
	}
	c, err := NewCenterWithListener(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return c, nil
}

// NewCenterWithListener starts a center on a caller-provided listener —
// typically a tls.Listener for encrypted smart-meter links. The center
// takes ownership of the listener and closes it on Close.
func NewCenterWithListener(ln net.Listener, cfg CenterConfig) (*Center, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ReplyTimeout == 0 {
		cfg.ReplyTimeout = DefaultReplyTimeout
	}
	c := &Center{
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[core.HouseholdID]*centerConn),
		joined:  make(chan struct{}, 1),
		inbox:   make(chan inbound),
		closing: make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the listening address, for agents to dial.
func (c *Center) Addr() string { return c.ln.Addr().String() }

// Close shuts down the center and waits for all goroutines to exit.
func (c *Center) Close() error {
	c.once.Do(func() {
		close(c.closing)
		c.ln.Close()
		c.mu.Lock()
		for _, cc := range c.conns {
			cc.conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

// AgentCount returns the number of registered agents.
func (c *Center) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// WaitForAgents blocks until n agents have registered or the timeout
// elapses.
func (c *Center) WaitForAgents(n int, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if c.AgentCount() >= n {
			return nil
		}
		select {
		case <-c.joined:
		case <-deadline.C:
			return fmt.Errorf("netproto: %d of %d agents after %v", c.AgentCount(), n, timeout)
		case <-c.closing:
			return errors.New("netproto: center closed")
		}
	}
}

func (c *Center) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn performs registration then pumps messages into the inbox.
func (c *Center) handleConn(conn net.Conn) {
	defer c.wg.Done()

	hello, err := ReadMessage(conn)
	if err != nil || hello.Kind != KindHello {
		conn.Close()
		return
	}
	cc := &centerConn{id: hello.ID, conn: conn}

	c.mu.Lock()
	if _, dup := c.conns[hello.ID]; dup {
		c.mu.Unlock()
		_ = WriteMessage(conn, &Message{Kind: KindError, ID: hello.ID, Err: "duplicate household id"})
		conn.Close()
		return
	}
	c.conns[hello.ID] = cc
	c.mu.Unlock()

	if err := cc.send(&Message{Kind: KindWelcome, ID: hello.ID}); err != nil {
		c.dropConn(cc)
		return
	}
	select {
	case c.joined <- struct{}{}:
	default:
	}

	for {
		m, err := ReadMessage(conn)
		if err != nil {
			c.dropConn(cc)
			select {
			case c.inbox <- inbound{id: cc.id, conn: cc, err: err}:
			case <-c.closing:
			}
			return
		}
		select {
		case c.inbox <- inbound{id: cc.id, conn: cc, msg: m}:
		case <-c.closing:
			return
		}
	}
}

func (c *Center) dropConn(cc *centerConn) {
	cc.conn.Close()
	c.mu.Lock()
	if c.conns[cc.id] == cc {
		delete(c.conns, cc.id)
	}
	c.mu.Unlock()
}

// DayRecord is the full outcome of one protocol day. It is the unit of
// persistence (see Journal), hence the JSON tags.
type DayRecord struct {
	Day     int    `json:"day"`
	TraceID string `json:"traceId,omitempty"` // joins the record to its trace and ledger entry

	Reports      []core.Report      `json:"reports"`
	Assignments  []core.Assignment  `json:"assignments"`
	Consumptions []core.Consumption `json:"consumptions"`
	Payments     []float64          `json:"payments"` // aligned with Reports
	Flexibility  []float64          `json:"flexibility"`
	Defection    []float64          `json:"defection"`
	SocialCost   []float64          `json:"socialCost"`
	Cost         float64            `json:"cost"` // κ(ω)
	Peak         float64            `json:"peak"` // peak hourly load
}

// RunDay orchestrates one full day cycle over the currently registered
// agents: request → preferences → allocation → consumptions → payments.
// It is not safe for concurrent use with itself.
//
// The whole day is one trace: a root day span (trace ID derived from
// TraceSeed and the day number) with one child span per protocol phase,
// and the phase span's context rides on every outgoing message so the
// agents' spans join the same trace across the process boundary.
func (c *Center) RunDay(day int) (*DayRecord, error) {
	tid := obs.DeriveTraceID(c.cfg.TraceSeed, uint64(day))
	daySpan := obs.DefaultTracer().StartTrace(tid, obs.SpanNetDay, "day", strconv.Itoa(day))
	defer daySpan.End()

	members := c.snapshot()
	if len(members) == 0 {
		return nil, errors.New("netproto: no registered agents")
	}

	prefMsgs, err := c.phase(daySpan, tid, members, KindPreference, day,
		func(cc *centerConn, tc *obs.TraceContext) error {
			return cc.send(&Message{Kind: KindRequest, ID: cc.id, Day: day, Trace: tc})
		})
	if err != nil {
		return nil, err
	}
	reports := make([]core.Report, 0, len(members))
	for _, cc := range members {
		m := prefMsgs[cc.id]
		if m.Pref == nil {
			return nil, fmt.Errorf("netproto: household %d sent preference frame without pref", cc.id)
		}
		reports = append(reports, core.Report{ID: cc.id, Pref: *m.Pref})
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })

	assignments, err := c.cfg.Scheduler.Allocate(reports)
	if err != nil {
		return nil, fmt.Errorf("netproto: allocate: %w", err)
	}
	byID := make(map[core.HouseholdID]core.Interval, len(assignments))
	for _, a := range assignments {
		byID[a.ID] = a.Interval
	}
	consMsgs, err := c.phase(daySpan, tid, members, KindConsumption, day,
		func(cc *centerConn, tc *obs.TraceContext) error {
			iv := byID[cc.id]
			return cc.send(&Message{Kind: KindAllocation, ID: cc.id, Day: day, Interval: &iv, Trace: tc})
		})
	if err != nil {
		return nil, err
	}
	consumptions := make([]core.Consumption, len(reports))
	for i, r := range reports {
		m := consMsgs[r.ID]
		if m.Interval == nil {
			return nil, fmt.Errorf("netproto: household %d sent consumption frame without interval", r.ID)
		}
		if m.Interval.Len() != r.Pref.Duration {
			return nil, fmt.Errorf("netproto: household %d consumed %d slots, declared %d",
				r.ID, m.Interval.Len(), r.Pref.Duration)
		}
		consumptions[i] = core.Consumption{ID: r.ID, Interval: *m.Interval}
	}

	settleSpan := daySpan.StartChild(obs.SpanNetSettle, "day", strconv.Itoa(day))
	record, err := c.settle(tid, day, reports, assignments, consumptions)
	settleSpan.End()
	if err != nil {
		return nil, err
	}

	paySpan := daySpan.StartChild(obs.SpanNetPhase, obs.LabelPhase, string(KindPayment), "day", strconv.Itoa(day))
	payCtx := wireTrace(tid, paySpan)
	for i, r := range reports {
		detail := &PaymentDetail{
			Amount:      record.Payments[i],
			Flexibility: record.Flexibility[i],
			Defection:   record.Defection[i],
			SocialCost:  record.SocialCost[i],
			TotalCost:   record.Cost,
			PeakLoad:    record.Peak,
		}
		cc := c.lookup(r.ID)
		if cc == nil {
			paySpan.End()
			return nil, fmt.Errorf("netproto: household %d disconnected before payment", r.ID)
		}
		if err := cc.send(&Message{Kind: KindPayment, ID: r.ID, Day: day, Payment: detail, Trace: payCtx}); err != nil {
			paySpan.End()
			return nil, fmt.Errorf("netproto: payment to %d: %w", r.ID, err)
		}
	}
	paySpan.End()
	obs.Default().Counter(obs.MetricNetDaysTotal).Inc()
	return record, nil
}

// wireTrace builds the trace context stamped on outgoing messages: the
// day's deterministic trace ID always travels (the ledger links through
// it even with tracing off), the parent span ID only when a span is
// being recorded.
func wireTrace(tid string, span *obs.ActiveSpan) *obs.TraceContext {
	return &obs.TraceContext{TraceID: tid, SpanID: span.ID()}
}

// settle computes scores, payments, and aggregates for a completed day,
// and appends the day's audit-ledger entry when a ledger is configured.
func (c *Center) settle(tid string, day int, reports []core.Report, assignments []core.Assignment, consumptions []core.Consumption) (*DayRecord, error) {
	prefs := make([]core.Preference, len(reports))
	assigned := make([]core.Interval, len(reports))
	consumed := make([]core.Interval, len(reports))
	for i := range reports {
		prefs[i] = reports[i].Pref
		assigned[i] = assignments[i].Interval
		consumed[i] = consumptions[i].Interval
	}
	predicted := mechanism.FlexibilityScores(prefs)
	flex := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	defect := mechanism.DefectionScores(c.cfg.Pricer, c.cfg.Rating, assigned, consumed)
	psi, err := mechanism.SocialCostScores(flex, defect, c.cfg.Mechanism.K)
	if err != nil {
		return nil, fmt.Errorf("netproto: social cost: %w", err)
	}
	load := core.LoadOf(consumed, c.cfg.Rating)
	cost := pricing.Cost(c.cfg.Pricer, load)
	payments, err := mechanism.Payments(psi, c.cfg.Mechanism.Xi, cost)
	if err != nil {
		return nil, fmt.Errorf("netproto: payments: %w", err)
	}
	mechanism.RecordSettlementMetrics(flex, defect, psi, payments, cost, load.PAR())
	if c.cfg.Ledger != nil {
		entry := mechanism.BuildLedgerEntry(tid, day, c.cfg.Mechanism, c.cfg.Rating,
			reports, assigned, consumed, predicted, flex, defect, psi, payments, cost, load.Peak())
		if err := c.cfg.Ledger.AppendValue(entry); err != nil {
			return nil, fmt.Errorf("netproto: audit ledger: %w", err)
		}
	}
	return &DayRecord{
		Day:          day,
		TraceID:      tid,
		Reports:      reports,
		Assignments:  assignments,
		Consumptions: consumptions,
		Payments:     payments,
		Flexibility:  flex,
		Defection:    defect,
		SocialCost:   psi,
		Cost:         cost,
		Peak:         load.Peak(),
	}, nil
}

// snapshot returns the registered connections sorted by household ID.
func (c *Center) snapshot() []*centerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*centerConn, 0, len(c.conns))
	for _, cc := range c.conns {
		out = append(out, cc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (c *Center) lookup(id core.HouseholdID) *centerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conns[id]
}

// phase runs one request/response round of the day cycle under its own
// child span: it sends one message per member — stamped with the phase
// span's trace context so agent-side spans parent under it — then
// collects every member's reply of the wanted kind. The span covers the
// full round trip.
func (c *Center) phase(daySpan *obs.ActiveSpan, tid string, members []*centerConn, want Kind, day int,
	send func(cc *centerConn, tc *obs.TraceContext) error) (map[core.HouseholdID]*Message, error) {
	span := daySpan.StartChild(obs.SpanNetPhase, obs.LabelPhase, string(want), "day", strconv.Itoa(day))
	defer span.End()
	tc := wireTrace(tid, span)
	for _, cc := range members {
		if err := send(cc, tc); err != nil {
			return nil, fmt.Errorf("netproto: %s round to %d: %w", want, cc.id, err)
		}
	}
	return c.collect(members, want, day)
}

// collect waits until every member has sent a message of the wanted
// kind for the given day, or the phase times out.
func (c *Center) collect(members []*centerConn, want Kind, day int) (map[core.HouseholdID]*Message, error) {
	start := time.Now()
	defer func() {
		obs.Default().Histogram(obs.MetricNetPhaseLatencyMS, obs.LatencyBucketsMS, obs.LabelPhase, string(want)).
			Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	}()

	pending := make(map[core.HouseholdID]bool, len(members))
	for _, cc := range members {
		pending[cc.id] = true
	}
	got := make(map[core.HouseholdID]*Message, len(members))
	timer := time.NewTimer(c.cfg.ReplyTimeout)
	defer timer.Stop()

	for len(pending) > 0 {
		select {
		case in := <-c.inbox:
			if c.lookup(in.id) != in.conn {
				// Stale event from a connection that has been replaced
				// (reconnect) or already dropped: ignore it.
				continue
			}
			if in.err != nil {
				if pending[in.id] {
					return nil, fmt.Errorf("netproto: household %d disconnected during %s phase: %w",
						in.id, want, in.err)
				}
				continue
			}
			if in.msg.Kind != want || in.msg.Day != day || !pending[in.id] {
				return nil, fmt.Errorf("netproto: unexpected %s(day %d) from %d during %s phase",
					in.msg.Kind, in.msg.Day, in.id, want)
			}
			delete(pending, in.id)
			got[in.id] = in.msg
		case <-timer.C:
			obs.Default().Counter(obs.MetricNetTimeoutsTotal, obs.LabelPhase, string(want)).Inc()
			missing := make([]core.HouseholdID, 0, len(pending))
			for id := range pending {
				missing = append(missing, id)
			}
			sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
			return nil, fmt.Errorf("netproto: timeout waiting for %s from %v", want, missing)
		case <-c.closing:
			return nil, errors.New("netproto: center closed")
		}
	}
	return got, nil
}
