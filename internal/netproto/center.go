package netproto

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/pricing"
	"enki/internal/sched"
)

// CenterConfig configures a neighborhood center. Prefer the functional
// options of StartCenter; the struct remains public for the deprecated
// NewCenter constructors.
type CenterConfig struct {
	// Scheduler produces allocations from reports; it must be non-nil.
	Scheduler sched.Scheduler
	// Pricer prices hourly load; it must be non-nil.
	Pricer pricing.Pricer
	// Mechanism carries the payment scaling factors.
	Mechanism mechanism.Config
	// Rating is the per-household power rating r in kW.
	Rating float64
	// PhaseDeadline bounds each protocol phase (preference collection,
	// consumption collection). A household that has not answered when
	// the deadline expires is settled dark for the day: excluded if it
	// never reported, imputed via the Eq. 5 defector path if it
	// reported and then vanished. Zero means ReplyTimeout, then
	// DefaultPhaseDeadline.
	PhaseDeadline time.Duration
	// ReplyTimeout is honored when PhaseDeadline is zero.
	//
	// Deprecated: set PhaseDeadline (or use WithPhaseDeadline).
	ReplyTimeout time.Duration
	// TraceSeed parameterizes the deterministic per-day trace IDs:
	// day d's trace is obs.DeriveTraceID(TraceSeed, d), so two centers
	// replaying the same days under the same seed name the same traces.
	// Session-resumption tokens derive from the same seed. Zero is a
	// valid seed.
	TraceSeed uint64
	// Ledger, when non-nil, receives one mechanism.LedgerEntry per
	// settled day — the per-day audit record of every Eq. 4–7
	// intermediate, linked to the day's trace ID. It typically shares
	// a Journal-backed file with nothing else (one JSONL line per day).
	Ledger *Journal
	// FaultPlan, when non-nil, injects deterministic faults into the
	// center's outbound messages, independently per accepted
	// connection. Test/soak tooling only.
	FaultPlan *FaultPlan
	// Codec is the batch-frame codec the center prefers when an agent's
	// hello offers codec negotiation (CodecJSON or CodecBinary; empty
	// behaves as CodecJSON). Connections whose hello offers nothing — a
	// pre-batching agent — stay on the legacy per-message JSON framing
	// regardless.
	Codec string
	// Reporting enables metrics federation: agents and cluster shards
	// piggyback metricsReport snapshots onto the settlement wire, and the
	// center merges them into its federated registry view. Off by
	// default — the extra wire messages shift fault-plan message indices,
	// so chaos plans written without reporting stay valid.
	Reporting bool
	// SLO, when non-empty, attaches an SLO engine with these objectives
	// to the center's operator plane (see Operator). Objectives are
	// validated at start-up.
	SLO []obs.Objective

	// Replication hooks, set only by a ReplicaSet (same package) on the
	// centers it leads with; all nil on a standalone center. Each hook
	// blocks until its entry is quorum-committed, so a day can only
	// settle once a majority of replicas can reproduce it.
	onMember      func(id core.HouseholdID, token string, epoch uint64) error
	onPhase       func(day int, phase string, data json.RawMessage) error
	onSettle      func(tid string, day int, record *DayRecord, entry json.RawMessage) error
	beforeDeliver func(day int) error
	// seedSessions pre-registers the committed membership on a failover
	// center, so agents resume with the tokens the old leader issued.
	seedSessions []seedSession
	// epochFloor continues the registration-epoch sequence past the old
	// leader's committed registrations.
	epochFloor uint64
	// resume carries quorum-committed mid-day state: a new leader skips
	// the phases whose boundary entries committed and recomputes the
	// rest deterministically.
	resume map[int]*dayResume
}

// seedSession is one committed household membership a failover center
// starts with: the session exists (dark) before its agent reconnects.
type seedSession struct {
	id    core.HouseholdID
	token string
}

// dayResume is the committed mid-day state for one settlement day,
// rebuilt from the quorum log's phase-boundary entries on failover.
type dayResume struct {
	reports      []core.Report
	absent       []core.HouseholdID
	consumptions []core.Consumption
	substituted  []bool
	haveCons     bool
}

// prefPhasePayload is the replicated preference phase boundary.
type prefPhasePayload struct {
	Reports []core.Report      `json:"reports"`
	Absent  []core.HouseholdID `json:"absent,omitempty"`
}

// consPhasePayload is the replicated consumption phase boundary.
type consPhasePayload struct {
	Consumptions []core.Consumption `json:"consumptions"`
	Substituted  []bool             `json:"substituted,omitempty"`
}

// DefaultPhaseDeadline is the per-phase wait applied when neither
// PhaseDeadline nor ReplyTimeout is set.
const DefaultPhaseDeadline = 10 * time.Second

// DefaultReplyTimeout is the historical name of the per-phase wait.
//
// Deprecated: use DefaultPhaseDeadline.
const DefaultReplyTimeout = DefaultPhaseDeadline

func (c CenterConfig) validate() error {
	if c.Scheduler == nil {
		return errors.New("netproto: nil scheduler")
	}
	if c.Pricer == nil {
		return errors.New("netproto: nil pricer")
	}
	if c.Rating <= 0 {
		return fmt.Errorf("netproto: rating %g must be positive", c.Rating)
	}
	return c.Mechanism.Validate()
}

// inbound is a message received from a registered agent. The conn
// pointer lets the center discard stale events from a connection that
// has since been replaced by a reconnect.
type inbound struct {
	id   core.HouseholdID
	conn *centerConn
	msg  *Message
	err  error // non-nil when the connection died
}

// centerConn is the center's view of one agent connection.
type centerConn struct {
	id   core.HouseholdID
	conn net.Conn
	inj  *faultInjector
	ws   *wireState // framing negotiated on this connection's hello
	mu   sync.Mutex // serializes writes
}

func (c *centerConn) send(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj.send(c.conn, c.ws, m)
}

// sendLegacy writes m in the legacy framing regardless of negotiation —
// the welcome itself, which both sides must be able to read before the
// negotiated mode takes effect.
func (c *centerConn) sendLegacy(m *Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj.send(c.conn, nil, m)
}

// session is the center's durable state for one household, surviving
// the connections that come and go beneath it. A session with a nil
// conn is dark: its household is still a neighborhood member, but the
// link is down. The center keeps the last unanswered phase message and
// any undelivered payments so a resuming agent (same ID, same token)
// can be replayed into the point of the day it dropped out of.
type session struct {
	id        core.HouseholdID
	token     string
	conn      *centerConn // nil while dark
	lastOut   *Message    // unanswered phase message, replayed on resume
	missedPay []*Message  // payments issued while dark
}

// tokenSalt namespaces session tokens within the obs.DeriveTraceID
// stream so a token never collides with a day's trace ID.
const tokenSalt = 0x746f6b656e // "token"

func sessionToken(seed uint64, id core.HouseholdID, epoch uint64) string {
	return obs.DeriveTraceID(tokenSalt, seed, uint64(id), epoch)
}

// Center is the neighborhood controller: it accepts household agent
// connections and orchestrates the Figure 1 day cycle. Create with
// StartCenter; stop with Close, which shuts the listener, drops every
// connection, and waits for all goroutines to exit.
type Center struct {
	cfg CenterConfig
	ln  net.Listener

	mu       sync.Mutex
	sessions map[core.HouseholdID]*session
	epoch    uint64        // bumped per fresh registration; invalidates old tokens
	joined   chan struct{} // signaled (best effort) on each registration

	inbox chan inbound

	fed  *obs.Federation // non-nil when cfg.Reporting
	slo  *obs.SLOEngine  // non-nil when cfg.SLO is set
	stat centerStatus

	wg      sync.WaitGroup
	closing chan struct{}
	once    sync.Once
}

// centerStatus is the live operator-plane state behind /api/v1/day and
// /api/v1/shards: phase progress updated as the day cycle runs, last
// settled aggregates updated at settle. Its own mutex keeps the status
// readers off the session lock.
type centerStatus struct {
	mu          sync.Mutex
	day         int
	phase       string // "idle" between days
	deadlineAt  time.Time
	members     int
	reported    int
	dark        int
	daysSettled uint64

	lastDay         int
	lastSettled     int
	lastAbsent      int
	lastSubstituted int
	lastCost        float64
	lastRevenue     float64
	lastResidual    float64
	lastPeak        float64
	lastSettleMS    float64
	lastTrace       string
}

// StartCenter starts a center listening on a plain TCP addr (e.g.
// "127.0.0.1:0"), configured by functional options; unset options take
// the paper's defaults (quadratic pricer, greedy scheduler, default
// mechanism parameters). For TLS or other transports, bring your own
// listener via StartCenterListener.
func StartCenter(addr string, opts ...Option) (*Center, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen: %w", err)
	}
	c, err := StartCenterListener(ln, opts...)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return c, nil
}

// StartCenterListener starts a center on a caller-provided listener —
// typically a tls.Listener for encrypted smart-meter links. The center
// takes ownership of the listener and closes it on Close.
func StartCenterListener(ln net.Listener, opts ...Option) (*Center, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := o.validate("StartCenter", targetCenter); err != nil {
		return nil, err
	}
	return newCenter(ln, o.resolveCenter())
}

// NewCenter starts a center listening on a plain TCP addr from an
// explicit config struct.
//
// Deprecated: use StartCenter with functional options.
func NewCenter(addr string, cfg CenterConfig) (*Center, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen: %w", err)
	}
	c, err := newCenter(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return c, nil
}

// NewCenterWithListener starts a center on a caller-provided listener
// from an explicit config struct.
//
// Deprecated: use StartCenterListener with functional options.
func NewCenterWithListener(ln net.Listener, cfg CenterConfig) (*Center, error) {
	return newCenter(ln, cfg)
}

func newCenter(ln net.Listener, cfg CenterConfig) (*Center, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.PhaseDeadline == 0 {
		cfg.PhaseDeadline = cfg.ReplyTimeout
	}
	if cfg.PhaseDeadline == 0 {
		cfg.PhaseDeadline = DefaultPhaseDeadline
	}
	c := &Center{
		cfg:      cfg,
		ln:       ln,
		sessions: make(map[core.HouseholdID]*session),
		joined:   make(chan struct{}, 1),
		inbox:    make(chan inbound),
		closing:  make(chan struct{}),
	}
	c.stat.phase = "idle"
	c.epoch = cfg.epochFloor
	for _, ss := range cfg.seedSessions {
		// Seeded members start dark; their agents resume by token.
		c.sessions[ss.id] = &session{id: ss.id, token: ss.token}
	}
	if cfg.Reporting {
		c.fed = obs.NewFederation(obs.Default())
	}
	if len(cfg.SLO) > 0 {
		slo, err := obs.NewSLOEngine(obs.Default(), cfg.SLO)
		if err != nil {
			return nil, err
		}
		c.slo = slo
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Federation returns the center's federated metrics view, or nil when
// metrics reporting is off.
func (c *Center) Federation() *obs.Federation { return c.fed }

// Operator assembles the center's operator plane: the default registry,
// this center as the status source, the audit ledger's tail when a
// ledger is configured, plus the federation and SLO engine when enabled.
// Serve it with obs.ServeOperator; the caller flips SetReady once
// enrollment is complete.
func (c *Center) Operator() *obs.Operator {
	op := obs.NewOperator(nil)
	op.Status = c
	if c.cfg.Ledger != nil {
		op.Ledger = c.cfg.Ledger
	}
	op.Federation = c.fed
	op.SLO = c.slo
	return op
}

// Addr returns the listening address, for agents to dial.
func (c *Center) Addr() string { return c.ln.Addr().String() }

// Close shuts down the center and waits for all goroutines to exit.
func (c *Center) Close() error {
	c.once.Do(func() {
		close(c.closing)
		c.ln.Close()
		c.mu.Lock()
		for _, s := range c.sessions {
			if s.conn != nil {
				s.conn.conn.Close()
			}
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return nil
}

// AgentCount returns the number of households with a live connection
// (dark sessions awaiting resume are not counted).
func (c *Center) AgentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.sessions {
		if s.conn != nil {
			n++
		}
	}
	return n
}

// WaitForAgentsContext blocks until n agents are connected or the
// context is done.
func (c *Center) WaitForAgentsContext(ctx context.Context, n int) error {
	for {
		if c.AgentCount() >= n {
			return nil
		}
		select {
		case <-c.joined:
		case <-ctx.Done():
			return fmt.Errorf("netproto: %d of %d agents: %w", c.AgentCount(), n, ctx.Err())
		case <-c.closing:
			return errors.New("netproto: center closed")
		}
	}
}

// WaitForAgents blocks until n agents have registered or the timeout
// elapses.
//
// Deprecated: use WaitForAgentsContext.
func (c *Center) WaitForAgents(n int, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := c.WaitForAgentsContext(ctx, n); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("netproto: %d of %d agents after %v", c.AgentCount(), n, timeout)
		}
		return err
	}
	return nil
}

func (c *Center) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn performs registration or session resumption, then pumps
// messages into the inbox. A tokenless hello is a fresh agent: it may
// claim a dark session's ID (replacing that session outright) but never
// a live one. A hello bearing the session's token resumes it — the
// center reattaches the connection and replays the phase messages the
// agent missed while dark.
func (c *Center) handleConn(conn net.Conn) {
	defer c.wg.Done()

	hello, err := ReadMessage(conn)
	if err != nil || hello.Kind != KindHello {
		conn.Close()
		return
	}
	cc := &centerConn{id: hello.ID, conn: conn, inj: newFaultInjector(c.cfg.FaultPlan)}
	var codecName string
	if codec := selectCodec(c.cfg.Codec, hello.Codecs); codec != nil {
		cc.ws = &wireState{codec: codec}
		codecName = codec.Name()
	}

	c.mu.Lock()
	s := c.sessions[hello.ID]
	resume := false
	fresh := false
	switch {
	case s != nil && s.conn != nil:
		c.mu.Unlock()
		_ = WriteMessage(conn, &Message{Kind: KindError, ID: hello.ID, Err: "duplicate household id"})
		conn.Close()
		return
	case s != nil && hello.Token != "":
		if hello.Token != s.token {
			c.mu.Unlock()
			_ = WriteMessage(conn, &Message{Kind: KindError, ID: hello.ID, Err: "bad session token"})
			conn.Close()
			return
		}
		resume = true
	default:
		c.epoch++
		s = &session{id: hello.ID, token: sessionToken(c.cfg.TraceSeed, hello.ID, c.epoch)}
		c.sessions[hello.ID] = s
		fresh = true
	}
	s.conn = cc
	var replay []*Message
	if resume {
		if s.lastOut != nil {
			replay = append(replay, s.lastOut)
		}
		replay = append(replay, s.missedPay...)
		s.missedPay = nil
	}
	token := s.token
	epoch := c.epoch
	c.mu.Unlock()

	// A replicated center commits the membership before welcoming: the
	// welcome is the promise that a failover leader will recognize this
	// token, so it must not be issued until a majority holds the entry.
	if fresh && c.cfg.onMember != nil {
		if err := c.cfg.onMember(hello.ID, token, epoch); err != nil {
			_ = WriteMessage(conn, &Message{Kind: KindError, ID: hello.ID,
				Err: "registration not replicated: " + err.Error()})
			c.mu.Lock()
			if c.sessions[hello.ID] == s {
				delete(c.sessions, hello.ID)
			}
			c.mu.Unlock()
			conn.Close()
			return
		}
	}

	if err := cc.sendLegacy(&Message{Kind: KindWelcome, ID: hello.ID, Token: token, Codec: codecName}); err != nil {
		c.markDark(cc)
		return
	}
	if resume {
		obs.Default().Counter(obs.MetricNetResumesTotal, obs.LabelSide, obs.SideCenter).Inc()
		if rec := obs.DefaultRecorder(); rec.Enabled() {
			rec.Record(obs.Event{Kind: obs.EventResume, Shard: -1, Action: obs.SideCenter, N: int(hello.ID)})
		}
		for _, m := range replay {
			if err := cc.send(m); err != nil {
				c.markDark(cc)
				return
			}
			obs.Default().Counter(obs.MetricNetReplaysTotal).Inc()
		}
		if rec := obs.DefaultRecorder(); rec.Enabled() && len(replay) > 0 {
			rec.Record(obs.Event{Kind: obs.EventReplay, Shard: -1, N: len(replay)})
		}
	}
	select {
	case c.joined <- struct{}{}:
	default:
	}

	for {
		m, err := cc.ws.read(conn)
		if err != nil {
			c.markDark(cc)
			select {
			case c.inbox <- inbound{id: cc.id, conn: cc, err: err}:
			case <-c.closing:
			}
			return
		}
		select {
		case c.inbox <- inbound{id: cc.id, conn: cc, msg: m}:
		case <-c.closing:
			return
		}
	}
}

// markDark closes cc and detaches it from its session (if cc is still
// the session's current connection). The session itself survives so the
// agent can resume and the day can settle degraded.
func (c *Center) markDark(cc *centerConn) {
	cc.conn.Close()
	c.mu.Lock()
	detached := false
	if s := c.sessions[cc.id]; s != nil && s.conn == cc {
		s.conn = nil
		detached = true
	}
	c.mu.Unlock()
	if rec := obs.DefaultRecorder(); detached && rec.Enabled() {
		rec.Record(obs.Event{Kind: obs.EventDark, Shard: -1, N: int(cc.id)})
	}
}

// currentConn returns the live connection registered for id, or nil.
func (c *Center) currentConn(id core.HouseholdID) *centerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.sessions[id]; s != nil {
		return s.conn
	}
	return nil
}

// clearLastOut discards the pending replay message once the household
// has answered it.
func (c *Center) clearLastOut(id core.HouseholdID) {
	c.mu.Lock()
	if s := c.sessions[id]; s != nil {
		s.lastOut = nil
	}
	c.mu.Unlock()
}

// DayRecord is the full outcome of one protocol day. It is the unit of
// persistence (see Journal), hence the JSON tags.
type DayRecord struct {
	Day     int    `json:"day"`
	TraceID string `json:"traceId,omitempty"` // joins the record to its trace and ledger entry

	Reports      []core.Report      `json:"reports"`
	Assignments  []core.Assignment  `json:"assignments"`
	Consumptions []core.Consumption `json:"consumptions"`
	Payments     []float64          `json:"payments"` // aligned with Reports
	Flexibility  []float64          `json:"flexibility"`
	Defection    []float64          `json:"defection"`
	SocialCost   []float64          `json:"socialCost"`
	Cost         float64            `json:"cost"` // κ(ω)
	Peak         float64            `json:"peak"` // peak hourly load

	// Substituted marks the reports whose consumption the center
	// imputed (household dark past the consumption deadline); nil on
	// fault-free days so their journal bytes are unchanged.
	Substituted []bool `json:"substituted,omitempty"`
	// Absent lists households that were members at dawn but never
	// reported a preference: they sat the day out entirely (no
	// allocation, no bill). Nil on fault-free days.
	Absent []core.HouseholdID `json:"absent,omitempty"`
}

// RunDayContext orchestrates one full day cycle over the current
// neighborhood members: request → preferences → allocation →
// consumptions → payments. It is not safe for concurrent use with
// itself.
//
// The day degrades rather than fails when households go dark: a member
// that never reports is recorded Absent and excluded; one that reports
// and then vanishes past the consumption deadline is settled as a
// defector from its journaled report (consumption imputed by
// mechanism.DarkConsumption, flexibility forfeited), keeping the
// Theorem 1 budget identity exact. Protocol violations from live
// agents (malformed frames, out-of-phase messages, wrong-duration
// consumptions) still fail the day — degradation is for darkness, not
// for misbehaviour.
//
// The whole day is one trace: a root day span (trace ID derived from
// TraceSeed and the day number) with one child span per protocol phase,
// and the phase span's context rides on every outgoing message so the
// agents' spans join the same trace across the process boundary.
func (c *Center) RunDayContext(ctx context.Context, day int) (*DayRecord, error) {
	start := time.Now()
	tid := obs.DeriveTraceID(c.cfg.TraceSeed, uint64(day))
	daySpan := obs.DefaultTracer().StartTrace(tid, obs.SpanNetDay, "day", strconv.Itoa(day))
	defer daySpan.End()

	members := c.memberIDs()
	if len(members) == 0 {
		return nil, errors.New("netproto: no registered agents")
	}

	res := c.cfg.resume[day]

	var reports []core.Report
	var absent []core.HouseholdID
	if res != nil && res.reports != nil {
		// The preference boundary is quorum-committed: a failover leader
		// resumes from it instead of re-running the round, so the day's
		// inputs are exactly the ones a majority can reproduce.
		reports, absent = res.reports, res.absent
	} else {
		prefMsgs, prefDark, err := c.phase(ctx, daySpan, tid, members, KindPreference, day,
			func(id core.HouseholdID, tc *obs.TraceContext) *Message {
				return &Message{Kind: KindRequest, ID: id, Day: day, Trace: tc}
			})
		if err != nil {
			return nil, err
		}
		absent = prefDark
		reports = make([]core.Report, 0, len(prefMsgs))
		for _, id := range members {
			m, ok := prefMsgs[id]
			if !ok {
				continue // dark past the deadline: absent for the day
			}
			if m.Pref == nil {
				return nil, fmt.Errorf("netproto: household %d sent preference frame without pref", id)
			}
			reports = append(reports, core.Report{ID: id, Pref: *m.Pref})
		}
		if len(reports) == 0 {
			return nil, fmt.Errorf("netproto: day %d: no household reported a preference (all %d dark)", day, len(members))
		}
		if err := c.commitPhase(day, "preference", prefPhasePayload{Reports: reports, Absent: absent}); err != nil {
			return nil, err
		}
	}

	assignments, err := c.cfg.Scheduler.Allocate(reports)
	if err != nil {
		return nil, fmt.Errorf("netproto: allocate: %w", err)
	}
	byID := make(map[core.HouseholdID]core.Interval, len(assignments))
	for _, a := range assignments {
		byID[a.ID] = a.Interval
	}
	active := make([]core.HouseholdID, len(reports))
	for i, r := range reports {
		active[i] = r.ID
	}
	var consumptions []core.Consumption
	var substituted []bool
	if res != nil && res.haveCons {
		consumptions, substituted = res.consumptions, res.substituted
	} else {
		consMsgs, consDark, err := c.phase(ctx, daySpan, tid, active, KindConsumption, day,
			func(id core.HouseholdID, tc *obs.TraceContext) *Message {
				iv := byID[id]
				return &Message{Kind: KindAllocation, ID: id, Day: day, Interval: &iv, Trace: tc}
			})
		if err != nil {
			return nil, err
		}
		darkSet := make(map[core.HouseholdID]bool, len(consDark))
		for _, id := range consDark {
			darkSet[id] = true
		}
		consumptions = make([]core.Consumption, len(reports))
		for i, r := range reports {
			if darkSet[r.ID] {
				if substituted == nil {
					substituted = make([]bool, len(reports))
				}
				substituted[i] = true
				consumptions[i] = core.Consumption{ID: r.ID, Interval: mechanism.DarkConsumption(r.Pref)}
				continue
			}
			m := consMsgs[r.ID]
			if m.Interval == nil {
				return nil, fmt.Errorf("netproto: household %d sent consumption frame without interval", r.ID)
			}
			if m.Interval.Len() != r.Pref.Duration {
				return nil, fmt.Errorf("netproto: household %d consumed %d slots, declared %d",
					r.ID, m.Interval.Len(), r.Pref.Duration)
			}
			consumptions[i] = core.Consumption{ID: r.ID, Interval: *m.Interval}
		}
		if err := c.commitPhase(day, "consumption", consPhasePayload{Consumptions: consumptions, Substituted: substituted}); err != nil {
			return nil, err
		}
	}
	nSub := 0
	for _, sub := range substituted {
		if sub {
			nSub++
		}
	}

	c.stat.setPhase("settling")
	settleSpan := daySpan.StartChild(obs.SpanNetSettle, "day", strconv.Itoa(day))
	record, entry, err := c.settle(tid, day, reports, assignments, consumptions, substituted)
	settleSpan.End()
	if err != nil {
		return nil, err
	}
	if len(absent) > 0 {
		record.Absent = absent
	}

	// Commit the settled day. A replicated center blocks here until a
	// majority holds the day entry — the ledger append happens in the
	// apply path on every replica — while a standalone center appends
	// directly to its ledger.
	if c.cfg.onSettle != nil {
		raw, err := json.Marshal(entry)
		if err != nil {
			return nil, fmt.Errorf("netproto: encode ledger entry: %w", err)
		}
		if err := c.cfg.onSettle(tid, day, record, raw); err != nil {
			return nil, err
		}
	} else if c.cfg.Ledger != nil {
		if err := c.cfg.Ledger.AppendValue(entry); err != nil {
			return nil, fmt.Errorf("netproto: audit ledger: %w", err)
		}
	}
	if c.cfg.beforeDeliver != nil {
		if err := c.cfg.beforeDeliver(day); err != nil {
			return nil, err
		}
	}

	paySpan := daySpan.StartChild(obs.SpanNetPhase, obs.LabelPhase, string(KindPayment), "day", strconv.Itoa(day))
	payCtx := wireTrace(tid, paySpan)
	for i, r := range reports {
		detail := &PaymentDetail{
			Amount:      record.Payments[i],
			Flexibility: record.Flexibility[i],
			Defection:   record.Defection[i],
			SocialCost:  record.SocialCost[i],
			TotalCost:   record.Cost,
			PeakLoad:    record.Peak,
		}
		c.deliverPayment(&Message{Kind: KindPayment, ID: r.ID, Day: day, Payment: detail, Trace: payCtx})
	}
	paySpan.End()

	obs.Default().Counter(obs.MetricNetDaysTotal).Inc()
	if nSub > 0 || len(absent) > 0 {
		obs.Default().Counter(obs.MetricNetDegradedDaysTotal).Inc()
		if nSub > 0 {
			obs.Default().Counter(obs.MetricNetSubstitutionsTotal).Add(uint64(nSub))
		}
	}
	if rec := obs.DefaultRecorder(); rec.Enabled() {
		action := "ok"
		if nSub > 0 || len(absent) > 0 {
			action = "degraded"
		}
		rec.Record(obs.Event{Kind: obs.EventDay, Day: day, Shard: -1, Action: action, N: len(reports), TraceID: tid})
	}

	settleMS := float64(time.Since(start).Nanoseconds()) / 1e6
	obs.Default().Histogram(obs.MetricNetDaySettleMS, obs.LatencyBucketsMS).ObserveExemplar(settleMS, tid)
	var revenue float64
	for _, p := range record.Payments {
		revenue += p
	}
	s := &c.stat
	s.mu.Lock()
	s.phase = "settled"
	s.daysSettled++
	s.lastDay = day
	s.lastTrace = tid
	s.lastSettled = len(reports)
	s.lastAbsent = len(absent)
	s.lastSubstituted = nSub
	s.lastCost = record.Cost
	s.lastRevenue = revenue
	s.lastResidual = revenue - c.cfg.Mechanism.Xi*record.Cost
	s.lastPeak = record.Peak
	s.lastSettleMS = settleMS
	s.mu.Unlock()
	return record, nil
}

// RunDay runs one day cycle without cancellation.
//
// Deprecated: use RunDayContext.
func (c *Center) RunDay(day int) (*DayRecord, error) {
	return c.RunDayContext(context.Background(), day)
}

// deliverPayment sends a settlement best-effort: a dark household's
// payment is queued on its session and replayed when it resumes. A
// payment can never fail the day — the ledger already holds the
// authoritative record.
func (c *Center) deliverPayment(m *Message) {
	c.mu.Lock()
	s := c.sessions[m.ID]
	if s == nil {
		c.mu.Unlock()
		return
	}
	cc := s.conn
	if cc == nil {
		s.missedPay = append(s.missedPay, m)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	if err := cc.send(m); err != nil {
		c.markDark(cc)
		c.mu.Lock()
		if c.sessions[m.ID] == s {
			s.missedPay = append(s.missedPay, m)
		}
		c.mu.Unlock()
	}
}

// wireTrace builds the trace context stamped on outgoing messages: the
// day's deterministic trace ID always travels (the ledger links through
// it even with tracing off), the parent span ID only when a span is
// being recorded.
func wireTrace(tid string, span *obs.ActiveSpan) *obs.TraceContext {
	return &obs.TraceContext{TraceID: tid, SpanID: span.ID()}
}

// settle computes scores, payments, and aggregates for a completed day,
// and appends the day's audit-ledger entry when a ledger is configured.
// Substituted households forfeit their flexibility reward regardless of
// where their imputed consumption landed (they never confirmed
// compliance), putting them on the Eq. 5 defector path.
func (c *Center) settle(tid string, day int, reports []core.Report, assignments []core.Assignment, consumptions []core.Consumption, substituted []bool) (*DayRecord, *mechanism.LedgerEntry, error) {
	prefs := make([]core.Preference, len(reports))
	assigned := make([]core.Interval, len(reports))
	consumed := make([]core.Interval, len(reports))
	for i := range reports {
		prefs[i] = reports[i].Pref
		assigned[i] = assignments[i].Interval
		consumed[i] = consumptions[i].Interval
	}
	predicted := mechanism.FlexibilityScores(prefs)
	flex := mechanism.ActualFlexibilities(predicted, assigned, consumed)
	for i := range substituted {
		if substituted[i] {
			flex[i] = 0
		}
	}
	defect := mechanism.DefectionScores(c.cfg.Pricer, c.cfg.Rating, assigned, consumed)
	psi, err := mechanism.SocialCostScores(flex, defect, c.cfg.Mechanism.K)
	if err != nil {
		return nil, nil, fmt.Errorf("netproto: social cost: %w", err)
	}
	load := core.LoadOf(consumed, c.cfg.Rating)
	cost := pricing.Cost(c.cfg.Pricer, load)
	payments, err := mechanism.Payments(psi, c.cfg.Mechanism.Xi, cost)
	if err != nil {
		return nil, nil, fmt.Errorf("netproto: payments: %w", err)
	}
	mechanism.RecordSettlementMetrics(flex, defect, psi, payments, cost, c.cfg.Mechanism.Xi, load.PAR())
	var entry *mechanism.LedgerEntry
	if c.cfg.Ledger != nil || c.cfg.onSettle != nil {
		e := mechanism.BuildLedgerEntry(tid, day, c.cfg.Mechanism, c.cfg.Rating,
			reports, assigned, consumed, substituted, predicted, flex, defect, psi, payments, cost, load.Peak())
		entry = &e
	}
	return &DayRecord{
		Day:          day,
		TraceID:      tid,
		Reports:      reports,
		Assignments:  assignments,
		Consumptions: consumptions,
		Payments:     payments,
		Flexibility:  flex,
		Defection:    defect,
		SocialCost:   psi,
		Cost:         cost,
		Peak:         load.Peak(),
		Substituted:  substituted,
	}, entry, nil
}

// commitPhase replicates a phase boundary through the onPhase hook, if one is
// installed. The payload is marshalled once so every replica journals the same
// bytes.
func (c *Center) commitPhase(day int, phase string, payload any) error {
	if c.cfg.onPhase == nil {
		return nil
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("netproto: encode %s phase: %w", phase, err)
	}
	return c.cfg.onPhase(day, phase, data)
}

// redeliverDay re-issues payment notices for a day that was already committed
// to the replicated journal. Delivery is best-effort, exactly like the normal
// payment phase: agents that are connected receive the notice immediately,
// dark sessions have it queued for resume, and agents dedupe by day.
func (c *Center) redeliverDay(record *DayRecord) *DayRecord {
	c.stat.setPhase("payment")
	trace := &obs.TraceContext{TraceID: record.TraceID}
	for i, r := range record.Reports {
		if i >= len(record.Payments) {
			break
		}
		detail := &PaymentDetail{
			Amount:      record.Payments[i],
			Flexibility: record.Flexibility[i],
			Defection:   record.Defection[i],
			SocialCost:  record.SocialCost[i],
			TotalCost:   record.Cost,
			PeakLoad:    record.Peak,
		}
		c.deliverPayment(&Message{Kind: KindPayment, ID: r.ID, Day: record.Day, Payment: detail, Trace: trace})
	}
	c.stat.setPhase("settled")
	return record
}

func (s *centerStatus) startPhase(day int, phase string, members int, deadline time.Duration) {
	s.mu.Lock()
	s.day, s.phase, s.members = day, phase, members
	s.deadlineAt = time.Now().Add(deadline)
	s.reported, s.dark = 0, 0
	s.mu.Unlock()
}

func (s *centerStatus) setPhase(phase string) {
	s.mu.Lock()
	s.phase = phase
	s.mu.Unlock()
}

func (s *centerStatus) noteReported() {
	s.mu.Lock()
	s.reported++
	s.mu.Unlock()
}

func (s *centerStatus) noteDark(n int) {
	s.mu.Lock()
	s.dark = n
	s.mu.Unlock()
}

// DayStatus implements obs.StatusSource: the current day, phase, and
// reporting progress for /api/v1/day.
func (c *Center) DayStatus() obs.DayStatus {
	s := &c.stat
	s.mu.Lock()
	defer s.mu.Unlock()
	var remaining float64
	if s.phase != "idle" && s.phase != "settled" {
		if d := time.Until(s.deadlineAt); d > 0 {
			remaining = float64(d.Nanoseconds()) / 1e6
		}
	}
	return obs.DayStatus{
		Day:                 s.day,
		Phase:               s.phase,
		DeadlineRemainingMS: remaining,
		Members:             s.members,
		Reported:            s.reported,
		Dark:                s.dark,
		DaysSettled:         s.daysSettled,
		LastCost:            s.lastCost,
		LastRevenue:         s.lastRevenue,
		LastResidual:        s.lastResidual,
		LastPeak:            s.lastPeak,
	}
}

// ShardStatuses implements obs.StatusSource. A single-neighborhood
// center is its own shard 0, so enkiops renders the same table against
// an enkid daemon and a sharded cluster.
func (c *Center) ShardStatuses() []obs.ShardStatus {
	s := &c.stat
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.daysSettled == 0 {
		return []obs.ShardStatus{}
	}
	return []obs.ShardStatus{{
		Shard:        0,
		Healthy:      true,
		TraceID:      s.lastTrace,
		LastDay:      s.lastDay,
		Households:   s.lastSettled + s.lastAbsent,
		Settled:      s.lastSettled,
		Absent:       s.lastAbsent,
		Substituted:  s.lastSubstituted,
		Cost:         s.lastCost,
		Revenue:      s.lastRevenue,
		Residual:     s.lastResidual,
		LastSettleMS: s.lastSettleMS,
	}}
}

// memberIDs returns every neighborhood member — live or dark — sorted
// by household ID. Dark members stay members: they may resume mid-day,
// and until then each day settles around them.
func (c *Center) memberIDs() []core.HouseholdID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.HouseholdID, 0, len(c.sessions))
	for id := range c.sessions {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// phase runs one request/response round of the day cycle under its own
// child span: it sends one message per member — stamped with the phase
// span's trace context so agent-side spans parent under it — then
// collects replies of the wanted kind until every member has answered
// or the phase deadline expires. It returns the replies plus the sorted
// IDs of members that stayed dark; only protocol violations (not
// darkness) produce an error.
func (c *Center) phase(ctx context.Context, daySpan *obs.ActiveSpan, tid string, members []core.HouseholdID, want Kind, day int,
	build func(id core.HouseholdID, tc *obs.TraceContext) *Message) (map[core.HouseholdID]*Message, []core.HouseholdID, error) {
	span := daySpan.StartChild(obs.SpanNetPhase, obs.LabelPhase, string(want), "day", strconv.Itoa(day))
	defer span.End()
	c.stat.startPhase(day, string(want), len(members), c.cfg.PhaseDeadline)
	if rec := obs.DefaultRecorder(); rec.Enabled() {
		rec.Record(obs.Event{Kind: obs.EventPhase, Day: day, Shard: -1, Phase: string(want), Action: "start", N: len(members)})
	}
	tc := wireTrace(tid, span)
	for _, id := range members {
		m := build(id, tc)
		c.mu.Lock()
		s := c.sessions[id]
		var cc *centerConn
		if s != nil {
			s.lastOut = m // replayed if the household resumes mid-phase
			cc = s.conn
		}
		c.mu.Unlock()
		if cc == nil {
			continue // dark; the message waits on the session for a resume
		}
		if err := cc.send(m); err != nil {
			c.markDark(cc)
		}
	}
	return c.collect(ctx, members, want, day)
}

// earlierReply reports whether kind is the reply of a phase that
// precedes the want phase within the same day — a late or duplicated
// answer to a round the center has already closed, which resume replays
// and FaultDup can legitimately produce and the collector must ignore.
func earlierReply(kind, want Kind) bool {
	return want == KindConsumption && kind == KindPreference
}

// collect waits until every member has sent a message of the wanted
// kind for the given day, or the phase deadline expires — whichever
// comes first. Members dark at the deadline are returned in the dark
// list rather than failing the day; a disconnect mid-phase keeps the
// member pending until the deadline so a resuming agent can still
// answer. Wrong-kind or future-day messages from live agents are
// protocol violations and error the day.
func (c *Center) collect(ctx context.Context, members []core.HouseholdID, want Kind, day int) (map[core.HouseholdID]*Message, []core.HouseholdID, error) {
	start := time.Now()
	defer func() {
		obs.Default().Histogram(obs.MetricNetPhaseLatencyMS, obs.LatencyBucketsMS, obs.LabelPhase, string(want)).
			Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
	}()
	deadlineHist := obs.Default().Histogram(obs.MetricNetPhaseDeadlineRemainingMS, obs.LatencyBucketsMS, obs.LabelPhase, string(want))

	pending := make(map[core.HouseholdID]bool, len(members))
	for _, id := range members {
		pending[id] = true
	}
	got := make(map[core.HouseholdID]*Message, len(members))
	timer := time.NewTimer(c.cfg.PhaseDeadline)
	defer timer.Stop()

	for len(pending) > 0 {
		select {
		case in := <-c.inbox:
			if c.currentConn(in.id) != in.conn {
				// Stale event from a connection that has been replaced
				// (reconnect) or already marked dark: ignore it.
				continue
			}
			if in.err != nil {
				// The connection died; handleConn already marked the
				// session dark. Keep the member pending — it may resume
				// and answer before the deadline.
				continue
			}
			m := in.msg
			switch {
			case m.Kind == KindMetricsReport:
				// Federated snapshots are cumulative, so day skew is
				// harmless; merge (when reporting is on) and move on.
				if c.fed != nil {
					c.fed.Report(m.Metrics)
				}
				continue
			case m.Day < day:
				continue // stale reply from a previous day's replay
			case m.Day > day:
				return nil, nil, fmt.Errorf("netproto: unexpected %s(day %d) from %d during %s phase",
					m.Kind, m.Day, in.id, want)
			case m.Kind == want:
				if !pending[in.id] {
					continue // duplicate delivery (FaultDup or replay overlap)
				}
				delete(pending, in.id)
				got[in.id] = m
				c.clearLastOut(in.id)
				c.stat.noteReported()
			case earlierReply(m.Kind, want):
				continue // late answer to an already-closed round
			default:
				return nil, nil, fmt.Errorf("netproto: unexpected %s(day %d) from %d during %s phase",
					m.Kind, m.Day, in.id, want)
			}
		case <-timer.C:
			obs.Default().Counter(obs.MetricNetTimeoutsTotal, obs.LabelPhase, string(want)).Inc()
			deadlineHist.Observe(0)
			dark := make([]core.HouseholdID, 0, len(pending))
			for id := range pending {
				dark = append(dark, id)
			}
			sort.Slice(dark, func(i, j int) bool { return dark[i] < dark[j] })
			c.stat.noteDark(len(dark))
			if rec := obs.DefaultRecorder(); rec.Enabled() {
				rec.Record(obs.Event{Kind: obs.EventPhase, Day: day, Shard: -1, Phase: string(want), Action: "deadline", N: len(dark)})
			}
			return got, dark, nil
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("netproto: %s phase: %w", want, ctx.Err())
		case <-c.closing:
			return nil, nil, errors.New("netproto: center closed")
		}
	}
	if remaining := c.cfg.PhaseDeadline - time.Since(start); remaining > 0 {
		deadlineHist.Observe(float64(remaining.Nanoseconds()) / 1e6)
	}
	return got, nil, nil
}
