package netproto

import (
	"bytes"
	"context"
	"testing"

	"enki/internal/obs"
)

// TestRecorderIdentitiesWorkerInvariant extends the Workers:1 ≡
// Workers:N contract to the flight recorder: the multiset of timing-free
// event identities a cluster run captures is identical between the
// serial reference run and a parallel run. Capture timestamps are
// exempt (the "_ms" rule); everything else recorded must be a pure
// function of the settled work.
func TestRecorderIdentitiesWorkerInvariant(t *testing.T) {
	run := func(workers int) []string {
		rec := obs.DefaultRecorder()
		rec.Reset()
		rec.Enable()
		defer func() {
			rec.Disable()
			rec.Reset()
		}()
		var ledger bytes.Buffer
		cluster := buildCluster(t, 48,
			WithShards(6),
			WithWorkers(workers),
			WithTraceSeed(7),
			WithLedger(NewJournal(&ledger)),
		)
		for day := 1; day <= 2; day++ {
			if _, err := cluster.ClusterDay(context.Background(), day); err != nil {
				t.Fatalf("workers=%d day %d: %v", workers, day, err)
			}
		}
		cluster.Close()
		return rec.Identities()
	}

	serial := run(1)
	parallel := run(4)
	if len(serial) == 0 {
		t.Fatal("serial run recorded no events")
	}
	if len(serial) != len(parallel) {
		t.Fatalf("event counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("identity multiset diverges at %d:\nserial:   %s\nparallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestRecorderCapturesFaultAndDegradation: the flight recorder sees an
// injected fault and the degradation it causes, tagged with the faulted
// shard — the signal enkidebug's timeline and cause ranking key on.
func TestRecorderCapturesFaultAndDegradation(t *testing.T) {
	rec := obs.DefaultRecorder()
	rec.Reset()
	rec.Enable()
	defer func() {
		rec.Disable()
		rec.Reset()
	}()
	cluster := buildCluster(t, 10,
		WithShards(1),
		WithBatchSize(4),
		WithShardFaultPlan(0, &FaultPlan{Actions: map[int]FaultAction{30: FaultDrop}}),
	)
	if _, err := cluster.ClusterDay(context.Background(), 1); err != nil {
		t.Fatalf("ClusterDay: %v", err)
	}

	var faults, degradedShardDays, degradedDays, frames int
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.EventFault:
			faults++
			if e.Shard != 0 || e.Action != "drop" {
				t.Errorf("fault event mis-tagged: %+v", e)
			}
		case obs.EventShardDay:
			if e.Action == "degraded" && e.Shard == 0 {
				degradedShardDays++
			}
		case obs.EventDay:
			if e.Action == "degraded" {
				degradedDays++
			}
		case obs.EventWireFrame:
			frames++
			if e.Codec == "" || e.N <= 0 || e.Bytes <= 0 {
				t.Errorf("wire-frame event incomplete: %+v", e)
			}
		}
	}
	if faults != 1 {
		t.Errorf("fault events = %d, want 1", faults)
	}
	if degradedShardDays != 1 {
		t.Errorf("degraded shard-day events = %d, want 1", degradedShardDays)
	}
	if degradedDays != 1 {
		t.Errorf("degraded day events = %d, want 1", degradedDays)
	}
	if frames == 0 {
		t.Error("no wire-frame events captured")
	}
}
