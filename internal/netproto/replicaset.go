package netproto

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"enki/internal/core"
	"enki/internal/obs"
	"enki/internal/replica"
)

// errReplicaKilled marks a day that failed because the leader replica
// was killed mid-phase; the ReplicaSet fails over and re-runs the day
// instead of surfacing it.
var errReplicaKilled = errors.New("netproto: leader replica killed")

// memberPayload is the replicated record of one household registration.
type memberPayload struct {
	ID    core.HouseholdID `json:"id"`
	Token string           `json:"token"`
	Epoch uint64           `json:"epoch"`
}

// dayPayload is the replicated record of one settled day: the full day
// record for redelivery plus the audit-ledger entry bytes every replica
// appends at commit.
type dayPayload struct {
	Record *DayRecord      `json:"record"`
	Ledger json.RawMessage `json:"ledger,omitempty"`
}

// lockedBuffer is a mutex-guarded bytes.Buffer: follower apply paths
// run on peer-connection goroutines, so each replica's local ledger
// needs a thread-safe sink.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// replicaNode is one member of the quorum set: its copy of the log, its
// local audit ledger, and its peer listener. Exactly one live node also
// runs the agent-facing Center; followers hold no agent state at all —
// failover rebuilds it from the committed log.
type replicaNode struct {
	id        int
	log       *replica.Log
	ledgerBuf *lockedBuffer
	ledger    *Journal
	peerLn    net.Listener
	peerAddr  string
	peerConn  net.Conn // leader-side client conn; guarded by ReplicaSet.repMu
	alive     bool     // guarded by ReplicaSet.mu
	center    *Center  // non-nil only while this node leads; guarded by ReplicaSet.mu
}

// ReplicaSet is a settlement center replicated across 2f+1 nodes with a
// quorum journal. The leader runs the ordinary Center protocol with the
// agents and replicates every durable decision — memberships, phase
// boundaries, settled days — to its followers, committing each entry
// once a majority holds it. When the leader dies the lowest live
// replica takes over mid-day: it adopts the longest log among the
// survivors, re-replicates the uncommitted tail, rebuilds the session
// table from the committed member entries, and resumes the day from the
// last committed phase boundary. Agents reconnect with their session
// tokens exactly as after a link cut, so the failover run settles to
// the same ledger bytes as a fault-free one.
type ReplicaSet struct {
	n             int
	quorumTimeout time.Duration
	baseCfg       CenterConfig // leader Center config minus per-takeover seed state
	merged        *Journal     // the caller's WithLedger journal, written exactly once per day
	nodes         []*replicaNode

	mu            sync.Mutex
	leaderID      int
	term          uint64
	failovers     uint64
	days          map[int]*DayRecord // committed days, for redelivery after failover
	mergedApplied map[int]bool       // days already written to the merged journal

	repMu sync.Mutex // serializes replication rounds and takeovers

	// killAt is the chaos hook: called at every named kill point; a
	// true return kills the current leader at that point.
	killAt func(point string, day int, phase string) bool
}

// StartReplicaSet starts a quorum-replicated settlement center:
// WithReplicas(n) nodes (n odd, default 3), the node picked by
// WithReplicaID leading first. Settlement options (WithScheduler,
// WithPricer, WithTraceSeed, ...) configure the leader center exactly
// as they would StartCenter; WithLedger names the merged audit journal,
// written exactly once per committed day no matter how many takeovers
// the day survived.
func StartReplicaSet(ctx context.Context, opts ...Option) (*ReplicaSet, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := o.validate("StartReplicaSet", targetReplica); err != nil {
		return nil, err
	}
	rc := o.replica
	if rc.n < 1 || rc.n%2 == 0 {
		return nil, fmt.Errorf("netproto: replica count %d must be odd (2f+1)", rc.n)
	}
	if rc.leaderID < 0 || rc.leaderID >= rc.n {
		return nil, fmt.Errorf("netproto: initial leader %d out of range [0, %d)", rc.leaderID, rc.n)
	}

	cfg := o.resolveCenter()
	rs := &ReplicaSet{
		n:             rc.n,
		quorumTimeout: rc.quorumTimeout,
		merged:        cfg.Ledger,
		leaderID:      rc.leaderID,
		term:          1,
		days:          make(map[int]*DayRecord),
		mergedApplied: make(map[int]bool),
	}
	// Replicas journal locally at commit; the leader center must not
	// also append, so the replicated hooks replace the direct ledger.
	cfg.Ledger = nil
	cfg.onMember = rs.onMember
	cfg.onPhase = rs.onPhase
	cfg.onSettle = rs.onSettle
	cfg.beforeDeliver = rs.beforeDeliver
	rs.baseCfg = cfg

	for id := 0; id < rc.n; id++ {
		buf := &lockedBuffer{}
		n := &replicaNode{
			id:        id,
			log:       replica.NewLog(),
			ledgerBuf: buf,
			ledger:    NewJournal(buf),
			alive:     true,
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			rs.Close()
			return nil, fmt.Errorf("netproto: replica %d peer listener: %w", id, err)
		}
		n.peerLn = ln
		n.peerAddr = ln.Addr().String()
		go n.serve()
		rs.nodes = append(rs.nodes, n)
	}

	c, err := rs.startLeaderCenter(rs.nodes[rc.leaderID], nil, 0, nil)
	if err != nil {
		rs.Close()
		return nil, err
	}
	rs.mu.Lock()
	rs.nodes[rc.leaderID].center = c
	rs.mu.Unlock()
	rs.publishMetrics()
	return rs, nil
}

// startLeaderCenter builds an agent-facing Center for node n on a fresh
// listener, seeded with the given session table, epoch floor, and
// committed phase boundaries.
func (rs *ReplicaSet) startLeaderCenter(n *replicaNode, seeds []seedSession, epochFloor uint64, resume map[int]*dayResume) (*Center, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netproto: replica %d agent listener: %w", n.id, err)
	}
	cfg := rs.baseCfg
	cfg.seedSessions = seeds
	cfg.epochFloor = epochFloor
	cfg.resume = resume
	c, err := newCenter(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return c, nil
}

// serve accepts peer connections for one replica and handles the
// append/commit/sync protocol on each.
func (n *replicaNode) serve() {
	for {
		conn, err := n.peerLn.Accept()
		if err != nil {
			return
		}
		go n.serveConn(conn)
	}
}

func (n *replicaNode) serveConn(conn net.Conn) {
	defer conn.Close()
	for {
		m, err := replica.ReadMessage(conn)
		if err != nil {
			return
		}
		if err := replica.WriteMessage(conn, n.handle(m)); err != nil {
			return
		}
	}
}

// handle processes one peer frame on the follower side.
func (n *replicaNode) handle(m *replica.Message) *replica.Message {
	switch m.Kind {
	case replica.MsgAppend:
		if !n.log.ObserveTerm(m.Term) {
			return &replica.Message{Kind: replica.MsgAck, From: n.id, Reason: "not leader", LastIndex: n.log.LastIndex()}
		}
		insert := func(e replica.Entry) *replica.Message {
			if err := n.log.Insert(e); err != nil {
				reason := "conflict"
				if errors.Is(err, replica.ErrGap) {
					reason = "gap"
				}
				return &replica.Message{Kind: replica.MsgAck, From: n.id, Reason: reason, LastIndex: n.log.LastIndex()}
			}
			return nil
		}
		if m.Entry != nil {
			if rej := insert(*m.Entry); rej != nil {
				return rej
			}
		}
		for _, e := range m.Entries {
			if rej := insert(e); rej != nil {
				return rej
			}
		}
		return &replica.Message{Kind: replica.MsgAck, From: n.id, OK: true, LastIndex: n.log.LastIndex()}
	case replica.MsgCommit:
		if !n.log.ObserveTerm(m.Term) {
			return &replica.Message{Kind: replica.MsgAck, From: n.id, Reason: "not leader", LastIndex: n.log.LastIndex()}
		}
		newly := n.log.CommitTo(m.Commit)
		n.applyLocal(newly)
		return &replica.Message{Kind: replica.MsgAck, From: n.id, OK: true, Commit: n.log.Commit()}
	case replica.MsgSync:
		return &replica.Message{Kind: replica.MsgLog, From: n.id, Commit: n.log.Commit(), Entries: n.log.Entries()}
	default:
		return &replica.Message{Kind: replica.MsgAck, From: n.id, Reason: "unknown kind " + m.Kind}
	}
}

// applyLocal applies newly committed entries to this replica's local
// audit ledger. Day entries carry the leader's exact ledger bytes, so
// every replica's journal is byte-identical over the committed prefix.
func (n *replicaNode) applyLocal(newly []replica.Entry) {
	for _, e := range newly {
		if e.Kind != replica.KindDay {
			continue
		}
		var p dayPayload
		if err := json.Unmarshal(e.Data, &p); err != nil || p.Ledger == nil {
			continue
		}
		_ = n.ledger.AppendValue(p.Ledger)
	}
}

// Replicated hooks, installed on every leader Center this set starts.

func (rs *ReplicaSet) onMember(id core.HouseholdID, token string, epoch uint64) error {
	data, err := json.Marshal(memberPayload{ID: id, Token: token, Epoch: epoch})
	if err != nil {
		return err
	}
	return rs.replicate(replica.KindMember, 0, "", data, "")
}

func (rs *ReplicaSet) onPhase(day int, phase string, data json.RawMessage) error {
	if rs.fireKill(phase, day, phase) {
		return errReplicaKilled
	}
	return rs.replicate(replica.KindPhase, day, phase, data, "")
}

func (rs *ReplicaSet) onSettle(tid string, day int, record *DayRecord, ledger json.RawMessage) error {
	if rs.fireKill("settle", day, "settle") {
		return errReplicaKilled
	}
	data, err := json.Marshal(dayPayload{Record: record, Ledger: ledger})
	if err != nil {
		return err
	}
	return rs.replicate(replica.KindDay, day, "", data, "beforeCommit")
}

func (rs *ReplicaSet) beforeDeliver(day int) error {
	if rs.fireKill("payment", day, "payment") {
		return errReplicaKilled
	}
	return nil
}

// fireKill consults the chaos hook; a true return kills the current
// leader and reports that the caller should abort the day.
func (rs *ReplicaSet) fireKill(point string, day int, phase string) bool {
	rs.mu.Lock()
	hook := rs.killAt
	leader := rs.leaderID
	rs.mu.Unlock()
	if hook == nil || !hook(point, day, phase) {
		return false
	}
	_ = rs.Kill(leader)
	return true
}

// replicate runs one quorum round: append the entry on the leader, push
// it to every live follower, and — once a majority holds it — commit
// everywhere and apply it. killPoint "beforeCommit" is the chaos window
// between a full quorum of acks and the leader's commit: the entry
// survives on the followers and the next leader finishes the job.
func (rs *ReplicaSet) replicate(kind string, day int, phase string, data json.RawMessage, killPoint string) error {
	rs.repMu.Lock()
	defer rs.repMu.Unlock()

	rs.mu.Lock()
	leader := rs.nodes[rs.leaderID]
	term := rs.term
	if !leader.alive {
		rs.mu.Unlock()
		return fmt.Errorf("netproto: replicate %s: %w", kind, ErrNotLeader)
	}
	rs.mu.Unlock()

	e := leader.log.Append(term, uint64(day), kind, phase, data)
	q := replica.NewQuorum(rs.n)
	q.Ack(leader.id)
	for _, f := range rs.livePeers(leader.id) {
		if rs.appendTo(leader, f, term, e) {
			q.Ack(f.id)
		}
	}
	if killPoint != "" && rs.fireKill(killPoint, day, phase) {
		return errReplicaKilled
	}
	if !q.Reached() {
		return fmt.Errorf("netproto: replicate %s day %d: %d/%d acks: %w", kind, day, q.Acks(), rs.n, ErrQuorumLost)
	}
	rs.applyCommitted(leader, leader.log.CommitTo(e.Index))
	for _, f := range rs.livePeers(leader.id) {
		rs.commitTo(f, term, e.Index)
	}
	rs.publishMetrics()
	return nil
}

// appendTo pushes one entry from leader to follower f, repairing log
// gaps with a suffix resend. It reports whether the follower acked.
func (rs *ReplicaSet) appendTo(leader, f *replicaNode, term uint64, e replica.Entry) bool {
	reply, err := rs.call(f, &replica.Message{Kind: replica.MsgAppend, Term: term, Entry: &e})
	if err != nil {
		return false
	}
	if !reply.OK && reply.Reason == "gap" {
		reply, err = rs.call(f, &replica.Message{Kind: replica.MsgAppend, Term: term, Entries: leader.log.Suffix(reply.LastIndex)})
		if err != nil {
			return false
		}
	}
	return reply.OK
}

// commitTo raises a follower's commit watermark (best-effort: a missed
// commit is repaired by the next round's cumulative watermark or by the
// next takeover's sync).
func (rs *ReplicaSet) commitTo(f *replicaNode, term, index uint64) {
	_, _ = rs.call(f, &replica.Message{Kind: replica.MsgCommit, Term: term, Commit: index})
}

// call sends one frame to a follower's peer listener and reads the
// reply, redialing a stale connection once. Callers hold repMu, which
// guards the per-node client connection.
func (rs *ReplicaSet) call(f *replicaNode, m *replica.Message) (*replica.Message, error) {
	deadline := time.Now().Add(rs.quorumTimeout)
	for attempt := 0; attempt < 2; attempt++ {
		if f.peerConn == nil {
			conn, err := net.DialTimeout("tcp", f.peerAddr, rs.quorumTimeout)
			if err != nil {
				return nil, err
			}
			f.peerConn = conn
		}
		_ = f.peerConn.SetDeadline(deadline)
		if err := replica.WriteMessage(f.peerConn, m); err != nil {
			f.peerConn.Close()
			f.peerConn = nil
			continue
		}
		reply, err := replica.ReadMessage(f.peerConn)
		if err != nil {
			f.peerConn.Close()
			f.peerConn = nil
			continue
		}
		return reply, nil
	}
	return nil, fmt.Errorf("netproto: replica %d unreachable", f.id)
}

// applyCommitted applies newly committed entries on the leader: day
// entries land in the leader's local ledger and — exactly once per day,
// however many takeovers intervene — in the merged journal and the
// redelivery table.
func (rs *ReplicaSet) applyCommitted(leader *replicaNode, newly []replica.Entry) {
	leader.applyLocal(newly)
	for _, e := range newly {
		if e.Kind != replica.KindDay {
			continue
		}
		var p dayPayload
		if err := json.Unmarshal(e.Data, &p); err != nil || p.Record == nil {
			continue
		}
		rs.mu.Lock()
		first := !rs.mergedApplied[e.Day]
		if first {
			rs.mergedApplied[e.Day] = true
			rs.days[e.Day] = p.Record
		}
		rs.mu.Unlock()
		if first && rs.merged != nil && p.Ledger != nil {
			_ = rs.merged.AppendValue(p.Ledger)
		}
	}
}

func (rs *ReplicaSet) livePeers(leaderID int) []*replicaNode {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []*replicaNode
	for _, n := range rs.nodes {
		if n.id != leaderID && n.alive {
			out = append(out, n)
		}
	}
	return out
}

// Kill marks a replica dead: its listeners close, its connections drop,
// and it never returns. Killing the leader mid-day is the failover
// path — the next leader-needing call elects the lowest live replica
// and resumes from the replicated journal. Kill never blocks on
// replication state, so chaos hooks may call it from inside a round.
func (rs *ReplicaSet) Kill(id int) error {
	if id < 0 || id >= rs.n {
		return fmt.Errorf("netproto: replica %d out of range [0, %d)", id, rs.n)
	}
	rs.mu.Lock()
	n := rs.nodes[id]
	if !n.alive {
		rs.mu.Unlock()
		return nil
	}
	n.alive = false
	c := n.center
	n.center = nil
	rs.mu.Unlock()
	n.peerLn.Close()
	if c != nil {
		// Close asynchronously: Close waits for connection handlers,
		// which may themselves be blocked inside a replication round.
		go c.Close()
	}
	rs.publishMetrics()
	return nil
}

// leaderCenter returns the live leader's Center, electing and promoting
// a new leader first if the current one is dead.
func (rs *ReplicaSet) leaderCenter() (*Center, error) {
	rs.mu.Lock()
	n := rs.nodes[rs.leaderID]
	if n.alive && n.center != nil {
		c := n.center
		rs.mu.Unlock()
		return c, nil
	}
	rs.mu.Unlock()
	return rs.takeOver()
}

// takeOver promotes the lowest live replica: sync the survivors' logs,
// adopt the longest, commit everything a majority already held,
// re-replicate the uncommitted tail under the original entry terms, and
// rebuild the agent-facing Center from the committed log — session
// table from member entries, day resume state from phase boundaries.
func (rs *ReplicaSet) takeOver() (*Center, error) {
	rs.repMu.Lock()
	defer rs.repMu.Unlock()

	rs.mu.Lock()
	if n := rs.nodes[rs.leaderID]; n.alive && n.center != nil {
		c := n.center
		rs.mu.Unlock()
		return c, nil // another caller already completed the takeover
	}
	var live []int
	for _, n := range rs.nodes {
		if n.alive {
			live = append(live, n.id)
		}
	}
	if len(live) < replica.Majority(rs.n) {
		rs.mu.Unlock()
		return nil, fmt.Errorf("netproto: %d/%d replicas live: %w", len(live), rs.n, ErrQuorumLost)
	}
	id := replica.Elect(live)
	term := rs.term + 1
	rs.mu.Unlock()

	leader := rs.nodes[id]
	leader.log.ObserveTerm(term)

	// Adopt the longest log among the survivors and the highest commit
	// watermark a majority already reached.
	maxCommit := leader.log.Commit()
	for _, f := range rs.livePeers(id) {
		reply, err := rs.call(f, &replica.Message{Kind: replica.MsgSync, Term: term})
		if err != nil || reply.Kind != replica.MsgLog {
			continue
		}
		if reply.Commit > maxCommit {
			maxCommit = reply.Commit
		}
		if uint64(len(reply.Entries)) > leader.log.LastIndex() {
			if err := leader.log.Adopt(reply.Entries); err != nil {
				return nil, fmt.Errorf("netproto: takeover adopt from replica %d: %w", f.id, err)
			}
		}
	}
	rs.applyCommitted(leader, leader.log.CommitTo(maxCommit))

	// Finish what the dead leader started: any entry a quorum acked but
	// never committed is re-replicated (original terms) and committed.
	for _, e := range leader.log.Suffix(leader.log.Commit()) {
		q := replica.NewQuorum(rs.n)
		q.Ack(id)
		for _, f := range rs.livePeers(id) {
			if rs.appendTo(leader, f, term, e) {
				q.Ack(f.id)
			}
		}
		if !q.Reached() {
			return nil, fmt.Errorf("netproto: takeover commit index %d: %d/%d acks: %w", e.Index, q.Acks(), rs.n, ErrQuorumLost)
		}
		rs.applyCommitted(leader, leader.log.CommitTo(e.Index))
		for _, f := range rs.livePeers(id) {
			rs.commitTo(f, term, e.Index)
		}
	}

	// Rebuild the agent-facing state from the committed log.
	var seeds []seedSession
	var epochFloor uint64
	resume := make(map[int]*dayResume)
	for _, e := range leader.log.Entries() {
		switch e.Kind {
		case replica.KindMember:
			var p memberPayload
			if err := json.Unmarshal(e.Data, &p); err != nil {
				continue
			}
			seeds = append(seeds, seedSession{id: p.ID, token: p.Token})
			if p.Epoch > epochFloor {
				epochFloor = p.Epoch
			}
		case replica.KindPhase:
			res := resume[e.Day]
			if res == nil {
				res = &dayResume{}
				resume[e.Day] = res
			}
			switch e.Phase {
			case "preference":
				var p prefPhasePayload
				if err := json.Unmarshal(e.Data, &p); err != nil {
					continue
				}
				res.reports, res.absent = p.Reports, p.Absent
			case "consumption":
				var p consPhasePayload
				if err := json.Unmarshal(e.Data, &p); err != nil {
					continue
				}
				res.consumptions, res.substituted, res.haveCons = p.Consumptions, p.Substituted, true
			}
		}
	}

	c, err := rs.startLeaderCenter(leader, seeds, epochFloor, resume)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	leader.center = c
	rs.leaderID = id
	rs.term = term
	rs.failovers++
	rs.mu.Unlock()
	obs.Default().Counter(obs.MetricReplicaFailoversTotal).Inc()
	rs.publishMetrics()
	return c, nil
}

// committedDay returns the committed record for day, or nil.
func (rs *ReplicaSet) committedDay(day int) *DayRecord {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.days[day]
}

// RunDayContext runs one settlement day against the replica set. A day
// interrupted by a leader death is re-run on the next leader from the
// last committed phase boundary; a day that already committed before
// the death is not re-settled — the new leader only redelivers its
// payments (agents dedupe by day), keeping settlement exactly-once.
func (rs *ReplicaSet) RunDayContext(ctx context.Context, day int) (*DayRecord, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, err := rs.leaderCenter()
		if err != nil {
			return nil, err
		}
		if rec := rs.committedDay(day); rec != nil {
			return c.redeliverDay(rec), nil
		}
		rec, err := c.RunDayContext(ctx, day)
		if err != nil {
			if errors.Is(err, errReplicaKilled) || rs.leaderDead(c) {
				continue // fail over and resume the day
			}
			return nil, err
		}
		return rec, nil
	}
}

// RunDay runs one day cycle without cancellation.
func (rs *ReplicaSet) RunDay(day int) (*DayRecord, error) {
	return rs.RunDayContext(context.Background(), day)
}

// leaderDead reports whether c is no longer the live leader's center.
func (rs *ReplicaSet) leaderDead(c *Center) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := rs.nodes[rs.leaderID]
	return !n.alive || n.center != c
}

// WaitForAgentsContext blocks until n agents are connected to the
// current leader, following a failover if the leader dies while
// waiting.
func (rs *ReplicaSet) WaitForAgentsContext(ctx context.Context, n int) error {
	for {
		c, err := rs.leaderCenter()
		if err != nil {
			return err
		}
		err = c.WaitForAgentsContext(ctx, n)
		if err != nil && ctx.Err() == nil && rs.leaderDead(c) {
			continue
		}
		return err
	}
}

// AgentCount returns the number of households with a live connection
// to the current leader.
func (rs *ReplicaSet) AgentCount() int {
	rs.mu.Lock()
	var c *Center
	if n := rs.nodes[rs.leaderID]; n.alive {
		c = n.center
	}
	rs.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.AgentCount()
}

// Addr returns the current leader's agent-facing address. Prefer
// Dialer for agents: the address moves on failover.
func (rs *ReplicaSet) Addr() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, n := range rs.nodes {
		if n.id == rs.leaderID && n.center != nil {
			return n.center.Addr()
		}
	}
	return ""
}

// Dialer returns a DialFunc that always dials the current leader, for
// Connect's WithDialer: an agent that retries through a failover lands
// on the new leader and resumes its session there.
func (rs *ReplicaSet) Dialer() DialFunc {
	return func(ctx context.Context) (net.Conn, error) {
		addr := rs.Addr()
		if addr == "" {
			return nil, fmt.Errorf("netproto: no live leader: %w", ErrQuorumLost)
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

// Leader returns the current leader's replica ID.
func (rs *ReplicaSet) Leader() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.leaderID
}

// Term returns the current leadership term (1 at start, +1 per
// takeover).
func (rs *ReplicaSet) Term() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.term
}

// Failovers returns how many takeovers the set has performed.
func (rs *ReplicaSet) Failovers() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.failovers
}

// ReplicaLedger returns a copy of one replica's local audit-ledger
// bytes — the committed day entries as that replica journaled them.
func (rs *ReplicaSet) ReplicaLedger(id int) []byte {
	if id < 0 || id >= rs.n {
		return nil
	}
	return rs.nodes[id].ledgerBuf.Bytes()
}

// ReplicaStatuses implements obs.ReplicaSource for /api/v1/replicas.
func (rs *ReplicaSet) ReplicaStatuses() obs.ReplicaSetStatus {
	rs.mu.Lock()
	leaderID := rs.leaderID
	term := rs.term
	failovers := rs.failovers
	rs.mu.Unlock()
	st := obs.ReplicaSetStatus{Leader: -1, Term: term, Failovers: failovers}
	liveCount := 0
	for _, n := range rs.nodes {
		rs.mu.Lock()
		alive := n.alive
		center := n.center
		rs.mu.Unlock()
		r := obs.ReplicaStatus{
			ID:          n.id,
			Term:        n.log.Term(),
			CommitIndex: n.log.Commit(),
			CommitLag:   n.log.LastIndex() - n.log.Commit(),
			Addr:        n.peerAddr,
		}
		switch {
		case !alive:
			r.Role = "dead"
		case n.id == leaderID && center != nil:
			r.Role = "leader"
			r.Addr = center.Addr()
			st.Leader = n.id
		default:
			r.Role = "follower"
		}
		if alive {
			liveCount++
		}
		st.Replicas = append(st.Replicas, r)
	}
	st.Quorum = liveCount >= replica.Majority(rs.n)
	return st
}

// DayStatus implements obs.StatusSource: the current leader's view,
// with DaysSettled counted from the committed log so a takeover does
// not reset it.
func (rs *ReplicaSet) DayStatus() obs.DayStatus {
	rs.mu.Lock()
	var c *Center
	if n := rs.nodes[rs.leaderID]; n.alive {
		c = n.center
	}
	settled := uint64(len(rs.days))
	rs.mu.Unlock()
	var ds obs.DayStatus
	if c != nil {
		ds = c.DayStatus()
	}
	ds.DaysSettled = settled
	return ds
}

// ShardStatuses implements obs.StatusSource via the current leader.
func (rs *ReplicaSet) ShardStatuses() []obs.ShardStatus {
	rs.mu.Lock()
	var c *Center
	if n := rs.nodes[rs.leaderID]; n.alive {
		c = n.center
	}
	rs.mu.Unlock()
	if c == nil {
		return []obs.ShardStatus{}
	}
	return c.ShardStatuses()
}

// Operator returns the operator plane for the replica set: day and
// shard status from the current leader, replica health, and the merged
// ledger tail.
func (rs *ReplicaSet) Operator() *obs.Operator {
	op := obs.NewOperator(nil)
	op.Status = rs
	op.Replicas = rs
	if rs.merged != nil {
		op.Ledger = rs.merged
	}
	return op
}

// publishMetrics refreshes the per-replica gauges. Every value is a
// pure function of the replicated log and the kill schedule, keeping
// the series inside the determinism contract.
func (rs *ReplicaSet) publishMetrics() {
	rs.mu.Lock()
	leaderID := rs.leaderID
	rs.mu.Unlock()
	reg := obs.Default()
	for _, n := range rs.nodes {
		label := strconv.Itoa(n.id)
		rs.mu.Lock()
		isLeader := n.alive && n.id == leaderID
		rs.mu.Unlock()
		role := 0.0
		if isLeader {
			role = 1.0
		}
		reg.Gauge(obs.MetricReplicaRole, obs.LabelReplica, label).Set(role)
		reg.Gauge(obs.MetricReplicaTerm, obs.LabelReplica, label).Set(float64(n.log.Term()))
		reg.Gauge(obs.MetricReplicaCommitLag, obs.LabelReplica, label).Set(float64(n.log.LastIndex() - n.log.Commit()))
	}
}

// Close shuts down every replica: centers, peer listeners, and client
// connections.
func (rs *ReplicaSet) Close() error {
	for _, n := range rs.nodes {
		rs.mu.Lock()
		c := n.center
		n.center = nil
		n.alive = false
		rs.mu.Unlock()
		if n.peerLn != nil {
			n.peerLn.Close()
		}
		if c != nil {
			c.Close()
		}
		rs.repMu.Lock()
		if n.peerConn != nil {
			n.peerConn.Close()
			n.peerConn = nil
		}
		rs.repMu.Unlock()
	}
	return nil
}
