package netproto

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"enki/internal/dist"
)

// RetryPolicy bounds an agent's reconnect behaviour after a link
// failure: up to MaxAttempts redials per outage, spaced by exponential
// backoff with deterministic, seedable jitter. The zero value disables
// reconnection entirely (one failure is terminal), which is the
// pre-fault-tolerance behaviour and the default for the deprecated
// Dial/NewAgent constructors.
type RetryPolicy struct {
	// MaxAttempts is the number of redials per outage; 0 disables
	// reconnection.
	MaxAttempts int
	// BaseDelay is the wait before the first redial. Zero means
	// DefaultRetryBase when MaxAttempts > 0.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means DefaultRetryMax.
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt; values < 1 (including
	// the zero value) mean the default factor 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the
	// computed delay is scaled by a uniform factor in [1−Jitter,
	// 1+Jitter]. Zero means no jitter.
	Jitter float64
	// Seed parameterizes the jitter stream. Each agent splits the
	// stream by its household ID (dist.RNG labeled Split), so a fleet
	// sharing one policy still desynchronizes its retry storms while
	// every run with the same seed replays the same delays.
	Seed uint64
}

// Default retry-policy parameters.
const (
	DefaultRetryAttempts = 5
	DefaultRetryBase     = 50 * time.Millisecond
	DefaultRetryMax      = 2 * time.Second
)

// DefaultRetryPolicy returns the standard reconnect policy: 5 attempts,
// 50ms base delay doubling to a 2s cap, ±20% seeded jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: DefaultRetryAttempts,
		BaseDelay:   DefaultRetryBase,
		MaxDelay:    DefaultRetryMax,
		Multiplier:  2,
		Jitter:      0.2,
		Seed:        1,
	}
}

// Enabled reports whether the policy allows any reconnection.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 0 }

// jitterRNG returns the household's deterministic jitter stream: a
// labeled split of the policy seed, a pure function of (Seed, id).
func (p RetryPolicy) jitterRNG(id uint64) *dist.RNG {
	return dist.New(p.Seed).Split(id)
}

// Backoff returns the wait before redial number attempt (1-based):
// BaseDelay·Multiplier^(attempt−1), capped at MaxDelay, scaled by the
// jitter factor drawn from rng (nil rng or zero Jitter: no jitter).
// Given the same rng state the result is deterministic, which is what
// lets the chaos suite replay a fault scenario bit-for-bit.
func (p RetryPolicy) Backoff(attempt int, rng *dist.RNG) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base := p.BaseDelay
	if base == 0 {
		base = DefaultRetryBase
	}
	max := p.MaxDelay
	if max == 0 {
		max = DefaultRetryMax
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base) * math.Pow(mult, float64(attempt-1))
	if d > float64(max) {
		d = float64(max)
	}
	if rng != nil && p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// ParseRetryPolicy parses a -retry flag spec of comma-separated
// key=value tokens:
//
//	attempts=5,base=50ms,max=2s,mult=2,jitter=0.2,seed=1
//
// Omitted keys take the DefaultRetryPolicy values; an empty spec
// returns the zero policy (reconnection disabled).
func ParseRetryPolicy(spec string) (RetryPolicy, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return RetryPolicy{}, nil
	}
	p := DefaultRetryPolicy()
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return RetryPolicy{}, fmt.Errorf("netproto: retry policy %q: token %q is not key=value", spec, tok)
		}
		var err error
		switch key {
		case "attempts":
			p.MaxAttempts, err = strconv.Atoi(val)
		case "base":
			p.BaseDelay, err = time.ParseDuration(val)
		case "max":
			p.MaxDelay, err = time.ParseDuration(val)
		case "mult":
			p.Multiplier, err = strconv.ParseFloat(val, 64)
		case "jitter":
			p.Jitter, err = strconv.ParseFloat(val, 64)
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return RetryPolicy{}, fmt.Errorf("netproto: retry policy %q: unknown key %q", spec, key)
		}
		if err != nil {
			return RetryPolicy{}, fmt.Errorf("netproto: retry policy %q: bad %s value %q", spec, key, val)
		}
	}
	if p.MaxAttempts < 0 {
		return RetryPolicy{}, fmt.Errorf("netproto: retry policy %q: negative attempts", spec)
	}
	return p, nil
}
