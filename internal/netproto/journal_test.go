package netproto

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
)

func TestJournalRoundTrip(t *testing.T) {
	c := newTestCenter(t)
	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	}
	for i, typ := range types {
		a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	journal := NewJournal(&buf)
	var wantCost, wantRevenue float64
	for day := 1; day <= 3; day++ {
		record, err := c.RunDay(day)
		if err != nil {
			t.Fatal(err)
		}
		if err := journal.Append(record); err != nil {
			t.Fatal(err)
		}
		wantCost += record.Cost
		for _, p := range record.Payments {
			wantRevenue += p
		}
	}

	records, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("read %d records, want 3", len(records))
	}
	for i, rec := range records {
		if rec.Day != i+1 {
			t.Errorf("record %d has day %d", i, rec.Day)
		}
		if len(rec.Reports) != 2 || len(rec.Payments) != 2 {
			t.Errorf("record %d incomplete: %d reports, %d payments",
				i, len(rec.Reports), len(rec.Payments))
		}
	}

	rep := ReplayJournal(records)
	if rep.Days != 3 {
		t.Errorf("replay days = %d, want 3", rep.Days)
	}
	if math.Abs(rep.TotalCost-wantCost) > 1e-9 {
		t.Errorf("replay cost %g, want %g", rep.TotalCost, wantCost)
	}
	if math.Abs(rep.Revenue-wantRevenue) > 1e-9 {
		t.Errorf("replay revenue %g, want %g", rep.Revenue, wantRevenue)
	}
	if len(rep.ByID) != 2 {
		t.Errorf("replay tracked %d households, want 2", len(rep.ByID))
	}
	for id, paid := range rep.ByID {
		if paid <= 0 {
			t.Errorf("household %d cumulative payment %g", id, paid)
		}
	}
}

func TestJournalAppendNil(t *testing.T) {
	j := NewJournal(&bytes.Buffer{})
	if err := j.Append(nil); err == nil {
		t.Error("nil record should be rejected")
	}
}

func TestReadJournalGarbage(t *testing.T) {
	// A lone corrupt line is a trailing partial record: skipped, and an
	// empty (but replayable) history remains.
	records, err := ReadJournal(strings.NewReader("{bad json}\n"))
	if err != nil {
		t.Errorf("lone corrupt trailing line should be skipped, got %v", err)
	}
	if len(records) != 0 {
		t.Errorf("corrupt-only journal yielded %d records", len(records))
	}
	// Corruption followed by a valid record is real damage, not a
	// crash-truncated tail: the whole read fails.
	valid := `{"day":1,"reports":[],"assignments":[],"consumptions":[],"payments":[],"flexibility":[],"defection":[],"socialCost":[],"cost":0,"peak":0}`
	if _, err := ReadJournal(strings.NewReader("{bad json}\n" + valid + "\n")); err == nil {
		t.Error("mid-journal corruption should be rejected")
	}
	records, err = ReadJournal(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Errorf("blank journal yielded %d records", len(records))
	}
}

// TestReadJournalTruncatedTail simulates a crash during append: a valid
// history followed by a half-written final line. The replay must return
// the intact records and skip the partial one.
func TestReadJournalTruncatedTail(t *testing.T) {
	c := newTestCenter(t)
	for i, typ := range []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 2), ValuationFactor: 4},
	} {
		a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	journal := NewJournal(&buf)
	for day := 1; day <= 2; day++ {
		record, err := c.RunDay(day)
		if err != nil {
			t.Fatal(err)
		}
		if err := journal.Append(record); err != nil {
			t.Fatal(err)
		}
	}
	intact := buf.String()

	for _, tail := range []string{
		`{"day":3,"repor`,      // cut mid-key, no newline
		`{"day":3,"reports":[`, // cut mid-array with newline
		"\n" + `{"day"`,        // blank line then a stub
	} {
		records, err := ReadJournal(strings.NewReader(intact + tail))
		if err != nil {
			t.Errorf("tail %q: replay failed: %v", tail, err)
			continue
		}
		if len(records) != 2 {
			t.Errorf("tail %q: replayed %d records, want 2", tail, len(records))
			continue
		}
		rep := ReplayJournal(records)
		if rep.Days != 2 || len(rep.ByID) != 2 {
			t.Errorf("tail %q: replay summary %+v malformed", tail, rep)
		}
	}
}
