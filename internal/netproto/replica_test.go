package netproto

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
)

// replicaRetry is the failover suite's reconnect policy: more patient
// than fastRetry because a takeover closes every agent connection at
// once and the agents must outlast the election plus the new leader's
// listener coming up.
var replicaRetry = RetryPolicy{
	MaxAttempts: 20,
	BaseDelay:   5 * time.Millisecond,
	MaxDelay:    250 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.2,
	Seed:        1,
}

// startReplicaSet starts a 3-replica settlement center writing its
// merged audit ledger to buf, with the same seed and topology as the
// single-center chaos baseline.
func startReplicaSet(t *testing.T, buf *bytes.Buffer, opts ...Option) *ReplicaSet {
	t.Helper()
	base := []Option{
		WithTraceSeed(7),
		WithLedger(NewJournal(buf)),
		WithPhaseDeadline(5 * time.Second),
		WithReplicas(3),
	}
	rs, err := StartReplicaSet(context.Background(), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return rs
}

// runReplicaDays connects the fixed truthful neighborhood through the
// replica set's dialer and settles the given number of days, asserting
// every day settles clean (no absences, no substitutions) and with a
// zero Theorem 1 residual.
func runReplicaDays(t *testing.T, rs *ReplicaSet, days int) {
	t.Helper()
	agents := make([]*Agent, len(traceTestTypes))
	for i, typ := range traceTestTypes {
		a, err := Connect(context.Background(), rs.Addr(), core.HouseholdID(i), &Truthful{Type: typ},
			WithDialer(rs.Dialer()), WithRetryPolicy(replicaRetry))
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	if err := rs.WaitForAgentsContext(context.Background(), len(agents)); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= days; day++ {
		record, err := rs.RunDayContext(context.Background(), day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if record.Substituted != nil || record.Absent != nil {
			t.Fatalf("day %d settled degraded (substituted %v, absent %v); failover should have resumed every agent",
				day, record.Substituted, record.Absent)
		}
		var revenue float64
		for _, p := range record.Payments {
			revenue += p
		}
		if residual := revenue - mechanism.DefaultXi*record.Cost; math.Abs(residual) > 1e-9 {
			t.Errorf("day %d budget residual %g, want 0", day, residual)
		}
	}
}

// auditLedger decodes ledger bytes and runs the full equation audit on
// every entry.
func auditLedger(t *testing.T, ledger []byte, wantDays int) {
	t.Helper()
	entries, err := mechanism.ReadLedger(bytes.NewReader(ledger))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != wantDays {
		t.Fatalf("%d ledger entries, want %d", len(entries), wantDays)
	}
	for _, e := range entries {
		if bad := e.Audit(); len(bad) != 0 {
			t.Errorf("day %d audit found mismatches: %v", e.Day, bad)
		}
	}
}

// killOnce returns a kill hook that fires exactly once, at the named
// point of the named day.
func killOnce(day int, point string) func(string, int, string) bool {
	fired := false
	return func(p string, d int, _ string) bool {
		if fired || d != day || p != point {
			return false
		}
		fired = true
		return true
	}
}

// TestChaosReplicaFaultFreeMatchesSingleCenter pins the replication
// no-op guarantee: with no faults, a 3-replica set settles to the exact
// ledger bytes of a standalone center with the same seed, and every
// replica's local journal holds those same bytes.
func TestChaosReplicaFaultFreeMatchesSingleCenter(t *testing.T) {
	clean := runChaosDays(t, 3, nil)

	var buf bytes.Buffer
	rs := startReplicaSet(t, &buf)
	runReplicaDays(t, rs, 3)

	if !bytes.Equal(buf.Bytes(), clean) {
		t.Errorf("replicated merged ledger diverged from single-center run:\n got: %s\nwant: %s", buf.Bytes(), clean)
	}
	for id := 0; id < 3; id++ {
		if got := rs.ReplicaLedger(id); !bytes.Equal(got, clean) {
			t.Errorf("replica %d local ledger diverged:\n got: %s\nwant: %s", id, got, clean)
		}
	}
	if f := rs.Failovers(); f != 0 {
		t.Errorf("fault-free run recorded %d failovers", f)
	}
	auditLedger(t, buf.Bytes(), 3)
}

// TestChaosReplicaLeaderKilledEveryPhase is the tentpole acceptance
// test: killing the leader in every settlement phase of day 2 —
// including the window between a quorum of ledger-entry acks and the
// leader's commit — must elect the lowest live replica, resume the day
// from the replicated journal, and settle every day to the
// byte-identical merged ledger of a fault-free run, with the surviving
// replicas' local journals matching too.
func TestChaosReplicaLeaderKilledEveryPhase(t *testing.T) {
	clean := runChaosDays(t, 3, nil)

	points := []string{"preference", "consumption", "settle", "beforeCommit", "payment"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			var buf bytes.Buffer
			rs := startReplicaSet(t, &buf)
			rs.killAt = killOnce(2, point)
			runReplicaDays(t, rs, 3)

			if !bytes.Equal(buf.Bytes(), clean) {
				t.Errorf("merged ledger diverged after %s kill:\n got: %s\nwant: %s", point, buf.Bytes(), clean)
			}
			if got := rs.Failovers(); got != 1 {
				t.Errorf("failovers = %d, want 1", got)
			}
			if got := rs.Leader(); got != 1 {
				t.Errorf("leader = %d, want 1 (lowest live after killing 0)", got)
			}
			if got := rs.Term(); got != 2 {
				t.Errorf("term = %d, want 2", got)
			}
			for _, id := range []int{1, 2} {
				if got := rs.ReplicaLedger(id); !bytes.Equal(got, clean) {
					t.Errorf("surviving replica %d ledger diverged after %s kill:\n got: %s\nwant: %s", id, point, got, clean)
				}
			}
			auditLedger(t, rs.ReplicaLedger(1), 3)
		})
	}
}

// TestChaosReplicaFollowerDeathHarmless pins that losing a follower
// costs nothing: the leader still reaches a 2/3 quorum and the merged
// ledger is unchanged.
func TestChaosReplicaFollowerDeathHarmless(t *testing.T) {
	clean := runChaosDays(t, 2, nil)

	var buf bytes.Buffer
	rs := startReplicaSet(t, &buf)
	if err := rs.Kill(2); err != nil {
		t.Fatal(err)
	}
	runReplicaDays(t, rs, 2)

	if !bytes.Equal(buf.Bytes(), clean) {
		t.Errorf("merged ledger diverged after follower death:\n got: %s\nwant: %s", buf.Bytes(), clean)
	}
	if f := rs.Failovers(); f != 0 {
		t.Errorf("follower death triggered %d failovers", f)
	}
}

// TestChaosReplicaQuorumLossFailsDay pins the safety boundary: with a
// minority of replicas live there is no leader to elect, and the day
// fails with ErrQuorumLost instead of settling unreplicated.
func TestChaosReplicaQuorumLossFailsDay(t *testing.T) {
	var buf bytes.Buffer
	rs := startReplicaSet(t, &buf)

	agents := make([]*Agent, len(traceTestTypes))
	for i, typ := range traceTestTypes {
		a, err := Connect(context.Background(), rs.Addr(), core.HouseholdID(i), &Truthful{Type: typ},
			WithDialer(rs.Dialer()), WithRetryPolicy(replicaRetry))
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		defer a.Close()
	}
	if err := rs.WaitForAgentsContext(context.Background(), len(agents)); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.RunDayContext(context.Background(), 1); err != nil {
		t.Fatalf("day 1: %v", err)
	}
	if err := rs.Kill(0); err != nil {
		t.Fatal(err)
	}
	if err := rs.Kill(1); err != nil {
		t.Fatal(err)
	}
	_, err := rs.RunDayContext(context.Background(), 2)
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("day 2 after losing quorum: err = %v, want ErrQuorumLost", err)
	}
}

// TestChaosReplicaStatusEndpoint pins the /api/v1/replicas surface:
// roles, term, quorum, and failover count before and after a leader
// kill.
func TestChaosReplicaStatusEndpoint(t *testing.T) {
	var buf bytes.Buffer
	rs := startReplicaSet(t, &buf)
	rs.killAt = killOnce(1, "settle")
	runReplicaDays(t, rs, 1)

	srv := httptest.NewServer(rs.Operator().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/replicas: %d", resp.StatusCode)
	}
	var st obs.ReplicaSetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Leader != 1 || st.Term != 2 || st.Failovers != 1 || !st.Quorum {
		t.Errorf("status = leader %d term %d failovers %d quorum %v, want leader 1 term 2 failovers 1 quorum true",
			st.Leader, st.Term, st.Failovers, st.Quorum)
	}
	if len(st.Replicas) != 3 {
		t.Fatalf("%d replica rows, want 3", len(st.Replicas))
	}
	roles := map[int]string{}
	for _, r := range st.Replicas {
		roles[r.ID] = r.Role
	}
	if roles[0] != "dead" || roles[1] != "leader" || roles[2] != "follower" {
		t.Errorf("roles = %v, want 0:dead 1:leader 2:follower", roles)
	}
}

// TestReplicaOptionValidation pins the consolidated-API contract: every
// With* option knows which constructors it configures, and a misplaced
// option is a descriptive error instead of a silent no-op.
func TestReplicaOptionValidation(t *testing.T) {
	if _, err := StartReplicaSet(context.Background(), WithShards(4)); err == nil {
		t.Error("StartReplicaSet(WithShards) succeeded, want target error")
	} else if !strings.Contains(err.Error(), "WithShards") || !strings.Contains(err.Error(), "StartCluster") {
		t.Errorf("StartReplicaSet(WithShards) error %q should name the option and its real target", err)
	}

	if _, err := StartCenter("127.0.0.1:0", WithReplicas(3)); err == nil {
		t.Error("StartCenter(WithReplicas) succeeded, want target error")
	} else if !strings.Contains(err.Error(), "WithReplicas") || !strings.Contains(err.Error(), "StartReplicaSet") {
		t.Errorf("StartCenter(WithReplicas) error %q should name the option and its real target", err)
	}

	if _, err := Connect(context.Background(), "127.0.0.1:0", 0, &Truthful{}, WithReplicaID(1)); err == nil {
		t.Error("Connect(WithReplicaID) succeeded, want target error")
	} else if !strings.Contains(err.Error(), "WithReplicaID") {
		t.Errorf("Connect(WithReplicaID) error %q should name the option", err)
	}

	if _, err := StartReplicaSet(context.Background(), WithReplicas(2)); err == nil {
		t.Error("even replica count accepted, want odd-count error")
	}
	if _, err := StartReplicaSet(context.Background(), WithReplicas(3), WithReplicaID(3)); err == nil {
		t.Error("out-of-range initial leader accepted, want range error")
	}
}
