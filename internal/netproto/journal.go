package netproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"enki/internal/obs"
)

// journalTailCap bounds the in-memory ring of recent lines the operator
// API's /api/v1/ledger/tail serves without re-reading the file. It is
// the same bound the HTTP surface enforces with a 400 on overlarge n.
const journalTailCap = obs.MaxLedgerTail

// Journal persists DayRecords as JSON Lines — one settlement per line —
// so a neighborhood's history survives restarts and can be replayed for
// billing audits. Writes are serialized; a Journal may be shared by a
// Center and ad-hoc writers. The most recent lines are retained in a
// bounded ring, which is what makes a Journal an obs.LedgerTailer.
type Journal struct {
	mu   sync.Mutex
	w    io.Writer
	tail []json.RawMessage // ring of the last journalTailCap lines
	next int               // ring write position
	len  int               // lines retained (≤ journalTailCap)
}

// NewJournal wraps a writer (typically an os.File opened with append).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// AppendValue writes any JSON-marshalable record as one line. Day
// settlements (Append) and the mechanism audit ledger share this path,
// so both histories get the same serialization, locking, and
// crash-recovery semantics.
func (j *Journal) AppendValue(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("netproto: encode journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("netproto: append journal record: %w", err)
	}
	if j.tail == nil {
		j.tail = make([]json.RawMessage, journalTailCap)
	}
	j.tail[j.next] = json.RawMessage(data)
	j.next = (j.next + 1) % journalTailCap
	if j.len < journalTailCap {
		j.len++
	}
	if rec := obs.DefaultRecorder(); rec.Enabled() {
		rec.Record(obs.Event{Kind: obs.EventLedger, Shard: -1, Bytes: len(data)})
	}
	return nil
}

// LedgerTail returns the last n journal lines, oldest first, as raw
// JSON — the obs.LedgerTailer contract behind /api/v1/ledger/tail. At
// most journalTailCap lines are retained; asking for more returns what
// the ring holds.
func (j *Journal) LedgerTail(n int) []json.RawMessage {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > j.len {
		n = j.len
	}
	if n <= 0 {
		return nil
	}
	out := make([]json.RawMessage, n)
	start := j.next - n
	if start < 0 {
		start += journalTailCap
	}
	for i := 0; i < n; i++ {
		out[i] = j.tail[(start+i)%journalTailCap]
	}
	return out
}

// Append writes one day record as a JSON line.
func (j *Journal) Append(record *DayRecord) error {
	if record == nil {
		return fmt.Errorf("netproto: nil day record")
	}
	return j.AppendValue(record)
}

// ReadJournal loads every day record from a JSONL stream, in order. A
// corrupt or truncated final line — the signature of a crash during
// append — is skipped so the intact history stays replayable;
// corruption followed by further valid records is still an error.
func ReadJournal(r io.Reader) ([]DayRecord, error) {
	var out []DayRecord
	var pending error
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), MaxFrameSize)
	line := 0
	for scanner.Scan() {
		line++
		if len(scanner.Bytes()) == 0 {
			continue
		}
		var rec DayRecord
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			if pending != nil {
				return nil, pending
			}
			pending = fmt.Errorf("netproto: journal line %d: %w", line, err)
			continue
		}
		if pending != nil {
			return nil, pending
		}
		out = append(out, rec)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("netproto: read journal: %w", err)
	}
	return out, nil
}

// Replay summarizes a journal: total cost, total revenue, and the
// per-household cumulative payments — the billing-audit view.
type Replay struct {
	Days      int
	TotalCost float64
	Revenue   float64
	ByID      map[int64]float64 // cumulative payment per household ID
}

// ReplayJournal folds a journal into its billing summary.
func ReplayJournal(records []DayRecord) Replay {
	rep := Replay{ByID: make(map[int64]float64)}
	for _, rec := range records {
		rep.Days++
		rep.TotalCost += rec.Cost
		for i, r := range rec.Reports {
			rep.Revenue += rec.Payments[i]
			rep.ByID[int64(r.ID)] += rec.Payments[i]
		}
	}
	return rep
}
