package netproto

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/dist"
)

// TestNoGoroutineLeaks asserts the Close contract of the style guide:
// every goroutine the center and agents spawn exits after Close.
func TestNoGoroutineLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		c := newTestCenter(t)
		agents := make([]*Agent, 4)
		for i := range agents {
			typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
			a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
			if err != nil {
				t.Fatal(err)
			}
			agents[i] = a
		}
		if err := c.WaitForAgents(len(agents), 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunDay(1); err != nil {
			t.Fatal(err)
		}
		for _, a := range agents {
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Goroutine counts settle asynchronously; poll briefly.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}

// TestReadMessageNeverPanicsOnGarbage feeds random bytes into the frame
// reader: it must return errors, never panic, and never allocate
// absurd buffers.
func TestReadMessageNeverPanicsOnGarbage(t *testing.T) {
	rng := dist.New(2026)
	for trial := 0; trial < 2000; trial++ {
		size := rng.Intn(64)
		raw := make([]byte, size)
		for i := range raw {
			raw[i] = byte(rng.Intn(256))
		}
		// Must not panic; errors are expected and fine.
		_, _ = ReadMessage(bytes.NewReader(raw))
	}
}

// TestReadMessageTruncatedPayload: a frame header promising more bytes
// than the stream holds must error cleanly.
func TestReadMessageTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Kind: KindHello, ID: 1}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadMessage(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes should error", cut)
		}
	}
}
