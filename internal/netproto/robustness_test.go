package netproto

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"enki/internal/core"
	"enki/internal/mechanism"
	"enki/internal/obs"
	"enki/internal/sched"
)

// rawDial opens a raw TCP connection to the center for protocol-abuse
// tests.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestCenterIgnoresNonHelloFirstFrame(t *testing.T) {
	c := newTestCenter(t)
	conn := rawDial(t, c.Addr())
	// First frame must be a hello; anything else drops the connection.
	if err := WriteMessage(conn, &Message{Kind: KindPreference, ID: 1}); err != nil {
		t.Fatal(err)
	}
	// The center should close the connection without registering.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadMessage(conn); err == nil {
		t.Error("expected the center to drop a connection that skips hello")
	}
	if c.AgentCount() != 0 {
		t.Errorf("agent count = %d, want 0", c.AgentCount())
	}
}

func TestCenterDropsGarbageFrame(t *testing.T) {
	c := newTestCenter(t)
	conn := rawDial(t, c.Addr())
	// A syntactically broken frame: huge length prefix.
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], MaxFrameSize+1)
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := ReadMessage(conn); err == nil {
		t.Error("expected the center to drop a connection with an oversized frame")
	}
}

func TestCenterRejectsUnsolicitedMessageDuringPhase(t *testing.T) {
	c := newTestCenter(t)
	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 9}); err != nil {
		t.Fatal(err)
	}
	welcome, err := ReadMessage(conn)
	if err != nil || welcome.Kind != KindWelcome {
		t.Fatalf("registration failed: %v %v", welcome, err)
	}

	// Start a day in the background; answer the preference request with
	// the wrong message kind.
	done := make(chan error, 1)
	go func() {
		_, err := c.RunDay(1)
		done <- err
	}()
	req, err := ReadMessage(conn)
	if err != nil || req.Kind != KindRequest {
		t.Fatalf("expected request, got %v %v", req, err)
	}
	iv := core.Interval{Begin: 18, End: 20}
	if err := WriteMessage(conn, &Message{Kind: KindConsumption, ID: 9, Day: 1, Interval: &iv}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunDay should fail on an out-of-phase message")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDay hung on an out-of-phase message")
	}
}

func TestCenterRejectsPreferenceFrameWithoutPref(t *testing.T) {
	c := newTestCenter(t)
	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.RunDay(1)
		done <- err
	}()
	if _, err := ReadMessage(conn); err != nil { // the request
		t.Fatal(err)
	}
	if err := WriteMessage(conn, &Message{Kind: KindPreference, ID: 3, Day: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunDay should fail on a preference frame without a preference")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDay hung")
	}
}

func TestCenterRejectsWrongDurationConsumption(t *testing.T) {
	c := newTestCenter(t)
	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.RunDay(1)
		done <- err
	}()
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	pref := core.MustPreference(18, 22, 2)
	if err := WriteMessage(conn, &Message{Kind: KindPreference, ID: 4, Day: 1, Pref: &pref}); err != nil {
		t.Fatal(err)
	}
	alloc, err := ReadMessage(conn)
	if err != nil || alloc.Kind != KindAllocation {
		t.Fatalf("expected allocation, got %v %v", alloc, err)
	}
	bad := core.Interval{Begin: 18, End: 21} // duration 3, declared 2
	if err := WriteMessage(conn, &Message{Kind: KindConsumption, ID: 4, Day: 1, Interval: &bad}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunDay should reject a consumption with the wrong duration")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunDay hung")
	}
}

func TestCenterPhaseTimeout(t *testing.T) {
	cfg := CenterConfig{
		Scheduler:    &sched.Greedy{Pricer: quad, Rating: 2},
		Pricer:       quad,
		Mechanism:    mechanism.DefaultConfig(),
		Rating:       2,
		ReplyTimeout: 200 * time.Millisecond,
	}
	c, err := NewCenter("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	conn := rawDial(t, c.Addr())
	if err := WriteMessage(conn, &Message{Kind: KindHello, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(conn); err != nil {
		t.Fatal(err)
	}
	// Never answer the preference request: the phase must time out.
	start := time.Now()
	_, err = c.RunDay(1)
	if err == nil {
		t.Fatal("RunDay should time out when an agent stays silent")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, configured 200ms", elapsed)
	}
}

func TestLargeNeighborhoodOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("large integration test")
	}
	c := newTestCenter(t)
	const n = 40
	agents := make([]*Agent, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			begin := 14 + i%6
			typ := core.Type{
				True:            core.MustPreference(begin, min(begin+4+i%3, 24), 2),
				ValuationFactor: 5,
			}
			a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
			if err != nil {
				errs[i] = err
				return
			}
			agents[i] = a
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()
	if err := c.WaitForAgents(n, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 3; day++ {
		record, err := c.RunDay(day)
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if len(record.Reports) != n {
			t.Fatalf("day %d: %d reports, want %d", day, len(record.Reports), n)
		}
		var revenue float64
		for _, p := range record.Payments {
			revenue += p
		}
		if diff := revenue - mechanism.DefaultXi*record.Cost; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("day %d: revenue %g != ξκ %g", day, revenue, mechanism.DefaultXi*record.Cost)
		}
	}
}

func TestConcurrentWritesSerialized(t *testing.T) {
	// The per-connection write mutex must keep frames intact even when
	// payment broadcasts race with the next day's requests. Exercise a
	// few fast consecutive days.
	c := newTestCenter(t)
	types := []core.Type{
		{True: core.MustPreference(18, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(16, 22, 2), ValuationFactor: 5},
		{True: core.MustPreference(17, 23, 3), ValuationFactor: 5},
	}
	for i, typ := range types {
		a, err := Dial(c.Addr(), core.HouseholdID(i), &Truthful{Type: typ})
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
	}
	if err := c.WaitForAgents(len(types), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for day := 1; day <= 10; day++ {
		if _, err := c.RunDay(day); err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
	}
}

func TestWireMessageFuzzedFields(t *testing.T) {
	// Round-trip odd but legal field combinations.
	for i := 0; i < 50; i++ {
		m := &Message{
			Kind: Kind(fmt.Sprintf("kind-%d", i)),
			ID:   core.HouseholdID(i * 7),
			Day:  i,
			Err:  fmt.Sprintf("err-%d", i),
		}
		conn1, conn2 := net.Pipe()
		go func() {
			_ = WriteMessage(conn1, m)
			conn1.Close()
		}()
		got, err := ReadMessage(conn2)
		conn2.Close()
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if got.Kind != m.Kind || got.ID != m.ID || got.Day != m.Day || got.Err != m.Err {
			t.Fatalf("round trip %d mismatch: %+v vs %+v", i, got, m)
		}
	}
}

func TestAgentReconnectAfterDrop(t *testing.T) {
	// A household whose connection drops can re-register with the same
	// ID (the center frees the slot on disconnect) and the next day
	// proceeds normally.
	c := newTestCenter(t)
	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	a1, err := Dial(c.Addr(), 0, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := Dial(c.Addr(), 1, &Truthful{Type: typ})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunDay(1); err != nil {
		t.Fatal(err)
	}

	a2.Close()
	// Wait for the center to notice the drop.
	deadline := time.Now().Add(5 * time.Second)
	for c.AgentCount() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.AgentCount() != 1 {
		t.Fatalf("agent count = %d after drop, want 1", c.AgentCount())
	}

	a2b, err := Dial(c.Addr(), 1, &Truthful{Type: typ})
	if err != nil {
		t.Fatalf("reconnect with the same ID rejected: %v", err)
	}
	defer a2b.Close()
	if err := c.WaitForAgents(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	record, err := c.RunDay(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(record.Reports) != 2 {
		t.Fatalf("day 2 has %d reports, want 2", len(record.Reports))
	}
}

// TestAgentRetryExhaustionIsTerminal pins the "bounded" half of bounded
// retry: when the center is gone for good, a retrying agent makes
// exactly MaxAttempts reconnect attempts — each drawn from its seeded
// jitter stream — and then reports a terminal error instead of
// spinning forever.
func TestAgentRetryExhaustionIsTerminal(t *testing.T) {
	c := newTestCenter(t)
	typ := core.Type{True: core.MustPreference(18, 22, 2), ValuationFactor: 5}
	retry := RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: 1}
	a, err := Connect(context.Background(), c.Addr(), 0, &Truthful{Type: typ}, WithRetryPolicy(retry))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := c.WaitForAgents(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	before := obs.Default().Counter(obs.MetricNetRetriesTotal).Value()
	c.Close() // the center is gone for good: every reconnect must fail

	deadline := time.Now().Add(10 * time.Second)
	for a.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a.Err() == nil {
		t.Fatal("agent never reported a terminal error after retry exhaustion")
	}
	if got := obs.Default().Counter(obs.MetricNetRetriesTotal).Value() - before; got != uint64(retry.MaxAttempts) {
		t.Errorf("retry counter advanced by %d, want exactly MaxAttempts=%d", got, retry.MaxAttempts)
	}
}
